package pubsub_test

import (
	"strings"
	"testing"
	"time"

	"repro/pubsub"
)

// TestNodeMetricsAndFlight runs a two-node UDP mesh with metrics and
// flight recorders armed: the registry must expose the protocol and
// transport series for both nodes in valid Prometheus text, and the
// publisher's flight recorder must hold publish/send records while the
// subscriber's holds receive/deliver records.
func TestNodeMetricsAndFlight(t *testing.T) {
	topic := pubsub.MustParseTopic(".obs")
	got := make(chan pubsub.Event, 4)
	mk := func(id pubsub.NodeID, deliver func(pubsub.Event)) *pubsub.Node {
		n, err := pubsub.NewUDPNode(pubsub.Config{
			ID:           id,
			HBDelay:      50 * time.Millisecond,
			HBUpperBound: 50 * time.Millisecond,
			OnDeliver:    deliver,
		}, "127.0.0.1:0", nil)
		if err != nil {
			t.Skipf("UDP unavailable: %v", err)
		}
		t.Cleanup(func() { n.Close() })
		n.StartFlightRecorder(128)
		return n
	}
	a := mk(1, nil)
	b := mk(2, func(ev pubsub.Event) { got <- ev })
	reg := pubsub.NewMetricsRegistry()
	a.RegisterMetrics(reg)
	b.RegisterMetrics(reg)

	for _, x := range []*pubsub.Node{a, b} {
		for _, y := range []*pubsub.Node{a, b} {
			if err := x.AddPeer(y.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
		if err := x.Subscribe(topic); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.Neighbors()) == 1 && len(b.Neighbors()) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := a.Publish(topic, []byte("observed"), time.Minute); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("delivery timed out")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`repro_pubsub_published_total{node="1"} 1`,
		`repro_pubsub_delivered_total{node="2"} 1`,
		`repro_transport_datagrams_sent_total{node="1"}`,
		`repro_transport_handler_seconds_count{node="2"}`,
		`repro_pubsub_neighbors{node="1"} 1`,
		`# TYPE repro_transport_send_queue_depth gauge`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Flight recorders: publisher saw the publish and at least one send;
	// subscriber saw a receive and the delivery.
	var fa, fb strings.Builder
	if err := a.WriteFlight(&fa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFlight(&fb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"publish", "send"} {
		if !strings.Contains(fa.String(), want) {
			t.Errorf("publisher flight missing %q:\n%s", want, fa.String())
		}
	}
	for _, want := range []string{"recv", "deliver"} {
		if !strings.Contains(fb.String(), want) {
			t.Errorf("subscriber flight missing %q:\n%s", want, fb.String())
		}
	}
}

// TestWriteFlightUnarmed pins the error contract: dumping before
// StartFlightRecorder fails instead of rendering an empty timeline.
func TestWriteFlightUnarmed(t *testing.T) {
	n, err := pubsub.NewNode(pubsub.Config{ID: 9}, nopTransport{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.WriteFlight(&strings.Builder{}); err == nil {
		t.Fatal("WriteFlight without a recorder must error")
	}
}

type nopTransport struct{}

func (nopTransport) Broadcast(pubsub.Message) {}
