// Node observability: protocol and transport counters exposed through
// the obs registry, and a bounded flight recorder of recent lifecycle
// events (publish, send, receive, deliver, queue drop) for post-mortem
// debugging of live deployments. Both are opt-in and read-only: an
// unobserved node pays one atomic pointer load per recordable operation
// and nothing more, and nothing here feeds back into protocol state
// (ARCHITECTURE.md "Observability contracts").

package pubsub

import (
	"fmt"
	"io"
	"reflect"
	"strings"

	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MetricsRegistry is the metrics registry nodes register into; it also
// serves /metrics, /healthz and pprof over HTTP (see internal/obs and
// cmd/loadgen -metrics-addr for a full deployment).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry. Register any number of
// nodes into one registry; series are distinguished by the node label.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RegisterMetrics exposes the node's counters on reg, labeled
// node="<id>": one repro_pubsub_*_total counter per protocol Stats
// field, the neighborhood-table size, the flight-recorder record count
// and — for the built-in UDP transport — the repro_transport_* counters,
// live queue depths and the per-message handler-latency histogram.
// Scrape-time reads only; the protocol hot path is untouched.
func (n *Node) RegisterMetrics(reg *MetricsRegistry) {
	label := []string{"node", fmt.Sprint(uint32(n.id))}
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		name := "repro_pubsub_" + metricSnake(f.Name) + "_total"
		idx := i
		reg.CounterFunc(name, "protocol counter "+f.Name+" (core.Stats)", func() uint64 {
			return reflect.ValueOf(n.safe.Stats()).Field(idx).Uint()
		}, label...)
	}
	reg.GaugeFunc("repro_pubsub_neighbors",
		"nodes currently in the neighborhood table", func() float64 {
			return float64(len(n.safe.NeighborIDs()))
		}, label...)
	reg.CounterFunc("repro_pubsub_flight_records_total",
		"lifecycle events captured by the flight recorder", func() uint64 {
			if r := n.flight.Load(); r != nil {
				return r.Total()
			}
			return 0
		}, label...)
	if n.udp != nil {
		n.udp.RegisterMetrics(reg, label...)
	}
}

// StartFlightRecorder arms a bounded ring of the node's last capacity
// lifecycle events: publications, transport sends, receptions,
// application deliveries and (on the built-in UDP transport) queue-drop
// evictions. Recording costs one short mutex hold per event and
// overwrites the oldest entry when full — safe to leave on in
// production. Dump it with WriteFlight. Calling it again replaces the
// ring; the capacity must be positive.
func (n *Node) StartFlightRecorder(capacity int) {
	r := trace.NewRing(capacity)
	if n.udp != nil {
		n.udp.SetDropHook(func(outbound bool) {
			// The evicted message is gone (that is what a drop is), so
			// the record carries only the direction-agnostic fact; the
			// repro_transport_*_drops_total counters split by ring.
			_ = outbound
			if ring := n.flight.Load(); ring != nil {
				ring.Add(trace.Record{At: n.flightNow(), Node: n.id, Op: trace.OpDrop})
			}
		})
	}
	n.flight.Store(r)
}

// WriteFlight renders the flight recorder's retained records, oldest
// first, in the trace text format. It reports an error when no recorder
// was started.
func (n *Node) WriteFlight(w io.Writer) error {
	r := n.flight.Load()
	if r == nil {
		return fmt.Errorf("pubsub: node %d: no flight recorder started", n.id)
	}
	return r.WriteText(w)
}

// flightNow timestamps a flight record with the node's wall-clock
// uptime (the same clock the protocol schedules on).
func (n *Node) flightNow() sim.Time { return sim.At(n.clock.Now()) }

// recordReceive captures an incoming message when the recorder is armed.
func (n *Node) recordReceive(m Message) {
	if r := n.flight.Load(); r != nil {
		r.Add(trace.Record{At: n.flightNow(), Node: n.id, Op: trace.OpReceive, Msg: m.Kind()})
	}
}

// flightTransport wraps the node's transport so armed flight recorders
// see every outgoing broadcast. Unarmed cost is one atomic load.
type flightTransport struct {
	n  *Node
	tr Transport
}

func (f flightTransport) Broadcast(m Message) {
	if r := f.n.flight.Load(); r != nil {
		r.Add(trace.Record{
			At: f.n.flightNow(), Node: f.n.id, Op: trace.OpSend,
			Msg: m.Kind(), Bytes: len(event.Marshal(m)),
		})
	}
	f.tr.Broadcast(m)
}

// hookDeliveries chains a flight-recording tap before the caller's
// OnDeliver. It runs under the protocol lock like OnDeliver itself, so
// it only touches the ring.
func (n *Node) hookDeliveries(cfg *Config) {
	user := cfg.OnDeliver
	cfg.OnDeliver = func(ev Event) {
		if r := n.flight.Load(); r != nil {
			r.Add(trace.Record{At: n.flightNow(), Node: n.id, Op: trace.OpDeliver, Event: ev.ID})
		}
		if user != nil {
			user(ev)
		}
	}
}

// metricSnake converts a Go field name (EventMsgsSent) to the metric
// segment convention (event_msgs_sent). Same transform as the netsim
// series columns, so the simulated and scraped names line up.
func metricSnake(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 && !(s[i-1] >= 'A' && s[i-1] <= 'Z') {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}
