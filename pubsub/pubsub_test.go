package pubsub_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/pubsub"
)

func TestParseTopicHelpers(t *testing.T) {
	tp, err := pubsub.ParseTopic("a.b")
	if err != nil || tp.String() != ".a.b" {
		t.Fatalf("ParseTopic = %v, %v", tp, err)
	}
	if _, err := pubsub.ParseTopic("a..b"); err == nil {
		t.Fatal("bad topic accepted")
	}
	if !pubsub.RootTopic().Contains(tp) {
		t.Fatal("root must contain everything")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseTopic should panic on bad input")
		}
	}()
	pubsub.MustParseTopic("..")
}

func TestMarshalRoundTripThroughFacade(t *testing.T) {
	hb := event.Heartbeat{From: 9, Speed: -1}
	back, err := pubsub.Unmarshal(pubsub.Marshal(hb))
	if err != nil {
		t.Fatal(err)
	}
	if back.Sender() != 9 {
		t.Fatalf("sender = %v", back.Sender())
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := pubsub.NewNode(pubsub.Config{ID: 1}, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := pubsub.NewUDPNode(pubsub.Config{ID: 1}, "256.0.0.1:bad", nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// chanTransport is a custom Transport for the NewNode path.
type chanTransport struct {
	mu    sync.Mutex
	peers []*pubsub.Node
}

func (c *chanTransport) Broadcast(m pubsub.Message) {
	c.mu.Lock()
	peers := append([]*pubsub.Node(nil), c.peers...)
	c.mu.Unlock()
	for _, p := range peers {
		p := p
		go func() { _ = p.HandleMessage(m) }()
	}
}

func TestCustomTransportNode(t *testing.T) {
	news := pubsub.MustParseTopic(".x")
	trA, trB := &chanTransport{}, &chanTransport{}

	got := make(chan pubsub.Event, 1)
	cfg := pubsub.Config{ID: 1, HBDelay: 50 * time.Millisecond, HBUpperBound: 50 * time.Millisecond}
	a, err := pubsub.NewNode(cfg, trA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfgB := pubsub.Config{
		ID: 2, HBDelay: 50 * time.Millisecond, HBUpperBound: 50 * time.Millisecond,
		OnDeliver: func(ev pubsub.Event) {
			select {
			case got <- ev:
			default:
			}
		},
	}
	b, err := pubsub.NewNode(cfgB, trB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	trA.peers = []*pubsub.Node{b}
	trB.peers = []*pubsub.Node{a}

	if err := a.Subscribe(news); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(news); err != nil {
		t.Fatal(err)
	}
	id, err := a.Publish(news, []byte("hi"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev.ID != id || string(ev.Payload) != "hi" {
			t.Fatalf("wrong event: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery timed out on custom transport")
	}
	if !b.HasEvent(id) {
		t.Fatal("HasEvent false after delivery")
	}
	if b.Stats().Delivered != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
	if a.LocalAddr() != "" {
		t.Fatal("custom transport should have no local addr")
	}
	if err := a.AddPeer("127.0.0.1:1"); err == nil {
		t.Fatal("AddPeer must fail on custom transports")
	}
}

func TestUDPNodeEndToEnd(t *testing.T) {
	news := pubsub.MustParseTopic(".mesh")
	mk := func(id pubsub.NodeID, deliver func(pubsub.Event)) *pubsub.Node {
		// Explicit (default-equivalent) tuning exercises the tuned
		// constructor on the same end-to-end path NewUDPNode takes.
		n, err := pubsub.NewUDPNodeTuned(pubsub.Config{
			ID:           id,
			HBDelay:      50 * time.Millisecond,
			HBUpperBound: 50 * time.Millisecond,
			OnDeliver:    deliver,
		}, "127.0.0.1:0", nil, pubsub.UDPTuning{
			SendQueue:     256,
			RecvQueue:     256,
			FlushInterval: time.Millisecond,
		})
		if err != nil {
			t.Skipf("UDP unavailable: %v", err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	got := make(chan pubsub.Event, 4)
	a := mk(1, nil)
	b := mk(2, func(ev pubsub.Event) { got <- ev })
	c := mk(3, func(ev pubsub.Event) { got <- ev })
	for _, x := range []*pubsub.Node{a, b, c} {
		for _, y := range []*pubsub.Node{a, b, c} {
			if err := x.AddPeer(y.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
		if err := x.Subscribe(news); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.Neighbors()) == 2 && len(b.Neighbors()) == 2 && len(c.Neighbors()) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(a.Neighbors()) != 2 {
		t.Fatalf("discovery incomplete: %v", a.Neighbors())
	}

	if _, err := a.Publish(news, []byte("facade"), time.Minute); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case ev := <-got:
			if string(ev.Payload) != "facade" {
				t.Fatalf("wrong payload %q", ev.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("delivery timed out over UDP")
		}
	}
	// The transport counters are visible through the facade; the custom
	// transport path returns the zero value.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && a.TransportStats().DatagramsSent == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if ts := a.TransportStats(); ts.DatagramsSent == 0 || ts.DecodeErrors != 0 {
		t.Fatalf("transport stats = %+v", ts)
	}
}

func TestCustomTransportStatsZero(t *testing.T) {
	n, err := pubsub.NewNode(pubsub.Config{ID: 5}, &chanTransport{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if ts := n.TransportStats(); ts != (pubsub.TransportStats{}) {
		t.Fatalf("custom transport stats = %+v, want zero", ts)
	}
}
