package pubsub_test

import (
	"testing"
	"time"

	"repro/pubsub"
)

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// mkDynNode builds a node with dynamic membership: seeds instead of a
// full roster, learning from datagram sources, and (optionally) the
// suspicion-window failure detector.
func mkDynNode(t *testing.T, id pubsub.NodeID, seeds []string, suspicion time.Duration, deliver func(pubsub.Event)) *pubsub.Node {
	t.Helper()
	n, err := pubsub.NewUDPNodeTuned(pubsub.Config{
		ID:           id,
		HBDelay:      50 * time.Millisecond,
		HBUpperBound: 50 * time.Millisecond,
		OnDeliver:    deliver,
	}, "127.0.0.1:0", seeds, pubsub.UDPTuning{
		FlushInterval: time.Millisecond,
		LearnPeers:    true,
		Suspicion:     suspicion,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestUDPNodeSeedJoinPropagates pins the deployment join story: no
// global roster, just a seed chain a<-b<-c. Heartbeats teach each
// transport its reverse edges (b learns a is there because a is b's
// seed... a learns b purely from b's datagrams, and likewise b learns
// c), the protocol neighborhood tables converge to the chain, and an
// event published at one end reaches the other end through the
// epidemic relay — two real-socket hops, no direct a<->c edge.
func TestUDPNodeSeedJoinPropagates(t *testing.T) {
	topic := pubsub.MustParseTopic(".mesh.join")
	gotA := make(chan pubsub.Event, 4)
	a := mkDynNode(t, 1, nil, 0, func(ev pubsub.Event) { gotA <- ev })
	b := mkDynNode(t, 2, []string{a.LocalAddr()}, 0, nil)
	c := mkDynNode(t, 3, []string{b.LocalAddr()}, 0, nil)
	for _, n := range []*pubsub.Node{a, b, c} {
		if err := n.Subscribe(topic); err != nil {
			t.Fatal(err)
		}
	}
	// Transport rosters converge to the symmetric chain closure.
	waitCond(t, func() bool {
		return len(a.Peers()) == 1 && len(b.Peers()) == 2 && len(c.Peers()) == 1
	}, "chain roster convergence (a:1 b:2 c:1)")
	if got := a.Peers()[0]; got != b.LocalAddr() {
		t.Fatalf("a learned %q, want b %q", got, b.LocalAddr())
	}
	if ts := a.TransportStats(); ts.PeersLearned != 1 {
		t.Fatalf("a.PeersLearned = %d, want 1", ts.PeersLearned)
	}
	// Protocol-level neighborhoods follow.
	waitCond(t, func() bool {
		return len(a.Neighbors()) == 1 && len(b.Neighbors()) == 2 && len(c.Neighbors()) == 1
	}, "protocol neighborhood convergence")
	// End-to-end: c's publication crosses the chain to a.
	if _, err := c.Publish(topic, []byte("via-chain"), time.Minute); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-gotA:
		if string(ev.Payload) != "via-chain" {
			t.Fatalf("wrong payload %q", ev.Payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("publication never crossed the seed chain")
	}
}

// TestUDPNodeSuspicionEvictsDeadPeer pins the leave story: a peer that
// stops heartbeating (here: closed) is evicted from the transport
// roster by the suspicion window, visible through Peers and the
// PeersEvicted counter, and the protocol neighborhood follows via its
// own timeout.
func TestUDPNodeSuspicionEvictsDeadPeer(t *testing.T) {
	a := mkDynNode(t, 1, nil, 500*time.Millisecond, nil)
	b := mkDynNode(t, 2, []string{a.LocalAddr()}, 500*time.Millisecond, nil)
	// Heartbeats (the failure detector's food) only flow from nodes
	// with at least one subscription.
	tp := pubsub.MustParseTopic(".mesh.evict")
	for _, n := range []*pubsub.Node{a, b} {
		if err := n.Subscribe(tp); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, func() bool { return len(a.Peers()) == 1 }, "a learns b")
	// Live peers heartbeat well inside the window: no spurious eviction.
	time.Sleep(time.Second)
	if ts := a.TransportStats(); ts.PeersEvicted != 0 {
		t.Fatalf("live peer evicted: %+v", ts)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return len(a.Peers()) == 0 }, "dead peer evicted from roster")
	if ts := a.TransportStats(); ts.PeersEvicted != 1 {
		t.Fatalf("a.PeersEvicted = %d, want 1", ts.PeersEvicted)
	}
}

// TestUDPNodeRemovePeer covers the explicit-leave facade: RemovePeer
// shrinks the roster and reports presence; custom-transport nodes
// answer false/nil.
func TestUDPNodeRemovePeer(t *testing.T) {
	a := mkDynNode(t, 1, nil, 0, nil)
	b := mkDynNode(t, 2, []string{a.LocalAddr()}, 0, nil)
	if err := b.Subscribe(pubsub.MustParseTopic(".mesh.rm")); err != nil {
		t.Fatal(err) // heartbeats (what a learns b from) need a subscription
	}
	waitCond(t, func() bool { return len(a.Peers()) == 1 }, "a learns b")
	addr := a.Peers()[0]
	// Stop b first so its heartbeats cannot re-teach a the address
	// between the two RemovePeer calls below.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // drain in-flight datagrams
	if !a.RemovePeer(addr) {
		t.Fatal("RemovePeer reported the learned peer absent")
	}
	if a.RemovePeer(addr) {
		t.Fatal("second RemovePeer reported the peer still present")
	}
}
