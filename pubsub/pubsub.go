// Package pubsub is the public face of the library: a single import for
// embedding the frugal MANET publish/subscribe protocol in an
// application.
//
// It re-exports the stable pieces of the internal packages — topics,
// events, the wire format, the protocol configuration — and wraps the
// protocol in a goroutine-safe Node with a ready-made wall-clock
// scheduler and UDP transport, so the minimal deployment is:
//
//	node, _ := pubsub.NewUDPNode(pubsub.Config{ID: 1},
//	    "0.0.0.0:7946", []string{
//	        "10.0.0.1:7946", // this node — filtered out automatically
//	        "10.0.0.2:7946", "10.0.0.3:7946"})
//	defer node.Close()
//	node.Subscribe(pubsub.MustParseTopic(".fleet.alerts"))
//	node.Publish(pubsub.MustParseTopic(".fleet.alerts.engine"),
//	    []byte("oil pressure low"), 2*time.Minute)
//
// The same roster file can be handed to every node: entries naming the
// local socket are filtered by (port, local interface-address set),
// which works under wildcard binds like the "0.0.0.0:7946" above — not
// only when the strings happen to match. For a deployment without a
// global roster at all, set UDPTuning.LearnPeers and Suspicion and pass
// only a few seed addresses (see NewUDPNodeTuned).
//
// For simulation and evaluation, use internal/netsim and cmd/experiments
// instead; this package is for running the protocol on real transports.
package pubsub

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topic"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Re-exported core types. Aliases keep the public surface to one import
// without copying definitions.
type (
	// Topic is a node in the dot-separated topic hierarchy.
	Topic = topic.Topic
	// Event is a published unit of information with a validity period.
	Event = event.Event
	// EventID is a 128-bit globally unique event identifier.
	EventID = event.ID
	// NodeID identifies a process.
	NodeID = event.NodeID
	// Message is a protocol wire message.
	Message = event.Message
	// Config parameterizes a protocol instance; zero tuning fields
	// select the paper's defaults.
	Config = core.Config
	// Scheduler abstracts time; implement it to control timers, or use
	// the built-in wall clock via NewNode.
	Scheduler = core.Scheduler
	// Transport is the one-hop broadcast primitive.
	Transport = core.Transport
	// Timer is a cancellable scheduled callback.
	Timer = core.Timer
	// Stats are the protocol's cumulative counters.
	Stats = core.Stats
	// TransportStats are the UDP transport's cumulative counters
	// (datagrams, decode errors, queue drops, flush batches).
	TransportStats = transport.Stats
)

// UDPTuning adjusts the asynchronous fast path of the built-in UDP
// transport. The zero value selects the defaults
// (transport.DefaultSendQueue / DefaultRecvQueue, immediate flush) —
// NewUDPNode uses exactly that.
type UDPTuning struct {
	// SendQueue bounds the outbound message ring; overflow drops the
	// oldest queued message (counted in TransportStats.Dropped).
	SendQueue int
	// RecvQueue bounds the inbound dispatch ring; overflow drops the
	// oldest queued datagram (counted in TransportStats.RecvDropped).
	RecvQueue int
	// FlushInterval makes the writer linger so nearby broadcasts
	// coalesce into one batch; 0 flushes as soon as the writer wakes.
	FlushInterval time.Duration
	// LearnPeers turns the peers list into join seeds: the roster grows
	// from observed datagram sources, so a joining node only needs one
	// reachable seed and the rest of the mesh learns it from its own
	// heartbeats.
	LearnPeers bool
	// Suspicion arms heartbeat-driven failure detection: a peer silent
	// for longer than this window is evicted from the broadcast roster
	// (counted in TransportStats.PeersEvicted). Size it to several
	// protocol heartbeat periods (Config.THeartbeat).
	Suspicion time.Duration
	// SuspicionSweep overrides the eviction check period (default
	// Suspicion/4).
	SuspicionSweep time.Duration
}

// ParseTopic converts a string such as ".a.b" (or "a.b") into a Topic.
func ParseTopic(s string) (Topic, error) { return topic.Parse(s) }

// MustParseTopic is ParseTopic that panics on error.
func MustParseTopic(s string) Topic { return topic.MustParse(s) }

// RootTopic returns ".", the ancestor of every topic.
func RootTopic() Topic { return topic.Root() }

// Marshal encodes a protocol message into its wire format.
func Marshal(m Message) []byte { return event.Marshal(m) }

// Unmarshal decodes a wire-format message.
func Unmarshal(b []byte) (Message, error) { return event.Unmarshal(b) }

// Node is a goroutine-safe protocol instance bound to a transport and
// the wall clock. Create one with NewNode (custom transport) or
// NewUDPNode (built-in UDP peer-group transport).
type Node struct {
	id    NodeID
	safe  *core.Safe
	udp   *transport.UDP // nil for custom transports
	clock *wallClock

	// flight, when armed by StartFlightRecorder, captures the node's
	// recent lifecycle events (see observe.go).
	flight atomic.Pointer[trace.Ring]
}

// wallClock implements Scheduler on real time.
type wallClock struct{ start time.Time }

func (w *wallClock) Now() time.Duration { return time.Since(w.start) }

func (w *wallClock) After(d time.Duration, fn func()) Timer {
	return wallTimer{time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

func (t wallTimer) Stop() bool { return t.t.Stop() }

// NewNode builds a node on a custom transport. Deliver incoming messages
// with Node.HandleMessage; they may arrive from any goroutine.
func NewNode(cfg Config, tr Transport) (*Node, error) {
	if tr == nil {
		return nil, errors.New("pubsub: nil transport")
	}
	n := &Node{id: cfg.ID, clock: &wallClock{start: time.Now()}}
	n.hookDeliveries(&cfg)
	safe, err := core.NewSafe(cfg, n.clock, flightTransport{n: n, tr: tr})
	if err != nil {
		return nil, fmt.Errorf("pubsub: %w", err)
	}
	n.safe = safe
	return n, nil
}

// NewUDPNode builds a node with the built-in UDP peer-group transport:
// it binds listen and broadcasts to peers (the roster may include the
// local address; it is filtered out). The transport's read loop is
// started only after the protocol instance is wired, so no datagram can
// reach a half-constructed node.
func NewUDPNode(cfg Config, listen string, peers []string) (*Node, error) {
	return NewUDPNodeTuned(cfg, listen, peers, UDPTuning{})
}

// NewUDPNodeTuned is NewUDPNode with explicit transport tuning — queue
// bounds and flush batching for high-rate deployments (see cmd/loadgen
// for a soak harness built on it).
func NewUDPNodeTuned(cfg Config, listen string, peers []string, tun UDPTuning) (*Node, error) {
	n := &Node{id: cfg.ID, clock: &wallClock{start: time.Now()}}
	n.hookDeliveries(&cfg)
	udp, err := transport.NewUDP(transport.UDPConfig{
		Listen: listen,
		Peers:  peers,
		Handler: func(m Message) {
			n.recordReceive(m)
			_ = n.safe.HandleMessage(m)
		},
		SendQueue:      tun.SendQueue,
		RecvQueue:      tun.RecvQueue,
		FlushInterval:  tun.FlushInterval,
		LearnPeers:     tun.LearnPeers,
		Suspicion:      tun.Suspicion,
		SuspicionSweep: tun.SuspicionSweep,
	})
	if err != nil {
		return nil, fmt.Errorf("pubsub: %w", err)
	}
	safe, err := core.NewSafe(cfg, n.clock, flightTransport{n: n, tr: udp})
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("pubsub: %w", err)
	}
	n.safe = safe
	n.udp = udp
	udp.Start()
	return n, nil
}

// Subscribe registers interest in t and its whole subtree.
func (n *Node) Subscribe(t Topic) error { return n.safe.Subscribe(t) }

// Unsubscribe removes t from the subscription list.
func (n *Node) Unsubscribe(t Topic) { n.safe.Unsubscribe(t) }

// Publish disseminates payload on t with the given validity period and
// returns the event id.
func (n *Node) Publish(t Topic, payload []byte, validity time.Duration) (EventID, error) {
	id, err := n.safe.Publish(t, payload, validity)
	if err == nil {
		if r := n.flight.Load(); r != nil {
			r.Add(trace.Record{At: n.flightNow(), Node: n.id, Op: trace.OpPublish, Event: id})
		}
	}
	return id, err
}

// HandleMessage feeds a message received by a custom transport into the
// protocol. Safe to call from any goroutine.
func (n *Node) HandleMessage(m Message) error {
	n.recordReceive(m)
	return n.safe.HandleMessage(m)
}

// Neighbors returns the ids currently in the neighborhood table.
func (n *Node) Neighbors() []NodeID { return n.safe.NeighborIDs() }

// HasEvent reports whether the node's event table holds id.
func (n *Node) HasEvent(id EventID) bool { return n.safe.HasEvent(id) }

// Stats returns a snapshot of the protocol counters.
func (n *Node) Stats() Stats { return n.safe.Stats() }

// TransportStats returns a snapshot of the UDP transport counters, or
// the zero value for custom transports.
func (n *Node) TransportStats() TransportStats {
	if n.udp == nil {
		return TransportStats{}
	}
	return n.udp.Stats()
}

// LocalAddr returns the UDP listen address, or nil for custom
// transports.
func (n *Node) LocalAddr() string {
	if n.udp == nil {
		return ""
	}
	return n.udp.LocalAddr().String()
}

// AddPeer extends the UDP roster at runtime. It errors on custom
// transports.
func (n *Node) AddPeer(addr string) error {
	if n.udp == nil {
		return errors.New("pubsub: AddPeer requires the UDP transport")
	}
	return n.udp.AddPeer(addr)
}

// RemovePeer drops addr from the UDP broadcast roster, reporting
// whether it was present. It is false (and a no-op) on custom
// transports.
func (n *Node) RemovePeer(addr string) bool {
	if n.udp == nil {
		return false
	}
	return n.udp.RemovePeer(addr)
}

// Peers returns the UDP transport's current broadcast roster, sorted —
// the transport-level membership view, as opposed to Neighbors, which
// is the protocol-level neighborhood table built from heartbeats. Nil
// on custom transports.
func (n *Node) Peers() []string {
	if n.udp == nil {
		return nil
	}
	return n.udp.Peers()
}

// Close stops the protocol and releases the transport.
func (n *Node) Close() error {
	n.safe.Stop()
	if n.udp != nil {
		return n.udp.Close()
	}
	return nil
}
