// Package repro is a from-scratch Go reproduction of "Frugal Event
// Dissemination in a Mobile Environment" (Baehni, Chhabra, Guerraoui —
// Middleware 2005): a topic-based publish/subscribe protocol for mobile
// ad-hoc networks, the discrete-event MANET simulator it is evaluated on
// (random-waypoint and city-section mobility, 802.11b-style CSMA
// broadcast MAC with collisions), three flooding baselines, and a harness
// that regenerates every figure and table of the paper's evaluation.
//
// Layout:
//
//   - internal/core — the frugal protocol (the paper's contribution)
//   - internal/proto — the protocol layer: Disseminator interface,
//     shared Stats/Scheduler/Transport, and the protocol registry
//     (internal/proto/all wires the built-ins in)
//   - internal/sim, geo, topic, event, radio, mobility, mac — substrates
//   - internal/flood — the flooding baselines of Section 5.2 plus the
//     broadcast-storm schemes
//   - internal/gossip — the push-pull rumor-mongering baseline
//   - internal/workload — the workload registry: lazy traffic/churn
//     generators scenarios select by name
//   - internal/registry — the shared generic name→definition store
//     behind the protocol, scenario and workload registries
//   - internal/netsim, metrics, exp — scenario runner, scenario
//     registry and experiments
//   - internal/obs — the shared observability layer: a zero-dependency
//     metrics registry (Prometheus text + JSON encoders, /metrics +
//     /healthz + pprof HTTP listener) and CPU/heap profile helpers
//     (ARCHITECTURE.md "Observability contracts")
//   - internal/trace — bounded message-level timelines: simulation
//     traces and the real path's concurrent flight-recorder ring
//   - pubsub, internal/transport — the real-network face of the same
//     core protocol: a goroutine-safe Node over batched, bounded-queue
//     UDP peer-group broadcast with dynamic membership (seed-based
//     join from observed datagram sources, suspicion-window failure
//     detection) and a build-tagged Linux sendmmsg/recvmmsg syscall
//     fast path (ARCHITECTURE.md "Real-path contracts" and
//     "Real-deployment contracts"), with per-node metrics registration
//     and flight recording built in
//   - cmd/experiments, cmd/frugalsim, cmd/benchjson, cmd/loadgen —
//     command-line tools (loadgen soak-tests N real UDP nodes under
//     the registered workload generators — full or partial circulant
//     meshes, static or learned rosters, optional crash/recover churn
//     waves — and prints the measured delivery ratio/latency next to
//     the netsim prediction, optionally serving live /metrics and
//     writing a machine-readable report)
//   - examples/ — quickstart, carpark, campus, inprocess, udpmesh
//
// ARCHITECTURE.md maps the paper's sections onto these packages and
// sketches the dataflow of one simulation.
//
// The benchmarks in bench_test.go exercise one reduced-scale run per
// paper figure; go run ./cmd/experiments regenerates the full tables.
//
// # Building and running
//
// The module is self-contained (no external dependencies):
//
//	go build ./...
//	go test ./...                        # unit + reproduction tests
//	go test -race ./...                  # includes the parallel runner
//	go run ./cmd/experiments -list       # enumerate experiments + scenarios
//	go run ./cmd/experiments -fig fig13  # one figure, scaled down
//	go run ./cmd/experiments -scenario manhattan # one registered scenario
//	go run ./cmd/experiments -parallel 8 # cap concurrent simulations
//
// Observability rides along without changing any result: -sample
// records a deterministic per-run time-series (-series-out dumps the
// curves as CSV/JSON), -cpuprofile/-memprofile profile the sweeps, and
// cmd/loadgen -metrics-addr serves live Prometheus metrics, pprof and
// per-node flight-recorder dumps for a real soak (ARCHITECTURE.md
// "Observability contracts").
//
// # Scenario registry
//
// Beyond the paper's figures, whole workloads are defined declaratively:
// a netsim.ScenarioDef bundles mobility model, node count, radio range,
// protocol tuning, publication schedule, optional crash/churn events and
// measurement windows under a name (netsim.RegisterScenario). Registered
// scenarios are swept across every registered protocol by the exp
// package's "scenarios" experiment family and are addressable from both
// CLIs (experiments -scenario, frugalsim -scenario). The built-in
// catalog:
//
//	campus           the paper's 15-node city section on the synthetic
//	                 campus street grid, one 150 s event
//	waypoint         the paper's random waypoint at reduced scale: 40
//	                 nodes, 10 m/s, 80% subscribers, one 120 s event
//	manhattan        urban VANET: 40 vehicles on a Manhattan street grid
//	                 with a deterministic city-wide traffic-light
//	                 schedule (staggered phases, no green wave) and
//	                 avenue/side-street speed tiers, a burst of three
//	                 120 s events
//	manhattan-churn  manhattan plus mid-window crashes and one recovery
//	highway          highway convoy: 32 vehicles in four platoon speed
//	                 tiers on a 3.5 km bidirectional corridor with
//	                 on/off-ramps, two 90 s events
//	stadium          flash crowd on the campus grid: 40 pedestrians,
//	                 generated burst traffic (the flash-crowd workload)
//	rush-hour        diurnal Zipf traffic on the Manhattan grid: 40
//	                 vehicles, a commute ramp over skewed subtopics
//	                 (the diurnal workload)
//	metro-slice      metro district (Heavy): 600 vehicles on a
//	                 metro-style grid, diurnal Zipf traffic + churn
//	                 waves — the tile-parallel fixture, sized for
//	                 tier-1 suites
//	metro-5k         city-scale VANET (Heavy): 5k vehicles on a 36x28
//	                 metro grid (~11.4 km^2), diurnal Zipf traffic with
//	                 churn waves
//	metro-10k        10k vehicles on a 50x39 metro grid (~22.5 km^2;
//	                 the city grows with the roster at constant ~440
//	                 vehicles/km^2, see netsim.MetroGraphDims) (Heavy)
//	metro-50k        megacity VANET: 50k vehicles on an 112x87 metro
//	                 grid (~115 km^2), same constant density (Heavy)
//
// Every non-Heavy catalog entry is swept against every registered
// protocol; a default-scale sweep (3 seeds x 7 protocols) finishes in
// about a second. Heavy entries (the metro city sweeps) are excluded
// from the registry-wide families and the golden suite — reach them
// with -scenario, the "scale" experiment family (node count 300→50k,
// frugal vs gossip vs flood; the megacity tiers need -full and a
// -budget) or BenchmarkMetroSweep.
//
// The vehicular environments are backed by two mobility models layered
// on the street-graph machinery (mobility.Manhattan, mobility.Highway);
// both satisfy the same determinism, continuity and speed-bound
// contracts as the paper's models (see the internal/mobility godoc).
//
// # Protocol registry
//
// Protocols are first-class and declarative too: internal/proto defines
// the Disseminator interface and a registry mapping names to factories
// plus params schemas (proto.RegisterProtocol); each protocol package
// registers itself in init and internal/proto/all blank-imports them
// all. A netsim.Scenario selects its protocol with ProtocolSpec{Name,
// Params} — validated against the registered schema at
// Scenario.Validate time — and the runner builds instances purely by
// name. The built-in catalog:
//
//	frugal                        the paper's protocol (internal/core)
//	simple-flooding               flooding approach (1)
//	interests-aware-flooding      flooding approach (2)
//	neighbors-interests-flooding  flooding approach (3)
//	probabilistic-broadcast       Ni et al.'s probabilistic scheme
//	counter-based-broadcast       Ni et al.'s counter-based scheme
//	gossip-pushpull               push-pull rumor mongering
//	                              (internal/gossip)
//
// Every registered protocol must pass the conformance suite in
// internal/proto (safety under drop/duplicate/reorder, no parasite
// deliveries, monotone counters, per-seed determinism); the suite is
// table-driven over the registry, so registration is enrollment. See
// ARCHITECTURE.md "Adding a protocol".
//
// # Workload registry
//
// Workloads are the third first-class registry (internal/workload):
// named generators lazily synthesize publication traffic, node
// lifecycle churn and subscription churn from the run's seeded RNG. A
// netsim.Scenario opts in with WorkloadSpec{Name, Params}; the zero
// spec means the explicit Publications/Crashes/Resubscriptions lists
// alone drive the run (internally the "explicit" generator — one
// scheduling mechanism for both paths), and a non-zero spec's stream
// is merged with those lists. The runner pumps ops through a single
// armed engine callback, so a million-publication run stays O(1)
// memory and remains a pure function of (Scenario, Seed). The built-in
// catalog:
//
//	poisson      traffic  memoryless arrivals at a constant mean rate
//	periodic     traffic  fixed-period arrivals with forward jitter
//	flash-crowd  traffic  low background rate + one high-rate burst
//	diurnal      traffic  cosine rate ramp, quiet floor to rush peak
//	churn-nodes  churn    waves of staggered crashes with recovery
//	churn-subs   churn    Poisson unsubscribe/resubscribe flips
//	explicit     util     replays a fixed pre-enumerated op schedule
//	mix          util     merges several generators into one stream
//
// Traffic generators spread topics over the topic tree uniformly or
// Zipf-skewed (workload.TopicModel). The exp "workloads" family sweeps
// every registered generator on the reference waypoint environment
// (experiments -fig workloads); -workload <name> sweeps one generator
// across every registered protocol, and frugalsim -workload merges a
// generator into an ad-hoc scenario. Every registered generator must
// pass the conformance suite in internal/workload (deterministic per
// seed, monotone in time, in-bounds for the run's horizon). See
// ARCHITECTURE.md "Adding a workload".
//
// # Determinism contract
//
// A netsim.Result is a pure function of (Scenario, Seed): every run owns
// its engine, RNG streams, mobility models and protocol instances, and
// shares no mutable state. The experiment harness exploits this by
// fanning each sweep's (protocol, parameters, seed) grid out over a
// worker pool (Options.Parallel, default NumCPU) and aggregating in
// enumeration order, so rendered tables are byte-identical at any
// parallelism.
//
// Within one run, Scenario.Tiles shards the city across geo tiles —
// per-tile engine shards under a shared clock, a conservative windowed
// barrier, and a capture-and-replay fan that runs receiver protocol
// handlers on per-tile workers (frugalsim -tiles, experiments -tiles
// for the scale family; 0 auto-sizes by roster). Results are
// byte-identical at any tile count, pinned by the tile parity suite
// (internal/netsim/tileparity_test.go) and the metro-slice fingerprint
// golden; see ARCHITECTURE.md "Tile-parallel contracts".
//
// The simulated medium (internal/mac) indexes node positions and live
// transmissions in uniform spatial grids (internal/geo.Grid), so
// per-frame receiver, carrier-sense and interference lookups cost
// O(nodes in range) rather than O(all nodes); the index pads queries by
// a mobility-derived staleness margin and re-checks exact distances, so
// its deliveries are frame-for-frame identical to the full-roster
// reference scan (mac.Config.FullScan).
package repro
