// Package repro is a from-scratch Go reproduction of "Frugal Event
// Dissemination in a Mobile Environment" (Baehni, Chhabra, Guerraoui —
// Middleware 2005): a topic-based publish/subscribe protocol for mobile
// ad-hoc networks, the discrete-event MANET simulator it is evaluated on
// (random-waypoint and city-section mobility, 802.11b-style CSMA
// broadcast MAC with collisions), three flooding baselines, and a harness
// that regenerates every figure and table of the paper's evaluation.
//
// Layout:
//
//   - internal/core — the frugal protocol (the paper's contribution)
//   - internal/sim, geo, topic, event, radio, mobility, mac — substrates
//   - internal/flood — the three flooding baselines of Section 5.2
//   - internal/netsim, metrics, exp — scenario runner and experiments
//   - cmd/experiments, cmd/frugalsim — command-line tools
//   - examples/ — quickstart, carpark, campus, inprocess
//
// The benchmarks in bench_test.go exercise one reduced-scale run per
// paper figure; go run ./cmd/experiments regenerates the full tables.
//
// # Building and running
//
// The module is self-contained (no external dependencies):
//
//	go build ./...
//	go test ./...                        # unit + reproduction tests
//	go test -race ./...                  # includes the parallel runner
//	go run ./cmd/experiments -list       # enumerate experiments
//	go run ./cmd/experiments -fig fig13  # one figure, scaled down
//	go run ./cmd/experiments -parallel 8 # cap concurrent simulations
//
// # Determinism contract
//
// A netsim.Result is a pure function of (Scenario, Seed): every run owns
// its engine, RNG streams, mobility models and protocol instances, and
// shares no mutable state. The experiment harness exploits this by
// fanning each sweep's (protocol, parameters, seed) grid out over a
// worker pool (Options.Parallel, default NumCPU) and aggregating in
// enumeration order, so rendered tables are byte-identical at any
// parallelism.
//
// The simulated medium (internal/mac) indexes node positions and live
// transmissions in uniform spatial grids (internal/geo.Grid), so
// per-frame receiver, carrier-sense and interference lookups cost
// O(nodes in range) rather than O(all nodes); the index pads queries by
// a mobility-derived staleness margin and re-checks exact distances, so
// its deliveries are frame-for-frame identical to the full-roster
// reference scan (mac.Config.FullScan).
package repro
