// Package repro is a from-scratch Go reproduction of "Frugal Event
// Dissemination in a Mobile Environment" (Baehni, Chhabra, Guerraoui —
// Middleware 2005): a topic-based publish/subscribe protocol for mobile
// ad-hoc networks, the discrete-event MANET simulator it is evaluated on
// (random-waypoint and city-section mobility, 802.11b-style CSMA
// broadcast MAC with collisions), three flooding baselines, and a harness
// that regenerates every figure and table of the paper's evaluation.
//
// Layout:
//
//   - internal/core — the frugal protocol (the paper's contribution)
//   - internal/sim, geo, topic, event, radio, mobility, mac — substrates
//   - internal/flood — the three flooding baselines of Section 5.2
//   - internal/netsim, metrics, exp — scenario runner and experiments
//   - cmd/experiments, cmd/frugalsim — command-line tools
//   - examples/ — quickstart, carpark, campus, inprocess
//
// The benchmarks in bench_test.go exercise one reduced-scale run per
// paper figure; go run ./cmd/experiments regenerates the full tables.
package repro
