// Quickstart: the smallest end-to-end use of the library.
//
// Ten mobile nodes run the frugal pub/sub protocol over the simulated
// 802.11b broadcast medium; one of them publishes an event with a 60 s
// validity period, and we watch it spread through the network.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/netsim"
)

func main() {
	sc := netsim.Scenario{
		Name:  "quickstart",
		Nodes: 10,
		Seed:  1,
		Mobility: netsim.MobilitySpec{
			Kind:     netsim.RandomWaypoint,
			Area:     geo.NewRect(1200, 1200),
			MinSpeed: 5,
			MaxSpeed: 15,
			Pause:    time.Second,
		},
		MAC: mac.DefaultConfig(339), // the paper's 2 Mbps radio range
		Protocol: netsim.FrugalSpec(netsim.CoreTuning{
			HBUpperBound: time.Second,
			UseSpeed:     true,
		}),
		SubscriberFraction: 1.0, // everyone wants the event
		Publications: []netsim.Publication{
			{Offset: 0, Publisher: 0, Validity: 60 * time.Second},
		},
		Warmup:  10 * time.Second,
		Measure: 65 * time.Second,
	}

	res, err := netsim.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	o := res.Outcomes[0]
	fmt.Printf("event published by %v reached %d of %d subscribers within its validity\n",
		o.Publisher, o.DeliveredInTime, o.Eligible)
	fmt.Printf("reliability: %.1f%%\n\n", 100*res.Reliability())

	fmt.Println("per-node traffic during the 65 s window:")
	fmt.Println("node  heartbeats  idlists  eventmsgs  delivered")
	for _, n := range res.Nodes {
		fmt.Printf("%-4v  %-10d  %-7d  %-9d  %d\n",
			n.ID, n.Proto.HeartbeatsSent, n.Proto.IDListsSent,
			n.Proto.EventMsgsSent, n.Proto.Delivered)
	}
}
