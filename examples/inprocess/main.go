// Inprocess runs the frugal protocol on REAL time, off the simulator:
// three "devices" live on goroutines, connected by an in-process
// broadcast bus, each wrapped in core.Safe for thread safety. This is the
// deployment shape for a real transport (UDP broadcast, BLE advertising):
// implement core.Scheduler with the wall clock and core.Transport with
// your radio, and the protocol code is unchanged.
//
// Run with: go run ./examples/inprocess
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topic"
)

// wallClock implements core.Scheduler on real time.
type wallClock struct{ start time.Time }

func (w wallClock) Now() time.Duration { return time.Since(w.start) }
func (w wallClock) After(d time.Duration, fn func()) core.Timer {
	return wallTimer{time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

// bus is an in-process lossless broadcast medium. A real deployment
// would marshal with event.Marshal and send UDP broadcast datagrams.
type bus struct {
	mu    sync.RWMutex
	peers map[event.NodeID]*core.Safe
}

func (b *bus) attach(id event.NodeID, p *core.Safe) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.peers == nil {
		b.peers = make(map[event.NodeID]*core.Safe)
	}
	b.peers[id] = p
}

// transport broadcasts on behalf of one device.
type transport struct {
	b    *bus
	from event.NodeID
}

func (t transport) Broadcast(m event.Message) {
	// Round-trip through the real wire encoding to prove it works.
	wire := event.Marshal(m)
	decoded, err := event.Unmarshal(wire)
	if err != nil {
		log.Fatalf("wire format round-trip failed: %v", err)
	}
	t.b.mu.RLock()
	defer t.b.mu.RUnlock()
	for id, p := range t.b.peers {
		if id == t.from {
			continue
		}
		p := p
		go func() { _ = p.HandleMessage(decoded) }()
	}
}

func main() {
	clock := wallClock{start: time.Now()}
	b := &bus{}
	news := topic.MustParse(".campus.news")

	var wg sync.WaitGroup
	devices := make([]*core.Safe, 3)
	for i := range devices {
		id := event.NodeID(i)
		p, err := core.NewSafe(core.Config{
			ID: id,
			// Fast heartbeats so the demo converges in ~2 wall seconds.
			HBDelay:      150 * time.Millisecond,
			HBUpperBound: 150 * time.Millisecond,
			OnDeliver: func(ev event.Event) {
				fmt.Printf("%6s device %v delivered: %s\n",
					clock.Now().Round(time.Millisecond), id, ev.Payload)
				wg.Done()
			},
		}, clock, transport{b: b, from: id})
		if err != nil {
			log.Fatal(err)
		}
		devices[i] = p
		b.attach(id, p)
		if err := p.Subscribe(news); err != nil {
			log.Fatal(err)
		}
	}
	defer func() {
		for _, d := range devices {
			d.Stop()
		}
	}()

	// Let the devices discover each other over a few heartbeats.
	time.Sleep(500 * time.Millisecond)
	for i, d := range devices {
		fmt.Printf("device %d neighbors: %v\n", i, d.NeighborIDs())
	}

	// Three deliveries expected: the publisher self-delivers (it is
	// subscribed) plus the two remote devices.
	wg.Add(3)
	fmt.Printf("%6s device 0 publishing\n", clock.Now().Round(time.Millisecond))
	if _, err := devices[0].Publish(news, []byte("lecture moved to room BC410"), time.Minute); err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		fmt.Println("all devices received the event over the real-time transport")
	case <-time.After(5 * time.Second):
		log.Fatal("timed out waiting for deliveries")
	}
}
