// Campus walks through the paper's city-section evaluation at small
// scale: 15 processes drive the synthetic EPFL-like campus streets, every
// process becomes the publisher in turn, and we sweep the event validity
// period to show its leverage on reliability (the paper's Figure 16).
//
// Run with: go run ./examples/campus
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

func main() {
	fmt.Println("city-section campus: reliability vs validity period")
	fmt.Println("(15 processes, 44 m radio range, 8-13 m/s road limits)")
	fmt.Println()

	tb := metrics.NewTable("", "validity", "reliability", "duplicates/process")
	for _, validity := range []time.Duration{
		25 * time.Second, 75 * time.Second, 150 * time.Second,
	} {
		var rel, dup metrics.Agg
		for seed := int64(1); seed <= 2; seed++ {
			for publisher := 0; publisher < 15; publisher++ {
				sc := netsim.Scenario{
					Name:  "campus",
					Nodes: 15,
					Seed:  seed,
					Mobility: netsim.MobilitySpec{
						Kind:      netsim.CitySection,
						StopProb:  0.3,
						StopMin:   2 * time.Second,
						StopMax:   10 * time.Second,
						DestPause: 5 * time.Second,
					},
					MAC: mac.DefaultConfig(44),
					Protocol: netsim.FrugalSpec(netsim.CoreTuning{
						HBUpperBound: time.Second,
						UseSpeed:     true,
					}),
					SubscriberFraction: 1.0,
					Publications: []netsim.Publication{
						{Publisher: publisher, Validity: validity},
					},
					Warmup:  30 * time.Second,
					Measure: validity + 5*time.Second,
				}
				res, err := netsim.Run(sc)
				if err != nil {
					log.Fatal(err)
				}
				rel.Add(res.Reliability())
				dup.Add(res.DuplicatesPerProcess())
			}
		}
		tb.AddRow(validity.String(), metrics.Pct(rel.Mean()), metrics.F2(dup.Mean()))
	}
	fmt.Println(tb)
	fmt.Println("longer validity lets mobility carry events to more meetings —")
	fmt.Println("the paper's empirical lower bound on validity for a target reliability.")
}
