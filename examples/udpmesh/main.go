// Udpmesh runs a five-node frugal pub/sub mesh over REAL UDP sockets on
// the loopback interface: each node binds its own port, the full roster
// is handed to every node (the transport filters the self-address), and
// the paper's pipeline — heartbeat discovery, id exchange, back-off
// dissemination — runs on actual datagrams with the production wire
// format.
//
// Run with: go run ./examples/udpmesh
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topic"
	"repro/internal/transport"
)

const meshSize = 5

type clock struct{ start time.Time }

func (c clock) Now() time.Duration { return time.Since(c.start) }
func (c clock) After(d time.Duration, fn func()) core.Timer {
	return timer{time.AfterFunc(d, fn)}
}

type timer struct{ t *time.Timer }

func (t timer) Stop() bool { return t.t.Stop() }

func main() {
	sched := clock{start: time.Now()}
	alerts := topic.MustParse(".mesh.alerts")

	type node struct {
		udp   *transport.UDP
		proto *core.Safe
	}
	nodes := make([]*node, meshSize)

	var delivered sync.WaitGroup
	for i := range nodes {
		i := i
		n := &node{}
		udp, err := transport.NewUDP(transport.UDPConfig{
			Listen:  "127.0.0.1:0",
			Handler: func(m event.Message) { _ = n.proto.HandleMessage(m) },
		})
		if err != nil {
			log.Fatalf("UDP bind: %v", err)
		}
		defer udp.Close()
		n.udp = udp

		proto, err := core.NewSafe(core.Config{
			ID:           event.NodeID(i),
			HBDelay:      200 * time.Millisecond,
			HBUpperBound: 200 * time.Millisecond,
			OnDeliver: func(ev event.Event) {
				fmt.Printf("%8s node %d <- %q (event %s)\n",
					sched.Now().Round(time.Millisecond), i, ev.Payload, ev.ID.String()[:8])
				delivered.Done()
			},
		}, sched, udp)
		if err != nil {
			log.Fatal(err)
		}
		defer proto.Stop()
		n.proto = proto
		// Start the read loop only after n.proto is assigned: the handler
		// above closes over it.
		udp.Start()
		nodes[i] = n
		fmt.Printf("node %d listening on %s\n", i, udp.LocalAddr())
	}

	// Hand every node the full roster; self-addresses are filtered.
	for _, a := range nodes {
		for _, b := range nodes {
			if err := a.udp.AddPeer(b.udp.LocalAddr().String()); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		if err := n.proto.Subscribe(alerts); err != nil {
			log.Fatal(err)
		}
	}

	// A few heartbeat rounds of discovery.
	time.Sleep(600 * time.Millisecond)
	for i, n := range nodes {
		fmt.Printf("node %d neighbors: %v\n", i, n.proto.NeighborIDs())
	}

	delivered.Add(meshSize) // everyone, publisher included, is subscribed
	if _, err := nodes[2].proto.Publish(alerts, []byte("perimeter breach, dock 4"), time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s node 2 published\n", sched.Now().Round(time.Millisecond))

	done := make(chan struct{})
	go func() { delivered.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		log.Fatal("timed out waiting for mesh-wide delivery")
	}

	var sent, recv uint64
	for _, n := range nodes {
		s := n.udp.Stats()
		sent += s.DatagramsSent
		recv += s.DatagramsReceived
	}
	fmt.Printf("\nmesh-wide delivery complete: %d datagrams sent, %d received\n", sent, recv)
}
