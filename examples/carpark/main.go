// Carpark reproduces the application sketched in the paper's footnote 1:
// cars leaving a car park publish the freed spot on a topic like
// ".city.parking.lotA"; driving cars subscribe to ".city.parking" and
// learn about free spots near their destination while they move through
// the campus streets.
//
// Unlike the quickstart, this example composes the library pieces
// directly — engine, medium, mobility models and one core.Protocol per
// car — which is the shape a real application embedding the protocol
// would take.
//
// Run with: go run ./examples/carpark
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/sim"
	"repro/internal/topic"
)

const cars = 12

type car struct {
	id    event.NodeID
	model mobility.Model
	proto *core.Protocol
}

// fleet adapts the cars' mobility models to the MAC medium.
type fleet []*car

func (f fleet) Position(id event.NodeID, at sim.Time) geo.Point {
	return f[id].model.Position(at)
}

// simScheduler adapts the simulation engine to core.Scheduler.
type simScheduler struct{ eng *sim.Engine }

func (s simScheduler) Now() time.Duration { return s.eng.Now().Duration() }
func (s simScheduler) After(d time.Duration, fn func()) core.Timer {
	return s.eng.After(d, fn)
}

// portTransport broadcasts through a MAC port, charging the paper's
// 400-byte event size model.
type portTransport struct{ port *mac.Port }

func (t portTransport) Broadcast(m event.Message) {
	t.port.Broadcast(m, m.WireSize(event.DefaultSizeModel()))
}

func main() {
	eng := sim.New(7)
	campus := mobility.NewCampusGraph()
	parking := topic.MustParse(".city.parking")

	f := make(fleet, cars)
	for i := range f {
		f[i] = &car{id: event.NodeID(i)}
		f[i].model = mobility.NewCity(mobility.CityConfig{
			Graph:     campus,
			StopProb:  0.3,
			StopMin:   2 * time.Second,
			StopMax:   8 * time.Second,
			DestPause: 5 * time.Second,
		}, eng.NewRand())
	}

	// City radio range: 44 m, as in the paper's campus runs.
	medium := mac.New(eng, mac.DefaultConfig(44), f)

	for _, c := range f {
		c := c
		port := medium.Attach(c.id, func(fr mac.Frame) {
			_ = c.proto.HandleMessage(fr.Msg)
		})
		proto, err := core.New(core.Config{
			ID:           c.id,
			HBUpperBound: time.Second,
			Speed: func() float64 {
				return c.model.Speed(eng.Now())
			},
			OnDeliver: func(ev event.Event) {
				fmt.Printf("[%7s] car %v learns: %s (topic %v)\n",
					eng.Now(), c.id, ev.Payload, ev.Topic)
			},
			Rand: eng.NewRand(),
		}, simScheduler{eng}, portTransport{port})
		if err != nil {
			log.Fatal(err)
		}
		c.proto = proto
		if err := proto.Subscribe(parking); err != nil {
			log.Fatal(err)
		}
	}

	// Three cars leave their lots at different times; each freed spot
	// stays relevant for two minutes.
	departures := []struct {
		at   time.Duration
		car  int
		lot  string
		spot string
	}{
		{20 * time.Second, 2, "lotA", "spot 14 free"},
		{45 * time.Second, 7, "lotB", "spot 3 free"},
		{70 * time.Second, 4, "lotA", "spot 9 free"},
	}
	for _, d := range departures {
		d := d
		eng.At(sim.At(d.at), func() {
			lot, err := parking.Child(d.lot)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := f[d.car].proto.Publish(lot, []byte(d.spot), 2*time.Minute); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%7s] car %v leaves %s and publishes %q\n",
				eng.Now(), f[d.car].id, d.lot, d.spot)
		})
	}

	eng.RunUntil(sim.Seconds(180))

	fmt.Println("\nafter 3 minutes:")
	for _, c := range f {
		st := c.proto.Stats()
		fmt.Printf("car %-3v knows %d spot(s); sent %d heartbeats, %d event messages\n",
			c.id, st.Delivered, st.HeartbeatsSent, st.EventMsgsSent)
	}
}
