package mac

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/sim"
)

// fixedLocator places nodes at immutable positions.
type fixedLocator map[event.NodeID]geo.Point

func (l fixedLocator) Position(id event.NodeID, _ sim.Time) geo.Point { return l[id] }

type rxLog struct {
	frames []Frame
	times  []sim.Time
}

func attach(m *Medium, eng *sim.Engine, id event.NodeID) *rxLog {
	log := &rxLog{}
	m.Attach(id, func(f Frame) {
		log.frames = append(log.frames, f)
		log.times = append(log.times, eng.Now())
	})
	return log
}

func hb(from event.NodeID) event.Message { return event.Heartbeat{From: from} }

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(*Config) {}, true},
		{"zero bitrate", func(c *Config) { c.BitrateBps = 0 }, false},
		{"zero range", func(c *Config) { c.Range = 0 }, false},
		{"zero slots", func(c *Config) { c.CWSlots = 0 }, false},
		{"negative header", func(c *Config) { c.HeaderBytes = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(300)
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestAirtime(t *testing.T) {
	cfg := DefaultConfig(300)
	// 400 B payload + 28 B header at 2 Mbps = 1712 us + 192 us preamble.
	got := cfg.Airtime(400)
	want := 192*time.Microsecond + 1712*time.Microsecond
	if got != want {
		t.Fatalf("Airtime(400) = %v, want %v", got, want)
	}
	if cfg.Airtime(0) <= cfg.Preamble {
		t.Fatal("empty frame still carries header airtime")
	}
}

func TestDeliveryWithinRange(t *testing.T) {
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(100, 0), 3: geo.Pt(1000, 0)}
	m := New(eng, DefaultConfig(300), loc)
	p1 := m.Attach(1, nil)
	log2 := attach(m, eng, 2)
	log3 := attach(m, eng, 3)

	p1.Broadcast(hb(1), 50)
	eng.Run()

	if len(log2.frames) != 1 {
		t.Fatalf("in-range receiver got %d frames, want 1", len(log2.frames))
	}
	if log2.frames[0].From != 1 || log2.frames[0].AppBytes != 50 {
		t.Fatalf("frame = %+v", log2.frames[0])
	}
	if len(log3.frames) != 0 {
		t.Fatal("out-of-range receiver got a frame")
	}
	if c := p1.Counters(); c.FramesSent != 1 || c.AppBytesSent != 50 || c.MACBytesSent != 78 {
		t.Fatalf("sender counters = %+v", c)
	}
}

func TestDeliveryDelayIsAirtimePlusBackoff(t *testing.T) {
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(10, 0)}
	cfg := DefaultConfig(300)
	m := New(eng, cfg, loc)
	p1 := m.Attach(1, nil)
	log2 := attach(m, eng, 2)

	p1.Broadcast(hb(1), 50)
	eng.Run()

	if len(log2.times) != 1 {
		t.Fatalf("got %d frames", len(log2.times))
	}
	minT := sim.Time(0).Add(cfg.DIFS + cfg.Airtime(50))
	maxT := minT.Add(time.Duration(cfg.CWSlots) * cfg.SlotTime)
	if log2.times[0] < minT || log2.times[0] > maxT {
		t.Fatalf("delivered at %v, want within [%v,%v]", log2.times[0], minT, maxT)
	}
}

func TestSelfDoesNotReceive(t *testing.T) {
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0)}
	m := New(eng, DefaultConfig(300), loc)
	var got int
	p := m.Attach(1, func(Frame) { got++ })
	p.Broadcast(hb(1), 10)
	eng.Run()
	if got != 0 {
		t.Fatal("sender received own frame")
	}
}

func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	// Two senders in carrier-sense range both reach receiver 3. With CSMA
	// they should (almost always) serialize; allow the rare same-slot
	// collision by trying seeds until clean. Both frames must arrive.
	eng := sim.New(3)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(50, 0), 3: geo.Pt(25, 50)}
	m := New(eng, DefaultConfig(300), loc)
	p1 := m.Attach(1, nil)
	p2 := m.Attach(2, nil)
	log3 := attach(m, eng, 3)

	p1.Broadcast(hb(1), 400)
	p2.Broadcast(hb(2), 400)
	eng.Run()

	if len(log3.frames) != 2 {
		t.Fatalf("receiver got %d frames, want 2 (CSMA serialization)", len(log3.frames))
	}
	if log3.frames[0].From == log3.frames[1].From {
		t.Fatal("same sender twice")
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// A(0) and C(600) cannot sense each other (range 340) but both reach
	// B(300). Forcing both to transmit at the same instant corrupts B's
	// reception of both frames.
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(600, 0), 3: geo.Pt(300, 0)}
	cfg := DefaultConfig(340)
	cfg.CWSlots = 1 // deterministic back-off: both start together
	m := New(eng, cfg, loc)
	pa := m.Attach(1, nil)
	pc := m.Attach(2, nil)
	logB := attach(m, eng, 3)

	pa.Broadcast(hb(1), 400)
	pc.Broadcast(hb(2), 400)
	eng.Run()

	if len(logB.frames) != 0 {
		t.Fatalf("hidden-terminal frames delivered: %d", len(logB.frames))
	}
	got := m.port(3).Counters()
	if got.FramesLost != 2 {
		t.Fatalf("FramesLost = %d, want 2", got.FramesLost)
	}
	// The senders, unaware, still count their transmissions.
	if pa.Counters().FramesSent != 1 || pc.Counters().FramesSent != 1 {
		t.Fatal("senders should have transmitted")
	}
}

func TestHalfDuplexLoss(t *testing.T) {
	// Both nodes transmit simultaneously in mutual range (forced by
	// CWSlots=1): neither can receive the other's frame.
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(100, 0)}
	cfg := DefaultConfig(340)
	cfg.CWSlots = 1
	m := New(eng, cfg, loc)
	var got1, got2 int
	p1 := m.Attach(1, func(Frame) { got1++ })
	p2 := m.Attach(2, func(Frame) { got2++ })

	p1.Broadcast(hb(1), 400)
	p2.Broadcast(hb(2), 400)
	eng.Run()

	if got1 != 0 || got2 != 0 {
		t.Fatalf("half-duplex nodes received frames: %d, %d", got1, got2)
	}
}

func TestQueueFIFO(t *testing.T) {
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(10, 0)}
	m := New(eng, DefaultConfig(300), loc)
	p1 := m.Attach(1, nil)
	log2 := attach(m, eng, 2)

	for i := 0; i < 5; i++ {
		p1.Broadcast(event.IDList{From: 1, IDs: []event.ID{{Lo: uint64(i)}}}, 16)
	}
	eng.Run()

	if len(log2.frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(log2.frames))
	}
	for i, f := range log2.frames {
		l := f.Msg.(event.IDList)
		if l.IDs[0].Lo != uint64(i) {
			t.Fatalf("frame %d out of order: %v", i, l.IDs[0].Lo)
		}
	}
}

func TestQueueCapDrops(t *testing.T) {
	eng := sim.New(1)
	loc := fixedLocator{1: geo.Pt(0, 0)}
	cfg := DefaultConfig(300)
	cfg.QueueCap = 2
	m := New(eng, cfg, loc)
	p1 := m.Attach(1, nil)
	for i := 0; i < 5; i++ {
		p1.Broadcast(hb(1), 10)
	}
	eng.Run()
	c := p1.Counters()
	// Head-of-queue frame is being sent while the queue holds 2 more.
	if c.QueueDrops == 0 {
		t.Fatal("expected queue drops")
	}
	if c.FramesSent+c.QueueDrops != 5 {
		t.Fatalf("sent %d + dropped %d != 5", c.FramesSent, c.QueueDrops)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng := sim.New(1)
	m := New(eng, DefaultConfig(300), fixedLocator{})
	m.Attach(1, nil)
	m.Attach(1, nil)
}

func TestBusySenderDefers(t *testing.T) {
	eng := sim.New(5)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(50, 0), 3: geo.Pt(100, 0)}
	m := New(eng, DefaultConfig(300), loc)
	p1 := m.Attach(1, nil)
	p2 := m.Attach(2, nil)
	log3 := attach(m, eng, 3)

	p1.Broadcast(hb(1), 1400) // long frame occupies the channel
	// Node 2 tries while 1 is (very likely) still on air.
	eng.After(300*time.Microsecond, func() { p2.Broadcast(hb(2), 50) })
	eng.Run()

	if len(log3.frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(log3.frames))
	}
	if p2.Counters().Defers == 0 {
		t.Fatal("second sender should have sensed a busy channel")
	}
}

func TestManyNodesDeterminism(t *testing.T) {
	run := func() []uint64 {
		eng := sim.New(77)
		loc := fixedLocator{}
		for i := event.NodeID(0); i < 20; i++ {
			loc[i] = geo.Pt(float64(i)*40, 0)
		}
		m := New(eng, DefaultConfig(200), loc)
		ports := make([]*Port, 20)
		for i := event.NodeID(0); i < 20; i++ {
			ports[i] = m.Attach(i, nil)
		}
		for i := range ports {
			i := i
			eng.After(time.Duration(i)*100*time.Microsecond, func() {
				ports[i].Broadcast(hb(event.NodeID(i)), 100)
			})
		}
		eng.Run()
		out := make([]uint64, 0, 40)
		for _, p := range ports {
			c := p.Counters()
			out = append(out, c.FramesReceived, c.FramesLost)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic MAC at counter %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// movingLocator drifts every node along +x at 2 m/s so periodic index
// refreshes actually relocate nodes across cell boundaries.
type movingLocator map[event.NodeID]geo.Point

func (l movingLocator) Position(id event.NodeID, at sim.Time) geo.Point {
	p := l[id]
	return geo.Pt(p.X+2*at.Seconds(), p.Y)
}

// TestBroadcastAllocationFlat enforces the allocation-flat contract
// (see ARCHITECTURE.md "Performance contracts") where CI can see it
// fail: once the pools and scratch buffers are warm, a steady-state
// broadcast — contention, airtime, delivery, index refreshes with
// moving nodes — must not allocate. The roster moves so the
// IndexGrid.Relocate path (cell-boundary re-bucketing) is exercised,
// not just the static fast path.
func TestBroadcastAllocationFlat(t *testing.T) {
	eng := sim.New(1)
	const n = 120
	base := make(movingLocator)
	for i := event.NodeID(0); i < n; i++ {
		base[i] = geo.Pt(float64(i%12)*350, float64(i/12)*350)
	}
	cfg := DefaultConfig(400)
	cfg.SpeedBounded = true
	cfg.MaxSpeed = 2
	m := New(eng, cfg, base)
	ports := make([]*Port, n)
	msgs := make([]event.Message, n)
	for i := event.NodeID(0); i < n; i++ {
		ports[i] = m.Attach(i, func(Frame) {})
		msgs[i] = event.Heartbeat{From: i}
	}
	i := 0
	send := func() {
		ports[i%n].Broadcast(msgs[i%n], 50)
		eng.Run()
		i++
	}
	for k := 0; k < 4*n; k++ { // warm pools, scratch buffers and buckets
		send()
	}
	if allocs := testing.AllocsPerRun(400, send); allocs > 0.05 {
		t.Fatalf("steady-state broadcast allocates %.2f allocs/op, want 0", allocs)
	}
}
