package mac

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
)

func TestProbabilisticReception(t *testing.T) {
	// 50% channel: roughly half of 200 frames arrive; the rest are
	// counted as faded, never as collisions.
	eng := sim.New(42)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(100, 0)}
	cfg := DefaultConfig(300)
	cfg.ReceiveProb = func(d float64) float64 { return 0.5 }
	m := New(eng, cfg, loc)
	p1 := m.Attach(1, nil)
	var got int
	m.Attach(2, func(Frame) { got++ })

	const frames = 200
	for i := 0; i < frames; i++ {
		p1.Broadcast(hb(1), 50)
	}
	eng.Run()

	c := m.port(2).Counters()
	if got < frames/4 || got > frames*3/4 {
		t.Fatalf("received %d of %d at p=0.5", got, frames)
	}
	if c.FramesFaded == 0 {
		t.Fatal("no frames faded")
	}
	if c.FramesLost != 0 {
		t.Fatalf("fading miscounted as collisions: %d", c.FramesLost)
	}
	if int(c.FramesReceived+c.FramesFaded) != frames {
		t.Fatalf("received %d + faded %d != %d", c.FramesReceived, c.FramesFaded, frames)
	}
}

func TestProbabilisticReceptionDistanceDependent(t *testing.T) {
	// A steep distance-dependent channel: the near receiver hears
	// (almost) everything, the far one (almost) nothing.
	eng := sim.New(7)
	loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(50, 0), 3: geo.Pt(250, 0)}
	cfg := DefaultConfig(300)
	cfg.ReceiveProb = func(d float64) float64 {
		if d < 100 {
			return 0.95
		}
		return 0.05
	}
	m := New(eng, cfg, loc)
	p1 := m.Attach(1, nil)
	var near, far int
	m.Attach(2, func(Frame) { near++ })
	m.Attach(3, func(Frame) { far++ })

	for i := 0; i < 100; i++ {
		p1.Broadcast(hb(1), 50)
	}
	eng.Run()

	if near < 80 {
		t.Fatalf("near receiver got %d/100, want most", near)
	}
	if far > 20 {
		t.Fatalf("far receiver got %d/100, want few", far)
	}
}

func TestProbabilisticReceptionDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.New(11)
		loc := fixedLocator{1: geo.Pt(0, 0), 2: geo.Pt(100, 0)}
		cfg := DefaultConfig(300)
		cfg.ReceiveProb = func(d float64) float64 { return 0.3 }
		m := New(eng, cfg, loc)
		p1 := m.Attach(1, nil)
		m.Attach(2, nil)
		for i := 0; i < 50; i++ {
			p1.Broadcast(hb(1), 50)
		}
		eng.Run()
		c := m.port(2).Counters()
		return c.FramesReceived, c.FramesFaded
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 || f1 != f2 {
		t.Fatalf("probabilistic channel nondeterministic: (%d,%d) vs (%d,%d)", r1, f1, r2, f2)
	}
}
