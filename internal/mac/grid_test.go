package mac

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/sim"
)

// modelLocator adapts mobility models to the medium.
type modelLocator []mobility.Model

func (l modelLocator) Position(id event.NodeID, at sim.Time) geo.Point {
	return l[id].Position(at)
}

// runTrafficLog drives a seeded multi-node broadcast storm over moving
// nodes and returns the full delivery/counter log. Everything derives
// from fixed seeds, so two runs differing only in Config.FullScan must
// produce identical logs if the grid path is exact.
func runTrafficLog(t *testing.T, cfg Config, nodes int, dur time.Duration) []string {
	t.Helper()
	eng := sim.New(99)
	models := make(modelLocator, nodes)
	for i := range models {
		models[i] = mobility.NewWaypoint(mobility.WaypointConfig{
			Area:     geo.NewRect(1500, 1500),
			MinSpeed: 1,
			MaxSpeed: 40,
			Pause:    500 * time.Millisecond,
		}, rand.New(rand.NewSource(int64(i)+1)))
	}
	m := New(eng, cfg, models)
	var log []string
	ports := make([]*Port, nodes)
	for i := 0; i < nodes; i++ {
		id := event.NodeID(i)
		ports[i] = m.Attach(id, func(f Frame) {
			log = append(log, fmt.Sprintf("%v rx %d<-%d", eng.Now(), id, f.From))
		})
	}
	// Every node broadcasts on its own jittered period; dense enough for
	// carrier-sense defers, collisions and hidden terminals to occur.
	for i := 0; i < nodes; i++ {
		i := i
		rng := rand.New(rand.NewSource(int64(i) + 1000))
		var tick func()
		tick = func() {
			ports[i].Broadcast(event.Heartbeat{From: event.NodeID(i)}, 40+rng.Intn(400))
			eng.After(20*time.Millisecond+time.Duration(rng.Intn(int(80*time.Millisecond))), tick)
		}
		eng.After(time.Duration(rng.Intn(int(10*time.Millisecond))), tick)
	}
	eng.RunUntil(sim.At(dur))
	for i, p := range ports {
		c := p.Counters()
		log = append(log, fmt.Sprintf("node %d counters %+v", i, c))
	}
	return log
}

func compareLogs(t *testing.T, scan, grid []string) {
	t.Helper()
	if len(scan) != len(grid) {
		t.Fatalf("log lengths differ: full-scan %d vs grid %d", len(scan), len(grid))
	}
	for i := range scan {
		if scan[i] != grid[i] {
			t.Fatalf("logs diverge at entry %d:\n  full-scan: %s\n  grid:      %s",
				i, scan[i], grid[i])
		}
	}
}

// TestGridMatchesFullScanMobile is the load-bearing equivalence test:
// with moving nodes and a declared speed bound, grid-indexed delivery
// must match the full-roster reference frame-for-frame — same
// receptions at the same instants, same loss/defer counters.
func TestGridMatchesFullScanMobile(t *testing.T) {
	base := DefaultConfig(300)
	base.SpeedBounded = true
	base.MaxSpeed = 40

	scanCfg := base
	scanCfg.FullScan = true
	scan := runTrafficLog(t, scanCfg, 40, 3*time.Second)
	grid := runTrafficLog(t, base, 40, 3*time.Second)
	if len(scan) < 100 {
		t.Fatalf("scenario too quiet to be meaningful: %d log entries", len(scan))
	}
	compareLogs(t, scan, grid)
}

// TestGridMatchesFullScanShadowing repeats the equivalence under a
// probabilistic channel, where exactness additionally requires the
// medium's RNG draw sequence to line up between the two paths.
func TestGridMatchesFullScanShadowing(t *testing.T) {
	base := DefaultConfig(300)
	base.SpeedBounded = true
	base.MaxSpeed = 40
	base.ReceiveProb = func(d float64) float64 {
		if d > 250 {
			return 0.3
		}
		return 0.9
	}

	scanCfg := base
	scanCfg.FullScan = true
	scan := runTrafficLog(t, scanCfg, 30, 2*time.Second)
	grid := runTrafficLog(t, base, 30, 2*time.Second)
	compareLogs(t, scan, grid)
}

// TestGridMatchesFullScanUnbounded drops the speed promise: the medium
// must fall back to per-instant re-bucketing and stay exact.
func TestGridMatchesFullScanUnbounded(t *testing.T) {
	base := DefaultConfig(300)

	scanCfg := base
	scanCfg.FullScan = true
	scan := runTrafficLog(t, scanCfg, 25, 2*time.Second)
	grid := runTrafficLog(t, base, 25, 2*time.Second)
	compareLogs(t, scan, grid)
}

// TestGridHiddenTerminal pins the interference path through the tx
// grid: two transmitters out of carrier-sense range of each other, both
// in range of a middle receiver, transmitting concurrently — the
// receiver must lose both frames, with and without the grid.
func TestGridHiddenTerminal(t *testing.T) {
	for _, fullScan := range []bool{false, true} {
		eng := sim.New(1)
		cfg := DefaultConfig(300)
		cfg.SpeedBounded = true // static
		cfg.FullScan = fullScan
		pos := modelLocator{
			mobility.Static{P: geo.Pt(0, 0)},
			mobility.Static{P: geo.Pt(290, 0)},
			mobility.Static{P: geo.Pt(580, 0)},
		}
		m := New(eng, cfg, pos)
		received := 0
		a := m.Attach(0, nil)
		mid := m.Attach(1, func(Frame) { received++ })
		c := m.Attach(2, nil)
		a.Broadcast(event.Heartbeat{From: 0}, 400)
		c.Broadcast(event.Heartbeat{From: 2}, 400)
		eng.Run()
		if received != 0 {
			t.Fatalf("fullScan=%v: middle node received %d frames through a collision", fullScan, received)
		}
		if got := mid.Counters().FramesLost; got != 2 {
			t.Fatalf("fullScan=%v: middle node lost %d frames, want 2", fullScan, got)
		}
	}
}
