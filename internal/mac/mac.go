// Package mac simulates a broadcast-only 802.11b-style medium access
// layer: CSMA carrier sensing with DIFS and slotted random back-off,
// transmission airtime derived from the bitrate, hidden-terminal
// collisions, and half-duplex receivers.
//
// The model intentionally captures exactly the phenomena the paper's
// protocol reacts to — losses from colliding broadcasts (the cause of the
// Figure 13 non-monotonicity) and airtime occupancy — without modeling
// 802.11 unicast machinery (RTS/CTS, ACKs, retries), which broadcast
// frames do not use.
package mac

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/sim"
)

// Config parameterizes the medium. The defaults model 802.11b broadcast
// at the 2 Mbps basic rate.
type Config struct {
	// BitrateBps is the broadcast bitrate (802.11b basic rate: 2 Mbps).
	BitrateBps float64
	// Range is the reception radius in meters.
	Range float64
	// CarrierSenseRange is the radius within which a transmitter is
	// heard as channel-busy; 0 means Range.
	CarrierSenseRange float64
	// InterferenceRange is the radius within which a concurrent foreign
	// transmission corrupts reception; 0 means Range.
	InterferenceRange float64
	// SlotTime is the contention slot (802.11b: 20 us).
	SlotTime time.Duration
	// DIFS is the idle period sensed before transmitting (50 us).
	DIFS time.Duration
	// CWSlots is the contention window size in slots (802.11b CWmin+1 = 32).
	CWSlots int
	// Preamble is the PHY preamble+PLCP airtime (long preamble: 192 us).
	Preamble time.Duration
	// HeaderBytes is the MAC framing overhead added to every frame.
	HeaderBytes int
	// QueueCap bounds the per-node outgoing queue; 0 means unbounded.
	QueueCap int
	// ReceiveProb, when non-nil, makes reception probabilistic: a frame
	// arriving from distance d meters is received with probability
	// ReceiveProb(d) (see radio.Shadowing). Range then acts as a
	// pruning radius — set it to the model's MaxRange. Nil keeps the
	// deterministic unit disc.
	ReceiveProb func(d float64) float64

	// SpeedBounded, when true, promises that no attached node moves
	// faster than MaxSpeed m/s. The medium then refreshes its spatial
	// node index only every GridRefresh of simulated time and pads range
	// queries by MaxSpeed*GridRefresh, making per-frame receiver lookups
	// cost O(nodes in range) instead of O(all nodes). A MaxSpeed of 0
	// with SpeedBounded set declares the nodes static (the index never
	// goes stale). Without the promise the index is rebuilt whenever the
	// clock has advanced — exact for arbitrary mobility, but O(N) per
	// distinct transmission instant, like the old full scan.
	// netsim derives this from the scenario's mobility model; set it
	// yourself only when driving the medium directly.
	SpeedBounded bool
	// MaxSpeed is the speed bound in m/s backing SpeedBounded.
	MaxSpeed float64
	// GridRefresh is the node-index refresh period under SpeedBounded
	// with a non-zero MaxSpeed; 0 selects 200 ms. Longer periods rebuild
	// less often but widen the query margin.
	GridRefresh time.Duration

	// Bounds is the scenario's bounding rectangle; the medium pre-sizes
	// its dense spatial indexes over it (cells of one radio range). It
	// does not have to be exact — positions outside are clamped into
	// border cells, which stays correct and only degrades query cost if
	// pervasive. A zero Bounds makes the medium derive a padded bounding
	// box from node positions at first use. netsim fills this from the
	// scenario's mobility model (area or street-graph bounding box); set
	// it yourself only when driving the medium directly.
	Bounds geo.Rect

	// FullScan disables the spatial index entirely and scans the full
	// roster for every frame — the pre-grid reference implementation.
	// It exists for differential tests and benchmarks; the grid path is
	// frame-for-frame identical to it.
	FullScan bool
}

// defaultGridRefresh is the node-index refresh period when
// Config.GridRefresh is zero.
const defaultGridRefresh = 200 * time.Millisecond

// DefaultConfig returns an 802.11b broadcast medium with the given
// reception radius.
func DefaultConfig(rangeM float64) Config {
	return Config{
		BitrateBps:  2e6,
		Range:       rangeM,
		SlotTime:    20 * time.Microsecond,
		DIFS:        50 * time.Microsecond,
		CWSlots:     32,
		Preamble:    192 * time.Microsecond,
		HeaderBytes: 28,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BitrateBps <= 0 {
		return fmt.Errorf("mac: bitrate %v", c.BitrateBps)
	}
	if c.Range <= 0 {
		return fmt.Errorf("mac: range %v", c.Range)
	}
	if c.SlotTime <= 0 || c.DIFS < 0 || c.CWSlots < 1 {
		return fmt.Errorf("mac: bad contention params")
	}
	if c.HeaderBytes < 0 || c.QueueCap < 0 || c.Preamble < 0 {
		return fmt.Errorf("mac: negative sizes")
	}
	if c.MaxSpeed < 0 {
		return fmt.Errorf("mac: negative MaxSpeed %v", c.MaxSpeed)
	}
	if c.GridRefresh < 0 {
		return fmt.Errorf("mac: negative GridRefresh %v", c.GridRefresh)
	}
	if c.Bounds.Width() < 0 || c.Bounds.Height() < 0 {
		return fmt.Errorf("mac: inverted Bounds %v", c.Bounds)
	}
	return nil
}

func (c Config) gridRefresh() time.Duration {
	if c.GridRefresh > 0 {
		return c.GridRefresh
	}
	return defaultGridRefresh
}

// GridRefreshPeriod returns the effective node-index refresh period
// (GridRefresh, or the 200 ms default). The tile-parallel runner sizes
// its synchronization window with it so the forced barrier refresh
// never exceeds the staleness budget the query margin covers.
func (c Config) GridRefreshPeriod() time.Duration { return c.gridRefresh() }

func (c Config) csRange() float64 {
	if c.CarrierSenseRange > 0 {
		return c.CarrierSenseRange
	}
	return c.Range
}

func (c Config) ifRange() float64 {
	if c.InterferenceRange > 0 {
		return c.InterferenceRange
	}
	return c.Range
}

// Airtime returns the on-air duration of a frame carrying appBytes of
// payload.
func (c Config) Airtime(appBytes int) time.Duration {
	bits := float64(appBytes+c.HeaderBytes) * 8
	return c.Preamble + time.Duration(bits/c.BitrateBps*float64(time.Second))
}

// Locator supplies node positions to the medium.
type Locator interface {
	Position(id event.NodeID, at sim.Time) geo.Point
}

// Frame is a broadcast MAC frame. AppBytes is the accounted payload size
// under the experiment's size model (the simulator does not serialize
// messages; it passes them by value and charges the modeled size).
type Frame struct {
	From     event.NodeID
	Msg      event.Message
	AppBytes int
}

// transmission is one on-air frame. Records are pooled by the medium;
// owner backs the pool's constant-time return to the sender's
// half-duplex history.
type transmission struct {
	from       event.NodeID
	owner      *Port
	pos        geo.Point
	start, end sim.Time
}

func (t *transmission) overlaps(o *transmission) bool {
	return t.start < o.end && o.start < t.end
}

// Counters aggregates per-node MAC statistics.
type Counters struct {
	FramesSent     uint64
	AppBytesSent   uint64
	MACBytesSent   uint64
	FramesReceived uint64
	FramesLost     uint64 // in range, corrupted by collision or half-duplex
	FramesFaded    uint64 // in range, lost to the probabilistic channel
	QueueDrops     uint64
	Defers         uint64 // attempts postponed by carrier sense
}

// Medium is the shared broadcast channel. Attach every node before
// running the simulation. Medium is driven entirely by the sim engine and
// is not safe for concurrent use.
//
// Internally the medium keeps two spatial indexes: node positions in a
// dense geo.IndexGrid keyed by attach rank, refreshed per
// Config.SpeedBounded (re-bucketing only the nodes that crossed a cell
// boundary) and queried with a staleness margin to find receivers, and
// live-transmission origins in a geo.Grid, maintained exactly, to
// answer carrier-sense and interference queries. Both indexes are
// conservative supersets followed by the exact distance checks of the
// reference full scan, so results — including the RNG draw sequence of
// probabilistic reception — are frame-for-frame identical to
// Config.FullScan.
//
// The per-frame paths reuse scratch buffers and pool transmission
// records and engine timers: once warm, broadcasting allocates nothing
// (see BenchmarkMACBroadcastAllocs), which is what keeps churny
// 10k-node sweeps allocation-flat.
type Medium struct {
	eng   *sim.Engine
	cfg   Config
	loc   Locator
	rng   *rand.Rand
	ports []*Port              // by attach rank
	order []event.NodeID       // rank -> id, deterministic iteration order
	rank  map[event.NodeID]int // id -> attach rank

	live     []*transmission // on-air or recently ended (pruned FIFO)
	liveHead int             // consumed prefix of live
	txFree   []*transmission // recycled transmission records

	// nodeGrid buckets node positions (by attach rank) recorded at
	// nodeGridAt; queries pad radii by margin to cover movement since.
	nodeGrid      *geo.IndexGrid
	nodeGridAt    sim.Time
	nodeGridBuilt bool
	staleAfter    time.Duration
	margin        float64

	// bounds is the resolved index bounding box: Config.Bounds, or a
	// padded roster bounding box derived at first use (ensureGeometry).
	bounds geo.Rect

	// txGrid buckets live transmissions by their (fixed) origin. Created
	// lazily alongside bounds.
	txGrid *geo.Grid[*transmission]

	scratch   []int32         // receiver-candidate reuse buffer (ranks)
	txScratch []*transmission // carrier-sense/interference reuse buffer
	allRanks  []int32         // 0..n-1, the FullScan "candidate set"

	// fan, when set, takes over clean-receiver delivery (SetDeliverFan);
	// cleanScratch is its reused rank buffer. route, when set, files
	// per-port contention callbacks on a caller-chosen engine shard
	// (SetShardRouter). Both are nil outside tile-parallel runs.
	fan          func(txPos geo.Point, clean []int32, f Frame)
	cleanScratch []int32
	route        func(rank int32) *sim.Engine
}

// New creates a medium. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config, loc Locator) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Medium{
		eng:  eng,
		cfg:  cfg,
		loc:  loc,
		rng:  eng.NewRand(),
		rank: make(map[event.NodeID]int),
	}
	if cfg.SpeedBounded {
		m.staleAfter = cfg.gridRefresh()
		m.margin = cfg.MaxSpeed * m.staleAfter.Seconds()
	}
	return m
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }

// SetDeliverFan installs a delivery fan-out hook for the tile-parallel
// runner. When set — and reception is deterministic (ReceiveProb nil;
// under a probabilistic channel the hook is ignored, because fade
// draws must interleave with receiver handlers in roster order) —
// finishCur splits delivery into two passes: a serial pass performs
// the exact range and corruption checks and collects the clean
// receiver ranks in ascending attach-rank order, then fan runs with
// the transmission origin, the clean set and the frame. The hook must
// deliver to every listed rank exactly once via DeliverTo before
// returning, in any goroutine arrangement it likes, as long as
// observable side effects land in ascending rank order — that replay
// discipline is what keeps the run byte-identical to the serial loop
// (ARCHITECTURE.md, "Tile-parallel contracts"). clean is a reused
// scratch buffer, valid only during the call.
func (m *Medium) SetDeliverFan(fan func(txPos geo.Point, clean []int32, f Frame)) {
	m.fan = fan
}

// DeliverTo delivers frame f to the port at attach rank: the receive
// counter plus the rx callback. It is the delivery half of the
// SetDeliverFan contract; concurrent calls are safe only for distinct
// ranks.
func (m *Medium) DeliverTo(rank int32, f Frame) {
	q := m.ports[rank]
	q.c.FramesReceived++
	if q.rx != nil {
		q.rx(f)
	}
}

// SetShardRouter files each port's contention and airtime callbacks on
// the engine returned by route(rank) instead of the medium's root
// engine. The tile-parallel runner points each node's callbacks at its
// owning tile's shard; because shards share one clock and one global
// seq counter (sim.Engine.NewShard), callback semantics are unchanged
// — the wheel an item sits in is invisible to the schedule.
func (m *Medium) SetShardRouter(route func(rank int32) *sim.Engine) {
	m.route = route
}

// eng returns the engine port p's callbacks are filed on.
func (p *Port) eng() *sim.Engine {
	if r := p.m.route; r != nil {
		return r(p.rank)
	}
	return p.m.eng
}

// Attach registers node id with receive callback rx (may be nil for a
// deaf node) and returns its port. Attaching the same id twice panics.
func (m *Medium) Attach(id event.NodeID, rx func(Frame)) *Port {
	if _, dup := m.rank[id]; dup {
		panic(fmt.Sprintf("mac: node %v attached twice", id))
	}
	p := &Port{m: m, id: id, rank: int32(len(m.order)), rx: rx}
	// Bind the contention-round callbacks once: the engine schedules
	// them thousands of times per node, and a method value costs an
	// allocation at every use.
	p.attemptFn = p.attempt
	p.startTxFn = p.startTx
	p.finishFn = p.finishCur
	m.rank[id] = len(m.order)
	m.order = append(m.order, id)
	m.ports = append(m.ports, p)
	m.allRanks = append(m.allRanks, p.rank)
	m.nodeGridBuilt = false // new roster member: rebuild on next query
	return p
}

// Port is a node's attachment to the medium.
type Port struct {
	m       *Medium
	id      event.NodeID
	rank    int32
	rx      func(Frame)
	queue   []Frame
	qhead   int // consumed prefix of queue
	sending bool
	c       Counters
	// curTx is the in-flight transmission (one at most: the next
	// contention round starts only after finishCur).
	curTx *transmission
	// recent holds this port's transmissions still tracked in
	// Medium.live; it backs the exact half-duplex check.
	recent []*transmission

	// pre-bound engine callbacks (see Attach).
	attemptFn, startTxFn, finishFn func()
}

// ID returns the attached node id.
func (p *Port) ID() event.NodeID { return p.id }

// Counters returns a snapshot of the port's statistics.
func (p *Port) Counters() Counters { return p.c }

// Broadcast queues msg for one-hop broadcast. appBytes is the accounted
// application-layer size (see Frame). Delivery happens after carrier
// sensing, back-off and airtime; there is no feedback to the sender, as
// with real broadcast frames.
func (p *Port) Broadcast(msg event.Message, appBytes int) {
	if p.m.cfg.QueueCap > 0 && len(p.queue)-p.qhead >= p.m.cfg.QueueCap {
		p.c.QueueDrops++
		return
	}
	if p.qhead > 0 && p.qhead == len(p.queue) {
		// Queue drained: restart at the front of the backing array so
		// steady-state traffic reuses it instead of growing it.
		p.queue = p.queue[:0]
		p.qhead = 0
	} else if p.qhead >= 64 && p.qhead*2 >= len(p.queue) {
		// Never-drained backlog (saturated channel): compact the
		// consumed prefix away, or the backing array grows with total
		// frames sent instead of with the live backlog.
		n := copy(p.queue, p.queue[p.qhead:])
		clear(p.queue[n:])
		p.queue = p.queue[:n]
		p.qhead = 0
	}
	p.queue = append(p.queue, Frame{From: p.id, Msg: msg, AppBytes: appBytes})
	if !p.sending {
		p.sending = true
		p.attempt()
	}
}

// attempt runs one CSMA contention round for the head-of-queue frame.
func (p *Port) attempt() {
	m := p.m
	m.ensureGeometry()
	now := m.eng.Now()
	pos := m.loc.Position(p.id, now)
	if until, busy := m.busyUntil(p.id, pos, now); busy {
		p.c.Defers++
		jitter := time.Duration(m.rng.Intn(m.cfg.CWSlots)) * m.cfg.SlotTime
		p.eng().Schedule(until.Add(m.cfg.DIFS+jitter), p.attemptFn)
		return
	}
	backoff := m.cfg.DIFS + time.Duration(m.rng.Intn(m.cfg.CWSlots))*m.cfg.SlotTime
	p.eng().ScheduleAfter(backoff, p.startTxFn)
}

// startTx begins transmission if the channel is still idle, otherwise
// re-contends.
func (p *Port) startTx() {
	m := p.m
	now := m.eng.Now()
	pos := m.loc.Position(p.id, now)
	if _, busy := m.busyUntil(p.id, pos, now); busy {
		p.attempt()
		return
	}
	frame := &p.queue[p.qhead]
	tx := m.newTransmission()
	tx.from = p.id
	tx.owner = p
	tx.pos = pos
	tx.start = now
	tx.end = now.Add(m.cfg.Airtime(frame.AppBytes))
	m.live = append(m.live, tx)
	m.txGrid.Put(tx, tx.pos)
	p.recent = append(p.recent, tx)
	p.curTx = tx
	p.c.FramesSent++
	p.c.AppBytesSent += uint64(frame.AppBytes)
	p.c.MACBytesSent += uint64(frame.AppBytes + m.cfg.HeaderBytes)
	p.eng().Schedule(tx.end, p.finishFn)
}

// finishCur delivers the in-flight frame to every receiver that heard
// it cleanly and then continues with the queue. With a delivery fan
// installed (and a deterministic channel), the checks and the receiver
// handlers run as two passes; the clean set collected by the serial
// pass is exactly the set the reference loop would have delivered to,
// because neither the range check nor the corruption check draws
// randomness — only ReceiveProb does, which disables the fan.
func (p *Port) finishCur() {
	m := p.m
	tx := p.curTx
	p.curTx = nil
	frame := p.queue[p.qhead]
	if m.fan != nil && m.cfg.ReceiveProb == nil {
		clean := m.cleanScratch[:0]
		for _, rank := range m.receivers(tx) {
			if rank == p.rank {
				continue
			}
			q := m.ports[rank]
			rpos := m.loc.Position(q.id, tx.end)
			if tx.pos.Dist(rpos) > m.cfg.Range {
				continue // out of range: not even noise
			}
			if m.corrupted(tx, q, rpos) {
				q.c.FramesLost++
				continue
			}
			clean = append(clean, rank)
		}
		m.cleanScratch = clean
		m.fan(tx.pos, clean, frame)
	} else {
		for _, rank := range m.receivers(tx) {
			if rank == p.rank {
				continue
			}
			q := m.ports[rank]
			rpos := m.loc.Position(q.id, tx.end)
			d := tx.pos.Dist(rpos)
			if d > m.cfg.Range {
				continue // out of range: not even noise
			}
			if m.cfg.ReceiveProb != nil && m.rng.Float64() >= m.cfg.ReceiveProb(d) {
				q.c.FramesFaded++
				continue
			}
			if m.corrupted(tx, q, rpos) {
				q.c.FramesLost++
				continue
			}
			q.c.FramesReceived++
			if q.rx != nil {
				q.rx(frame)
			}
		}
	}
	m.prune()
	p.queue[p.qhead] = Frame{}
	p.qhead++
	if p.qhead < len(p.queue) {
		p.attempt()
	} else {
		p.sending = false
	}
}

// receivers returns the attach ranks to consider as receivers of tx, in
// attach order. The grid path returns every node whose recorded cell
// lies within Range plus the staleness margin — a superset of the true
// in-range set; finishCur re-checks exact current distances, so
// delivery (and the RNG draw sequence under ReceiveProb) is identical
// to the FullScan roster walk.
func (m *Medium) receivers(tx *transmission) []int32 {
	if m.cfg.FullScan {
		return m.allRanks
	}
	m.ensureNodeGrid(tx.end)
	m.scratch = m.nodeGrid.AppendDisc(tx.pos, m.cfg.Range+m.margin, m.scratch[:0])
	slices.Sort(m.scratch) // bucket order depends on movement history
	return m.scratch
}

// ensureGeometry resolves the index bounding box and creates the
// transmission grid on first use. Bounds come from Config.Bounds when
// set; otherwise from the attached roster's current positions, padded
// by one sense range — the clamped dense grids stay correct either way
// (out-of-bounds positions pile into border cells), so the derived box
// only needs to be representative, not exact.
func (m *Medium) ensureGeometry() {
	if m.txGrid != nil {
		return
	}
	b := m.cfg.Bounds
	if b == (geo.Rect{}) {
		now := m.eng.Now()
		for i, id := range m.order {
			p := m.loc.Position(id, now)
			if i == 0 {
				b = geo.Rect{Min: p, Max: p}
				continue
			}
			if p.X < b.Min.X {
				b.Min.X = p.X
			}
			if p.Y < b.Min.Y {
				b.Min.Y = p.Y
			}
			if p.X > b.Max.X {
				b.Max.X = p.X
			}
			if p.Y > b.Max.Y {
				b.Max.Y = p.Y
			}
		}
		pad := max(m.cfg.csRange(), m.cfg.ifRange())
		b.Min.X -= pad
		b.Min.Y -= pad
		b.Max.X += pad
		b.Max.Y += pad
	}
	m.bounds = b
	m.txGrid = geo.NewGrid[*transmission](max(m.cfg.csRange(), m.cfg.ifRange()), b)
}

// ensureNodeGrid refreshes the node index at now unless it is still
// fresh: under SpeedBounded it survives for the refresh period (forever
// when MaxSpeed is 0 — static nodes), otherwise any clock advance
// invalidates it. A refresh recomputes every node's position but
// re-buckets only the nodes that crossed a cell boundary.
func (m *Medium) ensureNodeGrid(now sim.Time) {
	if m.nodeGridBuilt {
		if m.cfg.SpeedBounded && m.cfg.MaxSpeed == 0 {
			return
		}
		if now.Sub(m.nodeGridAt) <= m.staleAfter {
			return
		}
	}
	if m.nodeGrid == nil || m.nodeGrid.Keys() != len(m.order) {
		m.ensureGeometry()
		m.nodeGrid = geo.NewIndexGrid(m.cfg.Range, m.bounds, len(m.order))
	}
	for rank, id := range m.order {
		m.nodeGrid.Relocate(int32(rank), m.loc.Position(id, now))
	}
	m.nodeGridAt = now
	m.nodeGridBuilt = true
}

// RefreshNodeGrid force-refreshes the node index from caller-computed
// positions (indexed by attach rank) recorded at now. The tile-parallel
// runner calls it at every window barrier with the position slab its
// workers filled in parallel, so the serial event loop never pays the
// O(N) position sweep of a lazy refresh. Refresh instants are
// result-neutral by the same argument that makes the grid path
// frame-identical to FullScan: queries return a conservative superset
// (margin covers a full staleness period of movement, and the window
// never exceeds it) and every candidate is re-checked at its exact
// current distance before anything observable happens.
func (m *Medium) RefreshNodeGrid(now sim.Time, pos []geo.Point) {
	if len(pos) != len(m.order) {
		panic(fmt.Sprintf("mac: RefreshNodeGrid got %d positions for %d nodes", len(pos), len(m.order)))
	}
	if m.nodeGrid == nil || m.nodeGrid.Keys() != len(m.order) {
		m.ensureGeometry()
		m.nodeGrid = geo.NewIndexGrid(m.cfg.Range, m.bounds, len(m.order))
	}
	for rank := range m.order {
		m.nodeGrid.Relocate(int32(rank), pos[rank])
	}
	m.nodeGridAt = now
	m.nodeGridBuilt = true
}

// busyUntil reports whether the channel is busy at pos as sensed by node
// self, and until when. Transmissions starting exactly now are not
// sensed — two nodes whose back-offs land on the same slot both fire and
// collide, as on real hardware.
func (m *Medium) busyUntil(self event.NodeID, pos geo.Point, now sim.Time) (sim.Time, bool) {
	var until sim.Time
	busy := false
	cand := m.live[m.liveHead:]
	if !m.cfg.FullScan {
		// Transmission origins are fixed, so the index is exact: no
		// margin needed.
		m.txScratch = m.txGrid.AppendDisc(pos, m.cfg.csRange(), m.txScratch[:0])
		cand = m.txScratch
	}
	for _, t := range cand {
		if t.from == self || t.end <= now || t.start >= now {
			continue
		}
		if t.pos.Dist(pos) <= m.cfg.csRange() {
			busy = true
			if t.end > until {
				until = t.end
			}
		}
	}
	return until, busy
}

// corrupted reports whether reception of tx at port q fails, either
// because q was itself transmitting (half-duplex) or because a
// concurrent foreign transmission interfered (hidden terminal). rpos is
// q's position at the reception instant.
func (m *Medium) corrupted(tx *transmission, q *Port, rpos geo.Point) bool {
	if m.cfg.FullScan {
		for _, t := range m.live[m.liveHead:] {
			if t == tx || !t.overlaps(tx) {
				continue
			}
			if t.from == q.id {
				return true // half-duplex: q was talking
			}
			if t.pos.Dist(rpos) <= m.cfg.ifRange() {
				return true // interference at the receiver
			}
		}
		return false
	}
	// Half-duplex: q's own overlapping transmissions, wherever they
	// started (the full scan does not distance-filter this case).
	for _, t := range q.recent {
		if t.overlaps(tx) {
			return true
		}
	}
	m.txScratch = m.txGrid.AppendDisc(rpos, m.cfg.ifRange(), m.txScratch[:0])
	for _, t := range m.txScratch {
		if t == tx || t.from == q.id || !t.overlaps(tx) {
			continue
		}
		if t.pos.Dist(rpos) <= m.cfg.ifRange() {
			return true // interference at the receiver
		}
	}
	return false
}

// port returns the port attached as id (tests and diagnostics; the hot
// paths address ports by attach rank).
func (m *Medium) port(id event.NodeID) *Port { return m.ports[m.rank[id]] }

// InFlight counts the transmissions still on air at now. live retains
// recently ended records until prune reclaims them, so the count
// filters on end time; it is a pure read used by the netsim sampler
// (Scenario.Sample) and diagnostics.
func (m *Medium) InFlight(now sim.Time) int {
	n := 0
	for _, t := range m.live[m.liveHead:] {
		if t.end > now {
			n++
		}
	}
	return n
}

// newTransmission takes a record from the pool.
func (m *Medium) newTransmission() *transmission {
	if n := len(m.txFree); n > 0 {
		t := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return t
	}
	return &transmission{}
}

// prune drops transmissions that can no longer overlap anything on air,
// consuming the FIFO front of live (start order approximates end order;
// an entry blocked behind a longer airtime lingers a little, which is
// outcome-neutral — expired transmissions sense as idle and cannot
// overlap current frames). Records are recycled through the pool.
func (m *Medium) prune() {
	now := m.eng.Now()
	const keep = sim.Time(100 * sim.Millisecond)
	for m.liveHead < len(m.live) {
		t := m.live[m.liveHead]
		if t.end+keep > now {
			break
		}
		m.txGrid.Remove(t)
		t.owner.dropRecent(t)
		m.live[m.liveHead] = nil
		m.liveHead++
		*t = transmission{}
		m.txFree = append(m.txFree, t)
	}
	if m.liveHead == len(m.live) {
		m.live = m.live[:0]
		m.liveHead = 0
	}
}

// dropRecent removes t from the port's half-duplex history.
func (p *Port) dropRecent(t *transmission) {
	for i, x := range p.recent {
		if x == t {
			p.recent = append(p.recent[:i], p.recent[i+1:]...)
			return
		}
	}
}
