// Package mac simulates a broadcast-only 802.11b-style medium access
// layer: CSMA carrier sensing with DIFS and slotted random back-off,
// transmission airtime derived from the bitrate, hidden-terminal
// collisions, and half-duplex receivers.
//
// The model intentionally captures exactly the phenomena the paper's
// protocol reacts to — losses from colliding broadcasts (the cause of the
// Figure 13 non-monotonicity) and airtime occupancy — without modeling
// 802.11 unicast machinery (RTS/CTS, ACKs, retries), which broadcast
// frames do not use.
package mac

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/sim"
)

// Config parameterizes the medium. The defaults model 802.11b broadcast
// at the 2 Mbps basic rate.
type Config struct {
	// BitrateBps is the broadcast bitrate (802.11b basic rate: 2 Mbps).
	BitrateBps float64
	// Range is the reception radius in meters.
	Range float64
	// CarrierSenseRange is the radius within which a transmitter is
	// heard as channel-busy; 0 means Range.
	CarrierSenseRange float64
	// InterferenceRange is the radius within which a concurrent foreign
	// transmission corrupts reception; 0 means Range.
	InterferenceRange float64
	// SlotTime is the contention slot (802.11b: 20 us).
	SlotTime time.Duration
	// DIFS is the idle period sensed before transmitting (50 us).
	DIFS time.Duration
	// CWSlots is the contention window size in slots (802.11b CWmin+1 = 32).
	CWSlots int
	// Preamble is the PHY preamble+PLCP airtime (long preamble: 192 us).
	Preamble time.Duration
	// HeaderBytes is the MAC framing overhead added to every frame.
	HeaderBytes int
	// QueueCap bounds the per-node outgoing queue; 0 means unbounded.
	QueueCap int
	// ReceiveProb, when non-nil, makes reception probabilistic: a frame
	// arriving from distance d meters is received with probability
	// ReceiveProb(d) (see radio.Shadowing). Range then acts as a
	// pruning radius — set it to the model's MaxRange. Nil keeps the
	// deterministic unit disc.
	ReceiveProb func(d float64) float64
}

// DefaultConfig returns an 802.11b broadcast medium with the given
// reception radius.
func DefaultConfig(rangeM float64) Config {
	return Config{
		BitrateBps:  2e6,
		Range:       rangeM,
		SlotTime:    20 * time.Microsecond,
		DIFS:        50 * time.Microsecond,
		CWSlots:     32,
		Preamble:    192 * time.Microsecond,
		HeaderBytes: 28,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BitrateBps <= 0 {
		return fmt.Errorf("mac: bitrate %v", c.BitrateBps)
	}
	if c.Range <= 0 {
		return fmt.Errorf("mac: range %v", c.Range)
	}
	if c.SlotTime <= 0 || c.DIFS < 0 || c.CWSlots < 1 {
		return fmt.Errorf("mac: bad contention params")
	}
	if c.HeaderBytes < 0 || c.QueueCap < 0 || c.Preamble < 0 {
		return fmt.Errorf("mac: negative sizes")
	}
	return nil
}

func (c Config) csRange() float64 {
	if c.CarrierSenseRange > 0 {
		return c.CarrierSenseRange
	}
	return c.Range
}

func (c Config) ifRange() float64 {
	if c.InterferenceRange > 0 {
		return c.InterferenceRange
	}
	return c.Range
}

// Airtime returns the on-air duration of a frame carrying appBytes of
// payload.
func (c Config) Airtime(appBytes int) time.Duration {
	bits := float64(appBytes+c.HeaderBytes) * 8
	return c.Preamble + time.Duration(bits/c.BitrateBps*float64(time.Second))
}

// Locator supplies node positions to the medium.
type Locator interface {
	Position(id event.NodeID, at sim.Time) geo.Point
}

// Frame is a broadcast MAC frame. AppBytes is the accounted payload size
// under the experiment's size model (the simulator does not serialize
// messages; it passes them by value and charges the modeled size).
type Frame struct {
	From     event.NodeID
	Msg      event.Message
	AppBytes int
}

// transmission is one on-air frame.
type transmission struct {
	from       event.NodeID
	pos        geo.Point
	start, end sim.Time
}

func (t *transmission) overlaps(o *transmission) bool {
	return t.start < o.end && o.start < t.end
}

// Counters aggregates per-node MAC statistics.
type Counters struct {
	FramesSent     uint64
	AppBytesSent   uint64
	MACBytesSent   uint64
	FramesReceived uint64
	FramesLost     uint64 // in range, corrupted by collision or half-duplex
	FramesFaded    uint64 // in range, lost to the probabilistic channel
	QueueDrops     uint64
	Defers         uint64 // attempts postponed by carrier sense
}

// Medium is the shared broadcast channel. Attach every node before
// running the simulation. Medium is driven entirely by the sim engine and
// is not safe for concurrent use.
type Medium struct {
	eng   *sim.Engine
	cfg   Config
	loc   Locator
	rng   *rand.Rand
	ports map[event.NodeID]*Port
	order []event.NodeID // deterministic iteration order

	live []*transmission // on-air or recently ended (pruned lazily)
}

// New creates a medium. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config, loc Locator) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Medium{
		eng:   eng,
		cfg:   cfg,
		loc:   loc,
		rng:   eng.NewRand(),
		ports: make(map[event.NodeID]*Port),
	}
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }

// Attach registers node id with receive callback rx (may be nil for a
// deaf node) and returns its port. Attaching the same id twice panics.
func (m *Medium) Attach(id event.NodeID, rx func(Frame)) *Port {
	if _, dup := m.ports[id]; dup {
		panic(fmt.Sprintf("mac: node %v attached twice", id))
	}
	p := &Port{m: m, id: id, rx: rx}
	m.ports[id] = p
	m.order = append(m.order, id)
	return p
}

// Port is a node's attachment to the medium.
type Port struct {
	m       *Medium
	id      event.NodeID
	rx      func(Frame)
	queue   []Frame
	sending bool
	c       Counters
}

// ID returns the attached node id.
func (p *Port) ID() event.NodeID { return p.id }

// Counters returns a snapshot of the port's statistics.
func (p *Port) Counters() Counters { return p.c }

// Broadcast queues msg for one-hop broadcast. appBytes is the accounted
// application-layer size (see Frame). Delivery happens after carrier
// sensing, back-off and airtime; there is no feedback to the sender, as
// with real broadcast frames.
func (p *Port) Broadcast(msg event.Message, appBytes int) {
	if p.m.cfg.QueueCap > 0 && len(p.queue) >= p.m.cfg.QueueCap {
		p.c.QueueDrops++
		return
	}
	p.queue = append(p.queue, Frame{From: p.id, Msg: msg, AppBytes: appBytes})
	if !p.sending {
		p.sending = true
		p.attempt()
	}
}

// attempt runs one CSMA contention round for the head-of-queue frame.
func (p *Port) attempt() {
	m := p.m
	now := m.eng.Now()
	pos := m.loc.Position(p.id, now)
	if until, busy := m.busyUntil(p.id, pos, now); busy {
		p.c.Defers++
		jitter := time.Duration(m.rng.Intn(m.cfg.CWSlots)) * m.cfg.SlotTime
		m.eng.At(until.Add(m.cfg.DIFS+jitter), p.attempt)
		return
	}
	backoff := m.cfg.DIFS + time.Duration(m.rng.Intn(m.cfg.CWSlots))*m.cfg.SlotTime
	m.eng.After(backoff, p.startTx)
}

// startTx begins transmission if the channel is still idle, otherwise
// re-contends.
func (p *Port) startTx() {
	m := p.m
	now := m.eng.Now()
	pos := m.loc.Position(p.id, now)
	if _, busy := m.busyUntil(p.id, pos, now); busy {
		p.attempt()
		return
	}
	frame := p.queue[0]
	tx := &transmission{
		from:  p.id,
		pos:   pos,
		start: now,
		end:   now.Add(m.cfg.Airtime(frame.AppBytes)),
	}
	m.live = append(m.live, tx)
	p.c.FramesSent++
	p.c.AppBytesSent += uint64(frame.AppBytes)
	p.c.MACBytesSent += uint64(frame.AppBytes + m.cfg.HeaderBytes)
	m.eng.At(tx.end, func() { p.finishTx(tx, frame) })
}

// finishTx delivers the frame to every receiver that heard it cleanly and
// then continues with the queue.
func (p *Port) finishTx(tx *transmission, frame Frame) {
	m := p.m
	for _, id := range m.order {
		if id == p.id {
			continue
		}
		q := m.ports[id]
		rpos := m.loc.Position(id, tx.end)
		d := tx.pos.Dist(rpos)
		if d > m.cfg.Range {
			continue // out of range: not even noise
		}
		if m.cfg.ReceiveProb != nil && m.rng.Float64() >= m.cfg.ReceiveProb(d) {
			q.c.FramesFaded++
			continue
		}
		if m.corrupted(tx, id, rpos) {
			q.c.FramesLost++
			continue
		}
		q.c.FramesReceived++
		if q.rx != nil {
			q.rx(frame)
		}
	}
	m.prune()
	p.queue = p.queue[1:]
	if len(p.queue) > 0 {
		p.attempt()
	} else {
		p.sending = false
	}
}

// busyUntil reports whether the channel is busy at pos as sensed by node
// self, and until when. Transmissions starting exactly now are not
// sensed — two nodes whose back-offs land on the same slot both fire and
// collide, as on real hardware.
func (m *Medium) busyUntil(self event.NodeID, pos geo.Point, now sim.Time) (sim.Time, bool) {
	var until sim.Time
	busy := false
	for _, t := range m.live {
		if t.from == self || t.end <= now || t.start >= now {
			continue
		}
		if t.pos.Dist(pos) <= m.cfg.csRange() {
			busy = true
			if t.end > until {
				until = t.end
			}
		}
	}
	return until, busy
}

// corrupted reports whether reception of tx at node r (located at rpos)
// fails, either because r was itself transmitting (half-duplex) or
// because a concurrent foreign transmission interfered (hidden terminal).
func (m *Medium) corrupted(tx *transmission, r event.NodeID, rpos geo.Point) bool {
	for _, t := range m.live {
		if t == tx || !t.overlaps(tx) {
			continue
		}
		if t.from == r {
			return true // half-duplex: r was talking
		}
		if t.pos.Dist(rpos) <= m.cfg.ifRange() {
			return true // interference at the receiver
		}
	}
	return false
}

// prune drops transmissions that can no longer overlap anything on air.
func (m *Medium) prune() {
	now := m.eng.Now()
	const keep = sim.Time(100 * sim.Millisecond)
	kept := m.live[:0]
	for _, t := range m.live {
		if t.end+keep > now {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(m.live); i++ {
		m.live[i] = nil
	}
	m.live = kept
}
