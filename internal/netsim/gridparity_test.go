package netsim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
)

// TestGridParityWithFullScan runs the same scenario with the medium's
// spatial index and with the reference full scan: every measured
// quantity — deliveries, per-node protocol and MAC counters, outcomes —
// must be identical. This is the end-to-end version of the mac
// package's frame-level differential tests.
func TestGridParityWithFullScan(t *testing.T) {
	for _, tc := range []struct {
		name string
		mob  MobilitySpec
	}{
		{"rwp", MobilitySpec{
			Kind:     RandomWaypoint,
			Area:     geo.NewRect(2000, 2000),
			MinSpeed: 1,
			MaxSpeed: 40,
			Pause:    time.Second,
		}},
		{"city", MobilitySpec{
			Kind:      CitySection,
			StopProb:  0.3,
			StopMin:   2 * time.Second,
			StopMax:   10 * time.Second,
			DestPause: 5 * time.Second,
		}},
		{"static", MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(1200, 1200),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(fullScan bool) *Result {
				sc := Scenario{
					Nodes:              25,
					Seed:               3,
					Mobility:           tc.mob,
					MAC:                mac.DefaultConfig(339),
					Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
					SubscriberFraction: 0.8,
					Warmup:             10 * time.Second,
					Publications: []Publication{
						{Publisher: -1, Validity: 30 * time.Second},
						{Offset: 500 * time.Millisecond, Publisher: -1, Validity: 30 * time.Second},
					},
					Measure:     35 * time.Second,
					DeliveryLog: true, // parity diffs full delivery records
				}
				sc.MAC.FullScan = fullScan
				res, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			grid, scan := run(false), run(true)
			if !reflect.DeepEqual(grid.Nodes, scan.Nodes) {
				t.Errorf("per-node counters differ between grid and full scan")
			}
			if !reflect.DeepEqual(grid.Deliveries, scan.Deliveries) {
				t.Errorf("delivery records differ between grid and full scan")
			}
			if !reflect.DeepEqual(grid.Outcomes, scan.Outcomes) {
				t.Errorf("event outcomes differ between grid and full scan")
			}
			if grid.DeliveredTotal() == 0 {
				t.Fatal("scenario delivered nothing; parity check is vacuous")
			}
		})
	}
}
