package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestStreamingDeliveryAllocFlat pins the megacity memory contract of
// the delivery hot path: folding a first delivery into its event's
// cell allocates nothing, at any roster size. Without DeliveryLog the
// per-delivery cost is a bitset write plus counter updates — no record
// append, no map growth — so result memory cannot scale with
// deliveries.
func TestStreamingDeliveryAllocFlat(t *testing.T) {
	for _, n := range []int{64, 8192} {
		r := &runner{
			sc:     Scenario{Nodes: n},
			eng:    sim.New(1),
			groups: make(map[event.ID]*eventGroup),
		}
		r.nodes = make([]*node, n)
		for i := range r.nodes {
			r.nodes[i] = &node{id: event.NodeID(i), subscribed: true}
		}
		ev := event.Event{ID: event.NewID(rand.New(rand.NewSource(3)))}
		g := &eventGroup{bits: make([]uint64, (n+63)/64), cells: []int32{0}}
		r.groups[ev.ID] = g
		r.cells = []eventCell{{
			eligible:  int32(n - 1),
			publisher: 0,
			deadline:  sim.Seconds(1e6),
		}}
		hooks := make([]func(event.Event), n)
		for i := range hooks {
			hooks[i] = r.deliverHook(event.NodeID(i))
		}
		avg := testing.AllocsPerRun(10, func() {
			clear(g.bits)
			r.cells[0].inTime = 0
			for _, h := range hooks {
				h(ev)
			}
		})
		if avg != 0 {
			t.Fatalf("n=%d: %v allocs per %d-delivery round, want 0", n, avg, n)
		}
		if got := r.cells[0].inTime; got != int32(n-1) {
			t.Fatalf("n=%d: inTime = %d, want %d", n, got, n-1)
		}
	}
}

// TestStreamingOutcomesMatchRecords is the differential net for the
// streaming fold: with DeliveryLog on, recomputing every outcome the
// old way — replaying the full record list against each publication's
// deadline — must agree with the counters folded at delivery time.
// The churn-nodes workload makes this interesting: a crash-recovered
// publisher replays its reseeded RNG stream and re-issues an earlier
// event ID, so the aliased publications must score against the shared
// first-delivery set (the old delivery table did this implicitly).
func TestStreamingOutcomesMatchRecords(t *testing.T) {
	def, ok := LookupScenario("waypoint")
	if !ok {
		t.Fatal("waypoint not registered")
	}
	sc := def.Instantiate(1)
	sc.Publications = nil
	sc.Workload = WorkloadSpec{
		Name: "mix",
		Params: workload.MixParams{Parts: []workload.Spec{
			{Name: "periodic"},
			{Name: "churn-nodes"},
		}},
	}
	sc.DeliveryLog = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		ev event.ID
		n  event.NodeID
	}
	first := make(map[key]sim.Time)
	for _, d := range res.Deliveries {
		if _, ok := first[key{d.Event, d.Node}]; !ok {
			first[key{d.Event, d.Node}] = d.At
		}
	}
	subscribed := make(map[event.NodeID]bool)
	for _, nr := range res.Nodes {
		subscribed[nr.ID] = nr.Subscribed
	}
	ids := make(map[event.ID]bool)
	for i, pe := range res.Published {
		ids[pe.ID] = true
		deadline := pe.At.Add(pe.Validity)
		elig, inTime := 0, 0
		for _, nr := range res.Nodes {
			if !subscribed[nr.ID] || nr.ID == pe.Publisher {
				continue
			}
			elig++
			if at, ok := first[key{pe.ID, nr.ID}]; ok && at <= deadline {
				inTime++
			}
		}
		o := res.Outcomes[i]
		if o.Eligible != elig || o.DeliveredInTime != inTime {
			t.Errorf("event %d (%v at %v): streamed %d/%d, records say %d/%d",
				i, pe.ID, pe.At, o.DeliveredInTime, o.Eligible, inTime, elig)
		}
	}
	// The run must actually contain an aliased ID, or the hard case
	// above was never exercised (a scheduling change upstream would
	// silently drain this test of its point).
	if len(ids) == len(res.Published) {
		t.Fatal("no aliased event ID in this run; pick a seed whose churn replays one")
	}
	// The streaming latency histogram folded something sensible (exact
	// agreement with DeliveryLatencies is pinned by
	// TestDeliveryLatencies on an alias-free run).
	if res.Latency.N() == 0 {
		t.Fatal("empty latency histogram on a delivering run")
	}
	if time.Duration(res.Latency.Max()*float64(time.Second)) > sc.Warmup+sc.Measure {
		t.Fatalf("latency max %vs exceeds the simulated time", res.Latency.Max())
	}
}

// TestFingerprintPinsResult pins Result.Fingerprint's contract: equal
// across replays of the same (Scenario, Seed), different across seeds.
func TestFingerprintPinsResult(t *testing.T) {
	run := func(seed int64) string {
		res, err := Run(denseStatic(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	a, b, c := run(1), run(1), run(2)
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("fingerprint blind to the seed: %s", a)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not a sha-256 hex digest", a)
	}
}
