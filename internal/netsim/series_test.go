package netsim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sampleScenario returns the manhattan catalog scenario with the given
// seed — enough traffic and tiles-compatibility to exercise every
// series column.
func sampleScenario(t *testing.T, seed int64) Scenario {
	t.Helper()
	def, ok := LookupScenario("manhattan")
	if !ok {
		t.Fatal("manhattan scenario not registered")
	}
	return def.Instantiate(seed)
}

// TestSampleInvariance is the core observation contract: enabling
// Scenario.Sample must leave the Result fingerprint byte-identical —
// sampling is read-only, so measurements cannot move.
func TestSampleInvariance(t *testing.T) {
	base := sampleScenario(t, 42)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Series != nil {
		t.Fatal("unsampled run populated Series")
	}
	sampled := sampleScenario(t, 42)
	sampled.Sample = 2 * time.Second
	res, err := Run(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("sampling changed the fingerprint: %s vs %s", got, want)
	}
	s := res.Series
	if s == nil || len(s.Points) == 0 {
		t.Fatal("sampled run has no series")
	}
	// One point per elapsed period plus a final partial window.
	wantPoints := int((base.Measure + sampled.Sample - 1) / sampled.Sample)
	if len(s.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(s.Points), wantPoints)
	}
	last := s.Points[len(s.Points)-1]
	if last.At.Duration() != base.Warmup+base.Measure {
		t.Fatalf("last point at %v, want %v", last.At, base.Warmup+base.Measure)
	}
	// The series must describe the run the Result describes.
	if last.Published != len(res.Published) {
		t.Fatalf("final Published %d, want %d", last.Published, len(res.Published))
	}
	if got, want := last.DeliveryRatio, res.Reliability(); got != want {
		t.Fatalf("final DeliveryRatio %v, want Reliability %v", got, want)
	}
	var frames, delivered uint64
	for _, p := range s.Points {
		frames += p.MAC.FramesSent
		delivered += p.Proto.Delivered
		if p.DeliveryRatio < 0 || p.DeliveryRatio > 1 {
			t.Fatalf("DeliveryRatio %v out of [0,1]", p.DeliveryRatio)
		}
		if p.InFlight < 0 || p.Pending <= 0 {
			t.Fatalf("implausible instant gauges: in-flight %d, pending %d", p.InFlight, p.Pending)
		}
	}
	if frames == 0 || delivered == 0 {
		t.Fatalf("series windows sum to zero activity (frames %d, delivered %d)", frames, delivered)
	}
	// Window deltas over the measurement window must sum to the
	// Result's own window counters.
	var wantFrames, wantDelivered uint64
	for _, n := range res.Nodes {
		wantFrames += n.MAC.FramesSent
		wantDelivered += n.Proto.Delivered
	}
	if frames != wantFrames || delivered != wantDelivered {
		t.Fatalf("series deltas sum to (%d frames, %d delivered), Result says (%d, %d)",
			frames, delivered, wantFrames, wantDelivered)
	}
}

// TestSeriesSeedDeterministic pins the series content itself: two runs
// of the same (Scenario, Seed) produce identical points.
func TestSeriesSeedDeterministic(t *testing.T) {
	run := func() *Series {
		sc := sampleScenario(t, 7)
		sc.Sample = 3 * time.Second
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Series
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("series differ across identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSeriesTileInvariant pins tile invariance: a tiled run samples the
// same delivery/counter trajectory as the single-engine run (the
// tile-path split columns are excluded — they legitimately vary).
func TestSeriesTileInvariant(t *testing.T) {
	forceFan(t)
	run := func(tiles int) *Series {
		sc := sampleScenario(t, 13)
		sc.Sample = 2 * time.Second
		sc.Tiles = tiles
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Series
	}
	ref, tiled := run(1), run(4)
	if len(ref.Points) != len(tiled.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(ref.Points), len(tiled.Points))
	}
	for i := range ref.Points {
		a, b := ref.Points[i], tiled.Points[i]
		// Fan/serial split is tile machinery, not measurement.
		a.FannedFrames, a.SerialFrames = 0, 0
		b.FannedFrames, b.SerialFrames = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("point %d differs tiled vs untiled:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	var fanned, serial uint64
	for _, p := range tiled.Points {
		fanned += p.FannedFrames
		serial += p.SerialFrames
	}
	if fanned+serial == 0 {
		t.Fatal("tiled series shows no delivery-path activity")
	}
}

// TestSeriesEncoders pins the CSV header/row shape and that the JSON
// document parses with the same columns.
func TestSeriesEncoders(t *testing.T) {
	sc := sampleScenario(t, 5)
	sc.Sample = 5 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := res.Series.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(res.Series.Points)+1 {
		t.Fatalf("CSV has %d lines for %d points", len(lines), len(res.Series.Points))
	}
	header := strings.Split(lines[0], ",")
	for _, want := range []string{"t_s", "delivery_ratio", "proto_delivered", "mac_frames_sent", "fanned_frames"} {
		found := false
		for _, c := range header {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("CSV header lacks %q: %v", want, header)
		}
	}
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != len(header) {
			t.Fatalf("row width %d, header width %d", got, len(header))
		}
	}

	var js strings.Builder
	if err := res.Series.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		PeriodSeconds float64                  `json:"period_seconds"`
		Points        []map[string]json.Number `json:"points"`
	}
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if doc.PeriodSeconds != 5 || len(doc.Points) != len(res.Series.Points) {
		t.Fatalf("JSON doc wrong: period %v, %d points", doc.PeriodSeconds, len(doc.Points))
	}
	if _, ok := doc.Points[0]["delivery_ratio"]; !ok {
		t.Fatal("JSON point lacks delivery_ratio")
	}
}

// TestSampleValidation pins the knob's validation.
func TestSampleValidation(t *testing.T) {
	sc := sampleScenario(t, 1)
	sc.Sample = -time.Second
	if _, err := Run(sc); err == nil {
		t.Fatal("negative Sample passed validation")
	}
}
