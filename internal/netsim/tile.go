package netsim

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/proto"
	"repro/internal/sim"
)

// This file is the tile-parallel runner: one city run sharded across
// cores with results byte-identical to the single-engine path at any
// tile count (ARCHITECTURE.md, "Tile-parallel contracts").
//
// The decomposition has three parts, all conservative:
//
//  1. Shared-clock shards (sim.Group): each tile owns an engine shard;
//     the group steps whichever shard holds the globally earliest
//     (at, seq) item, so event callbacks execute in exactly the order a
//     single engine would. This is what keeps the medium's shared RNG
//     draw sequence — backoff slots, fades — bit-identical.
//
//  2. A windowed barrier (prepare): before each window of
//     mac.Config.GridRefreshPeriod() simulated time, per-tile workers
//     pre-extend their vehicles' trajectories to the window end, fill a
//     position slab at the window start, and detect tile crossings.
//     Crossings merge in deterministic (tileID, within-tile order), and
//     the MAC node index is force-refreshed from the slab. The window
//     never exceeds the grid-refresh period, so the speed-bound query
//     margin already covers any staleness the barrier introduces —
//     refresh instants are result-neutral (the index is a conservative
//     superset; exact distance re-checks precede every observable
//     effect).
//
//  3. Capture-and-replay delivery fan (mac.SetDeliverFan): the serial
//     MAC pass classifies receivers and draws all randomness; the
//     surviving clean ranks are chunked to per-tile workers that run the
//     protocol handlers concurrently, capturing their side effects
//     (broadcasts, timers, deliveries) into per-worker buffers replayed
//     in ascending rank order — the same order the serial loop would
//     have produced them.
type tileRun struct {
	r      *runner
	medium *mac.Medium
	plan   geo.Tiling
	group  *sim.Group
	shards []*sim.Engine
	window time.Duration

	// owner[rank] is the tile whose shard files the node's MAC timers;
	// ranksOf[tile] lists the ranks each prep worker extends. Ownership
	// only steers work placement — results do not depend on it.
	owner   []int32
	ranksOf [][]int32

	// posSlab holds every node's position at the current window start,
	// filled by the prep workers and handed to RefreshNodeGrid.
	posSlab     []geo.Point
	refreshGrid bool

	// Per-rank protocol wiring captured at build time so replayed and
	// fanned actions can reach it without going through proto.Env.
	transports []portTransport
	deliverTo  []func(event.Event)

	// bufOf[rank] is non-nil only while the fan runs: it routes the
	// rank's handler side effects into its worker's capture buffer.
	bufOf []*actBuf
	bufs  []actBuf

	jobs []chan tileJob
	wg   sync.WaitGroup

	// crossings[tile] collects the tile's border crossings each window.
	crossings [][]crossing
	discBuf   []int32
	haloPad   float64

	// fanWorkers caps the fan's concurrency at the host's usable
	// parallelism: a capture/replay round trip on a single-core host is
	// pure overhead, so one worker degrades to inline delivery. The cap
	// never changes results — both paths produce the same action order.
	// Tests raise it to exercise the fan machinery on any host.
	fanWorkers int

	stats TileStats
}

// TileStats reports how a tile-parallel run exercised the machinery.
// It lives outside Result.Fingerprint (which hashes measurements only),
// because worker counts and fan thresholds may legitimately vary with
// the host while results stay byte-identical.
type TileStats struct {
	// Tiles is the resolved tile (and shard/worker) count.
	Tiles int
	// Windows counts barrier synchronizations.
	Windows uint64
	// Crossings counts vehicles re-assigned across tile borders.
	Crossings uint64
	// BorderFrames counts transmissions whose reception disc (padded by
	// the staleness margin) overlaps more than one tile.
	BorderFrames uint64
	// FannedFrames and SerialFrames split delivered frames by path:
	// parallel handler fan vs. the inline fallback for small fan-outs.
	FannedFrames uint64
	SerialFrames uint64
}

type crossing struct {
	rank int32
	to   int32
}

type tileJob struct {
	// prep when frame.Msg is nil: fill posSlab and detect crossings for
	// ranks over [start, end]. Otherwise fan: deliver frame to ranks.
	ranks      []int32
	start, end sim.Time
	fan        bool
	frame      mac.Frame
}

// fanMinReceivers is the break-even fan-out: below it the
// coordinator delivers inline. The threshold is result-neutral — both
// paths produce identical action order — so it can be tuned freely.
const fanMinReceivers = 4

// testForceFan disables the GOMAXPROCS fan degradation so parity tests
// execute the capture/replay path even on single-core hosts. Set only
// by tests in this package.
var testForceFan = false

// actKind enumerates captured handler side effects.
type actKind uint8

const (
	actBroadcast actKind = iota
	actAfter
	actStop
	actDeliver
)

// action is one captured side effect; replay applies them in capture
// order, which within a worker is ascending rank order.
type action struct {
	kind  actKind
	rank  int32
	d     time.Duration
	fn    func()
	timer *tileTimer
	msg   event.Message
	ev    event.Event
}

type actBuf struct{ acts []action }

// tileTimer is the proto.Timer handed to protocols in a tiled run. In
// normal (serial) operation it is a thin wrapper over the real shard
// timer. During capture its Stop defers the mutation into the buffer —
// computing the return value now via Timer.Live, which a concurrent
// worker can do safely because liveness can only be changed by this
// node's own (already visible) actions.
type tileTimer struct {
	tr   *tileRun
	rank int32
	real *sim.Timer
	// stopped marks a Stop captured before the timer materialized.
	stopped bool
}

func (t *tileTimer) Stop() bool {
	if b := t.tr.bufOf[t.rank]; b != nil {
		if t.real == nil {
			// Created and stopped within the same capture.
			if t.stopped {
				return false
			}
			t.stopped = true
			return true
		}
		if !t.real.Live() {
			return false
		}
		b.acts = append(b.acts, action{kind: actStop, timer: t})
		return true
	}
	if t.real == nil {
		// Captured timer replayed as created-then-stopped: never live.
		return false
	}
	return t.real.Stop()
}

// tileSched is the proto.Scheduler for one node of a tiled run: timers
// file on the shard of the node's current tile, and During capture
// After defers scheduling into the buffer.
type tileSched struct {
	tr *tileRun
	// eng is the root engine, kept inline because Now is on the
	// protocols' hottest path and all shards share one clock anyway.
	eng  *sim.Engine
	rank int32
}

func (s tileSched) Now() time.Duration {
	return s.eng.Now().Duration()
}

func (s tileSched) After(d time.Duration, fn func()) proto.Timer {
	t := &tileTimer{tr: s.tr, rank: s.rank}
	if b := s.tr.bufOf[s.rank]; b != nil {
		b.acts = append(b.acts, action{kind: actAfter, rank: s.rank, d: d, fn: fn, timer: t})
		return t
	}
	t.real = s.tr.shardFor(s.rank).After(d, fn)
	return t
}

func (tr *tileRun) shardFor(rank int32) *sim.Engine {
	return tr.shards[tr.owner[rank]]
}

// newTileRun wires a k-tile run: tiling plan over the medium bounds,
// k engine shards under one group, k workers, and the MAC hooks. Call
// after mobility models exist and the medium is attached, before
// protocols are built (buildProtocol consults it for wiring).
func newTileRun(r *runner, medium *mac.Medium, cfg mac.Config, k int) *tileRun {
	tr := &tileRun{
		r:       r,
		medium:  medium,
		plan:    geo.NewTiling(cfg.Bounds, k, r.sc.TileShift),
		window:  cfg.GridRefreshPeriod(),
		haloPad: cfg.Range + cfg.MaxSpeed*cfg.GridRefreshPeriod().Seconds(),
		// Refresh only when the medium runs the cached grid: static
		// nodes never stale it, FullScan and unbounded speeds rebuild
		// exactly per instant on their own.
		refreshGrid: cfg.SpeedBounded && cfg.MaxSpeed > 0 && !cfg.FullScan,
	}
	tr.stats.Tiles = tr.plan.K()
	tr.fanWorkers = tr.plan.K()
	if p := runtime.GOMAXPROCS(0); p < tr.fanWorkers && !testForceFan {
		tr.fanWorkers = p
	}
	n := len(r.nodes)
	tr.owner = make([]int32, n)
	tr.ranksOf = make([][]int32, tr.plan.K())
	tr.posSlab = make([]geo.Point, n)
	tr.transports = make([]portTransport, n)
	tr.deliverTo = make([]func(event.Event), n)
	tr.bufOf = make([]*actBuf, n)
	tr.bufs = make([]actBuf, tr.plan.K())
	tr.crossings = make([][]crossing, tr.plan.K())
	tr.jobs = make([]chan tileJob, tr.plan.K())
	for i := range tr.jobs {
		tr.jobs[i] = make(chan tileJob, 1)
	}
	for rank, nd := range r.nodes {
		t := int32(tr.plan.TileOf(nd.model.Position(0)))
		tr.owner[rank] = t
		tr.ranksOf[t] = append(tr.ranksOf[t], int32(rank))
	}
	tr.group = sim.NewGroup(r.eng, tr.plan.K()-1, tr.window, tr.prepare)
	tr.shards = tr.group.Shards()
	medium.SetShardRouter(tr.shardFor)
	// The fan workers bypass the rx wrapper's trace hook and the
	// shadowing model's RNG draws; both demand the serial path.
	if r.sc.Trace == nil && cfg.ReceiveProb == nil {
		medium.SetDeliverFan(tr.deliverFan)
	}
	return tr
}

// runUntil drives the whole tiled simulation: workers up, group merge
// loop, workers down.
func (tr *tileRun) runUntil(end sim.Time) {
	for w := range tr.jobs {
		go tr.worker(w)
	}
	tr.group.RunUntil(end)
	for _, ch := range tr.jobs {
		close(ch)
	}
}

func (tr *tileRun) worker(w int) {
	for job := range tr.jobs[w] {
		if job.fan {
			for _, rank := range job.ranks {
				tr.medium.DeliverTo(rank, job.frame)
			}
		} else {
			tr.prep(w, job.ranks, job.start, job.end)
		}
		tr.wg.Done()
	}
}

// prep extends one tile's trajectories through the window and detects
// border crossings. Mobility models are pure functions of time with
// memoized legs, so concurrent extension across distinct nodes is safe
// and order-free; crossings are judged on the window-end position.
func (tr *tileRun) prep(w int, ranks []int32, start, end sim.Time) {
	for _, rank := range ranks {
		m := tr.r.nodes[rank].model
		tr.posSlab[rank] = m.Position(start)
		if to := int32(tr.plan.TileOf(m.Position(end))); to != tr.owner[rank] {
			tr.crossings[w] = append(tr.crossings[w], crossing{rank: rank, to: to})
		}
	}
}

// prepare is the group's window barrier: parallel per-tile prep, then a
// deterministic (tileID, within-tile order) merge of crossings, then
// the forced index refresh. Determinism note: ownership moves affect
// only which shard future timers file on and which worker preps the
// node — the (at, seq) merge makes both invisible in results.
func (tr *tileRun) prepare(start, end sim.Time) {
	tr.stats.Windows++
	for w := range tr.jobs {
		tr.crossings[w] = tr.crossings[w][:0]
		tr.wg.Add(1)
		tr.jobs[w] <- tileJob{ranks: tr.ranksOf[w], start: start, end: end}
	}
	tr.wg.Wait()
	moved := false
	for w := range tr.crossings {
		for _, c := range tr.crossings[w] {
			tr.stats.Crossings++
			tr.owner[c.rank] = c.to
			moved = true
		}
	}
	if moved {
		for t := range tr.ranksOf {
			tr.ranksOf[t] = tr.ranksOf[t][:0]
		}
		for rank, t := range tr.owner {
			tr.ranksOf[t] = append(tr.ranksOf[t], int32(rank))
		}
	}
	if tr.refreshGrid {
		tr.medium.RefreshNodeGrid(start, tr.posSlab)
	}
}

// deliverFan is the mac.SetDeliverFan hook: chunk the clean receivers
// into contiguous ascending-rank spans, run their handlers on the
// workers with side effects captured, then replay the buffers in worker
// order — reproducing the serial loop's exact action sequence.
func (tr *tileRun) deliverFan(txPos geo.Point, clean []int32, f mac.Frame) {
	tr.discBuf = tr.plan.AppendDiscTiles(txPos, tr.haloPad, tr.discBuf[:0])
	if len(tr.discBuf) > 1 {
		tr.stats.BorderFrames++
	}
	n := len(clean)
	if n < fanMinReceivers || tr.fanWorkers < 2 {
		tr.stats.SerialFrames++
		for _, rank := range clean {
			tr.medium.DeliverTo(rank, f)
		}
		return
	}
	tr.stats.FannedFrames++
	workers := tr.fanWorkers
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	used := 0
	for i := 0; i < n; i += chunk {
		j := i + chunk
		if j > n {
			j = n
		}
		b := &tr.bufs[used]
		for _, rank := range clean[i:j] {
			tr.bufOf[rank] = b
		}
		tr.wg.Add(1)
		tr.jobs[used] <- tileJob{ranks: clean[i:j], fan: true, frame: f}
		used++
	}
	tr.wg.Wait()
	// Leave capture mode before replaying: replayed broadcasts and
	// timers must hit the real transport and shards.
	for _, rank := range clean {
		tr.bufOf[rank] = nil
	}
	for w := 0; w < used; w++ {
		tr.replay(&tr.bufs[w])
	}
}

// replay applies one worker's captured actions in order. Seq parity: a
// captured After always materializes the real timer — even when it was
// stopped within the same capture — because the serial loop would have
// consumed an engine sequence number for it, and skipping that draw
// would shift every later item's FIFO tie-break.
func (tr *tileRun) replay(b *actBuf) {
	for i := range b.acts {
		a := &b.acts[i]
		switch a.kind {
		case actBroadcast:
			tr.transports[a.rank].send(a.msg)
		case actAfter:
			t := a.timer
			t.real = tr.shardFor(a.rank).After(a.d, a.fn)
			if t.stopped {
				t.real.Stop()
			}
		case actStop:
			a.timer.real.Stop()
		case actDeliver:
			tr.deliverTo[a.rank](a.ev)
		}
		*a = action{}
	}
	b.acts = b.acts[:0]
}
