// Package netsim assembles full simulation scenarios: N mobile nodes
// running a dissemination protocol over the CSMA broadcast medium, with
// subscription assignment, scheduled publications, optional crashes,
// warm-up handling and measurement-window accounting. Protocols are
// resolved by name through the internal/proto registry (ProtocolSpec);
// the built-ins — frugal, the flooding and broadcast-storm baselines,
// push-pull gossip — are wired in via internal/proto/all.
//
// A Result is a pure function of (Scenario, Seed); experiments in
// internal/exp average Results across seeds.
package netsim

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/proto"
	"repro/internal/topic"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ProtocolSpec selects and tunes the dissemination protocol under test
// by registry name (see internal/proto): Name is the registered key and
// Params, when non-nil, must have the protocol's registered params type
// (nil selects the protocol's defaults). The zero spec selects the
// paper's frugal protocol with default tuning.
type ProtocolSpec struct {
	Name   string
	Params proto.Params
}

// String implements fmt.Stringer: the registry name.
func (s ProtocolSpec) String() string {
	if s.Name == "" {
		return core.ProtocolName
	}
	return s.Name
}

// withDefaults resolves the zero spec to the frugal protocol.
func (s ProtocolSpec) withDefaults() ProtocolSpec {
	if s.Name == "" {
		s.Name = core.ProtocolName
	}
	return s
}

// CoreTuning carries the frugal protocol's tuning knobs (zero = paper
// defaults); it is the registry params type of the "frugal" protocol,
// re-exported for terse scenario definitions (see FrugalSpec).
type CoreTuning = core.Tuning

// FrugalSpec is the enum-compatible constructor for the paper's
// protocol: a spec running frugal with the given tuning.
func FrugalSpec(t CoreTuning) ProtocolSpec {
	return ProtocolSpec{Name: core.ProtocolName, Params: t}
}

// ParseProtocol resolves a registry name into a default-params spec.
// It reports false for unregistered names; ProtocolNames lists the
// valid ones.
func ParseProtocol(s string) (ProtocolSpec, bool) {
	if _, ok := proto.LookupProtocol(s); !ok {
		return ProtocolSpec{}, false
	}
	return ProtocolSpec{Name: s}, true
}

// ProtocolNames returns the sorted registered protocol names (the
// proto registry's catalog, re-exported for the CLIs).
func ProtocolNames() []string { return proto.ProtocolNames() }

// WorkloadSpec selects and tunes a workload generator by registry name
// (see internal/workload): Name is the registered key and Params, when
// non-nil, must have the generator's registered params type (nil
// selects its defaults). The zero spec generates nothing — the
// scenario's explicit Publications/Crashes/Resubscriptions lists alone
// drive the run (internally they become the "explicit" generator). A
// non-zero spec's stream is merged with the explicit lists, so
// hand-placed events and generated dynamics compose.
type WorkloadSpec = workload.Spec

// ParseWorkload resolves a registry name into a default-params spec.
// It reports false for unregistered names; WorkloadNames lists the
// valid ones.
func ParseWorkload(s string) (WorkloadSpec, bool) {
	if _, ok := workload.LookupWorkload(s); !ok {
		return WorkloadSpec{}, false
	}
	return WorkloadSpec{Name: s}, true
}

// WorkloadNames returns the sorted registered workload-generator names
// (the workload registry's catalog, re-exported for the CLIs).
func WorkloadNames() []string { return workload.WorkloadNames() }

// Workloads returns every registered workload definition, sorted by
// name (the workload registry's catalog, re-exported for the CLIs'
// unknown-id listings).
func Workloads() []workload.Definition { return workload.Workloads() }

// MobilityKind selects the mobility model.
type MobilityKind int

const (
	// StaticNodes pins nodes at uniform random positions.
	StaticNodes MobilityKind = iota
	// RandomWaypoint is the Johnson-Maltz model on a rectangle.
	RandomWaypoint
	// CitySection drives nodes on a street graph.
	CitySection
	// ManhattanGrid drives vehicles on a dense urban street grid with
	// a deterministic city-wide traffic-light schedule (VANET-style).
	ManhattanGrid
	// HighwayConvoy drives vehicles on a highway corridor with
	// on/off-ramps and platoon speed tiers (VANET-style).
	HighwayConvoy
)

// String implements fmt.Stringer.
func (k MobilityKind) String() string {
	switch k {
	case StaticNodes:
		return "static"
	case RandomWaypoint:
		return "random-waypoint"
	case CitySection:
		return "city-section"
	case ManhattanGrid:
		return "manhattan-grid"
	case HighwayConvoy:
		return "highway-convoy"
	default:
		return fmt.Sprintf("mobility(%d)", int(k))
	}
}

// MobilitySpec declares per-node mobility.
type MobilitySpec struct {
	Kind MobilityKind

	// Area is the mobility rectangle for StaticNodes/RandomWaypoint.
	Area geo.Rect
	// MinSpeed/MaxSpeed bound random-waypoint speeds, m/s.
	MinSpeed, MaxSpeed float64
	// Pause is the random-waypoint dwell time (paper: 1 s).
	Pause time.Duration

	// Graph is the street network for the graph-constrained kinds;
	// nil selects the kind's default builder (the synthetic campus for
	// CitySection, mobility.NewManhattanGraph for ManhattanGrid,
	// mobility.NewHighwayGraph for HighwayConvoy).
	Graph *mobility.Graph
	// StopProb, StopMin, StopMax configure CitySection's stochastic
	// intersection stops.
	StopProb         float64
	StopMin, StopMax time.Duration
	// DestPause is the dwell at reached destinations (CitySection and
	// ManhattanGrid).
	DestPause time.Duration

	// LightCycle and RedFraction configure ManhattanGrid's city-wide
	// traffic-light schedule (zero cycle disables lights).
	LightCycle  time.Duration
	RedFraction float64

	// Platoons, CruiseMin, CruiseMax and RampPause configure
	// HighwayConvoy; zero values select the defaults (4 platoons
	// cruising 24-32 m/s, 5 s ramp pause).
	Platoons             int
	CruiseMin, CruiseMax float64
	RampPause            time.Duration
}

// validateGraphKind checks the graph-constrained kinds' model fields up
// front, so a bad scenario (notably a registered template) fails at
// Validate time rather than inside the first Run. The mobility configs
// re-validate at build; this mirrors their cheap field checks.
func (m MobilitySpec) validateGraphKind() error {
	if m.Graph != nil {
		if err := m.Graph.Validate(); err != nil {
			return err
		}
	}
	if m.DestPause < 0 {
		return errors.New("netsim: negative DestPause")
	}
	switch m.Kind {
	case CitySection:
		if m.StopProb < 0 || m.StopProb > 1 {
			return fmt.Errorf("netsim: StopProb %v out of [0,1]", m.StopProb)
		}
		if m.StopMin < 0 || m.StopMax < m.StopMin {
			return fmt.Errorf("netsim: bad stop range [%v,%v]", m.StopMin, m.StopMax)
		}
	case ManhattanGrid:
		if m.LightCycle < 0 {
			return fmt.Errorf("netsim: negative LightCycle %v", m.LightCycle)
		}
		if m.RedFraction < 0 || m.RedFraction > 1 {
			return fmt.Errorf("netsim: RedFraction %v out of [0,1]", m.RedFraction)
		}
	case HighwayConvoy:
		// withDefaults has filled the zero values by the time Run
		// validates, so these are the effective convoy parameters.
		if m.Platoons < 0 {
			return fmt.Errorf("netsim: negative Platoons %d", m.Platoons)
		}
		if m.CruiseMin < 0 || m.CruiseMax < m.CruiseMin {
			return fmt.Errorf("netsim: bad cruise range [%v,%v]", m.CruiseMin, m.CruiseMax)
		}
		if m.RampPause < 0 {
			return errors.New("netsim: negative RampPause")
		}
	}
	return nil
}

// Publication schedules one event.
type Publication struct {
	// Offset from the end of warm-up.
	Offset time.Duration
	// Publisher is a node index; -1 picks a random subscriber.
	Publisher int
	// Topic defaults to the scenario's EventTopic when zero.
	Topic topic.Topic
	// Validity is the event's validity period. Required.
	Validity time.Duration
}

// Crash schedules a node failure (and optional recovery with fresh
// state).
type Crash struct {
	// Node is the node index.
	Node int
	// At is the failure instant (absolute, from simulation start).
	At time.Duration
	// RecoverAt restarts the node with empty tables; zero means never.
	RecoverAt time.Duration
}

// Resubscription schedules a subscription change on a live node,
// exercising the paper's "the list of subscriptions can change at any
// point in time".
type Resubscription struct {
	// Node is the node index.
	Node int
	// At is the change instant (absolute, from simulation start).
	At time.Duration
	// Topic is the topic to add or remove.
	Topic topic.Topic
	// Unsubscribe removes the topic instead of adding it.
	Unsubscribe bool
}

// Scenario fully describes one simulation run.
type Scenario struct {
	Name  string
	Nodes int
	Seed  int64

	// Protocol selects and tunes the protocol by registry name; the
	// zero spec runs the frugal protocol with default tuning.
	Protocol ProtocolSpec
	Mobility MobilitySpec
	// MAC configures the medium; mac.DefaultConfig(range) is typical.
	MAC mac.Config
	// Sizes is the bandwidth-accounting model (paper defaults when
	// zero).
	Sizes event.SizeModel

	// EventTopic is the topic events are published on (default
	// ".app.news"). SubscriberFraction in [0,1] of nodes subscribe to
	// it; the rest subscribe to DecoyTopic (default ".app.decoy") so
	// they still run the protocol, as in the paper's interest sweeps.
	EventTopic         topic.Topic
	DecoyTopic         topic.Topic
	SubscriberFraction float64

	Publications    []Publication
	Crashes         []Crash
	Resubscriptions []Resubscription

	// Workload, when non-zero, selects a registered generator that
	// lazily synthesizes additional traffic and dynamics from the run's
	// seeded RNG; its op stream is merged with the explicit lists
	// above. Validated against the registered params schema.
	Workload WorkloadSpec

	// CustomModels, when non-nil, overrides the mobility model of node
	// i with CustomModels[i] (nil entries fall back to Mobility). This
	// enables hand-crafted topologies such as a courier node shuttling
	// between partitioned clusters.
	CustomModels []mobility.Model

	// Trace, when non-nil, records the message-level timeline of the
	// run (sends, receptions, deliveries, publications).
	Trace *trace.Trace

	// DeliveryLog keeps the full per-delivery record list
	// (Result.Deliveries) and the per-event delivery bitsets alive for
	// the whole run, enabling Result.CoverageAt and
	// Result.DeliveryLatencies. Off by default: the runner then folds
	// each delivery into fixed-size per-event counters and a streaming
	// latency histogram at delivery time, so result memory stays flat
	// in roster size (the megacity contract — see ARCHITECTURE.md
	// "Memory contracts"). Setting Trace implies DeliveryLog.
	DeliveryLog bool

	// Warmup runs the system before measurement starts (the paper
	// discards the first 600 s of random-waypoint runs).
	Warmup time.Duration
	// Measure is the measurement window; publications are scheduled
	// relative to its start and counters cover exactly this window.
	Measure time.Duration

	// Tiles selects tile-parallel execution (ARCHITECTURE.md,
	// "Tile-parallel contracts"): the scenario bounding box splits into
	// that many geo tiles, each with its own engine shard, receiver
	// handlers fan out across tile workers, and window barriers refresh
	// positions and exchange tile crossings in parallel. Results are
	// byte-identical at every tile count — the deterministic merge
	// replays all side effects in the single-engine order — so Tiles is
	// purely a wall-clock knob. 0 selects automatically (tiled for
	// city-scale rosters, single-engine otherwise), 1 forces the plain
	// single-engine path, N >= 2 forces N tiles. Runs with CustomModels
	// fall back to the single-engine path (no derivable geometry or
	// speed bound).
	Tiles int

	// TileShift offsets the tile lattice origin by the given vector
	// (wrapped into one tile pitch). Any shift yields the same Result —
	// the metamorphic re-partitioning lever used by tileparity_test.go.
	TileShift geo.Point

	// Sample, when positive, records a deterministic time-series over
	// the measurement window into Result.Series: one SeriesPoint per
	// Sample period (plus a final partial window) with the cumulative
	// delivery ratio, in-flight transmissions, timer-wheel pending and
	// per-window proto/MAC counter deltas. The sampler only reads
	// counters the run already maintains — it draws no randomness and
	// mutates no protocol or medium state — so every measurement,
	// golden table and Result.Fingerprint is byte-identical with
	// sampling on or off (pinned by the sample-invariance tests; see
	// ARCHITECTURE.md "Observability contracts"). 0 disables sampling.
	Sample time.Duration
}

func (s Scenario) withDefaults() Scenario {
	if s.EventTopic.IsZero() {
		s.EventTopic = topic.MustParse(".app.news")
	}
	if s.DecoyTopic.IsZero() {
		s.DecoyTopic = topic.MustParse(".app.decoy")
	}
	if s.Sizes == (event.SizeModel{}) {
		s.Sizes = event.DefaultSizeModel()
	}
	if s.Trace != nil {
		// A message-level trace without the matching delivery log would
		// be an inconsistent timeline.
		s.DeliveryLog = true
	}
	s.Protocol = s.Protocol.withDefaults()
	if s.Mobility.Kind == HighwayConvoy {
		// Filled here (not in the runner) so Validate sees the effective
		// convoy values — a partially specified cruise range fails at
		// Validate time, not inside the first Run.
		if s.Mobility.Platoons == 0 {
			s.Mobility.Platoons = 4
		}
		if s.Mobility.CruiseMin == 0 {
			s.Mobility.CruiseMin = 24
		}
		if s.Mobility.CruiseMax == 0 {
			s.Mobility.CruiseMax = 32
		}
		if s.Mobility.RampPause == 0 {
			s.Mobility.RampPause = 5 * time.Second
		}
	}
	return s
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	if s.Nodes <= 0 {
		return errors.New("netsim: no nodes")
	}
	if s.SubscriberFraction < 0 || s.SubscriberFraction > 1 {
		return fmt.Errorf("netsim: SubscriberFraction %v out of [0,1]", s.SubscriberFraction)
	}
	if s.Measure <= 0 {
		return errors.New("netsim: Measure must be positive")
	}
	if s.Warmup < 0 {
		return errors.New("netsim: negative Warmup")
	}
	if err := proto.CheckParams(s.Protocol.withDefaults().Name, s.Protocol.Params); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if err := s.Workload.Validate(); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if err := s.MAC.Validate(); err != nil {
		return err
	}
	switch s.Mobility.Kind {
	case StaticNodes, RandomWaypoint:
		if s.Mobility.Area.Width() <= 0 || s.Mobility.Area.Height() <= 0 {
			return errors.New("netsim: empty mobility area")
		}
	case CitySection, ManhattanGrid, HighwayConvoy:
		// Graph nil is fine (each kind has a default builder).
		if err := s.Mobility.validateGraphKind(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("netsim: unknown mobility kind %d", s.Mobility.Kind)
	}
	for i, p := range s.Publications {
		if p.Validity <= 0 {
			return fmt.Errorf("netsim: publication %d without validity", i)
		}
		if p.Publisher >= s.Nodes {
			return fmt.Errorf("netsim: publication %d publisher %d out of range", i, p.Publisher)
		}
		if p.Offset < 0 {
			return fmt.Errorf("netsim: publication %d negative offset", i)
		}
	}
	for i, c := range s.Crashes {
		if c.Node < 0 || c.Node >= s.Nodes {
			return fmt.Errorf("netsim: crash %d node out of range", i)
		}
		if c.RecoverAt != 0 && c.RecoverAt < c.At {
			return fmt.Errorf("netsim: crash %d recovers before failing", i)
		}
	}
	for i, r := range s.Resubscriptions {
		if r.Node < 0 || r.Node >= s.Nodes {
			return fmt.Errorf("netsim: resubscription %d node out of range", i)
		}
		if r.Topic.IsZero() {
			return fmt.Errorf("netsim: resubscription %d zero topic", i)
		}
	}
	if s.CustomModels != nil && len(s.CustomModels) != s.Nodes {
		return fmt.Errorf("netsim: CustomModels has %d entries for %d nodes",
			len(s.CustomModels), s.Nodes)
	}
	if s.Tiles < 0 {
		return fmt.Errorf("netsim: negative Tiles %d", s.Tiles)
	}
	if s.Sample < 0 {
		return fmt.Errorf("netsim: negative Sample %v", s.Sample)
	}
	return nil
}

// autoTileMin is the roster size from which Tiles 0 resolves to a
// tiled run; autoTileMax caps the automatic tile count.
const (
	autoTileMin = 2000
	autoTileMax = 8
)

// resolveTiles turns the Tiles knob into an effective tile count.
// CustomModels always resolve to 1: the tiler needs scenario geometry
// and a mobility speed bound, which custom models do not declare.
func (s Scenario) resolveTiles() int {
	if s.CustomModels != nil {
		return 1
	}
	switch {
	case s.Tiles == 0:
		if s.Nodes >= autoTileMin {
			return min(runtime.NumCPU(), autoTileMax)
		}
		return 1
	default:
		return s.Tiles
	}
}
