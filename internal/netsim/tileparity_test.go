package netsim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/radio"
)

// forceFan makes the capture/replay fan run regardless of the host's
// core count for the duration of the test, so tile parity is never
// vacuously green on a single-core CI machine.
func forceFan(t *testing.T) {
	t.Helper()
	testForceFan = true
	t.Cleanup(func() { testForceFan = false })
}

// TestTileParity is the differential net over the tile-parallel runner:
// every non-Heavy registered scenario must produce a byte-identical
// Result.Fingerprint at 1, 2, 4 and 7 tiles — including 7, which tiles
// unevenly (1x7 or 7x1) and so exercises skewed ownership. One tile
// must literally reduce to the single-engine path.
func TestTileParity(t *testing.T) {
	forceFan(t)
	tileCounts := []int{1, 2, 4, 7}
	if testing.Short() {
		tileCounts = []int{1, 4}
	}
	for _, def := range Scenarios() {
		if def.Heavy {
			continue
		}
		def := def
		t.Run(def.Name, func(t *testing.T) {
			ref, err := Run(def.Instantiate(42))
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Fingerprint()
			if ref.DeliveredTotal() == 0 {
				t.Fatal("scenario delivered nothing; parity check is vacuous")
			}
			if ref.Tile != nil {
				t.Fatalf("untiled run reports tile stats %+v", *ref.Tile)
			}
			for _, k := range tileCounts {
				sc := def.Instantiate(42)
				sc.Tiles = k
				res, err := Run(sc)
				if err != nil {
					t.Fatalf("tiles=%d: %v", k, err)
				}
				if got := res.Fingerprint(); got != want {
					t.Errorf("tiles=%d fingerprint %s, want %s", k, got, want)
				}
				if k > 1 {
					st := res.Tile
					if st == nil || st.Tiles != k {
						t.Fatalf("tiles=%d run reports stats %+v", k, st)
					}
					// The machinery must actually engage, or the parity
					// above proves nothing about it.
					if st.Windows == 0 || st.BorderFrames == 0 {
						t.Errorf("tiles=%d machinery idle: %+v", k, *st)
					}
					if st.FannedFrames+st.SerialFrames == 0 {
						t.Errorf("tiles=%d delivered no frames through the fan hook: %+v", k, *st)
					}
				}
			}
		})
	}
}

// TestTileParityMetamorphic shifts the tile lattice origin: ownership,
// crossings and border classification all change, the results must not.
func TestTileParityMetamorphic(t *testing.T) {
	forceFan(t)
	def, ok := LookupScenario("manhattan")
	if !ok {
		t.Fatal("manhattan scenario not registered")
	}
	base := def.Instantiate(7)
	base.Tiles = 4
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, shift := range []geo.Point{
		geo.Pt(137, 0),
		geo.Pt(0, 211),
		geo.Pt(-63.5, 422.25),
	} {
		sc := def.Instantiate(7)
		sc.Tiles = 4
		sc.TileShift = shift
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("shift %v: %v", shift, err)
		}
		if got := res.Fingerprint(); got != want {
			t.Errorf("shift %v fingerprint %s, want %s", shift, got, want)
		}
		if res.Tile.Crossings == 0 && ref.Tile.Crossings == 0 {
			t.Errorf("shift %v: no crossings in either lattice; metamorphic check weak", shift)
		}
	}
}

// TestTileParityGatedPaths covers the configurations that must bypass
// the handler fan but still shard: probabilistic reception (shared-RNG
// draws per receiver force the serial order) and a delivery log.
func TestTileParityGatedPaths(t *testing.T) {
	forceFan(t)
	sc := Scenario{
		Nodes:              60,
		Seed:               11,
		Mobility:           MobilitySpec{Kind: RandomWaypoint, Area: geo.NewRect(1500, 1500), MinSpeed: 1, MaxSpeed: 25, Pause: time.Second},
		MAC:                mac.DefaultConfig(400),
		Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second}),
		SubscriberFraction: 0.8,
		Warmup:             5 * time.Second,
		Measure:            30 * time.Second,
		Publications: []Publication{
			{Publisher: -1, Validity: 20 * time.Second},
			{Offset: time.Second, Publisher: -1, Validity: 20 * time.Second},
		},
		DeliveryLog: true,
	}
	params := radio.Default80211b()
	shadow := radio.Shadowing{
		Params:         params,
		SensitivityDBm: params.ReceivedPowerDBm(400),
		SigmaDB:        6,
		LimitDBm:       -111,
	}
	sc.MAC.Range = shadow.MaxRange(1e-3)
	sc.MAC.ReceiveProb = shadow.ReceiveProb
	ref, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if ref.DeliveredTotal() == 0 {
		t.Fatal("shadowing scenario delivered nothing; check is vacuous")
	}
	tiled := sc
	tiled.Tiles = 4
	res, err := Run(tiled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != ref.Fingerprint() {
		t.Errorf("shadowed tiled run diverged: %s vs %s", res.Fingerprint(), ref.Fingerprint())
	}
	if res.Tile.FannedFrames != 0 {
		t.Errorf("fan ran %d frames under ReceiveProb; must stay serial", res.Tile.FannedFrames)
	}
}

// TestTiledConcurrentRuns runs the tile-parallel metro-slice district
// concurrently with itself, the shape the exp worker pool composes with
// tiling (-parallel over tiled runs). Under -race this is the net over
// the fan workers and window-prepare workers: every capture buffer,
// position slab and crossing list must stay strictly per-run, and the
// replicas must agree bit for bit with the untiled reference.
func TestTiledConcurrentRuns(t *testing.T) {
	forceFan(t)
	def, ok := LookupScenario("metro-slice")
	if !ok {
		t.Fatal("metro-slice not registered")
	}
	base := def.Instantiate(3)
	base.Warmup = 5 * time.Second
	base.Measure = 15 * time.Second
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	const replicas = 2
	got := make([]string, replicas)
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := def.Instantiate(3)
			sc.Warmup = base.Warmup
			sc.Measure = base.Measure
			sc.Tiles = 4
			res, err := Run(sc)
			if err != nil {
				t.Errorf("replica %d: %v", i, err)
				return
			}
			if res.Tile.FannedFrames == 0 {
				t.Errorf("replica %d never fanned; race net is vacuous", i)
			}
			got[i] = res.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i, fp := range got {
		if fp != want {
			t.Errorf("tiled replica %d fingerprint %s, want untiled %s", i, fp, want)
		}
	}
}

// TestTileAutoResolution pins the Tiles knob semantics: 0 resolves by
// size, custom models always run single-engine, negatives fail
// validation.
func TestTileAutoResolution(t *testing.T) {
	small := Scenario{Nodes: 100}
	if got := small.resolveTiles(); got != 1 {
		t.Errorf("small auto resolved to %d tiles, want 1", got)
	}
	big := Scenario{Nodes: autoTileMin}
	if got := big.resolveTiles(); got < 1 || got > autoTileMax {
		t.Errorf("big auto resolved to %d tiles, want 1..%d", got, autoTileMax)
	}
	forced := Scenario{Nodes: 50, Tiles: 6}
	if got := forced.resolveTiles(); got != 6 {
		t.Errorf("explicit Tiles resolved to %d, want 6", got)
	}
	custom := Scenario{Nodes: 2, Tiles: 6, CustomModels: make([]mobility.Model, 2)}
	if got := custom.resolveTiles(); got != 1 {
		t.Errorf("CustomModels resolved to %d tiles, want 1", got)
	}
	neg := Scenario{Nodes: 50, Tiles: -1}
	neg = neg.withDefaults()
	if err := neg.Validate(); err == nil {
		t.Error("negative Tiles passed validation")
	}
}
