package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/sim"
	"repro/internal/topic"
)

// shuttle is a deterministic courier: it oscillates on a straight line
// between two points with a fixed period.
type shuttle struct {
	a, b   geo.Point
	period time.Duration
}

func (s shuttle) Position(at sim.Time) geo.Point {
	f := math.Mod(at.Seconds()/s.period.Seconds(), 1.0)
	if f < 0.5 {
		return s.a.Lerp(s.b, f*2)
	}
	return s.b.Lerp(s.a, (f-0.5)*2)
}

func (s shuttle) Speed(sim.Time) float64 {
	return 2 * s.a.Dist(s.b) / s.period.Seconds()
}

// TestCourierBridgesPartition is the store-carry-forward test: two
// static clusters far beyond radio range exchange an event only through
// a shuttling courier node.
func TestCourierBridgesPartition(t *testing.T) {
	const nodes = 11
	models := make([]mobility.Model, nodes)
	// Cluster A: nodes 0-4 near the origin.
	for i := 0; i < 5; i++ {
		models[i] = mobility.Static{P: geo.Pt(float64(i)*40, 0)}
	}
	// Cluster B: nodes 5-9 at 4 km — more than 10 radio ranges away.
	for i := 5; i < 10; i++ {
		models[i] = mobility.Static{P: geo.Pt(4000+float64(i-5)*40, 0)}
	}
	// Node 10 shuttles between the clusters every 120 s.
	models[10] = shuttle{a: geo.Pt(80, 0), b: geo.Pt(4080, 0), period: 120 * time.Second}

	sc := Scenario{
		Name:  "courier",
		Nodes: nodes,
		Seed:  1,
		Mobility: MobilitySpec{ // fallback (unused: all custom)
			Kind: StaticNodes,
			Area: geo.NewRect(5000, 100),
		},
		CustomModels:       models,
		MAC:                mac.DefaultConfig(339),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: time.Second, HBUpperBound: time.Second}),
		SubscriberFraction: 1.0,
		Publications: []Publication{
			{Offset: 0, Publisher: 0, Validity: 240 * time.Second},
		},
		Warmup:      2 * time.Second,
		Measure:     250 * time.Second,
		DeliveryLog: true, // the partition check reads res.Deliveries
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got != 1.0 {
		t.Fatalf("courier reliability = %v, want 1.0", got)
	}
	// Cluster B must have received the event noticeably later than
	// cluster A: the courier needs ~60 s to cross.
	ev := res.Published[0].ID
	var maxA, minB sim.Time
	minB = sim.Time(1 << 62)
	for _, d := range res.Deliveries {
		if d.Event != ev {
			continue
		}
		switch {
		case d.Node >= 5 && d.Node <= 9:
			if d.At < minB {
				minB = d.At
			}
		case d.Node <= 4:
			if d.At > maxA {
				maxA = d.At
			}
		}
	}
	if minB.Sub(maxA) < 20*time.Second {
		t.Fatalf("cluster B got the event too fast (A by %v, B from %v): no real partition",
			maxA, minB)
	}
}

func TestResubscriptionReceivesEvents(t *testing.T) {
	sc := Scenario{
		Name:  "resub",
		Nodes: 6,
		Seed:  2,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(200, 200),
		},
		MAC:                mac.DefaultConfig(339),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: time.Second, HBUpperBound: time.Second}),
		SubscriberFraction: 0.5,
		Publications: []Publication{
			{Offset: 5 * time.Second, Publisher: -1, Validity: 120 * time.Second},
		},
		Warmup:  0,
		Measure: 130 * time.Second,
	}
	// First pass: find a node that is NOT subscribed.
	probe, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	outsider := -1
	for i, n := range probe.Nodes {
		if !n.Subscribed {
			outsider = i
			break
		}
	}
	if outsider == -1 {
		t.Fatal("no outsider found")
	}
	if probe.Nodes[outsider].Proto.Delivered != 0 {
		t.Fatal("outsider delivered without subscribing")
	}
	// Second pass: the outsider subscribes to the event topic mid-run,
	// well after publication, and must still receive the event through
	// the id-exchange with its neighbors.
	sc.Resubscriptions = []Resubscription{{
		Node:  outsider,
		At:    30 * time.Second,
		Topic: topic.MustParse(".app.news"),
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[outsider].Proto.Delivered != 1 {
		t.Fatalf("late subscriber delivered %d events, want 1",
			res.Nodes[outsider].Proto.Delivered)
	}
}

func TestUnsubscribeStopsDeliveries(t *testing.T) {
	sc := Scenario{
		Name:  "unsub",
		Nodes: 5,
		Seed:  3,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(150, 150),
		},
		MAC:                mac.DefaultConfig(339),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: time.Second, HBUpperBound: time.Second}),
		SubscriberFraction: 1.0,
		Resubscriptions: []Resubscription{
			{Node: 2, At: 5 * time.Second, Topic: topic.MustParse(".app.news"), Unsubscribe: true},
		},
		Publications: []Publication{
			{Offset: 10 * time.Second, Publisher: 0, Validity: 60 * time.Second},
		},
		Warmup:  0,
		Measure: 80 * time.Second,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[2].Proto.Delivered != 0 {
		t.Fatalf("unsubscribed node delivered %d events", res.Nodes[2].Proto.Delivered)
	}
	// The others still got it.
	for _, i := range []int{1, 3, 4} {
		if res.Nodes[i].Proto.Delivered != 1 {
			t.Fatalf("node %d delivered %d, want 1", i, res.Nodes[i].Proto.Delivered)
		}
	}
}

func TestDeliveryLatencies(t *testing.T) {
	sc := Scenario{
		Name:  "latency",
		Nodes: 8,
		Seed:  4,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(200, 200),
		},
		MAC:                mac.DefaultConfig(339),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: time.Second, HBUpperBound: time.Second}),
		SubscriberFraction: 1.0,
		Publications: []Publication{
			{Offset: 2 * time.Second, Publisher: 0, Validity: 60 * time.Second},
		},
		Warmup:      0,
		Measure:     70 * time.Second,
		DeliveryLog: true, // DeliveryLatencies needs the full record list
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	lats := res.DeliveryLatencies()
	if len(lats) != 7 {
		t.Fatalf("latencies = %d, want 7 (publisher excluded)", len(lats))
	}
	for _, l := range lats {
		if l < 0 || l > 10 {
			t.Fatalf("latency %vs implausible in a dense static net", l)
		}
	}
	p50 := metrics.Median(lats)
	p99 := metrics.Quantile(lats, 0.99)
	if p50 > p99 {
		t.Fatal("median exceeds p99")
	}
	// The always-on streaming histogram must agree with the exact
	// record-derived list: same count/sum, quantiles within its
	// documented bucket error.
	if res.Latency.N() != len(lats) {
		t.Fatalf("streaming latency N = %d, want %d", res.Latency.N(), len(lats))
	}
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	if math.Abs(res.Latency.Sum()-sum) > 1e-9 {
		t.Fatalf("streaming latency sum = %v, want %v", res.Latency.Sum(), sum)
	}
	if est := res.Latency.Quantile(0.5); math.Abs(est-p50) > 0.05*p50+1e-9 {
		t.Fatalf("streaming p50 = %v, exact %v", est, p50)
	}
	// Coverage is monotone and complete.
	ev := res.Published[0].ID
	pubAt := res.Published[0].At
	if got := res.CoverageAt(ev, pubAt); got != 0 {
		t.Fatalf("coverage at publish = %v, want 0", got)
	}
	mid := res.CoverageAt(ev, pubAt.Add(2*time.Second))
	end := res.CoverageAt(ev, pubAt.Add(60*time.Second))
	if end != 1.0 {
		t.Fatalf("final coverage = %v, want 1.0", end)
	}
	if mid > end {
		t.Fatal("coverage not monotone")
	}
}

func TestCustomModelsLengthValidated(t *testing.T) {
	sc := Scenario{
		Nodes:        3,
		Mobility:     MobilitySpec{Kind: StaticNodes, Area: geo.NewRect(10, 10)},
		MAC:          mac.DefaultConfig(100),
		Measure:      time.Second,
		CustomModels: []mobility.Model{mobility.Static{}},
	}
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("mismatched CustomModels length accepted")
	}
}

func TestResubscriptionValidated(t *testing.T) {
	sc := denseStatic(1)
	sc.Resubscriptions = []Resubscription{{Node: 99, At: time.Second, Topic: topic.MustParse(".x")}}
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("out-of-range resubscription accepted")
	}
	sc.Resubscriptions = []Resubscription{{Node: 0, At: time.Second}}
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("zero-topic resubscription accepted")
	}
}
