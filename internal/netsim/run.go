package netsim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"reflect"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// node is one simulated process: mobility + MAC port + protocol.
type node struct {
	id    event.NodeID
	model mobility.Model
	port  *mac.Port
	proto proto.Disseminator
	// subscribed reports subscription to the scenario's EventTopic.
	subscribed bool
	// down is true while crashed; received frames are discarded.
	down bool
	// prevStats accumulates counters of crashed incarnations.
	prevStats proto.Stats
}

// totalStats merges the live protocol's counters with those of crashed
// incarnations.
func (n *node) totalStats() proto.Stats {
	s := n.proto.Stats()
	return addStats(n.prevStats, s)
}

// statsOp combines two Stats field-wise. Reflection keeps the
// crash-merge and warm-up-window accounting in lock-step with
// proto.Stats: a counter added for a new protocol is picked up here
// automatically instead of silently reading zero in scenario tables.
func statsOp(a, b proto.Stats, op func(x, y uint64) uint64) proto.Stats {
	var out proto.Stats
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	vo := reflect.ValueOf(&out).Elem()
	for i := 0; i < va.NumField(); i++ {
		vo.Field(i).SetUint(op(va.Field(i).Uint(), vb.Field(i).Uint()))
	}
	return out
}

func addStats(a, b proto.Stats) proto.Stats {
	return statsOp(a, b, func(x, y uint64) uint64 { return x + y })
}

// locator adapts the mobility models to the MAC medium.
type locator struct{ nodes []*node }

func (l locator) Position(id event.NodeID, at sim.Time) geo.Point {
	return l.nodes[id].model.Position(at)
}

// portTransport charges the scenario size model for every broadcast and
// feeds the optional trace. In a tiled run (tr non-nil) a broadcast
// issued inside a fan worker is captured instead of sent; replay calls
// send with the buffer cleared, at the same instant, so the charged
// size, trace record and port hand-off are identical to the serial
// path.
type portTransport struct {
	port  *mac.Port
	sizes event.SizeModel
	r     *runner
	tr    *tileRun
	rank  int32
}

func (t portTransport) Broadcast(m event.Message) {
	if t.tr != nil {
		if b := t.tr.bufOf[t.rank]; b != nil {
			b.acts = append(b.acts, action{kind: actBroadcast, rank: t.rank, msg: m})
			return
		}
	}
	t.send(m)
}

func (t portTransport) send(m event.Message) {
	size := m.WireSize(t.sizes)
	t.r.traceAdd(trace.Record{
		At:    t.r.eng.Now(),
		Node:  t.port.ID(),
		Op:    trace.OpSend,
		Msg:   m.Kind(),
		Bytes: size,
	})
	t.port.Broadcast(m, size)
}

// runner holds the mutable state of one simulation.
type runner struct {
	sc    Scenario
	eng   *sim.Engine
	nodes []*node
	// graph is the street network shared by every city-section node of
	// this run (built once instead of per node).
	graph *mobility.Graph
	// subIdx caches the EventTopic subscribers' node indices; the
	// assignment is fixed at build time, so anonymous publications
	// (Publisher -1) draw from this instead of rescanning all nodes.
	subIdx []int

	// Streaming result aggregation: every delivery folds into its
	// event's fixed-size cell (in-time counter, deduped by a shared
	// per-ID bitset) and the run-wide latency histogram at delivery
	// time, so result memory is one bit per (event, node) plus O(1)
	// per event — instead of the old per-(event, node) time table and
	// ever-growing DeliveryRecord list.
	//
	// cells is 1:1 with published (same order). groups shares one
	// first-delivery bitset among all publications carrying the same
	// event ID: a crash-recovered publisher replays its reseeded RNG
	// stream and can re-issue an earlier ID, and the aliased
	// publications then score against the union of deliveries, exactly
	// as the old shared delivery table did. subMask is the subscriber
	// roster as a bitset (fixed after build), used to seed an aliased
	// publication's in-time count from deliveries that preceded it.
	// pending buffers deliveries that arrive before their event's cell
	// exists — the publisher's local self-delivery fires inside
	// proto.Publish, before publish() can register the cell.
	cells   []eventCell
	groups  map[event.ID]*eventGroup
	subMask []uint64
	pending []DeliveryRecord
	// keepLog mirrors Scenario.DeliveryLog: keep full DeliveryRecords
	// (Result.Deliveries) for CoverageAt/DeliveryLatencies.
	keepLog   bool
	lat       metrics.LogHist
	records   []DeliveryRecord
	published []PublishedEvent

	// tiled is non-nil when the run is sharded across geo tiles
	// (Scenario.Tiles); results are byte-identical either way.
	tiled *tileRun

	// medium is the run's broadcast channel, kept for the sampler's
	// in-flight reads. sampler is non-nil when Scenario.Sample is set;
	// it only observes (see series.go).
	medium  *mac.Medium
	sampler *sampler

	snapProto []proto.Stats
	snapMAC   []mac.Counters

	// err records a mid-run failure (e.g. a protocol rebuild error on
	// recovery); it halts the engine and fails the Run.
	err error
}

// Run executes the scenario and returns its measurements.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		sc:      sc,
		eng:     sim.New(sc.Seed),
		groups:  make(map[event.ID]*eventGroup),
		keepLog: sc.DeliveryLog,
	}
	if err := r.build(); err != nil {
		return nil, err
	}
	if err := r.schedule(); err != nil {
		return nil, err
	}
	end := sim.At(sc.Warmup + sc.Measure)
	if r.tiled != nil {
		r.tiled.runUntil(end)
	} else {
		r.eng.RunUntil(end)
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.collect(), nil
}

// fail aborts the run: deterministic misconfiguration discovered
// mid-simulation must surface as a Run error, not vanish.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.eng.Halt()
}

// build creates mobility models, the medium and the protocol instances.
func (r *runner) build() error {
	sc := r.sc
	r.nodes = make([]*node, sc.Nodes)
	for i := range r.nodes {
		r.nodes[i] = &node{id: event.NodeID(i)}
	}
	if builder := defaultGraph[sc.Mobility.Kind]; builder != nil {
		r.graph = sc.Mobility.Graph
		if r.graph == nil {
			r.graph = builder()
		}
	}
	// Mobility first: models draw from the engine RNG in node order.
	for i, n := range r.nodes {
		if sc.CustomModels != nil && sc.CustomModels[i] != nil {
			n.model = sc.CustomModels[i]
			continue
		}
		model, err := r.buildMobility()
		if err != nil {
			return err
		}
		n.model = model
	}
	cfg := r.macConfig()
	medium := mac.New(r.eng, cfg, locator{nodes: r.nodes})
	r.medium = medium
	for _, n := range r.nodes {
		n := n
		n.port = medium.Attach(n.id, func(f mac.Frame) {
			if n.down {
				return
			}
			r.traceAdd(trace.Record{
				At:   r.eng.Now(),
				Node: n.id,
				Op:   trace.OpReceive,
				Msg:  f.Msg.Kind(),
			})
			_ = n.proto.HandleMessage(f.Msg)
		})
	}
	// Tiling needs a known bounding box for the geometry; every
	// registry mobility kind derives one. CustomModels resolve to one
	// tile, and a zero caller-supplied Bounds falls back likewise.
	if k := sc.resolveTiles(); k > 1 && cfg.Bounds != (geo.Rect{}) {
		r.tiled = newTileRun(r, medium, cfg, k)
	}
	// Subscription assignment: a seeded shuffle picks the subscribers.
	shuffleRng := r.eng.NewRand()
	order := shuffleRng.Perm(sc.Nodes)
	numSubs := int(float64(sc.Nodes)*sc.SubscriberFraction + 0.5)
	for i, idx := range order {
		r.nodes[idx].subscribed = i < numSubs
	}
	// The assignment never changes after build (crashes keep their
	// flag; Resubscriptions alter protocol state, not this roster), so
	// cache the subscriber indices for anonymous publications instead
	// of rescanning all nodes per publish.
	for i, n := range r.nodes {
		if n.subscribed {
			r.subIdx = append(r.subIdx, i)
		}
	}
	r.subMask = make([]uint64, (sc.Nodes+63)/64)
	for _, i := range r.subIdx {
		r.subMask[uint(i)/64] |= uint64(1) << (uint(i) % 64)
	}
	for _, n := range r.nodes {
		proto, err := r.buildProtocol(n)
		if err != nil {
			return err
		}
		n.proto = proto
		tp := sc.DecoyTopic
		if n.subscribed {
			tp = sc.EventTopic
		}
		if err := n.proto.Subscribe(tp); err != nil {
			return err
		}
	}
	return nil
}

// defaultGraph maps each graph-constrained mobility kind to its default
// street-network builder (used when MobilitySpec.Graph is nil). The
// graph is built once per run and shared by every node.
var defaultGraph = map[MobilityKind]func() *mobility.Graph{
	CitySection:   mobility.NewCampusGraph,
	ManhattanGrid: mobility.NewManhattanGraph,
	HighwayConvoy: mobility.NewHighwayGraph,
}

func (r *runner) buildMobility() (mobility.Model, error) {
	m := r.sc.Mobility
	rng := r.eng.NewRand()
	switch m.Kind {
	case StaticNodes:
		p := geo.Pt(
			m.Area.Min.X+rng.Float64()*m.Area.Width(),
			m.Area.Min.Y+rng.Float64()*m.Area.Height(),
		)
		return mobility.Static{P: p}, nil
	case RandomWaypoint:
		cfg := mobility.WaypointConfig{
			Area:     m.Area,
			MinSpeed: m.MinSpeed,
			MaxSpeed: m.MaxSpeed,
			Pause:    m.Pause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewWaypoint(cfg, rng), nil
	case CitySection:
		cfg := mobility.CityConfig{
			Graph:     r.graph,
			StopProb:  m.StopProb,
			StopMin:   m.StopMin,
			StopMax:   m.StopMax,
			DestPause: m.DestPause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewCity(cfg, rng), nil
	case ManhattanGrid:
		cfg := mobility.ManhattanConfig{
			Graph:       r.graph,
			LightCycle:  m.LightCycle,
			RedFraction: m.RedFraction,
			DestPause:   m.DestPause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewManhattan(cfg, rng), nil
	case HighwayConvoy:
		// Convoy defaults were filled by Scenario.withDefaults.
		cfg := mobility.HighwayConfig{
			Graph:     r.graph,
			Platoons:  m.Platoons,
			CruiseMin: m.CruiseMin,
			CruiseMax: m.CruiseMax,
			RampPause: m.RampPause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewHighway(cfg, rng), nil
	default:
		return nil, fmt.Errorf("netsim: unknown mobility kind %d", m.Kind)
	}
}

// macConfig returns the scenario's MAC config with a node-speed bound
// and index bounds derived from the mobility model, enabling the
// medium's cached spatial index (see mac.Config.SpeedBounded) and
// pre-sizing its dense cell slabs (see mac.Config.Bounds). Custom
// models stay conservative: their speeds and geometry are unknown, so
// the medium re-buckets per instant and derives bounds from positions
// at first use. Caller-supplied values are left untouched.
func (r *runner) macConfig() mac.Config {
	cfg := r.sc.MAC
	if r.sc.CustomModels != nil {
		return cfg
	}
	if cfg.Bounds == (geo.Rect{}) {
		switch r.sc.Mobility.Kind {
		case StaticNodes, RandomWaypoint:
			cfg.Bounds = r.sc.Mobility.Area
		case CitySection, ManhattanGrid, HighwayConvoy:
			// Vehicles travel straight roads between intersections, so
			// the street graph's bounding box contains every position.
			cfg.Bounds = r.graph.Bounds()
		}
	}
	if cfg.SpeedBounded {
		return cfg
	}
	switch r.sc.Mobility.Kind {
	case StaticNodes:
		cfg.SpeedBounded = true // MaxSpeed 0: nodes never move
	case RandomWaypoint:
		cfg.SpeedBounded, cfg.MaxSpeed = true, r.sc.Mobility.MaxSpeed
	case CitySection, ManhattanGrid, HighwayConvoy:
		// Graph-constrained vehicles never drive above a road's limit.
		cfg.SpeedBounded, cfg.MaxSpeed = true, r.graph.MaxSpeedLimit()
	}
	return cfg
}

// buildProtocol constructs one node's protocol instance through the
// proto registry: the scenario's ProtocolSpec names the factory, and
// the runner supplies the per-node environment (scheduler, transport,
// private RNG stream, delivery hook, speed source).
func (r *runner) buildProtocol(n *node) (proto.Disseminator, error) {
	sc := r.sc
	model, eng := n.model, r.eng
	env := proto.Env{
		ID:        n.id,
		Sched:     proto.EngineScheduler{Eng: r.eng},
		Transport: portTransport{port: n.port, sizes: sc.Sizes, r: r},
		Rand:      rand.New(rand.NewSource(sc.Seed*7919 + int64(n.id)*104729 + 13)),
		OnDeliver: r.deliverHook(n.id),
		Speed:     func() float64 { return model.Speed(eng.Now()) },
	}
	if tr := r.tiled; tr != nil {
		// Tiled wiring: timers file on the node's current tile shard,
		// and transport/deliveries capture into the fan buffer when one
		// is installed for the rank (also on crash-recovery rebuilds).
		rank := int32(n.id)
		inner := env.OnDeliver
		tr.deliverTo[rank] = inner
		env.OnDeliver = func(ev event.Event) {
			if b := tr.bufOf[rank]; b != nil {
				b.acts = append(b.acts, action{kind: actDeliver, rank: rank, ev: ev})
				return
			}
			inner(ev)
		}
		env.Sched = tileSched{tr: tr, eng: r.eng, rank: rank}
		tp := portTransport{port: n.port, sizes: sc.Sizes, r: r, tr: tr, rank: rank}
		tr.transports[rank] = tp
		env.Transport = tp
	}
	d, err := proto.Build(sc.Protocol.Name, sc.Protocol.Params, env)
	if err != nil {
		return nil, fmt.Errorf("netsim: node %v: %w", n.id, err)
	}
	return d, nil
}

// eventCell is the fixed-size per-publication accumulator that replaces
// the per-(event, node) delivery-time table: enough to compute the
// publication's EventOutcome exactly.
type eventCell struct {
	// eligible is |subscribers| minus the publisher (if subscribed),
	// frozen at publish time — valid because the subscription roster
	// never changes after build (see runner.subIdx).
	eligible int32
	// inTime counts eligible first deliveries at or before deadline.
	inTime    int32
	publisher event.NodeID
	at        sim.Time
	deadline  sim.Time
}

// eventGroup joins the publications sharing one event ID: bits is their
// common first-delivery bitset, cells the indices of their eventCells
// (publish order; almost always exactly one).
type eventGroup struct {
	bits  []uint64
	cells []int32
}

// deliver folds one delivery into the event's group: first-delivery
// dedup via the shared bitset, then every publication's in-time counter
// and the streaming latency histogram. Returns false for duplicates.
func (r *runner) deliver(g *eventGroup, id event.NodeID, at sim.Time) bool {
	w, m := uint(id)/64, uint64(1)<<(uint(id)%64)
	if g.bits[w]&m != 0 {
		return false
	}
	g.bits[w] |= m
	sub := r.nodes[id].subscribed
	for _, ci := range g.cells {
		c := &r.cells[ci]
		if sub && id != c.publisher && at <= c.deadline {
			c.inTime++
		}
	}
	// Latency is scored against the newest publication of the ID (for
	// the overwhelmingly common single-publication case: the only one).
	c := &r.cells[g.cells[len(g.cells)-1]]
	if id != c.publisher && at <= c.deadline {
		r.lat.Add(at.Sub(c.at).Seconds())
	}
	return true
}

// deliverHook streams first deliveries per (event, node) into the
// event's group. Deliveries for a not-yet-registered event (the
// publisher's self-delivery inside proto.Publish) buffer in pending
// until publish() registers the cell.
func (r *runner) deliverHook(id event.NodeID) func(event.Event) {
	return func(ev event.Event) {
		now := r.eng.Now()
		if g, ok := r.groups[ev.ID]; ok {
			if !r.deliver(g, id, now) {
				return
			}
		} else {
			for _, p := range r.pending {
				if p.Event == ev.ID && p.Node == id {
					return // duplicate before registration
				}
			}
			r.pending = append(r.pending, DeliveryRecord{Event: ev.ID, Node: id, At: now})
		}
		if r.keepLog {
			r.records = append(r.records, DeliveryRecord{
				Event: ev.ID,
				Node:  id,
				At:    now,
			})
		}
		r.traceAdd(trace.Record{
			At:    now,
			Node:  id,
			Op:    trace.OpDeliver,
			Event: ev.ID,
		})
	}
}

// popcountAnd counts the set bits of a ∧ b.
func popcountAnd(a, b []uint64) int32 {
	var n int32
	for i, w := range a {
		n += int32(bits.OnesCount64(w & b[i]))
	}
	return n
}

// traceAdd records into the optional scenario trace.
func (r *runner) traceAdd(rec trace.Record) {
	if r.sc.Trace != nil {
		r.sc.Trace.Add(rec)
	}
}

// schedule arms the warm-up snapshot and the workload pump that drives
// publications, crashes and (re)subscriptions.
func (r *runner) schedule() error {
	sc := r.sc
	warm := sim.At(sc.Warmup)
	// Snapshot first: scheduled before any same-instant publication, so
	// FIFO tie-breaking guarantees window counters include them.
	r.eng.At(warm, r.snapshot)
	if sc.Sample > 0 {
		// The sampler baseline shares the snapshot's FIFO position:
		// before same-instant workload ops, so the first window counts
		// them. It draws no RNG — pubRng below sees the same stream
		// with sampling on or off.
		r.startSampler(warm)
	}
	pubRng := r.eng.NewRand()
	gen, err := r.buildWorkload()
	if err != nil {
		return err
	}
	r.pump(gen, pubRng)
	return nil
}

// explicitOps converts the scenario's hand-written lists into one
// sorted op schedule for the "explicit" generator. The pre-sort slice
// order encodes the tie-break for same-instant ops (publications in
// list order, then each crash with its recovery, then
// resubscriptions), matching the engine's historical FIFO order when
// the lists were scheduled up front.
func (r *runner) explicitOps() []workload.Op {
	sc := r.sc
	ops := make([]workload.Op, 0, len(sc.Publications)+2*len(sc.Crashes)+len(sc.Resubscriptions))
	for _, p := range sc.Publications {
		ops = append(ops, workload.Op{
			At:       sc.Warmup + p.Offset,
			Kind:     workload.Publish,
			Node:     p.Publisher,
			Topic:    p.Topic,
			Validity: p.Validity,
		})
	}
	for _, c := range sc.Crashes {
		ops = append(ops, workload.Op{At: c.At, Kind: workload.Crash, Node: c.Node})
		if c.RecoverAt != 0 {
			ops = append(ops, workload.Op{At: c.RecoverAt, Kind: workload.Recover, Node: c.Node})
		}
	}
	for _, rs := range sc.Resubscriptions {
		kind := workload.Subscribe
		if rs.Unsubscribe {
			kind = workload.Unsubscribe
		}
		ops = append(ops, workload.Op{At: rs.At, Kind: kind, Node: rs.Node, Topic: rs.Topic})
	}
	workload.SortOps(ops)
	return ops
}

// buildWorkload assembles the run's op stream: the explicit lists
// always run (as the "explicit" generator); a non-zero WorkloadSpec is
// built through the workload registry with its own RNG stream and
// merged in (ties to the explicit schedule).
func (r *runner) buildWorkload() (workload.Generator, error) {
	sc := r.sc
	gen := workload.NewExplicit(r.explicitOps())
	if sc.Workload.IsZero() {
		return gen, nil
	}
	env := workload.Env{
		Nodes:      sc.Nodes,
		Rand:       r.eng.NewRand(),
		Warmup:     sc.Warmup,
		Measure:    sc.Measure,
		EventTopic: sc.EventTopic,
	}
	wgen, err := workload.Build(sc.Workload.Name, sc.Workload.Params, env)
	if err != nil {
		return nil, fmt.Errorf("netsim: workload %q: %w", sc.Workload.Name, err)
	}
	return workload.Merge(gen, wgen), nil
}

// pump streams the workload into the engine with exactly one armed
// callback: apply the current op, pull the next, reschedule. A run with
// a million generated publications therefore never materializes an op
// slice — generation stays O(1) memory off the simulation's hot path.
func (r *runner) pump(gen workload.Generator, pubRng *rand.Rand) {
	op, ok := gen.Next()
	if !ok {
		return
	}
	var fire func()
	fire = func() {
		cur := op
		r.apply(cur, pubRng)
		next, ok := gen.Next()
		if !ok {
			return
		}
		if next.At < cur.At {
			r.fail(fmt.Errorf("netsim: workload %q emitted op at %v after %v (non-monotone)",
				r.sc.Workload, next.At, cur.At))
			return
		}
		op = next
		r.eng.Schedule(sim.At(op.At), fire)
	}
	r.eng.Schedule(sim.At(op.At), fire)
}

// apply executes one workload op. Ops come from either the validated
// explicit lists or a registered generator held to the conformance
// suite; out-of-range ops are deterministic misconfiguration and fail
// the run.
func (r *runner) apply(op workload.Op, pubRng *rand.Rand) {
	minNode := 0
	if op.Kind == workload.Publish {
		minNode = -1 // -1 publishes from a random subscriber
	}
	if op.Node < minNode || op.Node >= r.sc.Nodes {
		r.fail(fmt.Errorf("netsim: workload %s op node %d out of range [%d,%d)",
			op.Kind, op.Node, minNode, r.sc.Nodes))
		return
	}
	switch op.Kind {
	case workload.Publish:
		if op.Validity <= 0 {
			r.fail(fmt.Errorf("netsim: workload publish without validity at %v", op.At))
			return
		}
		r.publish(Publication{Publisher: op.Node, Topic: op.Topic, Validity: op.Validity}, pubRng)
	case workload.Crash:
		r.crash(op.Node)
	case workload.Recover:
		r.recover(op.Node)
	case workload.Subscribe, workload.Unsubscribe:
		n := r.nodes[op.Node]
		if n.down {
			return
		}
		tp := op.Topic
		if tp.IsZero() {
			tp = r.sc.EventTopic
		}
		if op.Kind == workload.Unsubscribe {
			n.proto.Unsubscribe(tp)
		} else {
			_ = n.proto.Subscribe(tp)
		}
	default:
		r.fail(fmt.Errorf("netsim: unknown workload op kind %v", op.Kind))
	}
}

func (r *runner) snapshot() {
	r.snapProto = make([]proto.Stats, len(r.nodes))
	r.snapMAC = make([]mac.Counters, len(r.nodes))
	for i, n := range r.nodes {
		r.snapProto[i] = n.totalStats()
		r.snapMAC[i] = n.port.Counters()
	}
}

func (r *runner) publish(p Publication, rng *rand.Rand) {
	idx := p.Publisher
	if idx < 0 {
		if len(r.subIdx) == 0 {
			return // nobody to publish; recorded as zero events
		}
		idx = r.subIdx[rng.Intn(len(r.subIdx))]
	}
	n := r.nodes[idx]
	if n.down {
		return
	}
	tp := p.Topic
	if tp.IsZero() {
		tp = r.sc.EventTopic
	}
	id, err := n.proto.Publish(tp, nil, p.Validity)
	if err != nil {
		// Any buffered self-delivery belongs to a failed (unregistered)
		// publication; it was already logged/traced on arrival.
		r.pending = r.pending[:0]
		return
	}
	now := r.eng.Now()
	eligible := int32(len(r.subIdx))
	if n.subscribed {
		eligible--
	}
	ci := int32(len(r.cells))
	cell := eventCell{
		eligible:  eligible,
		publisher: n.id,
		at:        now,
		deadline:  now.Add(p.Validity),
	}
	g := r.groups[id]
	if g == nil {
		g = &eventGroup{bits: make([]uint64, (r.sc.Nodes+63)/64)}
		r.groups[id] = g
	} else {
		// Aliased re-publication (see runner.groups): every first
		// delivery so far precedes this publish and hence its deadline,
		// so the new outcome starts from the delivered subscribers.
		cell.inTime = popcountAnd(g.bits, r.subMask)
		w, m := uint(n.id)/64, uint64(1)<<(uint(n.id)%64)
		if n.subscribed && g.bits[w]&m != 0 {
			cell.inTime-- // the new publisher never scores itself
		}
	}
	r.cells = append(r.cells, cell)
	g.cells = append(g.cells, ci)
	for _, pd := range r.pending {
		// The publisher's local delivery from inside proto.Publish.
		if pd.Event == id {
			r.deliver(g, pd.Node, pd.At)
		}
	}
	r.pending = r.pending[:0]
	r.published = append(r.published, PublishedEvent{
		ID:        id,
		Publisher: n.id,
		Topic:     tp,
		At:        now,
		Validity:  p.Validity,
	})
	r.traceAdd(trace.Record{
		At:    now,
		Node:  n.id,
		Op:    trace.OpPublish,
		Event: id,
	})
}

func (r *runner) crash(idx int) {
	n := r.nodes[idx]
	if n.down {
		return
	}
	n.down = true
	n.prevStats = n.totalStats()
	n.proto.Stop()
}

func (r *runner) recover(idx int) {
	n := r.nodes[idx]
	if !n.down {
		return
	}
	p, err := r.buildProtocol(n)
	if err != nil {
		// Deterministic misconfiguration, not a runtime event: fail the
		// run instead of leaving the node silently down forever.
		// buildProtocol's wrap already names the node.
		r.fail(fmt.Errorf("recovering crashed node: %w", err))
		return
	}
	n.proto = p
	n.down = false
	tp := r.sc.DecoyTopic
	if n.subscribed {
		tp = r.sc.EventTopic
	}
	_ = n.proto.Subscribe(tp)
}

// collect assembles the Result after the run. Outcomes read directly
// off the per-event cells (cells is 1:1 with Published, same order), so
// no delivery table is ever materialized.
func (r *runner) collect() *Result {
	res := &Result{
		Scenario:   r.sc,
		Published:  r.published,
		Deliveries: r.records,
		Latency:    r.lat,
		Nodes:      make([]NodeResult, len(r.nodes)),
	}
	if r.tiled != nil {
		stats := r.tiled.stats
		res.Tile = &stats
	}
	if r.sampler != nil {
		res.Series = r.sampler.series
	}
	if len(r.published) > 0 {
		res.Outcomes = make([]EventOutcome, len(r.published))
	}
	for i, pe := range r.published {
		c := r.cells[i]
		res.Outcomes[i] = EventOutcome{
			PublishedEvent:  pe,
			Eligible:        int(c.eligible),
			DeliveredInTime: int(c.inTime),
		}
	}
	for i, n := range r.nodes {
		proto := n.totalStats()
		macC := n.port.Counters()
		if r.snapProto != nil {
			proto = subStats(proto, r.snapProto[i])
			macC = subMAC(macC, r.snapMAC[i])
		}
		res.Nodes[i] = NodeResult{
			ID:         n.id,
			Subscribed: n.subscribed,
			Proto:      proto,
			MAC:        macC,
		}
	}
	return res
}

func subStats(a, b proto.Stats) proto.Stats {
	return statsOp(a, b, func(x, y uint64) uint64 { return x - y })
}

func subMAC(a, b mac.Counters) mac.Counters {
	return mac.Counters{
		FramesSent:     a.FramesSent - b.FramesSent,
		AppBytesSent:   a.AppBytesSent - b.AppBytesSent,
		MACBytesSent:   a.MACBytesSent - b.MACBytesSent,
		FramesReceived: a.FramesReceived - b.FramesReceived,
		FramesLost:     a.FramesLost - b.FramesLost,
		FramesFaded:    a.FramesFaded - b.FramesFaded,
		QueueDrops:     a.QueueDrops - b.QueueDrops,
		Defers:         a.Defers - b.Defers,
	}
}
