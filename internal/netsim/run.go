package netsim

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// node is one simulated process: mobility + MAC port + protocol.
type node struct {
	id    event.NodeID
	model mobility.Model
	port  *mac.Port
	proto proto.Disseminator
	// subscribed reports subscription to the scenario's EventTopic.
	subscribed bool
	// down is true while crashed; received frames are discarded.
	down bool
	// prevStats accumulates counters of crashed incarnations.
	prevStats proto.Stats
}

// totalStats merges the live protocol's counters with those of crashed
// incarnations.
func (n *node) totalStats() proto.Stats {
	s := n.proto.Stats()
	return addStats(n.prevStats, s)
}

// statsOp combines two Stats field-wise. Reflection keeps the
// crash-merge and warm-up-window accounting in lock-step with
// proto.Stats: a counter added for a new protocol is picked up here
// automatically instead of silently reading zero in scenario tables.
func statsOp(a, b proto.Stats, op func(x, y uint64) uint64) proto.Stats {
	var out proto.Stats
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	vo := reflect.ValueOf(&out).Elem()
	for i := 0; i < va.NumField(); i++ {
		vo.Field(i).SetUint(op(va.Field(i).Uint(), vb.Field(i).Uint()))
	}
	return out
}

func addStats(a, b proto.Stats) proto.Stats {
	return statsOp(a, b, func(x, y uint64) uint64 { return x + y })
}

// locator adapts the mobility models to the MAC medium.
type locator struct{ nodes []*node }

func (l locator) Position(id event.NodeID, at sim.Time) geo.Point {
	return l.nodes[id].model.Position(at)
}

// portTransport charges the scenario size model for every broadcast and
// feeds the optional trace.
type portTransport struct {
	port  *mac.Port
	sizes event.SizeModel
	r     *runner
}

func (t portTransport) Broadcast(m event.Message) {
	size := m.WireSize(t.sizes)
	t.r.traceAdd(trace.Record{
		At:    t.r.eng.Now(),
		Node:  t.port.ID(),
		Op:    trace.OpSend,
		Msg:   m.Kind(),
		Bytes: size,
	})
	t.port.Broadcast(m, size)
}

// runner holds the mutable state of one simulation.
type runner struct {
	sc    Scenario
	eng   *sim.Engine
	nodes []*node
	// graph is the street network shared by every city-section node of
	// this run (built once instead of per node).
	graph *mobility.Graph
	// subIdx caches the EventTopic subscribers' node indices; the
	// assignment is fixed at build time, so anonymous publications
	// (Publisher -1) draw from this instead of rescanning all nodes.
	subIdx []int

	// deliveries holds per-event first-delivery times, batched per node:
	// one flat slice indexed by node id (sentinel -1 = not delivered)
	// carved out of slabs of 16 events each, so the per-delivery hot
	// path is one bounds-checked write instead of two map operations and
	// the bookkeeping stays allocation-flat between slab refills even
	// under churny 10k-node workloads.
	deliveries map[event.ID][]sim.Time
	slab       []sim.Time
	records    []DeliveryRecord
	published  []PublishedEvent

	snapProto []proto.Stats
	snapMAC   []mac.Counters

	// err records a mid-run failure (e.g. a protocol rebuild error on
	// recovery); it halts the engine and fails the Run.
	err error
}

// Run executes the scenario and returns its measurements.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		sc:         sc,
		eng:        sim.New(sc.Seed),
		deliveries: make(map[event.ID][]sim.Time),
	}
	if err := r.build(); err != nil {
		return nil, err
	}
	if err := r.schedule(); err != nil {
		return nil, err
	}
	end := sim.At(sc.Warmup + sc.Measure)
	r.eng.RunUntil(end)
	if r.err != nil {
		return nil, r.err
	}
	return r.collect(), nil
}

// fail aborts the run: deterministic misconfiguration discovered
// mid-simulation must surface as a Run error, not vanish.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.eng.Halt()
}

// build creates mobility models, the medium and the protocol instances.
func (r *runner) build() error {
	sc := r.sc
	r.nodes = make([]*node, sc.Nodes)
	for i := range r.nodes {
		r.nodes[i] = &node{id: event.NodeID(i)}
	}
	if builder := defaultGraph[sc.Mobility.Kind]; builder != nil {
		r.graph = sc.Mobility.Graph
		if r.graph == nil {
			r.graph = builder()
		}
	}
	// Mobility first: models draw from the engine RNG in node order.
	for i, n := range r.nodes {
		if sc.CustomModels != nil && sc.CustomModels[i] != nil {
			n.model = sc.CustomModels[i]
			continue
		}
		model, err := r.buildMobility()
		if err != nil {
			return err
		}
		n.model = model
	}
	medium := mac.New(r.eng, r.macConfig(), locator{nodes: r.nodes})
	for _, n := range r.nodes {
		n := n
		n.port = medium.Attach(n.id, func(f mac.Frame) {
			if n.down {
				return
			}
			r.traceAdd(trace.Record{
				At:   r.eng.Now(),
				Node: n.id,
				Op:   trace.OpReceive,
				Msg:  f.Msg.Kind(),
			})
			_ = n.proto.HandleMessage(f.Msg)
		})
	}
	// Subscription assignment: a seeded shuffle picks the subscribers.
	shuffleRng := r.eng.NewRand()
	order := shuffleRng.Perm(sc.Nodes)
	numSubs := int(float64(sc.Nodes)*sc.SubscriberFraction + 0.5)
	for i, idx := range order {
		r.nodes[idx].subscribed = i < numSubs
	}
	// The assignment never changes after build (crashes keep their
	// flag; Resubscriptions alter protocol state, not this roster), so
	// cache the subscriber indices for anonymous publications instead
	// of rescanning all nodes per publish.
	for i, n := range r.nodes {
		if n.subscribed {
			r.subIdx = append(r.subIdx, i)
		}
	}
	for _, n := range r.nodes {
		proto, err := r.buildProtocol(n)
		if err != nil {
			return err
		}
		n.proto = proto
		tp := sc.DecoyTopic
		if n.subscribed {
			tp = sc.EventTopic
		}
		if err := n.proto.Subscribe(tp); err != nil {
			return err
		}
	}
	return nil
}

// defaultGraph maps each graph-constrained mobility kind to its default
// street-network builder (used when MobilitySpec.Graph is nil). The
// graph is built once per run and shared by every node.
var defaultGraph = map[MobilityKind]func() *mobility.Graph{
	CitySection:   mobility.NewCampusGraph,
	ManhattanGrid: mobility.NewManhattanGraph,
	HighwayConvoy: mobility.NewHighwayGraph,
}

func (r *runner) buildMobility() (mobility.Model, error) {
	m := r.sc.Mobility
	rng := r.eng.NewRand()
	switch m.Kind {
	case StaticNodes:
		p := geo.Pt(
			m.Area.Min.X+rng.Float64()*m.Area.Width(),
			m.Area.Min.Y+rng.Float64()*m.Area.Height(),
		)
		return mobility.Static{P: p}, nil
	case RandomWaypoint:
		cfg := mobility.WaypointConfig{
			Area:     m.Area,
			MinSpeed: m.MinSpeed,
			MaxSpeed: m.MaxSpeed,
			Pause:    m.Pause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewWaypoint(cfg, rng), nil
	case CitySection:
		cfg := mobility.CityConfig{
			Graph:     r.graph,
			StopProb:  m.StopProb,
			StopMin:   m.StopMin,
			StopMax:   m.StopMax,
			DestPause: m.DestPause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewCity(cfg, rng), nil
	case ManhattanGrid:
		cfg := mobility.ManhattanConfig{
			Graph:       r.graph,
			LightCycle:  m.LightCycle,
			RedFraction: m.RedFraction,
			DestPause:   m.DestPause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewManhattan(cfg, rng), nil
	case HighwayConvoy:
		// Convoy defaults were filled by Scenario.withDefaults.
		cfg := mobility.HighwayConfig{
			Graph:     r.graph,
			Platoons:  m.Platoons,
			CruiseMin: m.CruiseMin,
			CruiseMax: m.CruiseMax,
			RampPause: m.RampPause,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewHighway(cfg, rng), nil
	default:
		return nil, fmt.Errorf("netsim: unknown mobility kind %d", m.Kind)
	}
}

// macConfig returns the scenario's MAC config with a node-speed bound
// derived from the mobility model, enabling the medium's cached spatial
// index (see mac.Config.SpeedBounded). Custom models stay conservative:
// their speeds are unknown, so the medium re-buckets per instant.
// A caller-supplied bound is left untouched.
func (r *runner) macConfig() mac.Config {
	cfg := r.sc.MAC
	if cfg.SpeedBounded || r.sc.CustomModels != nil {
		return cfg
	}
	switch r.sc.Mobility.Kind {
	case StaticNodes:
		cfg.SpeedBounded = true // MaxSpeed 0: nodes never move
	case RandomWaypoint:
		cfg.SpeedBounded, cfg.MaxSpeed = true, r.sc.Mobility.MaxSpeed
	case CitySection, ManhattanGrid, HighwayConvoy:
		// Graph-constrained vehicles never drive above a road's limit.
		cfg.SpeedBounded, cfg.MaxSpeed = true, r.graph.MaxSpeedLimit()
	}
	return cfg
}

// buildProtocol constructs one node's protocol instance through the
// proto registry: the scenario's ProtocolSpec names the factory, and
// the runner supplies the per-node environment (scheduler, transport,
// private RNG stream, delivery hook, speed source).
func (r *runner) buildProtocol(n *node) (proto.Disseminator, error) {
	sc := r.sc
	model, eng := n.model, r.eng
	env := proto.Env{
		ID:        n.id,
		Sched:     proto.EngineScheduler{Eng: r.eng},
		Transport: portTransport{port: n.port, sizes: sc.Sizes, r: r},
		Rand:      rand.New(rand.NewSource(sc.Seed*7919 + int64(n.id)*104729 + 13)),
		OnDeliver: r.deliverHook(n.id),
		Speed:     func() float64 { return model.Speed(eng.Now()) },
	}
	d, err := proto.Build(sc.Protocol.Name, sc.Protocol.Params, env)
	if err != nil {
		return nil, fmt.Errorf("netsim: node %v: %w", n.id, err)
	}
	return d, nil
}

// deliverySlab carves a fresh per-event delivery vector (one sim.Time
// per node, -1 = not delivered) out of the shared slab.
func (r *runner) deliverySlab() []sim.Time {
	n := r.sc.Nodes
	if len(r.slab) < n {
		r.slab = make([]sim.Time, 16*n)
		for i := range r.slab {
			r.slab[i] = -1
		}
	}
	s := r.slab[:n:n]
	r.slab = r.slab[n:]
	return s
}

// deliverHook records first-delivery times per (event, node).
func (r *runner) deliverHook(id event.NodeID) func(event.Event) {
	return func(ev event.Event) {
		times := r.deliveries[ev.ID]
		if times == nil {
			times = r.deliverySlab()
			r.deliveries[ev.ID] = times
		}
		if times[id] < 0 {
			times[id] = r.eng.Now()
			r.records = append(r.records, DeliveryRecord{
				Event: ev.ID,
				Node:  id,
				At:    r.eng.Now(),
			})
			r.traceAdd(trace.Record{
				At:    r.eng.Now(),
				Node:  id,
				Op:    trace.OpDeliver,
				Event: ev.ID,
			})
		}
	}
}

// traceAdd records into the optional scenario trace.
func (r *runner) traceAdd(rec trace.Record) {
	if r.sc.Trace != nil {
		r.sc.Trace.Add(rec)
	}
}

// schedule arms the warm-up snapshot and the workload pump that drives
// publications, crashes and (re)subscriptions.
func (r *runner) schedule() error {
	sc := r.sc
	warm := sim.At(sc.Warmup)
	// Snapshot first: scheduled before any same-instant publication, so
	// FIFO tie-breaking guarantees window counters include them.
	r.eng.At(warm, r.snapshot)
	pubRng := r.eng.NewRand()
	gen, err := r.buildWorkload()
	if err != nil {
		return err
	}
	r.pump(gen, pubRng)
	return nil
}

// explicitOps converts the scenario's hand-written lists into one
// sorted op schedule for the "explicit" generator. The pre-sort slice
// order encodes the tie-break for same-instant ops (publications in
// list order, then each crash with its recovery, then
// resubscriptions), matching the engine's historical FIFO order when
// the lists were scheduled up front.
func (r *runner) explicitOps() []workload.Op {
	sc := r.sc
	ops := make([]workload.Op, 0, len(sc.Publications)+2*len(sc.Crashes)+len(sc.Resubscriptions))
	for _, p := range sc.Publications {
		ops = append(ops, workload.Op{
			At:       sc.Warmup + p.Offset,
			Kind:     workload.Publish,
			Node:     p.Publisher,
			Topic:    p.Topic,
			Validity: p.Validity,
		})
	}
	for _, c := range sc.Crashes {
		ops = append(ops, workload.Op{At: c.At, Kind: workload.Crash, Node: c.Node})
		if c.RecoverAt != 0 {
			ops = append(ops, workload.Op{At: c.RecoverAt, Kind: workload.Recover, Node: c.Node})
		}
	}
	for _, rs := range sc.Resubscriptions {
		kind := workload.Subscribe
		if rs.Unsubscribe {
			kind = workload.Unsubscribe
		}
		ops = append(ops, workload.Op{At: rs.At, Kind: kind, Node: rs.Node, Topic: rs.Topic})
	}
	workload.SortOps(ops)
	return ops
}

// buildWorkload assembles the run's op stream: the explicit lists
// always run (as the "explicit" generator); a non-zero WorkloadSpec is
// built through the workload registry with its own RNG stream and
// merged in (ties to the explicit schedule).
func (r *runner) buildWorkload() (workload.Generator, error) {
	sc := r.sc
	gen := workload.NewExplicit(r.explicitOps())
	if sc.Workload.IsZero() {
		return gen, nil
	}
	env := workload.Env{
		Nodes:      sc.Nodes,
		Rand:       r.eng.NewRand(),
		Warmup:     sc.Warmup,
		Measure:    sc.Measure,
		EventTopic: sc.EventTopic,
	}
	wgen, err := workload.Build(sc.Workload.Name, sc.Workload.Params, env)
	if err != nil {
		return nil, fmt.Errorf("netsim: workload %q: %w", sc.Workload.Name, err)
	}
	return workload.Merge(gen, wgen), nil
}

// pump streams the workload into the engine with exactly one armed
// callback: apply the current op, pull the next, reschedule. A run with
// a million generated publications therefore never materializes an op
// slice — generation stays O(1) memory off the simulation's hot path.
func (r *runner) pump(gen workload.Generator, pubRng *rand.Rand) {
	op, ok := gen.Next()
	if !ok {
		return
	}
	var fire func()
	fire = func() {
		cur := op
		r.apply(cur, pubRng)
		next, ok := gen.Next()
		if !ok {
			return
		}
		if next.At < cur.At {
			r.fail(fmt.Errorf("netsim: workload %q emitted op at %v after %v (non-monotone)",
				r.sc.Workload, next.At, cur.At))
			return
		}
		op = next
		r.eng.Schedule(sim.At(op.At), fire)
	}
	r.eng.Schedule(sim.At(op.At), fire)
}

// apply executes one workload op. Ops come from either the validated
// explicit lists or a registered generator held to the conformance
// suite; out-of-range ops are deterministic misconfiguration and fail
// the run.
func (r *runner) apply(op workload.Op, pubRng *rand.Rand) {
	minNode := 0
	if op.Kind == workload.Publish {
		minNode = -1 // -1 publishes from a random subscriber
	}
	if op.Node < minNode || op.Node >= r.sc.Nodes {
		r.fail(fmt.Errorf("netsim: workload %s op node %d out of range [%d,%d)",
			op.Kind, op.Node, minNode, r.sc.Nodes))
		return
	}
	switch op.Kind {
	case workload.Publish:
		if op.Validity <= 0 {
			r.fail(fmt.Errorf("netsim: workload publish without validity at %v", op.At))
			return
		}
		r.publish(Publication{Publisher: op.Node, Topic: op.Topic, Validity: op.Validity}, pubRng)
	case workload.Crash:
		r.crash(op.Node)
	case workload.Recover:
		r.recover(op.Node)
	case workload.Subscribe, workload.Unsubscribe:
		n := r.nodes[op.Node]
		if n.down {
			return
		}
		tp := op.Topic
		if tp.IsZero() {
			tp = r.sc.EventTopic
		}
		if op.Kind == workload.Unsubscribe {
			n.proto.Unsubscribe(tp)
		} else {
			_ = n.proto.Subscribe(tp)
		}
	default:
		r.fail(fmt.Errorf("netsim: unknown workload op kind %v", op.Kind))
	}
}

func (r *runner) snapshot() {
	r.snapProto = make([]proto.Stats, len(r.nodes))
	r.snapMAC = make([]mac.Counters, len(r.nodes))
	for i, n := range r.nodes {
		r.snapProto[i] = n.totalStats()
		r.snapMAC[i] = n.port.Counters()
	}
}

func (r *runner) publish(p Publication, rng *rand.Rand) {
	idx := p.Publisher
	if idx < 0 {
		if len(r.subIdx) == 0 {
			return // nobody to publish; recorded as zero events
		}
		idx = r.subIdx[rng.Intn(len(r.subIdx))]
	}
	n := r.nodes[idx]
	if n.down {
		return
	}
	tp := p.Topic
	if tp.IsZero() {
		tp = r.sc.EventTopic
	}
	id, err := n.proto.Publish(tp, nil, p.Validity)
	if err != nil {
		return
	}
	r.published = append(r.published, PublishedEvent{
		ID:        id,
		Publisher: n.id,
		Topic:     tp,
		At:        r.eng.Now(),
		Validity:  p.Validity,
	})
	r.traceAdd(trace.Record{
		At:    r.eng.Now(),
		Node:  n.id,
		Op:    trace.OpPublish,
		Event: id,
	})
}

func (r *runner) crash(idx int) {
	n := r.nodes[idx]
	if n.down {
		return
	}
	n.down = true
	n.prevStats = n.totalStats()
	n.proto.Stop()
}

func (r *runner) recover(idx int) {
	n := r.nodes[idx]
	if !n.down {
		return
	}
	p, err := r.buildProtocol(n)
	if err != nil {
		// Deterministic misconfiguration, not a runtime event: fail the
		// run instead of leaving the node silently down forever.
		// buildProtocol's wrap already names the node.
		r.fail(fmt.Errorf("recovering crashed node: %w", err))
		return
	}
	n.proto = p
	n.down = false
	tp := r.sc.DecoyTopic
	if n.subscribed {
		tp = r.sc.EventTopic
	}
	_ = n.proto.Subscribe(tp)
}

// collect assembles the Result after the run.
func (r *runner) collect() *Result {
	res := &Result{
		Scenario:   r.sc,
		Published:  r.published,
		Deliveries: r.records,
		Nodes:      make([]NodeResult, len(r.nodes)),
	}
	for i, n := range r.nodes {
		proto := n.totalStats()
		macC := n.port.Counters()
		if r.snapProto != nil {
			proto = subStats(proto, r.snapProto[i])
			macC = subMAC(macC, r.snapMAC[i])
		}
		res.Nodes[i] = NodeResult{
			ID:         n.id,
			Subscribed: n.subscribed,
			Proto:      proto,
			MAC:        macC,
		}
	}
	res.computeOutcomes(r.deliveries, r.nodes)
	return res
}

func subStats(a, b proto.Stats) proto.Stats {
	return statsOp(a, b, func(x, y uint64) uint64 { return x - y })
}

func subMAC(a, b mac.Counters) mac.Counters {
	return mac.Counters{
		FramesSent:     a.FramesSent - b.FramesSent,
		AppBytesSent:   a.AppBytesSent - b.AppBytesSent,
		MACBytesSent:   a.MACBytesSent - b.MACBytesSent,
		FramesReceived: a.FramesReceived - b.FramesReceived,
		FramesLost:     a.FramesLost - b.FramesLost,
		FramesFaded:    a.FramesFaded - b.FramesFaded,
		QueueDrops:     a.QueueDrops - b.QueueDrops,
		Defers:         a.Defers - b.Defers,
	}
}
