package netsim

import (
	"sort"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/sim"
)

// TestScenarioRegistryRoundTrip is the registry's core guarantee: every
// registered name constructs a runnable Scenario that validates, runs,
// and actually disseminates.
func TestScenarioRegistryRoundTrip(t *testing.T) {
	defs := Scenarios()
	if len(defs) == 0 {
		t.Fatal("no scenarios registered")
	}
	for _, d := range defs {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			if d.Description == "" || d.Runtime == "" {
				t.Fatalf("catalog metadata incomplete: %+v", d)
			}
			sc := d.Instantiate(1)
			if sc.Seed != 1 {
				t.Fatalf("Instantiate seed = %d", sc.Seed)
			}
			if sc.Name == "" {
				t.Fatal("instantiated scenario has no name")
			}
			if d.Heavy {
				// Heavy templates (the metro city sweeps) are exercised
				// at a test-suite-sized roster: the template's shape is
				// still validated and run end-to-end, just not at 10k
				// nodes per test run.
				sc.Nodes = 300
			}
			if err := sc.withDefaults().Validate(); err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Workload.IsZero() {
				if len(res.Published) != len(sc.Publications) {
					t.Fatalf("published %d of %d scheduled events",
						len(res.Published), len(sc.Publications))
				}
			} else if len(res.Published) <= len(sc.Publications) {
				// A workload-backed scenario must generate traffic
				// beyond its explicit list.
				t.Fatalf("workload %v generated no publications (%d explicit, %d total)",
					sc.Workload, len(sc.Publications), len(res.Published))
			}
			if res.Reliability() <= 0 {
				t.Fatalf("scenario %s delivered nothing", d.Name)
			}
		})
	}
}

func TestScenarioRegistryLookup(t *testing.T) {
	for _, name := range []string{"campus", "waypoint", "manhattan", "manhattan-churn", "highway"} {
		if _, ok := LookupScenario(name); !ok {
			t.Fatalf("built-in scenario %q not registered", name)
		}
	}
	if _, ok := LookupScenario("nope"); ok {
		t.Fatal("LookupScenario(nope) succeeded")
	}
	names := ScenarioNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ScenarioNames not sorted: %v", names)
	}
	if len(names) != len(Scenarios()) {
		t.Fatal("ScenarioNames and Scenarios disagree")
	}
}

func TestRegisterScenarioRejectsBadDefs(t *testing.T) {
	mustPanic := func(name string, d ScenarioDef) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: RegisterScenario did not panic", name)
			}
		}()
		RegisterScenario(d)
	}
	valid := Scenario{
		Nodes:    3,
		Mobility: MobilitySpec{Kind: StaticNodes, Area: geo.NewRect(100, 100)},
		MAC:      mac.DefaultConfig(339),
		Measure:  time.Second,
	}
	mustPanic("duplicate", ScenarioDef{Name: "campus", Description: "dup", Runtime: "-", Template: valid})
	mustPanic("unnamed", ScenarioDef{Description: "x", Template: valid})
	invalid := valid
	invalid.Nodes = 0
	mustPanic("invalid template", ScenarioDef{Name: "broken", Description: "x", Template: invalid})
	// Mobility-model fields are validated at registration too, not at
	// first Run.
	badLights := valid
	badLights.Mobility = MobilitySpec{Kind: ManhattanGrid, RedFraction: 1.5}
	mustPanic("bad red fraction", ScenarioDef{Name: "broken-lights", Description: "x", Template: badLights})
	badCruise := valid
	badCruise.Mobility = MobilitySpec{Kind: HighwayConvoy, CruiseMin: 30, CruiseMax: 20}
	mustPanic("bad cruise range", ScenarioDef{Name: "broken-cruise", Description: "x", Template: badCruise})
}

func TestParseProtocolRoundTrip(t *testing.T) {
	names := ProtocolNames()
	// The historical six plus the gossip baseline must all be wired in.
	for _, want := range []string{
		"frugal", "simple-flooding", "interests-aware-flooding",
		"neighbors-interests-flooding", "probabilistic-broadcast",
		"counter-based-broadcast", "gossip-pushpull",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("protocol %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		spec, ok := ParseProtocol(n)
		if !ok || spec.String() != n {
			t.Fatalf("ParseProtocol(%q) = %v, %v", n, spec, ok)
		}
	}
	if _, ok := ParseProtocol("nope"); ok {
		t.Fatal("ParseProtocol(nope) succeeded")
	}
	// The zero spec is the frugal protocol.
	if (ProtocolSpec{}).String() != "frugal" {
		t.Fatalf("zero spec = %q, want frugal", (ProtocolSpec{}).String())
	}
}

func TestScenarioValidateRejectsBadProtocolSpec(t *testing.T) {
	sc := denseStatic(1)
	sc.Protocol = ProtocolSpec{Name: "no-such-protocol"}
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("unknown protocol name accepted")
	}
	// Wrong params type for a registered name.
	sc.Protocol = ProtocolSpec{Name: "simple-flooding", Params: CoreTuning{}}
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("mismatched params type accepted")
	}
	// Invalid params of the right type.
	sc.Protocol = FrugalSpec(CoreTuning{HBDelay: -time.Second})
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("invalid frugal tuning accepted")
	}
}

// TestManhattanAndHighwaySpeedBounds pins the MAC staleness contract for
// the new kinds: the derived speed bound must cover every node's actual
// speed over a run (the grid's correctness precondition).
func TestManhattanAndHighwaySpeedBounds(t *testing.T) {
	for _, name := range []string{"manhattan", "highway"} {
		def, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		sc := def.Instantiate(3)
		r := &runner{
			sc:     sc.withDefaults(),
			eng:    sim.New(sc.Seed),
			groups: make(map[event.ID]*eventGroup),
		}
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		cfg := r.macConfig()
		if !cfg.SpeedBounded || cfg.MaxSpeed <= 0 {
			t.Fatalf("%s: no speed bound derived (%+v)", name, cfg)
		}
		for i, n := range r.nodes[:4] {
			for s := 0.0; s < 300; s += 1.7 {
				if v := n.model.Speed(sim.Seconds(s)); v > cfg.MaxSpeed+1e-9 {
					t.Fatalf("%s node %d at %v m/s exceeds bound %v", name, i, v, cfg.MaxSpeed)
				}
			}
		}
	}
}
