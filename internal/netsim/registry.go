package netsim

import (
	"fmt"

	"repro/internal/registry"
)

// ScenarioDef is a named, declaratively registered scenario: a complete
// Scenario template (mobility model, node count, protocol, publication
// workload, crash/churn schedule, warm-up and measurement windows) that
// Instantiate stamps with a per-run seed. Registering a definition makes
// it reachable from the experiment harness (exp's "scenarios" family),
// cmd/experiments (-scenario, -list) and cmd/frugalsim — adding a new
// workload is one RegisterScenario call plus a catalog doc entry, not a
// bespoke sweep file.
type ScenarioDef struct {
	// Name is the registry key (e.g. "manhattan").
	Name string
	// Description is a one-line summary of environment and workload.
	Description string
	// Runtime is the expected wall-clock of one frugal-vs-baselines
	// sweep at default scale (human-readable, for the catalog).
	Runtime string
	// Heavy marks scenarios too large for the default registry sweeps
	// (the exp "scenarios" family, the golden-file suite): they stay
	// reachable by name (-scenario, the "scale" family, benchmarks) but
	// are skipped wherever every registered scenario runs implicitly.
	Heavy bool
	// Template is the full scenario; its Seed field is ignored.
	Template Scenario
}

// Instantiate returns a runnable copy of the template for the given
// seed. The scenario's Name defaults to the registry name.
func (d ScenarioDef) Instantiate(seed int64) Scenario {
	sc := d.Template
	sc.Seed = seed
	if sc.Name == "" {
		sc.Name = d.Name
	}
	return sc
}

var scenarios = registry.New[ScenarioDef]("netsim: scenario")

// RegisterScenario adds a definition to the registry. It panics on a
// duplicate name or an invalid template (registration happens at init
// time; a broken definition should fail loudly, not at first use).
func RegisterScenario(d ScenarioDef) {
	if d.Name == "" || d.Description == "" {
		panic(fmt.Sprintf("netsim: scenario %q registered without name or description", d.Name))
	}
	if err := d.Instantiate(1).withDefaults().Validate(); err != nil {
		panic(fmt.Sprintf("netsim: scenario %q template invalid: %v", d.Name, err))
	}
	scenarios.Register(d.Name, d)
}

// Scenarios returns every registered definition, sorted by name.
func Scenarios() []ScenarioDef { return scenarios.All() }

// ScenarioNames returns the sorted registered names.
func ScenarioNames() []string { return scenarios.Names() }

// LookupScenario finds a definition by name.
func LookupScenario(name string) (ScenarioDef, bool) { return scenarios.Lookup(name) }
