package netsim

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"
	"time"

	"repro/internal/mac"
	"repro/internal/proto"
	"repro/internal/sim"
)

// This file is the deterministic run time-series (Scenario.Sample):
// the sampler rides the simulation engine as a chain of self-scheduling
// callbacks, one per sampling period across the measurement window, and
// each callback only READS state the run already maintains — the
// per-event cells, the nodes' protocol counters, the MAC ports, the
// medium's live-transmission list, the timer wheel's pending count and
// the tile stats. It draws no randomness, sends nothing, and mutates no
// protocol, MAC or mobility state.
//
// Why that leaves results byte-identical (the contract the
// sample-invariance tests pin): the engine's (at, seq) ordering is
// FIFO within an instant and the sampler's items only consume seq
// numbers — inserting them shifts other items' absolute seq values but
// never their relative order, so every protocol callback, RNG draw and
// MAC event executes in exactly the sequence an unsampled run produces.
// In tiled runs the sampler schedules on the root shard (shard 0 of the
// sim.Group), whose items merge into the same global order. The only
// observable difference between a sampled and an unsampled run is
// Result.Series itself, which Fingerprint deliberately excludes.
type Series struct {
	// Period is the scenario's sampling period.
	Period time.Duration
	// Points are the samples, oldest first: one per elapsed period from
	// the end of warm-up, plus a final partial window when the
	// measurement window is not a multiple of Period.
	Points []SeriesPoint
}

// SeriesPoint is one sample of the running measurement window.
// Cumulative fields cover warm-up end through At; delta fields cover
// the window since the previous point.
type SeriesPoint struct {
	// At is the absolute sample instant.
	At sim.Time
	// Published is the cumulative number of registered publications.
	Published int
	// DeliveryRatio is the cumulative mean per-event reliability so far
	// (the running value of Result.Reliability, counting only in-time
	// deliveries that have already happened).
	DeliveryRatio float64
	// InFlight counts transmissions on air at the sample instant.
	InFlight int
	// Pending counts scheduled timer-wheel items across all shards.
	Pending int
	// Proto is the per-window delta of the protocol counters, summed
	// over all nodes (crashed incarnations included).
	Proto proto.Stats
	// MAC is the per-window delta of the MAC counters, summed over all
	// ports.
	MAC mac.Counters
	// FannedFrames and SerialFrames are the per-window deltas of the
	// tile runner's delivery-path split; zero in untiled runs.
	FannedFrames uint64
	SerialFrames uint64
}

// sampler drives the series. It is armed by runner.schedule (after the
// warm-up snapshot, before the workload pump) and chains itself across
// the measurement window.
type sampler struct {
	r      *runner
	period sim.Time
	end    sim.Time
	series *Series

	prevProto              proto.Stats
	prevMAC                mac.Counters
	prevFanned, prevSerial uint64
}

// startSampler arms the series baseline at the warm-up boundary. Like
// runner.snapshot it is scheduled before any same-instant publication,
// so the first window includes ops firing exactly at warm-up end.
func (r *runner) startSampler(warm sim.Time) {
	s := &sampler{
		r:      r,
		period: sim.Time(r.sc.Sample),
		end:    warm.Add(r.sc.Measure),
		series: &Series{Period: r.sc.Sample},
	}
	r.sampler = s
	r.eng.At(warm, s.baseline)
}

// baseline captures the window-start counters and arms the chain.
func (s *sampler) baseline() {
	s.prevProto, s.prevMAC = s.totals()
	s.prevFanned, s.prevSerial = s.tileFrames()
	s.arm(s.r.eng.Now())
}

// arm schedules the next sample, clamping the final window to the end
// of measurement. Scheduling happens after the current point is read,
// so Pending never counts the sampler's own next item.
func (s *sampler) arm(now sim.Time) {
	if now >= s.end {
		return
	}
	next := now + s.period
	if next > s.end {
		next = s.end
	}
	s.r.eng.At(next, s.sample)
}

// sample appends one point and re-arms.
func (s *sampler) sample() {
	r := s.r
	now := r.eng.Now()
	pr, mc := s.totals()
	fan, ser := s.tileFrames()
	s.series.Points = append(s.series.Points, SeriesPoint{
		At:            now,
		Published:     len(r.cells),
		DeliveryRatio: r.cumulativeRatio(),
		InFlight:      r.medium.InFlight(now),
		Pending:       r.pendingTimers(),
		Proto:         subStats(pr, s.prevProto),
		MAC:           subMAC(mc, s.prevMAC),
		FannedFrames:  fan - s.prevFanned,
		SerialFrames:  ser - s.prevSerial,
	})
	s.prevProto, s.prevMAC = pr, mc
	s.prevFanned, s.prevSerial = fan, ser
	s.arm(now)
}

// totals sums the run's protocol and MAC counters over all nodes.
func (s *sampler) totals() (proto.Stats, mac.Counters) {
	var pr proto.Stats
	var mc mac.Counters
	for _, n := range s.r.nodes {
		pr = addStats(pr, n.totalStats())
		c := n.port.Counters()
		mc.FramesSent += c.FramesSent
		mc.AppBytesSent += c.AppBytesSent
		mc.MACBytesSent += c.MACBytesSent
		mc.FramesReceived += c.FramesReceived
		mc.FramesLost += c.FramesLost
		mc.FramesFaded += c.FramesFaded
		mc.QueueDrops += c.QueueDrops
		mc.Defers += c.Defers
	}
	return pr, mc
}

// tileFrames reads the tile runner's delivery-path counters (zero when
// the run is untiled).
func (s *sampler) tileFrames() (fanned, serial uint64) {
	if tr := s.r.tiled; tr != nil {
		return tr.stats.FannedFrames, tr.stats.SerialFrames
	}
	return 0, 0
}

// cumulativeRatio is the running mean per-event reliability: the value
// Result.Reliability converges to, counting only in-time deliveries
// recorded so far.
func (r *runner) cumulativeRatio() float64 {
	if len(r.cells) == 0 {
		return 0
	}
	sum := 0.0
	for i := range r.cells {
		c := &r.cells[i]
		if c.eligible > 0 {
			sum += float64(c.inTime) / float64(c.eligible)
		}
	}
	return sum / float64(len(r.cells))
}

// pendingTimers counts scheduled engine items — across every shard in a
// tiled run, so the value is comparable at any tile count.
func (r *runner) pendingTimers() int {
	if r.tiled != nil {
		return r.tiled.group.Pending()
	}
	return r.eng.Pending()
}

// seriesColumns enumerates the CSV/JSON schema: the fixed lead columns
// followed by the proto and MAC counter fields by reflection, so a
// counter added to either struct appears in dumped curves without
// further wiring (the same argument as runner.statsOp).
func seriesColumns() []string {
	cols := []string{"t_s", "published", "delivery_ratio", "in_flight", "pending"}
	for _, s := range []any{proto.Stats{}, mac.Counters{}} {
		rt := reflect.TypeOf(s)
		prefix := "proto_"
		if rt == reflect.TypeOf(mac.Counters{}) {
			prefix = "mac_"
		}
		for i := 0; i < rt.NumField(); i++ {
			cols = append(cols, prefix+snakeCase(rt.Field(i).Name))
		}
	}
	return append(cols, "fanned_frames", "serial_frames")
}

// row renders one point in seriesColumns order.
func (p SeriesPoint) row() []string {
	out := []string{
		fmt.Sprintf("%.3f", p.At.Seconds()),
		fmt.Sprintf("%d", p.Published),
		fmt.Sprintf("%.6f", p.DeliveryRatio),
		fmt.Sprintf("%d", p.InFlight),
		fmt.Sprintf("%d", p.Pending),
	}
	for _, s := range []any{p.Proto, p.MAC} {
		v := reflect.ValueOf(s)
		for i := 0; i < v.NumField(); i++ {
			out = append(out, fmt.Sprintf("%d", v.Field(i).Uint()))
		}
	}
	return append(out,
		fmt.Sprintf("%d", p.FannedFrames),
		fmt.Sprintf("%d", p.SerialFrames))
}

// snakeCase converts a Go field name (FramesSent) to its column name
// (frames_sent). Consecutive capitals stay one word (GCed -> gced).
func snakeCase(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 && !(s[i-1] >= 'A' && s[i-1] <= 'Z') {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WriteCSV renders the series as one header line plus one row per
// point.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(seriesColumns(), ",")); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintln(w, strings.Join(p.row(), ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the series as one JSON document with the sampling
// period in seconds and the points as column-keyed objects.
func (s *Series) WriteJSON(w io.Writer) error {
	cols := seriesColumns()
	doc := struct {
		PeriodSeconds float64          `json:"period_seconds"`
		Points        []map[string]any `json:"points"`
	}{PeriodSeconds: s.Period.Seconds()}
	for _, p := range s.Points {
		row := p.row()
		m := make(map[string]any, len(cols))
		for i, c := range cols {
			m[c] = json.RawMessage(row[i])
		}
		doc.Points = append(doc.Points, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
