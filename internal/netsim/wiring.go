package netsim

// The runner resolves protocols by name through the proto registry;
// this blank import wires the built-in protocol packages in. The only
// other protocol-package dependency in netsim is netsim.go's type
// re-export of the frugal tuning (CoreTuning = core.Tuning, for terse
// declarative templates) — dispatch never names a concrete package,
// and a new protocol needs its own package plus a blank-import line in
// internal/proto/all; nothing in netsim changes.
import _ "repro/internal/proto/all"
