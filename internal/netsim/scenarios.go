package netsim

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/workload"
)

// Built-in scenario definitions. Each is a complete declarative
// workload: environment, node count, radio range, protocol tuning,
// publication schedule, optional churn, and measurement windows. They
// are enumerated by `cmd/experiments -list` and swept (frugal vs the
// flooding/storm baselines) by the exp package's "scenarios" family;
// keep the catalog sections of doc.go and cmd/experiments in sync when
// adding one (a cmd/experiments test cross-checks the listing).
func init() {
	RegisterScenario(ScenarioDef{
		Name:        "campus",
		Description: "paper's city section: 15 nodes on the synthetic campus grid, one 150 s event",
		Runtime:     "<1 s",
		Template: Scenario{
			Nodes: 15,
			Mobility: MobilitySpec{
				Kind:      CitySection,
				StopProb:  0.3,
				StopMin:   2 * time.Second,
				StopMax:   10 * time.Second,
				DestPause: 5 * time.Second,
			},
			MAC:                mac.DefaultConfig(44),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 1.0,
			Publications: []Publication{
				{Publisher: -1, Validity: 150 * time.Second},
			},
			Warmup:  30 * time.Second,
			Measure: 155 * time.Second,
		},
	})
	RegisterScenario(ScenarioDef{
		Name:        "waypoint",
		Description: "paper's random waypoint at reduced scale: 40 nodes, 10 m/s, 80% subscribers, one 120 s event",
		Runtime:     "<1 s",
		Template: Scenario{
			Nodes: 40,
			Mobility: MobilitySpec{
				Kind:     RandomWaypoint,
				Area:     geo.NewRect(2582, 2582), // the paper's 6 nodes/km^2
				MinSpeed: 10,
				MaxSpeed: 10,
				Pause:    time.Second,
			},
			MAC:                mac.DefaultConfig(339),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.8,
			Publications: []Publication{
				{Publisher: -1, Validity: 120 * time.Second},
			},
			Warmup:  30 * time.Second,
			Measure: 125 * time.Second,
		},
	})
	RegisterScenario(ScenarioDef{
		Name:        "manhattan",
		Description: "urban VANET: 40 vehicles on a 990x770 m Manhattan grid with traffic lights, a 3-event burst",
		Runtime:     "<1 s",
		Template: Scenario{
			Nodes: 40,
			Mobility: MobilitySpec{
				Kind:        ManhattanGrid,
				LightCycle:  30 * time.Second,
				RedFraction: 0.4,
				DestPause:   10 * time.Second,
			},
			MAC:                mac.DefaultConfig(100),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.8,
			Publications: []Publication{
				{Offset: 0, Publisher: -1, Validity: 120 * time.Second},
				{Offset: 2 * time.Second, Publisher: -1, Validity: 120 * time.Second},
				{Offset: 4 * time.Second, Publisher: -1, Validity: 120 * time.Second},
			},
			Warmup:  30 * time.Second,
			Measure: 130 * time.Second,
		},
	})
	RegisterScenario(ScenarioDef{
		Name:        "manhattan-churn",
		Description: "manhattan with churn: two vehicles crash mid-window, one recovers with empty state",
		Runtime:     "<1 s",
		Template: Scenario{
			Nodes: 40,
			Mobility: MobilitySpec{
				Kind:        ManhattanGrid,
				LightCycle:  30 * time.Second,
				RedFraction: 0.4,
				DestPause:   10 * time.Second,
			},
			MAC:                mac.DefaultConfig(100),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.8,
			Publications: []Publication{
				{Offset: 0, Publisher: -1, Validity: 120 * time.Second},
				{Offset: 3 * time.Second, Publisher: -1, Validity: 120 * time.Second},
			},
			Crashes: []Crash{
				{Node: 3, At: 50 * time.Second, RecoverAt: 90 * time.Second},
				{Node: 7, At: 70 * time.Second},
			},
			Warmup:  30 * time.Second,
			Measure: 130 * time.Second,
		},
	})
	RegisterScenario(ScenarioDef{
		Name:        "highway",
		Description: "highway convoy: 32 vehicles in 4 platoons on a 3.5 km bidirectional corridor, two 90 s events",
		Runtime:     "<1 s",
		Template: Scenario{
			Nodes: 32,
			Mobility: MobilitySpec{
				Kind:      HighwayConvoy,
				Platoons:  4,
				CruiseMin: 24,
				CruiseMax: 32,
				RampPause: 5 * time.Second,
			},
			MAC:                mac.DefaultConfig(250),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.9,
			Publications: []Publication{
				{Offset: 0, Publisher: -1, Validity: 90 * time.Second},
				{Offset: 3 * time.Second, Publisher: -1, Validity: 90 * time.Second},
			},
			Warmup:  20 * time.Second,
			Measure: 95 * time.Second,
		},
	})
	RegisterScenario(ScenarioDef{
		Name:        "stadium",
		Description: "flash crowd on the campus grid: 40 pedestrians, a burst of generated events mid-window",
		Runtime:     "~2 s",
		Template: Scenario{
			Nodes: 40,
			Mobility: MobilitySpec{
				Kind:      CitySection,
				StopProb:  0.3,
				StopMin:   2 * time.Second,
				StopMax:   10 * time.Second,
				DestPause: 5 * time.Second,
			},
			MAC:                mac.DefaultConfig(44),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.9,
			// No explicit publication list: the flash-crowd generator
			// synthesizes the traffic — a quiet background rate with a
			// 20 s burst a third into the window, spread over four
			// subtopics of the event topic.
			Workload: WorkloadSpec{
				Name: "flash-crowd",
				Params: workload.FlashCrowdParams{
					BaseRate:   0.05,
					PeakRate:   1.0,
					BurstStart: 40 * time.Second,
					BurstLen:   20 * time.Second,
					Validity:   60 * time.Second,
					Topics:     workload.TopicModel{Spread: 4},
				},
			},
			Warmup:  30 * time.Second,
			Measure: 120 * time.Second,
		},
	})
	RegisterScenario(ScenarioDef{
		Name:        "rush-hour",
		Description: "diurnal Zipf traffic on the Manhattan grid: 40 vehicles, a commute ramp over skewed topics",
		Runtime:     "~2 s",
		Template: Scenario{
			Nodes: 40,
			Mobility: MobilitySpec{
				Kind:        ManhattanGrid,
				LightCycle:  30 * time.Second,
				RedFraction: 0.4,
				DestPause:   10 * time.Second,
			},
			MAC:                mac.DefaultConfig(100),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.8,
			// Generated traffic only: one cosine quiet-rush-quiet arc
			// over the window, topics Zipf-skewed across six subtopics
			// (a popular head and a long tail).
			Workload: WorkloadSpec{
				Name: "diurnal",
				Params: workload.DiurnalParams{
					MinRate:  0.02,
					MaxRate:  0.4,
					Validity: 90 * time.Second,
					Topics:   workload.TopicModel{Spread: 6, ZipfS: 1.5},
				},
			},
			Warmup:  30 * time.Second,
			Measure: 130 * time.Second,
		},
	})
	// The metro family: city-sized sweeps on Manhattan-style metro
	// grids sized to the population (constant ~440 vehicles/km^2 —
	// bigger city, not denser traffic: per-second reception work
	// scales with N x density, so a fixed-area 10k city would cost
	// quadratically, see MetroGraphDims), traffic generated by a
	// diurnal commute arc over Zipf-skewed topics with waves of node
	// churn mixed in — the VANET-scale regime of the related work, far
	// beyond the paper's few hundred nodes. Both are Heavy: the
	// registry-wide sweeps and the golden suite skip them; reach them
	// via -scenario, the exp "scale" family or BenchmarkMetroSweep.
	metroTemplate := func(nodes int) Scenario {
		cols, rows := MetroGraphDims(nodes)
		return Scenario{
			Nodes: nodes,
			Mobility: MobilitySpec{
				Kind:        ManhattanGrid,
				Graph:       mobility.NewManhattanStyleGraph(cols, rows),
				LightCycle:  30 * time.Second,
				RedFraction: 0.4,
				DestPause:   10 * time.Second,
			},
			MAC:                mac.DefaultConfig(100),
			Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
			SubscriberFraction: 0.8,
			Workload: WorkloadSpec{
				Name: "mix",
				Params: workload.MixParams{Parts: []workload.Spec{
					{Name: "diurnal", Params: workload.DiurnalParams{
						MinRate:  0.02,
						MaxRate:  0.2,
						Validity: 45 * time.Second,
						Topics:   workload.TopicModel{Spread: 6, ZipfS: 1.5},
					}},
					{Name: "churn-nodes", Params: workload.NodeChurnParams{
						Waves:    2,
						Fraction: 0.02,
						Downtime: 15 * time.Second,
					}},
				}},
			},
			Warmup:  10 * time.Second,
			Measure: 60 * time.Second,
		}
	}
	// metro-slice is the metro family scaled to a single district:
	// same Manhattan-style geometry, diurnal Zipf traffic, churn waves
	// and streaming-result aggregation, but small enough for tier-1
	// suites. It is the fixture the tile-parallel runner is pinned on
	// (exp's TestMetroSliceFingerprint golden, the tiled race test and
	// BenchmarkTiledMetroSweep); it stays Heavy so the registry-wide
	// sweeps don't pay for a second mid-size city.
	RegisterScenario(ScenarioDef{
		Name:        "metro-slice",
		Description: "metro district: 600 vehicles on a metro-style grid, diurnal Zipf traffic + churn waves",
		Runtime:     "seconds",
		Heavy:       true,
		Template:    metroTemplate(600),
	})
	RegisterScenario(ScenarioDef{
		Name:        "metro-5k",
		Description: "city-scale VANET: 5k vehicles on an 11.4 km^2 metro grid, diurnal Zipf traffic + churn waves",
		Runtime:     "minutes",
		Heavy:       true,
		Template:    metroTemplate(5000),
	})
	RegisterScenario(ScenarioDef{
		Name:        "metro-10k",
		Description: "city-scale VANET: 10k vehicles on a 22.5 km^2 metro grid, diurnal Zipf traffic + churn waves",
		Runtime:     "tens of minutes",
		Heavy:       true,
		Template:    metroTemplate(10000),
	})
	RegisterScenario(ScenarioDef{
		Name:        "metro-50k",
		Description: "megacity VANET: 50k vehicles on a ~115 km^2 metro grid, diurnal Zipf traffic + churn waves",
		Runtime:     "hours",
		Heavy:       true,
		Template:    metroTemplate(50000),
	})
}

// MetroGraphDims returns the Manhattan-style street-grid dimensions
// (intersection columns x rows on 110 m blocks, ~36:28 aspect) that
// hold the metro family's vehicle density near 440/km^2 for the given
// population. The scale experiment family uses it to grow the city
// with the roster instead of packing a fixed area denser — the latter
// makes per-simulated-second cost quadratic in the population (every
// doubling doubles both the frame rate and the receivers per frame).
func MetroGraphDims(nodes int) (cols, rows int) {
	// 440/km^2 over (cols-1)x(rows-1) blocks of 0.0121 km^2 at a
	// 36:28 aspect ratio: rows ~ sqrt(nodes/6.82).
	rows = int(math.Round(math.Sqrt(float64(nodes)/6.82))) + 1
	if rows < 4 {
		rows = 4
	}
	cols = (rows*36 + 14) / 28
	return cols, rows
}
