package netsim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestManhattanChurnDeliveryInvariants pins the crash/recovery paths
// under the registry scenario: first-time deliveries are unique per
// (event, node), a node records no deliveries while it is down, and a
// crashed-forever node stays silent after its failure instant.
func TestManhattanChurnDeliveryInvariants(t *testing.T) {
	def, ok := LookupScenario("manhattan-churn")
	if !ok {
		t.Fatal("manhattan-churn not registered")
	}
	for seed := int64(1); seed <= 3; seed++ {
		sc := def.Instantiate(seed)
		sc.DeliveryLog = true // the invariants below read res.Deliveries
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			ev   event.ID
			node event.NodeID
		}
		seen := make(map[key]bool)
		for _, d := range res.Deliveries {
			k := key{d.Event, d.Node}
			if seen[k] {
				t.Fatalf("seed %d: event %v delivered twice to node %v", seed, d.Event, d.Node)
			}
			seen[k] = true
		}
		// The template's churn schedule: node 3 down [50 s, 90 s), node
		// 7 down from 70 s forever.
		for _, d := range res.Deliveries {
			if d.Node == 3 && d.At >= sim.Seconds(50) && d.At < sim.Seconds(90) {
				t.Fatalf("seed %d: node 3 delivered at %v while crashed", seed, d.At)
			}
			if d.Node == 7 && d.At >= sim.Seconds(70) {
				t.Fatalf("seed %d: node 7 delivered at %v after its permanent crash", seed, d.At)
			}
		}
		// Determinism: the same (Scenario, Seed) replays the exact
		// delivery timeline and outcomes.
		res2, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Deliveries, res2.Deliveries) {
			t.Fatalf("seed %d: delivery timelines differ across identical runs", seed)
		}
		if !reflect.DeepEqual(res.Outcomes, res2.Outcomes) {
			t.Fatalf("seed %d: outcomes differ across identical runs", seed)
		}
	}
}

// TestMidCrashPublicationNoDoubleDelivery publishes while a node is
// down and recovers it inside the event's validity: the recovered node
// (fresh, empty tables) may re-receive the event, but the run must
// record at most one delivery per (event, node) and none during the
// down window.
func TestMidCrashPublicationNoDoubleDelivery(t *testing.T) {
	sc := Scenario{
		Name:  "mid-crash",
		Nodes: 10,
		Seed:  4,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(300, 300), // everyone in range of everyone
		},
		MAC:                mac.DefaultConfig(500),
		Protocol:           FrugalSpec(CoreTuning{HBUpperBound: time.Second}),
		SubscriberFraction: 1.0,
		Publications: []Publication{
			// Published at 25 s, while node 2 is down.
			{Offset: 15 * time.Second, Publisher: 0, Validity: 90 * time.Second},
		},
		Crashes: []Crash{
			{Node: 2, At: 20 * time.Second, RecoverAt: 40 * time.Second},
		},
		Warmup:      10 * time.Second,
		Measure:     100 * time.Second,
		DeliveryLog: true,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Published) != 1 {
		t.Fatalf("published %d events, want 1", len(res.Published))
	}
	ev := res.Published[0].ID
	got := 0
	for _, d := range res.Deliveries {
		if d.Event != ev {
			continue
		}
		if d.Node == 2 {
			got++
			if d.At < sim.Seconds(40) {
				t.Fatalf("crashed node delivered at %v, before its recovery", d.At)
			}
		}
	}
	if got > 1 {
		t.Fatalf("recovered node recorded %d deliveries of one event", got)
	}
	if got == 0 {
		t.Fatal("recovered node never caught up on the mid-crash publication (dense static roster should re-disseminate)")
	}
}

// TestWorkloadChurnRunIsFailsafe drives the churn generators through a
// real run: crash/recover and unsubscribe/resubscribe ops emitted by
// the registry generators must execute without error and keep delivery
// records unique.
func TestWorkloadChurnRunIsFailsafe(t *testing.T) {
	sc := Scenario{
		Name:  "churn-mix",
		Nodes: 12,
		Seed:  6,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(400, 400),
		},
		MAC:                mac.DefaultConfig(500),
		SubscriberFraction: 1.0,
		Workload: WorkloadSpec{
			Name: "mix",
			Params: workload.MixParams{Parts: []workload.Spec{
				{Name: "periodic", Params: workload.PeriodicParams{Period: 4 * time.Second}},
				{Name: "churn-nodes", Params: workload.NodeChurnParams{Waves: 3, Fraction: 0.25, Downtime: 10 * time.Second}},
				{Name: "churn-subs", Params: workload.SubChurnParams{Rate: 0.2, Resub: 5 * time.Second}},
			}},
		},
		Warmup:      10 * time.Second,
		Measure:     90 * time.Second,
		DeliveryLog: true,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Published) == 0 {
		t.Fatal("mixed workload published nothing")
	}
	type key struct {
		ev   event.ID
		node event.NodeID
	}
	seen := make(map[key]bool)
	for _, d := range res.Deliveries {
		k := key{d.Event, d.Node}
		if seen[k] {
			t.Fatalf("event %v delivered twice to node %v under generated churn", d.Event, d.Node)
		}
		seen[k] = true
	}
}

// TestWorkloadOutOfRangeOpFailsRun pins the runner's defense: a
// generator emitting an out-of-roster node index is deterministic
// misconfiguration and must fail the run, not corrupt it.
func TestWorkloadOutOfRangeOpFailsRun(t *testing.T) {
	sc := Scenario{
		Nodes: 3,
		Seed:  1,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(100, 100),
		},
		MAC:                mac.DefaultConfig(200),
		SubscriberFraction: 1.0,
		Workload: WorkloadSpec{
			Name: "explicit",
			Params: workload.ExplicitParams{Ops: []workload.Op{
				{At: time.Second, Kind: workload.Crash, Node: 99},
			}},
		},
		Warmup:  time.Second,
		Measure: 10 * time.Second,
	}
	if _, err := Run(sc); err == nil {
		t.Fatal("run with an out-of-range workload op succeeded")
	}
}

// TestBatchedPumpConcurrentRuns drives churny generated workloads on
// several goroutines at once — the shape the exp worker pool runs at
// 10k-node scale. Under -race this is the regression net for the
// batched delivery pump: runner state (delivery slabs, pooled engine
// items, MAC scratch buffers) must stay strictly per-run, and every
// concurrent replica of the same (scenario, seed) must produce the
// identical result.
func TestBatchedPumpConcurrentRuns(t *testing.T) {
	def, ok := LookupScenario("manhattan-churn")
	if !ok {
		t.Fatal("manhattan-churn scenario missing")
	}
	sc := def.Instantiate(5)
	sc.Workload = WorkloadSpec{
		Name: "mix",
		Params: workload.MixParams{Parts: []workload.Spec{
			{Name: "poisson"},
			{Name: "churn-subs"},
		}},
	}
	const replicas = 4
	rels := make([]float64, replicas)
	delivered := make([]uint64, replicas)
	var wg sync.WaitGroup
	wg.Add(replicas)
	for i := 0; i < replicas; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := Run(sc)
			if err != nil {
				t.Errorf("replica %d: %v", i, err)
				return
			}
			rels[i] = res.Reliability()
			delivered[i] = res.DeliveredTotal()
		}(i)
	}
	wg.Wait()
	for i := 1; i < replicas; i++ {
		if rels[i] != rels[0] || delivered[i] != delivered[0] {
			t.Fatalf("replica %d diverged: rel %v vs %v, delivered %d vs %d",
				i, rels[i], rels[0], delivered[i], delivered[0])
		}
	}
}

// TestSharedGraphConcurrentRuns runs reduced metro instances — which
// share the registered template's street network — on several
// goroutines at once. Under -race this pins the mobility.Graph
// memoization (Validate/popularity caches) as safe for the exp worker
// pool's concurrent sweeps over one shared graph.
func TestSharedGraphConcurrentRuns(t *testing.T) {
	def, ok := LookupScenario("metro-5k")
	if !ok {
		t.Fatal("metro-5k scenario missing")
	}
	var wg sync.WaitGroup
	rels := make([]float64, 3)
	for i := range rels {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := def.Instantiate(9)
			sc.Nodes = 200
			sc.Warmup = 5 * time.Second
			sc.Measure = 20 * time.Second
			res, err := Run(sc)
			if err != nil {
				t.Errorf("replica %d: %v", i, err)
				return
			}
			rels[i] = res.Reliability()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(rels); i++ {
		if rels[i] != rels[0] {
			t.Fatalf("replica %d diverged: %v vs %v", i, rels[i], rels[0])
		}
	}
}
