package netsim

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
)

// denseStatic returns a scenario where all nodes sit within one radio
// range: a single publication must reach everyone quickly.
func denseStatic(seed int64) Scenario {
	return Scenario{
		Name:  "dense-static",
		Nodes: 10,
		Seed:  seed,
		Mobility: MobilitySpec{
			Kind: StaticNodes,
			Area: geo.NewRect(200, 200),
		},
		MAC:                mac.DefaultConfig(340),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: time.Second, HBUpperBound: time.Second}),
		SubscriberFraction: 1.0,
		Publications: []Publication{
			{Offset: 2 * time.Second, Publisher: -1, Validity: 60 * time.Second},
		},
		Warmup:  0,
		Measure: 90 * time.Second,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Scenario)
		ok   bool
	}{
		{"valid", func(*Scenario) {}, true},
		{"no nodes", func(s *Scenario) { s.Nodes = 0 }, false},
		{"bad fraction", func(s *Scenario) { s.SubscriberFraction = 1.5 }, false},
		{"no measure", func(s *Scenario) { s.Measure = 0 }, false},
		{"negative warmup", func(s *Scenario) { s.Warmup = -time.Second }, false},
		{"bad mac", func(s *Scenario) { s.MAC.Range = 0 }, false},
		{"empty area", func(s *Scenario) { s.Mobility.Area = geo.Rect{} }, false},
		{"pub no validity", func(s *Scenario) {
			s.Publications = append(s.Publications, Publication{})
		}, false},
		{"pub publisher range", func(s *Scenario) {
			s.Publications = []Publication{{Publisher: 99, Validity: time.Second}}
		}, false},
		{"crash node range", func(s *Scenario) {
			s.Crashes = []Crash{{Node: 99, At: time.Second}}
		}, false},
		{"crash before recover", func(s *Scenario) {
			s.Crashes = []Crash{{Node: 0, At: 10 * time.Second, RecoverAt: time.Second}}
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := denseStatic(1).withDefaults()
			tt.mut(&sc)
			if err := sc.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestDenseStaticFullReliability(t *testing.T) {
	res, err := Run(denseStatic(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	o := res.Outcomes[0]
	if o.Eligible != 9 {
		t.Fatalf("eligible = %d, want 9", o.Eligible)
	}
	if got := res.Reliability(); got != 1.0 {
		t.Fatalf("reliability = %v, want 1.0 (dense static network)", got)
	}
}

func TestDeliverOnceInvariant(t *testing.T) {
	res, err := Run(denseStatic(2))
	if err != nil {
		t.Fatal(err)
	}
	// One event, everyone subscribed: each non-publisher delivers at most
	// once, and the publisher self-delivers exactly once.
	for _, n := range res.Nodes {
		if n.Proto.Delivered > 1 {
			t.Fatalf("node %v delivered %d times", n.ID, n.Proto.Delivered)
		}
	}
	if res.DeliveredTotal() != 10 {
		t.Fatalf("total deliveries = %d, want 10", res.DeliveredTotal())
	}
}

func TestNoParasitesWhenAllSubscribed(t *testing.T) {
	res, err := Run(denseStatic(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.Proto.Parasites != 0 {
			t.Fatalf("node %v counted parasites with 100%% interest", n.ID)
		}
	}
}

func TestParasitesAppearWithPartialInterest(t *testing.T) {
	sc := denseStatic(4)
	sc.SubscriberFraction = 0.5
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var parasites uint64
	for _, n := range res.Nodes {
		if !n.Subscribed {
			parasites += n.Proto.Parasites
			if n.Proto.Delivered != 0 {
				t.Fatalf("non-subscriber %v delivered events", n.ID)
			}
		}
	}
	if parasites == 0 {
		t.Fatal("expected overheard parasite events at non-subscribers")
	}
}

func TestFrugalBeatsFloodingOnTraffic(t *testing.T) {
	base := denseStatic(5)
	base.Measure = 60 * time.Second
	frugal, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fl := base
	fl.Protocol = ProtocolSpec{Name: "simple-flooding"}
	flooded, err := Run(fl)
	if err != nil {
		t.Fatal(err)
	}
	if flooded.Reliability() < 1.0 {
		t.Fatalf("flooding reliability = %v", flooded.Reliability())
	}
	if f, s := frugal.EventsSentPerProcess(), flooded.EventsSentPerProcess(); f*5 > s {
		t.Fatalf("frugal sends %.1f events/process vs flooding %.1f; want >5x gap", f, s)
	}
	if f, s := frugal.DuplicatesPerProcess(), flooded.DuplicatesPerProcess(); f*5 > s {
		t.Fatalf("frugal duplicates %.1f vs flooding %.1f; want >5x gap", f, s)
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, err := Run(denseStatic(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(denseStatic(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Reliability() != b.Reliability() {
		t.Fatal("reliability differs across identical runs")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Proto != b.Nodes[i].Proto || a.Nodes[i].MAC != b.Nodes[i].MAC {
			t.Fatalf("node %d counters differ across identical runs", i)
		}
	}
	c, err := Run(denseStatic(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nodes {
		if a.Nodes[i].MAC != c.Nodes[i].MAC {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical MAC counters")
	}
}

func TestSparseMobileNetworkUsesMobility(t *testing.T) {
	// Two clusters far apart: only node mobility can carry the event.
	// With random waypoint at decent speed and a long validity, at least
	// some remote nodes must receive it; with zero validity margin (tiny
	// validity), none can.
	long := Scenario{
		Name:  "sparse-mobile",
		Nodes: 20,
		Seed:  11,
		Mobility: MobilitySpec{
			Kind:     RandomWaypoint,
			Area:     geo.NewRect(3000, 3000),
			MinSpeed: 15,
			MaxSpeed: 15,
			Pause:    time.Second,
		},
		MAC:                mac.DefaultConfig(340),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: time.Second, HBUpperBound: time.Second}),
		SubscriberFraction: 1.0,
		Publications: []Publication{
			{Offset: 0, Publisher: 0, Validity: 150 * time.Second},
		},
		Warmup:  5 * time.Second,
		Measure: 160 * time.Second,
	}
	resLong, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	short := long
	short.Seed = 11
	short.Publications = []Publication{{Offset: 0, Publisher: 0, Validity: 2 * time.Second}}
	resShort, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	if resLong.Reliability() <= resShort.Reliability() {
		t.Fatalf("long validity %.2f should beat short validity %.2f",
			resLong.Reliability(), resShort.Reliability())
	}
	if resLong.Reliability() < 0.3 {
		t.Fatalf("mobility-assisted reliability implausibly low: %v", resLong.Reliability())
	}
}

func TestCrashAndRecovery(t *testing.T) {
	sc := denseStatic(12)
	sc.Publications = []Publication{
		{Offset: 2 * time.Second, Publisher: 0, Validity: 80 * time.Second},
	}
	// Node 5 is down when the event is published and recovers later; it
	// must still receive the event after recovery (state is fresh, the
	// neighborhood re-detects it).
	sc.Crashes = []Crash{{Node: 5, At: time.Second, RecoverAt: 30 * time.Second}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability() != 1.0 {
		t.Fatalf("reliability with recovery = %v, want 1.0", res.Reliability())
	}
}

func TestCrashWithoutRecoveryLowersReliability(t *testing.T) {
	sc := denseStatic(13)
	sc.Publications = []Publication{
		{Offset: 2 * time.Second, Publisher: 0, Validity: 30 * time.Second},
	}
	sc.Crashes = []Crash{{Node: 3, At: time.Second}, {Node: 7, At: time.Second}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 9 eligible, 2 permanently down (publisher 0 is up).
	want := 7.0 / 9.0
	got := res.Reliability()
	if got > want+1e-9 {
		t.Fatalf("reliability = %v, want <= %v with two dead nodes", got, want)
	}
	if got < 0.5 {
		t.Fatalf("reliability = %v, implausibly low", got)
	}
}

func TestCityScenarioRuns(t *testing.T) {
	sc := Scenario{
		Name:  "city-smoke",
		Nodes: 15,
		Seed:  21,
		Mobility: MobilitySpec{
			Kind:      CitySection,
			StopProb:  0.3,
			StopMin:   2 * time.Second,
			StopMax:   10 * time.Second,
			DestPause: 5 * time.Second,
		},
		MAC:                mac.DefaultConfig(44),
		Protocol:           FrugalSpec(CoreTuning{HBDelay: 4 * time.Second, HBUpperBound: time.Second, UseSpeed: true}),
		SubscriberFraction: 1.0,
		Publications: []Publication{
			{Offset: 0, Publisher: 0, Validity: 150 * time.Second},
		},
		Warmup:  10 * time.Second,
		Measure: 160 * time.Second,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability() <= 0 {
		t.Fatal("city scenario delivered nothing; radio range or mobility broken")
	}
	if res.Reliability() > 1 {
		t.Fatal("reliability above 1")
	}
}

func TestMeasurementWindowExcludesWarmup(t *testing.T) {
	sc := denseStatic(14)
	sc.Warmup = 30 * time.Second
	sc.Measure = 10 * time.Second
	sc.Publications = nil // nothing after warmup
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		// Steady state: ~10 heartbeats in a 10s window, not 40.
		if n.Proto.HeartbeatsSent > 15 {
			t.Fatalf("node %v window heartbeats = %d; warmup not excluded",
				n.ID, n.Proto.HeartbeatsSent)
		}
	}
}

func TestFloodVariantsRun(t *testing.T) {
	for _, name := range []string{
		"simple-flooding", "interests-aware-flooding", "neighbors-interests-flooding",
	} {
		t.Run(name, func(t *testing.T) {
			sc := denseStatic(15)
			sc.Protocol = ProtocolSpec{Name: name}
			sc.Measure = 30 * time.Second
			sc.Publications = []Publication{
				{Offset: time.Second, Publisher: -1, Validity: 25 * time.Second},
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reliability() != 1.0 {
				t.Fatalf("%v reliability = %v in dense static net", name, res.Reliability())
			}
		})
	}
}
