package netsim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"time"

	"repro/internal/event"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topic"
)

// PublishedEvent records one publication during the run.
type PublishedEvent struct {
	ID        event.ID
	Publisher event.NodeID
	Topic     topic.Topic
	At        sim.Time
	Validity  time.Duration
}

// EventOutcome is the delivery outcome of one published event.
type EventOutcome struct {
	PublishedEvent
	// Eligible is the number of subscribers excluding the publisher.
	Eligible int
	// DeliveredInTime counts eligible nodes that delivered the event
	// before its validity expired.
	DeliveredInTime int
}

// Reliability is the paper's "probability of event reception":
// DeliveredInTime / Eligible.
func (o EventOutcome) Reliability() float64 {
	if o.Eligible == 0 {
		return 0
	}
	return float64(o.DeliveredInTime) / float64(o.Eligible)
}

// NodeResult carries one node's counters over the measurement window.
type NodeResult struct {
	ID         event.NodeID
	Subscribed bool
	Proto      proto.Stats
	MAC        mac.Counters
}

// DeliveryRecord is one first-time application delivery.
type DeliveryRecord struct {
	Event event.ID
	Node  event.NodeID
	At    sim.Time
}

// Result is everything measured in one run.
type Result struct {
	Scenario  Scenario
	Nodes     []NodeResult
	Published []PublishedEvent
	// Deliveries lists every first delivery, but only when the scenario
	// sets DeliveryLog (or Trace): the streaming aggregation otherwise
	// folds deliveries into Outcomes and Latency as they happen and
	// keeps no per-delivery state.
	Deliveries []DeliveryRecord
	Outcomes   []EventOutcome
	// Latency is the streaming histogram of publish-to-first-delivery
	// latencies in seconds across all events, excluding the publisher's
	// local self-delivery and deliveries past the event's validity.
	// Always populated, with O(1) memory, regardless of DeliveryLog.
	Latency metrics.LogHist
	// Tile reports the tile-parallel machinery's activity when the run
	// was sharded (Scenario.Tiles resolved above one). It is excluded
	// from Fingerprint: measurements are byte-identical at any tile
	// count, while these counters legitimately vary with it.
	Tile *TileStats
	// Series is the sampled time-series of the measurement window,
	// populated when Scenario.Sample is positive. It is excluded from
	// Fingerprint by construction: the fingerprint pins that sampling
	// is observation-only — the same scenario hashes identically with
	// sampling on or off (series content itself is seed-deterministic
	// and tile/parallelism invariant; see series_test.go).
	Series *Series
}

// Fingerprint digests everything measured in the run — publications,
// outcomes, per-node counters, the delivery log (when kept) and the
// latency histogram — into a stable hex string. Run is a pure function
// of (Scenario, Seed), so the fingerprint pins a whole city-scale
// simulation in one golden line where the full table output would be
// megabytes (see the metro golden test in internal/exp).
func (r *Result) Fingerprint() string {
	h := sha256.New()
	w := func(v any) { _ = binary.Write(h, binary.LittleEndian, v) }
	w(uint64(len(r.Published)))
	for _, pe := range r.Published {
		w(pe.ID)
		w(uint32(pe.Publisher))
		w(int64(pe.At))
		w(int64(pe.Validity))
		_, _ = io.WriteString(h, pe.Topic.String())
	}
	w(uint64(len(r.Outcomes)))
	for _, o := range r.Outcomes {
		w(int64(o.Eligible))
		w(int64(o.DeliveredInTime))
	}
	w(uint64(len(r.Nodes)))
	for _, n := range r.Nodes {
		w(uint32(n.ID))
		w(n.Subscribed)
		w(n.Proto)
		w(n.MAC)
	}
	w(uint64(len(r.Deliveries)))
	for _, d := range r.Deliveries {
		w(d.Event)
		w(uint32(d.Node))
		w(int64(d.At))
	}
	_ = r.Latency.WriteBinary(h)
	return hex.EncodeToString(h.Sum(nil))
}

// DeliveryLatencies returns the publish-to-delivery latencies in seconds
// of every recorded delivery (excluding the publisher's local
// self-delivery), across all events. Useful for exact percentile
// analysis via metrics.Quantile; requires Scenario.DeliveryLog (use
// Latency for the always-on streaming estimate).
func (r *Result) DeliveryLatencies() []float64 {
	pubAt := make(map[event.ID]PublishedEvent, len(r.Published))
	for _, pe := range r.Published {
		pubAt[pe.ID] = pe
	}
	var out []float64
	for _, d := range r.Deliveries {
		pe, ok := pubAt[d.Event]
		if !ok || d.Node == pe.Publisher {
			continue
		}
		out = append(out, d.At.Sub(pe.At).Seconds())
	}
	return out
}

// CoverageAt returns the fraction of eligible subscribers that had
// delivered event id by time t. It reads Deliveries, so it requires
// Scenario.DeliveryLog.
func (r *Result) CoverageAt(id event.ID, t sim.Time) float64 {
	var o *EventOutcome
	for i := range r.Outcomes {
		if r.Outcomes[i].ID == id {
			o = &r.Outcomes[i]
			break
		}
	}
	if o == nil || o.Eligible == 0 {
		return 0
	}
	n := 0
	for _, d := range r.Deliveries {
		if d.Event == id && d.Node != o.Publisher && d.At <= t {
			n++
		}
	}
	return float64(n) / float64(o.Eligible)
}

// Reliability averages per-event reliability across all published events.
func (r *Result) Reliability() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	sum := 0.0
	for _, o := range r.Outcomes {
		sum += o.Reliability()
	}
	return sum / float64(len(r.Outcomes))
}

// meanPerNode averages f over every node.
func (r *Result) meanPerNode(f func(NodeResult) float64) float64 {
	if len(r.Nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range r.Nodes {
		sum += f(n)
	}
	return sum / float64(len(r.Nodes))
}

// AppBytesPerProcess is the paper's "bandwidth used per process":
// application bytes broadcast per node over the measurement window
// (heartbeats + id lists + events under the size model).
func (r *Result) AppBytesPerProcess() float64 {
	return r.meanPerNode(func(n NodeResult) float64 { return float64(n.MAC.AppBytesSent) })
}

// EventsSentPerProcess counts event copies broadcast per node (paper
// Figure 18).
func (r *Result) EventsSentPerProcess() float64 {
	return r.meanPerNode(func(n NodeResult) float64 { return float64(n.Proto.EventsSent) })
}

// DuplicatesPerProcess counts received already-known events per node
// (paper Figure 19).
func (r *Result) DuplicatesPerProcess() float64 {
	return r.meanPerNode(func(n NodeResult) float64 { return float64(n.Proto.Duplicates) })
}

// ParasitesPerProcess counts received uninteresting events per node
// (paper Figure 20).
func (r *Result) ParasitesPerProcess() float64 {
	return r.meanPerNode(func(n NodeResult) float64 { return float64(n.Proto.Parasites) })
}

// DeliveredTotal sums application deliveries over all nodes.
func (r *Result) DeliveredTotal() uint64 {
	var sum uint64
	for _, n := range r.Nodes {
		sum += n.Proto.Delivered
	}
	return sum
}

// FramesLostTotal sums MAC-level collision losses over all nodes.
func (r *Result) FramesLostTotal() uint64 {
	var sum uint64
	for _, n := range r.Nodes {
		sum += n.MAC.FramesLost
	}
	return sum
}
