package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/event"
)

// Defaults mirror the paper's evaluation settings (Section 5.1).
const (
	// DefaultX is the heartbeat tuning factor x in HBDelay = x/avgSpeed;
	// the paper sets it to 40 (roughly the propagation radius in
	// decameters).
	DefaultX = 40.0
	// DefaultHB2BO divides the heartbeat delay to obtain the back-off
	// delay.
	DefaultHB2BO = 2.0
	// DefaultHB2NGC multiplies the heartbeat delay to obtain the
	// neighborhood garbage-collection delay.
	DefaultHB2NGC = 2.5
	// DefaultHBDelay is the heartbeat period used when no speed
	// information is available (paper Figure 4: 15000 ms).
	DefaultHBDelay = 15 * time.Second
	// DefaultHBLowerBound stops the adaptive heartbeat from melting the
	// channel at very high speeds.
	DefaultHBLowerBound = 100 * time.Millisecond
)

// Config parameterizes a Protocol instance. The zero value of the tuning
// fields selects the paper's defaults.
type Config struct {
	// ID is this process's unique identifier. Required.
	ID event.NodeID

	// X is the heartbeat tuning factor (DefaultX when 0).
	X float64
	// HB2BO is the back-off divisor (DefaultHB2BO when 0).
	HB2BO float64
	// HB2NGC is the neighborhood-GC multiplier (DefaultHB2NGC when 0).
	HB2NGC float64
	// HBDelay is the initial/fallback heartbeat period (DefaultHBDelay
	// when 0).
	HBDelay time.Duration
	// HBLowerBound clamps the adaptive heartbeat period from below
	// (DefaultHBLowerBound when 0).
	HBLowerBound time.Duration
	// HBUpperBound clamps the adaptive heartbeat period from above;
	// 0 means unbounded (the paper's city-section "no upper bound").
	HBUpperBound time.Duration

	// MaxEvents bounds the event table; 0 means unbounded. When full,
	// the paper's gc(e) = val/(fwd+val) policy evicts an event.
	MaxEvents int
	// MaxNeighbors bounds the neighborhood table; 0 means unbounded.
	// When full, the stalest entry is evicted.
	MaxNeighbors int

	// Speed optionally reports the node's current speed in m/s; nil or
	// a negative return means unknown (the paper treats speed as an
	// optional optimization input).
	Speed func() float64

	// OnDeliver is invoked when an event is delivered: it is not in the
	// event table, still valid, and its topic is covered by the node's
	// subscriptions. With an unbounded table this means exactly once per
	// event; with MaxEvents set, an event evicted by garbage collection
	// and received again is re-delivered — the process has genuinely
	// forgotten it (the price of bounded memory, as in the paper).
	// Optional.
	OnDeliver func(event.Event)

	// Rand seeds event-identifier generation and the initial heartbeat
	// phase. Required for determinism; when nil a source seeded from ID
	// is used.
	Rand *rand.Rand

	// Ablation knobs. Zero values select the paper's design; the
	// experiment harness flips them one at a time to quantify each
	// design choice (see DESIGN.md "Ablations").

	// DisableSuppression keeps a pending back-off armed when a fresh
	// event of interest is overheard.
	DisableSuppression bool
	// DisableAdaptiveHB pins the heartbeat period at HBDelay instead of
	// adapting it to the average neighbor speed.
	DisableAdaptiveHB bool
	// FixedBackoff makes the back-off independent of the number of
	// events to send.
	FixedBackoff bool
	// BlindPush skips the event-id pre-exchange: on discovering a
	// neighbor the node immediately schedules a push of everything the
	// neighbor's subscriptions cover.
	BlindPush bool
	// GCPolicy overrides the event-table eviction policy.
	GCPolicy GCPolicy
}

// GCPolicy selects the event-table eviction policy.
type GCPolicy int

const (
	// GCPaper is Equation 1: evict min val/(fwd+val), expired first.
	GCPaper GCPolicy = iota
	// GCFIFO evicts the oldest stored event (expired still first).
	GCFIFO
	// GCRandom evicts a uniformly random event (expired still first).
	GCRandom
)

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.X < 0 || c.HB2BO < 0 || c.HB2NGC < 0 {
		return fmt.Errorf("core: negative tuning factor")
	}
	if c.HBDelay < 0 || c.HBLowerBound < 0 || c.HBUpperBound < 0 {
		return fmt.Errorf("core: negative delay")
	}
	if c.HBUpperBound > 0 && c.HBLowerBound > c.HBUpperBound {
		return fmt.Errorf("core: HBLowerBound %v > HBUpperBound %v", c.HBLowerBound, c.HBUpperBound)
	}
	if c.MaxEvents < 0 || c.MaxNeighbors < 0 {
		return fmt.Errorf("core: negative capacity")
	}
	return nil
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.X == 0 {
		c.X = DefaultX
	}
	if c.HB2BO == 0 {
		c.HB2BO = DefaultHB2BO
	}
	if c.HB2NGC == 0 {
		c.HB2NGC = DefaultHB2NGC
	}
	if c.HBDelay == 0 {
		c.HBDelay = DefaultHBDelay
	}
	if c.HBLowerBound == 0 {
		c.HBLowerBound = DefaultHBLowerBound
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(int64(c.ID) + 1))
	}
	return c
}

// clampHB applies the configured heartbeat bounds.
func (c Config) clampHB(d time.Duration) time.Duration {
	if c.HBUpperBound > 0 && d > c.HBUpperBound {
		d = c.HBUpperBound
	}
	if d < c.HBLowerBound {
		d = c.HBLowerBound
	}
	return d
}
