package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

func TestGCFIFOPolicy(t *testing.T) {
	tb := newEventTable(3)
	tb.policy = GCFIFO
	tb.insert(mkEvent(1, ".a", time.Hour), 0)
	tb.insert(mkEvent(2, ".a", time.Minute), time.Second)
	tb.insert(mkEvent(3, ".a", time.Second*90), 2*time.Second)
	// Make event 2 the paper-policy victim (heavily forwarded); FIFO
	// must still pick the oldest (event 1).
	tb.get(event.ID{Lo: 2}).fwd = 50
	evicted := tb.insert(mkEvent(4, ".a", time.Minute), 3*time.Second)
	if evicted == nil || evicted.ev.ID.Lo != 1 {
		t.Fatalf("FIFO evicted %+v, want oldest (1)", evicted)
	}
}

func TestGCRandomPolicy(t *testing.T) {
	// Random policy with a fixed seed is deterministic and evicts a
	// valid entry; across many fills every entry is hit eventually.
	hits := make(map[uint64]bool)
	for seed := int64(0); seed < 20; seed++ {
		tb := newEventTable(3)
		tb.policy = GCRandom
		tb.rng = rand.New(rand.NewSource(seed))
		for i := uint64(1); i <= 3; i++ {
			tb.insert(mkEvent(i, ".a", time.Hour), 0)
		}
		evicted := tb.insert(mkEvent(99, ".a", time.Hour), time.Second)
		if evicted == nil {
			t.Fatal("no eviction at capacity")
		}
		hits[evicted.ev.ID.Lo] = true
	}
	if len(hits) < 2 {
		t.Fatalf("random policy always picked the same victim: %v", hits)
	}
}

func TestGCRandomStillPrefersExpired(t *testing.T) {
	tb := newEventTable(2)
	tb.policy = GCRandom
	tb.rng = rand.New(rand.NewSource(1))
	tb.insert(mkEvent(1, ".a", time.Second), 0) // expires at 1s
	tb.insert(mkEvent(2, ".a", time.Hour), 0)
	evicted := tb.insert(mkEvent(3, ".a", time.Hour), 2*time.Second)
	if evicted == nil || evicted.ev.ID.Lo != 1 {
		t.Fatalf("random policy must still evict expired first, got %+v", evicted)
	}
}

func TestProtocolAccessors(t *testing.T) {
	h := newHarness(t, 30)
	p := h.addNode(9, Config{}, ".a", ".b")
	if p.ID() != 9 {
		t.Fatalf("ID = %v", p.ID())
	}
	subs := p.Subscriptions()
	if subs.Len() != 2 || !subs.Has(topic.MustParse(".a")) {
		t.Fatalf("Subscriptions = %v", subs)
	}
	// The returned set is a copy: mutating it must not affect the node.
	subs.Add(topic.MustParse(".evil"))
	if p.Subscriptions().Len() != 2 {
		t.Fatal("Subscriptions leaked internal state")
	}
}

func TestPendingIDListExpiry(t *testing.T) {
	// An id list stashed from an unknown sender expires after the NGC
	// horizon: a heartbeat arriving later must not apply it.
	h := newHarness(t, 31)
	p := h.addNode(1, Config{}, ".t")
	// Unknown node 5 claims to have event X.
	x := event.ID{Lo: 77}
	if err := p.HandleMessage(event.IDList{From: 5, IDs: []event.ID{x}}); err != nil {
		t.Fatal(err)
	}
	if len(p.pendingIDs) != 1 {
		t.Fatal("id list not stashed")
	}
	// Much later (beyond ngcDelay = 2.5s), node 5's heartbeat arrives.
	h.runUntil(10)
	if err := p.HandleMessage(event.Heartbeat{
		From:          5,
		Subscriptions: []topic.Topic{topic.MustParse(".t")},
		Speed:         -1,
	}); err != nil {
		t.Fatal(err)
	}
	if nb := p.nbrs.get(5); nb == nil {
		t.Fatal("neighbor not added")
	} else if nb.knows(x) {
		t.Fatal("stale stashed id list was applied")
	}
	if len(p.pendingIDs) != 0 {
		t.Fatal("stash entry not consumed")
	}
}

func TestPendingIDListCapBounded(t *testing.T) {
	h := newHarness(t, 32)
	p := h.addNode(1, Config{}, ".t")
	for i := 0; i < maxPendingIDLists*2; i++ {
		_ = p.HandleMessage(event.IDList{From: event.NodeID(100 + i)})
	}
	if len(p.pendingIDs) > maxPendingIDLists {
		t.Fatalf("stash grew to %d, cap %d", len(p.pendingIDs), maxPendingIDLists)
	}
}

func TestHeartbeatRemovesNoLongerOverlappingNeighbor(t *testing.T) {
	h := newHarness(t, 33)
	p1 := h.addNode(1, Config{}, ".t")
	p2 := h.addNode(2, Config{}, ".t")
	h.runUntil(3)
	if len(p1.NeighborIDs()) != 1 {
		t.Fatal("setup: discovery failed")
	}
	// p2 switches interests entirely; p1 must drop it on the next
	// heartbeat rather than keep a stale matching row.
	p2.Unsubscribe(topic.MustParse(".t"))
	if err := p2.Subscribe(topic.MustParse(".elsewhere")); err != nil {
		t.Fatal(err)
	}
	h.runUntil(6)
	if len(p1.NeighborIDs()) != 0 {
		t.Fatalf("p1 still lists p2 after interest change: %v", p1.NeighborIDs())
	}
}

func TestMaxNeighborsCapThroughProtocol(t *testing.T) {
	h := newHarness(t, 34)
	cfg := Config{MaxNeighbors: 2}
	p1 := h.addNode(1, cfg, ".t")
	for id := event.NodeID(2); id <= 5; id++ {
		h.addNode(id, Config{}, ".t")
	}
	h.runUntil(5)
	if got := len(p1.NeighborIDs()); got > 2 {
		t.Fatalf("neighbor table grew to %d, cap 2", got)
	}
}

func TestHBLowerBoundClamps(t *testing.T) {
	h := newHarness(t, 35)
	cfg := Config{
		HBDelay:      time.Second,
		HBLowerBound: 800 * time.Millisecond,
		HBUpperBound: 10 * time.Second,
		Speed:        func() float64 { return 1000 }, // x/speed = 40ms << lower bound
	}
	p1 := h.addNode(1, cfg, ".t")
	h.addNode(2, cfg, ".t")
	h.runUntil(5)
	if got := p1.HBDelay(); got != 800*time.Millisecond {
		t.Fatalf("HBDelay = %v, want clamped 800ms", got)
	}
}
