package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// Protocol is one process p_i running the frugal dissemination algorithm.
// See the package comment for the concurrency contract.
type Protocol struct {
	cfg   Config
	sched Scheduler
	tr    Transport

	subs  *topic.Set
	nbrs  *neighborhood
	table *eventTable

	hbDelay  time.Duration
	ngcDelay time.Duration

	hbTimer    Timer
	ngcTimer   Timer
	boTimer    Timer
	boDeadline time.Duration

	// pendingIDs stashes event-id lists heard from processes we have not
	// discovered yet. The paper's Figure 6 silently drops those, which
	// deadlocks a stable pair when the holder's heartbeat beats the
	// needer's (the one-shot id exchange then never reaches the holder).
	// Stashing until the heartbeat arrives preserves the paper's
	// frugality while restoring liveness; entries expire after ngcDelay.
	pendingIDs map[event.NodeID]pendingIDList

	stats   Stats
	stopped bool
}

type pendingIDList struct {
	ids []event.ID
	at  time.Duration
}

// maxPendingIDLists bounds the stash of id lists from undiscovered
// processes.
const maxPendingIDLists = 64

// New creates a protocol instance. It returns an error on invalid
// configuration. The instance is idle until Subscribe or Publish is
// called.
func New(cfg Config, sched Scheduler, tr Transport) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || tr == nil {
		return nil, errors.New("core: nil scheduler or transport")
	}
	cfg = cfg.withDefaults()
	table := newEventTable(cfg.MaxEvents)
	table.policy = cfg.GCPolicy
	table.rng = cfg.Rand
	p := &Protocol{
		cfg:        cfg,
		sched:      sched,
		tr:         tr,
		subs:       topic.NewSet(),
		nbrs:       newNeighborhood(cfg.MaxNeighbors),
		table:      table,
		pendingIDs: make(map[event.NodeID]pendingIDList),
	}
	p.hbDelay = cfg.clampHB(cfg.HBDelay)
	p.ngcDelay = p.scaleNGC(p.hbDelay)
	return p, nil
}

// ID returns the process identifier.
func (p *Protocol) ID() event.NodeID { return p.cfg.ID }

// Stats returns a snapshot of the protocol counters.
func (p *Protocol) Stats() Stats { return p.stats }

// HBDelay returns the current (adaptive) heartbeat period.
func (p *Protocol) HBDelay() time.Duration { return p.hbDelay }

// NGCDelay returns the current neighborhood garbage-collection period.
func (p *Protocol) NGCDelay() time.Duration { return p.ngcDelay }

// NeighborIDs returns the ids in the neighborhood table, sorted.
func (p *Protocol) NeighborIDs() []event.NodeID {
	ns := p.nbrs.sorted()
	out := make([]event.NodeID, len(ns))
	for i, n := range ns {
		out[i] = n.id
	}
	return out
}

// HasEvent reports whether the event table holds id.
func (p *Protocol) HasEvent(id event.ID) bool { return p.table.has(id) }

// EventCount returns the number of stored events (valid or not yet
// collected).
func (p *Protocol) EventCount() int { return p.table.len() }

// Subscriptions returns a copy of the current subscription set.
func (p *Protocol) Subscriptions() *topic.Set { return p.subs.Clone() }

// Subscribe adds t to the subscription list and starts the heartbeat and
// neighborhood-GC tasks if needed (paper Figure 5).
func (p *Protocol) Subscribe(t topic.Topic) error {
	if p.stopped {
		return errors.New("core: protocol stopped")
	}
	if t.IsZero() {
		return errors.New("core: zero topic")
	}
	p.subs.Add(t)
	if p.hbTimer == nil {
		// Desynchronize first heartbeats across nodes: a random phase in
		// [0, hbDelay) avoids the pathological all-at-once burst when a
		// whole scenario subscribes at the same instant.
		phase := time.Duration(p.cfg.Rand.Int63n(int64(p.hbDelay) + 1))
		p.hbTimer = p.sched.After(phase, p.heartbeatTick)
	}
	p.startNGC()
	return nil
}

// Unsubscribe removes t; when the subscription list empties, the
// heartbeat and neighborhood-GC tasks stop (paper Figure 5).
func (p *Protocol) Unsubscribe(t topic.Topic) {
	p.subs.Remove(t)
	if p.subs.Empty() {
		stopTimer(&p.hbTimer)
		stopTimer(&p.ngcTimer)
	}
}

func stopTimer(t *Timer) {
	if *t != nil {
		(*t).Stop()
		*t = nil
	}
}

func (p *Protocol) startNGC() {
	if p.ngcTimer == nil {
		p.ngcTimer = p.sched.After(p.ngcDelay, p.ngcTick)
	}
}

// Stop halts all activity permanently.
func (p *Protocol) Stop() {
	p.stopped = true
	stopTimer(&p.hbTimer)
	stopTimer(&p.ngcTimer)
	stopTimer(&p.boTimer)
}

// speed returns the node's own speed, or -1 when unknown.
func (p *Protocol) speed() float64 {
	if p.cfg.Speed == nil {
		return -1
	}
	if v := p.cfg.Speed(); v >= 0 {
		return v
	}
	return -1
}

// heartbeatTick is the HEARTBEAT task: broadcast identity, subscriptions
// and speed, then reschedule at the current adaptive period.
func (p *Protocol) heartbeatTick() {
	if p.stopped || p.subs.Empty() {
		p.hbTimer = nil
		return
	}
	// Announce the minimal covering subscription list: subtopics
	// subsumed by an announced ancestor add no information.
	p.tr.Broadcast(event.Heartbeat{
		From:          p.cfg.ID,
		Subscriptions: p.subs.Minimal(),
		Speed:         p.speed(),
	})
	p.stats.HeartbeatsSent++
	p.hbTimer = p.sched.After(p.hbDelay, p.heartbeatTick)
}

// ngcTick is the neighborhoodGC task (paper Figure 10).
func (p *Protocol) ngcTick() {
	if p.stopped {
		p.ngcTimer = nil
		return
	}
	p.stats.NeighborsGCed += uint64(p.nbrs.gc(p.sched.Now(), p.ngcDelay))
	p.ngcTimer = p.sched.After(p.ngcDelay, p.ngcTick)
}

// HandleMessage feeds a received broadcast into the protocol. Unknown
// message types return an error; the caller decides whether that is
// fatal.
func (p *Protocol) HandleMessage(m event.Message) error {
	if p.stopped {
		return nil
	}
	switch v := m.(type) {
	case event.Heartbeat:
		p.onHeartbeat(v)
	case event.IDList:
		p.onIDList(v)
	case event.Events:
		p.onEvents(v)
	default:
		return fmt.Errorf("core: unknown message %T", m)
	}
	return nil
}

// onHeartbeat implements paper Figure 6, lines 5-23.
func (p *Protocol) onHeartbeat(h event.Heartbeat) {
	if h.From == p.cfg.ID {
		return
	}
	now := p.sched.Now()
	hbSubs := topic.NewSet(h.Subscriptions...)
	if !hbSubs.Overlaps(p.subs) {
		// Not (or no longer) interesting: forget any stale row.
		p.nbrs.remove(h.From)
		return
	}
	isNew, changed := p.nbrs.upsert(h.From, hbSubs, h.Speed, now)
	if (isNew || changed) && p.cfg.BlindPush {
		// Ablation: no id pre-exchange — assume the neighbor holds
		// nothing and schedule a push directly.
		p.retrieveEventsToSend()
	} else if isNew || changed {
		// neighborEvent: announce the ids of our valid events matching
		// the neighbor's interests. An empty list still triggers the
		// peer's RETRIEVEEVENTSTOSEND, telling it we need everything.
		p.tr.Broadcast(event.IDList{
			From: p.cfg.ID,
			IDs:  p.table.idsMatching(hbSubs, now),
		})
		p.stats.IDListsSent++
	}
	if isNew {
		// Apply an id list heard before the neighbor was known, then
		// check whether it needs anything we hold.
		if pend, ok := p.pendingIDs[h.From]; ok {
			delete(p.pendingIDs, h.From)
			if now-pend.at <= p.ngcDelay {
				nb := p.nbrs.get(h.From)
				for _, id := range pend.ids {
					nb.markHas(id)
				}
				p.retrieveEventsToSend()
			}
		}
	}
	p.computeHBDelay()
	p.computeNGCDelay()
}

// onIDList implements paper Figure 6, lines 24-32, with the pending-list
// stash for not-yet-discovered senders (see the pendingIDs field).
func (p *Protocol) onIDList(l event.IDList) {
	if l.From == p.cfg.ID {
		return
	}
	now := p.sched.Now()
	nb := p.nbrs.get(l.From)
	if nb == nil {
		p.prunePending(now)
		if len(p.pendingIDs) < maxPendingIDLists {
			p.pendingIDs[l.From] = pendingIDList{
				ids: append([]event.ID(nil), l.IDs...),
				at:  now,
			}
		}
		return
	}
	for _, id := range l.IDs {
		nb.markHas(id)
	}
	p.retrieveEventsToSend()
}

// prunePending drops stashed id lists older than the neighborhood GC
// horizon.
func (p *Protocol) prunePending(now time.Duration) {
	for id, pend := range p.pendingIDs {
		if now-pend.at > p.ngcDelay {
			delete(p.pendingIDs, id)
		}
	}
}

// onEvents implements paper Figure 9, lines 15-32.
func (p *Protocol) onEvents(msg event.Events) {
	if msg.From == p.cfg.ID {
		return
	}
	now := p.sched.Now()
	// Update presumed-received info: the sender and every listed
	// receiver are assumed to hold the carried events.
	holders := make([]*neighbor, 0, len(msg.Receivers)+1)
	if nb := p.nbrs.get(msg.From); nb != nil {
		holders = append(holders, nb)
	}
	for _, r := range msg.Receivers {
		if nb := p.nbrs.get(r); nb != nil {
			holders = append(holders, nb)
		}
	}
	interested := false
	for _, ev := range msg.Events {
		p.stats.EventsReceived++
		for _, nb := range holders {
			nb.markHas(ev.ID)
		}
		if !p.subs.Covers(ev.Topic) {
			p.stats.Parasites++ // parasite event: drop (Section 3)
			continue
		}
		if p.table.has(ev.ID) {
			p.stats.Duplicates++
			continue
		}
		if ev.Remaining <= 0 {
			p.stats.ExpiredDrops++
			continue
		}
		interested = true
		// Receiving a new event of interest cancels our own pending
		// send (suppression, Figure 9 line 22).
		if !p.cfg.DisableSuppression {
			stopTimer(&p.boTimer)
		}
		p.store(ev, now)
		p.deliver(ev)
	}
	if interested {
		p.retrieveEventsToSend()
	}
}

// store inserts ev into the event table, accounting evictions.
func (p *Protocol) store(ev event.Event, now time.Duration) {
	if evicted := p.table.insert(ev, now); evicted != nil {
		p.stats.TableEvictions++
	}
}

func (p *Protocol) deliver(ev event.Event) {
	p.stats.Delivered++
	if p.cfg.OnDeliver != nil {
		p.cfg.OnDeliver(ev)
	}
}

// Publish implements paper Figure 9, lines 33-53: broadcast immediately
// if an interested neighbor is known, then store and deliver locally.
func (p *Protocol) Publish(t topic.Topic, payload []byte, validity time.Duration) (event.ID, error) {
	if p.stopped {
		return event.ID{}, errors.New("core: protocol stopped")
	}
	if t.IsZero() {
		return event.ID{}, errors.New("core: zero topic")
	}
	if validity <= 0 {
		return event.ID{}, fmt.Errorf("core: non-positive validity %v", validity)
	}
	now := p.sched.Now()
	ev := event.Event{
		ID:        event.NewID(p.cfg.Rand),
		Topic:     t,
		Publisher: p.cfg.ID,
		Payload:   append([]byte(nil), payload...),
		Validity:  validity,
		Remaining: validity,
	}
	receivers := p.interestedNeighbors(t)
	p.store(ev, now)
	if len(receivers) > 0 {
		p.tr.Broadcast(event.Events{
			From:      p.cfg.ID,
			Events:    []event.Event{ev},
			Receivers: receivers,
		})
		p.stats.EventMsgsSent++
		p.stats.EventsSent++
		p.markAllNeighbors(ev.ID)
		p.table.get(ev.ID).fwd++
	}
	p.stats.Published++
	if p.subs.Covers(t) {
		p.deliver(ev)
	}
	p.startNGC() // paper Figure 9 line 50
	return ev.ID, nil
}

// interestedNeighbors returns the sorted ids of neighbors whose
// subscriptions cover t.
func (p *Protocol) interestedNeighbors(t topic.Topic) []event.NodeID {
	var out []event.NodeID
	for _, nb := range p.nbrs.sorted() {
		if nb.subs.Covers(t) {
			out = append(out, nb.id)
		}
	}
	return out
}

func (p *Protocol) markAllNeighbors(id event.ID) {
	for _, nb := range p.nbrs.sorted() {
		nb.markHas(id)
	}
}

// computeSendSet returns the valid stored events some neighbor needs,
// plus the union of the needing neighbors' ids (paper Figure 7).
func (p *Protocol) computeSendSet() ([]*tableEntry, []event.NodeID) {
	now := p.sched.Now()
	var entries []*tableEntry
	needers := make(map[event.NodeID]bool)
	for _, e := range p.table.validEntries(now) {
		needed := false
		for _, nb := range p.nbrs.sorted() {
			if nb.subs.Covers(e.ev.Topic) && !nb.knows(e.ev.ID) {
				needed = true
				needers[nb.id] = true
			}
		}
		if needed {
			entries = append(entries, e)
		}
	}
	ids := make([]event.NodeID, 0, len(needers))
	for id := range needers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return entries, ids
}

// retrieveEventsToSend implements RETRIEVEEVENTSTOSEND (paper Figure 7):
// when some neighbor misses events we hold, arm (or tighten) the back-off
// timer; the send set itself is recomputed at expiry.
func (p *Protocol) retrieveEventsToSend() {
	entries, _ := p.computeSendSet()
	if len(entries) == 0 {
		return
	}
	now := p.sched.Now()
	delay := p.computeBODelay(len(entries))
	deadline := now + delay
	if p.boTimer != nil {
		if deadline >= p.boDeadline {
			return // existing, earlier back-off wins (COMPUTEBODELAY's MIN)
		}
		stopTimer(&p.boTimer)
	}
	p.boDeadline = deadline
	p.boTimer = p.sched.After(delay, p.onBackoffExpired)
}

// computeBODelay implements COMPUTEBODELAY (paper Figure 8):
// HBDelay / (HB2BO * |eventsToSend|), so holders of more events fire
// sooner.
func (p *Protocol) computeBODelay(n int) time.Duration {
	if n < 1 || p.cfg.FixedBackoff {
		n = 1
	}
	return time.Duration(float64(p.hbDelay) / (p.cfg.HB2BO * float64(n)))
}

// onBackoffExpired implements paper Figure 9, lines 1-14: recompute the
// send set (the neighborhood may have changed during the back-off) and
// broadcast it.
func (p *Protocol) onBackoffExpired() {
	p.boTimer = nil
	now := p.sched.Now()
	entries, receivers := p.computeSendSet()
	if len(entries) == 0 {
		return
	}
	events := make([]event.Event, len(entries))
	for i, e := range entries {
		events[i] = e.ev.WithRemaining(e.remaining(now))
	}
	p.tr.Broadcast(event.Events{
		From:      p.cfg.ID,
		Events:    events,
		Receivers: receivers,
	})
	p.stats.EventMsgsSent++
	p.stats.EventsSent += uint64(len(events))
	for _, e := range entries {
		p.markAllNeighbors(e.ev.ID)
		e.fwd++
	}
}

// computeHBDelay implements COMPUTEHBDELAY (paper Figure 8): x over the
// average known speed, clamped to the configured bounds.
func (p *Protocol) computeHBDelay() {
	if p.cfg.DisableAdaptiveHB {
		p.hbDelay = p.cfg.clampHB(p.cfg.HBDelay)
		return
	}
	avg, ok := p.nbrs.avgSpeed(p.speed())
	d := p.cfg.HBDelay
	if ok && avg > 0.01 {
		d = time.Duration(p.cfg.X / avg * float64(time.Second))
	}
	p.hbDelay = p.cfg.clampHB(d)
}

// computeNGCDelay implements COMPUTENGCDELAY: NGCDelay = HBDelay*HB2NGC.
func (p *Protocol) computeNGCDelay() {
	p.ngcDelay = p.scaleNGC(p.hbDelay)
}

func (p *Protocol) scaleNGC(hb time.Duration) time.Duration {
	return time.Duration(float64(hb) * p.cfg.HB2NGC)
}
