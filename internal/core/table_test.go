package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

func mkEvent(id uint64, top string, validity time.Duration) event.Event {
	return event.Event{
		ID:        event.ID{Lo: id},
		Topic:     topic.MustParse(top),
		Validity:  validity,
		Remaining: validity,
	}
}

func TestTableInsertHas(t *testing.T) {
	tb := newEventTable(0)
	ev := mkEvent(1, ".a", time.Minute)
	if tb.has(ev.ID) {
		t.Fatal("empty table has event")
	}
	if evicted := tb.insert(ev, 0); evicted != nil {
		t.Fatal("unbounded table evicted")
	}
	if !tb.has(ev.ID) || tb.len() != 1 {
		t.Fatal("insert failed")
	}
	e := tb.get(ev.ID)
	if e.expiresAt != time.Minute {
		t.Fatalf("expiresAt = %v", e.expiresAt)
	}
	if !e.valid(30*time.Second) || e.valid(time.Minute) {
		t.Fatal("validity window wrong")
	}
	if got := e.remaining(45 * time.Second); got != 15*time.Second {
		t.Fatalf("remaining = %v", got)
	}
	if got := e.remaining(2 * time.Minute); got != 0 {
		t.Fatalf("remaining past expiry = %v", got)
	}
}

func TestGCScorePaperExample(t *testing.T) {
	// Paper Section 4.4: "an event with a validity period of 2 min that
	// has been forwarded less than 2 times will be collected AFTER an
	// event with a validity period of 5 min that has been forwarded 5
	// times."
	short := &tableEntry{ev: mkEvent(1, ".a", 2*time.Minute), fwd: 1}
	long := &tableEntry{ev: mkEvent(2, ".a", 5*time.Minute), fwd: 5}
	if !(long.gcScore() < short.gcScore()) {
		t.Fatalf("gc ordering violates paper example: long=%v short=%v",
			long.gcScore(), short.gcScore())
	}
}

func TestGCPrefersExpired(t *testing.T) {
	tb := newEventTable(2)
	tb.insert(mkEvent(1, ".a", time.Second), 0) // expires at 1s
	tb.insert(mkEvent(2, ".a", time.Hour), 0)
	// At t=2s, inserting a third event must evict the expired one even
	// though the long-lived event has a (much) lower score potential.
	tb.get(event.ID{Lo: 2}).fwd = 100
	evicted := tb.insert(mkEvent(3, ".a", time.Minute), 2*time.Second)
	if evicted == nil || evicted.ev.ID.Lo != 1 {
		t.Fatalf("evicted = %+v, want expired event 1", evicted)
	}
	if tb.len() != 2 {
		t.Fatalf("len = %d", tb.len())
	}
}

func TestGCEvictsLowestScore(t *testing.T) {
	tb := newEventTable(3)
	tb.insert(mkEvent(1, ".a", 2*time.Minute), 0)
	tb.insert(mkEvent(2, ".a", 5*time.Minute), 0)
	tb.insert(mkEvent(3, ".a", time.Minute), 0)
	tb.get(event.ID{Lo: 1}).fwd = 1
	tb.get(event.ID{Lo: 2}).fwd = 5 // lowest score per paper example
	tb.get(event.ID{Lo: 3}).fwd = 0
	evicted := tb.insert(mkEvent(4, ".a", time.Minute), time.Second)
	if evicted == nil || evicted.ev.ID.Lo != 2 {
		t.Fatalf("evicted %+v, want event 2", evicted)
	}
}

func TestGCNeverForwardedShortLivedSurvives(t *testing.T) {
	// A short-validity, never-forwarded event must outlive long-validity,
	// heavily-forwarded ones — that is the point of Equation 1.
	tb := newEventTable(2)
	tb.insert(mkEvent(1, ".a", 20*time.Second), 0)
	tb.insert(mkEvent(2, ".a", 10*time.Minute), 0)
	tb.get(event.ID{Lo: 2}).fwd = 12
	tb.insert(mkEvent(3, ".a", time.Minute), time.Second)
	if !tb.has(event.ID{Lo: 1}) {
		t.Fatal("short-lived unforwarded event was evicted")
	}
	if tb.has(event.ID{Lo: 2}) {
		t.Fatal("forwarded long-lived event should have been evicted")
	}
}

func TestTableCapacityInvariant(t *testing.T) {
	tb := newEventTable(5)
	rng := rand.New(rand.NewSource(1))
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += time.Duration(rng.Intn(3)) * time.Second
		ev := mkEvent(uint64(i+1), ".a", time.Duration(1+rng.Intn(300))*time.Second)
		tb.insert(ev, now)
		if tb.len() > 5 {
			t.Fatalf("table exceeded capacity: %d", tb.len())
		}
		if e := tb.get(ev.ID); e != nil {
			e.fwd = rng.Intn(10)
		}
	}
	if tb.len() != 5 {
		t.Fatalf("len = %d, want 5", tb.len())
	}
}

func TestIDsMatching(t *testing.T) {
	tb := newEventTable(0)
	tb.insert(mkEvent(1, ".t0.t1", time.Minute), 0)
	tb.insert(mkEvent(2, ".t0.t1.t2", time.Minute), 0)
	tb.insert(mkEvent(3, ".x", time.Minute), 0)
	tb.insert(mkEvent(4, ".t0.t1", time.Second), 0) // expires at 1s

	subs := topic.NewSet(topic.MustParse(".t0.t1"))
	ids := tb.idsMatching(subs, 30*time.Second)
	if len(ids) != 2 {
		t.Fatalf("ids = %v, want events 1 and 2", ids)
	}
	if ids[0].Lo != 1 || ids[1].Lo != 2 {
		t.Fatalf("ids unsorted or wrong: %v", ids)
	}

	// Sub-topic subscriber sees only the subtree.
	deep := topic.NewSet(topic.MustParse(".t0.t1.t2"))
	ids = tb.idsMatching(deep, 0)
	if len(ids) != 1 || ids[0].Lo != 2 {
		t.Fatalf("deep ids = %v", ids)
	}

	// Overlapping subscriptions must not duplicate ids.
	both := topic.NewSet(topic.MustParse(".t0"), topic.MustParse(".t0.t1"))
	if got := tb.idsMatching(both, 0); len(got) != 3 {
		t.Fatalf("dedup failed: %v", got)
	}
}

func TestValidEntriesSortedAndFiltered(t *testing.T) {
	tb := newEventTable(0)
	tb.insert(mkEvent(3, ".a", time.Minute), 0)
	tb.insert(mkEvent(1, ".a", time.Minute), 0)
	tb.insert(mkEvent(2, ".a", time.Second), 0)
	got := tb.validEntries(30 * time.Second)
	if len(got) != 2 {
		t.Fatalf("valid = %d, want 2", len(got))
	}
	// storedAt ties: ordered by id.
	if got[0].ev.ID.Lo != 3 && got[0].ev.ID.Lo != 1 {
		t.Fatalf("unexpected entry %v", got[0].ev.ID)
	}
}

func TestGarbageCollectEmptyTable(t *testing.T) {
	tb := newEventTable(1)
	if v := tb.garbageCollect(0); v != nil {
		t.Fatal("GC on empty table returned a victim")
	}
}

func TestRemoveAlsoPrunesTree(t *testing.T) {
	tb := newEventTable(0)
	ev := mkEvent(1, ".a.b", time.Minute)
	tb.insert(ev, 0)
	tb.remove(tb.get(ev.ID))
	if tb.has(ev.ID) || tb.len() != 0 {
		t.Fatal("remove left byID entry")
	}
	ids := tb.idsMatching(topic.NewSet(topic.MustParse(".a")), 0)
	if len(ids) != 0 {
		t.Fatalf("tree still lists removed event: %v", ids)
	}
}

func TestGCDeterministicTieBreak(t *testing.T) {
	run := func() uint64 {
		tb := newEventTable(3)
		for i := uint64(1); i <= 3; i++ {
			tb.insert(mkEvent(i, ".a", time.Minute), 0)
		}
		v := tb.garbageCollect(time.Second)
		return v.ev.ID.Lo
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("GC tie-break nondeterministic: %d vs %d", a, b)
	}
	if a != 1 {
		t.Fatalf("tie should break on lowest id, got %d", a)
	}
}
