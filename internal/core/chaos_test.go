package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// chaosBus is a hostile transport: it drops, duplicates and reorders
// messages randomly. The protocol must stay safe (no panics, no double
// deliveries, no parasite deliveries) and — because every exchange is
// retried on future encounters — still make progress at moderate loss.
type chaosBus struct {
	h        *harness
	from     event.NodeID
	rng      *rand.Rand
	dropP    float64
	dupP     float64
	maxDelay time.Duration
}

func (b *chaosBus) Broadcast(m event.Message) {
	for _, id := range b.h.ids {
		if id == b.from {
			continue
		}
		if b.rng.Float64() < b.dropP {
			continue
		}
		copies := 1
		if b.rng.Float64() < b.dupP {
			copies = 2
		}
		p := b.h.protos[id]
		for c := 0; c < copies; c++ {
			delay := time.Millisecond + time.Duration(b.rng.Int63n(int64(b.maxDelay)))
			b.h.eng.After(delay, func() { _ = p.HandleMessage(m) })
		}
	}
}

// addChaosNode is addNode with a chaosBus transport.
func addChaosNode(h *harness, id event.NodeID, dropP, dupP float64) *Protocol {
	h.t.Helper()
	cfg := Config{
		ID:           id,
		HBDelay:      time.Second,
		HBUpperBound: time.Second,
		Rand:         rand.New(rand.NewSource(int64(id) + 900)),
		OnDeliver: func(ev event.Event) {
			h.deliv[id] = append(h.deliv[id], ev)
		},
	}
	bus := &chaosBus{
		h:        h,
		from:     id,
		rng:      rand.New(rand.NewSource(int64(id) + 1700)),
		dropP:    dropP,
		dupP:     dupP,
		maxDelay: 200 * time.Millisecond,
	}
	p, err := New(cfg, simSched{h.eng}, bus)
	if err != nil {
		h.t.Fatal(err)
	}
	h.protos[id] = p
	h.ids = append(h.ids, id)
	return p
}

func TestChaosLossDupReorder(t *testing.T) {
	h := newHarness(t, 77)
	const n = 6
	for id := event.NodeID(1); id <= n; id++ {
		p := addChaosNode(h, id, 0.3, 0.3)
		if err := p.Subscribe(topic.MustParse(".t")); err != nil {
			t.Fatal(err)
		}
	}
	h.runUntil(5)
	ids := make([]event.ID, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := h.protos[1].Publish(topic.MustParse(".t"), nil, 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	h.runUntil(120)

	// Safety: nobody delivered any event twice.
	for node, evs := range h.deliv {
		seen := make(map[event.ID]bool)
		for _, ev := range evs {
			if seen[ev.ID] {
				t.Fatalf("node %v delivered %v twice under chaos", node, ev.ID)
			}
			seen[ev.ID] = true
		}
	}
	// Liveness: with 30% loss but continuous re-encounters, everyone
	// eventually converges (heartbeat/id exchange retries heal losses).
	for node := event.NodeID(2); node <= n; node++ {
		for _, id := range ids {
			if !h.protos[node].HasEvent(id) {
				t.Fatalf("node %v missing event %v after 120s of chaos", node, id)
			}
		}
	}
}

func TestChaosHeavyLossStaysSafe(t *testing.T) {
	// 90% loss: progress is not guaranteed, but invariants must hold and
	// nothing may panic.
	h := newHarness(t, 78)
	for id := event.NodeID(1); id <= 4; id++ {
		p := addChaosNode(h, id, 0.9, 0.5)
		sub := ".t"
		if id == 4 {
			sub = ".other" // a parasite observer
		}
		if err := p.Subscribe(topic.MustParse(sub)); err != nil {
			t.Fatal(err)
		}
	}
	h.runUntil(3)
	if _, err := h.protos[1].Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(90)
	if len(h.deliv[4]) != 0 {
		t.Fatal("parasite delivered under chaos")
	}
	for id := event.NodeID(1); id <= 4; id++ {
		st := h.protos[id].Stats()
		// Deliveries come from received events plus local self-delivery
		// of own publications (at most Published of those).
		fromWire := st.Delivered + st.Duplicates + st.Parasites + st.ExpiredDrops
		if fromWire < st.EventsReceived || fromWire > st.EventsReceived+st.Published {
			t.Fatalf("node %v counter identity broken: %+v", id, st)
		}
	}
}
