package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/topic"
)

// ---- test harness: a zero-loss broadcast bus on the sim engine ----

type simSched struct{ eng *sim.Engine }

func (s simSched) Now() time.Duration { return s.eng.Now().Duration() }
func (s simSched) After(d time.Duration, fn func()) Timer {
	return s.eng.After(d, fn)
}

type loggedMsg struct {
	at   sim.Time
	from event.NodeID
	msg  event.Message
}

type harness struct {
	t      *testing.T
	eng    *sim.Engine
	ids    []event.NodeID
	protos map[event.NodeID]*Protocol
	down   map[[2]event.NodeID]bool // severed links (default: all up)
	msgs   []loggedMsg
	deliv  map[event.NodeID][]event.Event
}

func newHarness(t *testing.T, seed int64) *harness {
	return &harness{
		t:      t,
		eng:    sim.New(seed),
		protos: make(map[event.NodeID]*Protocol),
		down:   make(map[[2]event.NodeID]bool),
		deliv:  make(map[event.NodeID][]event.Event),
	}
}

func linkKey(a, b event.NodeID) [2]event.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]event.NodeID{a, b}
}

// setLink connects or severs the (symmetric) link between a and b.
func (h *harness) setLink(a, b event.NodeID, up bool) {
	if up {
		delete(h.down, linkKey(a, b))
	} else {
		h.down[linkKey(a, b)] = true
	}
}

type busTransport struct {
	h    *harness
	from event.NodeID
}

func (b busTransport) Broadcast(m event.Message) {
	h := b.h
	h.msgs = append(h.msgs, loggedMsg{at: h.eng.Now(), from: b.from, msg: m})
	for _, id := range h.ids {
		if id == b.from || h.down[linkKey(b.from, id)] {
			continue
		}
		p := h.protos[id]
		h.eng.After(time.Millisecond, func() { _ = p.HandleMessage(m) })
	}
}

// addNode creates a protocol with a 1s heartbeat and subscribes it to the
// given topics.
func (h *harness) addNode(id event.NodeID, cfg Config, subs ...string) *Protocol {
	h.t.Helper()
	cfg.ID = id
	if cfg.HBDelay == 0 {
		cfg.HBDelay = time.Second
		cfg.HBUpperBound = time.Second
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(int64(id) + 100))
	}
	prev := cfg.OnDeliver
	cfg.OnDeliver = func(ev event.Event) {
		h.deliv[id] = append(h.deliv[id], ev)
		if prev != nil {
			prev(ev)
		}
	}
	p, err := New(cfg, simSched{h.eng}, busTransport{h: h, from: id})
	if err != nil {
		h.t.Fatalf("New(%v): %v", id, err)
	}
	h.protos[id] = p
	h.ids = append(h.ids, id)
	for _, s := range subs {
		if err := p.Subscribe(topic.MustParse(s)); err != nil {
			h.t.Fatalf("Subscribe: %v", err)
		}
	}
	return p
}

func (h *harness) runUntil(sec float64) { h.eng.RunUntil(sim.Seconds(sec)) }

// eventsMsgsFrom counts Events messages broadcast by id after a cutoff.
func (h *harness) eventsMsgsFrom(id event.NodeID, after sim.Time) int {
	n := 0
	for _, lm := range h.msgs {
		if lm.from == id && lm.at >= after && lm.msg.Kind() == event.KindEvents {
			n++
		}
	}
	return n
}

// ---- tests ----

func TestDiscovery(t *testing.T) {
	h := newHarness(t, 1)
	p1 := h.addNode(1, Config{}, ".t")
	p2 := h.addNode(2, Config{}, ".t")
	h.runUntil(3)
	if ids := p1.NeighborIDs(); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("p1 neighbors = %v", ids)
	}
	if ids := p2.NeighborIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("p2 neighbors = %v", ids)
	}
	if p1.Stats().HeartbeatsSent == 0 {
		t.Fatal("no heartbeats sent")
	}
}

func TestNoDiscoveryWithoutOverlap(t *testing.T) {
	h := newHarness(t, 2)
	p1 := h.addNode(1, Config{}, ".a")
	p2 := h.addNode(2, Config{}, ".b")
	h.runUntil(5)
	if len(p1.NeighborIDs()) != 0 || len(p2.NeighborIDs()) != 0 {
		t.Fatal("non-overlapping subscribers stored each other")
	}
}

func TestSubtopicOverlapDiscovery(t *testing.T) {
	// .t0.t1 and .t0.t1.t2 overlap (Fig 1); .t0.t1 and .t0.t9 do not.
	h := newHarness(t, 3)
	p1 := h.addNode(1, Config{}, ".t0.t1")
	p2 := h.addNode(2, Config{}, ".t0.t1.t2")
	p3 := h.addNode(3, Config{}, ".t0.t9")
	h.runUntil(3)
	if ids := p1.NeighborIDs(); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("p1 neighbors = %v, want [2]", ids)
	}
	if len(p3.NeighborIDs()) != 0 {
		t.Fatalf("p3 neighbors = %v, want none", p3.NeighborIDs())
	}
	_ = p2
}

func TestEventTransferToLateJoiner(t *testing.T) {
	h := newHarness(t, 4)
	p1 := h.addNode(1, Config{}, ".t")
	id, err := p1.Publish(topic.MustParse(".t"), []byte("x"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// No neighbors at publish time: nothing on the wire.
	if p1.Stats().EventMsgsSent != 0 {
		t.Fatal("publish without neighbors should not broadcast")
	}
	p2 := h.addNode(2, Config{}, ".t")
	h.runUntil(10)
	if !p2.HasEvent(id) {
		t.Fatal("late joiner never received the event")
	}
	if got := len(h.deliv[2]); got != 1 {
		t.Fatalf("p2 deliveries = %d, want 1", got)
	}
	if h.deliv[2][0].ID != id || h.deliv[2][0].Publisher != 1 {
		t.Fatalf("delivered = %+v", h.deliv[2][0])
	}
	if p2.Stats().Duplicates != 0 {
		t.Fatalf("duplicates = %d", p2.Stats().Duplicates)
	}
}

func TestFig1Scenario(t *testing.T) {
	// Paper Figure 1: T1 subtopic of T0, T2 subtopic of T1.
	// p1 subscribes T1 and holds e3(T1); p2 subscribes T2 and holds
	// e4,e5 (T2); p3 subscribes T0.
	h := newHarness(t, 5)
	p1 := h.addNode(1, Config{}, ".T0.T1")
	p2 := h.addNode(2, Config{}, ".T0.T1.T2")

	e3, _ := p1.Publish(topic.MustParse(".T0.T1"), nil, time.Hour)
	e4, _ := p2.Publish(topic.MustParse(".T0.T1.T2"), nil, time.Hour)
	e5, _ := p2.Publish(topic.MustParse(".T0.T1.T2"), nil, time.Hour)

	// Part I: p1 and p2 exchange; p1 must obtain e4, e5 (T2 under T1);
	// p2 must NOT obtain e3 (T1 is a super-topic of its subscription).
	h.runUntil(8)
	if !p1.HasEvent(e4) || !p1.HasEvent(e5) {
		t.Fatal("p1 missing subtopic events e4/e5")
	}
	if p2.HasEvent(e3) {
		t.Fatal("p2 received super-topic event e3")
	}

	// Part II: p3 (subscribed to the root topic T0) joins and must
	// collect all three events.
	p3 := h.addNode(3, Config{}, ".T0")
	h.runUntil(20)
	for _, id := range []event.ID{e3, e4, e5} {
		if !p3.HasEvent(id) {
			t.Fatalf("p3 missing event %v", id)
		}
	}
	if got := len(h.deliv[3]); got != 3 {
		t.Fatalf("p3 deliveries = %d, want 3", got)
	}
}

func TestSuppressionOnOverhear(t *testing.T) {
	// p1 holds {e1,e2}, p2 holds {e1}. When p3 joins, p1 (more events,
	// shorter back-off) fires first; p2 overhears and cancels its own
	// send entirely (paper Fig 1 part III).
	h := newHarness(t, 6)
	p1 := h.addNode(1, Config{}, ".t")
	p2 := h.addNode(2, Config{}, ".t")
	h.runUntil(3)

	e1, _ := p1.Publish(topic.MustParse(".t"), nil, time.Hour)
	h.runUntil(3.5) // p2 receives e1 via the publish broadcast
	if !p2.HasEvent(e1) {
		t.Fatal("setup: p2 must hold e1")
	}
	h.setLink(1, 2, false)
	h.runUntil(4)
	e2, _ := p1.Publish(topic.MustParse(".t"), nil, time.Hour)
	h.runUntil(9) // NGC clears stale entries on both sides
	h.setLink(1, 2, true)

	joinAt := h.eng.Now()
	p3 := h.addNode(3, Config{}, ".t")
	h.runUntil(15)

	if !p3.HasEvent(e1) || !p3.HasEvent(e2) {
		t.Fatal("p3 did not receive both events")
	}
	if n := h.eventsMsgsFrom(2, joinAt); n != 0 {
		t.Fatalf("p2 sent %d Events messages despite suppression", n)
	}
	// p1 may legitimately fire once per trigger (p2's id list, p3's id
	// list) but no more: anything beyond 2 would mean suppression or
	// presumed-received tracking is broken.
	if n := h.eventsMsgsFrom(1, joinAt); n < 1 || n > 2 {
		t.Fatalf("p1 sent %d Events messages, want 1 or 2", n)
	}
	if d := p3.Stats().Duplicates; d > 1 {
		t.Fatalf("p3 duplicates = %d, want at most 1", d)
	}
}

func TestBackoffFavorsLargerHoldings(t *testing.T) {
	// p1 holds 3 events, p2 holds 1 (disjoint); the first Events message
	// after p3 joins must come from p1 (back-off ~ 1/|eventsToSend|).
	h := newHarness(t, 7)
	p1 := h.addNode(1, Config{}, ".t")
	p2 := h.addNode(2, Config{}, ".t")
	h.setLink(1, 2, false) // keep holdings disjoint
	for i := 0; i < 3; i++ {
		if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p2.Publish(topic.MustParse(".t"), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	h.runUntil(9)

	joinAt := h.eng.Now()
	p3 := h.addNode(3, Config{}, ".t")
	h.runUntil(20)

	var first *loggedMsg
	for i := range h.msgs {
		lm := h.msgs[i]
		if lm.at > joinAt && lm.msg.Kind() == event.KindEvents {
			first = &lm
			break
		}
	}
	if first == nil {
		t.Fatal("no Events message after join")
	}
	if first.from != 1 {
		t.Fatalf("first sender = %v, want p1 (larger holding)", first.from)
	}
	if got := len(h.deliv[3]); got != 4 {
		t.Fatalf("p3 deliveries = %d, want 4", got)
	}
	_ = p3
}

func TestDuplicateCountedOnce(t *testing.T) {
	// p1 and p2 both hold e; both fire at the same deadline for p3, so
	// p3 receives e twice: one delivery, one duplicate.
	h := newHarness(t, 8)
	p1 := h.addNode(1, Config{}, ".t")
	h.addNode(2, Config{}, ".t")
	h.runUntil(3)
	_, err := p1.Publish(topic.MustParse(".t"), nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(4)

	p3 := h.addNode(3, Config{}, ".t")
	h.runUntil(12)

	st := p3.Stats()
	if st.Delivered != 1 {
		t.Fatalf("p3 delivered = %d, want 1", st.Delivered)
	}
	if len(h.deliv[3]) != 1 {
		t.Fatalf("p3 OnDeliver calls = %d, want 1", len(h.deliv[3]))
	}
	if st.Delivered+st.Duplicates != st.EventsReceived-st.Parasites-st.ExpiredDrops {
		t.Fatalf("counter identity violated: %+v", st)
	}
}

func TestParasiteEventsDroppedNotDelivered(t *testing.T) {
	// p4 subscribes an unrelated topic: it overhears Events frames on
	// the shared medium but must never deliver them.
	h := newHarness(t, 9)
	p1 := h.addNode(1, Config{}, ".t")
	h.addNode(2, Config{}, ".t")
	p4 := h.addNode(4, Config{}, ".other")
	h.runUntil(3)
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	h.runUntil(10)

	st := p4.Stats()
	if st.Parasites == 0 {
		t.Fatal("p4 should have overheard parasite events")
	}
	if st.Delivered != 0 || len(h.deliv[4]) != 0 {
		t.Fatal("parasite events must not be delivered")
	}
	if p4.HasEvent(h.deliv[2][0].ID) {
		t.Fatal("parasite events must not be stored")
	}
}

func TestExpiredEventsNotDisseminated(t *testing.T) {
	h := newHarness(t, 10)
	p1 := h.addNode(1, Config{}, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Second); err != nil {
		t.Fatal(err)
	}
	h.runUntil(5) // validity long gone
	h.addNode(2, Config{}, ".t")
	h.runUntil(15)
	if got := len(h.deliv[2]); got != 0 {
		t.Fatalf("expired event delivered %d times", got)
	}
	if p1.Stats().EventMsgsSent != 0 {
		t.Fatal("expired event was put on the wire")
	}
}

func TestHeartbeatDelayAdaptsToSpeed(t *testing.T) {
	h := newHarness(t, 11)
	cfg := Config{
		HBDelay:      time.Second,
		HBUpperBound: 10 * time.Second, // leave room for adaptation
		Speed:        func() float64 { return 20 },
	}
	p1 := h.addNode(1, cfg, ".t")
	p2 := h.addNode(2, cfg, ".t")
	h.runUntil(5)
	// x/avgSpeed = 40/20 = 2s for both.
	if got := p1.HBDelay(); got != 2*time.Second {
		t.Fatalf("p1 HBDelay = %v, want 2s", got)
	}
	if got := p2.NGCDelay(); got != 5*time.Second {
		t.Fatalf("p2 NGCDelay = %v, want 5s (2s * 2.5)", got)
	}
}

func TestHeartbeatUpperBoundClamps(t *testing.T) {
	h := newHarness(t, 12)
	cfg := Config{
		HBDelay:      15 * time.Second,
		HBUpperBound: time.Second,
		Speed:        func() float64 { return 1 }, // x/speed = 40s >> bound
	}
	p1 := h.addNode(1, cfg, ".t")
	h.addNode(2, cfg, ".t")
	h.runUntil(5)
	if got := p1.HBDelay(); got != time.Second {
		t.Fatalf("HBDelay = %v, want clamped 1s", got)
	}
}

func TestUnsubscribeStopsTasks(t *testing.T) {
	h := newHarness(t, 13)
	p1 := h.addNode(1, Config{}, ".t")
	h.addNode(2, Config{}, ".t")
	h.runUntil(5)
	p1.Unsubscribe(topic.MustParse(".t"))
	sent := p1.Stats().HeartbeatsSent
	h.runUntil(15)
	if got := p1.Stats().HeartbeatsSent; got > sent+1 {
		t.Fatalf("heartbeats kept flowing after unsubscribe: %d -> %d", sent, got)
	}
}

func TestNeighborhoodGCRemovesDeparted(t *testing.T) {
	h := newHarness(t, 14)
	p1 := h.addNode(1, Config{}, ".t")
	h.addNode(2, Config{}, ".t")
	h.runUntil(3)
	if len(p1.NeighborIDs()) != 1 {
		t.Fatal("setup: discovery failed")
	}
	h.setLink(1, 2, false)
	h.runUntil(10) // several NGC periods (2.5s each)
	if len(p1.NeighborIDs()) != 0 {
		t.Fatal("departed neighbor was not garbage collected")
	}
	if p1.Stats().NeighborsGCed == 0 {
		t.Fatal("NeighborsGCed counter not incremented")
	}
}

func TestPublishValidation(t *testing.T) {
	h := newHarness(t, 15)
	p := h.addNode(1, Config{}, ".t")
	if _, err := p.Publish(topic.Topic{}, nil, time.Minute); err == nil {
		t.Fatal("zero topic accepted")
	}
	if _, err := p.Publish(topic.MustParse(".t"), nil, 0); err == nil {
		t.Fatal("zero validity accepted")
	}
	if _, err := p.Publish(topic.MustParse(".t"), nil, -time.Second); err == nil {
		t.Fatal("negative validity accepted")
	}
}

func TestPublisherDeliversLocally(t *testing.T) {
	h := newHarness(t, 16)
	p := h.addNode(1, Config{}, ".t")
	id, err := p.Publish(topic.MustParse(".t"), []byte("self"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.deliv[1]) != 1 || h.deliv[1][0].ID != id {
		t.Fatalf("publisher deliveries = %v", h.deliv[1])
	}
	// A publisher not subscribed to the topic does not self-deliver.
	p9 := h.addNode(9, Config{}, ".elsewhere")
	if _, err := p9.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(h.deliv[9]) != 0 {
		t.Fatal("unsubscribed publisher self-delivered")
	}
}

func TestStopSilencesNode(t *testing.T) {
	h := newHarness(t, 17)
	p1 := h.addNode(1, Config{}, ".t")
	h.addNode(2, Config{}, ".t")
	h.runUntil(3)
	p1.Stop()
	hb := p1.Stats().HeartbeatsSent
	h.runUntil(10)
	if p1.Stats().HeartbeatsSent != hb {
		t.Fatal("stopped node kept heartbeating")
	}
	if err := p1.Subscribe(topic.MustParse(".x")); err == nil {
		t.Fatal("Subscribe after Stop should fail")
	}
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err == nil {
		t.Fatal("Publish after Stop should fail")
	}
}

func TestHandleUnknownMessage(t *testing.T) {
	h := newHarness(t, 18)
	p := h.addNode(1, Config{}, ".t")
	type weird struct{ event.Heartbeat }
	if err := p.HandleMessage(weird{}); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ID: 1, X: -1},
		{ID: 1, HBDelay: -time.Second},
		{ID: 1, HBLowerBound: 2 * time.Second, HBUpperBound: time.Second},
		{ID: 1, MaxEvents: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, simSched{sim.New(1)}, busTransport{}); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if _, err := New(Config{ID: 1}, nil, nil); err == nil {
		t.Fatal("nil scheduler/transport accepted")
	}
}

func TestEventTableCapacityTriggersGC(t *testing.T) {
	h := newHarness(t, 19)
	cfg := Config{MaxEvents: 5}
	p1 := h.addNode(1, cfg, ".t")
	for i := 0; i < 10; i++ {
		if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if got := p1.EventCount(); got != 5 {
		t.Fatalf("table size = %d, want 5", got)
	}
	if p1.Stats().TableEvictions != 5 {
		t.Fatalf("evictions = %d, want 5", p1.Stats().TableEvictions)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() []Stats {
		h := newHarness(t, 42)
		for id := event.NodeID(1); id <= 5; id++ {
			h.addNode(id, Config{}, ".t")
		}
		h.runUntil(2)
		if _, err := h.protos[1].Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
			t.Fatal(err)
		}
		h.runUntil(30)
		var out []Stats
		for id := event.NodeID(1); id <= 5; id++ {
			out = append(out, h.protos[id].Stats())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d stats diverged:\n%+v\n%+v", i+1, a[i], b[i])
		}
	}
}

func TestResubscribeRestartsHeartbeat(t *testing.T) {
	h := newHarness(t, 20)
	p1 := h.addNode(1, Config{}, ".t")
	h.runUntil(3)
	p1.Unsubscribe(topic.MustParse(".t"))
	h.runUntil(6)
	if err := p1.Subscribe(topic.MustParse(".t")); err != nil {
		t.Fatal(err)
	}
	before := p1.Stats().HeartbeatsSent
	h.runUntil(12)
	if p1.Stats().HeartbeatsSent <= before {
		t.Fatal("heartbeat did not restart after resubscribe")
	}
}
