// Package core implements the paper's frugal topic-based
// publish/subscribe protocol for mobile ad-hoc networks (Baehni, Chhabra,
// Guerraoui — Middleware 2005, Section 4).
//
// The protocol runs directly on a one-hop broadcast medium and goes
// through three phases:
//
//  1. Neighborhood detection: periodic heartbeats carry the node's
//     subscriptions and (optionally) its speed; nodes with overlapping
//     subscriptions exchange the identifiers of the valid events they
//     hold. The heartbeat period adapts to the average neighbor speed.
//  2. Dissemination: a node that knows a matching neighbor misses an
//     event broadcasts it after a back-off inversely proportional to the
//     number of events to send; overhearing the event for someone else
//     cancels one's own pending send.
//  3. Garbage collection: neighborhood entries expire after a multiple of
//     the heartbeat period; when the bounded event table is full, the
//     event minimizing val(e)/(fwd(e)+val(e)) is evicted (expired events
//     first).
//
// The protocol is transport-agnostic: it talks to the outside world only
// through the small Clock/Scheduler/Transport interfaces, so the same
// code runs on the discrete-event simulator (internal/netsim) and on real
// time (examples/inprocess).
//
// Concurrency contract: a Protocol instance is single-threaded. All entry
// points (Subscribe, Publish, HandleMessage, timer callbacks scheduled via
// the Scheduler) must be invoked serially. Wrap a Protocol in Safe for use
// from multiple goroutines.
package core

import (
	"repro/internal/proto"
)

// The protocol-facing interfaces and the shared counters live in
// internal/proto (the protocol layer's neutral ground, shared with the
// flooding/gossip baselines and the registry); these aliases keep the
// historical core-qualified names working for deployments and tests.

// Timer is a cancellable pending callback, as returned by Scheduler.After.
type Timer = proto.Timer

// Scheduler abstracts time for the protocol: the simulator provides
// virtual time, real deployments provide the wall clock.
type Scheduler = proto.Scheduler

// Transport is the one-hop broadcast primitive of the underlying MAC
// layer. Broadcast must not call back into the Protocol synchronously
// with a received message on a real concurrent transport; the simulator's
// in-order delivery is fine because everything stays on one logical
// thread.
type Transport = proto.Transport

// Stats counts protocol activity; all counters are cumulative since
// creation. Snapshot via Protocol.Stats.
type Stats = proto.Stats
