package core

import (
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// Safe wraps a Protocol for concurrent use: every entry point — including
// the timer callbacks the protocol schedules for itself — runs under one
// mutex, satisfying the single-threaded contract on a real transport
// where the network, timers and application live on different goroutines.
//
// Caveats: Config.OnDeliver is invoked with the lock held, so it must not
// call back into the protocol; hand off to a channel instead.
type Safe struct {
	mu sync.Mutex
	p  *Protocol
}

// NewSafe builds a mutex-guarded protocol on the given scheduler and
// transport. The scheduler's callbacks are automatically serialized; the
// transport may deliver from any goroutine via HandleMessage.
func NewSafe(cfg Config, sched Scheduler, tr Transport) (*Safe, error) {
	s := &Safe{}
	p, err := New(cfg, &lockedScheduler{mu: &s.mu, inner: sched}, tr)
	if err != nil {
		return nil, err
	}
	s.p = p
	return s, nil
}

// lockedScheduler wraps scheduled callbacks with the Safe mutex.
type lockedScheduler struct {
	mu    *sync.Mutex
	inner Scheduler
}

func (l *lockedScheduler) Now() time.Duration { return l.inner.Now() }

func (l *lockedScheduler) After(d time.Duration, fn func()) Timer {
	return l.inner.After(d, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		fn()
	})
}

// Subscribe is a thread-safe Protocol.Subscribe.
func (s *Safe) Subscribe(t topic.Topic) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Subscribe(t)
}

// Unsubscribe is a thread-safe Protocol.Unsubscribe.
func (s *Safe) Unsubscribe(t topic.Topic) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.Unsubscribe(t)
}

// Publish is a thread-safe Protocol.Publish.
func (s *Safe) Publish(t topic.Topic, payload []byte, validity time.Duration) (event.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Publish(t, payload, validity)
}

// HandleMessage is a thread-safe Protocol.HandleMessage.
func (s *Safe) HandleMessage(m event.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.HandleMessage(m)
}

// Stats is a thread-safe Protocol.Stats.
func (s *Safe) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Stats()
}

// Stop is a thread-safe Protocol.Stop.
func (s *Safe) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.Stop()
}

// NeighborIDs is a thread-safe Protocol.NeighborIDs.
func (s *Safe) NeighborIDs() []event.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.NeighborIDs()
}

// HasEvent is a thread-safe Protocol.HasEvent.
func (s *Safe) HasEvent(id event.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.HasEvent(id)
}
