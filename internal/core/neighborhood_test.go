package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

func subsOf(names ...string) *topic.Set {
	s := topic.NewSet()
	for _, n := range names {
		s.Add(topic.MustParse(n))
	}
	return s
}

func TestNeighborhoodUpsert(t *testing.T) {
	nh := newNeighborhood(0)
	isNew, changed := nh.upsert(1, subsOf(".a"), 5, 0)
	if !isNew || changed {
		t.Fatalf("first upsert: new=%v changed=%v", isNew, changed)
	}
	// Refresh with same subs: neither new nor changed.
	isNew, changed = nh.upsert(1, subsOf(".a"), 7, time.Second)
	if isNew || changed {
		t.Fatalf("refresh: new=%v changed=%v", isNew, changed)
	}
	if nh.get(1).speed != 7 || nh.get(1).storedAt != time.Second {
		t.Fatal("refresh did not update row")
	}
	// Changed subscriptions detected.
	_, changed = nh.upsert(1, subsOf(".a", ".b"), 7, 2*time.Second)
	if !changed {
		t.Fatal("subscription change not detected")
	}
}

func TestNeighborhoodHasSurvivesRefresh(t *testing.T) {
	nh := newNeighborhood(0)
	nh.upsert(1, subsOf(".a"), -1, 0)
	id := event.ID{Lo: 9}
	nh.get(1).markHas(id)
	nh.upsert(1, subsOf(".a"), -1, time.Second)
	if !nh.get(1).knows(id) {
		t.Fatal("presumed-received set lost on heartbeat refresh")
	}
}

func TestNeighborhoodGC(t *testing.T) {
	nh := newNeighborhood(0)
	nh.upsert(1, subsOf(".a"), -1, 0)
	nh.upsert(2, subsOf(".a"), -1, 4*time.Second)
	// NGC delay 2.5s at now=5s: entry stored at 0 is stale (5-2.5 > 0),
	// entry stored at 4s survives.
	removed := nh.gc(5*time.Second, 2500*time.Millisecond)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if nh.get(1) != nil || nh.get(2) == nil {
		t.Fatal("wrong entry collected")
	}
}

func TestNeighborhoodGCBoundary(t *testing.T) {
	// Paper Figure 10: remove iff currentTime - NGCDelay > storeTime,
	// strictly. An entry stored exactly NGCDelay ago survives.
	nh := newNeighborhood(0)
	nh.upsert(1, subsOf(".a"), -1, 0)
	if removed := nh.gc(2*time.Second, 2*time.Second); removed != 0 {
		t.Fatal("boundary entry must survive")
	}
}

func TestNeighborhoodCapEvictsStalest(t *testing.T) {
	nh := newNeighborhood(2)
	nh.upsert(1, subsOf(".a"), -1, 0)
	nh.upsert(2, subsOf(".a"), -1, time.Second)
	nh.upsert(3, subsOf(".a"), -1, 2*time.Second)
	if nh.len() != 2 {
		t.Fatalf("len = %d, want 2", nh.len())
	}
	if nh.get(1) != nil {
		t.Fatal("stalest entry should have been evicted")
	}
	if nh.get(2) == nil || nh.get(3) == nil {
		t.Fatal("fresh entries missing")
	}
}

func TestAvgSpeed(t *testing.T) {
	nh := newNeighborhood(0)
	if _, ok := nh.avgSpeed(-1); ok {
		t.Fatal("no data should report !ok")
	}
	if avg, ok := nh.avgSpeed(10); !ok || avg != 10 {
		t.Fatalf("own-only avg = %v ok=%v", avg, ok)
	}
	nh.upsert(1, subsOf(".a"), 20, 0)
	nh.upsert(2, subsOf(".a"), -1, 0) // unknown speed ignored
	avg, ok := nh.avgSpeed(10)
	if !ok || math.Abs(avg-15) > 1e-9 {
		t.Fatalf("avg = %v, want 15", avg)
	}
	avg, ok = nh.avgSpeed(-1)
	if !ok || math.Abs(avg-20) > 1e-9 {
		t.Fatalf("avg without own = %v, want 20", avg)
	}
}

func TestNeighborhoodSortedOrder(t *testing.T) {
	nh := newNeighborhood(0)
	for _, id := range []event.NodeID{5, 1, 3} {
		nh.upsert(id, subsOf(".a"), -1, 0)
	}
	got := nh.sorted()
	if len(got) != 3 || got[0].id != 1 || got[1].id != 3 || got[2].id != 5 {
		t.Fatalf("sorted order wrong: %v %v %v", got[0].id, got[1].id, got[2].id)
	}
}
