package core

import (
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// neighbor is one row of the paper's neighborhood table (Figure 2):
// identity, subscriptions, presumed received events, speed and store time.
type neighbor struct {
	id       event.NodeID
	subs     *topic.Set
	speed    float64 // m/s, negative = unknown
	has      map[event.ID]struct{}
	storedAt time.Duration
}

func (n *neighbor) knows(id event.ID) bool {
	_, ok := n.has[id]
	return ok
}

func (n *neighbor) markHas(id event.ID) {
	if n.has == nil {
		n.has = make(map[event.ID]struct{})
	}
	n.has[id] = struct{}{}
}

// neighborhood is the dynamic one-hop neighbor table. Only neighbors with
// overlapping subscriptions are stored (paper Section 3, phase 1). Rows
// live in a slice kept sorted by id: the protocol iterates the table far
// more often than it inserts (every heartbeat, back-off expiry and send
// set walks it), and in a dense metro cell the per-call map-iterate+sort
// of a rebuild dominated the city-sweep profile. A lookup map indexes
// the same rows for the O(1) refresh path.
type neighborhood struct {
	max  int // 0 = unbounded
	m    map[event.NodeID]*neighbor
	rows []*neighbor // sorted by id; the canonical iteration order
}

func newNeighborhood(max int) *neighborhood {
	return &neighborhood{max: max, m: make(map[event.NodeID]*neighbor)}
}

func (nh *neighborhood) len() int { return len(nh.rows) }

func (nh *neighborhood) get(id event.NodeID) *neighbor { return nh.m[id] }

// rowIndex returns the position of id in rows (or where it would insert).
func (nh *neighborhood) rowIndex(id event.NodeID) int {
	return sort.Search(len(nh.rows), func(i int) bool { return nh.rows[i].id >= id })
}

func (nh *neighborhood) insertRow(n *neighbor) {
	i := nh.rowIndex(n.id)
	nh.rows = append(nh.rows, nil)
	copy(nh.rows[i+1:], nh.rows[i:])
	nh.rows[i] = n
}

func (nh *neighborhood) deleteRow(id event.NodeID) {
	i := nh.rowIndex(id)
	if i < len(nh.rows) && nh.rows[i].id == id {
		copy(nh.rows[i:], nh.rows[i+1:])
		nh.rows[len(nh.rows)-1] = nil
		nh.rows = nh.rows[:len(nh.rows)-1]
	}
}

// upsert implements UPDATENEIGHBORINFO: insert or refresh a neighbor row,
// reporting whether the neighbor is new and whether its subscriptions
// changed. The presumed-received set survives refreshes. When the table
// is full, the stalest row is evicted to admit the new one.
func (nh *neighborhood) upsert(id event.NodeID, subs *topic.Set, speed float64, now time.Duration) (isNew, subsChanged bool) {
	if n, ok := nh.m[id]; ok {
		subsChanged = !n.subs.Equal(subs)
		n.subs = subs
		n.speed = speed
		n.storedAt = now
		return false, subsChanged
	}
	if nh.max > 0 && len(nh.rows) >= nh.max {
		nh.evictStalest()
	}
	n := &neighbor{id: id, subs: subs, speed: speed, storedAt: now}
	nh.m[id] = n
	nh.insertRow(n)
	return true, false
}

func (nh *neighborhood) evictStalest() {
	var victim *neighbor
	for _, n := range nh.rows {
		if victim == nil || n.storedAt < victim.storedAt {
			victim = n // id ascending: first minimum wins ties
		}
	}
	if victim != nil {
		delete(nh.m, victim.id)
		nh.deleteRow(victim.id)
	}
}

func (nh *neighborhood) remove(id event.NodeID) {
	if _, ok := nh.m[id]; ok {
		delete(nh.m, id)
		nh.deleteRow(id)
	}
}

// gc implements the neighborhoodGC task (paper Figure 10): drop rows not
// refreshed within ngcDelay. It returns the number removed.
func (nh *neighborhood) gc(now, ngcDelay time.Duration) int {
	kept := nh.rows[:0]
	for _, n := range nh.rows {
		if now-ngcDelay > n.storedAt {
			delete(nh.m, n.id)
		} else {
			kept = append(kept, n)
		}
	}
	removed := len(nh.rows) - len(kept)
	for i := len(kept); i < len(nh.rows); i++ {
		nh.rows[i] = nil
	}
	nh.rows = kept
	return removed
}

// sorted returns the neighbor rows ordered by id for deterministic
// iteration. The returned slice is the table's live backing array:
// callers may read rows (and mutate row contents, e.g. markHas) but must
// not hold it across table mutations.
func (nh *neighborhood) sorted() []*neighbor {
	return nh.rows
}

// avgSpeed implements AVERAGESPEED over neighbors reporting a known
// speed; ok is false when no information is available.
func (nh *neighborhood) avgSpeed(ownSpeed float64) (avg float64, ok bool) {
	sum, n := 0.0, 0
	if ownSpeed >= 0 {
		sum, n = ownSpeed, 1
	}
	for _, nb := range nh.sorted() {
		if nb.speed >= 0 {
			sum += nb.speed
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
