package core

import (
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// neighbor is one row of the paper's neighborhood table (Figure 2):
// identity, subscriptions, presumed received events, speed and store time.
type neighbor struct {
	id       event.NodeID
	subs     *topic.Set
	speed    float64 // m/s, negative = unknown
	has      map[event.ID]struct{}
	storedAt time.Duration
}

func (n *neighbor) knows(id event.ID) bool {
	_, ok := n.has[id]
	return ok
}

func (n *neighbor) markHas(id event.ID) {
	if n.has == nil {
		n.has = make(map[event.ID]struct{})
	}
	n.has[id] = struct{}{}
}

// neighborhood is the dynamic one-hop neighbor table. Only neighbors with
// overlapping subscriptions are stored (paper Section 3, phase 1).
type neighborhood struct {
	max int // 0 = unbounded
	m   map[event.NodeID]*neighbor
}

func newNeighborhood(max int) *neighborhood {
	return &neighborhood{max: max, m: make(map[event.NodeID]*neighbor)}
}

func (nh *neighborhood) len() int { return len(nh.m) }

func (nh *neighborhood) get(id event.NodeID) *neighbor { return nh.m[id] }

// upsert implements UPDATENEIGHBORINFO: insert or refresh a neighbor row,
// reporting whether the neighbor is new and whether its subscriptions
// changed. The presumed-received set survives refreshes. When the table
// is full, the stalest row is evicted to admit the new one.
func (nh *neighborhood) upsert(id event.NodeID, subs *topic.Set, speed float64, now time.Duration) (isNew, subsChanged bool) {
	if n, ok := nh.m[id]; ok {
		subsChanged = !n.subs.Equal(subs)
		n.subs = subs
		n.speed = speed
		n.storedAt = now
		return false, subsChanged
	}
	if nh.max > 0 && len(nh.m) >= nh.max {
		nh.evictStalest()
	}
	nh.m[id] = &neighbor{id: id, subs: subs, speed: speed, storedAt: now}
	return true, false
}

func (nh *neighborhood) evictStalest() {
	var victim *neighbor
	for _, n := range nh.m {
		if victim == nil || n.storedAt < victim.storedAt ||
			(n.storedAt == victim.storedAt && n.id < victim.id) {
			victim = n
		}
	}
	if victim != nil {
		delete(nh.m, victim.id)
	}
}

func (nh *neighborhood) remove(id event.NodeID) { delete(nh.m, id) }

// gc implements the neighborhoodGC task (paper Figure 10): drop rows not
// refreshed within ngcDelay. It returns the number removed.
func (nh *neighborhood) gc(now, ngcDelay time.Duration) int {
	removed := 0
	for id, n := range nh.m {
		if now-ngcDelay > n.storedAt {
			delete(nh.m, id)
			removed++
		}
	}
	return removed
}

// sorted returns the neighbor rows ordered by id for deterministic
// iteration.
func (nh *neighborhood) sorted() []*neighbor {
	out := make([]*neighbor, 0, len(nh.m))
	for _, n := range nh.m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// avgSpeed implements AVERAGESPEED over neighbors reporting a known
// speed; ok is false when no information is available.
func (nh *neighborhood) avgSpeed(ownSpeed float64) (avg float64, ok bool) {
	sum, n := 0.0, 0
	if ownSpeed >= 0 {
		sum, n = ownSpeed, 1
	}
	for _, nb := range nh.sorted() {
		if nb.speed >= 0 {
			sum += nb.speed
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
