package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// wallScheduler is a real-time Scheduler for exercising Safe off the
// simulator.
type wallScheduler struct {
	start time.Time
}

func (w *wallScheduler) Now() time.Duration { return time.Since(w.start) }

func (w *wallScheduler) After(d time.Duration, fn func()) Timer {
	return wallTimer{t: time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

// chanTransport collects broadcasts on a channel.
type chanTransport struct {
	ch chan event.Message
}

func (c chanTransport) Broadcast(m event.Message) {
	select {
	case c.ch <- m:
	default:
	}
}

func TestSafeConcurrentUse(t *testing.T) {
	sched := &wallScheduler{start: time.Now()}
	tr := chanTransport{ch: make(chan event.Message, 1024)}
	s, err := NewSafe(Config{ID: 1, HBDelay: 5 * time.Millisecond, HBUpperBound: 5 * time.Millisecond}, sched, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Subscribe(topic.MustParse(".t")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Publisher goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := s.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
				t.Errorf("Publish: %v", err)
				return
			}
		}
	}()
	// Incoming-message goroutine simulating a remote peer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.HandleMessage(event.Heartbeat{
				From:          2,
				Subscriptions: []topic.Topic{topic.MustParse(".t")},
				Speed:         -1,
			})
			_ = s.HandleMessage(event.IDList{From: 2})
		}
	}()
	// Reader goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Stats()
			s.NeighborIDs()
		}
	}()
	wg.Wait()

	// Let a few heartbeat timers fire under the lock.
	time.Sleep(30 * time.Millisecond)
	st := s.Stats()
	if st.Published != 50 {
		t.Fatalf("published = %d, want 50", st.Published)
	}
	if ids := s.NeighborIDs(); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("neighbors = %v", ids)
	}
}

func TestSafeDelegation(t *testing.T) {
	sched := &wallScheduler{start: time.Now()}
	tr := chanTransport{ch: make(chan event.Message, 16)}
	s, err := NewSafe(Config{ID: 7}, sched, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	id, err := s.Publish(topic.MustParse(".a"), []byte("x"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasEvent(id) {
		t.Fatal("HasEvent false after Publish")
	}
	s.Unsubscribe(topic.MustParse(".a")) // no-op, must not panic
}
