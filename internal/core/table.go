package core

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// tableEntry is one stored event with its local bookkeeping (paper
// Figure 3: id, validity, counter, topic, data).
type tableEntry struct {
	ev        event.Event
	expiresAt time.Duration // local absolute expiry
	fwd       int           // times this node sent/forwarded the event
	storedAt  time.Duration
}

func (e *tableEntry) valid(now time.Duration) bool { return now < e.expiresAt }

// remaining returns the validity left at instant now.
func (e *tableEntry) remaining(now time.Duration) time.Duration {
	r := e.expiresAt - now
	if r < 0 {
		r = 0
	}
	return r
}

// gcScore implements the paper's Equation 1: gc(e) = val(e)/(fwd(e)+val(e))
// with val expressed in seconds. Lower scores are evicted first, so an
// event with a long validity that has been forwarded many times goes
// before a short-lived event that was never propagated.
func (e *tableEntry) gcScore() float64 {
	val := e.ev.Validity.Seconds()
	return val / (float64(e.fwd) + val)
}

// eventTable stores received/published events organized by topic (paper
// Figure 3), with capacity-triggered garbage collection.
type eventTable struct {
	cap    int // 0 = unbounded
	policy GCPolicy
	rng    *rand.Rand // for GCRandom; may be nil otherwise
	byID   map[event.ID]*tableEntry
	tree   topic.Tree[*tableEntry]
}

func newEventTable(capacity int) *eventTable {
	return &eventTable{cap: capacity, byID: make(map[event.ID]*tableEntry)}
}

func (t *eventTable) len() int { return len(t.byID) }

func (t *eventTable) has(id event.ID) bool {
	_, ok := t.byID[id]
	return ok
}

func (t *eventTable) get(id event.ID) *tableEntry { return t.byID[id] }

// insert stores ev, evicting via the GC policy when the table is full.
// It returns the evicted entry, if any. The caller guarantees ev is not
// already present.
func (t *eventTable) insert(ev event.Event, now time.Duration) *tableEntry {
	var evicted *tableEntry
	if t.cap > 0 && len(t.byID) >= t.cap {
		evicted = t.garbageCollect(now)
	}
	e := &tableEntry{
		ev:        ev,
		expiresAt: now + ev.Remaining,
		storedAt:  now,
	}
	t.byID[ev.ID] = e
	t.tree.Add(ev.Topic, e)
	return evicted
}

// garbageCollect removes and returns one entry following the paper's
// Figure 10: an expired event if one exists, otherwise the entry with the
// lowest gc score. Ties break on older storedAt, then on id, keeping runs
// deterministic. GCFIFO/GCRandom are ablation policies.
func (t *eventTable) garbageCollect(now time.Duration) *tableEntry {
	var victim *tableEntry
	for _, e := range t.byID {
		if !e.valid(now) {
			// An expired entry displaces any valid victim; among
			// expired entries the tie-break keeps runs deterministic.
			if victim == nil || victim.valid(now) || olderID(e, victim) {
				victim = e
			}
			continue
		}
		if victim != nil && !victim.valid(now) {
			continue // expired victims take precedence
		}
		if victim == nil || t.lessByPolicy(e, victim) {
			victim = e
		}
	}
	if victim != nil && t.policy == GCRandom && victim.valid(now) && t.rng != nil {
		victim = t.randomValid(now, victim)
	}
	if victim == nil {
		return nil
	}
	t.remove(victim)
	return victim
}

// lessByPolicy orders valid entries by eviction priority under the active
// policy.
func (t *eventTable) lessByPolicy(a, b *tableEntry) bool {
	if t.policy == GCFIFO {
		return olderID(a, b)
	}
	return less(a, b)
}

// randomValid picks a uniform random valid entry (GCRandom).
func (t *eventTable) randomValid(now time.Duration, fallback *tableEntry) *tableEntry {
	valid := t.validEntries(now)
	if len(valid) == 0 {
		return fallback
	}
	return valid[t.rng.Intn(len(valid))]
}

// less orders valid entries by eviction priority.
func less(a, b *tableEntry) bool {
	as, bs := a.gcScore(), b.gcScore()
	if as != bs {
		return as < bs
	}
	return olderID(a, b)
}

func olderID(a, b *tableEntry) bool {
	if a.storedAt != b.storedAt {
		return a.storedAt < b.storedAt
	}
	return a.ev.ID.Less(b.ev.ID)
}

func (t *eventTable) remove(e *tableEntry) {
	delete(t.byID, e.ev.ID)
	t.tree.RemoveFunc(e.ev.Topic, func(v *tableEntry) bool { return v == e })
}

// validEntries returns the still-valid entries sorted by id (stable
// iteration keeps outgoing messages deterministic).
func (t *eventTable) validEntries(now time.Duration) []*tableEntry {
	out := make([]*tableEntry, 0, len(t.byID))
	for _, e := range t.byID {
		if e.valid(now) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return olderID(out[i], out[j]) })
	return out
}

// idsMatching implements the paper's GETEVENTSIDS: identifiers of valid
// stored events whose topics are covered by subs. The topic tree prunes
// the walk to the relevant subtrees.
func (t *eventTable) idsMatching(subs *topic.Set, now time.Duration) []event.ID {
	seen := make(map[event.ID]bool)
	var out []event.ID
	for _, sub := range subs.Topics() {
		t.tree.WalkSubtree(sub, func(_ topic.Topic, e *tableEntry) bool {
			if e.valid(now) && !seen[e.ev.ID] {
				seen[e.ev.ID] = true
				out = append(out, e.ev.ID)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
