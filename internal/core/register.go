package core

import (
	"fmt"
	"time"

	"repro/internal/proto"
)

// ProtocolName is the frugal protocol's registry key.
const ProtocolName = "frugal"

// Tuning is the frugal protocol's registry params (proto.Params): the
// scenario-level knobs of Config, without the per-node environment
// (identity, RNG, deliver hook) the runner supplies through proto.Env.
// The zero value selects the paper's defaults.
type Tuning struct {
	X            float64
	HB2BO        float64
	HB2NGC       float64
	HBDelay      time.Duration
	HBLowerBound time.Duration
	HBUpperBound time.Duration
	MaxEvents    int
	MaxNeighbors int
	// UseSpeed feeds the node's true speed into heartbeats (the paper's
	// tachometer optimization), via the environment's speed source.
	UseSpeed bool

	// Ablation knobs, passed through to Config (zero = paper design).
	DisableSuppression bool
	DisableAdaptiveHB  bool
	FixedBackoff       bool
	BlindPush          bool
	GCPolicy           GCPolicy
}

// Validate implements proto.Params; it mirrors Config.Validate's field
// checks so a bad spec fails at scenario-validation time.
func (t Tuning) Validate() error {
	return t.config(proto.Env{}).Validate()
}

// config merges the tuning with a node environment into a full Config.
func (t Tuning) config(env proto.Env) Config {
	cfg := Config{
		ID:                 env.ID,
		X:                  t.X,
		HB2BO:              t.HB2BO,
		HB2NGC:             t.HB2NGC,
		HBDelay:            t.HBDelay,
		HBLowerBound:       t.HBLowerBound,
		HBUpperBound:       t.HBUpperBound,
		MaxEvents:          t.MaxEvents,
		MaxNeighbors:       t.MaxNeighbors,
		OnDeliver:          env.OnDeliver,
		Rand:               env.Rand,
		DisableSuppression: t.DisableSuppression,
		DisableAdaptiveHB:  t.DisableAdaptiveHB,
		FixedBackoff:       t.FixedBackoff,
		BlindPush:          t.BlindPush,
		GCPolicy:           t.GCPolicy,
	}
	if t.UseSpeed {
		cfg.Speed = env.Speed
	}
	return cfg
}

func init() {
	proto.RegisterProtocol(proto.Definition{
		Name:        ProtocolName,
		Description: "the paper's frugal protocol: adaptive heartbeats, id pre-exchange, proportional back-off",
		Params:      Tuning{},
		New: func(p proto.Params, env proto.Env) (proto.Disseminator, error) {
			t, ok := p.(Tuning)
			if !ok {
				return nil, fmt.Errorf("core: params are %T, want core.Tuning", p)
			}
			return New(t.config(env), env.Sched, env.Transport)
		},
	})
}
