package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/topic"
)

// exampleSched adapts the simulation engine to core.Scheduler.
type exampleSched struct{ eng *sim.Engine }

func (s exampleSched) Now() time.Duration { return s.eng.Now().Duration() }
func (s exampleSched) After(d time.Duration, fn func()) core.Timer {
	return s.eng.After(d, fn)
}

// examplePipe delivers broadcasts from one protocol straight into
// another — the smallest possible two-node "network".
type examplePipe struct {
	eng  *sim.Engine
	peer **core.Protocol
}

func (p examplePipe) Broadcast(m event.Message) {
	peer := p.peer
	p.eng.After(time.Millisecond, func() { _ = (*peer).HandleMessage(m) })
}

// Example wires two protocol instances together directly: the publisher
// detects the subscriber through heartbeats, learns what it misses via
// the id exchange, and pushes the event after its back-off.
func Example() {
	eng := sim.New(1)
	news := topic.MustParse(".campus.news")

	var alice, bob *core.Protocol
	mk := func(id event.NodeID, peer **core.Protocol, deliver func(event.Event)) *core.Protocol {
		p, err := core.New(core.Config{
			ID:           id,
			HBDelay:      time.Second,
			HBUpperBound: time.Second,
			OnDeliver:    deliver,
		}, exampleSched{eng}, examplePipe{eng: eng, peer: peer})
		if err != nil {
			panic(err)
		}
		return p
	}
	alice = mk(1, &bob, nil)
	bob = mk(2, &alice, func(ev event.Event) {
		fmt.Printf("bob received: %s\n", ev.Payload)
	})

	if err := alice.Subscribe(news); err != nil {
		panic(err)
	}
	if err := bob.Subscribe(news); err != nil {
		panic(err)
	}
	if _, err := alice.Publish(news, []byte("reading group at 5pm"), time.Minute); err != nil {
		panic(err)
	}

	eng.RunUntil(sim.Seconds(10))
	fmt.Printf("bob knows %d event(s)\n", bob.Stats().Delivered)
	// Output:
	// bob received: reading group at 5pm
	// bob knows 1 event(s)
}
