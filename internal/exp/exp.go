// Package exp defines one experiment per figure/table of the paper's
// evaluation (Section 5), the ablations called out in DESIGN.md, and
// the registry-backed "scenarios" family that sweeps every
// netsim.RegisterScenario workload against the flooding/storm
// baselines. Every experiment runs at two scales: the paper's
// parameters (Options.Full) and a CI-friendly reduction that preserves
// node density and parameter shapes.
package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Options controls experiment scale.
type Options struct {
	// Seeds overrides the number of runs per parameter point (paper:
	// 30). Zero selects the experiment's default.
	Seeds int
	// Full selects the paper-scale parameters; otherwise a scaled-down
	// variant with the same node density runs.
	Full bool
	// Parallel is the number of simulations run concurrently; zero
	// selects runtime.NumCPU(). Output is byte-identical at any
	// parallelism (see runJobs).
	Parallel int
	// Protocol, when non-empty, restricts the registry-backed scenario
	// sweeps to one registered protocol (cmd/experiments -proto). The
	// figure sweeps pin their own protocol panels and ignore it.
	Protocol string
	// Tiles, when non-zero, sets netsim.Scenario.Tiles on the scale
	// family's city runs (cmd/experiments -tiles): each simulation is
	// sharded across that many geo tiles. Results are byte-identical at
	// any tile count, so this composes freely with Parallel. The
	// fixed-size figure sweeps ignore it — their villages are far below
	// the scale where sharding pays.
	Tiles int
	// Budget caps the scale family's wall clock (cmd/experiments
	// -budget): each node-count tier runs only while the elapsed time
	// plus the tier's cost estimate fits the budget, and the megacity
	// tiers beyond 10k nodes require one. Zero runs the base tiers
	// unbounded and skips the megacity tiers. Truncation is reported
	// in the table title and progress lines, never silent. The
	// fixed-size figure sweeps ignore it.
	Budget time.Duration
	// Progress, when non-nil, receives one liveness line as each
	// simulation finishes (emitted from worker goroutines, serialized
	// internally) plus one line per sweep point during aggregation, in
	// deterministic sweep order.
	Progress func(string)
	// Sample, when positive, sets netsim.Scenario.Sample on every run
	// of the registry-backed scenario and workload sweeps
	// (cmd/experiments -sample), recording each simulation's
	// deterministic time-series. Sampling is observation-only: rendered
	// tables are byte-identical with it on or off (pinned by
	// TestGoldenSampleInvariance). The fixed-size figure sweeps ignore
	// it — curve dumps target the registry-backed environments.
	Sample time.Duration
	// SeriesDir, when non-empty (cmd/experiments -series-out), writes
	// each sampled run's curve to
	// <SeriesDir>/<sweep>-<protocol>-seed<N>.csv. Requires Sample.
	SeriesDir string
}

// dumpSeries writes one sampled run's series (when SeriesDir is set and
// the run recorded one) as <SeriesDir>/<base>.csv. Called from worker
// goroutines; each sweep point owns a distinct file name.
func (o Options) dumpSeries(base string, res *netsim.Result) error {
	if o.SeriesDir == "" || res.Series == nil {
		return nil
	}
	if err := os.MkdirAll(o.SeriesDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(o.SeriesDir, base+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Series.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("exp: writing %s: %w", path, err)
	}
	return f.Close()
}

func (o Options) seedCount(def int) int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	return def
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Output is the rendered result of one experiment.
type Output struct {
	Tables []*metrics.Table
}

// String concatenates the tables.
func (o *Output) String() string {
	s := ""
	for i, t := range o.Tables {
		if i > 0 {
			s += "\n"
		}
		s += t.String()
	}
	return s
}

// Definition registers an experiment.
type Definition struct {
	ID    string
	Title string
	Run   func(Options) (*Output, error)
}

// All lists every reproducible figure/table in paper order, then the
// ablations.
func All() []Definition {
	return []Definition{
		{"fig11", "Reliability vs validity, speed and subscribers (random waypoint)", Fig11},
		{"fig12", "Reliability vs validity and subscribers, heterogeneous speeds 1-40 m/s", Fig12},
		{"fig13", "Reliability vs heartbeat upper-bound period (city section)", Fig13},
		{"fig14", "Reliability vs number of subscribers (city section)", Fig14},
		{"fig15", "Reliability spread between publishers (city section)", Fig15},
		{"fig16", "Reliability vs event validity period (city section)", Fig16},
		{"fig17", "Bandwidth per process vs events and subscribers", Fig17},
		{"fig18", "Events sent per process vs events and subscribers", Fig18},
		{"fig19", "Duplicates received per process vs events and subscribers", Fig19},
		{"fig20", "Parasite events received per process vs events and subscribers", Fig20},
		{"ablation", "Design-choice ablations (back-off, suppression, id exchange, GC, adaptive HB)", Ablations},
		{"ext-shadowing", "Extension: reliability under log-normal shadowing", ExtShadowing},
		{"ext-storm", "Extension: frugal vs broadcast-storm schemes (Ni et al.)", ExtStorm},
		{"scenarios", "Extension: every registered protocol across every registered scenario (see -scenario, -proto)", Scenarios},
		{"workloads", "Extension: every registered workload generator on the reference waypoint environment (see -workload)", Workloads},
		{"scale", "Extension: metro city sweep 300→50k nodes, frugal vs gossip vs flood (minutes; -full + -budget reaches the 50k megacity)", Scale},
	}
}

// Lookup finds a definition by id.
func Lookup(id string) (Definition, bool) {
	for _, d := range All() {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}

// ---- shared environments (paper Section 5.1) ----

// paperRange is the 2 Mbps basic-rate radio range (paper: 339 m).
const paperRange = 339

// cityRange is the city-section radio range (paper: 44 m).
const cityRange = 44

// rwpEnv is the random-waypoint environment: N nodes on an area with the
// paper's density (150 nodes per 25 km^2 = 6 per km^2).
type rwpEnv struct {
	nodes  int
	area   geo.Rect
	warmup time.Duration
}

func rwpBase(o Options) rwpEnv {
	if o.Full {
		// Paper: 150 processes, 25 km^2, first 600 s discarded.
		return rwpEnv{nodes: 150, area: geo.NewRect(5000, 5000), warmup: 600 * time.Second}
	}
	// Same 6 nodes/km^2 density at 50 nodes: area 8.33 km^2.
	return rwpEnv{nodes: 50, area: geo.NewRect(2887, 2887), warmup: 60 * time.Second}
}

// rwpFrugal is the frugal spec the random-waypoint environments run:
// the paper's 1 s heartbeat upper bound, speed fed into heartbeats.
// Sweeps that include the frugal protocol in their panel reuse it so
// re-assigning sc.Protocol preserves the environment's tuning.
func rwpFrugal() netsim.ProtocolSpec {
	return netsim.FrugalSpec(netsim.CoreTuning{
		HBUpperBound: time.Second, // paper: RWP heartbeat upper bound 1 s
		UseSpeed:     true,
	})
}

// frugalTuning extracts the frugal tuning from a scenario's spec so a
// sweep can vary one knob (ablations, heartbeat-bound sweeps). A
// frugal spec with nil Params means the defaults, i.e. the zero
// tuning. It panics when the scenario runs a different protocol —
// silently returning zero tuning there would make the sweep produce
// plausible but wrong tables.
func frugalTuning(sc netsim.Scenario) netsim.CoreTuning {
	if sc.Protocol.String() != "frugal" {
		panic(fmt.Sprintf("exp: scenario %q does not run the frugal protocol (%v)",
			sc.Name, sc.Protocol))
	}
	if sc.Protocol.Params == nil {
		return netsim.CoreTuning{}
	}
	t, ok := sc.Protocol.Params.(netsim.CoreTuning)
	if !ok {
		panic(fmt.Sprintf("exp: scenario %q frugal params are %T, want netsim.CoreTuning",
			sc.Name, sc.Protocol.Params))
	}
	return t
}

// rwpScenario builds the paper's random-waypoint scenario skeleton.
func rwpScenario(env rwpEnv, minSpeed, maxSpeed float64, frac float64, seed int64) netsim.Scenario {
	kind := netsim.RandomWaypoint
	if maxSpeed == 0 {
		kind = netsim.StaticNodes
	}
	return netsim.Scenario{
		Nodes: env.nodes,
		Seed:  seed,
		Mobility: netsim.MobilitySpec{
			Kind:     kind,
			Area:     env.area,
			MinSpeed: minSpeed,
			MaxSpeed: maxSpeed,
			Pause:    time.Second, // paper: pause time always 1 s
		},
		MAC:                mac.DefaultConfig(paperRange),
		Protocol:           rwpFrugal(),
		SubscriberFraction: frac,
		Warmup:             env.warmup,
	}
}

// cityScenario builds the paper's city-section scenario skeleton: 15
// processes on the campus street network, 8-13 m/s road limits,
// stochastic stops.
func cityScenario(hbUpper time.Duration, frac float64, seed int64) netsim.Scenario {
	return netsim.Scenario{
		Nodes: 15,
		Seed:  seed,
		Mobility: netsim.MobilitySpec{
			Kind:      netsim.CitySection,
			StopProb:  0.3,
			StopMin:   2 * time.Second,
			StopMax:   10 * time.Second,
			DestPause: 5 * time.Second,
		},
		MAC: mac.DefaultConfig(cityRange),
		Protocol: netsim.FrugalSpec(netsim.CoreTuning{
			HBUpperBound: hbUpper,
			UseSpeed:     true, // heartbeats track the 8-13 m/s road speeds
		}),
		SubscriberFraction: frac,
		Warmup:             30 * time.Second,
	}
}

// reliabilityRun executes one (scenario, publisher, validity) reliability
// measurement: a single event published at the start of the measurement
// window.
func reliabilityRun(sc netsim.Scenario, publisher int, validity time.Duration) (*netsim.Result, error) {
	sc.Publications = []netsim.Publication{{
		Offset:    0,
		Publisher: publisher,
		Validity:  validity,
	}}
	sc.Measure = validity + 5*time.Second
	return netsim.Run(sc)
}

// reliabilityPoint is reliabilityRun reduced to the reliability number.
func reliabilityPoint(sc netsim.Scenario, publisher int, validity time.Duration) (float64, error) {
	res, err := reliabilityRun(sc, publisher, validity)
	if err != nil {
		return 0, err
	}
	return res.Reliability(), nil
}

// fmtSeconds renders a duration in whole seconds for table headers.
func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%d", int(d.Seconds()))
}

// fmtPctCol renders a fraction as a column header like "80%".
func fmtPctCol(frac float64) string {
	return fmt.Sprintf("%d%%", int(frac*100+0.5))
}

// sortedKeysInt is a tiny helper for deterministic map iteration.
func sortedKeysInt[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
