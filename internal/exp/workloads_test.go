package exp

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/workload"
)

// TestWorkloadsFamilyCoversRegistry runs the family once and checks
// every sweepable (traffic or churn) generator has a row — a newly
// registered generator cannot be silently skipped.
func TestWorkloadsFamilyCoversRegistry(t *testing.T) {
	out, err := Workloads(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 {
		t.Fatalf("family produced %d tables, want 1", len(out.Tables))
	}
	rendered := out.String()
	for _, def := range workload.Workloads() {
		switch def.Class {
		case workload.ClassTraffic, workload.ClassChurn:
			if !strings.Contains(rendered, def.Name) {
				t.Fatalf("no row for registered generator %q:\n%s", def.Name, rendered)
			}
		default:
			if strings.Contains(rendered, def.Name+" ") {
				t.Fatalf("util helper %q swept as a workload:\n%s", def.Name, rendered)
			}
		}
	}
}

// TestWorkloadSweepParallelismInvariance asserts the determinism
// contract for generated traffic: workload sweeps are byte-identical at
// any parallelism — generation draws from the run's own seeded streams,
// never from shared state.
func TestWorkloadSweepParallelismInvariance(t *testing.T) {
	for _, name := range []string{"flash-crowd", "churn-nodes"} {
		run := func(parallel int) string {
			out, err := WorkloadSweep(name, Options{Seeds: 1, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return out.String()
		}
		serial := run(1)
		parallel := run(8)
		if serial != parallel {
			t.Fatalf("%s tables differ across parallelism:\n--- parallel=1\n%s\n--- parallel=8\n%s",
				name, serial, parallel)
		}
		for _, protoName := range netsim.ProtocolNames() {
			if !strings.Contains(serial, protoName) {
				t.Fatalf("%s table missing registered protocol %q:\n%s", name, protoName, serial)
			}
		}
	}
}

func TestWorkloadSweepUnknownName(t *testing.T) {
	_, err := WorkloadSweep("no-such-workload", Options{Seeds: 1})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "poisson") || !strings.Contains(err.Error(), "flash-crowd") {
		t.Fatalf("error does not list registered workloads: %v", err)
	}
	// Util helpers are addressable in specs but not sweepable.
	_, err = WorkloadSweep("mix", Options{Seeds: 1})
	if err == nil || !strings.Contains(err.Error(), "helper") {
		t.Fatalf("mix swept as a workload: %v", err)
	}
}
