package exp

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// workloadEnv is the family's reference environment: the registered
// waypoint scenario with its explicit publication list cleared, so the
// generator under test supplies all traffic. Using a registered
// scenario keeps the environment in one place; the seed stamps the run.
func workloadEnv(seed int64) netsim.Scenario {
	def, ok := netsim.LookupScenario("waypoint")
	if !ok {
		panic("exp: reference scenario \"waypoint\" not registered")
	}
	sc := def.Instantiate(seed)
	sc.Publications = nil
	return sc
}

// workloadSpec wraps a registered generator for the sweep: traffic
// generators run standalone; churn generators (which emit no
// publications of their own) are paired with default periodic traffic
// through the "mix" generator, so their tables still measure delivery
// under the churn they inject. Util generators (explicit, mix) are
// composition helpers, not workloads to sweep — reported as skipped.
func workloadSpec(def workload.Definition) (netsim.WorkloadSpec, bool) {
	switch def.Class {
	case workload.ClassTraffic:
		return netsim.WorkloadSpec{Name: def.Name}, true
	case workload.ClassChurn:
		return netsim.WorkloadSpec{
			Name: "mix",
			Params: workload.MixParams{Parts: []workload.Spec{
				{Name: "periodic"},
				{Name: def.Name},
			}},
		}, true
	default:
		return netsim.WorkloadSpec{}, false
	}
}

// Workloads is the registry-backed workload family: every registered
// traffic and churn generator runs (with default params) on the
// reference waypoint environment, one row per generator. The family
// iterates the workload registry itself, so a newly registered
// generator shows up here (and in cmd/experiments -list) with no
// further wiring. Options.Protocol swaps the protocol under test
// (default: the environment's frugal tuning).
func Workloads(o Options) (*Output, error) {
	var rows []workload.Definition
	for _, def := range workload.Workloads() {
		if _, ok := workloadSpec(def); ok {
			rows = append(rows, def)
		}
	}
	seeds := o.seedCount(3)
	type sample struct {
		events, rel, sent, dups, bytes float64
	}
	samples, err := runGrid(o, []int{len(rows), seeds},
		func(ix []int) (sample, error) {
			def := rows[ix[0]]
			sc := workloadEnv(int64(ix[1]) + 1)
			sc.Workload, _ = workloadSpec(def)
			if o.Protocol != "" {
				spec, ok := netsim.ParseProtocol(o.Protocol)
				if !ok {
					return sample{}, fmt.Errorf("exp: unknown protocol %q (registered: %s)",
						o.Protocol, strings.Join(netsim.ProtocolNames(), ", "))
				}
				sc.Protocol = spec
			}
			res, err := netsim.Run(sc)
			if err != nil {
				return sample{}, fmt.Errorf("workload %s: %w", def.Name, err)
			}
			return sample{
				events: float64(len(res.Published)),
				rel:    res.Reliability(),
				sent:   res.EventsSentPerProcess(),
				dups:   res.DuplicatesPerProcess(),
				bytes:  res.AppBytesPerProcess(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Workload generators on the waypoint environment (%d seeds; churn paired with periodic traffic)", seeds),
		"workload", "class", "events", "reliability", "copies/proc", "dups/proc", "bandwidth")
	for wi, def := range rows {
		var events, rel, sent, dups, bytes metrics.Agg
		for seed := 0; seed < seeds; seed++ {
			s := samples.At(wi, seed)
			events.Add(s.events)
			rel.Add(s.rel)
			sent.Add(s.sent)
			dups.Add(s.dups)
			bytes.Add(s.bytes)
		}
		tb.AddRow(def.Name, string(def.Class), metrics.F1(events.Mean()), metrics.Pct(rel.Mean()),
			metrics.F1(sent.Mean()), metrics.F1(dups.Mean()), metrics.KB(bytes.Mean()))
		o.progress("workload %s -> %s", def.Name, metrics.Pct(rel.Mean()))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// WorkloadSweep runs one registered generator across every registered
// protocol on the reference environment (cmd/experiments -workload).
func WorkloadSweep(name string, o Options) (*Output, error) {
	def, ok := workload.LookupWorkload(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown workload %q (registered: %s)",
			name, strings.Join(workload.WorkloadNames(), ", "))
	}
	spec, ok := workloadSpec(def)
	if !ok {
		return nil, fmt.Errorf("exp: workload %q is a %s helper, not a sweepable generator (registered: %s)",
			name, def.Class, strings.Join(workload.WorkloadNames(), ", "))
	}
	seeds := o.seedCount(3)
	env := workloadEnv(1)
	panel, err := scenarioPanel(netsim.ScenarioDef{Template: env}, o)
	if err != nil {
		return nil, err
	}
	type sample struct {
		events, rel, sent, dups, bytes float64
	}
	samples, err := runGrid(o, []int{len(panel), seeds},
		func(ix []int) (sample, error) {
			sc := workloadEnv(int64(ix[1]) + 1)
			sc.Workload = spec
			sc.Protocol = panel[ix[0]]
			sc.Sample = o.Sample
			res, err := netsim.Run(sc)
			if err != nil {
				return sample{}, fmt.Errorf("workload %s, %v: %w", name, sc.Protocol, err)
			}
			if err := o.dumpSeries(fmt.Sprintf("workload-%s-%v-seed%d",
				name, sc.Protocol, ix[1]+1), res); err != nil {
				return sample{}, err
			}
			return sample{
				events: float64(len(res.Published)),
				rel:    res.Reliability(),
				sent:   res.EventsSentPerProcess(),
				dups:   res.DuplicatesPerProcess(),
				bytes:  res.AppBytesPerProcess(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Workload %s — %s (%d seeds, waypoint environment)", def.Name, def.Description, seeds),
		"protocol", "events", "reliability", "copies/proc", "dups/proc", "bandwidth")
	for pi, pspec := range panel {
		var events, rel, sent, dups, bytes metrics.Agg
		for seed := 0; seed < seeds; seed++ {
			s := samples.At(pi, seed)
			events.Add(s.events)
			rel.Add(s.rel)
			sent.Add(s.sent)
			dups.Add(s.dups)
			bytes.Add(s.bytes)
		}
		tb.AddRow(pspec.String(), metrics.F1(events.Mean()), metrics.Pct(rel.Mean()),
			metrics.F1(sent.Mean()), metrics.F1(dups.Mean()), metrics.KB(bytes.Mean()))
		o.progress("workload %s %v -> %s", def.Name, pspec, metrics.Pct(rel.Mean()))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
