package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
)

// The frugality experiments (Figures 17-20) share one parameter sweep:
// random waypoint at 10 m/s, events 1..20 of 400 bytes with 180 s
// validity, subscribers 20%..100%, comparing the frugal protocol against
// the three flooding baselines. The sweep is memoized so that regenerating
// all four figures costs one pass.

type frugalCell struct {
	bandwidth metrics.Agg // app bytes sent per process
	sent      metrics.Agg // event copies sent per process
	dups      metrics.Agg // duplicates received per process
	parasites metrics.Agg // parasite events received per process
}

type frugalKey struct {
	proto  string // registry name
	events int
	pct    int
}

type frugalData struct {
	protocols []netsim.ProtocolSpec
	events    []int
	pcts      []int
	cells     map[frugalKey]*frugalCell
	validity  time.Duration
}

var frugalMemo = struct {
	sync.Mutex
	m map[[2]int]*frugalData // key: {seeds, full}
}{m: make(map[[2]int]*frugalData)}

func frugalitySweep(o Options) (*frugalData, error) {
	seeds := o.seedCount(2)
	validity := 60 * time.Second
	events := []int{1, 5, 10}
	pcts := []int{20, 60, 100}
	if o.Full {
		seeds = o.seedCount(10)
		validity = 180 * time.Second // paper: 180 s measurement window
		events = []int{1, 5, 10, 15, 20}
		pcts = []int{20, 40, 60, 80, 100}
	}
	memoKey := [2]int{seeds, boolInt(o.Full)}
	frugalMemo.Lock()
	if d, ok := frugalMemo.m[memoKey]; ok {
		frugalMemo.Unlock()
		return d, nil
	}
	frugalMemo.Unlock()

	env := rwpBase(o)
	// Paper panel in figure order; baselines resolve by registry name.
	protocols := []netsim.ProtocolSpec{
		rwpFrugal(),
		{Name: "interests-aware-flooding"},
		{Name: "simple-flooding"},
		{Name: "neighbors-interests-flooding"},
	}
	data := &frugalData{
		protocols: protocols,
		events:    events,
		pcts:      pcts,
		cells:     make(map[frugalKey]*frugalCell),
		validity:  validity,
	}
	type sample struct {
		bandwidth, sent, dups, parasites float64
	}
	samples, err := runGrid(o, []int{len(protocols), len(events), len(pcts), seeds},
		func(ix []int) (sample, error) {
			res, err := frugalityRun(env, protocols[ix[0]], events[ix[1]], pcts[ix[2]],
				validity, int64(ix[3])+1)
			if err != nil {
				return sample{}, err
			}
			return sample{
				bandwidth: res.AppBytesPerProcess(),
				sent:      res.EventsSentPerProcess(),
				dups:      res.DuplicatesPerProcess(),
				parasites: res.ParasitesPerProcess(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for pi, proto := range protocols {
		for ni, n := range events {
			for ci, pct := range pcts {
				cell := &frugalCell{}
				for seed := 0; seed < seeds; seed++ {
					s := samples.At(pi, ni, ci, seed)
					cell.bandwidth.Add(s.bandwidth)
					cell.sent.Add(s.sent)
					cell.dups.Add(s.dups)
					cell.parasites.Add(s.parasites)
				}
				data.cells[frugalKey{proto.String(), n, pct}] = cell
				o.progress("frugality %v events=%d interest=%d%% -> bw=%s sent=%.1f dup=%.1f par=%.1f",
					proto, n, pct, metrics.KB(cell.bandwidth.Mean()),
					cell.sent.Mean(), cell.dups.Mean(), cell.parasites.Mean())
			}
		}
	}
	frugalMemo.Lock()
	frugalMemo.m[memoKey] = data
	frugalMemo.Unlock()
	return data, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// frugalityRun executes one frugality scenario: n events published by
// random subscribers shortly after warm-up, all with the full-window
// validity (the paper publishes 1-20 events of 400 bytes and measures for
// 180 s at 10 m/s).
func frugalityRun(env rwpEnv, proto netsim.ProtocolSpec, n, pct int, validity time.Duration, seed int64) (*netsim.Result, error) {
	sc := rwpScenario(env, 10, 10, float64(pct)/100, seed)
	sc.Name = fmt.Sprintf("frugality-%v", proto)
	sc.Protocol = proto
	for i := 0; i < n; i++ {
		sc.Publications = append(sc.Publications, netsim.Publication{
			Offset:    time.Duration(i) * 500 * time.Millisecond,
			Publisher: -1,
			Validity:  validity,
		})
	}
	sc.Measure = validity
	return netsim.Run(sc)
}

// renderFrugality turns the sweep into one table: rows are
// (protocol, events-to-publish), columns the subscriber percentages.
func renderFrugality(d *frugalData, title string, value func(*frugalCell) string) *metrics.Table {
	cols := []string{"protocol", "events"}
	for _, pct := range d.pcts {
		cols = append(cols, fmt.Sprintf("%d%%", pct))
	}
	tb := metrics.NewTable(title, cols...)
	for _, proto := range d.protocols {
		for _, n := range d.events {
			row := []string{proto.String(), fmt.Sprintf("%d", n)}
			for _, pct := range d.pcts {
				row = append(row, value(d.cells[frugalKey{proto.String(), n, pct}]))
			}
			tb.AddRow(row...)
		}
	}
	return tb
}

// Fig17 reproduces Figure 17: bandwidth used per process as a function of
// the number of events to publish and the number of subscribers.
func Fig17(o Options) (*Output, error) {
	d, err := frugalitySweep(o)
	if err != nil {
		return nil, err
	}
	tb := renderFrugality(d,
		fmt.Sprintf("Fig 17 — bandwidth per process over %s (app bytes: heartbeats + id lists + events)", d.validity),
		func(c *frugalCell) string { return metrics.KB(c.bandwidth.Mean()) })
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// Fig18 reproduces Figure 18: number of events sent per process.
func Fig18(o Options) (*Output, error) {
	d, err := frugalitySweep(o)
	if err != nil {
		return nil, err
	}
	tb := renderFrugality(d,
		"Fig 18 — events sent per process",
		func(c *frugalCell) string { return metrics.F1(c.sent.Mean()) })
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// Fig19 reproduces Figure 19: number of duplicates received per process.
func Fig19(o Options) (*Output, error) {
	d, err := frugalitySweep(o)
	if err != nil {
		return nil, err
	}
	tb := renderFrugality(d,
		"Fig 19 — duplicates received per process",
		func(c *frugalCell) string { return metrics.F1(c.dups.Mean()) })
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// Fig20 reproduces Figure 20: number of parasite events received per
// process.
func Fig20(o Options) (*Output, error) {
	d, err := frugalitySweep(o)
	if err != nil {
		return nil, err
	}
	tb := renderFrugality(d,
		"Fig 20 — parasite events received per process",
		func(c *frugalCell) string { return metrics.F1(c.parasites.Mean()) })
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
