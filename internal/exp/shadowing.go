package exp

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/radio"
)

// ExtShadowing is an extension beyond the paper's figures: the paper's
// QualNet runs use a *statistical* propagation model, while the headline
// reproduction uses a deterministic disc at the published 339 m radius.
// This experiment quantifies the gap by re-running the Fig 11 headline
// point (10 m/s, 80% subscribers) under log-normal shadowing of
// increasing sigma, with the paper's -111 dBm propagation limit.
func ExtShadowing(o Options) (*Output, error) {
	seeds := o.seedCount(5)
	if o.Full {
		seeds = o.seedCount(30)
	}
	env := rwpBase(o)
	validities := []time.Duration{60 * time.Second, 120 * time.Second, 180 * time.Second}
	sigmas := []float64{0, 4, 8}

	rels, err := runGrid(o, []int{len(validities), len(sigmas), seeds},
		func(ix []int) (float64, error) {
			sigma := sigmas[ix[1]]
			sc := rwpScenario(env, 10, 10, 0.8, int64(ix[2])+1)
			sc.Name = "ext-shadowing"
			if sigma > 0 {
				params := radio.Default80211b()
				sh := radio.Shadowing{
					Params: params,
					// Calibrate the threshold so the *nominal*
					// (50%-probability) radius equals the disc's
					// 339 m — shadowing then only spreads the
					// boundary, keeping the comparison fair.
					SensitivityDBm: params.ReceivedPowerDBm(paperRange),
					SigmaDB:        sigma,
					LimitDBm:       -111, // the paper's propagation limit
				}
				sc.MAC.ReceiveProb = sh.ReceiveProb
				sc.MAC.Range = sh.MaxRange(1e-3)
			}
			return reliabilityPoint(sc, -1, validities[ix[0]])
		})
	if err != nil {
		return nil, err
	}

	cols := []string{"validity[s]", "disc"}
	for _, s := range sigmas[1:] {
		cols = append(cols, "sigma="+metrics.F1(s)+"dB")
	}
	tb := metrics.NewTable(
		"Extension — reliability under log-normal shadowing (10 m/s, 80% subscribers)",
		cols...)
	for vi, v := range validities {
		row := []string{fmtSeconds(v)}
		for si, sigma := range sigmas {
			var agg metrics.Agg
			for seed := 0; seed < seeds; seed++ {
				agg.Add(rels.At(vi, si, seed))
			}
			row = append(row, metrics.Pct(agg.Mean()))
			o.progress("shadowing sigma=%v validity=%v -> %s", sigma, v, metrics.Pct(agg.Mean()))
		}
		tb.AddRow(row...)
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
