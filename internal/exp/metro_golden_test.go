package exp

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestMetroFingerprint pins a full metro-5k city run end to end: one
// sha-256 over every publication, outcome, per-node counter and the
// streaming latency histogram (netsim.Result.Fingerprint). The table
// goldens above exercise the same engine layers but only at village
// scale and only through rounded aggregates; this case is the one
// place a megacity-path regression — route cache, dense grids,
// streaming aggregation — must reproduce a city-scale run bit for bit.
// It costs a couple of minutes, so it hides behind -short like the
// Heavy scenarios it guards.
func TestMetroFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("full metro-5k run (~2 min); rerun without -short")
	}
	def, ok := netsim.LookupScenario("metro-5k")
	if !ok {
		t.Fatal("metro-5k not registered")
	}
	// Sampling rides along: the golden was recorded unsampled, so the
	// comparison doubles as the city-scale sample-invariance check
	// (Scenario.Sample is observation-only; see netsim/series.go).
	sc := def.Instantiate(1)
	sc.Sample = 10 * time.Second
	res, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-5k-fingerprint", res.Fingerprint()+"\n")
	if res.Series == nil || len(res.Series.Points) == 0 {
		t.Fatal("sampled metro-5k run has no series")
	}
}

// TestMetroSliceFingerprint pins the metro-slice district run — the
// tile-parallel fixture — bit for bit, untiled, sampled, and sampled at
// four tiles against the same golden: the tiled runner's byte-identity
// contract and the sampler's observation-only contract enforced against
// on-disk bytes, in tier-1 time (a few seconds per run), not just
// between two same-process runs.
func TestMetroSliceFingerprint(t *testing.T) {
	def, ok := netsim.LookupScenario("metro-slice")
	if !ok {
		t.Fatal("metro-slice not registered")
	}
	res, err := netsim.Run(def.Instantiate(1))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-slice-fingerprint", res.Fingerprint()+"\n")
	sc := def.Instantiate(1)
	sc.Sample = 5 * time.Second
	sampled, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-slice-fingerprint", sampled.Fingerprint()+"\n")
	if sampled.Series == nil || len(sampled.Series.Points) == 0 {
		t.Fatal("sampled metro-slice run has no series")
	}
	if testing.Short() {
		return
	}
	tiled := def.Instantiate(1)
	tiled.Tiles = 4
	tiled.Sample = 5 * time.Second
	tres, err := netsim.Run(tiled)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-slice-fingerprint", tres.Fingerprint()+"\n")
	// The series itself must be tile-invariant up to the tile-path
	// split columns (which legitimately vary with the tile count).
	if len(tres.Series.Points) != len(sampled.Series.Points) {
		t.Fatalf("tiled series has %d points, untiled %d",
			len(tres.Series.Points), len(sampled.Series.Points))
	}
	for i := range tres.Series.Points {
		a, b := sampled.Series.Points[i], tres.Series.Points[i]
		a.FannedFrames, a.SerialFrames = 0, 0
		b.FannedFrames, b.SerialFrames = 0, 0
		if a != b {
			t.Fatalf("series point %d differs tiled vs untiled:\n%+v\nvs\n%+v", i, b, a)
		}
	}
}
