package exp

import (
	"testing"

	"repro/internal/netsim"
)

// TestMetroFingerprint pins a full metro-5k city run end to end: one
// sha-256 over every publication, outcome, per-node counter and the
// streaming latency histogram (netsim.Result.Fingerprint). The table
// goldens above exercise the same engine layers but only at village
// scale and only through rounded aggregates; this case is the one
// place a megacity-path regression — route cache, dense grids,
// streaming aggregation — must reproduce a city-scale run bit for bit.
// It costs a couple of minutes, so it hides behind -short like the
// Heavy scenarios it guards.
func TestMetroFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("full metro-5k run (~2 min); rerun without -short")
	}
	def, ok := netsim.LookupScenario("metro-5k")
	if !ok {
		t.Fatal("metro-5k not registered")
	}
	res, err := netsim.Run(def.Instantiate(1))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-5k-fingerprint", res.Fingerprint()+"\n")
}

// TestMetroSliceFingerprint pins the metro-slice district run — the
// tile-parallel fixture — bit for bit, untiled and at four tiles
// against the same golden: the tiled runner's byte-identity contract
// enforced against on-disk bytes, in tier-1 time (a few seconds per
// run), not just between two same-process runs.
func TestMetroSliceFingerprint(t *testing.T) {
	def, ok := netsim.LookupScenario("metro-slice")
	if !ok {
		t.Fatal("metro-slice not registered")
	}
	res, err := netsim.Run(def.Instantiate(1))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-slice-fingerprint", res.Fingerprint()+"\n")
	if testing.Short() {
		return
	}
	sc := def.Instantiate(1)
	sc.Tiles = 4
	tiled, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metro-slice-fingerprint", tiled.Fingerprint()+"\n")
}
