package exp

import (
	"testing"
	"time"
)

func TestTierEstimate(t *testing.T) {
	// First tier: no history, always admitted.
	if est := tierEstimate(300, nil, nil); est != 0 {
		t.Fatalf("first-tier estimate = %v, want 0", est)
	}
	// One completed tier: N^1.5 default. 4x nodes -> 8x time.
	est := tierEstimate(1200, []int{300}, []time.Duration{time.Minute})
	if est < 7*time.Minute || est > 9*time.Minute {
		t.Fatalf("single-history estimate = %v, want ~8m", est)
	}
	// Two tiers growing linearly: fitted exponent 1, so 2x nodes -> 2x.
	est = tierEstimate(2000, []int{500, 1000},
		[]time.Duration{time.Minute, 2 * time.Minute})
	if est < 230*time.Second || est > 250*time.Second {
		t.Fatalf("linear-fit estimate = %v, want ~4m", est)
	}
	// Observed superlinear growth is clamped at cubic: 10x duration
	// over 2x nodes fits alpha log2(10)=3.3 -> clamp 3 -> 8x.
	est = tierEstimate(4000, []int{1000, 2000},
		[]time.Duration{time.Minute, 10 * time.Minute})
	if est < 79*time.Minute || est > 81*time.Minute {
		t.Fatalf("clamped estimate = %v, want ~80m", est)
	}
	// Megacity tiers only appear on the full axis, after the 10k city.
	counts := scaleCounts(true)
	if counts[len(counts)-1] != 50000 || counts[len(counts)-2] != 25000 {
		t.Fatalf("full axis misses the megacity tiers: %v", counts)
	}
	for _, n := range scaleCounts(false) {
		if n >= megacityFloor {
			t.Fatalf("quick axis contains megacity tier %d", n)
		}
	}
}
