package exp

import (
	"time"

	"repro/internal/metrics"
)

// Fig12 reproduces Figure 12: probability of event reception as a
// function of the validity period and the number of subscribers, in a
// heterogeneous mobile environment where processes move at random speeds
// between 1 and 40 m/s. Rows are validity periods, columns subscriber
// fractions.
func Fig12(o Options) (*Output, error) {
	env := rwpBase(o)
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	validities := []time.Duration{
		40 * time.Second, 80 * time.Second, 120 * time.Second, 180 * time.Second,
	}
	seeds := o.seedCount(5)
	if o.Full {
		seeds = o.seedCount(30)
		validities = []time.Duration{
			40 * time.Second, 60 * time.Second, 80 * time.Second,
			100 * time.Second, 120 * time.Second, 140 * time.Second,
			160 * time.Second, 180 * time.Second,
		}
	} else {
		fracs = []float64{0.2, 0.6, 1.0}
	}

	rels, err := runGrid(o, []int{len(validities), len(fracs), seeds},
		func(ix []int) (float64, error) {
			sc := rwpScenario(env, 1, 40, fracs[ix[1]], int64(ix[2])+1)
			sc.Name = "fig12"
			return reliabilityPoint(sc, -1, validities[ix[0]])
		})
	if err != nil {
		return nil, err
	}

	cols := []string{"validity[s]"}
	for _, f := range fracs {
		cols = append(cols, fmtPctCol(f))
	}
	tb := metrics.NewTable(
		"Fig 12 — reliability, heterogeneous speeds 1-40 m/s (random waypoint)",
		cols...)
	for vi, v := range validities {
		row := []string{fmtSeconds(v)}
		for fi, frac := range fracs {
			var agg metrics.Agg
			for seed := 0; seed < seeds; seed++ {
				agg.Add(rels.At(vi, fi, seed))
			}
			row = append(row, metrics.Pct(agg.Mean()))
			o.progress("fig12 frac=%v validity=%v -> %s", frac, v, metrics.Pct(agg.Mean()))
		}
		tb.AddRow(row...)
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
