package exp

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
)

// ExtStorm is an extension beyond the paper's figures, motivated by its
// related-work discussion (Section 6): how do the classic broadcast-storm
// countermeasures — probabilistic and counter-based single-shot
// broadcast (Ni et al.) — fare in the paper's mobile, sparse environment?
// Being single-shot, they cannot exploit node mobility or event validity:
// the broadcast wave only covers the connected component at publication
// time, so their reliability barely grows with validity while the frugal
// protocol's climbs. Their traffic is low, but so is their coverage.
func ExtStorm(o Options) (*Output, error) {
	seeds := o.seedCount(5)
	if o.Full {
		seeds = o.seedCount(30)
	}
	env := rwpBase(o)
	validities := []time.Duration{30 * time.Second, 90 * time.Second, 180 * time.Second}
	protocols := []netsim.ProtocolSpec{
		rwpFrugal(),
		{Name: "probabilistic-broadcast"},
		{Name: "counter-based-broadcast"},
	}

	type sample struct {
		rel, sent float64
	}
	samples, err := runGrid(o, []int{len(validities), len(protocols), seeds},
		func(ix []int) (sample, error) {
			sc := rwpScenario(env, 10, 10, 0.8, int64(ix[2])+1)
			sc.Name = "ext-storm"
			sc.Protocol = protocols[ix[1]]
			res, err := reliabilityRun(sc, -1, validities[ix[0]])
			if err != nil {
				return sample{}, err
			}
			return sample{rel: res.Reliability(), sent: res.EventsSentPerProcess()}, nil
		})
	if err != nil {
		return nil, err
	}

	rel := metrics.NewTable(
		"Extension — reliability: frugal vs broadcast-storm schemes (10 m/s, 80% subscribers)",
		"validity[s]", "frugal", "probabilistic", "counter-based")
	traffic := metrics.NewTable(
		"Extension — event copies sent per process (validity 180 s)",
		"protocol", "copies/process")

	for vi, v := range validities {
		row := []string{fmtSeconds(v)}
		for pi, proto := range protocols {
			var agg metrics.Agg
			var sent metrics.Agg
			for seed := 0; seed < seeds; seed++ {
				s := samples.At(vi, pi, seed)
				agg.Add(s.rel)
				sent.Add(s.sent)
			}
			row = append(row, metrics.Pct(agg.Mean()))
			if v == validities[len(validities)-1] {
				traffic.AddRow(proto.String(), metrics.F2(sent.Mean()))
			}
			o.progress("storm %v validity=%v -> %s", proto, v, metrics.Pct(agg.Mean()))
		}
		rel.AddRow(row...)
	}
	return &Output{Tables: []*metrics.Table{rel, traffic}}, nil
}
