package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netsim"
)

// The golden-file suite pins every sweep's output table byte-for-byte:
// each case runs at a reduced scale (2 seeds, default environments) and
// must reproduce internal/exp/testdata/golden/<name>.golden exactly.
// This is the safety net under which the simulation core is allowed to
// be rewritten — a refactor that changes any table, even one float in
// one cell, fails here before it can silently skew the reproduction.
//
// Regenerate after an intentional output change with
//
//	go test ./internal/exp -run TestGolden -update
//
// and review the diff like any other code change.
var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenSeeds is the reduced per-point seed count every golden case
// runs at: enough to exercise the seed loop and aggregation order,
// small enough to keep the suite in test-suite time.
const goldenSeeds = 2

type goldenCase struct {
	name string
	run  func(Options) (*Output, error)
}

// goldenCases enumerates the pinned sweeps: every figure experiment,
// the ablations, the extensions, the workloads family and one
// frugal-vs-baselines sweep per registered (non-heavy) scenario.
func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, d := range All() {
		switch d.ID {
		case "scenarios":
			// Covered per scenario below, so a failure names the
			// scenario instead of the whole family.
			continue
		case "scale":
			// Whole-city sweeps: minutes per table, out of
			// test-suite budget. The engine layers it exercises are
			// pinned by every other case.
			continue
		}
		cases = append(cases, goldenCase{name: d.ID, run: d.Run})
	}
	for _, def := range netsim.Scenarios() {
		if def.Heavy {
			continue
		}
		name := def.Name
		cases = append(cases, goldenCase{
			name: "scenario-" + name,
			run:  func(o Options) (*Output, error) { return ScenarioSweep(name, o) },
		})
	}
	return cases
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

// checkGolden compares got with the named golden file, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (run with -update after an intentional change)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGolden runs every pinned sweep at the reduced golden scale and
// diffs its rendered tables byte-for-byte against testdata/golden.
func TestGolden(t *testing.T) {
	for _, c := range goldenCases() {
		t.Run(c.name, func(t *testing.T) {
			out, err := c.run(Options{Seeds: goldenSeeds})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, out.String())
		})
	}
}

// TestGoldenParallelInvariance re-runs a representative slice of the
// golden cases through a multi-worker pool: the tables must match the
// same golden files produced at any other parallelism (the runJobs
// determinism contract, now pinned against on-disk bytes rather than
// only against a same-process second run).
func TestGoldenParallelInvariance(t *testing.T) {
	for _, name := range []string{"fig13", "scenario-manhattan", "scenario-stadium"} {
		for _, c := range goldenCases() {
			if c.name != name {
				continue
			}
			t.Run(fmt.Sprintf("%s-parallel4", name), func(t *testing.T) {
				out, err := c.run(Options{Seeds: goldenSeeds, Parallel: 4})
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, name, out.String())
			})
		}
	}
}
