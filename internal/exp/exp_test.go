package exp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestRegistry(t *testing.T) {
	defs := All()
	if len(defs) != 16 {
		t.Fatalf("registry has %d entries, want 16 (fig11..fig20 + ablation + extensions + scenarios + workloads + scale)", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Fatalf("incomplete definition %+v", d)
		}
		if seen[d.ID] {
			t.Fatalf("duplicate id %s", d.ID)
		}
		seen[d.ID] = true
	}
	if _, ok := Lookup("fig13"); !ok {
		t.Fatal("Lookup(fig13) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

func TestFig13ShapeAndDeterminism(t *testing.T) {
	run := func() *Output {
		out, err := Fig13(Options{Seeds: 2})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run()
	if len(a.Tables) != 1 || a.Tables[0].NumRows() != 5 {
		t.Fatalf("fig13 shape wrong: %+v", a)
	}
	// The paper's trend: short heartbeat bounds beat long ones.
	first := parsePct(t, a.Tables[0].Row(0)[1])
	last := parsePct(t, a.Tables[0].Row(4)[1])
	if first <= last {
		t.Fatalf("reliability at 1s bound (%v) should beat 5s bound (%v)", first, last)
	}
	b := run()
	if a.String() != b.String() {
		t.Fatal("fig13 output not deterministic")
	}
}

func TestFig16ValidityMonotone(t *testing.T) {
	out, err := Fig16(Options{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	lo := parsePct(t, tb.Row(0)[1])                // 25 s
	hi := parsePct(t, tb.Row(tb.NumRows() - 1)[1]) // 150 s
	if hi < lo+0.2 {
		t.Fatalf("validity 150s (%v) should clearly beat 25s (%v)", hi, lo)
	}
}

func TestFrugalityOrderings(t *testing.T) {
	d, err := frugalitySweep(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxEvents := d.events[len(d.events)-1]
	for _, pct := range d.pcts {
		frugal := d.cells[frugalKey{"frugal", maxEvents, pct}]
		simple := d.cells[frugalKey{"simple-flooding", maxEvents, pct}]
		aware := d.cells[frugalKey{"interests-aware-flooding", maxEvents, pct}]
		// Paper Fig 18: 50-100x fewer events sent; demand at least 5x.
		if frugal.sent.Mean()*5 > simple.sent.Mean() {
			t.Errorf("pct=%d: frugal sent %.1f vs simple %.1f, want >5x gap",
				pct, frugal.sent.Mean(), simple.sent.Mean())
		}
		// Paper Fig 19: far fewer duplicates than the best alternative.
		if frugal.dups.Mean()*5 > aware.dups.Mean() {
			t.Errorf("pct=%d: frugal dups %.1f vs interests-aware %.1f, want >5x gap",
				pct, frugal.dups.Mean(), aware.dups.Mean())
		}
		// Paper Fig 17: frugal uses less bandwidth at scale.
		if frugal.bandwidth.Mean() > simple.bandwidth.Mean() {
			t.Errorf("pct=%d: frugal bandwidth %.0f exceeds simple flooding %.0f",
				pct, frugal.bandwidth.Mean(), simple.bandwidth.Mean())
		}
	}
	// Paper Fig 20: parasites are worst around 60% interest for ours.
	par20 := d.cells[frugalKey{"frugal", maxEvents, 20}].parasites.Mean()
	par60 := d.cells[frugalKey{"frugal", maxEvents, 60}].parasites.Mean()
	par100 := d.cells[frugalKey{"frugal", maxEvents, 100}].parasites.Mean()
	if !(par60 > par20 && par60 > par100) {
		t.Errorf("frugal parasites should peak at 60%%: 20%%=%.1f 60%%=%.1f 100%%=%.1f",
			par20, par60, par100)
	}
	if par100 != 0 {
		t.Errorf("parasites at 100%% interest = %.1f, want 0", par100)
	}
}

func TestFrugalityCrossover(t *testing.T) {
	// The paper's one exception: with a single small event and 20%
	// interest, interests-aware flooding undercuts us on bandwidth
	// (heartbeats dominate our cost there).
	d, err := frugalitySweep(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	frugal := d.cells[frugalKey{"frugal", 1, 20}]
	aware := d.cells[frugalKey{"interests-aware-flooding", 1, 20}]
	if aware.bandwidth.Mean() >= frugal.bandwidth.Mean() {
		t.Skipf("crossover not visible at this scale: frugal=%.0f aware=%.0f",
			frugal.bandwidth.Mean(), aware.bandwidth.Mean())
	}
}

func TestFrugalityMemoized(t *testing.T) {
	a, err := frugalitySweep(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := frugalitySweep(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical options should return the memoized sweep")
	}
}

func TestAblationBlindPushCostsBandwidth(t *testing.T) {
	// The id pre-exchange is the load-bearing frugality mechanism: blind
	// pushing must cost extra traffic at equal-or-worse usefulness.
	var paperBW, blindBW float64
	for seed := int64(1); seed <= 2; seed++ {
		p, err := ablationRun(Options{}, func(*netsim.CoreTuning) {}, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ablationRun(Options{}, func(c *netsim.CoreTuning) { c.BlindPush = true }, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		paperBW += p.AppBytesPerProcess()
		blindBW += b.AppBytesPerProcess()
	}
	if blindBW <= paperBW {
		t.Fatalf("blind push bandwidth %.0f should exceed paper design %.0f", blindBW, paperBW)
	}
}

func TestAblationGCPressure(t *testing.T) {
	res, err := ablationRun(Options{}, func(*netsim.CoreTuning) {}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var evictions uint64
	for _, n := range res.Nodes {
		evictions += n.Proto.TableEvictions
	}
	if evictions == 0 {
		t.Fatal("capacity-3 table with 8 events must evict")
	}
}

func TestHeadlineClaim(t *testing.T) {
	// Abstract: "an event with a validity period of 180 seconds is
	// received by 95% of the devices which move at 10 m/s" with 80%
	// subscribers. At the scaled-down density-preserving environment we
	// demand >= 80% over a few seeds (measured ~95% +/- seed noise).
	env := rwpBase(Options{})
	var sum float64
	const seeds = 3
	for seed := int64(1); seed <= seeds; seed++ {
		sc := rwpScenario(env, 10, 10, 0.8, seed)
		sc.Name = "headline"
		rel, err := reliabilityPoint(sc, -1, 180*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sum += rel
	}
	got := sum / seeds
	t.Logf("headline reliability (scaled environment) = %.1f%%", got*100)
	if got < 0.8 {
		t.Fatalf("headline reliability = %.2f, want >= 0.80", got)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		t.Fatalf("bad pct %q: %v", s, err)
	}
	return v / 100
}

func TestStormSchemesCannotExploitValidity(t *testing.T) {
	// The defining contrast of ext-storm: single-shot broadcast schemes
	// gain (almost) nothing from longer validities, while the frugal
	// protocol keeps converting validity into reliability.
	env := rwpBase(Options{})
	run := func(proto netsim.ProtocolSpec, v time.Duration) float64 {
		sc := rwpScenario(env, 10, 10, 0.8, 1)
		sc.Protocol = proto
		rel, err := reliabilityPoint(sc, -1, v)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	frugalGain := run(rwpFrugal(), 180*time.Second) - run(rwpFrugal(), 30*time.Second)
	stormGain := run(netsim.ProtocolSpec{Name: "probabilistic-broadcast"}, 180*time.Second) - run(netsim.ProtocolSpec{Name: "probabilistic-broadcast"}, 30*time.Second)
	if frugalGain <= stormGain {
		t.Fatalf("frugal validity gain %.2f should exceed storm gain %.2f",
			frugalGain, stormGain)
	}
	if frugalGain < 0.2 {
		t.Fatalf("frugal gained only %.2f from 6x validity", frugalGain)
	}
}

func TestFig12TableShape(t *testing.T) {
	out, err := Fig12(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	if len(tb.Cols) != 4 { // validity + 3 fractions (quick scale)
		t.Fatalf("cols = %v", tb.Cols)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 validities", tb.NumRows())
	}
	// More subscribers never hurts (row-wise monotone, with slack for
	// single-seed noise).
	for i := 0; i < tb.NumRows(); i++ {
		lo := parsePct(t, tb.Row(i)[1])
		hi := parsePct(t, tb.Row(i)[3])
		if hi+0.15 < lo {
			t.Fatalf("row %d: 100%% subs (%v) far below 20%% subs (%v)", i, hi, lo)
		}
	}
}

func TestFig17TableShape(t *testing.T) {
	out, err := Fig17(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	// 4 protocols x 3 event counts at quick scale.
	if tb.NumRows() != 12 {
		t.Fatalf("rows = %d, want 12", tb.NumRows())
	}
	if tb.Row(0)[0] != "frugal" {
		t.Fatalf("first protocol = %q", tb.Row(0)[0])
	}
}

func TestExtShadowingRuns(t *testing.T) {
	out, err := ExtShadowing(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	if tb.NumRows() != 3 || len(tb.Cols) != 4 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), len(tb.Cols))
	}
	// Shadowing at the calibrated radius must not hurt reliability at
	// the longest validity (long links only add opportunities).
	disc := parsePct(t, tb.Row(2)[1])
	sigma8 := parsePct(t, tb.Row(2)[3])
	if sigma8+0.1 < disc {
		t.Fatalf("sigma=8 (%v) far below disc (%v)", sigma8, disc)
	}
}
