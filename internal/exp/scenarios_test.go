package exp

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// TestScenarioSweepParallelismInvariance asserts the acceptance
// criterion for the registry-backed sweeps: scenario tables — including
// the churn scenario and the workload-generated ones — are
// byte-identical at any parallelism.
func TestScenarioSweepParallelismInvariance(t *testing.T) {
	for _, name := range []string{"manhattan", "highway", "manhattan-churn", "stadium", "rush-hour"} {
		run := func(parallel int) string {
			out, err := ScenarioSweep(name, Options{Seeds: 1, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return out.String()
		}
		serial := run(1)
		parallel := run(8)
		if serial != parallel {
			t.Fatalf("%s tables differ across parallelism:\n--- parallel=1\n%s\n--- parallel=8\n%s",
				name, serial, parallel)
		}
		// The panel enumerates the protocol registry: every registered
		// protocol (including the gossip baseline, which no exp code
		// names) must have a row.
		for _, protoName := range netsim.ProtocolNames() {
			if !strings.Contains(serial, protoName) {
				t.Fatalf("%s table missing registered protocol %q:\n%s", name, protoName, serial)
			}
		}
	}
}

// TestScenariosFamilyCoversRegistry runs the whole family once and
// checks it produces one table per registered non-heavy scenario, in
// registry order — no scenario can be silently skipped, and the heavy
// metro sweeps must stay out of the default family (they run behind
// the "scale" family and explicit -scenario requests).
func TestScenariosFamilyCoversRegistry(t *testing.T) {
	defs := netsim.Scenarios()
	out, err := Scenarios(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	light := 0
	for _, d := range defs {
		if !d.Heavy {
			light++
		}
	}
	if len(out.Tables) != light {
		t.Fatalf("family produced %d tables for %d registered non-heavy scenarios",
			len(out.Tables), light)
	}
	heavySeen := false
	rendered := out.String()
	for _, d := range defs {
		if d.Heavy {
			heavySeen = true
			if strings.Contains(rendered, "Scenario "+d.Name+" ") {
				t.Fatalf("heavy scenario %q swept by the default family", d.Name)
			}
			continue
		}
		if !strings.Contains(rendered, "Scenario "+d.Name+" ") {
			t.Fatalf("no table for registered scenario %q", d.Name)
		}
	}
	if !heavySeen {
		t.Fatal("no heavy scenario registered (metro family missing)")
	}
}

func TestScenarioSweepUnknownName(t *testing.T) {
	_, err := ScenarioSweep("no-such-scenario", Options{Seeds: 1})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// The error must name the valid choices (the CLI prints it as-is).
	if !strings.Contains(err.Error(), "manhattan") || !strings.Contains(err.Error(), "highway") {
		t.Fatalf("error does not list registered scenarios: %v", err)
	}
}
