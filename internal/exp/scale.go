package exp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/netsim"
)

// scalePanel is the fixed protocol panel of the scale family: the
// paper's protocol against the push-pull gossip baseline and the best
// flooding alternative. Unlike the registry-backed scenarios family
// the panel is pinned — the point is how each class scales with N, not
// registry coverage — so Options.Protocol is ignored here, like in the
// figure sweeps.
func scalePanel(tmpl netsim.ProtocolSpec) []netsim.ProtocolSpec {
	return []netsim.ProtocolSpec{
		tmpl, // frugal with the metro tuning
		{Name: "gossip-pushpull"},
		{Name: "interests-aware-flooding"},
	}
}

// megacityFloor is the first node count considered a megacity tier:
// tiers at or above it only run under an explicit Options.Budget.
const megacityFloor = 25000

// scaleCounts returns the node-count axis: city-block to megacity
// scale. The tiers beyond metro-10k are budget-gated (see Scale).
func scaleCounts(full bool) []int {
	if full {
		return []int{300, 1000, 2500, 5000, 10000, 25000, 50000}
	}
	return []int{300, 600, 1200, 2500}
}

// tierEstimate predicts the wall clock of an n-node tier from the
// completed tiers by fitting the growth exponent of the last two
// (clamped to [1,3]; engine cost is near-linear in N at constant
// density, with superlinear log and cache terms). With a single
// completed tier it assumes N^1.5.
func tierEstimate(n int, done []int, durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0 // first tier always runs
	}
	alpha := 1.5
	if len(durs) >= 2 {
		i := len(durs) - 1
		dt := float64(durs[i]) / float64(durs[i-1])
		dn := float64(done[i]) / float64(done[i-1])
		if dt > 1 && dn > 1 {
			alpha = math.Min(3, math.Max(1, math.Log(dt)/math.Log(dn)))
		}
	}
	grow := math.Pow(float64(n)/float64(done[len(done)-1]), alpha)
	return time.Duration(float64(durs[len(durs)-1]) * grow)
}

// Scale is the city-sweep experiment: the metro environment (the
// metro-5k/metro-10k/metro-50k registry template) swept over node
// count for frugal vs gossip vs flooding. The city grows with the
// roster at the metro family's constant ~440 vehicles/km^2
// (netsim.MetroGraphDims) — the honest scaling axis, since packing a
// fixed area denser inflates per-frame reception work quadratically
// and measures congestion, not scale. The default run climbs 300→2500
// nodes on a shortened measurement window; -full runs the template's
// full window up to the 10k-node city, and the megacity tiers (25k,
// 50k) on top when Options.Budget grants the wall clock. One seed per
// point by default — each point is a whole city simulation — so expect
// minutes, not seconds.
//
// Tiers run smallest first, each a parallel (protocol × seed) grid,
// and the table grows tier by tier; enumeration and fold order match
// the untruncated sweep exactly, so a budget only ever cuts trailing
// rows, never changes earlier ones.
func Scale(o Options) (*Output, error) {
	def, ok := netsim.LookupScenario("metro-5k")
	if !ok {
		return nil, fmt.Errorf("exp: metro scenario family not registered")
	}
	counts := scaleCounts(o.Full)
	seeds := o.seedCount(1)
	panel := scalePanel(def.Template.Protocol)
	type sample struct {
		rel, sent, dups, bytes, lost float64
	}
	runTier := func(nodes int) (*gridResults[sample], error) {
		return runGrid(o, []int{len(panel), seeds},
			func(ix []int) (sample, error) {
				sc := def.Instantiate(int64(ix[1]) + 1)
				sc.Nodes = nodes
				sc.Tiles = o.Tiles
				sc.Protocol = panel[ix[0]]
				cols, rows := netsim.MetroGraphDims(sc.Nodes)
				sc.Mobility.Graph = mobility.NewManhattanStyleGraph(cols, rows)
				if !o.Full {
					// Scaling shape, not absolute reproduction: a shorter
					// window keeps the default sweep in minutes.
					sc.Warmup = 5 * time.Second
					sc.Measure = 30 * time.Second
				}
				res, err := netsim.Run(sc)
				if err != nil {
					return sample{}, fmt.Errorf("scale %d nodes, %v: %w", sc.Nodes, sc.Protocol, err)
				}
				return sample{
					rel:   res.Reliability(),
					sent:  res.EventsSentPerProcess(),
					dups:  res.DuplicatesPerProcess(),
					bytes: res.AppBytesPerProcess(),
					lost:  float64(res.FramesLostTotal()),
				}, nil
			})
	}

	type row [7]string
	var rows []row
	var done []int
	var durs []time.Duration
	truncated := ""
	start := time.Now()
	for ci, n := range counts {
		elapsed := time.Since(start)
		est := tierEstimate(n, done, durs)
		if ci > 0 {
			switch {
			case n >= megacityFloor && o.Budget == 0:
				truncated = fmt.Sprintf("megacity tiers ≥%d skipped: set a -budget", megacityFloor)
			case o.Budget > 0 && elapsed+est > o.Budget:
				truncated = fmt.Sprintf("tiers ≥%d skipped: est %v past the %v budget (elapsed %v)",
					n, est.Round(time.Second), o.Budget, elapsed.Round(time.Second))
			}
			if truncated != "" {
				o.progress("scale: %s", truncated)
				break
			}
		}
		if est > 0 {
			o.progress("scale: %d-node tier starting (est %v, elapsed %v, budget %v)",
				n, est.Round(time.Second), elapsed.Round(time.Second), o.Budget)
		}
		t0 := time.Now()
		samples, err := runTier(n)
		if err != nil {
			return nil, err
		}
		durs = append(durs, time.Since(t0))
		done = append(done, n)
		for pi, spec := range panel {
			var rel, sent, dups, bytes, lost metrics.Agg
			for s := 0; s < seeds; s++ {
				v := samples.At(pi, s)
				rel.Add(v.rel)
				sent.Add(v.sent)
				dups.Add(v.dups)
				bytes.Add(v.bytes)
				lost.Add(v.lost)
			}
			rows = append(rows, row{fmt.Sprintf("%d", n), spec.String(), metrics.Pct(rel.Mean()),
				metrics.F1(sent.Mean()), metrics.F1(dups.Mean()), metrics.KB(bytes.Mean()),
				fmt.Sprintf("%.0f", lost.Mean())})
			o.progress("scale %d %v -> %s", n, spec, metrics.Pct(rel.Mean()))
		}
		o.progress("scale: %d-node tier done in %v", n, durs[len(durs)-1].Round(time.Second))
	}
	title := fmt.Sprintf("Scale — metro city sweep, %d seed(s) per point (frugal vs gossip vs flood)", seeds)
	if truncated != "" {
		title += " — " + truncated
	}
	tb := metrics.NewTable(title,
		"nodes", "protocol", "reliability", "copies/proc", "dups/proc", "bandwidth", "frames lost")
	for _, rw := range rows {
		tb.AddRow(rw[:]...)
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
