package exp

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/netsim"
)

// scalePanel is the fixed protocol panel of the scale family: the
// paper's protocol against the push-pull gossip baseline and the best
// flooding alternative. Unlike the registry-backed scenarios family
// the panel is pinned — the point is how each class scales with N, not
// registry coverage — so Options.Protocol is ignored here, like in the
// figure sweeps.
func scalePanel(tmpl netsim.ProtocolSpec) []netsim.ProtocolSpec {
	return []netsim.ProtocolSpec{
		tmpl, // frugal with the metro tuning
		{Name: "gossip-pushpull"},
		{Name: "interests-aware-flooding"},
	}
}

// scaleCounts returns the node-count axis: city-block to city scale.
func scaleCounts(full bool) []int {
	if full {
		return []int{300, 1000, 2500, 5000, 10000}
	}
	return []int{300, 600, 1200, 2500}
}

// Scale is the city-sweep experiment: the metro environment (the
// metro-5k/metro-10k registry template) swept over node count for
// frugal vs gossip vs flooding. The city grows with the roster at the
// metro family's constant ~440 vehicles/km^2 (netsim.MetroGraphDims) —
// the honest scaling axis, since packing a fixed area denser inflates
// per-frame reception work quadratically and measures congestion, not
// scale. The default run climbs 300→2500 nodes on a shortened
// measurement window; -full runs the template's full window up to the
// 10k-node city. One seed per point by default — each point is a whole
// city simulation — so expect minutes, not seconds.
func Scale(o Options) (*Output, error) {
	def, ok := netsim.LookupScenario("metro-5k")
	if !ok {
		return nil, fmt.Errorf("exp: metro scenario family not registered")
	}
	counts := scaleCounts(o.Full)
	seeds := o.seedCount(1)
	panel := scalePanel(def.Template.Protocol)
	type sample struct {
		rel, sent, dups, bytes, lost float64
	}
	samples, err := runGrid(o, []int{len(counts), len(panel), seeds},
		func(ix []int) (sample, error) {
			sc := def.Instantiate(int64(ix[2]) + 1)
			sc.Nodes = counts[ix[0]]
			sc.Protocol = panel[ix[1]]
			cols, rows := netsim.MetroGraphDims(sc.Nodes)
			sc.Mobility.Graph = mobility.NewManhattanStyleGraph(cols, rows)
			if !o.Full {
				// Scaling shape, not absolute reproduction: a shorter
				// window keeps the default sweep in minutes.
				sc.Warmup = 5 * time.Second
				sc.Measure = 30 * time.Second
			}
			res, err := netsim.Run(sc)
			if err != nil {
				return sample{}, fmt.Errorf("scale %d nodes, %v: %w", sc.Nodes, sc.Protocol, err)
			}
			return sample{
				rel:   res.Reliability(),
				sent:  res.EventsSentPerProcess(),
				dups:  res.DuplicatesPerProcess(),
				bytes: res.AppBytesPerProcess(),
				lost:  float64(res.FramesLostTotal()),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Scale — metro city sweep, %d seed(s) per point (frugal vs gossip vs flood)", seeds),
		"nodes", "protocol", "reliability", "copies/proc", "dups/proc", "bandwidth", "frames lost")
	for ci, n := range counts {
		for pi, spec := range panel {
			var rel, sent, dups, bytes, lost metrics.Agg
			for s := 0; s < seeds; s++ {
				v := samples.At(ci, pi, s)
				rel.Add(v.rel)
				sent.Add(v.sent)
				dups.Add(v.dups)
				bytes.Add(v.bytes)
				lost.Add(v.lost)
			}
			tb.AddRow(fmt.Sprintf("%d", n), spec.String(), metrics.Pct(rel.Mean()),
				metrics.F1(sent.Mean()), metrics.F1(dups.Mean()), metrics.KB(bytes.Mean()),
				fmt.Sprintf("%.0f", lost.Mean()))
			o.progress("scale %d %v -> %s", n, spec, metrics.Pct(rel.Mean()))
		}
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
