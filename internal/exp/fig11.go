package exp

import (
	"time"

	"repro/internal/metrics"
)

// Fig11 reproduces Figure 11: probability of event reception as a
// function of the validity period, the speed of the processes and the
// number of subscribers (20% and 80%), in the random waypoint model.
// One table per subscriber fraction; rows are validity periods, columns
// speeds.
func Fig11(o Options) (*Output, error) {
	env := rwpBase(o)
	fracs := []float64{0.2, 0.8}
	speeds := []float64{0, 1, 5, 10, 20, 30, 40}
	validities := []time.Duration{
		20 * time.Second, 60 * time.Second, 100 * time.Second,
		140 * time.Second, 180 * time.Second,
	}
	seeds := o.seedCount(5)
	if o.Full {
		seeds = o.seedCount(30)
		validities = []time.Duration{
			20 * time.Second, 40 * time.Second, 60 * time.Second,
			80 * time.Second, 100 * time.Second, 120 * time.Second,
			140 * time.Second, 160 * time.Second, 180 * time.Second,
		}
	} else {
		speeds = []float64{0, 1, 10, 30}
	}

	// Fan the (fraction, validity, speed, seed) grid out over the
	// worker pool, then aggregate by multi-index.
	rels, err := runGrid(o, []int{len(fracs), len(validities), len(speeds), seeds},
		func(ix []int) (float64, error) {
			sc := rwpScenario(env, speeds[ix[2]], speeds[ix[2]], fracs[ix[0]], int64(ix[3])+1)
			sc.Name = "fig11"
			return reliabilityPoint(sc, -1, validities[ix[1]])
		})
	if err != nil {
		return nil, err
	}

	out := &Output{}
	for fi, frac := range fracs {
		cols := []string{"validity[s]"}
		for _, s := range speeds {
			cols = append(cols, metrics.F1(s)+"mps")
		}
		tb := metrics.NewTable(
			"Fig 11 — reliability, random waypoint, "+fmtPctCol(frac)+" subscribers",
			cols...)
		for vi, v := range validities {
			row := []string{fmtSeconds(v)}
			for si, speed := range speeds {
				var agg metrics.Agg
				for seed := 0; seed < seeds; seed++ {
					agg.Add(rels.At(fi, vi, si, seed))
				}
				row = append(row, metrics.Pct(agg.Mean()))
				o.progress("fig11 frac=%v speed=%v validity=%v -> %s",
					frac, speed, v, metrics.Pct(agg.Mean()))
			}
			tb.AddRow(row...)
		}
		out.Tables = append(out.Tables, tb)
	}
	return out, nil
}
