package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism resolves Options.Parallel: zero (or negative) selects one
// worker per CPU.
func (o Options) parallelism() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.NumCPU()
}

// runJobs is the shared run-scheduler behind every sweep: it executes
// jobs 0..n-1 on a pool of o.parallelism() workers and returns the
// results in job order.
//
// Determinism contract: each job must be a pure function of its index —
// the sweeps enumerate their (protocol, params, seed) grid up front and
// each job is one netsim.Run, which is itself a pure function of
// (Scenario, Seed). Results are aggregated by the caller in enumeration
// order after all jobs finish, so sweep tables are byte-identical at
// any parallelism (including the float-sensitive Welford accumulators,
// which always fold samples in the same order).
//
// On failure the error of the lowest-indexed failing job is returned —
// also independent of parallelism: indices are claimed in order, every
// claimed index runs to completion (the abort check happens before
// claiming, never after), and claiming index j implies every i < j was
// claimed earlier — so if job j fails, a lower failing job has always
// recorded its error too. Unclaimed jobs after a failure are skipped.
//
// With Options.Progress set, one liveness line is emitted as each job
// finishes (serialized across workers); the per-point lines the sweeps
// emit during aggregation remain deterministic.
func runJobs[T any](o Options, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	var mu sync.Mutex
	done := 0
	tick := func() {
		if o.Progress == nil {
			return
		}
		mu.Lock()
		done++
		o.progress("%d/%d simulations done", done, n)
		mu.Unlock()
	}
	workers := min(o.parallelism(), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
			tick()
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := job(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
				tick()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// gridResults holds one result per point of a dense multi-dimensional
// sweep grid, addressable with the consumer's own loop indices — see
// runGrid.
type gridResults[T any] struct {
	dims []int
	vals []T
}

// At returns the result at the given multi-index, one index per
// dimension passed to runGrid.
func (g *gridResults[T]) At(idx ...int) T {
	if len(idx) != len(g.dims) {
		panic(fmt.Sprintf("exp: At got %d indices for %d dims", len(idx), len(g.dims)))
	}
	flat := 0
	for d, i := range idx {
		if i < 0 || i >= g.dims[d] {
			panic(fmt.Sprintf("exp: index %d out of range for dim %d (size %d)", i, d, g.dims[d]))
		}
		flat = flat*g.dims[d] + i
	}
	return g.vals[flat]
}

// runGrid fans a dense parameter grid out over runJobs: dims are the
// dimension sizes (e.g. {len(fracs), len(validities), seeds}) and job
// receives the multi-index of its point. Consumers read results back
// with At using their own loop indices, so the enumeration side and
// the aggregation side cannot drift out of lock-step — the failure
// mode of hand-rolled flat counters, which silently misattribute
// samples to the wrong table cells when one side's loop nesting
// changes.
func runGrid[T any](o Options, dims []int, job func(idx []int) (T, error)) (*gridResults[T], error) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	vals, err := runJobs(o, n, func(flat int) (T, error) {
		idx := make([]int, len(dims))
		for d := len(dims) - 1; d >= 0; d-- {
			idx[d] = flat % dims[d]
			flat /= dims[d]
		}
		return job(idx)
	})
	if err != nil {
		return nil, err
	}
	return &gridResults[T]{dims: dims, vals: vals}, nil
}
