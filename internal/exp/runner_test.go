package exp

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestConcurrentRunsIdentical pins the invariant the parallel runner
// rests on: netsim.Run is a pure function of (Scenario, Seed), even
// when many runs execute concurrently on different goroutines.
func TestConcurrentRunsIdentical(t *testing.T) {
	scenario := func() (netsim.Scenario, time.Duration) {
		sc := rwpScenario(rwpBase(Options{}), 10, 10, 0.8, 7)
		sc.Name = "determinism"
		sc.DeliveryLog = true // the test diffs full delivery records
		return sc, 30 * time.Second
	}
	sc, v := scenario()
	serial, err := reliabilityRun(sc, -1, v)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*netsim.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc, v := scenario()
			results[w], errs[w] = reliabilityRun(sc, -1, v)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if !reflect.DeepEqual(results[w].Nodes, serial.Nodes) ||
			!reflect.DeepEqual(results[w].Deliveries, serial.Deliveries) ||
			!reflect.DeepEqual(results[w].Outcomes, serial.Outcomes) {
			t.Fatalf("concurrent run %d differs from serial run", w)
		}
	}
	if serial.DeliveredTotal() == 0 {
		t.Fatal("scenario delivered nothing; determinism check is vacuous")
	}
}

// TestSweepParallelismInvariance asserts the acceptance criterion
// end-to-end: a sweep's rendered tables are byte-identical at
// parallelism 1 and parallelism N.
func TestSweepParallelismInvariance(t *testing.T) {
	run := func(parallel int) string {
		out, err := Fig13(Options{Seeds: 1, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("fig13 tables differ across parallelism:\n--- parallel=1\n%s\n--- parallel=8\n%s",
			serial, parallel)
	}
}

// TestTiledParallelInvariance composes the two parallelism axes: a
// seed sweep of tile-parallel city runs (Scenario.Tiles) through the
// worker pool (-parallel) must produce the same fingerprints as the
// serial, untiled sweep — run by run, byte for byte.
func TestTiledParallelInvariance(t *testing.T) {
	def, ok := netsim.LookupScenario("metro-slice")
	if !ok {
		t.Fatal("metro-slice not registered")
	}
	const seeds = 3
	sweep := func(parallel, tiles int) []string {
		fps, err := runJobs(Options{Parallel: parallel}, seeds, func(i int) (string, error) {
			sc := def.Instantiate(int64(i) + 1)
			sc.Warmup = 5 * time.Second
			sc.Measure = 10 * time.Second
			sc.Tiles = tiles
			res, err := netsim.Run(sc)
			if err != nil {
				return "", err
			}
			return res.Fingerprint(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fps
	}
	want := sweep(1, 1)
	for _, tc := range [][2]int{{1, 4}, {4, 4}, {4, 1}} {
		if got := sweep(tc[0], tc[1]); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d tiles=%d fingerprints %v, want %v", tc[0], tc[1], got, want)
		}
	}
}

// TestRunJobsOrderAndErrors covers the scheduler itself: results come
// back in job order, and the lowest-indexed failing job wins
// regardless of parallelism.
func TestRunJobsOrderAndErrors(t *testing.T) {
	for _, parallel := range []int{1, 4, 16} {
		o := Options{Parallel: parallel}
		got, err := runJobs(o, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
	boom := func(i int) (int, error) {
		if i == 17 || i == 63 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, parallel := range []int{1, 4, 16} {
		_, err := runJobs(Options{Parallel: parallel}, 100, boom)
		if err == nil || err.Error() != "job 17 failed" {
			t.Fatalf("parallel=%d: err = %v, want job 17's", parallel, err)
		}
	}
}
