package exp

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/proto"
)

// scenarioPanel is the protocol panel one registered scenario is swept
// against: every protocol in the proto registry, in registry (sorted)
// order, so a newly registered baseline is compared automatically. The
// panel entry matching the template's own protocol reuses the
// template's spec — its tuning is part of the declared workload.
// Options.Protocol restricts the panel to a single registered name
// (cmd/experiments -proto).
func scenarioPanel(def netsim.ScenarioDef, o Options) ([]netsim.ProtocolSpec, error) {
	tmpl := def.Template.Protocol
	var out []netsim.ProtocolSpec
	for _, d := range proto.Protocols() {
		if o.Protocol != "" && d.Name != o.Protocol {
			continue
		}
		spec := netsim.ProtocolSpec{Name: d.Name}
		if d.Name == tmpl.String() {
			spec.Params = tmpl.Params
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exp: unknown protocol %q (registered: %s)",
			o.Protocol, strings.Join(proto.ProtocolNames(), ", "))
	}
	return out, nil
}

// Scenarios is the registry-backed experiment family: every scenario
// registered with netsim.RegisterScenario — the paper's environments
// plus the vehicular (VANET-style) extensions — is swept across every
// registered protocol, one table per scenario. The family iterates
// both registries itself, so a newly registered workload or baseline
// shows up here (and in cmd/experiments -list) with no further wiring.
// Heavy scenarios (the metro city sweeps) are skipped: they run behind
// the "scale" family and explicit -scenario requests instead.
func Scenarios(o Options) (*Output, error) {
	var tables []*metrics.Table
	for _, def := range netsim.Scenarios() {
		if def.Heavy {
			continue
		}
		out, err := scenarioSweep(def, o)
		if err != nil {
			return nil, err
		}
		tables = append(tables, out.Tables...)
	}
	return &Output{Tables: tables}, nil
}

// ScenarioSweep runs the frugal-vs-baselines comparison for one
// registered scenario (cmd/experiments -scenario).
func ScenarioSweep(name string, o Options) (*Output, error) {
	def, ok := netsim.LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown scenario %q (registered: %s)",
			name, strings.Join(netsim.ScenarioNames(), ", "))
	}
	return scenarioSweep(def, o)
}

// scenarioSweep fans (protocol, seed) over the worker pool and renders
// one table: per-protocol reliability, event copies sent, duplicates
// and bandwidth, averaged over seeds. Like every sweep it aggregates in
// enumeration order, so output is byte-identical at any parallelism.
func scenarioSweep(def netsim.ScenarioDef, o Options) (*Output, error) {
	seeds := o.seedCount(3)
	if o.Full {
		seeds = o.seedCount(30)
	}
	panel, err := scenarioPanel(def, o)
	if err != nil {
		return nil, err
	}
	type sample struct {
		rel, sent, dups, bytes float64
	}
	samples, err := runGrid(o, []int{len(panel), seeds},
		func(ix []int) (sample, error) {
			sc := def.Instantiate(int64(ix[1]) + 1)
			sc.Protocol = panel[ix[0]]
			sc.Sample = o.Sample
			res, err := netsim.Run(sc)
			if err != nil {
				return sample{}, fmt.Errorf("scenario %s, %v: %w", def.Name, sc.Protocol, err)
			}
			if err := o.dumpSeries(fmt.Sprintf("scenario-%s-%v-seed%d",
				def.Name, sc.Protocol, ix[1]+1), res); err != nil {
				return sample{}, err
			}
			return sample{
				rel:   res.Reliability(),
				sent:  res.EventsSentPerProcess(),
				dups:  res.DuplicatesPerProcess(),
				bytes: res.AppBytesPerProcess(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Scenario %s — %s (%d seeds)", def.Name, def.Description, seeds),
		"protocol", "reliability", "copies/proc", "dups/proc", "bandwidth")
	for pi, spec := range panel {
		var rel, sent, dups, bytes metrics.Agg
		for seed := 0; seed < seeds; seed++ {
			s := samples.At(pi, seed)
			rel.Add(s.rel)
			sent.Add(s.sent)
			dups.Add(s.dups)
			bytes.Add(s.bytes)
		}
		tb.AddRow(spec.String(), metrics.Pct(rel.Mean()),
			metrics.F1(sent.Mean()), metrics.F1(dups.Mean()), metrics.KB(bytes.Mean()))
		o.progress("scenario %s %v -> %s", def.Name, spec, metrics.Pct(rel.Mean()))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
