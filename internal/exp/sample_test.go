package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestGoldenSampleInvariance re-runs representative golden sweeps with
// sampling enabled: every rendered table must still match the on-disk
// golden produced without sampling — Scenario.Sample is observation-only
// all the way up through the sweep aggregation (the satellite
// determinism-under-observation contract, pinned against bytes).
func TestGoldenSampleInvariance(t *testing.T) {
	for _, name := range []string{"scenario-manhattan", "scenario-highway", "workloads"} {
		for _, c := range goldenCases() {
			if c.name != name {
				continue
			}
			t.Run(name+"-sampled", func(t *testing.T) {
				out, err := c.run(Options{Seeds: goldenSeeds, Sample: 2 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, name, out.String())
			})
		}
	}
}

// TestSeriesDump pins the -sample/-series-out plumbing: a sampled
// scenario sweep writes one CSV curve per (protocol, seed) sweep point.
func TestSeriesDump(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		Seeds:     2,
		Protocol:  "frugal",
		Sample:    5 * time.Second,
		SeriesDir: dir,
	}
	if _, err := ScenarioSweep("manhattan", o); err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed <= 2; seed++ {
		path := filepath.Join(dir, "scenario-manhattan-frugal-seed"+string(rune('0'+seed))+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing series dump: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has %d lines, want header + points", path, len(lines))
		}
		if !strings.HasPrefix(lines[0], "t_s,published,delivery_ratio") {
			t.Fatalf("%s header wrong: %s", path, lines[0])
		}
	}
	// Without SeriesDir nothing is written and nothing is sampled into
	// the table path — the same sweep still matches its golden above.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("dump dir has %d files, want 2", len(ents))
	}
}
