package exp

import (
	"time"

	"repro/internal/metrics"
)

// cityValidity is the validity period used by Figures 13-15 (150 s).
const cityValidity = 150 * time.Second

// cityRotation measures city-section reliability with every process
// becoming the original publisher in turn (paper Section 5.2), skipping
// publishers that are not subscribers in interest sweeps. It returns the
// overall mean reliability and the per-publisher means.
func cityRotation(o Options, hbUpper time.Duration, frac float64, validity time.Duration, seeds int) (float64, map[int]float64, error) {
	const pubs = 15
	type rot struct {
		rel        float64
		subscribed bool
	}
	runs, err := runGrid(o, []int{seeds, pubs}, func(ix []int) (rot, error) {
		seed, pub := ix[0], ix[1]
		sc := cityScenario(hbUpper, frac, int64(seed)+1)
		sc.Name = "city"
		res, err := reliabilityRun(sc, pub, validity)
		if err != nil {
			return rot{}, err
		}
		return rot{rel: res.Reliability(), subscribed: res.Nodes[pub].Subscribed}, nil
	})
	if err != nil {
		return 0, nil, err
	}
	perPub := make(map[int]*metrics.Agg)
	var overall metrics.Agg
	for seed := 0; seed < seeds; seed++ {
		for pub := 0; pub < pubs; pub++ {
			r := runs.At(seed, pub)
			if !r.subscribed {
				continue // interest sweeps rotate among subscribers only
			}
			overall.Add(r.rel)
			a := perPub[pub]
			if a == nil {
				a = &metrics.Agg{}
				perPub[pub] = a
			}
			a.Add(r.rel)
		}
	}
	means := make(map[int]float64, len(perPub))
	for pub, a := range perPub {
		means[pub] = a.Mean()
	}
	return overall.Mean(), means, nil
}

// Fig13 reproduces Figure 13: probability of event reception as a
// function of the heartbeat upper-bound period (1-5 s), city section,
// 100% subscribers, validity 150 s.
func Fig13(o Options) (*Output, error) {
	seeds := o.seedCount(3)
	if o.Full {
		seeds = o.seedCount(30)
	}
	bounds := []time.Duration{
		time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
	}
	tb := metrics.NewTable(
		"Fig 13 — reliability vs heartbeat upper-bound period (city section)",
		"hb-bound[s]", "reliability")
	for _, b := range bounds {
		mean, _, err := cityRotation(o, b, 1.0, cityValidity, seeds)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmtSeconds(b), metrics.Pct(mean))
		o.progress("fig13 bound=%v -> %s", b, metrics.Pct(mean))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// cityInterestSweep backs Figures 14 and 15: heartbeat bound 1 s,
// validity 150 s, subscribers 20%..100%. It returns the overall mean and
// the max-min spread across publishers for each fraction.
func cityInterestSweep(o Options) (means, spreads map[int]float64, err error) {
	seeds := o.seedCount(3)
	if o.Full {
		seeds = o.seedCount(30)
	}
	means = make(map[int]float64)
	spreads = make(map[int]float64)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		mean, perPub, err := cityRotation(o, time.Second, frac, cityValidity, seeds)
		if err != nil {
			return nil, nil, err
		}
		lo, hi := 1.0, 0.0
		for _, m := range perPub {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if len(perPub) == 0 {
			lo, hi = 0, 0
		}
		pct := int(frac*100 + 0.5)
		means[pct] = mean
		spreads[pct] = hi - lo
		o.progress("city interest frac=%v -> mean %s spread %s",
			frac, metrics.Pct(mean), metrics.Pct(hi-lo))
	}
	return means, spreads, nil
}

// Fig14 reproduces Figure 14: probability of event reception as a
// function of the number of subscribers (city section).
func Fig14(o Options) (*Output, error) {
	means, _, err := cityInterestSweep(o)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig 14 — reliability vs subscribers (city section)",
		"subscribers", "reliability")
	for _, pct := range sortedKeysInt(means) {
		tb.AddRow(fmtPctCol(float64(pct)/100), metrics.Pct(means[pct]))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// Fig15 reproduces Figure 15: the maximum difference between the
// per-publisher reliabilities (city section), caused by the path each
// publisher takes.
func Fig15(o Options) (*Output, error) {
	_, spreads, err := cityInterestSweep(o)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig 15 — max-min reliability difference between publishers (city section)",
		"subscribers", "spread")
	for _, pct := range sortedKeysInt(spreads) {
		tb.AddRow(fmtPctCol(float64(pct)/100), metrics.Pct(spreads[pct]))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}

// Fig16 reproduces Figure 16: probability of event reception as a
// function of the event validity period (city section, heartbeat bound
// 1 s, 100% subscribers).
func Fig16(o Options) (*Output, error) {
	seeds := o.seedCount(3)
	if o.Full {
		seeds = o.seedCount(30)
	}
	validities := []time.Duration{
		25 * time.Second, 50 * time.Second, 75 * time.Second,
		100 * time.Second, 125 * time.Second, 150 * time.Second,
	}
	tb := metrics.NewTable(
		"Fig 16 — reliability vs event validity period (city section)",
		"validity[s]", "reliability")
	for _, v := range validities {
		mean, _, err := cityRotation(o, time.Second, 1.0, v, seeds)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmtSeconds(v), metrics.Pct(mean))
		o.progress("fig16 validity=%v -> %s", v, metrics.Pct(mean))
	}
	return &Output{Tables: []*metrics.Table{tb}}, nil
}
