package exp

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Ablations quantifies the design choices DESIGN.md calls out by flipping
// one mechanism at a time on a fixed mid-size scenario:
//
//   - proportional back-off (BODelay ~ 1/|eventsToSend|) vs fixed,
//   - suppression (cancel-on-overhear) on vs off,
//   - the event-id pre-exchange vs blind pushing,
//   - the adaptive heartbeat vs a fixed period,
//
// plus the event-table GC policy (Equation 1 vs FIFO vs random) on a
// memory-starved variant.
func Ablations(o Options) (*Output, error) {
	seeds := o.seedCount(3)
	if o.Full {
		seeds = o.seedCount(10)
	}
	variants := []struct {
		name string
		mut  func(*netsim.CoreTuning)
	}{
		{"paper", func(*netsim.CoreTuning) {}},
		{"fixed-backoff", func(c *netsim.CoreTuning) { c.FixedBackoff = true }},
		{"no-suppression", func(c *netsim.CoreTuning) { c.DisableSuppression = true }},
		{"blind-push", func(c *netsim.CoreTuning) { c.BlindPush = true }},
		{"fixed-heartbeat", func(c *netsim.CoreTuning) { c.DisableAdaptiveHB = true }},
	}
	type sample struct {
		rel, bw, sent, dup float64
	}
	samples, err := runGrid(o, []int{len(variants), seeds}, func(ix []int) (sample, error) {
		res, err := ablationRun(o, variants[ix[0]].mut, 0, int64(ix[1])+1)
		if err != nil {
			return sample{}, err
		}
		return sample{
			rel:  res.Reliability(),
			bw:   res.AppBytesPerProcess(),
			sent: res.EventsSentPerProcess(),
			dup:  res.DuplicatesPerProcess(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Ablations — mechanism off vs paper design (random waypoint, 10 m/s, 80% subscribers, 5 events)",
		"variant", "reliability", "bw/process", "events-sent", "duplicates")
	for vi, v := range variants {
		var rel, bw, sent, dup metrics.Agg
		for seed := 0; seed < seeds; seed++ {
			s := samples.At(vi, seed)
			rel.Add(s.rel)
			bw.Add(s.bw)
			sent.Add(s.sent)
			dup.Add(s.dup)
		}
		tb.AddRow(v.name, metrics.Pct(rel.Mean()), metrics.KB(bw.Mean()),
			metrics.F1(sent.Mean()), metrics.F1(dup.Mean()))
		o.progress("ablation %s -> rel=%s", v.name, metrics.Pct(rel.Mean()))
	}

	policies := []struct {
		name   string
		policy core.GCPolicy
	}{
		{"paper (val/(fwd+val))", core.GCPaper},
		{"fifo", core.GCFIFO},
		{"random", core.GCRandom},
	}
	type gcSample struct {
		rel, evict float64
	}
	gcSamples, err := runGrid(o, []int{len(policies), seeds}, func(ix []int) (gcSample, error) {
		res, err := ablationRun(o, func(c *netsim.CoreTuning) {
			c.GCPolicy = policies[ix[0]].policy
		}, 3, int64(ix[1])+1)
		if err != nil {
			return gcSample{}, err
		}
		var ev float64
		for _, n := range res.Nodes {
			ev += float64(n.Proto.TableEvictions)
		}
		return gcSample{rel: res.Reliability(), evict: ev / float64(len(res.Nodes))}, nil
	})
	if err != nil {
		return nil, err
	}
	gcTable := metrics.NewTable(
		"Ablations — event-table GC policy under memory pressure (table capacity 3, 8 events)",
		"policy", "reliability", "evictions/process")
	for pi, pol := range policies {
		var rel, evict metrics.Agg
		for seed := 0; seed < seeds; seed++ {
			s := gcSamples.At(pi, seed)
			rel.Add(s.rel)
			evict.Add(s.evict)
		}
		gcTable.AddRow(pol.name, metrics.Pct(rel.Mean()), metrics.F1(evict.Mean()))
		o.progress("gc ablation %s -> rel=%s", pol.name, metrics.Pct(rel.Mean()))
	}
	return &Output{Tables: []*metrics.Table{tb, gcTable}}, nil
}

// ablationRun executes the ablation scenario: random waypoint, 10 m/s,
// 80% subscribers, events with a validity spanning the window. maxEvents
// 0 keeps the table unbounded; the GC ablation shrinks it to force
// evictions (8 events through a 3-slot table).
func ablationRun(o Options, mut func(*netsim.CoreTuning), maxEvents int, seed int64) (*netsim.Result, error) {
	env := rwpBase(o)
	validity := 60 * time.Second
	if o.Full {
		validity = 120 * time.Second
	}
	sc := rwpScenario(env, 10, 10, 0.8, seed)
	sc.Name = "ablation"
	tun := frugalTuning(sc)
	tun.HBUpperBound = 2 * time.Second // leave headroom for the adaptive HB to matter
	tun.MaxEvents = maxEvents
	mut(&tun)
	sc.Protocol = netsim.FrugalSpec(tun)
	n := 5
	if maxEvents > 0 {
		n = 8 // overflow the table to exercise GC
	}
	for i := 0; i < n; i++ {
		sc.Publications = append(sc.Publications, netsim.Publication{
			Offset:    time.Duration(i) * 500 * time.Millisecond,
			Publisher: -1,
			Validity:  validity,
		})
	}
	sc.Measure = validity
	return netsim.Run(sc)
}
