package mobility

import "repro/internal/geo"

// NewCampusGraph builds the synthetic stand-in for the EPFL campus map
// used by the paper's city-section runs (the real map and its measured
// traffic are not available; see DESIGN.md "Substitutions").
//
// The campus is a 1200x900 m street grid (matching the paper's stated
// extent) with 150 m blocks. Two arterial roads — one horizontal, one
// vertical, crossing near the center — carry high popularity weight and a
// 13 m/s limit; side streets carry weight 1 and limits cycling through
// 8-11 m/s. This reproduces the statistical structure the paper relies
// on: most trips funnel through a few hot-spot roads where processes
// meet, while speeds stay within the stated 8-13 m/s band.
func NewCampusGraph() *Graph {
	const (
		cols    = 9 // 9 columns x 150 m = 1200 m
		rows    = 7 // 7 rows x 150 m = 900 m
		spacing = 150.0

		arterialRow    = 3
		arterialCol    = 4
		arterialLimit  = 13.0
		arterialWeight = 6.0
	)
	g := &Graph{}
	idx := func(c, r int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddIntersection(geo.Pt(float64(c)*spacing, float64(r)*spacing))
		}
	}
	sideLimit := func(c, r int) float64 { return 8 + float64((c+r)%4) } // 8..11 m/s
	// Horizontal streets.
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			limit, weight := sideLimit(c, r), 1.0
			if r == arterialRow {
				limit, weight = arterialLimit, arterialWeight
			}
			mustStreet(g, idx(c, r), idx(c+1, r), limit, weight)
		}
	}
	// Vertical streets.
	for c := 0; c < cols; c++ {
		for r := 0; r+1 < rows; r++ {
			limit, weight := sideLimit(c, r), 1.0
			if c == arterialCol {
				limit, weight = arterialLimit, arterialWeight
			}
			mustStreet(g, idx(c, r), idx(c, r+1), limit, weight)
		}
	}
	// A pair of one-way rings around the central blocks exercises the
	// paper's "one way lanes" guideline without breaking connectivity.
	ring := []int{idx(3, 2), idx(5, 2), idx(5, 4), idx(3, 4)}
	for i := range ring {
		mustRoad(g, ring[i], ring[(i+1)%len(ring)], 9, 2)
	}
	return g
}

func mustStreet(g *Graph, a, b int, limit, weight float64) {
	if err := g.AddStreet(a, b, limit, weight); err != nil {
		panic(err)
	}
}

func mustRoad(g *Graph, a, b int, limit, weight float64) {
	if err := g.AddRoad(a, b, limit, weight); err != nil {
		panic(err)
	}
}
