package mobility

import (
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// graphTraveler carries the state shared by the graph-constrained
// vehicular models (City, Manhattan, Highway): popularity-weighted
// destination choice, trajectory bookkeeping over a street network,
// and the Position/Speed query surface. Each model supplies its trip
// builder (nextTrip) and layers its own speed and dwell rules on top
// via the hooks passed to drive.
type graphTraveler struct {
	g      *Graph
	rng    *rand.Rand
	traj   trajectory
	at     int // intersection where the trajectory currently ends
	cumPop []float64
	// nextTrip appends the legs of one trip to the trajectory; set to
	// the owning model's trip builder at construction.
	nextTrip func()
}

func newGraphTraveler(g *Graph, rng *rand.Rand, nextTrip func()) graphTraveler {
	// The popularity prefix sums are a pure function of the shared
	// graph: take the memoized slice instead of rebuilding V entries
	// per vehicle.
	return graphTraveler{g: g, rng: rng, nextTrip: nextTrip, cumPop: g.cumPopularity()}
}

// extend grows the trajectory until it covers instant at.
func (t *graphTraveler) extend(at sim.Time) {
	for t.traj.covered() <= at {
		t.nextTrip()
	}
}

// Position implements Model (promoted into every embedding model).
func (t *graphTraveler) Position(at sim.Time) geo.Point {
	t.extend(at)
	return t.traj.find(at).position(at)
}

// Speed implements Model.
func (t *graphTraveler) Speed(at sim.Time) float64 {
	t.extend(at)
	return t.traj.find(at).speedAt(at)
}

// startAt pins the traveler's initial position to intersection i.
func (t *graphTraveler) startAt(i int) {
	t.at = i
	p := t.g.Point(i)
	t.traj.append(leg{from: p, to: p})
}

// weightedIntersection draws an intersection biased by road popularity.
func (t *graphTraveler) weightedIntersection() int {
	total := t.cumPop[len(t.cumPop)-1]
	x := t.rng.Float64() * total
	for i, cum := range t.cumPop {
		if x < cum {
			return i
		}
	}
	return len(t.cumPop) - 1
}

// pickDest draws a popularity-weighted destination distinct from the
// current intersection.
func (t *graphTraveler) pickDest() int {
	dest := t.weightedIntersection()
	for dest == t.at {
		dest = t.weightedIntersection()
	}
	return dest
}

// drive appends the legs of one trip to dest: each road is driven at
// speed(r) m/s, and after reaching intersection i the vehicle dwells
// wait(i, arrive, final) (final marks the trip destination). Hooks are
// invoked in path order, so any randomness they draw is consumed in a
// deterministic sequence.
func (t *graphTraveler) drive(dest int, speed func(r Road) float64, wait func(i int, arrive sim.Time, final bool) time.Duration) {
	path, err := t.g.ShortestPath(t.at, dest)
	if err != nil {
		// Validate() guarantees reachability; this is unreachable but
		// kept defensive: dwell in place to guarantee progress.
		last := t.traj.legs[len(t.traj.legs)-1]
		t.traj.append(leg{
			start: last.end, moveEnd: last.end, end: last.end + sim.Second,
			from: last.to, to: last.to,
		})
		return
	}
	start := t.traj.covered()
	pos := t.g.Point(t.at)
	for i := 1; i < len(path); i++ {
		r, ok := t.g.road(path[i-1], path[i])
		if !ok {
			continue
		}
		v := speed(r)
		to := t.g.Point(path[i])
		moveEnd := start + sim.Seconds(r.Length/v)
		end := moveEnd.Add(wait(path[i], moveEnd, i == len(path)-1))
		if end == start {
			end = start + 1
		}
		t.traj.append(leg{
			start: start, moveEnd: moveEnd, end: end,
			from: pos, to: to, speed: v,
		})
		pos = to
		start = end
	}
	t.at = dest
}
