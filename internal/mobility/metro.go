package mobility

import "repro/internal/geo"

// NewMetroGraph builds the city-scale street network behind the
// metro-5k scenario: a 36x28-intersection Manhattan-style grid on
// 110 m blocks (3850x2970 m, ~11.4 km^2) with the same three speed
// tiers as the downtown grid — avenues every third column (14 m/s,
// heavy weight), arterial cross-streets every third row (11 m/s) and
// side streets cycling 8-10 m/s. At ~440 vehicles/km^2 this is the
// paper's urban density pushed to city scale: each radio neighborhood
// is a tiny fraction of the roster — the regime the engine's timer
// wheel and spatial index are built for. Larger populations grow the
// city at the same density (see NewManhattanStyleGraph callers in
// netsim/exp) rather than packing it denser: reception work per
// second scales with N x density, so fixed-area growth would be
// quadratic in N.
//
// The graph is deliberately one Validate()-clean strongly-connected
// component so popularity-weighted trips can run anywhere in the city.
func NewMetroGraph() *Graph {
	return NewManhattanStyleGraph(36, 28)
}

// NewManhattanStyleGraph lays out cols x rows intersections on 110 m
// blocks with the downtown grid's speed tiers (NewManhattanGraph fixes
// 10x8, NewMetroGraph 36x28). It panics below the 2x2 minimum.
func NewManhattanStyleGraph(cols, rows int) *Graph {
	if cols < 2 || rows < 2 {
		panic("mobility: Manhattan-style grid needs at least 2x2 intersections")
	}
	const (
		spacing = 110.0

		avenueLimit    = 14.0
		avenueWeight   = 5.0
		arterialLimit  = 11.0
		arterialWeight = 3.0
	)
	g := &Graph{}
	idx := func(c, r int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddIntersection(geo.Pt(float64(c)*spacing, float64(r)*spacing))
		}
	}
	sideLimit := func(c, r int) float64 { return 8 + float64((c+r)%3) } // 8..10 m/s
	// Horizontal streets: arterials every third row.
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			limit, weight := sideLimit(c, r), 1.0
			if r%3 == 1 {
				limit, weight = arterialLimit, arterialWeight
			}
			mustStreet(g, idx(c, r), idx(c+1, r), limit, weight)
		}
	}
	// Vertical streets: avenues every third column.
	for c := 0; c < cols; c++ {
		for r := 0; r+1 < rows; r++ {
			limit, weight := sideLimit(c, r), 1.0
			if c%3 == 0 {
				limit, weight = avenueLimit, avenueWeight
			}
			mustStreet(g, idx(c, r), idx(c, r+1), limit, weight)
		}
	}
	return g
}
