package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func cityCfg(t *testing.T) CityConfig {
	t.Helper()
	return CityConfig{
		Graph:     NewCampusGraph(),
		StopProb:  0.3,
		StopMin:   2 * time.Second,
		StopMax:   10 * time.Second,
		DestPause: 5 * time.Second,
	}
}

func TestCityConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*CityConfig)
		ok   bool
	}{
		{"valid", func(*CityConfig) {}, true},
		{"nil graph", func(c *CityConfig) { c.Graph = nil }, false},
		{"bad prob", func(c *CityConfig) { c.StopProb = 1.5 }, false},
		{"inverted stops", func(c *CityConfig) { c.StopMin = time.Minute; c.StopMax = time.Second }, false},
		{"negative dest pause", func(c *CityConfig) { c.DestPause = -time.Second }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := cityCfg(t)
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestCityStartsAtIntersection(t *testing.T) {
	cfg := cityCfg(t)
	c := NewCity(cfg, rand.New(rand.NewSource(1)))
	start := c.Position(0)
	found := false
	for i := 0; i < cfg.Graph.Intersections(); i++ {
		if cfg.Graph.Point(i) == start {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("start %v is not an intersection", start)
	}
}

func TestCitySpeedWithinLimits(t *testing.T) {
	c := NewCity(cityCfg(t), rand.New(rand.NewSource(2)))
	moving := 0
	for s := 0.0; s < 1200; s += 0.5 {
		v := c.Speed(sim.Seconds(s))
		if v != 0 {
			moving++
			if v < 8 || v > 13 {
				t.Fatalf("speed %v outside the campus 8-13 m/s band", v)
			}
		}
	}
	if moving == 0 {
		t.Fatal("node never moved")
	}
}

func TestCityStaysOnCampus(t *testing.T) {
	area := geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1201, 901)}
	c := NewCity(cityCfg(t), rand.New(rand.NewSource(3)))
	for s := 0.0; s < 2000; s += 3.1 {
		p := c.Position(sim.Seconds(s))
		if !area.Contains(p) {
			t.Fatalf("node off campus at t=%v: %v", s, p)
		}
	}
}

func TestCityContinuity(t *testing.T) {
	c := NewCity(cityCfg(t), rand.New(rand.NewSource(4)))
	prev := c.Position(0)
	for s := 0.1; s < 600; s += 0.1 {
		cur := c.Position(sim.Seconds(s))
		if d := cur.Dist(prev); d > 13*0.1+1e-6 {
			t.Fatalf("teleport at t=%v: moved %vm in 100ms", s, d)
		}
		prev = cur
	}
}

func TestCityVisitsArterial(t *testing.T) {
	// With weighted destinations, nodes should pass near the arterial
	// crossing (600, 450) reasonably often.
	g := NewCampusGraph()
	cfg := cityCfg(t)
	cfg.Graph = g
	crossing := geo.Pt(600, 450)
	hits := 0
	for seed := int64(0); seed < 10; seed++ {
		c := NewCity(cfg, rand.New(rand.NewSource(seed)))
		for s := 0.0; s < 1800; s += 5 {
			if c.Position(sim.Seconds(s)).Dist(crossing) < 160 {
				hits++
				break
			}
		}
	}
	if hits < 5 {
		t.Fatalf("only %d/10 nodes ever approached the arterial crossing", hits)
	}
}

func TestCityDeterminism(t *testing.T) {
	mk := func() []geo.Point {
		c := NewCity(cityCfg(t), rand.New(rand.NewSource(11)))
		var ps []geo.Point
		for s := 0.0; s < 500; s += 25 {
			ps = append(ps, c.Position(sim.Seconds(s)))
		}
		return ps
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestCityPausesAtDestinations(t *testing.T) {
	cfg := cityCfg(t)
	cfg.StopProb = 0 // isolate destination pauses
	cfg.DestPause = 30 * time.Second
	c := NewCity(cfg, rand.New(rand.NewSource(5)))
	paused := 0
	for s := 0.0; s < 2000; s += 1 {
		if c.Speed(sim.Seconds(s)) == 0 {
			paused++
		}
	}
	if paused < 30 {
		t.Fatalf("expected long destination pauses, saw %d paused seconds", paused)
	}
}

func TestCityAverageSpeedPlausible(t *testing.T) {
	// Average moving speed should be within the road-limit band; a bug in
	// leg timing would distort it.
	c := NewCity(cityCfg(t), rand.New(rand.NewSource(6)))
	var sum float64
	var n int
	for s := 0.0; s < 3000; s += 0.5 {
		if v := c.Speed(sim.Seconds(s)); v > 0 {
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	if math.IsNaN(avg) || avg < 8 || avg > 13 {
		t.Fatalf("average moving speed = %v, want within [8,13]", avg)
	}
}
