package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// HighwayConfig parameterizes the highway convoy model.
type HighwayConfig struct {
	// Graph is the highway network; it must be Validate()-clean
	// (NewHighwayGraph builds the default bidirectional corridor).
	Graph *Graph
	// Platoons is the number of platoon speed tiers (>= 1). Each
	// vehicle joins one tier at construction; same-tier vehicles share
	// a cruise speed and an entry point, so they travel as clusters.
	Platoons int
	// CruiseMin/CruiseMax bound the tier cruise speeds in m/s; tier k
	// of n cruises at CruiseMin + k*(CruiseMax-CruiseMin)/(n-1), capped
	// by each road's speed limit (ramps slow everyone down equally).
	CruiseMin, CruiseMax float64
	// RampPause is the dwell time at each reached destination (rest
	// area, toll plaza) before picking the next trip.
	RampPause time.Duration
}

// Validate reports configuration errors.
func (c HighwayConfig) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("mobility: nil graph")
	}
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.Platoons < 1 {
		return fmt.Errorf("mobility: Platoons %d < 1", c.Platoons)
	}
	if c.CruiseMin <= 0 || c.CruiseMax < c.CruiseMin {
		return fmt.Errorf("mobility: bad cruise range [%v,%v]", c.CruiseMin, c.CruiseMax)
	}
	if c.RampPause < 0 {
		return fmt.Errorf("mobility: negative RampPause")
	}
	return nil
}

// Highway implements a VANET-style highway convoy model: high-speed
// bidirectional lanes joined by on/off-ramps, with vehicles grouped
// into platoons. Each vehicle drives popularity-weighted trips at
// min(cruise speed, road limit); because a platoon shares one cruise
// speed and one entry interchange, its members stay clustered — the
// regime where vehicular dissemination protocols rely on convoy
// neighbors rather than oncoming traffic.
type Highway struct {
	graphTraveler
	cfg     HighwayConfig
	platoon int
	cruise  float64
}

var _ Model = (*Highway)(nil)

// NewHighway creates a highway vehicle. The platoon tier is drawn from
// rng; the start intersection is the tier's entry point.
func NewHighway(cfg HighwayConfig, rng *rand.Rand) *Highway {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Highway{cfg: cfg}
	h.graphTraveler = newGraphTraveler(cfg.Graph, rng, h.addTrip)
	h.platoon = rng.Intn(cfg.Platoons)
	h.cruise = cfg.CruiseMin
	if cfg.Platoons > 1 {
		h.cruise += float64(h.platoon) * (cfg.CruiseMax - cfg.CruiseMin) / float64(cfg.Platoons-1)
	}
	// Same-platoon vehicles enter at the same intersection, spreading
	// the tiers across the network deterministically.
	h.startAt(h.platoon * cfg.Graph.Intersections() / cfg.Platoons)
	return h
}

// Platoon returns the vehicle's platoon tier index.
func (h *Highway) Platoon() int { return h.platoon }

// Cruise returns the vehicle's cruise speed in m/s (before per-road
// speed-limit capping).
func (h *Highway) Cruise() float64 { return h.cruise }

func (h *Highway) addTrip() {
	h.drive(h.pickDest(),
		func(r Road) float64 { return min(h.cruise, r.SpeedLimit) },
		func(_ int, _ sim.Time, final bool) time.Duration {
			if final {
				return h.cfg.RampPause
			}
			return 0 // no stopping on the mainline
		})
}

// NewHighwayGraph builds the default highway corridor for the Highway
// model: 6 interchanges spaced 700 m apart (a 3.5 km stretch), with a
// one-way eastbound chain at y=0, a one-way westbound chain at y=60,
// and a service node between the lanes at every interchange joined to
// both directions by two-way ramps. Mainline segments carry a 33 m/s
// (~120 km/h) limit; ramps 14 m/s. The ramp pairs make the network
// strongly connected: leaving the corridor at any interchange allows
// re-entry in either direction.
func NewHighwayGraph() *Graph {
	const (
		interchanges = 6
		spacing      = 700.0
		laneGap      = 60.0

		mainLimit  = 33.0
		mainWeight = 3.0
		rampLimit  = 14.0
		rampWeight = 2.0
	)
	g := &Graph{}
	east := make([]int, interchanges)
	west := make([]int, interchanges)
	svc := make([]int, interchanges)
	for i := 0; i < interchanges; i++ {
		x := float64(i) * spacing
		east[i] = g.AddIntersection(geo.Pt(x, 0))
		west[i] = g.AddIntersection(geo.Pt(x, laneGap))
		svc[i] = g.AddIntersection(geo.Pt(x, laneGap/2))
	}
	for i := 0; i+1 < interchanges; i++ {
		mustRoad(g, east[i], east[i+1], mainLimit, mainWeight) // eastbound
		mustRoad(g, west[i+1], west[i], mainLimit, mainWeight) // westbound
	}
	for i := 0; i < interchanges; i++ {
		mustStreet(g, east[i], svc[i], rampLimit, rampWeight) // off/on-ramps
		mustStreet(g, west[i], svc[i], rampLimit, rampWeight)
	}
	return g
}
