package mobility

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func TestStatic(t *testing.T) {
	s := Static{P: geo.Pt(3, 4)}
	for _, at := range []sim.Time{0, sim.Seconds(100), sim.Seconds(1e6)} {
		if s.Position(at) != geo.Pt(3, 4) {
			t.Fatal("static node moved")
		}
		if s.Speed(at) != 0 {
			t.Fatal("static node has speed")
		}
	}
}

func waypointCfg() WaypointConfig {
	return WaypointConfig{
		Area:     geo.NewRect(5000, 5000),
		MinSpeed: 10,
		MaxSpeed: 10,
		Pause:    time.Second,
	}
}

func TestWaypointConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*WaypointConfig)
		ok   bool
	}{
		{"valid", func(*WaypointConfig) {}, true},
		{"empty area", func(c *WaypointConfig) { c.Area = geo.Rect{} }, false},
		{"negative speed", func(c *WaypointConfig) { c.MinSpeed = -1 }, false},
		{"inverted speeds", func(c *WaypointConfig) { c.MinSpeed = 20; c.MaxSpeed = 10 }, false},
		{"negative pause", func(c *WaypointConfig) { c.Pause = -time.Second }, false},
		{"zero speeds ok", func(c *WaypointConfig) { c.MinSpeed = 0; c.MaxSpeed = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := waypointCfg()
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestWaypointStaysInArea(t *testing.T) {
	cfg := waypointCfg()
	cfg.MinSpeed, cfg.MaxSpeed = 1, 40
	w := NewWaypoint(cfg, rand.New(rand.NewSource(1)))
	for s := 0.0; s < 2000; s += 7.3 {
		p := w.Position(sim.Seconds(s))
		if !cfg.Area.Contains(p) {
			t.Fatalf("node left area at t=%vs: %v", s, p)
		}
	}
}

func TestWaypointContinuity(t *testing.T) {
	// Positions sampled 100 ms apart can differ by at most
	// maxSpeed * 0.1 m (plus epsilon).
	cfg := waypointCfg()
	cfg.MinSpeed, cfg.MaxSpeed = 5, 40
	w := NewWaypoint(cfg, rand.New(rand.NewSource(2)))
	prev := w.Position(0)
	for s := 0.1; s < 500; s += 0.1 {
		cur := w.Position(sim.Seconds(s))
		if d := cur.Dist(prev); d > 40*0.1+1e-6 {
			t.Fatalf("teleport at t=%vs: %v", s, d)
		}
		prev = cur
	}
}

func TestWaypointSpeedWithinRange(t *testing.T) {
	cfg := waypointCfg()
	cfg.MinSpeed, cfg.MaxSpeed = 3, 12
	w := NewWaypoint(cfg, rand.New(rand.NewSource(3)))
	sawMoving := false
	for s := 0.0; s < 1000; s += 0.5 {
		v := w.Speed(sim.Seconds(s))
		if v != 0 {
			sawMoving = true
			if v < 3 || v > 12 {
				t.Fatalf("speed %v outside [3,12]", v)
			}
		}
	}
	if !sawMoving {
		t.Fatal("node never moved")
	}
}

func TestWaypointZeroSpeedIsStatic(t *testing.T) {
	cfg := waypointCfg()
	cfg.MinSpeed, cfg.MaxSpeed = 0, 0
	w := NewWaypoint(cfg, rand.New(rand.NewSource(4)))
	p0 := w.Position(0)
	if w.Position(sim.Seconds(3600)) != p0 {
		t.Fatal("zero-speed node moved")
	}
	if w.Speed(sim.Seconds(100)) != 0 {
		t.Fatal("zero-speed node has nonzero speed")
	}
}

func TestWaypointDeterminism(t *testing.T) {
	mk := func(seed int64) []geo.Point {
		w := NewWaypoint(waypointCfg(), rand.New(rand.NewSource(seed)))
		var ps []geo.Point
		for s := 0.0; s < 300; s += 10 {
			ps = append(ps, w.Position(sim.Seconds(s)))
		}
		return ps
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestWaypointBackwardQueries(t *testing.T) {
	w := NewWaypoint(waypointCfg(), rand.New(rand.NewSource(5)))
	p100 := w.Position(sim.Seconds(100))
	p50 := w.Position(sim.Seconds(50)) // backwards in time
	if w.Position(sim.Seconds(100)) != p100 {
		t.Fatal("repeated query changed answer")
	}
	if w.Position(sim.Seconds(50)) != p50 {
		t.Fatal("backward query unstable")
	}
}

func TestWaypointPausesAtWaypoints(t *testing.T) {
	cfg := waypointCfg()
	cfg.Pause = 10 * time.Second
	w := NewWaypoint(cfg, rand.New(rand.NewSource(6)))
	// Find a moment when the node is paused: scan speed.
	paused := 0
	for s := 0.0; s < 2000; s += 0.5 {
		if w.Speed(sim.Seconds(s)) == 0 {
			paused++
		}
	}
	if paused < 10 {
		t.Fatalf("expected pauses with 10s dwell, saw %d paused samples", paused)
	}
}
