package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// CityConfig parameterizes the city-section model.
type CityConfig struct {
	// Graph is the street network; it must be Validate()-clean.
	Graph *Graph
	// StopProb is the probability of pausing at an intermediate
	// intersection (red light), in [0,1].
	StopProb float64
	// StopMin/StopMax bound the pause duration at a red light.
	StopMin, StopMax time.Duration
	// DestPause is the dwell time at each reached destination
	// (parking) before picking the next trip.
	DestPause time.Duration
}

// Validate reports configuration errors.
func (c CityConfig) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("mobility: nil graph")
	}
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.StopProb < 0 || c.StopProb > 1 {
		return fmt.Errorf("mobility: StopProb %v out of [0,1]", c.StopProb)
	}
	if c.StopMin < 0 || c.StopMax < c.StopMin {
		return fmt.Errorf("mobility: bad stop range [%v,%v]", c.StopMin, c.StopMax)
	}
	if c.DestPause < 0 {
		return fmt.Errorf("mobility: negative DestPause")
	}
	return nil
}

// City implements the city-section model: nodes start at a predefined
// intersection, repeatedly pick a popularity-weighted destination, drive
// the fastest path at each road's speed limit, and occasionally stop at
// intersections, following the paper's description of traffic rules and
// hot-spot roads.
type City struct {
	cfg  CityConfig
	rng  *rand.Rand
	traj trajectory
	at   int // intersection where the trajectory currently ends

	cumPop []float64 // cumulative intersection popularity for weighted draws
}

var _ Model = (*City)(nil)

// NewCity creates a city-section node starting at a popularity-weighted
// random intersection.
func NewCity(cfg CityConfig, rng *rand.Rand) *City {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &City{cfg: cfg, rng: rng}
	g := cfg.Graph
	c.cumPop = make([]float64, g.Intersections())
	sum := 0.0
	for i := 0; i < g.Intersections(); i++ {
		sum += g.Popularity(i)
		c.cumPop[i] = sum
	}
	c.at = c.weightedIntersection()
	p := g.Point(c.at)
	c.traj.append(leg{from: p, to: p})
	return c
}

// Start returns the intersection the node began at (useful for tests).
func (c *City) Start() geo.Point { return c.traj.legs[0].from }

func (c *City) weightedIntersection() int {
	total := c.cumPop[len(c.cumPop)-1]
	x := c.rng.Float64() * total
	for i, cum := range c.cumPop {
		if x < cum {
			return i
		}
	}
	return len(c.cumPop) - 1
}

func (c *City) extend(at sim.Time) {
	for c.traj.covered() <= at {
		c.addTrip()
	}
}

// addTrip appends the legs of one trip (possibly with red-light pauses)
// to the trajectory.
func (c *City) addTrip() {
	g := c.cfg.Graph
	dest := c.weightedIntersection()
	for dest == c.at {
		dest = c.weightedIntersection()
	}
	path, err := g.ShortestPath(c.at, dest)
	if err != nil {
		// Validate() guarantees reachability; this is unreachable but
		// kept defensive: dwell in place to guarantee progress.
		last := c.traj.legs[len(c.traj.legs)-1]
		c.traj.append(leg{
			start: last.end, moveEnd: last.end, end: last.end + sim.Second,
			from: last.to, to: last.to,
		})
		return
	}
	start := c.traj.covered()
	pos := g.Point(c.at)
	for i := 1; i < len(path); i++ {
		r, ok := g.road(path[i-1], path[i])
		if !ok {
			continue
		}
		to := g.Point(path[i])
		moveEnd := start + sim.Seconds(r.Length/r.SpeedLimit)
		end := moveEnd
		if i < len(path)-1 && c.rng.Float64() < c.cfg.StopProb {
			end = moveEnd.Add(c.stopTime())
		}
		if i == len(path)-1 {
			end = moveEnd.Add(c.cfg.DestPause)
		}
		if end == start {
			end = start + 1
		}
		c.traj.append(leg{
			start: start, moveEnd: moveEnd, end: end,
			from: pos, to: to, speed: r.SpeedLimit,
		})
		pos = to
		start = end
	}
	c.at = dest
}

func (c *City) stopTime() time.Duration {
	if c.cfg.StopMax == c.cfg.StopMin {
		return c.cfg.StopMin
	}
	return c.cfg.StopMin + time.Duration(c.rng.Int63n(int64(c.cfg.StopMax-c.cfg.StopMin)))
}

// Position implements Model.
func (c *City) Position(at sim.Time) geo.Point {
	c.extend(at)
	return c.traj.find(at).position(at)
}

// Speed implements Model.
func (c *City) Speed(at sim.Time) float64 {
	c.extend(at)
	return c.traj.find(at).speedAt(at)
}
