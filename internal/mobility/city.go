package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// CityConfig parameterizes the city-section model.
type CityConfig struct {
	// Graph is the street network; it must be Validate()-clean.
	Graph *Graph
	// StopProb is the probability of pausing at an intermediate
	// intersection (red light), in [0,1].
	StopProb float64
	// StopMin/StopMax bound the pause duration at a red light.
	StopMin, StopMax time.Duration
	// DestPause is the dwell time at each reached destination
	// (parking) before picking the next trip.
	DestPause time.Duration
}

// Validate reports configuration errors.
func (c CityConfig) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("mobility: nil graph")
	}
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.StopProb < 0 || c.StopProb > 1 {
		return fmt.Errorf("mobility: StopProb %v out of [0,1]", c.StopProb)
	}
	if c.StopMin < 0 || c.StopMax < c.StopMin {
		return fmt.Errorf("mobility: bad stop range [%v,%v]", c.StopMin, c.StopMax)
	}
	if c.DestPause < 0 {
		return fmt.Errorf("mobility: negative DestPause")
	}
	return nil
}

// City implements the city-section model: nodes start at a predefined
// intersection, repeatedly pick a popularity-weighted destination, drive
// the fastest path at each road's speed limit, and occasionally stop at
// intersections, following the paper's description of traffic rules and
// hot-spot roads.
type City struct {
	graphTraveler
	cfg CityConfig
}

var _ Model = (*City)(nil)

// NewCity creates a city-section node starting at a popularity-weighted
// random intersection.
func NewCity(cfg CityConfig, rng *rand.Rand) *City {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &City{cfg: cfg}
	c.graphTraveler = newGraphTraveler(cfg.Graph, rng, c.addTrip)
	c.startAt(c.weightedIntersection())
	return c
}

// Start returns the intersection the node began at (useful for tests).
func (c *City) Start() geo.Point { return c.traj.legs[0].from }

// addTrip appends the legs of one trip (possibly with red-light pauses)
// to the trajectory.
func (c *City) addTrip() {
	c.drive(c.pickDest(),
		func(r Road) float64 { return r.SpeedLimit },
		func(_ int, _ sim.Time, final bool) time.Duration {
			if final {
				return c.cfg.DestPause
			}
			if c.rng.Float64() < c.cfg.StopProb {
				return c.stopTime()
			}
			return 0
		})
}

func (c *City) stopTime() time.Duration {
	if c.cfg.StopMax == c.cfg.StopMin {
		return c.cfg.StopMin
	}
	return c.cfg.StopMin + time.Duration(c.rng.Int63n(int64(c.cfg.StopMax-c.cfg.StopMin)))
}
