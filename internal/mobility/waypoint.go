package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// WaypointConfig parameterizes the random waypoint model.
type WaypointConfig struct {
	// Area is the rectangular mobility area.
	Area geo.Rect
	// MinSpeed and MaxSpeed bound the per-leg speed draw, in m/s. Equal
	// values pin the speed; both zero yields a static node.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint (the paper uses 1 s).
	Pause time.Duration
}

// Validate reports configuration errors.
func (c WaypointConfig) Validate() error {
	if c.Area.Width() <= 0 || c.Area.Height() <= 0 {
		return fmt.Errorf("mobility: empty area %v", c.Area)
	}
	if c.MinSpeed < 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: bad speed range [%v,%v]", c.MinSpeed, c.MaxSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	return nil
}

// Waypoint implements the random waypoint model: pick a uniform point in
// the area and a uniform speed from [MinSpeed, MaxSpeed], travel there in
// a straight line, pause, repeat.
type Waypoint struct {
	cfg  WaypointConfig
	rng  *rand.Rand
	traj trajectory
}

var _ Model = (*Waypoint)(nil)

// NewWaypoint creates a random-waypoint node with a uniform random start
// position drawn from rng. It panics on invalid configuration (validated
// scenarios should call Validate first).
func NewWaypoint(cfg WaypointConfig, rng *rand.Rand) *Waypoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Waypoint{cfg: cfg, rng: rng}
	start := w.randPoint()
	// Seed the trajectory with a zero-length pause leg so position
	// queries at t=0 are defined.
	w.traj.append(leg{start: 0, moveEnd: 0, end: 0, from: start, to: start})
	return w
}

func (w *Waypoint) randPoint() geo.Point {
	return geo.Pt(
		w.cfg.Area.Min.X+w.rng.Float64()*w.cfg.Area.Width(),
		w.cfg.Area.Min.Y+w.rng.Float64()*w.cfg.Area.Height(),
	)
}

func (w *Waypoint) randSpeed() float64 {
	if w.cfg.MaxSpeed == w.cfg.MinSpeed {
		return w.cfg.MaxSpeed
	}
	return w.cfg.MinSpeed + w.rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
}

// extend grows the trajectory until it covers instant at.
func (w *Waypoint) extend(at sim.Time) {
	for w.traj.covered() <= at {
		last := w.traj.legs[len(w.traj.legs)-1]
		from := last.to
		start := last.end
		speed := w.randSpeed()
		if speed <= 0 {
			// Static node: one giant pause leg.
			w.traj.append(leg{
				start: start, moveEnd: start,
				end:  sim.Time(1 << 62),
				from: from, to: from,
			})
			return
		}
		to := w.randPoint()
		dist := from.Dist(to)
		moveEnd := start + sim.Seconds(dist/speed)
		end := moveEnd.Add(w.cfg.Pause)
		if end == start {
			// Degenerate zero-length leg with no pause; force progress.
			end = start + 1
		}
		w.traj.append(leg{
			start: start, moveEnd: moveEnd, end: end,
			from: from, to: to, speed: speed,
		})
	}
}

// Position implements Model.
func (w *Waypoint) Position(at sim.Time) geo.Point {
	w.extend(at)
	return w.traj.find(at).position(at)
}

// Speed implements Model.
func (w *Waypoint) Speed(at sim.Time) float64 {
	w.extend(at)
	return w.traj.find(at).speedAt(at)
}
