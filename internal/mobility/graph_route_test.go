package mobility

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
)

// refShortestPath is the pre-cache reference implementation: a targeted
// Dijkstra with early exit at b. The cached trees must reproduce its
// paths byte-for-byte (see ShortestPath's equivalence argument).
func refShortestPath(g *Graph, a, b int) ([]int, error) {
	if a == b {
		return []int{a}, nil
	}
	const inf = 1e300
	n := g.Intersections()
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[a] = 0
	pq := &pathHeap{{node: a}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pathItem)
		if cur.node == b {
			break
		}
		if cur.cost > dist[cur.node] {
			continue
		}
		for _, r := range g.Roads(cur.node) {
			c := cur.cost + r.Length/r.SpeedLimit
			if c < dist[r.To] {
				dist[r.To] = c
				prev[r.To] = cur.node
				heap.Push(pq, pathItem{node: r.To, cost: c})
			}
		}
	}
	if prev[b] == -1 {
		return nil, fmt.Errorf("%w: %d from %d", ErrUnreachable, b, a)
	}
	var path []int
	for at := b; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

func pathsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// builtinGraphs enumerates every built-in street network, including a
// metro-family grid as used by the scale sweeps.
func builtinGraphs() map[string]*Graph {
	return map[string]*Graph{
		"campus":    NewCampusGraph(),
		"manhattan": NewManhattanGraph(),
		"highway":   NewHighwayGraph(),
		"metro":     NewMetroGraph(),
		"metro-2k":  NewManhattanStyleGraph(23, 18), // MetroGraphDims-scale grid
	}
}

// TestShortestPathCachedDifferential compares the cached ShortestPath
// against the reference targeted Dijkstra over every built-in graph:
// all pairs on the small graphs, a seeded sample on the large ones.
func TestShortestPathCachedDifferential(t *testing.T) {
	for name, g := range builtinGraphs() {
		n := g.Intersections()
		pairs := make([][2]int, 0, 4096)
		if n <= 64 {
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		} else {
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < 2000; i++ {
				pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
			}
		}
		for _, pr := range pairs {
			want, werr := refShortestPath(g, pr[0], pr[1])
			got, gerr := g.ShortestPath(pr[0], pr[1])
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s %d->%d: err %v, want %v", name, pr[0], pr[1], gerr, werr)
			}
			if !pathsEqual(got, want) {
				t.Fatalf("%s %d->%d: path %v, want %v", name, pr[0], pr[1], got, want)
			}
		}
	}
}

// TestShortestPathCacheEviction shrinks the cache budget to a couple of
// trees and checks that paths stay correct under constant eviction and
// that the cache honors its byte bound.
func TestShortestPathCacheEviction(t *testing.T) {
	old := routeCacheBudget
	defer func() { routeCacheBudget = old }()
	g := NewManhattanGraph()
	n := g.Intersections()
	routeCacheBudget = 4 * n * 2 // two trees

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		want, _ := refShortestPath(g, a, b)
		got, err := g.ShortestPath(a, b)
		if err != nil {
			t.Fatalf("%d->%d: %v", a, b, err)
		}
		if !pathsEqual(got, want) {
			t.Fatalf("%d->%d under eviction: path %v, want %v", a, b, got, want)
		}
		g.mu.Lock()
		trees, bytes := len(g.routes), g.routeBytes
		g.mu.Unlock()
		if bytes > routeCacheBudget || trees > 2 {
			t.Fatalf("cache over budget: %d trees, %d bytes (budget %d)", trees, bytes, routeCacheBudget)
		}
	}
}

// TestShortestPathCacheInvalidation checks that graph mutation drops
// cached trees: a new faster road must show up in subsequent paths.
func TestShortestPathCacheInvalidation(t *testing.T) {
	var g Graph
	for i := 0; i < 4; i++ {
		g.AddIntersection(geo.Pt(float64(i)*100, 0))
	}
	for i := 0; i < 3; i++ {
		if err := g.AddStreet(i, i+1, 10, 1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.ShortestPath(0, 3)
	if err != nil || !pathsEqual(p, []int{0, 1, 2, 3}) {
		t.Fatalf("line path = %v, %v", p, err)
	}
	// A fast direct shortcut 0->3 (same physical length via geometry,
	// but much higher speed limit) must invalidate the cached tree.
	if err := g.AddRoad(0, 3, 1000, 1); err != nil {
		t.Fatal(err)
	}
	p, err = g.ShortestPath(0, 3)
	if err != nil || !pathsEqual(p, []int{0, 3}) {
		t.Fatalf("post-mutation path = %v, %v (stale cache?)", p, err)
	}
}

// TestShortestPathCacheConcurrent mirrors the graph-memoization race
// test: many goroutines routing over one shared template graph must
// neither race (run with -race) nor disagree with the reference.
func TestShortestPathCacheConcurrent(t *testing.T) {
	g := NewManhattanGraph()
	n := g.Intersections()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				a, b := rng.Intn(n), rng.Intn(n)
				got, err := g.ShortestPath(a, b)
				if err != nil {
					errs <- fmt.Errorf("%d->%d: %w", a, b, err)
					return
				}
				want, _ := refShortestPath(g, a, b)
				if !pathsEqual(got, want) {
					errs <- fmt.Errorf("%d->%d: %v != %v", a, b, got, want)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestShortestPathUnreachableCached pins the error contract through the
// cache, including the wrapped ErrUnreachable sentinel.
func TestShortestPathUnreachableCached(t *testing.T) {
	var g Graph
	g.AddIntersection(geo.Pt(0, 0))
	g.AddIntersection(geo.Pt(100, 0))
	g.AddIntersection(geo.Pt(200, 0))
	if err := g.AddRoad(0, 1, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	// The a==b fast path must not consult (or populate) the cache.
	if p, err := g.ShortestPath(2, 2); err != nil || !pathsEqual(p, []int{2}) {
		t.Fatalf("self path = %v, %v", p, err)
	}
}
