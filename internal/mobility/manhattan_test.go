package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func manhattanCfg(t *testing.T) ManhattanConfig {
	t.Helper()
	return ManhattanConfig{
		Graph:       NewManhattanGraph(),
		LightCycle:  30 * time.Second,
		RedFraction: 0.4,
		DestPause:   10 * time.Second,
	}
}

func TestManhattanConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*ManhattanConfig)
		ok   bool
	}{
		{"valid", func(*ManhattanConfig) {}, true},
		{"no lights", func(c *ManhattanConfig) { c.LightCycle = 0; c.RedFraction = 0 }, true},
		{"nil graph", func(c *ManhattanConfig) { c.Graph = nil }, false},
		{"negative cycle", func(c *ManhattanConfig) { c.LightCycle = -time.Second }, false},
		{"bad red fraction", func(c *ManhattanConfig) { c.RedFraction = 1.5 }, false},
		{"negative dest pause", func(c *ManhattanConfig) { c.DestPause = -time.Second }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := manhattanCfg(t)
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestManhattanGraphContract(t *testing.T) {
	g := NewManhattanGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.MaxSpeedLimit(); got != 14 {
		t.Fatalf("MaxSpeedLimit = %v, want 14 (avenues)", got)
	}
}

func TestManhattanStartsAtIntersection(t *testing.T) {
	cfg := manhattanCfg(t)
	m := NewManhattan(cfg, rand.New(rand.NewSource(1)))
	start := m.Position(0)
	found := false
	for i := 0; i < cfg.Graph.Intersections(); i++ {
		if cfg.Graph.Point(i) == start {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("start %v is not an intersection", start)
	}
}

func TestManhattanSpeedWithinLimits(t *testing.T) {
	m := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(2)))
	moving := 0
	for s := 0.0; s < 1200; s += 0.5 {
		v := m.Speed(sim.Seconds(s))
		if v != 0 {
			moving++
			if v < 8 || v > 14 {
				t.Fatalf("speed %v outside the grid's 8-14 m/s tiers", v)
			}
		}
	}
	if moving == 0 {
		t.Fatal("vehicle never moved")
	}
}

func TestManhattanStaysOnGrid(t *testing.T) {
	area := geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(991, 771)}
	m := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(3)))
	for s := 0.0; s < 2000; s += 3.1 {
		p := m.Position(sim.Seconds(s))
		if !area.Contains(p) {
			t.Fatalf("vehicle off grid at t=%v: %v", s, p)
		}
	}
}

func TestManhattanContinuity(t *testing.T) {
	m := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(4)))
	prev := m.Position(0)
	for s := 0.1; s < 600; s += 0.1 {
		cur := m.Position(sim.Seconds(s))
		if d := cur.Dist(prev); d > 14*0.1+1e-6 {
			t.Fatalf("teleport at t=%v: moved %vm in 100ms", s, d)
		}
		prev = cur
	}
}

func TestManhattanDeterminism(t *testing.T) {
	mk := func() []geo.Point {
		m := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(11)))
		var ps []geo.Point
		for s := 0.0; s < 500; s += 25 {
			ps = append(ps, m.Position(sim.Seconds(s)))
		}
		return ps
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestManhattanAverageSpeedPlausible(t *testing.T) {
	m := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(6)))
	var sum float64
	var n int
	for s := 0.0; s < 3000; s += 0.5 {
		if v := m.Speed(sim.Seconds(s)); v > 0 {
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	if math.IsNaN(avg) || avg < 8 || avg > 14 {
		t.Fatalf("average moving speed = %v, want within [8,14]", avg)
	}
}

func TestManhattanWaitsAtRedLights(t *testing.T) {
	// With no parking dwell, every zero-speed second is a red light:
	// heavy red fractions must produce waits, disabled lights none.
	pausedSeconds := func(cycle time.Duration, red float64) int {
		cfg := manhattanCfg(t)
		cfg.LightCycle, cfg.RedFraction = cycle, red
		cfg.DestPause = 0
		m := NewManhattan(cfg, rand.New(rand.NewSource(7)))
		paused := 0
		for s := 0.0; s < 2000; s += 1 {
			if m.Speed(sim.Seconds(s)) == 0 {
				paused++
			}
		}
		return paused
	}
	if got := pausedSeconds(40*time.Second, 0.9); got < 100 {
		t.Fatalf("90%%-red lights produced only %d paused seconds", got)
	}
	if got := pausedSeconds(0, 0); got > 20 {
		t.Fatalf("disabled lights still paused %d seconds", got)
	}
}

func TestManhattanLightScheduleShared(t *testing.T) {
	// The light schedule is city-wide: two vehicles querying the same
	// intersection at the same instant must agree on the wait.
	a := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(8)))
	b := NewManhattan(manhattanCfg(t), rand.New(rand.NewSource(9)))
	sawRed := false
	for i := 0; i < a.cfg.Graph.Intersections(); i++ {
		for s := 0.0; s < 90; s += 7.3 {
			wa := a.redWait(i, sim.Seconds(s))
			wb := b.redWait(i, sim.Seconds(s))
			if wa != wb {
				t.Fatalf("intersection %d at t=%v: waits differ (%v vs %v)", i, s, wa, wb)
			}
			if wa > 0 {
				sawRed = true
				if wa > 12*time.Second { // red phase is 0.4*30 s
					t.Fatalf("wait %v exceeds the red phase", wa)
				}
			}
		}
	}
	if !sawRed {
		t.Fatal("no red phase ever observed")
	}
}
