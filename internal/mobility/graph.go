package mobility

import (
	"container/heap"
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro/internal/geo"
)

// Graph is a street network for the city-section model: intersections
// joined by directed roads with speed limits and popularity weights.
// Two-way streets are represented as a pair of directed roads.
//
// Derived whole-graph state (connectivity, popularity) is memoized on
// first use and invalidated by mutation: one street network is shared
// by every vehicle of a run, and recomputing O(V*E) facts per vehicle
// is what made city-scale rosters quadratic before the metro sweeps.
// The memoization is guarded by a mutex because a registered scenario
// template may share one street network across concurrently executing
// runs (the exp worker pool); a constructed graph is otherwise
// read-only, which is what makes that sharing sound.
type Graph struct {
	points []geo.Point
	adj    [][]Road

	mu        sync.Mutex
	validated bool      // Validate passed and no mutation since
	pop       []float64 // per-intersection popularity, nil until built
	cumPop    []float64 // prefix sums of pop, nil until built

	// Route cache: per-source shortest-path trees, LRU-evicted under a
	// byte budget (see routeCacheBudget). Guarded by mu like the other
	// memos; the prev slices themselves are immutable once published.
	routes     map[int]*routeTree
	routeLRU   list.List // front = most recently used, values *routeTree
	routeBytes int       // approximate footprint of cached trees
}

// routeTree is a memoized full-Dijkstra predecessor tree from one
// source intersection: prev[v] is the predecessor of v on the fastest
// src->v path, -1 for the source itself and for unreachable nodes.
type routeTree struct {
	src  int
	prev []int32
	elem *list.Element // position in Graph.routeLRU, guarded by Graph.mu
}

// routeCacheBudget bounds the route cache's memory per graph. A tree
// costs 4 bytes per intersection, so a V-intersection graph needs
// 4*V^2 bytes to cache every source: the metro-10k street grid
// (V=1950) fits whole in ~15 MB, while metro-50k (V~9744) would need
// ~380 MB and instead keeps the ~1700 most recently used sources —
// popularity-biased destination draws make those cover most trips.
// A variable only so eviction tests can shrink it; treat as constant.
var routeCacheBudget = 64 << 20

// mutated invalidates the memoized derived state.
func (g *Graph) mutated() {
	g.mu.Lock()
	g.validated = false
	g.pop = nil
	g.cumPop = nil
	g.routes = nil
	g.routeLRU.Init()
	g.routeBytes = 0
	g.mu.Unlock()
}

// Road is a directed street from an implicit source intersection to
// intersection To.
type Road struct {
	// To is the destination intersection index.
	To int
	// Length is the road length in meters.
	Length float64
	// SpeedLimit is the legal driving speed in m/s (the paper's campus
	// uses 8-13 m/s limits).
	SpeedLimit float64
	// Weight expresses how popular the road is; destination choice is
	// biased toward intersections on heavy roads, modeling the paper's
	// "some roads are more often used than others".
	Weight float64
}

// AddIntersection appends an intersection and returns its index.
func (g *Graph) AddIntersection(p geo.Point) int {
	g.mutated()
	g.points = append(g.points, p)
	g.adj = append(g.adj, nil)
	return len(g.points) - 1
}

// Intersections returns the number of intersections.
func (g *Graph) Intersections() int { return len(g.points) }

// Point returns the location of intersection i.
func (g *Graph) Point(i int) geo.Point { return g.points[i] }

// Roads returns the directed roads leaving intersection i.
func (g *Graph) Roads(i int) []Road { return g.adj[i] }

// AddRoad adds a directed road a->b; AddStreet adds both directions.
func (g *Graph) AddRoad(a, b int, speedLimit, weight float64) error {
	if a < 0 || a >= len(g.points) || b < 0 || b >= len(g.points) || a == b {
		return fmt.Errorf("mobility: bad road %d->%d", a, b)
	}
	if speedLimit <= 0 || weight <= 0 {
		return fmt.Errorf("mobility: bad road params limit=%v weight=%v", speedLimit, weight)
	}
	g.mutated()
	g.adj[a] = append(g.adj[a], Road{
		To:         b,
		Length:     g.points[a].Dist(g.points[b]),
		SpeedLimit: speedLimit,
		Weight:     weight,
	})
	return nil
}

// AddStreet adds a two-way street between a and b.
func (g *Graph) AddStreet(a, b int, speedLimit, weight float64) error {
	if err := g.AddRoad(a, b, speedLimit, weight); err != nil {
		return err
	}
	return g.AddRoad(b, a, speedLimit, weight)
}

// MaxSpeedLimit returns the fastest speed limit of any road (0 for a
// graph with no roads). City-section nodes drive at the road's limit,
// so this bounds node speed — the MAC medium uses it to size its
// spatial-index staleness margin.
func (g *Graph) MaxSpeedLimit() float64 {
	var maxLimit float64
	for _, roads := range g.adj {
		for _, r := range roads {
			if r.SpeedLimit > maxLimit {
				maxLimit = r.SpeedLimit
			}
		}
	}
	return maxLimit
}

// Bounds returns the axis-aligned bounding box of all intersections
// (the zero Rect for an empty graph). Vehicles travel along straight
// roads between intersections, so every position a graph traveler can
// report lies inside it — the MAC layer uses it to pre-size its dense
// spatial index over the scenario's geometry.
func (g *Graph) Bounds() geo.Rect {
	if len(g.points) == 0 {
		return geo.Rect{}
	}
	r := geo.Rect{Min: g.points[0], Max: g.points[0]}
	for _, p := range g.points[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// Popularity returns the sum of weights of roads incident to i (in either
// direction); used to bias destination choice toward busy spots. All
// intersections' popularities are built in one O(V+E) edge sweep and
// memoized — the per-call incoming-edge scan was O(E) and ran V times
// per vehicle at construction.
func (g *Graph) Popularity(i int) float64 {
	pop, _ := g.buildPopularity()
	return pop[i]
}

// cumPopularity returns the memoized prefix sums of Popularity, shared
// by every traveler on the graph for weighted destination draws. The
// returned slice is never written again; concurrent travelers may read
// it freely.
func (g *Graph) cumPopularity() []float64 {
	_, cum := g.buildPopularity()
	return cum
}

func (g *Graph) buildPopularity() (pop, cum []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pop != nil {
		return g.pop, g.cumPop
	}
	pop = make([]float64, len(g.points))
	for a := range g.adj {
		for _, r := range g.adj[a] {
			pop[a] += r.Weight
			pop[r.To] += r.Weight
		}
	}
	cum = make([]float64, len(pop))
	sum := 0.0
	for i, w := range pop {
		sum += w
		cum[i] = sum
	}
	g.pop, g.cumPop = pop, cum
	return pop, cum
}

// ErrUnreachable is returned when no path exists between intersections.
var ErrUnreachable = errors.New("mobility: unreachable intersection")

// ShortestPath returns the minimum-travel-time path from a to b as a
// sequence of intersection indices including both endpoints.
//
// Paths are served from a per-source shortest-path tree memoized in the
// route cache: every vehicle of a run (and every run sharing a template
// graph) asks for trips from the same popularity-biased sources, and
// one full Dijkstra per source replaces one targeted Dijkstra per trip
// — the top hotspot of the 10k-node city sweeps. The cached tree
// returns byte-identical paths to a per-call targeted Dijkstra: with
// strictly-positive road times and strict-< relaxation, every node on
// the a->b path is settled before b pops, settled predecessors never
// change afterwards, and the pop order of the full run is a prefix-
// preserving extension of the early-exit run.
func (g *Graph) ShortestPath(a, b int) ([]int, error) {
	if a == b {
		return []int{a}, nil
	}
	prev := g.routeTreeFrom(a)
	if prev[b] == -1 {
		return nil, fmt.Errorf("%w: %d from %d", ErrUnreachable, b, a)
	}
	var path []int
	for at := b; at != -1; at = int(prev[at]) {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// routeTreeFrom returns the shortest-path tree rooted at src, building
// and caching it on miss. The returned slice is immutable; callers may
// read it after the lock is released (eviction only drops the cache's
// reference). Holding mu across the build serializes concurrent
// misses, matching the Validate/popularity memos: the work is done once
// per source instead of once per trip, so contention is paid only
// while the cache warms.
func (g *Graph) routeTreeFrom(src int) []int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.routes[src]; ok {
		g.routeLRU.MoveToFront(t.elem)
		return t.prev
	}
	prev := g.dijkstraTree(src)
	if g.routes == nil {
		g.routes = make(map[int]*routeTree)
	}
	t := &routeTree{src: src, prev: prev}
	t.elem = g.routeLRU.PushFront(t)
	g.routes[src] = t
	g.routeBytes += 4 * len(prev)
	for g.routeBytes > routeCacheBudget && g.routeLRU.Len() > 1 {
		back := g.routeLRU.Back()
		old := back.Value.(*routeTree)
		g.routeLRU.Remove(back)
		delete(g.routes, old.src)
		g.routeBytes -= 4 * len(old.prev)
	}
	return prev
}

// dijkstraTree runs Dijkstra from src over the whole graph (no early
// exit) and returns the predecessor tree. Must mirror the relaxation
// rule of the pre-cache targeted search exactly (strict <, heap order)
// so reconstructed paths stay byte-identical.
func (g *Graph) dijkstraTree(src int) []int32 {
	const inf = 1e300
	dist := make([]float64, len(g.points))
	prev := make([]int32, len(g.points))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	pq := &pathHeap{{node: src}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pathItem)
		if cur.cost > dist[cur.node] {
			continue
		}
		for _, r := range g.adj[cur.node] {
			c := cur.cost + r.Length/r.SpeedLimit
			if c < dist[r.To] {
				dist[r.To] = c
				prev[r.To] = int32(cur.node)
				heap.Push(pq, pathItem{node: r.To, cost: c})
			}
		}
	}
	return prev
}

// road returns the directed road a->b (the fastest when parallel roads
// exist).
func (g *Graph) road(a, b int) (Road, bool) {
	var best Road
	found := false
	for _, r := range g.adj[a] {
		if r.To == b && (!found || r.Length/r.SpeedLimit < best.Length/best.SpeedLimit) {
			best, found = r, true
		}
	}
	return best, found
}

// Validate checks that every intersection can reach every other
// (required for destination choice to always succeed). The result is
// memoized until the graph mutates: one shared street network is
// validated once per vehicle at model construction, and the reverse
// reachability sweep used to cost O(V*E) every time.
func (g *Graph) Validate() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.validated {
		return nil
	}
	n := len(g.points)
	if n == 0 {
		return errors.New("mobility: empty graph")
	}
	// Strong connectivity via forward and reverse BFS from node 0.
	if !g.bfsAll(0, false) {
		return errors.New("mobility: graph not connected (forward)")
	}
	if !g.bfsAll(0, true) {
		return errors.New("mobility: graph not connected (reverse)")
	}
	g.validated = true
	return nil
}

func (g *Graph) bfsAll(start int, reverse bool) bool {
	adj := g.adj
	if reverse {
		// Materialize the reverse adjacency once: the edge-sweep per
		// dequeued node was the O(V*E) term.
		adj = make([][]Road, len(g.points))
		for a := range g.adj {
			for _, r := range g.adj[a] {
				adj[r.To] = append(adj[r.To], Road{To: a})
			}
		}
	}
	seen := make([]bool, len(g.points))
	queue := []int{start}
	seen[start] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, r := range adj[cur] {
			if !seen[r.To] {
				seen[r.To] = true
				count++
				queue = append(queue, r.To)
			}
		}
	}
	return count == len(g.points)
}

type pathItem struct {
	node int
	cost float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int           { return len(h) }
func (h pathHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h pathHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x any)        { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
