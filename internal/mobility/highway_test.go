package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func highwayCfg(t *testing.T) HighwayConfig {
	t.Helper()
	return HighwayConfig{
		Graph:     NewHighwayGraph(),
		Platoons:  4,
		CruiseMin: 24,
		CruiseMax: 32,
		RampPause: 5 * time.Second,
	}
}

func TestHighwayConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*HighwayConfig)
		ok   bool
	}{
		{"valid", func(*HighwayConfig) {}, true},
		{"single platoon", func(c *HighwayConfig) { c.Platoons = 1 }, true},
		{"nil graph", func(c *HighwayConfig) { c.Graph = nil }, false},
		{"zero platoons", func(c *HighwayConfig) { c.Platoons = 0 }, false},
		{"zero cruise", func(c *HighwayConfig) { c.CruiseMin = 0 }, false},
		{"inverted cruise", func(c *HighwayConfig) { c.CruiseMin = 30; c.CruiseMax = 20 }, false},
		{"negative ramp pause", func(c *HighwayConfig) { c.RampPause = -time.Second }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := highwayCfg(t)
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestHighwayGraphContract(t *testing.T) {
	g := NewHighwayGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.MaxSpeedLimit(); got != 33 {
		t.Fatalf("MaxSpeedLimit = %v, want 33 (mainline)", got)
	}
}

func TestHighwayStartsAtIntersection(t *testing.T) {
	cfg := highwayCfg(t)
	h := NewHighway(cfg, rand.New(rand.NewSource(1)))
	start := h.Position(0)
	found := false
	for i := 0; i < cfg.Graph.Intersections(); i++ {
		if cfg.Graph.Point(i) == start {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("start %v is not an intersection", start)
	}
}

func TestHighwaySpeedWithinLimits(t *testing.T) {
	h := NewHighway(highwayCfg(t), rand.New(rand.NewSource(2)))
	moving := 0
	for s := 0.0; s < 1200; s += 0.5 {
		v := h.Speed(sim.Seconds(s))
		if v != 0 {
			moving++
			if v < 14 || v > 33 {
				t.Fatalf("speed %v outside [14,33] (ramp..mainline)", v)
			}
			if v > h.Cruise()+1e-9 {
				t.Fatalf("speed %v exceeds cruise %v", v, h.Cruise())
			}
		}
	}
	if moving == 0 {
		t.Fatal("vehicle never moved")
	}
}

func TestHighwayStaysOnCorridor(t *testing.T) {
	area := geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(3501, 61)}
	h := NewHighway(highwayCfg(t), rand.New(rand.NewSource(3)))
	for s := 0.0; s < 2000; s += 3.1 {
		p := h.Position(sim.Seconds(s))
		if !area.Contains(p) {
			t.Fatalf("vehicle off corridor at t=%v: %v", s, p)
		}
	}
}

func TestHighwayContinuity(t *testing.T) {
	h := NewHighway(highwayCfg(t), rand.New(rand.NewSource(4)))
	prev := h.Position(0)
	for s := 0.1; s < 600; s += 0.1 {
		cur := h.Position(sim.Seconds(s))
		if d := cur.Dist(prev); d > 33*0.1+1e-6 {
			t.Fatalf("teleport at t=%v: moved %vm in 100ms", s, d)
		}
		prev = cur
	}
}

func TestHighwayDeterminism(t *testing.T) {
	mk := func() []geo.Point {
		h := NewHighway(highwayCfg(t), rand.New(rand.NewSource(11)))
		var ps []geo.Point
		for s := 0.0; s < 500; s += 25 {
			ps = append(ps, h.Position(sim.Seconds(s)))
		}
		return ps
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestHighwayAverageSpeedPlausible(t *testing.T) {
	// Trips are dominated by mainline driving, so the average moving
	// speed should land well above the ramp limit and below mainline.
	h := NewHighway(highwayCfg(t), rand.New(rand.NewSource(6)))
	var sum float64
	var n int
	for s := 0.0; s < 3000; s += 0.5 {
		if v := h.Speed(sim.Seconds(s)); v > 0 {
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	if math.IsNaN(avg) || avg < 16 || avg > 33 {
		t.Fatalf("average moving speed = %v, want within [16,33]", avg)
	}
}

func TestHighwayPlatoonTiers(t *testing.T) {
	cfg := highwayCfg(t)
	want := []float64{24, 24 + 8.0/3, 24 + 16.0/3, 32}
	seen := map[int]bool{}
	for seed := int64(0); seed < 32; seed++ {
		h := NewHighway(cfg, rand.New(rand.NewSource(seed)))
		k := h.Platoon()
		if k < 0 || k >= cfg.Platoons {
			t.Fatalf("platoon %d out of range", k)
		}
		if math.Abs(h.Cruise()-want[k]) > 1e-9 {
			t.Fatalf("platoon %d cruise = %v, want %v", k, h.Cruise(), want[k])
		}
		seen[k] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct platoons across 32 vehicles", len(seen))
	}
}

func TestHighwayPlatoonSharedEntry(t *testing.T) {
	// Same-platoon vehicles enter at the same intersection — the seed
	// of convoy clustering.
	cfg := highwayCfg(t)
	entries := map[int]geo.Point{}
	for seed := int64(0); seed < 48; seed++ {
		h := NewHighway(cfg, rand.New(rand.NewSource(seed)))
		p := h.Position(0)
		if prev, ok := entries[h.Platoon()]; ok && prev != p {
			t.Fatalf("platoon %d entered at both %v and %v", h.Platoon(), prev, p)
		}
		entries[h.Platoon()] = p
	}
}
