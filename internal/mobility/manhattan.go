package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// ManhattanConfig parameterizes the Manhattan-grid urban VANET model.
type ManhattanConfig struct {
	// Graph is the street network; it must be Validate()-clean
	// (NewManhattanGraph builds the default downtown grid).
	Graph *Graph
	// LightCycle is the full red+green traffic-light cycle shared by
	// every intersection; 0 disables lights entirely.
	LightCycle time.Duration
	// RedFraction is the fraction of the cycle each light spends red,
	// in [0,1]. Lights are deterministic: every vehicle arriving at the
	// same intersection at the same instant sees the same color.
	RedFraction float64
	// DestPause is the dwell time at each reached destination (parking)
	// before picking the next trip.
	DestPause time.Duration
}

// Validate reports configuration errors.
func (c ManhattanConfig) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("mobility: nil graph")
	}
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.LightCycle < 0 {
		return fmt.Errorf("mobility: negative LightCycle %v", c.LightCycle)
	}
	if c.RedFraction < 0 || c.RedFraction > 1 {
		return fmt.Errorf("mobility: RedFraction %v out of [0,1]", c.RedFraction)
	}
	if c.DestPause < 0 {
		return fmt.Errorf("mobility: negative DestPause")
	}
	return nil
}

// Manhattan implements an urban VANET mobility model on a dense street
// grid: vehicles drive popularity-weighted trips at each road's speed
// limit (speed tiers: avenues beat side streets) and wait out red
// phases at intersections. Unlike City's independent stochastic stops,
// the traffic lights run a deterministic city-wide schedule — a pure
// function of (intersection, instant) — so vehicles bunch into the
// platoons characteristic of signalized traffic.
type Manhattan struct {
	graphTraveler
	cfg ManhattanConfig
}

var _ Model = (*Manhattan)(nil)

// NewManhattan creates a Manhattan-grid vehicle starting at a
// popularity-weighted random intersection.
func NewManhattan(cfg ManhattanConfig, rng *rand.Rand) *Manhattan {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Manhattan{cfg: cfg}
	m.graphTraveler = newGraphTraveler(cfg.Graph, rng, m.addTrip)
	m.startAt(m.weightedIntersection())
	return m
}

func (m *Manhattan) addTrip() {
	m.drive(m.pickDest(),
		func(r Road) float64 { return r.SpeedLimit },
		func(i int, arrive sim.Time, final bool) time.Duration {
			if final {
				return m.cfg.DestPause
			}
			return m.redWait(i, arrive)
		})
}

// redWait returns how long a vehicle arriving at intersection i at
// instant `arrive` waits for green. The schedule is shared city-wide:
// phases are a pure function of the intersection index, staggered so
// neighboring lights are not synchronized (no green wave).
func (m *Manhattan) redWait(i int, arrive sim.Time) time.Duration {
	cycle := sim.Time(m.cfg.LightCycle)
	red := sim.Time(float64(cycle) * m.cfg.RedFraction)
	if cycle <= 0 || red <= 0 {
		return 0
	}
	phase := (sim.Time(i) * 7919 * sim.Millisecond) % cycle
	pos := (arrive + phase) % cycle
	if pos < red {
		return time.Duration(red - pos)
	}
	return 0
}

// NewManhattanGraph builds the default downtown grid for the Manhattan
// model: 10x8 intersections on 110 m blocks (990x770 m) with three
// speed-limit tiers — avenues (every third column, 14 m/s, heavy
// weight), arterial cross-streets (every third row, 11 m/s) and side
// streets cycling 8-10 m/s with weight 1. The weighted avenues pull
// popularity-biased trips onto a few hot corridors, mirroring real
// urban traffic concentration.
func NewManhattanGraph() *Graph {
	return NewManhattanStyleGraph(10, 8)
}
