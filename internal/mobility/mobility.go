// Package mobility implements the mobility models the simulator drives
// nodes with: the paper's random waypoint (Johnson & Maltz) and city
// section (Davies), a trivial static model, and two vehicular
// (VANET-style) extensions — a Manhattan street grid with a
// deterministic city-wide traffic-light schedule and a highway corridor
// with on/off-ramps and platoon speed tiers. The graph-constrained models (City, Manhattan, Highway)
// share the Graph street-network machinery and the graphTraveler trip
// driver; new vehicular models should build on the same pieces.
//
// Models are trajectory-based: each node lazily extends a piecewise-linear
// trajectory (legs of constant velocity, including zero-velocity pauses)
// and answers position/speed queries for any instant analytically. Nothing
// ticks; the simulator asks for positions only when transmissions happen.
//
// # The Model contract
//
// Every implementation of Model must satisfy three properties that the
// rest of the system leans on:
//
//   - Determinism. A model is a pure function of its construction
//     inputs (config + the *rand.Rand handed to the constructor):
//     querying the same instants in any order, or re-running with the
//     same seed, yields identical positions and speeds. This is what
//     makes a netsim.Result a pure function of (Scenario, Seed) and
//     lets experiment sweeps fan out over worker pools with
//     byte-identical output (see ROADMAP.md, "Determinism contract").
//     Models may memoize (all trajectory-based models do) but must not
//     read ambient state, and they are not safe for concurrent use —
//     every simulated node owns its own instance.
//
//   - Continuity. Position must be continuous in time: no teleports.
//     Contract tests assert |Position(t+dt) - Position(t)| <= vmax*dt.
//
//   - A knowable speed bound. The MAC medium (internal/mac) indexes
//     node positions in a spatial grid refreshed every
//     mac.Config.GridRefresh; range queries are padded by a staleness
//     margin of MaxSpeed*GridRefresh, so lookups stay exact only if no
//     node ever exceeds the declared MaxSpeed. netsim derives that
//     bound automatically: Graph.MaxSpeedLimit() for the
//     graph-constrained models (which never drive above a road's
//     limit), MobilitySpec.MaxSpeed for random waypoint, zero for
//     static nodes. A new model must either keep its speeds under a
//     bound netsim can derive the same way, or leave
//     mac.Config.SpeedBounded unset and accept per-instant index
//     rebuilds.
package mobility

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/sim"
)

// Model yields a node's position and instantaneous speed over simulation
// time. Implementations are deterministic functions of their seed but are
// not safe for concurrent use.
type Model interface {
	// Position returns the node position at instant at. Queries may go
	// backwards in time; models memoize their trajectory.
	Position(at sim.Time) geo.Point
	// Speed returns the node's speed in m/s at instant at (0 while
	// paused).
	Speed(at sim.Time) float64
}

// leg is a constant-velocity trajectory segment: the node moves from
// `from` to `to` during [start, moveEnd] and then stays at `to` until
// `end` (pause). A static leg has from == to.
type leg struct {
	start, moveEnd, end sim.Time
	from, to            geo.Point
	speed               float64
}

func (l leg) position(at sim.Time) geo.Point {
	if at >= l.moveEnd {
		return l.to
	}
	if at <= l.start || l.moveEnd == l.start {
		return l.from
	}
	f := float64(at-l.start) / float64(l.moveEnd-l.start)
	return l.from.Lerp(l.to, f)
}

func (l leg) speedAt(at sim.Time) float64 {
	if at >= l.start && at < l.moveEnd {
		return l.speed
	}
	return 0
}

// trajectory is a growable sequence of contiguous legs with memoized
// lookup. extend is called to append legs until the trajectory covers a
// requested instant.
type trajectory struct {
	legs []leg
	end  sim.Time // covered() memo: end of the last leg
	idx  int      // find() memo: last returned leg
}

func (t *trajectory) covered() sim.Time { return t.end }

func (t *trajectory) append(l leg) {
	t.legs = append(t.legs, l)
	t.end = l.end
}

// find returns the leg active at instant at; the trajectory must already
// cover at. The simulation queries positions at its current instant, so
// consecutive calls almost always hit the same leg or its successor —
// the memo turns the common case into O(1) and the binary search only
// backstops jumps (identical result either way).
func (t *trajectory) find(at sim.Time) leg {
	n := len(t.legs)
	i := t.idx
	if i >= n {
		i = n - 1
	}
	switch {
	case at < t.legs[i].end && (i == 0 || t.legs[i-1].end <= at):
		// memo hit
	case i+1 < n && at >= t.legs[i].end && at < t.legs[i+1].end:
		i++
	default:
		i = sort.Search(n, func(k int) bool { return t.legs[k].end > at })
		if i == n {
			i = n - 1
		}
	}
	t.idx = i
	return t.legs[i]
}

// Static is a Model that never moves. It implements stationary processes
// (the paper's 0 m/s runs).
type Static struct {
	P geo.Point
}

// Position implements Model.
func (s Static) Position(sim.Time) geo.Point { return s.P }

// Speed implements Model.
func (s Static) Speed(sim.Time) float64 { return 0 }
