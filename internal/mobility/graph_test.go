package mobility

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
)

// lineGraph builds 0 -- 1 -- 2 -- 3 spaced 100 m apart, two-way, 10 m/s.
func lineGraph(t *testing.T) *Graph {
	t.Helper()
	g := &Graph{}
	for i := 0; i < 4; i++ {
		g.AddIntersection(geo.Pt(float64(i)*100, 0))
	}
	for i := 0; i+1 < 4; i++ {
		if err := g.AddStreet(i, i+1, 10, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := lineGraph(t)
	if g.Intersections() != 4 {
		t.Fatalf("Intersections = %d", g.Intersections())
	}
	if len(g.Roads(1)) != 2 {
		t.Fatalf("roads at 1 = %d, want 2", len(g.Roads(1)))
	}
	r, ok := g.road(0, 1)
	if !ok || math.Abs(r.Length-100) > 1e-9 {
		t.Fatalf("road 0->1 = %+v ok=%v", r, ok)
	}
	if _, ok := g.road(0, 3); ok {
		t.Fatal("no direct road 0->3")
	}
}

func TestAddRoadErrors(t *testing.T) {
	g := lineGraph(t)
	if err := g.AddRoad(0, 0, 10, 1); err == nil {
		t.Fatal("self-loop should fail")
	}
	if err := g.AddRoad(0, 99, 10, 1); err == nil {
		t.Fatal("out-of-range should fail")
	}
	if err := g.AddRoad(0, 1, 0, 1); err == nil {
		t.Fatal("zero speed should fail")
	}
	if err := g.AddRoad(0, 1, 10, 0); err == nil {
		t.Fatal("zero weight should fail")
	}
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(t)
	path, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathSame(t *testing.T) {
	g := lineGraph(t)
	path, err := g.ShortestPath(2, 2)
	if err != nil || len(path) != 1 || path[0] != 2 {
		t.Fatalf("path = %v, err = %v", path, err)
	}
}

func TestShortestPathPrefersFasterRoad(t *testing.T) {
	// Triangle: 0->1->2 on fast roads vs direct 0->2 slow road. The
	// two-hop route is shorter in time despite more distance.
	g := &Graph{}
	g.AddIntersection(geo.Pt(0, 0))
	g.AddIntersection(geo.Pt(100, 100))
	g.AddIntersection(geo.Pt(200, 0))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddStreet(0, 1, 50, 1)) // ~141m at 50 m/s = 2.8s
	must(g.AddStreet(1, 2, 50, 1))
	must(g.AddStreet(0, 2, 10, 1)) // 200m at 10 m/s = 20s
	path, err := g.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v, want detour via 1", path)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := &Graph{}
	g.AddIntersection(geo.Pt(0, 0))
	g.AddIntersection(geo.Pt(100, 0))
	g.AddIntersection(geo.Pt(200, 0))
	if err := g.AddStreet(0, 1, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := &Graph{}
	g.AddIntersection(geo.Pt(0, 0))
	g.AddIntersection(geo.Pt(1, 0))
	if err := g.Validate(); err == nil {
		t.Fatal("disconnected graph should fail Validate")
	}
	if err := (&Graph{}).Validate(); err == nil {
		t.Fatal("empty graph should fail Validate")
	}
}

func TestValidateOneWayOnly(t *testing.T) {
	// 0->1 only: reverse direction missing, so not strongly connected.
	g := &Graph{}
	g.AddIntersection(geo.Pt(0, 0))
	g.AddIntersection(geo.Pt(1, 0))
	if err := g.AddRoad(0, 1, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("one-way-only graph should fail Validate")
	}
	if err := g.AddRoad(1, 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("round trip added, Validate: %v", err)
	}
}

func TestPopularity(t *testing.T) {
	g := lineGraph(t)
	// Node 1 touches streets 0-1 and 1-2: 4 directed roads of weight 1.
	if got := g.Popularity(1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Popularity(1) = %v, want 4", got)
	}
	if got := g.Popularity(0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Popularity(0) = %v, want 2", got)
	}
}

func TestCampusGraph(t *testing.T) {
	g := NewCampusGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("campus graph invalid: %v", err)
	}
	if g.Intersections() != 63 {
		t.Fatalf("Intersections = %d, want 63 (9x7)", g.Intersections())
	}
	// Extent matches the paper's 1200x900 m campus.
	minP, maxP := g.Point(0), g.Point(0)
	for i := 0; i < g.Intersections(); i++ {
		p := g.Point(i)
		minP.X, minP.Y = math.Min(minP.X, p.X), math.Min(minP.Y, p.Y)
		maxP.X, maxP.Y = math.Max(maxP.X, p.X), math.Max(maxP.Y, p.Y)
	}
	if maxP.X-minP.X != 1200 || maxP.Y-minP.Y != 900 {
		t.Fatalf("campus extent = %v x %v, want 1200x900", maxP.X-minP.X, maxP.Y-minP.Y)
	}
	// Speed limits stay in the paper's 8-13 m/s band.
	for i := 0; i < g.Intersections(); i++ {
		for _, r := range g.Roads(i) {
			if r.SpeedLimit < 8 || r.SpeedLimit > 13 {
				t.Fatalf("road limit %v outside [8,13]", r.SpeedLimit)
			}
		}
	}
	// Arterial roads are strictly more popular than typical side roads.
	arterial := g.Popularity(3*9 + 4) // row 3, col 4: the crossing
	side := g.Popularity(0)
	if arterial <= side {
		t.Fatalf("arterial popularity %v should exceed corner %v", arterial, side)
	}
}
