package sim

import (
	"fmt"
	"testing"
	"time"
)

// FuzzTileMerge is the property test of the windowed tile merge: a
// randomized cross-tile schedule — byte-decoded into ops with
// arbitrary delays, shard assignments and nested cross-shard
// rescheduling — must fire in exactly the single-engine (at, seq)
// FIFO order, for any shard count and any window length. Each op is
// three bytes: delay (ms, 0-255 scaled x16), target shard, nesting
// depth; children hop to the next shard with half the delay, modeling
// a message crossing a tile border.
func FuzzTileMerge(f *testing.F) {
	f.Add([]byte{0x10, 0x01, 0x02, 0x10, 0x00, 0x00, 0x00, 0x02, 0x03}, uint8(4), uint16(100))
	f.Add([]byte{0xff, 0x06, 0x01, 0x08, 0x03, 0x02, 0x08, 0x03, 0x00}, uint8(7), uint16(0))
	f.Add([]byte{0x20, 0x00, 0x04, 0x20, 0x01, 0x04, 0x20, 0x02, 0x04}, uint8(2), uint16(1))
	f.Add([]byte{0xc8, 0x02, 0x00, 0xc8, 0x01, 0x00, 0xc8, 0x00, 0x00}, uint8(3), uint16(200))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8, windowMs uint16) {
		k := int(kRaw%7) + 1
		window := time.Duration(windowMs%500) * time.Millisecond
		var ops []mergeOp
		for i := 0; i+2 < len(data) && len(ops) < 64; i += 3 {
			ops = append(ops, mergeOp{
				delay: time.Duration(data[i]) * 16 * time.Millisecond,
				shard: int(data[i+1]),
				nest:  int(data[i+2] % 4),
			})
		}
		limit := Seconds(8)
		want := runMerged(ops, 0, 0, limit)
		got := runMerged(ops, k, window, limit)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("k=%d window=%v diverged from single engine:\n got %v\nwant %v",
				k, window, got, want)
		}
	})
}
