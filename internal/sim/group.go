package sim

import "time"

// Group executes a set of clock-sharing engine shards as if they were
// one engine: every iteration it steps the shard holding the globally
// earliest (at, seq) item, so callbacks fire in exactly ascending
// (at, seq) order across all shards — byte-identical to filing every
// item on a single engine. This is the merge half of the conservative
// tile-parallel decomposition (ARCHITECTURE.md, "Tile-parallel
// contracts"): callbacks still execute serially on the calling
// goroutine (shared-RNG determinism demands a total order), while the
// parallelism lives in the prepare hook and in whatever fan-out the
// callbacks themselves stage through the caller.
//
// Time advances in windows: before executing the events of
// [start, start+window) the optional prepare hook runs once. The
// tile-parallel runner uses it as the conservative barrier — the place
// vehicle trajectories are pre-extended in parallel, tile crossings
// are exchanged, and the MAC position index is refreshed — with the
// window length derived from the same speed-bound staleness argument
// as the MAC grid margin. A zero window means one window spanning the
// whole run.
type Group struct {
	shards  []*Engine
	window  time.Duration
	prepare func(start, end Time)
}

// NewGroup returns a group of 1+extra shards: the root engine plus
// extra new shards created via NewShard. prepare (optional) runs at
// every window boundary before the window's events execute.
func NewGroup(root *Engine, extra int, window time.Duration, prepare func(start, end Time)) *Group {
	if extra < 0 {
		panic("sim: negative shard count")
	}
	shards := make([]*Engine, 1+extra)
	shards[0] = root
	for i := 1; i < len(shards); i++ {
		shards[i] = root.NewShard()
	}
	return &Group{shards: shards, window: window, prepare: prepare}
}

// Shards returns the group's engines, root first. The slice is shared,
// not copied; callers distribute work by scheduling on the shard that
// owns the relevant tile.
func (g *Group) Shards() []*Engine { return g.shards }

// RunUntil executes all callbacks scheduled at or before limit across
// every shard, in global (at, seq) order, then advances the shared
// clock to limit. With one shard and a nil prepare hook it is
// behaviorally identical to Engine.RunUntil.
func (g *Group) RunUntil(limit Time) {
	clk := g.shards[0].clk
	clk.halt = false
	for {
		start := clk.now
		end := limit
		if g.window > 0 {
			if w := start.Add(g.window); w < limit {
				end = w
			}
		}
		if g.prepare != nil {
			g.prepare(start, end)
		}
		for !clk.halt {
			best := -1
			var bestAt Time
			var bestSeq uint64
			for i, e := range g.shards {
				at, seq, ok := e.head()
				if !ok || at > end {
					continue
				}
				if best < 0 || at < bestAt || (at == bestAt && seq < bestSeq) {
					best, bestAt, bestSeq = i, at, seq
				}
			}
			if best < 0 {
				break
			}
			g.shards[best].Step()
		}
		if clk.halt {
			return
		}
		if clk.now < end {
			clk.now = end
		}
		if end >= limit {
			return
		}
	}
}

// Pending returns the number of live queued callbacks across all
// shards.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.shards {
		n += e.Pending()
	}
	return n
}
