package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a single-threaded discrete-event simulator.
//
// All scheduled callbacks run on the goroutine that calls Run, RunUntil or
// Step; the engine itself is not safe for concurrent use. Callbacks may
// schedule further work. Scheduling a callback in the past clamps it to the
// current instant.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
	halt  bool

	// stopped counts queue entries cancelled via Timer.Stop but not yet
	// removed; when they exceed half the queue the heap is compacted
	// (see maybeCompact), so churn-heavy runs that stop timers en masse
	// do not grow the heap monotonically.
	stopped int

	// Executed counts callbacks that have run; useful for progress
	// accounting and loop-detection in tests.
	executed uint64
}

// New returns an engine whose clock starts at the epoch and whose
// randomness derives entirely from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current instant of the simulation clock.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of callbacks that have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Rand returns the engine's root RNG. Prefer NewRand for per-entity
// streams so that entities stay independent of each other's draw order.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent RNG stream from the engine seed.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	e  *Engine
	it *item
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the callback from running. Stopping a nil or already-fired
// timer is a no-op returning false.
func (t *Timer) Stop() bool {
	if t == nil || t.it == nil || t.it.stopped || t.it.fn == nil {
		return false
	}
	t.it.stopped = true
	t.e.stopped++
	t.e.maybeCompact()
	return true
}

// Stopped reports whether Stop was called before the timer fired.
func (t *Timer) Stopped() bool { return t != nil && t.it != nil && t.it.stopped }

// At schedules fn to run at instant at (clamped to now if in the past) and
// returns a cancellable handle.
func (e *Engine) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil callback")
	}
	if at < e.now {
		at = e.now
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, it)
	return &Timer{e: e, it: it}
}

// After schedules fn to run d from now. Negative d behaves like zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now.Add(d), fn)
}

// Halt stops the currently running Run/RunUntil loop after the current
// callback returns. Pending events remain queued.
func (e *Engine) Halt() { e.halt = true }

// Pending returns the number of live queued callbacks: scheduled, not
// yet fired and not stopped. Stopped timers never count, whether the
// heap has compacted them away yet or not.
func (e *Engine) Pending() int { return len(e.queue) - e.stopped }

// compactMin is the queue size below which stopped entries are left for
// the pop path to discard: rebuilding a tiny heap buys nothing.
const compactMin = 64

// maybeCompact rebuilds the heap without its stopped entries once they
// outnumber the live ones. Cost is O(n) against the O(n) space the
// stopped entries would otherwise occupy until naturally popped —
// churn-heavy runs (mass Protocol.Stop on crashes, suppression storms)
// previously grew the heap monotonically.
func (e *Engine) maybeCompact() {
	if len(e.queue) < compactMin || e.stopped*2 <= len(e.queue) {
		return
	}
	live := e.queue[:0]
	for _, it := range e.queue {
		if it.stopped {
			it.fn = nil
			it.index = -1
			continue
		}
		it.index = len(live)
		live = append(live, it)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	heap.Init(&e.queue)
	e.stopped = 0
}

// Step runs the single earliest pending callback, advancing the clock to
// its instant. It reports whether any callback ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		fn := it.fn
		it.fn = nil
		if it.stopped {
			e.stopped--
			continue
		}
		e.now = it.at
		e.executed++
		fn()
		return true
	}
	return false
}

// Run executes callbacks until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halt = false
	for !e.halt && e.Step() {
	}
}

// RunUntil executes all callbacks scheduled at or before limit, then
// advances the clock to limit. Callbacks scheduled later stay queued.
func (e *Engine) RunUntil(limit Time) {
	e.halt = false
	for !e.halt {
		next, ok := e.peek()
		if !ok || next > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// peek returns the instant of the earliest live callback.
func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].stopped {
			it := heap.Pop(&e.queue).(*item)
			it.fn = nil
			e.stopped--
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}
