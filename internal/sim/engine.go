package sim

import (
	"math"
	"math/rand"
	"time"
)

// Engine is a single-threaded discrete-event simulator.
//
// All scheduled callbacks run on the goroutine that calls Run, RunUntil or
// Step; the engine itself is not safe for concurrent use. Callbacks may
// schedule further work. Scheduling a callback in the past clamps it to the
// current instant.
//
// Pending callbacks live in a hierarchical timer wheel with a heap
// fallback for far-future instants (see wheel.go); fired and cancelled
// entries are recycled through a free list, so steady-state scheduling
// allocates nothing. Firing order is exactly ascending (at, seq): FIFO
// among callbacks scheduled for the same instant.
type Engine struct {
	clk *clock
	rng *rand.Rand

	wheel wheel
	over  overflowHeap

	// ready holds the items due at or before wheel.cur, sorted by
	// (at, seq); readyPos is the consumed prefix. New items landing at
	// or before the current tick are merge-inserted here.
	ready    []*item
	readyPos int

	scratch []*item // cascade reuse buffer
	free    []*item // recycled items

	// count is the number of resident items — scheduled and not yet
	// fired or physically discarded, including stopped ones; stopped
	// counts entries cancelled via Timer.Stop but not yet removed. When
	// stopped entries outnumber live ones the store is compacted (see
	// maybeCompact), so churn-heavy runs that stop timers en masse do
	// not grow it monotonically.
	count   int
	stopped int
}

// clock is the simulation clock shared by an engine and every shard
// derived from it via NewShard. Keeping (now, seq, halt, executed) in
// one place is what makes a sharded run indistinguishable from a
// single-engine one: the Group merge-executor steps whichever shard
// holds the globally earliest item, every shard reads the same instant,
// and — crucially — seq numbering stays global, so FIFO tie-breaking
// among equal instants is identical no matter which shard an item was
// filed on.
type clock struct {
	now  Time
	seq  uint64
	halt bool

	// executed counts callbacks that have run; useful for progress
	// accounting and loop-detection in tests.
	executed uint64
}

// item is a scheduled callback. Items are pooled: gen increments on
// every recycle so stale Timer handles cannot cancel a reused entry.
type item struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among equal times
	fn      func()
	stopped bool
	gen     uint32
}

// New returns an engine whose clock starts at the epoch and whose
// randomness derives entirely from seed.
func New(seed int64) *Engine {
	return &Engine{clk: &clock{}, rng: rand.New(rand.NewSource(seed))}
}

// NewShard returns a new engine sharing this engine's clock and root
// RNG but owning its own timer wheel. Shards are the per-tile event
// queues of a tile-parallel run (see Group): work filed on any shard
// carries a globally unique, globally ordered (at, seq) key, so a
// Group can interleave shards into exactly the schedule a single
// engine would have produced. Creating a shard draws nothing from the
// RNG and never perturbs the clock.
func (e *Engine) NewShard() *Engine {
	return &Engine{clk: e.clk, rng: e.rng}
}

// Now returns the current instant of the simulation clock.
func (e *Engine) Now() Time { return e.clk.now }

// Executed returns the number of callbacks that have run so far.
func (e *Engine) Executed() uint64 { return e.clk.executed }

// Rand returns the engine's root RNG. Prefer NewRand for per-entity
// streams so that entities stay independent of each other's draw order.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent RNG stream from the engine seed.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	e       *Engine
	it      *item
	gen     uint32
	stopped bool
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the callback from running. Stopping a nil or already-fired
// timer is a no-op returning false.
func (t *Timer) Stop() bool {
	if t == nil || t.it == nil || t.stopped || t.it.gen != t.gen || t.it.stopped {
		return false
	}
	t.it.stopped = true
	t.stopped = true
	t.e.stopped++
	t.e.maybeCompact()
	return true
}

// Stopped reports whether Stop was called before the timer fired.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// Live reports whether the timer is still scheduled — not yet fired
// and not stopped — without mutating anything. This is exactly the
// predicate Stop uses to decide its return value; the tile-parallel
// runner's capture layer uses it to answer a handler's Stop call
// read-only and defer the engine mutation to the replay phase.
func (t *Timer) Live() bool {
	return t != nil && t.it != nil && !t.stopped && t.it.gen == t.gen && !t.it.stopped
}

// At schedules fn to run at instant at (clamped to now if in the past) and
// returns a cancellable handle.
func (e *Engine) At(at Time, fn func()) *Timer {
	it := e.schedule(at, fn)
	return &Timer{e: e, it: it, gen: it.gen}
}

// After schedules fn to run d from now. Negative d behaves like zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.clk.now.Add(d), fn)
}

// Schedule is At without the cancellation handle: the hot-path variant
// for fire-and-forget work (MAC contention rounds, workload pumps). It
// allocates nothing once the engine's item pool is warm.
func (e *Engine) Schedule(at Time, fn func()) { e.schedule(at, fn) }

// ScheduleAfter is After without the cancellation handle.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) {
	e.schedule(e.clk.now.Add(d), fn)
}

func (e *Engine) schedule(at Time, fn func()) *item {
	if fn == nil {
		panic("sim: nil callback")
	}
	if at < e.clk.now {
		at = e.clk.now
	}
	it := e.newItem(at, fn)
	e.enqueue(it)
	return it
}

func (e *Engine) newItem(at Time, fn func()) *item {
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		it = &item{}
	}
	it.at = at
	it.fn = fn
	it.seq = e.clk.seq
	e.clk.seq++
	return it
}

// recycle returns a fired or discarded item to the pool, bumping its
// generation so outstanding Timer handles go stale.
func (e *Engine) recycle(it *item) {
	it.fn = nil
	it.stopped = false
	it.gen++
	e.free = append(e.free, it)
}

// enqueue files the item: merge into the ready buffer when due at or
// before the current tick, otherwise into the wheel, otherwise (beyond
// the wheel horizon) into the overflow heap.
func (e *Engine) enqueue(it *item) {
	e.count++
	if tickOf(it.at) <= e.wheel.cur {
		e.readyInsert(it)
		return
	}
	if !e.wheel.place(it) {
		e.over.push(it)
	}
}

// readyInsert merge-inserts into the unconsumed tail of the ready
// buffer, preserving (at, seq) order. A freshly scheduled item carries
// the largest seq, so its slot is always at or after readyPos.
func (e *Engine) readyInsert(it *item) {
	lo, hi := e.readyPos, len(e.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if itemLess(e.ready[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.ready = append(e.ready, nil)
	copy(e.ready[lo+1:], e.ready[lo:])
	e.ready[lo] = it
}

// advance moves the wheel to the next occupied instant and refills the
// ready buffer with every item due at that tick, in (at, seq) order. It
// reports false when nothing is pending anywhere. The loop only returns
// once no wheel slot or overflow item shares the chosen tick, so a
// cascade that lands items at the boundary cannot shadow a level-0 slot
// (or overflow resident) due at the same instant.
func (e *Engine) advance() bool {
	e.ready = e.ready[:0]
	e.readyPos = 0
	for {
		e.drainOverflowDue()
		start, lvl := e.wheel.nextWindow()
		overTick := int64(math.MaxInt64)
		if len(e.over) > 0 {
			overTick = tickOf(e.over[0].at)
		}
		if len(e.ready) > 0 && start > e.wheel.cur && overTick > e.wheel.cur {
			// Everything due at the current tick is collected and
			// nothing else shares it.
			return true
		}
		if lvl < 0 || overTick < start {
			if overTick == math.MaxInt64 {
				return false // wheel and overflow both empty
			}
			// The far-future heap comes due first (the wheel may even
			// be empty): jump straight to its earliest tick.
			e.wheel.cur = overTick
			e.drainOverflowDue()
			return true
		}
		if lvl == 0 {
			// A level-0 window is a single tick: its slot holds exactly
			// the items due at that tick. Cascade leftovers already in
			// ready always share the tick (start == cur then), so the
			// full buffer is re-sorted after the append.
			e.wheel.cur = start
			e.ready = e.wheel.drain(0, start&slotMask, e.ready)
			sortItems(e.ready)
			e.drainOverflowDue()
			return true
		}
		// A coarser window opens next: advance to its boundary and
		// cascade its slot down to finer levels, then rescan. Items due
		// exactly at the boundary tick go straight to ready.
		e.wheel.cur = start
		idx := (start >> (lvl * slotBits)) & slotMask
		e.scratch = e.wheel.drain(lvl, idx, e.scratch[:0])
		for i, it := range e.scratch {
			e.scratch[i] = nil
			if tickOf(it.at) <= e.wheel.cur {
				e.readyInsert(it)
			} else if !e.wheel.place(it) {
				e.over.push(it)
			}
		}
	}
}

// drainOverflowDue merges overflow items that have come due (tick at or
// before the wheel cursor) into the ready buffer.
func (e *Engine) drainOverflowDue() {
	for len(e.over) > 0 && tickOf(e.over[0].at) <= e.wheel.cur {
		e.readyInsert(e.over.pop())
	}
}

// Halt stops the currently running Run/RunUntil loop after the current
// callback returns. Pending events remain queued.
func (e *Engine) Halt() { e.clk.halt = true }

// Pending returns the number of live queued callbacks: scheduled, not
// yet fired and not stopped. Stopped timers never count, whether they
// have been physically discarded yet or not.
func (e *Engine) Pending() int { return e.count - e.stopped }

// compactMin is the resident count below which stopped entries are left
// for the pop path to discard: sweeping a tiny store buys nothing.
const compactMin = 64

// maybeCompact physically removes stopped entries once they outnumber
// the live ones. Cost is O(resident) against the O(resident) space the
// stopped entries would otherwise occupy until naturally drained —
// churn-heavy runs (mass Protocol.Stop on crashes, suppression storms)
// would otherwise grow the store monotonically.
func (e *Engine) maybeCompact() {
	if e.count < compactMin || e.stopped*2 <= e.count {
		return
	}
	drop := func(s []*item) []*item {
		kept := s[:0]
		for _, it := range s {
			if it.stopped {
				e.count--
				e.recycle(it)
				continue
			}
			kept = append(kept, it)
		}
		for i := len(kept); i < len(s); i++ {
			s[i] = nil
		}
		return kept
	}
	tail := drop(e.ready[e.readyPos:])
	e.ready = e.ready[:e.readyPos+len(tail)]
	for l := 0; l < wheelLevels; l++ {
		for m := e.wheel.occ[l]; m != 0; m &= m - 1 {
			idx := trailingIdx(m)
			slot := drop(e.wheel.slots[l][idx])
			e.wheel.slots[l][idx] = slot
			if len(slot) == 0 {
				e.wheel.occ[l] &^= 1 << idx
			}
		}
	}
	e.over = drop(e.over)
	e.over.init()
	e.stopped = 0
}

// Step runs the single earliest pending callback, advancing the clock to
// its instant. It reports whether any callback ran.
func (e *Engine) Step() bool {
	for {
		for e.readyPos < len(e.ready) {
			it := e.ready[e.readyPos]
			e.ready[e.readyPos] = nil
			e.readyPos++
			e.count--
			if it.stopped {
				e.stopped--
				e.recycle(it)
				continue
			}
			at, fn := it.at, it.fn
			e.recycle(it)
			e.clk.now = at
			e.clk.executed++
			fn()
			return true
		}
		if !e.advance() {
			return false
		}
	}
}

// Run executes callbacks until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.clk.halt = false
	for !e.clk.halt && e.Step() {
	}
}

// RunUntil executes all callbacks scheduled at or before limit, then
// advances the clock to limit. Callbacks scheduled later stay queued.
func (e *Engine) RunUntil(limit Time) {
	e.clk.halt = false
	for !e.clk.halt {
		next, ok := e.peek()
		if !ok || next > limit {
			break
		}
		e.Step()
	}
	if e.clk.now < limit {
		e.clk.now = limit
	}
}

// peek returns the instant of the earliest live callback, discarding
// stopped entries it walks past.
func (e *Engine) peek() (Time, bool) {
	at, _, ok := e.head()
	return at, ok
}

// head returns the (at, seq) key of the earliest live callback,
// discarding stopped entries it walks past — the comparison key the
// Group merge-executor uses to pick which shard steps next.
func (e *Engine) head() (Time, uint64, bool) {
	for {
		for e.readyPos < len(e.ready) {
			it := e.ready[e.readyPos]
			if !it.stopped {
				return it.at, it.seq, true
			}
			e.ready[e.readyPos] = nil
			e.readyPos++
			e.count--
			e.stopped--
			e.recycle(it)
		}
		if !e.advance() {
			return 0, 0, false
		}
	}
}
