package sim

import (
	"fmt"
	"testing"
	"time"
)

// mergeOp is one schedule entry of the differential harness: after
// delay, log a label; if nest > 0, schedule a child op on the next
// shard (a cross-tile message) with half the delay.
type mergeOp struct {
	delay time.Duration
	shard int
	nest  int
}

// runMerged executes ops on a k-shard group with the given window and
// returns the execution log "label@instant" in firing order. k = 0
// runs the single-engine reference (plain Engine.RunUntil).
func runMerged(ops []mergeOp, k int, window time.Duration, limit Time) []string {
	root := New(1)
	var shards []*Engine
	var group *Group
	if k == 0 {
		shards = []*Engine{root}
	} else {
		group = NewGroup(root, k-1, window, nil)
		shards = group.Shards()
	}
	var log []string
	var file func(op mergeOp, id string)
	file = func(op mergeOp, id string) {
		e := shards[op.shard%len(shards)]
		e.After(op.delay, func() {
			log = append(log, fmt.Sprintf("%s@%d", id, e.Now()))
			if op.nest > 0 {
				file(mergeOp{delay: op.delay / 2, shard: op.shard + 1, nest: op.nest - 1}, id+"'")
			}
		})
	}
	for i, op := range ops {
		file(op, fmt.Sprintf("op%d", i))
	}
	if group != nil {
		group.RunUntil(limit)
	} else {
		root.RunUntil(limit)
	}
	return log
}

// TestGroupMatchesSingleEngine checks the core merge invariant: a
// k-shard group fires the same callbacks at the same instants in the
// same order as one engine, for assorted shard counts, windows and
// same-instant ties.
func TestGroupMatchesSingleEngine(t *testing.T) {
	ops := []mergeOp{
		{10 * time.Millisecond, 2, 2},
		{10 * time.Millisecond, 0, 0}, // same-instant tie across shards
		{0, 1, 3},
		{250 * time.Millisecond, 3, 1},
		{10 * time.Millisecond, 1, 0}, // three-way tie
		{199 * time.Millisecond, 5, 2},
		{200 * time.Millisecond, 4, 0}, // lands exactly on a window edge
	}
	limit := Seconds(1)
	want := runMerged(ops, 0, 0, limit)
	if len(want) < len(ops) {
		t.Fatalf("reference run fired %d < %d callbacks", len(want), len(ops))
	}
	for _, k := range []int{1, 2, 4, 7} {
		for _, w := range []time.Duration{0, 200 * time.Millisecond, time.Millisecond} {
			got := runMerged(ops, k, w, limit)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("k=%d window=%v:\n got %v\nwant %v", k, w, got, want)
			}
		}
	}
}

// TestGroupWindowBarrier checks the prepare hook runs once per window
// with contiguous [start, end) spans covering the whole run, and that
// events never execute before their window's prepare.
func TestGroupWindowBarrier(t *testing.T) {
	root := New(1)
	var spans [][2]Time
	prepared := Time(-1)
	g := NewGroup(root, 3, 100*time.Millisecond, func(start, end Time) {
		spans = append(spans, [2]Time{start, end})
		prepared = end
	})
	for i := 0; i < 10; i++ {
		d := time.Duration(i) * 77 * time.Millisecond
		g.Shards()[i%4].After(d, func() {
			if at := root.Now(); at > prepared {
				t.Errorf("event at %v ran past prepared horizon %v", at, prepared)
			}
		})
	}
	g.RunUntil(Seconds(1))
	if len(spans) != 10 {
		t.Fatalf("want 10 windows over 1 s at 100 ms, got %d: %v", len(spans), spans)
	}
	for i, s := range spans {
		if i > 0 && s[0] != spans[i-1][1] {
			t.Fatalf("window %d starts at %v, previous ended %v", i, s[0], spans[i-1][1])
		}
	}
	if spans[0][0] != 0 || spans[len(spans)-1][1] != Seconds(1) {
		t.Fatalf("windows do not cover [0, 1s]: %v", spans)
	}
	if root.Now() != Seconds(1) {
		t.Fatalf("clock at %v, want 1 s", root.Now())
	}
}

// TestGroupHalt checks Halt from inside a callback stops the group
// loop just as it stops a single engine.
func TestGroupHalt(t *testing.T) {
	root := New(1)
	g := NewGroup(root, 1, 0, nil)
	ran := 0
	g.Shards()[1].After(time.Millisecond, func() { ran++; root.Halt() })
	g.Shards()[0].After(2*time.Millisecond, func() { ran++ })
	g.RunUntil(Seconds(1))
	if ran != 1 {
		t.Fatalf("halt did not stop the group: ran=%d", ran)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending after halt = %d, want 1", g.Pending())
	}
}

// TestShardSeqIsGlobal checks items filed on different shards draw
// from one seq counter — the property FIFO tie-breaking rests on.
func TestShardSeqIsGlobal(t *testing.T) {
	root := New(1)
	shard := root.NewShard()
	var order []int
	root.At(Seconds(1), func() { order = append(order, 0) })
	shard.At(Seconds(1), func() { order = append(order, 1) })
	root.At(Seconds(1), func() { order = append(order, 2) })
	g := &Group{shards: []*Engine{root, shard}}
	g.RunUntil(Seconds(2))
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Fatalf("same-instant FIFO across shards broken: %v", order)
	}
}

// TestTimerLive checks Live mirrors Stop's predicate without mutating.
func TestTimerLive(t *testing.T) {
	e := New(1)
	tm := e.After(time.Millisecond, func() {})
	if !tm.Live() {
		t.Fatal("fresh timer not live")
	}
	if !tm.Stop() || tm.Live() {
		t.Fatal("stopped timer still live")
	}
	tm2 := e.After(time.Millisecond, func() {})
	e.RunUntil(Seconds(1))
	if tm2.Live() {
		t.Fatal("fired timer still live")
	}
	var nilT *Timer
	if nilT.Live() {
		t.Fatal("nil timer live")
	}
}
