// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of scheduled
// callbacks. Determinism is guaranteed: a run is a pure function of the
// scheduled work and the engine's seed. Ties in firing time are broken by
// scheduling order (FIFO), and all randomness flows from RNGs derived from
// the engine seed.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant on the simulation clock, in nanoseconds since the
// start of the simulation. The zero value is the simulation epoch.
type Time int64

// Convenient duration-like constants expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Seconds returns t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the instant to a time.Duration offset from the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// At converts a time.Duration offset from the epoch into a Time.
func At(d time.Duration) Time { return Time(d) }

// Seconds converts a floating-point number of seconds into a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }
