package sim

import "container/heap"

// item is a scheduled callback in the event queue.
type item struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among equal times
	fn      func()
	stopped bool
	index   int // heap index, -1 once popped
}

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue []*item

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}
