package sim

import (
	"math"
	"math/bits"
	"sort"
)

// The engine's pending-callback store is a hierarchical timer wheel: 6
// levels of 64 slots over 2^14 ns (~16 us) ticks, covering ~13 days of
// simulated time, with a binary-heap overflow for anything farther out.
// Insertion and cancellation are O(1); finding the next occupied instant
// is O(levels) via per-level occupancy bitmaps instead of the O(log n)
// sift of the old global binary heap — the difference that keeps a
// 10k-node city sweep (hundreds of thousands of resident heartbeat and
// back-off timers) flat instead of logarithmic per event.
//
// Exactness contract: callbacks fire in precisely the old heap's order —
// ascending (at, seq), i.e. FIFO among equal instants. A level-0 slot
// spans one tick, which is coarser than a nanosecond, so slots are
// sorted by (at, seq) when drained into the ready buffer; everything
// still pending lives in strictly later ticks, so the global order is
// exact, not approximate.
const (
	// tickBits is the log2 of the tick length in nanoseconds.
	tickBits = 14
	// slotBits is the log2 of the per-level slot count.
	slotBits = 6
	// wheelLevels is the number of wheel levels; items beyond the top
	// level's horizon (64^6 ticks ~ 13 days) overflow into a heap.
	wheelLevels = 6

	slotsPerLevel = 1 << slotBits
	slotMask      = slotsPerLevel - 1
)

// tickOf returns the wheel tick containing instant at.
func tickOf(at Time) int64 { return int64(at) >> tickBits }

// wheel is the leveled slot store. Slots hold unsorted items; ordering
// happens at drain time. occ tracks non-empty slots per level so the
// next occupied window is found with bit scans, never slot walks.
type wheel struct {
	slots [wheelLevels][slotsPerLevel][]*item
	occ   [wheelLevels]uint64
	// cur is the current tick: every resident item's tick is > cur
	// (items due at or before cur live in the engine's ready buffer).
	cur int64
}

// place files an item whose tick is strictly beyond cur at the coarsest
// level whose resolution still separates it from the present.
func (w *wheel) place(it *item) bool {
	t := tickOf(it.at)
	d := uint64(t - w.cur)
	for l := 0; l < wheelLevels; l++ {
		if d < 1<<((l+1)*slotBits) {
			idx := (t >> (l * slotBits)) & slotMask
			w.slots[l][idx] = append(w.slots[l][idx], it)
			w.occ[l] |= 1 << idx
			return true
		}
	}
	return false // beyond the horizon: overflow heap
}

// drain empties slot idx of level l into buf and returns the result.
func (w *wheel) drain(l int, idx int64, buf []*item) []*item {
	s := w.slots[l][idx]
	buf = append(buf, s...)
	for i := range s {
		s[i] = nil
	}
	w.slots[l][idx] = s[:0]
	w.occ[l] &^= 1 << idx
	return buf
}

// nextWindow returns the start tick of the earliest occupied window and
// its level, or (math.MaxInt64, -1) when the wheel is empty. At level 0
// the window start is the item tick itself; at higher levels it is the
// cascade boundary where the slot must be re-filed downward.
func (w *wheel) nextWindow() (int64, int) {
	best := int64(math.MaxInt64)
	bestLvl := -1
	for l := 0; l < wheelLevels; l++ {
		m := w.occ[l]
		if m == 0 {
			continue
		}
		shift := l * slotBits
		cl := (w.cur >> shift) & slotMask
		// Rotation base: the start of the level-(l+1) window containing
		// cur. Slots strictly after the level cursor belong to the
		// current rotation; slots before it wrap into the next one. The
		// cursor slot itself is ambiguous and resolved by position:
		// exactly at its window start (a coarser cascade just landed
		// there) it holds leftovers due now; strictly inside the window
		// it can only hold next-rotation wrap-arounds, because a slot's
		// current-window items are always drained the moment the cursor
		// crosses the window boundary.
		base := w.cur &^ (1<<((l+1)*slotBits) - 1)
		var start int64
		if m>>cl&1 == 1 && w.cur&(1<<shift-1) == 0 {
			start = w.cur
		} else if ahead := m &^ (1<<(cl+1) - 1); ahead != 0 {
			start = base + int64(bits.TrailingZeros64(ahead))<<shift
		} else {
			start = base + 1<<((l+1)*slotBits) + int64(bits.TrailingZeros64(m))<<shift
		}
		// <= not <: on a tie the coarsest level must win, because its
		// window contains the finer ones — cascading a finer level
		// first would move the cursor into a still-occupied coarse
		// window and strand its items.
		if start <= best {
			best, bestLvl = start, l
		}
	}
	return best, bestLvl
}

// trailingIdx returns the index of the lowest set bit of m (m != 0).
func trailingIdx(m uint64) int64 { return int64(bits.TrailingZeros64(m)) }

// itemLess orders items by (at, seq): time order, FIFO among equals.
func itemLess(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortItems orders a drained slot by (at, seq). Small slots — the
// common case — take the insertion-sort fast path; mass same-instant
// fan-ins (a 10k-node warm-up tick) fall back to the library sort.
func sortItems(items []*item) {
	if len(items) <= 12 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && itemLess(items[j], items[j-1]); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return
	}
	sort.Slice(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
}

// overflowHeap is the far-future fallback: a plain binary min-heap by
// (at, seq) for items beyond the wheel horizon. It reuses the old
// engine queue's sift routines without the container/heap interface
// boxing.
type overflowHeap []*item

func (h *overflowHeap) push(it *item) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *overflowHeap) pop() *item {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && itemLess(q[l], q[small]) {
			small = l
		}
		if r < n && itemLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// init re-heapifies after a bulk rewrite (compaction).
func (h overflowHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		for j := i; ; {
			l, r := 2*j+1, 2*j+2
			small := j
			if l < n && itemLess(h[l], h[small]) {
				small = l
			}
			if r < n && itemLess(h[r], h[small]) {
				small = r
			}
			if small == j {
				break
			}
			h[j], h[small] = h[small], h[j]
			j = small
		}
	}
}
