package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// refEngine is the pre-wheel reference scheduler: a flat slice popped by
// linear minimum scan over (at, seq). Deliberately brute-force — it is
// the executable specification the wheel engine is diffed against.
type refEngine struct {
	now   Time
	seq   uint64
	items []*refItem
}

type refItem struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
}

func (r *refEngine) At(at Time, fn func()) *refItem {
	if at < r.now {
		at = r.now
	}
	it := &refItem{at: at, seq: r.seq, fn: fn}
	r.seq++
	r.items = append(r.items, it)
	return it
}

func (r *refEngine) Step() bool {
	for {
		best := -1
		for i, it := range r.items {
			if best < 0 || it.at < r.items[best].at ||
				(it.at == r.items[best].at && it.seq < r.items[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return false
		}
		it := r.items[best]
		r.items = append(r.items[:best], r.items[best+1:]...)
		if it.stopped {
			continue
		}
		r.now = it.at
		it.fn()
		return true
	}
}

func (r *refEngine) Run() {
	for r.Step() {
	}
}

// delays spans the interesting ranges: sub-tick, level boundaries (64^l
// ticks at 2^14 ns per tick), and the beyond-horizon overflow heap.
var scriptDelays = []time.Duration{
	0, 1, 100 * time.Nanosecond,
	16 * time.Microsecond, 17 * time.Microsecond, // tick boundary
	time.Millisecond, 1048*time.Microsecond + 576*time.Nanosecond, // level 0/1 boundary ~2^20 ns
	50 * time.Millisecond, 67 * time.Millisecond, 68 * time.Millisecond, // level 1/2 boundary ~2^26 ns
	time.Second, 4 * time.Second, 5 * time.Second, // level 2/3 boundary ~2^32 ns
	5 * time.Minute, 286 * time.Minute, // level 3/4 boundary ~2^38 ns
	24 * time.Hour, 305 * time.Hour, 306 * time.Hour, // level 4/5 boundary ~2^44 ns
	14 * 24 * time.Hour, 1000 * 24 * time.Hour, // beyond horizon: overflow heap
}

// traceEntry is one fired callback in a script replay: which event and
// when.
type traceEntry struct {
	id int
	at Time
}

// TestWheelMatchesReference diffs the wheel engine against the
// brute-force reference on randomized schedules covering every level
// boundary, nested scheduling, FIFO ties and cancellations.
func TestWheelMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		wheelTrace := runWheelScript(t, seed)
		refTrace := runRefScript(t, seed)
		if len(wheelTrace) != len(refTrace) {
			t.Fatalf("seed %d: wheel fired %d callbacks, reference %d",
				seed, len(wheelTrace), len(refTrace))
		}
		for i := range wheelTrace {
			if wheelTrace[i] != refTrace[i] {
				t.Fatalf("seed %d: divergence at event %d: wheel %+v, reference %+v",
					seed, i, wheelTrace[i], refTrace[i])
			}
		}
	}
}

// scriptActions precomputes the script deterministically so both
// engines replay the identical workload: action i fires as event id i
// and schedules children with fixed delays; stops reference pending
// handles by id.
type scriptAction struct {
	children []time.Duration
	stops    []int // ids of earlier-scheduled events to stop when this fires
}

func buildScript(seed int64, n int) []scriptAction {
	rng := rand.New(rand.NewSource(seed))
	actions := make([]scriptAction, n)
	for i := range actions {
		k := rng.Intn(4)
		for c := 0; c < k; c++ {
			actions[i].children = append(actions[i].children,
				scriptDelays[rng.Intn(len(scriptDelays))])
		}
		if rng.Intn(3) == 0 {
			actions[i].stops = append(actions[i].stops, rng.Intn(n))
		}
	}
	return actions
}

const scriptLen = 400

func runWheelScript(t *testing.T, seed int64) []traceEntry {
	t.Helper()
	e := New(seed)
	actions := buildScript(seed, scriptLen)
	timers := make(map[int]*Timer)
	var trace []traceEntry
	next := 0
	var fire func(id int)
	schedule := func(d time.Duration) {
		if next >= scriptLen {
			return
		}
		id := next
		next++
		timers[id] = e.After(d, func() { fire(id) })
	}
	fire = func(id int) {
		trace = append(trace, traceEntry{id: id, at: e.Now()})
		for _, d := range actions[id].children {
			schedule(d)
		}
		for _, s := range actions[id].stops {
			if tm := timers[s]; tm != nil {
				tm.Stop()
			}
		}
	}
	schedule(0)
	schedule(time.Second)
	schedule(30 * 24 * time.Hour)
	e.Run()
	return trace
}

func runRefScript(t *testing.T, seed int64) []traceEntry {
	t.Helper()
	e := &refEngine{}
	actions := buildScript(seed, scriptLen)
	handles := make(map[int]*refItem)
	var trace []traceEntry
	next := 0
	var fire func(id int)
	schedule := func(d time.Duration) {
		if next >= scriptLen {
			return
		}
		id := next
		next++
		handles[id] = e.At(e.now.Add(d), func() { fire(id) })
	}
	fire = func(id int) {
		trace = append(trace, traceEntry{id: id, at: e.now})
		for _, d := range actions[id].children {
			schedule(d)
		}
		for _, s := range actions[id].stops {
			if h := handles[s]; h != nil {
				h.stopped = true
			}
		}
	}
	schedule(0)
	schedule(time.Second)
	schedule(30 * 24 * time.Hour)
	e.Run()
	return trace
}

// TestWheelFarFutureOverflow pins the heap fallback: timers beyond the
// wheel horizon (~13 days) fire, in order, interleaved with near-term
// work, and Stop works on overflow residents.
func TestWheelFarFutureOverflow(t *testing.T) {
	e := New(1)
	var fired []int
	far := 20 * 24 * time.Hour
	e.After(far, func() { fired = append(fired, 2) })
	e.After(far+time.Nanosecond, func() { fired = append(fired, 3) })
	stopped := e.After(far+2*time.Nanosecond, func() { fired = append(fired, 99) })
	e.After(time.Second, func() { fired = append(fired, 1) })
	veryFar := e.After(400*24*time.Hour, func() { fired = append(fired, 4) })
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	if !stopped.Stop() {
		t.Fatal("Stop on overflow-resident timer failed")
	}
	_ = veryFar
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Now() != At(400*24*time.Hour) {
		t.Fatalf("Now = %v", e.Now())
	}
}

// TestWheelStopResidentEveryLevel stops one timer resident at each
// wheel level and in the overflow heap; none may fire, and the
// remaining timers still fire in order.
func TestWheelStopResidentEveryLevel(t *testing.T) {
	e := New(1)
	delays := []time.Duration{
		30 * time.Microsecond, // level 0
		10 * time.Millisecond, // level 1
		2 * time.Second,       // level 2
		30 * time.Minute,      // level 3
		2 * 24 * time.Hour,    // level 4 or 5
		40 * 24 * time.Hour,   // overflow
	}
	var fired []time.Duration
	var stops []*Timer
	for _, d := range delays {
		d := d
		stops = append(stops, e.After(d, func() { t.Errorf("stopped timer at %v fired", d) }))
		e.After(d+time.Microsecond, func() { fired = append(fired, d) })
	}
	for i, tm := range stops {
		if !tm.Stop() {
			t.Fatalf("Stop %d failed", i)
		}
		if tm.Stop() {
			t.Fatalf("double Stop %d reported true", i)
		}
	}
	if got := e.Pending(); got != len(delays) {
		t.Fatalf("Pending = %d, want %d", got, len(delays))
	}
	e.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d callbacks, want %d", len(fired), len(delays))
	}
	for i := range delays {
		if fired[i] != delays[i] {
			t.Fatalf("firing order %v, want %v", fired, delays)
		}
	}
}

// TestWheelPendingParity walks a random schedule and checks Pending
// against the reference count after every operation.
func TestWheelPendingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := New(7)
	var timers []*Timer
	live := 0
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			d := scriptDelays[rng.Intn(len(scriptDelays))]
			timers = append(timers, e.After(d, func() {}))
			live++
		case 2:
			if len(timers) == 0 {
				continue
			}
			tm := timers[rng.Intn(len(timers))]
			if tm.Stop() {
				live--
			}
		}
		if e.Pending() != live {
			t.Fatalf("op %d: Pending = %d, want %d", i, e.Pending(), live)
		}
	}
	for e.Step() {
		live--
		if e.Pending() != live {
			t.Fatalf("drain: Pending = %d, want %d", e.Pending(), live)
		}
	}
	if live != 0 {
		t.Fatalf("after drain live = %d", live)
	}
}

// TestWheelRunUntilTickBoundaries pins RunUntil behavior when the limit
// falls inside a tick whose slot has already been drained for peeking.
func TestWheelRunUntilTickBoundaries(t *testing.T) {
	e := New(1)
	var fired []Time
	record := func() { fired = append(fired, e.Now()) }
	e.At(At(100*time.Microsecond), record)
	e.At(At(100*time.Microsecond+300*time.Nanosecond), record)
	e.At(At(5*time.Second), record)
	e.RunUntil(At(100 * time.Microsecond))
	if len(fired) != 1 {
		t.Fatalf("fired %v, want exactly the 100us callback", fired)
	}
	// Schedule into the just-peeked region: must still fire in order.
	e.At(At(100*time.Microsecond+100*time.Nanosecond), record)
	e.RunUntil(At(time.Second))
	want := []Time{
		At(100 * time.Microsecond),
		At(100*time.Microsecond + 100*time.Nanosecond),
		At(100*time.Microsecond + 300*time.Nanosecond),
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want the 5s callback", e.Pending())
	}
}

// TestScheduleNoHandle covers the pooled fire-and-forget path.
func TestScheduleNoHandle(t *testing.T) {
	e := New(1)
	count := 0
	for i := 0; i < 100; i++ {
		e.ScheduleAfter(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	e.Schedule(At(time.Hour), func() { count++ })
	e.Run()
	if count != 101 {
		t.Fatalf("count = %d", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

// TestWheelMaxTime schedules at the far edge of representable time.
func TestWheelMaxTime(t *testing.T) {
	e := New(1)
	ran := false
	e.At(Time(math.MaxInt64), func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("max-time callback never fired")
	}
	if e.Now() != Time(math.MaxInt64) {
		t.Fatalf("Now = %v", e.Now())
	}
}
