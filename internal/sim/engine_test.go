package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		t    Time
		secs float64
	}{
		{"zero", 0, 0},
		{"one second", Second, 1},
		{"half second", 500 * Millisecond, 0.5},
		{"minute", Minute, 60},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.Seconds(); got != tt.secs {
				t.Errorf("Seconds() = %v, want %v", got, tt.secs)
			}
			if got := Seconds(tt.secs); got != tt.t {
				t.Errorf("Seconds(%v) = %v, want %v", tt.secs, got, tt.t)
			}
		})
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Seconds(1)
	t1 := t0.Add(500 * time.Millisecond)
	if want := Seconds(1.5); t1 != want {
		t.Fatalf("Add = %v, want %v", t1, want)
	}
	if d := t1.Sub(t0); d != 500*time.Millisecond {
		t.Fatalf("Sub = %v, want 500ms", d)
	}
	if !t0.Before(t1) || t0.After(t1) {
		t.Fatal("Before/After disagree")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != Seconds(3) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestEngineFIFOTies(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("equal-time callbacks ran out of order: %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New(1)
	var fired []Time
	e.After(time.Second, func() {
		fired = append(fired, e.Now())
		e.After(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != Seconds(1) || fired[1] != Seconds(2) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEnginePastClamp(t *testing.T) {
	e := New(1)
	var at Time
	e.After(time.Second, func() {
		e.At(0, func() { at = e.Now() }) // in the past: clamps to now
	})
	e.Run()
	if at != Seconds(1) {
		t.Fatalf("past-scheduled callback ran at %v, want 1s", at)
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.After(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped should be true")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(time.Second, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestNilTimerStop(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil timer Stop should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []int
	e.After(1*time.Second, func() { fired = append(fired, 1) })
	e.After(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(Seconds(3))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != Seconds(3) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(Seconds(10))
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := New(1)
	ran := false
	e.At(Seconds(3), func() { ran = true })
	e.RunUntil(Seconds(3))
	if !ran {
		t.Fatal("callback at the limit should run")
	}
}

func TestHalt(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Seconds(float64(i)), func() {
			count++
			if count == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (halted)", count)
	}
	e.Run() // resume
	if count != 5 {
		t.Fatalf("count = %d, want 5 after resume", count)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil callback")
		}
	}()
	New(1).After(time.Second, nil)
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := New(seed)
		rng := e.NewRand()
		var draws []int64
		var tick func()
		tick = func() {
			draws = append(draws, rng.Int63n(1000))
			if len(draws) < 20 {
				e.After(time.Duration(rng.Intn(100))*time.Millisecond, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestNewRandIndependentStreams(t *testing.T) {
	e := New(7)
	r1, r2 := e.NewRand(), e.NewRand()
	same := true
	for i := 0; i < 10; i++ {
		if r1.Int63() != r2.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("derived RNG streams are identical")
	}
}

// Property: the engine never runs callbacks out of time order, regardless of
// the insertion pattern.
func TestQueueOrderingProperty(t *testing.T) {
	f := func(delaysMs []uint16, seed int64) bool {
		if len(delaysMs) == 0 {
			return true
		}
		e := New(seed)
		var fired []Time
		for _, d := range delaysMs {
			e.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delaysMs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPendingCountsLiveCallbacks pins Pending's semantics: it counts
// live (scheduled, unfired, unstopped) callbacks only, independent of
// whether the heap has compacted stopped entries away yet.
func TestPendingCountsLiveCallbacks(t *testing.T) {
	e := New(1)
	var timers []*Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, e.After(time.Duration(i+1)*time.Second, func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for i := 0; i < 4; i++ {
		timers[i].Stop()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending after 4 stops = %d, want 6 (stopped timers must not count)", e.Pending())
	}
	timers[0].Stop() // double-stop must not double-count
	if e.Pending() != 6 {
		t.Fatalf("Pending after double stop = %d, want 6", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	if e.Executed() != 6 {
		t.Fatalf("Executed = %d, want 6", e.Executed())
	}
}

// TestStoppedTimerCompaction exercises the lazy heap compaction: when
// stopped entries exceed half the queue the engine drops them eagerly
// instead of carrying them until they pop, and the surviving callbacks
// still run in order.
func TestStoppedTimerCompaction(t *testing.T) {
	e := New(1)
	const n = 4 * compactMin
	var timers []*Timer
	for i := 0; i < n; i++ {
		timers = append(timers, e.After(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	// Stop three quarters: crosses the stopped > live threshold.
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			timers[i].Stop()
		}
	}
	if got := e.Pending(); got != n/4 {
		t.Fatalf("Pending = %d, want %d", got, n/4)
	}
	// Compaction must have physically discarded entries, not just
	// relabeled them.
	if e.count > n/2 {
		t.Fatalf("store holds %d entries after mass stop, want compaction below %d", e.count, n/2)
	}
	var fired []Time
	for e.Step() {
		fired = append(fired, e.Now())
	}
	if len(fired) != n/4 {
		t.Fatalf("fired %d callbacks, want %d", len(fired), n/4)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("callbacks out of order after compaction: %v", fired)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
}

// TestCompactionBelowThresholdLeavesQueue pins the laziness: small
// queues and minority-stopped queues are not compacted (the pop path
// discards those), so Stop stays O(1) in the common case.
func TestCompactionBelowThresholdLeavesQueue(t *testing.T) {
	e := New(1)
	var timers []*Timer
	for i := 0; i < compactMin/2; i++ {
		timers = append(timers, e.After(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if e.count != compactMin/2 {
		t.Fatalf("small store compacted eagerly: resident=%d", e.count)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	e.Run()
	if e.Executed() != 0 {
		t.Fatal("stopped callbacks ran")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := New(1)
	for i := 0; i < 4; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	stopped := e.After(10*time.Second, func() {})
	stopped.Stop()
	e.Run()
	if e.Executed() != 4 {
		t.Fatalf("Executed = %d, want 4", e.Executed())
	}
}
