package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestWheelTreeSchedulesMatchReference diffs the wheel engine against
// the brute-force reference on small randomized binary-tree schedules.
// Small schedules shrink failures to readable traces — this is the test
// that localized both wheel rotation-attribution bugs during
// development, where the long mixed script only signalled them.
func TestWheelTreeSchedulesMatchReference(t *testing.T) {
	seeds := int64(1500)
	if testing.Short() {
		seeds = 200
	}
	for n := 2; n <= 12; n++ {
		for seed := int64(1); seed <= seeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			delays := make([]time.Duration, n)
			for i := range delays {
				delays[i] = scriptDelays[rng.Intn(len(scriptDelays))]
			}
			// Binary tree: event i schedules children 2i+1, 2i+2 at
			// delays[child % n].
			runWheel := func() []traceEntry {
				e := New(1)
				var trace []traceEntry
				var sched func(i int)
				sched = func(i int) {
					e.After(delays[i%n], func() {
						trace = append(trace, traceEntry{id: i, at: e.Now()})
						if 2*i+2 < 4*n {
							sched(2*i + 1)
							sched(2*i + 2)
						}
					})
				}
				sched(0)
				e.Run()
				return trace
			}
			runRef := func() []traceEntry {
				e := &refEngine{}
				var trace []traceEntry
				var sched func(i int)
				sched = func(i int) {
					e.At(e.now.Add(delays[i%n]), func() {
						trace = append(trace, traceEntry{id: i, at: e.now})
						if 2*i+2 < 4*n {
							sched(2*i + 1)
							sched(2*i + 2)
						}
					})
				}
				sched(0)
				e.Run()
				return trace
			}
			a, b := runWheel(), runRef()
			bad := len(a) != len(b)
			if !bad {
				for i := range a {
					if a[i] != b[i] {
						bad = true
						break
					}
				}
			}
			if bad {
				t.Fatalf("n=%d seed=%d delays=%v\nwheel=%v\nref  =%v", n, seed, delays, a, b)
			}
		}
	}
}
