// Package all wires every built-in protocol into the proto registry via
// blank imports. The simulation runner (internal/netsim) imports it
// once; anything reachable from netsim — the exp sweep families, both
// CLIs, the conformance suite — then resolves protocols purely by name.
//
// Adding a protocol is a new package registering itself in init plus
// one blank-import line here; no dispatch code anywhere changes.
package all

import (
	_ "repro/internal/core"   // frugal
	_ "repro/internal/flood"  // the three floods + the two storm schemes
	_ "repro/internal/gossip" // gossip-pushpull
)
