package proto_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topic"

	// Populate the registry with every built-in protocol: the suite is
	// table-driven over proto.Protocols(), so a new registration is
	// covered automatically once it is wired into proto/all.
	_ "repro/internal/proto/all"
)

// The conformance suite (modeled on internal/core's chaos tests) is the
// contract every registered protocol must honor, with its default
// params, under a hostile transport that drops, duplicates and reorders
// messages:
//
//   - safety: no panics, no event delivered twice by one node, no
//     deliveries outside the node's subscriptions (no parasite
//     deliveries), regardless of loss;
//   - stats: every counter is monotonically non-decreasing;
//   - progress: at moderate loss, at least some subscriber beyond the
//     publisher receives a published event (single-shot schemes cover
//     their connected wave; everyone retries or floods);
//   - determinism: identical seeds produce identical counters.

// confHarness wires N protocol instances to a chaos bus.
type confHarness struct {
	t     *testing.T
	eng   *sim.Engine
	ids   []event.NodeID
	nodes map[event.NodeID]proto.Disseminator
	deliv map[event.NodeID][]event.Event
}

// chaosBus drops, duplicates and delays every broadcast independently
// per receiver.
type chaosBus struct {
	h     *confHarness
	from  event.NodeID
	rng   *rand.Rand
	dropP float64
	dupP  float64
}

func (b *chaosBus) Broadcast(m event.Message) {
	for _, id := range b.h.ids {
		if id == b.from {
			continue
		}
		if b.rng.Float64() < b.dropP {
			continue
		}
		copies := 1
		if b.rng.Float64() < b.dupP {
			copies = 2
		}
		node := b.h.nodes[id]
		for c := 0; c < copies; c++ {
			delay := time.Millisecond + time.Duration(b.rng.Int63n(int64(200*time.Millisecond)))
			b.h.eng.After(delay, func() {
				if err := node.HandleMessage(m); err != nil {
					b.h.t.Errorf("node %v rejected %T: %v", id, m, err)
				}
			})
		}
	}
}

func newConfHarness(t *testing.T, def proto.Definition, seed int64, dropP, dupP float64) *confHarness {
	t.Helper()
	h := &confHarness{
		t:     t,
		eng:   sim.New(seed),
		nodes: make(map[event.NodeID]proto.Disseminator),
		deliv: make(map[event.NodeID][]event.Event),
	}
	const n = 6
	for id := event.NodeID(1); id <= n; id++ {
		id := id
		env := proto.Env{
			ID:        id,
			Sched:     proto.EngineScheduler{Eng: h.eng},
			Transport: &chaosBus{h: h, from: id, rng: rand.New(rand.NewSource(seed*31 + int64(id))), dropP: dropP, dupP: dupP},
			Rand:      rand.New(rand.NewSource(seed*97 + int64(id))),
			OnDeliver: func(ev event.Event) { h.deliv[id] = append(h.deliv[id], ev) },
		}
		d, err := def.New(def.Params, env)
		if err != nil {
			t.Fatalf("%s: factory with default params failed: %v", def.Name, err)
		}
		sub := ".t"
		if id == n {
			sub = ".other" // the parasite observer
		}
		if err := d.Subscribe(topic.MustParse(sub)); err != nil {
			t.Fatalf("%s: Subscribe failed: %v", def.Name, err)
		}
		h.nodes[id] = d
		h.ids = append(h.ids, id)
	}
	return h
}

// run executes the standard chaos scenario and returns the final
// per-node stats (in id order), checking monotonicity along the way.
func (h *confHarness) run() []proto.Stats {
	h.t.Helper()
	h.eng.RunUntil(sim.Seconds(5))
	for i := 0; i < 3; i++ {
		if _, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 10*time.Minute); err != nil {
			h.t.Fatalf("Publish failed: %v", err)
		}
	}
	prev := make([]proto.Stats, len(h.ids))
	for at := 10.0; at <= 150; at += 10 {
		h.eng.RunUntil(sim.Seconds(at))
		for i, id := range h.ids {
			cur := h.nodes[id].Stats()
			assertMonotonic(h.t, id, prev[i], cur)
			prev[i] = cur
		}
	}
	return prev
}

// assertMonotonic checks field-wise that b >= a, by reflection so new
// Stats counters are covered automatically.
func assertMonotonic(t *testing.T, id event.NodeID, a, b proto.Stats) {
	t.Helper()
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		if vb.Field(i).Uint() < va.Field(i).Uint() {
			t.Fatalf("node %v: Stats.%s decreased: %d -> %d",
				id, va.Type().Field(i).Name, va.Field(i).Uint(), vb.Field(i).Uint())
		}
	}
}

func TestProtocolConformance(t *testing.T) {
	defs := proto.Protocols()
	if len(defs) < 7 {
		t.Fatalf("only %d protocols registered; the six historical ones plus gossip must be wired in", len(defs))
	}
	for _, def := range defs {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			h := newConfHarness(t, def, 11, 0.3, 0.3)
			final := h.run()

			// Safety: nobody delivers an event twice.
			for id, evs := range h.deliv {
				seen := make(map[event.ID]bool)
				for _, ev := range evs {
					if seen[ev.ID] {
						t.Fatalf("node %v delivered %v twice under chaos", id, ev.ID)
					}
					seen[ev.ID] = true
				}
			}
			// Safety: the parasite observer (subscribed to .other)
			// never delivers the .t events.
			if got := len(h.deliv[6]); got != 0 {
				t.Fatalf("parasite observer delivered %d events", got)
			}
			// Progress: at 30%% loss, some subscriber beyond the
			// publisher must have received something.
			remote := 0
			for id := event.NodeID(2); id <= 5; id++ {
				remote += len(h.deliv[id])
			}
			if remote == 0 {
				t.Fatal("no remote deliveries at moderate loss")
			}
			// Determinism: same seed, same counters.
			h2 := newConfHarness(t, def, 11, 0.3, 0.3)
			final2 := h2.run()
			for i := range final {
				if final[i] != final2[i] {
					t.Fatalf("node %v stats differ across identical runs:\n%+v\n%+v",
						h.ids[i], final[i], final2[i])
				}
			}
			// Stop is permanent and safe to repeat.
			h.nodes[2].Stop()
			h.nodes[2].Stop()
			if err := h.nodes[2].HandleMessage(event.Heartbeat{From: 3}); err != nil {
				t.Fatalf("stopped protocol rejected a message: %v", err)
			}
		})
	}
}

// TestProtocolConformanceHeavyLoss runs the suite's safety half at 90%%
// loss: progress is not guaranteed, but invariants must hold and
// nothing may panic.
func TestProtocolConformanceHeavyLoss(t *testing.T) {
	for _, def := range proto.Protocols() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			h := newConfHarness(t, def, 23, 0.9, 0.5)
			h.run()
			for id, evs := range h.deliv {
				seen := make(map[event.ID]bool)
				for _, ev := range evs {
					if seen[ev.ID] {
						t.Fatalf("node %v delivered %v twice under heavy loss", id, ev.ID)
					}
					seen[ev.ID] = true
				}
			}
			if got := len(h.deliv[6]); got != 0 {
				t.Fatalf("parasite observer delivered %d events", got)
			}
		})
	}
}
