package proto

import (
	"time"

	"repro/internal/sim"
)

// EngineScheduler adapts the discrete-event engine to the Scheduler
// interface. The simulation runner and the protocol test harnesses
// share it; real deployments supply a wall-clock Scheduler instead.
type EngineScheduler struct{ Eng *sim.Engine }

// Now implements Scheduler.
func (s EngineScheduler) Now() time.Duration { return s.Eng.Now().Duration() }

// After implements Scheduler.
func (s EngineScheduler) After(d time.Duration, fn func()) Timer {
	return s.Eng.After(d, fn)
}
