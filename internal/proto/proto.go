// Package proto is the protocol layer's neutral ground: the
// Disseminator interface every dissemination protocol implements, the
// small environment interfaces a protocol needs (Scheduler, Transport),
// the shared Stats counters, and a registry that maps protocol names to
// factories (see registry.go).
//
// The package sits below the concrete protocol packages (internal/core,
// internal/flood, internal/gossip): they import proto and register
// themselves in init, and the simulation runner (internal/netsim)
// resolves protocols purely by name through the registry. Adding a
// baseline is therefore a one-package change plus a blank import in
// internal/proto/all — no runner or harness dispatch code is touched.
package proto

import (
	"math/rand"
	"time"

	"repro/internal/event"
	"repro/internal/topic"
)

// Timer is a cancellable pending callback, as returned by
// Scheduler.After.
type Timer interface {
	// Stop cancels the callback if it has not run yet and reports
	// whether it did.
	Stop() bool
}

// Scheduler abstracts time for a protocol: the simulator provides
// virtual time, real deployments provide the wall clock.
type Scheduler interface {
	// Now returns the time elapsed since an arbitrary fixed epoch. It
	// must be monotonically non-decreasing.
	Now() time.Duration
	// After schedules fn to run d from now on the protocol's thread.
	After(d time.Duration, fn func()) Timer
}

// Transport is the one-hop broadcast primitive of the underlying MAC
// layer. Broadcast must not call back into the protocol synchronously
// with a received message on a real concurrent transport; the
// simulator's in-order delivery is fine because everything stays on one
// logical thread.
type Transport interface {
	Broadcast(m event.Message)
}

// Stats counts protocol activity; all counters are cumulative since
// creation and must be monotonically non-decreasing (the conformance
// suite checks this for every registered protocol). Counters that a
// protocol has no use for simply stay zero.
type Stats struct {
	HeartbeatsSent uint64
	IDListsSent    uint64
	EventMsgsSent  uint64 // Events messages broadcast
	EventsSent     uint64 // event copies across all Events messages
	EventsReceived uint64 // event copies heard, any topic
	Delivered      uint64 // events handed to the application
	Duplicates     uint64 // received events already stored/delivered
	Parasites      uint64 // received events outside our subscriptions
	ExpiredDrops   uint64 // received events already past validity
	Published      uint64
	TableEvictions uint64 // events evicted by the gc(e) policy
	NeighborsGCed  uint64
}

// Disseminator is the surface the simulation runner (and any other
// host) needs from a dissemination protocol. All implementations are
// single-threaded: every entry point, including timer callbacks
// scheduled through the Scheduler, must be invoked serially.
type Disseminator interface {
	Subscribe(topic.Topic) error
	Unsubscribe(topic.Topic)
	Publish(topic.Topic, []byte, time.Duration) (event.ID, error)
	HandleMessage(event.Message) error
	Stats() Stats
	Stop()
}

// Env is the per-node environment the runner supplies to a protocol
// factory. Everything a protocol instance touches outside its own
// params comes through here, which is what keeps a simulation run a
// pure function of (Scenario, Seed).
type Env struct {
	// ID is the process identifier.
	ID event.NodeID
	// Sched provides time and timers.
	Sched Scheduler
	// Transport is the one-hop broadcast primitive.
	Transport Transport
	// Rand is the node's private RNG stream; protocols must draw all
	// randomness from it.
	Rand *rand.Rand
	// OnDeliver is invoked once per application delivery. Optional.
	OnDeliver func(event.Event)
	// Speed reports the node's current speed in m/s for protocols that
	// exploit it (the paper's tachometer optimization). Optional; nil
	// or a negative return means unknown.
	Speed func() float64
}
