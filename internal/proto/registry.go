package proto

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/registry"
)

// Params carries a protocol's scenario-level tuning. Each protocol
// defines one concrete params type (its registered schema); a nil
// Params selects the protocol's defaults. Params values must be plain
// data — comparable or at least copy-safe — because scenarios embedding
// them are copied freely by the experiment harness.
type Params interface {
	// Validate reports configuration errors. The zero value of a params
	// type must validate (it selects the protocol's defaults).
	Validate() error
}

// Factory builds one protocol instance for one node from its params and
// the runner-supplied environment. The registry guarantees p has the
// definition's schema type (or is the schema's zero value when the spec
// carried nil).
type Factory func(p Params, env Env) (Disseminator, error)

// Definition is a named, registered protocol: the registry key, a
// one-line catalog description, the params schema (the zero value of
// the concrete params type this protocol accepts) and the per-node
// factory. It mirrors netsim.ScenarioDef: registering a definition
// makes the protocol reachable from scenario specs, the exp "scenarios"
// family, cmd/experiments -list/-proto and cmd/frugalsim -protocol.
type Definition struct {
	// Name is the registry key (e.g. "frugal", "gossip-pushpull").
	Name string
	// Description is a one-line summary for the catalog listing.
	Description string
	// Params is the schema: the zero value of the params type this
	// protocol accepts. Specs carrying a different dynamic type are
	// rejected at validation time.
	Params Params
	// New builds one node instance.
	New Factory
}

var protocols = registry.New[Definition]("proto: protocol")

// RegisterProtocol adds a definition to the registry. It panics on a
// duplicate name, missing metadata, or an invalid schema (registration
// happens at init time; a broken definition should fail loudly, not at
// first use).
func RegisterProtocol(d Definition) {
	if d.Name == "" || d.Description == "" {
		panic(fmt.Sprintf("proto: protocol %q registered without name or description", d.Name))
	}
	if d.New == nil || d.Params == nil {
		panic(fmt.Sprintf("proto: protocol %q registered without factory or params schema", d.Name))
	}
	if err := d.Params.Validate(); err != nil {
		panic(fmt.Sprintf("proto: protocol %q schema zero value invalid: %v", d.Name, err))
	}
	protocols.Register(d.Name, d)
}

// Protocols returns every registered definition, sorted by name.
func Protocols() []Definition { return protocols.All() }

// ProtocolNames returns the sorted registered names.
func ProtocolNames() []string { return protocols.Names() }

// LookupProtocol finds a definition by name.
func LookupProtocol(name string) (Definition, bool) { return protocols.Lookup(name) }

// resolve is the single code path behind CheckParams and Build: it
// looks the name up and type-checks params against the registered
// schema, substituting the schema's zero value (the protocol's
// defaults) when params is nil.
func resolve(name string, p Params) (Definition, Params, error) {
	def, ok := LookupProtocol(name)
	if !ok {
		return Definition{}, nil, fmt.Errorf("proto: unknown protocol %q (registered: %s)",
			name, strings.Join(ProtocolNames(), ", "))
	}
	if p == nil {
		return def, def.Params, nil
	}
	if got, want := reflect.TypeOf(p), reflect.TypeOf(def.Params); got != want {
		return Definition{}, nil, fmt.Errorf("proto: protocol %q params are %v, want %v", name, got, want)
	}
	return def, p, nil
}

// CheckParams validates a (name, params) spec against the registry:
// the name must be registered, and params — when non-nil — must have
// the registered schema type and validate. This is what
// netsim.Scenario.Validate calls for its ProtocolSpec.
func CheckParams(name string, p Params) error {
	_, resolved, err := resolve(name, p)
	if err != nil {
		return err
	}
	return resolved.Validate()
}

// Build resolves name and constructs one instance: the factory receives
// p, or the schema's zero value when p is nil. Callers that validated
// the spec earlier (netsim does, at Scenario.Validate time) only see
// errors from the factory itself.
func Build(name string, p Params, env Env) (Disseminator, error) {
	def, resolved, err := resolve(name, p)
	if err != nil {
		return nil, err
	}
	return def.New(resolved, env)
}
