package proto_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"

	_ "repro/internal/proto/all"
)

func TestRegistryCatalog(t *testing.T) {
	names := proto.ProtocolNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ProtocolNames not sorted: %v", names)
	}
	if len(names) != len(proto.Protocols()) {
		t.Fatal("ProtocolNames and Protocols disagree")
	}
	for _, d := range proto.Protocols() {
		if d.Name == "" || d.Description == "" || d.Params == nil || d.New == nil {
			t.Fatalf("catalog metadata incomplete: %+v", d)
		}
	}
	if _, ok := proto.LookupProtocol("gossip-pushpull"); !ok {
		t.Fatal("gossip-pushpull not registered")
	}
	if _, ok := proto.LookupProtocol("nope"); ok {
		t.Fatal("LookupProtocol(nope) succeeded")
	}
}

func TestCheckParams(t *testing.T) {
	if err := proto.CheckParams("frugal", nil); err != nil {
		t.Fatalf("nil params rejected: %v", err)
	}
	if err := proto.CheckParams("frugal", core.Tuning{HBUpperBound: time.Second}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	if err := proto.CheckParams("nope", nil); err == nil {
		t.Fatal("unknown name accepted")
	} else if !strings.Contains(err.Error(), "frugal") {
		t.Fatalf("unknown-name error does not list registered ids: %v", err)
	}
	if err := proto.CheckParams("simple-flooding", core.Tuning{}); err == nil {
		t.Fatal("mismatched params type accepted")
	}
	if err := proto.CheckParams("frugal", core.Tuning{HBDelay: -time.Second}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestBuildUnknownAndMismatched(t *testing.T) {
	if _, err := proto.Build("nope", nil, proto.Env{}); err == nil {
		t.Fatal("Build(nope) succeeded")
	}
	if _, err := proto.Build("simple-flooding", core.Tuning{}, proto.Env{}); err == nil {
		t.Fatal("Build with mismatched params succeeded")
	}
}

func TestRegisterProtocolRejectsBadDefs(t *testing.T) {
	mustPanic := func(name string, d proto.Definition) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: RegisterProtocol did not panic", name)
			}
		}()
		proto.RegisterProtocol(d)
	}
	factory := func(proto.Params, proto.Env) (proto.Disseminator, error) { return nil, nil }
	// Duplicate of an existing registration: rejected before insertion,
	// so the registry the other tests see is untouched.
	mustPanic("duplicate", proto.Definition{
		Name: "frugal", Description: "dup", Params: core.Tuning{}, New: factory,
	})
	mustPanic("unnamed", proto.Definition{Description: "x", Params: core.Tuning{}, New: factory})
	mustPanic("no description", proto.Definition{Name: "x", Params: core.Tuning{}, New: factory})
	mustPanic("no factory", proto.Definition{Name: "x", Description: "x", Params: core.Tuning{}})
	mustPanic("no schema", proto.Definition{Name: "x", Description: "x", New: factory})
}
