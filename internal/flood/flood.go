// Package flood implements the three flooding baselines the paper
// compares against in Section 5.2 ("Frugality"):
//
//   - Simple flooding: every second, a process rebroadcasts every
//     still-valid event it holds, irrespective of anyone's interests.
//   - Interests-aware flooding: a process stores and rebroadcasts only the
//     events it has itself subscribed to.
//   - Neighbors'-interests flooding: a process rebroadcasts an event only
//     if it is interested AND it knows (from heartbeats) a neighbor that
//     is; one addressed copy per interested neighbor is transmitted,
//     emulating the MAC-level unicasts such schemes use. This is why the
//     paper reports it consuming over 1 MB per process.
//
// All three share the core package's Scheduler/Transport interfaces and
// stats, so the experiment harness treats them interchangeably with the
// frugal protocol.
package flood

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topic"
)

// Variant selects the flooding baseline.
type Variant int

const (
	// Simple is approach (1): flood everything, every second.
	Simple Variant = iota
	// InterestAware is approach (2): flood only subscribed events.
	InterestAware
	// NeighborsInterest is approach (3): flood subscribed events only
	// toward interested neighbors (one copy per neighbor).
	NeighborsInterest
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Simple:
		return "simple-flooding"
	case InterestAware:
		return "interests-aware-flooding"
	case NeighborsInterest:
		return "neighbors-interests-flooding"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Config parameterizes a flooding node.
type Config struct {
	// ID is the process identifier. Required.
	ID event.NodeID
	// Variant selects the baseline behavior.
	Variant Variant
	// Period is the rebroadcast interval (paper: one second).
	Period time.Duration
	// HBDelay is the heartbeat period for NeighborsInterest (defaults
	// to Period); the other variants send no heartbeats.
	HBDelay time.Duration
	// NeighborTTL expires neighbor-table rows for NeighborsInterest
	// (defaults to 2.5 x HBDelay, mirroring the frugal protocol).
	NeighborTTL time.Duration
	// OnDeliver is invoked once per delivered event. Optional.
	OnDeliver func(event.Event)
	// Rand seeds id generation and tick phase; when nil, derived from ID.
	Rand *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = time.Second
	}
	if c.HBDelay == 0 {
		c.HBDelay = c.Period
	}
	if c.NeighborTTL == 0 {
		c.NeighborTTL = time.Duration(2.5 * float64(c.HBDelay))
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(int64(c.ID) + 1))
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Variant < Simple || c.Variant > NeighborsInterest {
		return fmt.Errorf("flood: unknown variant %d", c.Variant)
	}
	if c.Period < 0 || c.HBDelay < 0 || c.NeighborTTL < 0 {
		return errors.New("flood: negative period")
	}
	return nil
}

type storedEvent struct {
	ev        event.Event
	expiresAt time.Duration
}

type floodNeighbor struct {
	subs     *topic.Set
	storedAt time.Duration
}

// Protocol is one flooding process. Like core.Protocol it is
// single-threaded: all entry points must be called serially.
type Protocol struct {
	cfg   Config
	sched core.Scheduler
	tr    core.Transport

	subs  *topic.Set
	store map[event.ID]*storedEvent
	nbrs  map[event.NodeID]*floodNeighbor

	tickTimer core.Timer
	hbTimer   core.Timer
	stats     core.Stats
	stopped   bool
}

// New creates a flooding node; the periodic flood task starts on the
// first Subscribe or Publish.
func New(cfg Config, sched core.Scheduler, tr core.Transport) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || tr == nil {
		return nil, errors.New("flood: nil scheduler or transport")
	}
	return &Protocol{
		cfg:   cfg.withDefaults(),
		sched: sched,
		tr:    tr,
		subs:  topic.NewSet(),
		store: make(map[event.ID]*storedEvent),
		nbrs:  make(map[event.NodeID]*floodNeighbor),
	}, nil
}

// ID returns the process identifier.
func (p *Protocol) ID() event.NodeID { return p.cfg.ID }

// Stats returns a snapshot of the counters.
func (p *Protocol) Stats() core.Stats { return p.stats }

// HasEvent reports whether the store holds id.
func (p *Protocol) HasEvent(id event.ID) bool {
	_, ok := p.store[id]
	return ok
}

// Subscribe registers interest in topic t and all its subtopics.
func (p *Protocol) Subscribe(t topic.Topic) error {
	if p.stopped {
		return errors.New("flood: protocol stopped")
	}
	if t.IsZero() {
		return errors.New("flood: zero topic")
	}
	p.subs.Add(t)
	p.start()
	return nil
}

// Unsubscribe removes t from the subscription set.
func (p *Protocol) Unsubscribe(t topic.Topic) { p.subs.Remove(t) }

// Stop halts all activity permanently.
func (p *Protocol) Stop() {
	p.stopped = true
	if p.tickTimer != nil {
		p.tickTimer.Stop()
		p.tickTimer = nil
	}
	if p.hbTimer != nil {
		p.hbTimer.Stop()
		p.hbTimer = nil
	}
}

// start launches the periodic tasks with a random initial phase so that
// co-started nodes do not flood in lockstep.
func (p *Protocol) start() {
	if p.tickTimer == nil {
		phase := time.Duration(p.cfg.Rand.Int63n(int64(p.cfg.Period) + 1))
		p.tickTimer = p.sched.After(phase, p.tick)
	}
	if p.cfg.Variant == NeighborsInterest && p.hbTimer == nil {
		phase := time.Duration(p.cfg.Rand.Int63n(int64(p.cfg.HBDelay) + 1))
		p.hbTimer = p.sched.After(phase, p.heartbeatTick)
	}
}

// Publish floods a new event.
func (p *Protocol) Publish(t topic.Topic, payload []byte, validity time.Duration) (event.ID, error) {
	if p.stopped {
		return event.ID{}, errors.New("flood: protocol stopped")
	}
	if t.IsZero() {
		return event.ID{}, errors.New("flood: zero topic")
	}
	if validity <= 0 {
		return event.ID{}, fmt.Errorf("flood: non-positive validity %v", validity)
	}
	now := p.sched.Now()
	ev := event.Event{
		ID:        event.NewID(p.cfg.Rand),
		Topic:     t,
		Publisher: p.cfg.ID,
		Payload:   append([]byte(nil), payload...),
		Validity:  validity,
		Remaining: validity,
	}
	p.store[ev.ID] = &storedEvent{ev: ev, expiresAt: now + validity}
	p.stats.Published++
	if p.subs.Covers(t) {
		p.deliver(ev)
	}
	p.start()
	return ev.ID, nil
}

func (p *Protocol) deliver(ev event.Event) {
	p.stats.Delivered++
	if p.cfg.OnDeliver != nil {
		p.cfg.OnDeliver(ev)
	}
}

// HandleMessage feeds a received broadcast into the protocol.
func (p *Protocol) HandleMessage(m event.Message) error {
	if p.stopped {
		return nil
	}
	switch v := m.(type) {
	case event.Heartbeat:
		p.onHeartbeat(v)
	case event.Events:
		p.onEvents(v)
	case event.IDList:
		// Flooding variants do not exchange id lists; ignore quietly so
		// mixed scenarios are possible.
	default:
		return fmt.Errorf("flood: unknown message %T", m)
	}
	return nil
}

func (p *Protocol) onHeartbeat(h event.Heartbeat) {
	if p.cfg.Variant != NeighborsInterest || h.From == p.cfg.ID {
		return
	}
	p.nbrs[h.From] = &floodNeighbor{
		subs:     topic.NewSet(h.Subscriptions...),
		storedAt: p.sched.Now(),
	}
}

func (p *Protocol) onEvents(msg event.Events) {
	if msg.From == p.cfg.ID {
		return
	}
	now := p.sched.Now()
	for _, ev := range msg.Events {
		p.stats.EventsReceived++
		covered := p.subs.Covers(ev.Topic)
		if !covered {
			p.stats.Parasites++
			if p.cfg.Variant != Simple {
				continue // interest-filtered variants drop parasites
			}
		}
		if _, ok := p.store[ev.ID]; ok {
			p.stats.Duplicates++
			continue
		}
		if ev.Remaining <= 0 {
			p.stats.ExpiredDrops++
			continue
		}
		p.store[ev.ID] = &storedEvent{ev: ev, expiresAt: now + ev.Remaining}
		if covered {
			p.deliver(ev)
		}
	}
}

// tick is the 1-second flood task.
func (p *Protocol) tick() {
	if p.stopped {
		p.tickTimer = nil
		return
	}
	now := p.sched.Now()
	p.pruneExpired(now)
	if p.cfg.Variant == NeighborsInterest {
		p.pruneNeighbors(now)
	}
	entries := p.validSorted(now)
	switch p.cfg.Variant {
	case Simple, InterestAware:
		// InterestAware stores only subscribed events, so flooding the
		// whole store implements its rule.
		p.broadcastBatch(entries, now, nil)
	case NeighborsInterest:
		p.floodPerNeighbor(entries, now)
	}
	p.tickTimer = p.sched.After(p.cfg.Period, p.tick)
}

func (p *Protocol) broadcastBatch(entries []*storedEvent, now time.Duration, receivers []event.NodeID) {
	if len(entries) == 0 {
		return
	}
	events := make([]event.Event, len(entries))
	for i, se := range entries {
		events[i] = se.ev.WithRemaining(se.expiresAt - now)
	}
	p.tr.Broadcast(event.Events{From: p.cfg.ID, Events: events, Receivers: receivers})
	p.stats.EventMsgsSent++
	p.stats.EventsSent += uint64(len(events))
}

// floodPerNeighbor emulates approach (3): for each interested neighbor,
// transmit one addressed copy of each event of interest to it.
func (p *Protocol) floodPerNeighbor(entries []*storedEvent, now time.Duration) {
	ids := make([]event.NodeID, 0, len(p.nbrs))
	for id := range p.nbrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nb := p.nbrs[id]
		var batch []*storedEvent
		for _, se := range entries {
			if p.subs.Covers(se.ev.Topic) && nb.subs.Covers(se.ev.Topic) {
				batch = append(batch, se)
			}
		}
		p.broadcastBatch(batch, now, []event.NodeID{id})
	}
}

func (p *Protocol) heartbeatTick() {
	if p.stopped {
		p.hbTimer = nil
		return
	}
	p.tr.Broadcast(event.Heartbeat{
		From:          p.cfg.ID,
		Subscriptions: p.subs.Topics(),
		Speed:         -1,
	})
	p.stats.HeartbeatsSent++
	p.hbTimer = p.sched.After(p.cfg.HBDelay, p.heartbeatTick)
}

func (p *Protocol) pruneExpired(now time.Duration) {
	for id, se := range p.store {
		if now >= se.expiresAt {
			delete(p.store, id)
		}
	}
}

func (p *Protocol) pruneNeighbors(now time.Duration) {
	for id, nb := range p.nbrs {
		if now-nb.storedAt > p.cfg.NeighborTTL {
			delete(p.nbrs, id)
		}
	}
}

// validSorted returns still-valid stored events ordered by id.
func (p *Protocol) validSorted(now time.Duration) []*storedEvent {
	out := make([]*storedEvent, 0, len(p.store))
	for _, se := range p.store {
		if now < se.expiresAt {
			out = append(out, se)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ev.ID.Less(out[j].ev.ID) })
	return out
}
