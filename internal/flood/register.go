package flood

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/proto"
)

// Registry keys for the five flooding/storm baselines. The flooding
// names match the paper's approaches (1)-(3); the storm names are
// Ni et al.'s classic schemes.
const (
	SimpleName            = "simple-flooding"
	InterestAwareName     = "interests-aware-flooding"
	NeighborsInterestName = "neighbors-interests-flooding"
	StormProbName         = "probabilistic-broadcast"
	StormCounterName      = "counter-based-broadcast"
)

// Tuning is the flooding baselines' registry params: the rebroadcast
// period (zero = the paper's one second).
type Tuning struct {
	Period time.Duration
}

// Validate implements proto.Params.
func (t Tuning) Validate() error {
	if t.Period < 0 {
		return errors.New("flood: negative period")
	}
	return nil
}

// StormTuning is the broadcast-storm schemes' registry params (zero =
// the package defaults: P 0.6, threshold 3, assessment 500 ms).
type StormTuning struct {
	P                float64
	CounterThreshold int
	AssessmentDelay  time.Duration
}

// Validate implements proto.Params.
func (t StormTuning) Validate() error {
	if t.P < 0 || t.P > 1 {
		return fmt.Errorf("flood: storm probability %v out of [0,1]", t.P)
	}
	if t.CounterThreshold < 0 || t.AssessmentDelay < 0 {
		return errors.New("flood: negative storm parameter")
	}
	return nil
}

func registerFlood(name, description string, variant Variant) {
	proto.RegisterProtocol(proto.Definition{
		Name:        name,
		Description: description,
		Params:      Tuning{},
		New: func(p proto.Params, env proto.Env) (proto.Disseminator, error) {
			t, ok := p.(Tuning)
			if !ok {
				return nil, fmt.Errorf("flood: params are %T, want flood.Tuning", p)
			}
			return New(Config{
				ID:        env.ID,
				Variant:   variant,
				Period:    t.Period,
				OnDeliver: env.OnDeliver,
				Rand:      env.Rand,
			}, env.Sched, env.Transport)
		},
	})
}

func registerStorm(name, description string, scheme StormScheme) {
	proto.RegisterProtocol(proto.Definition{
		Name:        name,
		Description: description,
		Params:      StormTuning{},
		New: func(p proto.Params, env proto.Env) (proto.Disseminator, error) {
			t, ok := p.(StormTuning)
			if !ok {
				return nil, fmt.Errorf("flood: params are %T, want flood.StormTuning", p)
			}
			return NewStorm(StormConfig{
				ID:               env.ID,
				Scheme:           scheme,
				P:                t.P,
				CounterThreshold: t.CounterThreshold,
				AssessmentDelay:  t.AssessmentDelay,
				OnDeliver:        env.OnDeliver,
				Rand:             env.Rand,
			}, env.Sched, env.Transport)
		},
	})
}

func init() {
	registerFlood(SimpleName,
		"flooding approach (1): rebroadcast every valid event each period, irrespective of interests", Simple)
	registerFlood(InterestAwareName,
		"flooding approach (2): store and rebroadcast only subscribed events", InterestAware)
	registerFlood(NeighborsInterestName,
		"flooding approach (3): one addressed copy per interested neighbor, learned from heartbeats", NeighborsInterest)
	registerStorm(StormProbName,
		"Ni et al.'s probabilistic scheme: single-shot relay with probability P", Probabilistic)
	registerStorm(StormCounterName,
		"Ni et al.'s counter-based scheme: single-shot relay unless C copies were overheard", CounterBased)
}
