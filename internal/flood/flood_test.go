package flood

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/topic"
)

// ---- harness: zero-loss bus shared by flooding nodes ----

type simSched struct{ eng *sim.Engine }

func (s simSched) Now() time.Duration { return s.eng.Now().Duration() }
func (s simSched) After(d time.Duration, fn func()) core.Timer {
	return s.eng.After(d, fn)
}

type harness struct {
	t      *testing.T
	eng    *sim.Engine
	ids    []event.NodeID
	protos map[event.NodeID]*Protocol
	deliv  map[event.NodeID][]event.Event
}

func newHarness(t *testing.T, seed int64) *harness {
	return &harness{
		t:      t,
		eng:    sim.New(seed),
		protos: make(map[event.NodeID]*Protocol),
		deliv:  make(map[event.NodeID][]event.Event),
	}
}

type busTransport struct {
	h    *harness
	from event.NodeID
}

func (b busTransport) Broadcast(m event.Message) {
	for _, id := range b.h.ids {
		if id == b.from {
			continue
		}
		p := b.h.protos[id]
		b.h.eng.After(time.Millisecond, func() { _ = p.HandleMessage(m) })
	}
}

func (h *harness) addNode(id event.NodeID, v Variant, subs ...string) *Protocol {
	h.t.Helper()
	cfg := Config{
		ID:      id,
		Variant: v,
		Rand:    rand.New(rand.NewSource(int64(id) + 50)),
		OnDeliver: func(ev event.Event) {
			h.deliv[id] = append(h.deliv[id], ev)
		},
	}
	p, err := New(cfg, simSched{h.eng}, busTransport{h: h, from: id})
	if err != nil {
		h.t.Fatal(err)
	}
	h.protos[id] = p
	h.ids = append(h.ids, id)
	for _, s := range subs {
		if err := p.Subscribe(topic.MustParse(s)); err != nil {
			h.t.Fatal(err)
		}
	}
	return p
}

func (h *harness) runUntil(sec float64) { h.eng.RunUntil(sim.Seconds(sec)) }

// ---- tests ----

func TestVariantString(t *testing.T) {
	if Simple.String() != "simple-flooding" ||
		InterestAware.String() != "interests-aware-flooding" ||
		NeighborsInterest.String() != "neighbors-interests-flooding" {
		t.Fatal("variant names wrong")
	}
	if Variant(9).String() != "variant(9)" {
		t.Fatal("unknown variant format")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Variant: Variant(9)}).Validate(); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if err := (Config{Period: -time.Second}).Validate(); err == nil {
		t.Fatal("negative period accepted")
	}
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestSimpleFloodingDelivers(t *testing.T) {
	h := newHarness(t, 1)
	p1 := h.addNode(1, Simple, ".t")
	h.addNode(2, Simple, ".t")
	h.addNode(3, Simple, ".other")
	id, err := p1.Publish(topic.MustParse(".t"), []byte("x"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(5)
	if len(h.deliv[2]) != 1 || h.deliv[2][0].ID != id {
		t.Fatalf("p2 deliveries = %v", h.deliv[2])
	}
	// Simple flooding stores parasites and repropagates them...
	if !h.protos[3].HasEvent(id) {
		t.Fatal("simple flooding should store parasite events")
	}
	// ...but never delivers them.
	if len(h.deliv[3]) != 0 {
		t.Fatal("parasite delivered")
	}
	if h.protos[3].Stats().Parasites == 0 {
		t.Fatal("parasites not counted")
	}
}

func TestSimpleFloodingRebroadcastsEverySecond(t *testing.T) {
	h := newHarness(t, 2)
	p1 := h.addNode(1, Simple, ".t")
	h.addNode(2, Simple, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(10.5)
	// ~10 ticks on each node holding the event; the publisher floods from
	// t~0, the receiver from when it stores the copy.
	sent := p1.Stats().EventMsgsSent
	if sent < 8 || sent > 12 {
		t.Fatalf("publisher flooded %d times in 10s, want ~10", sent)
	}
	// Duplicates pile up at both: each rebroadcast re-delivers a stored
	// event.
	if h.protos[2].Stats().Duplicates < 5 {
		t.Fatalf("p2 duplicates = %d, want many", h.protos[2].Stats().Duplicates)
	}
}

func TestInterestAwareDropsParasites(t *testing.T) {
	h := newHarness(t, 3)
	p1 := h.addNode(1, InterestAware, ".t")
	p3 := h.addNode(3, InterestAware, ".other")
	id, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(5)
	if p3.HasEvent(id) {
		t.Fatal("interests-aware flooding must not store parasites")
	}
	if p3.Stats().Parasites == 0 {
		t.Fatal("parasites not counted")
	}
	// p3 does not repropagate the parasite either.
	if p3.Stats().EventsSent != 0 {
		t.Fatal("parasite repropagated")
	}
}

func TestInterestAwareStillDeliversToSubscribers(t *testing.T) {
	h := newHarness(t, 4)
	p1 := h.addNode(1, InterestAware, ".t")
	h.addNode(2, InterestAware, ".t.sub") // covered by subtree semantics
	if _, err := p1.Publish(topic.MustParse(".t.sub.x"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(5)
	if len(h.deliv[2]) != 1 {
		t.Fatalf("subtopic subscriber deliveries = %d", len(h.deliv[2]))
	}
}

func TestNeighborsInterestRequiresKnownNeighbor(t *testing.T) {
	h := newHarness(t, 5)
	p1 := h.addNode(1, NeighborsInterest, ".t")
	h.addNode(2, NeighborsInterest, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Heartbeats (1s period) must establish neighborship before events
	// flow; after a few seconds p2 must have the event.
	h.runUntil(6)
	if len(h.deliv[2]) != 1 {
		t.Fatalf("p2 deliveries = %d, want 1", len(h.deliv[2]))
	}
	if p1.Stats().HeartbeatsSent == 0 {
		t.Fatal("variant 3 must send heartbeats")
	}
	// Addressed copies: each Events message targets exactly one receiver.
	if p1.Stats().EventMsgsSent == 0 {
		t.Fatal("no event messages sent")
	}
}

func TestNeighborsInterestSkipsUninterestedNeighbors(t *testing.T) {
	h := newHarness(t, 6)
	p1 := h.addNode(1, NeighborsInterest, ".t")
	h.addNode(2, NeighborsInterest, ".other")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(6)
	// The only other node is uninterested: no event copies at all.
	if got := p1.Stats().EventsSent; got != 0 {
		t.Fatalf("sent %d copies to uninterested neighborhood", got)
	}
}

func TestNeighborsInterestPerNeighborCopies(t *testing.T) {
	// Two interested neighbors: each tick transmits two addressed copies,
	// roughly doubling the event traffic of interests-aware flooding —
	// the behavior behind the paper's >1 MB footnote.
	h := newHarness(t, 7)
	p1 := h.addNode(1, NeighborsInterest, ".t")
	h.addNode(2, NeighborsInterest, ".t")
	h.addNode(3, NeighborsInterest, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(10.2)
	msgs := p1.Stats().EventMsgsSent
	copies := p1.Stats().EventsSent
	if msgs != copies {
		t.Fatalf("each message should carry one event: msgs=%d copies=%d", msgs, copies)
	}
	// ~8-9 ticks with 2 neighbors each (neighbors appear after first
	// heartbeats).
	if copies < 12 {
		t.Fatalf("copies = %d, want roughly 2 per tick", copies)
	}
}

func TestFloodExpiredEventsPruned(t *testing.T) {
	h := newHarness(t, 8)
	p1 := h.addNode(1, Simple, ".t")
	h.addNode(2, Simple, ".t")
	id, err := p1.Publish(topic.MustParse(".t"), nil, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(10)
	if p1.HasEvent(id) {
		t.Fatal("expired event still stored")
	}
	sent := p1.Stats().EventMsgsSent
	h.runUntil(20)
	if p1.Stats().EventMsgsSent != sent {
		t.Fatal("expired event still being flooded")
	}
}

func TestFloodPublishValidation(t *testing.T) {
	h := newHarness(t, 9)
	p := h.addNode(1, Simple, ".t")
	if _, err := p.Publish(topic.Topic{}, nil, time.Minute); err == nil {
		t.Fatal("zero topic accepted")
	}
	if _, err := p.Publish(topic.MustParse(".t"), nil, 0); err == nil {
		t.Fatal("zero validity accepted")
	}
}

func TestFloodStop(t *testing.T) {
	h := newHarness(t, 10)
	p1 := h.addNode(1, Simple, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(3)
	p1.Stop()
	sent := p1.Stats().EventMsgsSent
	h.runUntil(10)
	if p1.Stats().EventMsgsSent != sent {
		t.Fatal("stopped node kept flooding")
	}
	if err := p1.Subscribe(topic.MustParse(".x")); err == nil {
		t.Fatal("Subscribe after Stop accepted")
	}
}

func TestFloodDeterminism(t *testing.T) {
	run := func() []core.Stats {
		h := newHarness(t, 42)
		for id := event.NodeID(1); id <= 4; id++ {
			h.addNode(id, Simple, ".t")
		}
		if _, err := h.protos[1].Publish(topic.MustParse(".t"), nil, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		h.runUntil(40)
		var out []core.Stats
		for id := event.NodeID(1); id <= 4; id++ {
			out = append(out, h.protos[id].Stats())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flooding nondeterministic at node %d", i+1)
		}
	}
}

func TestFloodUnsubscribe(t *testing.T) {
	h := newHarness(t, 11)
	p1 := h.addNode(1, InterestAware, ".t")
	p2 := h.addNode(2, InterestAware, ".t")
	p2.Unsubscribe(topic.MustParse(".t"))
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(5)
	if len(h.deliv[2]) != 0 {
		t.Fatal("unsubscribed flooding node delivered")
	}
	if p2.Stats().Parasites == 0 {
		t.Fatal("overheard events should count as parasites after unsubscribe")
	}
}

func TestFloodNeighborTTLExpires(t *testing.T) {
	// Variant 3 must forget neighbors whose heartbeats stop: after p2
	// stops, p1's per-neighbor flooding dries up.
	h := newHarness(t, 12)
	p1 := h.addNode(1, NeighborsInterest, ".t")
	p2 := h.addNode(2, NeighborsInterest, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(5)
	if p1.Stats().EventsSent == 0 {
		t.Fatal("setup: no flooding while neighbor alive")
	}
	p2.Stop()
	h.runUntil(10) // > 2.5s TTL after last heartbeat
	sent := p1.Stats().EventsSent
	h.runUntil(20)
	if p1.Stats().EventsSent != sent {
		t.Fatal("p1 keeps flooding a long-gone neighbor")
	}
}

func TestFloodIDAccessorAndIDListIgnored(t *testing.T) {
	h := newHarness(t, 13)
	p := h.addNode(4, Simple, ".t")
	if p.ID() != 4 {
		t.Fatalf("ID = %v", p.ID())
	}
	if err := p.HandleMessage(event.IDList{From: 9}); err != nil {
		t.Fatalf("IDList should be ignored quietly, got %v", err)
	}
}
