package flood

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topic"
)

// The paper's related work (Section 6) discusses the broadcast storm
// problem (Ni et al.) and its classic remedies: the probabilistic and
// counter-based schemes. Storm implements both as additional baselines.
// Unlike the three periodic flooding variants, these are single-shot:
// a node rebroadcasts a newly received event at most once — with
// probability P (probabilistic) or only if it heard fewer than
// CounterThreshold copies during a random assessment delay
// (counter-based). They tame redundancy in dense networks but cannot
// exploit node mobility or event validity: once the broadcast wave dies,
// partitioned nodes are never reached — precisely the gap the frugal
// protocol fills.

// StormScheme selects the rebroadcast decision rule.
type StormScheme int

const (
	// Probabilistic rebroadcasts each new event with probability P.
	Probabilistic StormScheme = iota
	// CounterBased rebroadcasts unless CounterThreshold copies were
	// overheard during the assessment delay.
	CounterBased
)

// String implements fmt.Stringer.
func (s StormScheme) String() string {
	switch s {
	case Probabilistic:
		return "probabilistic-broadcast"
	case CounterBased:
		return "counter-based-broadcast"
	default:
		return fmt.Sprintf("storm(%d)", int(s))
	}
}

// StormConfig parameterizes a Storm node.
type StormConfig struct {
	// ID is the process identifier. Required.
	ID event.NodeID
	// Scheme selects probabilistic or counter-based.
	Scheme StormScheme
	// P is the probabilistic rebroadcast probability (default 0.6, a
	// standard choice in the literature).
	P float64
	// CounterThreshold is the counter-based cutoff C (default 3).
	CounterThreshold int
	// AssessmentDelay bounds the random delay before the rebroadcast
	// decision (default 500 ms).
	AssessmentDelay time.Duration
	// OnDeliver is invoked once per delivered event. Optional.
	OnDeliver func(event.Event)
	// Rand drives ids, delays and coin flips; derived from ID when nil.
	Rand *rand.Rand
}

func (c StormConfig) withDefaults() StormConfig {
	if c.P == 0 {
		c.P = 0.6
	}
	if c.CounterThreshold == 0 {
		c.CounterThreshold = 3
	}
	if c.AssessmentDelay == 0 {
		c.AssessmentDelay = 500 * time.Millisecond
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(int64(c.ID) + 1))
	}
	return c
}

// Validate reports configuration errors.
func (c StormConfig) Validate() error {
	if c.Scheme < Probabilistic || c.Scheme > CounterBased {
		return fmt.Errorf("flood: unknown storm scheme %d", c.Scheme)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("flood: storm probability %v out of [0,1]", c.P)
	}
	if c.CounterThreshold < 0 || c.AssessmentDelay < 0 {
		return errors.New("flood: negative storm parameter")
	}
	return nil
}

// stormEvent tracks one event's local rebroadcast state.
type stormEvent struct {
	ev        event.Event
	expiresAt time.Duration
	copies    int  // copies heard (counter-based)
	decided   bool // rebroadcast decision already taken
}

// Storm is one process running a broadcast-storm countermeasure scheme.
// Single-threaded, like the other protocols.
type Storm struct {
	cfg   StormConfig
	sched core.Scheduler
	tr    core.Transport

	subs  *topic.Set
	store map[event.ID]*stormEvent

	stats   core.Stats
	stopped bool
}

// NewStorm creates a probabilistic or counter-based broadcast node.
func NewStorm(cfg StormConfig, sched core.Scheduler, tr core.Transport) (*Storm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || tr == nil {
		return nil, errors.New("flood: nil scheduler or transport")
	}
	return &Storm{
		cfg:   cfg.withDefaults(),
		sched: sched,
		tr:    tr,
		subs:  topic.NewSet(),
		store: make(map[event.ID]*stormEvent),
	}, nil
}

// ID returns the process identifier.
func (s *Storm) ID() event.NodeID { return s.cfg.ID }

// Stats returns a snapshot of the counters.
func (s *Storm) Stats() core.Stats { return s.stats }

// HasEvent reports whether the store holds id.
func (s *Storm) HasEvent(id event.ID) bool {
	_, ok := s.store[id]
	return ok
}

// Subscribe registers interest in t and its subtopics.
func (s *Storm) Subscribe(t topic.Topic) error {
	if s.stopped {
		return errors.New("flood: protocol stopped")
	}
	if t.IsZero() {
		return errors.New("flood: zero topic")
	}
	s.subs.Add(t)
	return nil
}

// Unsubscribe removes t.
func (s *Storm) Unsubscribe(t topic.Topic) { s.subs.Remove(t) }

// Stop halts all activity permanently.
func (s *Storm) Stop() { s.stopped = true }

// Publish broadcasts a new event immediately (the storm wave origin).
func (s *Storm) Publish(t topic.Topic, payload []byte, validity time.Duration) (event.ID, error) {
	if s.stopped {
		return event.ID{}, errors.New("flood: protocol stopped")
	}
	if t.IsZero() {
		return event.ID{}, errors.New("flood: zero topic")
	}
	if validity <= 0 {
		return event.ID{}, fmt.Errorf("flood: non-positive validity %v", validity)
	}
	now := s.sched.Now()
	ev := event.Event{
		ID:        event.NewID(s.cfg.Rand),
		Topic:     t,
		Publisher: s.cfg.ID,
		Payload:   append([]byte(nil), payload...),
		Validity:  validity,
		Remaining: validity,
	}
	s.store[ev.ID] = &stormEvent{ev: ev, expiresAt: now + validity, decided: true}
	s.stats.Published++
	s.broadcast(ev, now)
	if s.subs.Covers(t) {
		s.deliver(ev)
	}
	return ev.ID, nil
}

func (s *Storm) deliver(ev event.Event) {
	s.stats.Delivered++
	if s.cfg.OnDeliver != nil {
		s.cfg.OnDeliver(ev)
	}
}

func (s *Storm) broadcast(ev event.Event, now time.Duration) {
	se := s.store[ev.ID]
	s.tr.Broadcast(event.Events{
		From:   s.cfg.ID,
		Events: []event.Event{ev.WithRemaining(se.expiresAt - now)},
	})
	s.stats.EventMsgsSent++
	s.stats.EventsSent++
}

// HandleMessage feeds a received broadcast into the scheme.
func (s *Storm) HandleMessage(m event.Message) error {
	if s.stopped {
		return nil
	}
	switch v := m.(type) {
	case event.Events:
		s.onEvents(v)
	case event.Heartbeat, event.IDList:
		// Storm schemes use no control traffic; tolerate mixed setups.
	default:
		return fmt.Errorf("flood: unknown message %T", m)
	}
	return nil
}

func (s *Storm) onEvents(msg event.Events) {
	if msg.From == s.cfg.ID {
		return
	}
	now := s.sched.Now()
	for _, ev := range msg.Events {
		s.stats.EventsReceived++
		if !s.subs.Covers(ev.Topic) {
			s.stats.Parasites++
			// Storm schemes relay regardless of interest (they are
			// network-layer broadcasts), so fall through.
		}
		if se, ok := s.store[ev.ID]; ok {
			s.stats.Duplicates++
			se.copies++
			continue
		}
		if ev.Remaining <= 0 {
			s.stats.ExpiredDrops++
			continue
		}
		se := &stormEvent{ev: ev, expiresAt: now + ev.Remaining, copies: 1}
		s.store[ev.ID] = se
		if s.subs.Covers(ev.Topic) {
			s.deliver(ev)
		}
		s.scheduleDecision(se)
	}
	s.pruneExpired(now)
}

// scheduleDecision arms the single-shot rebroadcast decision.
func (s *Storm) scheduleDecision(se *stormEvent) {
	if s.cfg.Scheme == Probabilistic && s.cfg.Rand.Float64() >= s.cfg.P {
		se.decided = true // lost the coin flip: never rebroadcast
		return
	}
	delay := time.Duration(s.cfg.Rand.Int63n(int64(s.cfg.AssessmentDelay) + 1))
	s.sched.After(delay, func() {
		if s.stopped || se.decided {
			return
		}
		se.decided = true
		now := s.sched.Now()
		if now >= se.expiresAt {
			return
		}
		if s.cfg.Scheme == CounterBased && se.copies >= s.cfg.CounterThreshold {
			return // the neighborhood is saturated: suppress
		}
		s.broadcast(se.ev, now)
	})
}

func (s *Storm) pruneExpired(now time.Duration) {
	for id, se := range s.store {
		if now >= se.expiresAt && se.decided {
			delete(s.store, id)
		}
	}
}

// sortedStormIDs aids tests: stored ids in stable order.
func (s *Storm) sortedStormIDs() []event.ID {
	out := make([]event.ID, 0, len(s.store))
	for id := range s.store {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
