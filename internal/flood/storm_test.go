package flood

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/topic"
)

// stormHarness wires Storm nodes to the shared test bus.
type stormHarness struct {
	t      *testing.T
	eng    *sim.Engine
	ids    []event.NodeID
	protos map[event.NodeID]*Storm
	deliv  map[event.NodeID][]event.Event
}

func newStormHarness(t *testing.T, seed int64) *stormHarness {
	return &stormHarness{
		t:      t,
		eng:    sim.New(seed),
		protos: make(map[event.NodeID]*Storm),
		deliv:  make(map[event.NodeID][]event.Event),
	}
}

type stormBus struct {
	h    *stormHarness
	from event.NodeID
}

func (b stormBus) Broadcast(m event.Message) {
	for _, id := range b.h.ids {
		if id == b.from {
			continue
		}
		p := b.h.protos[id]
		b.h.eng.After(time.Millisecond, func() { _ = p.HandleMessage(m) })
	}
}

func (h *stormHarness) addNode(id event.NodeID, cfg StormConfig, subs ...string) *Storm {
	h.t.Helper()
	cfg.ID = id
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(int64(id) + 500))
	}
	cfg.OnDeliver = func(ev event.Event) {
		h.deliv[id] = append(h.deliv[id], ev)
	}
	p, err := NewStorm(cfg, simSched{h.eng}, stormBus{h: h, from: id})
	if err != nil {
		h.t.Fatal(err)
	}
	h.protos[id] = p
	h.ids = append(h.ids, id)
	for _, s := range subs {
		if err := p.Subscribe(topic.MustParse(s)); err != nil {
			h.t.Fatal(err)
		}
	}
	return p
}

func TestStormSchemeString(t *testing.T) {
	if Probabilistic.String() != "probabilistic-broadcast" ||
		CounterBased.String() != "counter-based-broadcast" {
		t.Fatal("scheme names wrong")
	}
	if StormScheme(7).String() != "storm(7)" {
		t.Fatal("unknown scheme format")
	}
}

func TestStormConfigValidate(t *testing.T) {
	if err := (StormConfig{Scheme: StormScheme(9)}).Validate(); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := (StormConfig{P: 1.5}).Validate(); err == nil {
		t.Fatal("bad probability accepted")
	}
	if err := (StormConfig{CounterThreshold: -1}).Validate(); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := NewStorm(StormConfig{}, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestStormProbabilisticDelivers(t *testing.T) {
	h := newStormHarness(t, 1)
	p1 := h.addNode(1, StormConfig{Scheme: Probabilistic, P: 1.0}, ".t")
	h.addNode(2, StormConfig{Scheme: Probabilistic, P: 1.0}, ".t")
	h.addNode(3, StormConfig{Scheme: Probabilistic, P: 1.0}, ".t")
	id, err := p1.Publish(topic.MustParse(".t"), []byte("x"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(5))
	for _, n := range []event.NodeID{2, 3} {
		if len(h.deliv[n]) != 1 || h.deliv[n][0].ID != id {
			t.Fatalf("node %v deliveries = %v", n, h.deliv[n])
		}
	}
}

func TestStormProbabilisticZeroNeverRelays(t *testing.T) {
	h := newStormHarness(t, 2)
	p1 := h.addNode(1, StormConfig{Scheme: Probabilistic, P: 1}, ".t")
	p2 := h.addNode(2, StormConfig{Scheme: Probabilistic, P: 1e-12}, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(5))
	if p2.Stats().EventsSent != 0 {
		t.Fatal("p~0 node relayed")
	}
	// It still delivers (reception is unconditional).
	if len(h.deliv[2]) != 1 {
		t.Fatal("non-relaying node should still deliver")
	}
}

func TestStormSingleShot(t *testing.T) {
	// Unlike periodic flooding, each node transmits each event at most
	// once — the defining property of the storm schemes.
	h := newStormHarness(t, 3)
	ps := make([]*Storm, 4)
	for i := range ps {
		ps[i] = h.addNode(event.NodeID(i+1), StormConfig{Scheme: Probabilistic, P: 1}, ".t")
	}
	if _, err := ps[0].Publish(topic.MustParse(".t"), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(30))
	for i, p := range ps {
		if got := p.Stats().EventsSent; got > 1 {
			t.Fatalf("node %d sent %d copies, want <= 1 (single shot)", i+1, got)
		}
	}
}

func TestStormCounterSuppression(t *testing.T) {
	// On a fully connected bus every node hears every relay. With
	// threshold 2 and several nodes, at least some relays must be
	// suppressed — the storm remedy at work.
	h := newStormHarness(t, 4)
	const n = 8
	ps := make([]*Storm, n)
	for i := range ps {
		ps[i] = h.addNode(event.NodeID(i+1), StormConfig{
			Scheme:           CounterBased,
			CounterThreshold: 2,
			AssessmentDelay:  300 * time.Millisecond,
		}, ".t")
	}
	if _, err := ps[0].Publish(topic.MustParse(".t"), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(10))
	relays := uint64(0)
	for _, p := range ps[1:] {
		relays += p.Stats().EventsSent
	}
	if relays >= n-1 {
		t.Fatalf("all %d receivers relayed; counter suppression inert", relays)
	}
	// Everyone still delivered.
	for i := 1; i < n; i++ {
		if len(h.deliv[event.NodeID(i+1)]) != 1 {
			t.Fatalf("node %d deliveries = %d", i+1, len(h.deliv[event.NodeID(i+1)]))
		}
	}
}

func TestStormRelaysParasitesButDoesNotDeliver(t *testing.T) {
	// Storm schemes are network-layer broadcasts: uninterested nodes
	// relay but never deliver.
	h := newStormHarness(t, 5)
	p1 := h.addNode(1, StormConfig{Scheme: Probabilistic, P: 1}, ".t")
	p2 := h.addNode(2, StormConfig{Scheme: Probabilistic, P: 1}, ".other")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(5))
	if len(h.deliv[2]) != 0 {
		t.Fatal("parasite delivered")
	}
	st := p2.Stats()
	if st.Parasites == 0 {
		t.Fatal("parasite not counted")
	}
	if st.EventsSent != 1 {
		t.Fatalf("uninterested node sent %d, want 1 (relays regardless)", st.EventsSent)
	}
}

func TestStormExpiredPruned(t *testing.T) {
	h := newStormHarness(t, 6)
	p1 := h.addNode(1, StormConfig{Scheme: Probabilistic, P: 1}, ".t")
	p2 := h.addNode(2, StormConfig{Scheme: Probabilistic, P: 1}, ".t")
	if _, err := p1.Publish(topic.MustParse(".t"), nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(5))
	// Trigger a prune via another event.
	if _, err := p1.Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Seconds(8))
	if got := len(p2.sortedStormIDs()); got != 1 {
		t.Fatalf("store holds %d events, want 1 (expired pruned)", got)
	}
}

func TestStormPublishValidation(t *testing.T) {
	h := newStormHarness(t, 7)
	p := h.addNode(1, StormConfig{Scheme: Probabilistic}, ".t")
	if _, err := p.Publish(topic.Topic{}, nil, time.Minute); err == nil {
		t.Fatal("zero topic accepted")
	}
	if _, err := p.Publish(topic.MustParse(".t"), nil, 0); err == nil {
		t.Fatal("zero validity accepted")
	}
	p.Stop()
	if _, err := p.Publish(topic.MustParse(".t"), nil, time.Minute); err == nil {
		t.Fatal("publish after stop accepted")
	}
	if err := p.Subscribe(topic.MustParse(".x")); err == nil {
		t.Fatal("subscribe after stop accepted")
	}
}

func TestStormDeterminism(t *testing.T) {
	run := func() []core.Stats {
		h := newStormHarness(t, 42)
		ps := make([]*Storm, 5)
		for i := range ps {
			ps[i] = h.addNode(event.NodeID(i+1), StormConfig{Scheme: CounterBased}, ".t")
		}
		if _, err := ps[0].Publish(topic.MustParse(".t"), nil, time.Minute); err != nil {
			t.Fatal(err)
		}
		h.eng.RunUntil(sim.Seconds(70))
		out := make([]core.Stats, len(ps))
		for i, p := range ps {
			out[i] = p.Stats()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("storm nondeterministic at node %d", i+1)
		}
	}
}
