package gossip

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topic"
)

// harness wires gossip nodes to a lossless broadcast bus with a small
// constant delay.
type harness struct {
	t     *testing.T
	eng   *sim.Engine
	ids   []event.NodeID
	nodes map[event.NodeID]*Protocol
	deliv map[event.NodeID][]event.Event
}

type bus struct {
	h    *harness
	from event.NodeID
}

func (b bus) Broadcast(m event.Message) {
	for _, id := range b.h.ids {
		if id == b.from {
			continue
		}
		node := b.h.nodes[id]
		b.h.eng.After(time.Millisecond, func() {
			if err := node.HandleMessage(m); err != nil {
				b.h.t.Errorf("node %v rejected %T: %v", id, m, err)
			}
		})
	}
}

func newHarness(t *testing.T, seed int64) *harness {
	return &harness{
		t:     t,
		eng:   sim.New(seed),
		nodes: make(map[event.NodeID]*Protocol),
		deliv: make(map[event.NodeID][]event.Event),
	}
}

func (h *harness) addNode(id event.NodeID, tun Tuning, subs ...string) *Protocol {
	h.t.Helper()
	p, err := New(tun, proto.Env{
		ID:        id,
		Sched:     proto.EngineScheduler{Eng: h.eng},
		Transport: bus{h: h, from: id},
		Rand:      rand.New(rand.NewSource(int64(id) + 400)),
		OnDeliver: func(ev event.Event) { h.deliv[id] = append(h.deliv[id], ev) },
	})
	if err != nil {
		h.t.Fatal(err)
	}
	for _, s := range subs {
		if err := p.Subscribe(topic.MustParse(s)); err != nil {
			h.t.Fatal(err)
		}
	}
	h.nodes[id] = p
	h.ids = append(h.ids, id)
	return p
}

func (h *harness) runUntil(secs float64) { h.eng.RunUntil(sim.Seconds(secs)) }

func TestValidateAndDefaults(t *testing.T) {
	for _, bad := range []Tuning{
		{Fanout: -1}, {Rounds: -1}, {Period: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Tuning %+v validated", bad)
		}
	}
	d := (Tuning{}).withDefaults()
	if d.Fanout != DefaultFanout || d.Rounds != DefaultRounds || d.Period != DefaultPeriod {
		t.Fatalf("defaults = %+v", d)
	}
	if _, err := New(Tuning{}, proto.Env{}); err == nil {
		t.Fatal("New without environment succeeded")
	}
}

func TestRumorReachesEveryoneAndStopsPushing(t *testing.T) {
	h := newHarness(t, 1)
	const n = 5
	for id := event.NodeID(1); id <= n; id++ {
		h.addNode(id, Tuning{}, ".t")
	}
	h.runUntil(3) // heartbeats discover the clique
	id, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(20)
	for node := event.NodeID(2); node <= n; node++ {
		if !h.nodes[node].HasEvent(id) {
			t.Fatalf("node %v missing the rumor after 20 s", node)
		}
		if len(h.deliv[node]) != 1 {
			t.Fatalf("node %v delivered %d times", node, len(h.deliv[node]))
		}
	}
	// Once everyone holds it, the presumed-received bookkeeping and the
	// exhausted push budget must quench the rumor: event traffic stops.
	var before uint64
	for _, p := range h.nodes {
		before += p.Stats().EventsSent
	}
	h.runUntil(60)
	var after uint64
	for _, p := range h.nodes {
		after += p.Stats().EventsSent
	}
	if after != before {
		t.Fatalf("rumor not quenched: %d event copies sent between 20 s and 60 s", after-before)
	}
}

func TestPullHealsLateJoiner(t *testing.T) {
	h := newHarness(t, 2)
	for id := event.NodeID(1); id <= 3; id++ {
		h.addNode(id, Tuning{}, ".t")
	}
	h.runUntil(3)
	id, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Let the push budget burn out completely.
	h.runUntil(30)
	// A late joiner appears; only the digest/pull path can serve it
	// (pushLeft is long exhausted everywhere).
	late := h.addNode(9, Tuning{}, ".t")
	h.runUntil(45)
	if !late.HasEvent(id) {
		t.Fatal("late joiner never pulled the cold rumor")
	}
	if len(h.deliv[9]) != 1 {
		t.Fatalf("late joiner delivered %d times", len(h.deliv[9]))
	}
}

func TestUninterestedNodesGetNothing(t *testing.T) {
	h := newHarness(t, 3)
	h.addNode(1, Tuning{}, ".t")
	h.addNode(2, Tuning{}, ".t")
	h.addNode(3, Tuning{}, ".other")
	h.runUntil(3)
	if _, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(30)
	if len(h.deliv[3]) != 0 {
		t.Fatal("uninterested node delivered")
	}
	if h.nodes[3].EventCount() != 0 {
		t.Fatal("uninterested node stored a parasite event")
	}
	if len(h.deliv[2]) != 1 {
		t.Fatalf("interested node delivered %d times", len(h.deliv[2]))
	}
}

// EventCount aids tests: number of stored rumors.
func (p *Protocol) EventCount() int { return len(p.store) }

func TestFanoutBoundsPerRoundPushes(t *testing.T) {
	// A publisher with many neighbors and fanout 1 may address at most
	// one push per round; with Rounds=2 the publisher itself sends at
	// most 2 pushed copies of the rumor (pull responses are addressed
	// too, but come from other holders).
	h := newHarness(t, 4)
	const n = 8
	for id := event.NodeID(1); id <= n; id++ {
		h.addNode(id, Tuning{Fanout: 1, Rounds: 2}, ".t")
	}
	h.runUntil(3)
	if _, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	h.runUntil(30)
	if sent := h.nodes[1].Stats().EventsSent; sent > 2 {
		t.Fatalf("publisher pushed %d copies with fanout 1, rounds 2", sent)
	}
	// The rumor still spreads: pulls and secondary pushes carry it.
	covered := 0
	for id := event.NodeID(2); id <= n; id++ {
		if len(h.deliv[id]) > 0 {
			covered++
		}
	}
	if covered < n-2 {
		t.Fatalf("only %d of %d nodes covered", covered, n-1)
	}
}

func TestExpiredRumorsDropAndValidityRespected(t *testing.T) {
	h := newHarness(t, 5)
	h.addNode(1, Tuning{}, ".t")
	h.addNode(2, Tuning{}, ".t")
	h.runUntil(3)
	if _, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	h.runUntil(30)
	if h.nodes[1].EventCount() != 0 || h.nodes[2].EventCount() != 0 {
		t.Fatal("expired rumor not pruned")
	}
	if _, err := h.nodes[1].Publish(topic.MustParse(".t"), nil, 0); err == nil {
		t.Fatal("zero validity accepted")
	}
}

// TestNoRedeliveryAtExpiryBoundary pins the retention window: a copy
// arriving with Remaining > 0 just after our own copy expired (the
// sender received it later, so its expiry is slightly later) must count
// as a duplicate, not deliver again.
func TestNoRedeliveryAtExpiryBoundary(t *testing.T) {
	h := newHarness(t, 8)
	a := h.addNode(1, Tuning{}, ".t")
	rng := rand.New(rand.NewSource(99))
	ev := event.Event{
		ID:        event.NewID(rng),
		Topic:     topic.MustParse(".t"),
		Publisher: 7,
		Validity:  10 * time.Second,
		Remaining: 2 * time.Second,
	}
	h.runUntil(3)
	if err := a.HandleMessage(event.Events{From: 7, Events: []event.Event{ev}}); err != nil {
		t.Fatal(err)
	}
	h.runUntil(5.2) // our copy expired at t=5
	late := ev
	late.Remaining = 300 * time.Millisecond // straggler from a later-expiring holder
	if err := a.HandleMessage(event.Events{From: 8, Events: []event.Event{late}}); err != nil {
		t.Fatal(err)
	}
	if got := len(h.deliv[1]); got != 1 {
		t.Fatalf("delivered %d times across the expiry boundary, want 1", got)
	}
	if a.Stats().Duplicates != 1 {
		t.Fatalf("straggler not counted as duplicate: %+v", a.Stats())
	}
	// Past the retention horizon the delivery memory is released.
	h.runUntil(30)
	if a.EventCount() != 0 {
		t.Fatal("expired rumor retained past the horizon")
	}
}

func TestStoppedProtocolIsInert(t *testing.T) {
	h := newHarness(t, 6)
	p := h.addNode(1, Tuning{}, ".t")
	h.addNode(2, Tuning{}, ".t")
	h.runUntil(3)
	p.Stop()
	if _, err := p.Publish(topic.MustParse(".t"), nil, time.Minute); err == nil {
		t.Fatal("stopped protocol accepted Publish")
	}
	if err := p.Subscribe(topic.MustParse(".x")); err == nil {
		t.Fatal("stopped protocol accepted Subscribe")
	}
	before := p.Stats()
	h.runUntil(20)
	if p.Stats() != before {
		t.Fatal("stopped protocol kept counting")
	}
}

func TestNeighborTTLExpires(t *testing.T) {
	h := newHarness(t, 7)
	a := h.addNode(1, Tuning{}, ".t")
	b := h.addNode(2, Tuning{}, ".t")
	h.runUntil(3)
	if len(a.nbrs) != 1 {
		t.Fatalf("node 1 knows %d neighbors, want 1", len(a.nbrs))
	}
	// Silence node 2: its rows must age out of node 1's table.
	b.Stop()
	h.runUntil(10)
	if len(a.nbrs) != 0 {
		t.Fatal("stale neighbor survived the TTL")
	}
}
