// Package gossip implements a probabilistic push-pull rumor-mongering
// baseline in the style of the crowd-gossip literature (Ghaffari &
// Newport's discreet rumor spreading; the adaptive-vs-oblivious
// dissemination taxonomy of Farach-Colton et al.): nodes learn their
// neighborhood from periodic heartbeats and, every round, (push) send
// fresh rumors to a bounded random sample of interested neighbors and
// (pull) broadcast a digest of the event ids they hold, to which any
// neighbor holding more replies with the missing events.
//
// Compared with the frugal protocol it is oblivious to speed and makes
// no attempt at suppression: redundancy is bounded only by the fanout,
// the per-rumor round budget and the presumed-received bookkeeping.
// Compared with the flooding baselines it is far cheaper, but its
// per-round sampling trades latency for that economy.
//
// The package is wired into the simulation exclusively through the
// internal/proto registry (see init): no runner or harness code names
// it. It is, deliberately, the worked example for "adding a protocol"
// in ARCHITECTURE.md.
package gossip

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/proto"
	"repro/internal/topic"
)

// ProtocolName is the registry key.
const ProtocolName = "gossip-pushpull"

// Defaults; zero Tuning fields select these.
const (
	// DefaultFanout is the number of neighbors sampled per push round.
	DefaultFanout = 2
	// DefaultRounds is the per-rumor push budget: after this many
	// rounds a rumor is only served through pulls.
	DefaultRounds = 3
	// DefaultPeriod is the gossip round interval.
	DefaultPeriod = time.Second
)

// Tuning is the protocol's registry params (proto.Params). The zero
// value selects the defaults above.
type Tuning struct {
	// Fanout bounds the neighbors pushed to per round.
	Fanout int
	// Rounds is the push budget per rumor.
	Rounds int
	// Period is the round interval; the heartbeat period equals it.
	Period time.Duration
}

// Validate implements proto.Params.
func (t Tuning) Validate() error {
	if t.Fanout < 0 || t.Rounds < 0 {
		return errors.New("gossip: negative fanout or rounds")
	}
	if t.Period < 0 {
		return errors.New("gossip: negative period")
	}
	return nil
}

func (t Tuning) withDefaults() Tuning {
	if t.Fanout == 0 {
		t.Fanout = DefaultFanout
	}
	if t.Rounds == 0 {
		t.Rounds = DefaultRounds
	}
	if t.Period == 0 {
		t.Period = DefaultPeriod
	}
	return t
}

// rumor is one stored event plus its local push state.
type rumor struct {
	ev        event.Event
	expiresAt time.Duration
	pushLeft  int // remaining push rounds; pulls serve it afterwards
}

// neighbor is one heartbeat-learned peer.
type neighbor struct {
	subs     *topic.Set
	storedAt time.Duration
	// known holds event ids the peer is presumed to have (from digests,
	// addressed sends and overheard traffic) — the push/pull filter.
	known map[event.ID]bool
}

// Protocol is one push-pull gossip process. Like every Disseminator it
// is single-threaded: all entry points must be invoked serially.
type Protocol struct {
	tun tuningRT
	env proto.Env

	subs  *topic.Set
	store map[event.ID]*rumor
	// sorted caches the store's rumors in id order (nil = rebuild);
	// digests arrive once per neighbor per round, so the sort is reused
	// across them instead of redone per message.
	sorted []*rumor
	nbrs   map[event.NodeID]*neighbor

	roundTimer proto.Timer
	hbTimer    proto.Timer
	stats      proto.Stats
	stopped    bool
}

// tuningRT is Tuning with the derived neighbor TTL resolved.
type tuningRT struct {
	Tuning
	neighborTTL time.Duration
}

// New creates a gossip node; the periodic round and heartbeat tasks
// start on the first Subscribe or Publish.
func New(t Tuning, env proto.Env) (*Protocol, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if env.Sched == nil || env.Transport == nil || env.Rand == nil {
		return nil, errors.New("gossip: environment missing scheduler, transport or rand")
	}
	t = t.withDefaults()
	return &Protocol{
		tun: tuningRT{
			Tuning: t,
			// Mirror the frugal protocol's 2.5x heartbeat horizon.
			neighborTTL: time.Duration(2.5 * float64(t.Period)),
		},
		env:   env,
		subs:  topic.NewSet(),
		store: make(map[event.ID]*rumor),
		nbrs:  make(map[event.NodeID]*neighbor),
	}, nil
}

// ID returns the process identifier.
func (p *Protocol) ID() event.NodeID { return p.env.ID }

// Stats returns a snapshot of the counters.
func (p *Protocol) Stats() proto.Stats { return p.stats }

// HasEvent reports whether the store holds id.
func (p *Protocol) HasEvent(id event.ID) bool {
	_, ok := p.store[id]
	return ok
}

// Subscribe registers interest in t and its subtopics.
func (p *Protocol) Subscribe(t topic.Topic) error {
	if p.stopped {
		return errors.New("gossip: protocol stopped")
	}
	if t.IsZero() {
		return errors.New("gossip: zero topic")
	}
	p.subs.Add(t)
	p.start()
	return nil
}

// Unsubscribe removes t from the subscription set.
func (p *Protocol) Unsubscribe(t topic.Topic) { p.subs.Remove(t) }

// Stop halts all activity permanently.
func (p *Protocol) Stop() {
	p.stopped = true
	if p.roundTimer != nil {
		p.roundTimer.Stop()
		p.roundTimer = nil
	}
	if p.hbTimer != nil {
		p.hbTimer.Stop()
		p.hbTimer = nil
	}
}

// start launches the periodic tasks with a random initial phase so that
// co-started nodes do not gossip in lockstep.
func (p *Protocol) start() {
	if p.roundTimer == nil {
		phase := time.Duration(p.env.Rand.Int63n(int64(p.tun.Period) + 1))
		p.roundTimer = p.env.Sched.After(phase, p.roundTick)
	}
	if p.hbTimer == nil {
		phase := time.Duration(p.env.Rand.Int63n(int64(p.tun.Period) + 1))
		p.hbTimer = p.env.Sched.After(phase, p.heartbeatTick)
	}
}

// Publish stores a new rumor with a full push budget; the next round
// starts spreading it.
func (p *Protocol) Publish(t topic.Topic, payload []byte, validity time.Duration) (event.ID, error) {
	if p.stopped {
		return event.ID{}, errors.New("gossip: protocol stopped")
	}
	if t.IsZero() {
		return event.ID{}, errors.New("gossip: zero topic")
	}
	if validity <= 0 {
		return event.ID{}, fmt.Errorf("gossip: non-positive validity %v", validity)
	}
	now := p.env.Sched.Now()
	ev := event.Event{
		ID:        event.NewID(p.env.Rand),
		Topic:     t,
		Publisher: p.env.ID,
		Payload:   append([]byte(nil), payload...),
		Validity:  validity,
		Remaining: validity,
	}
	p.store[ev.ID] = &rumor{ev: ev, expiresAt: now + validity, pushLeft: p.tun.Rounds}
	p.sorted = nil
	p.stats.Published++
	if p.subs.Covers(t) {
		p.deliver(ev)
	}
	p.start()
	return ev.ID, nil
}

func (p *Protocol) deliver(ev event.Event) {
	p.stats.Delivered++
	if p.env.OnDeliver != nil {
		p.env.OnDeliver(ev)
	}
}

// HandleMessage feeds a received broadcast into the protocol.
func (p *Protocol) HandleMessage(m event.Message) error {
	if p.stopped {
		return nil
	}
	switch v := m.(type) {
	case event.Heartbeat:
		p.onHeartbeat(v)
	case event.IDList:
		p.onDigest(v)
	case event.Events:
		p.onEvents(v)
	default:
		return fmt.Errorf("gossip: unknown message %T", m)
	}
	return nil
}

func (p *Protocol) onHeartbeat(h event.Heartbeat) {
	if h.From == p.env.ID {
		return
	}
	now := p.env.Sched.Now()
	if nb, ok := p.nbrs[h.From]; ok {
		nb.subs = topic.NewSet(h.Subscriptions...)
		nb.storedAt = now
		return
	}
	p.nbrs[h.From] = &neighbor{
		subs:     topic.NewSet(h.Subscriptions...),
		storedAt: now,
		known:    make(map[event.ID]bool),
	}
}

// onDigest is the pull half: a digest lists the ids the sender holds;
// we answer with the valid events of interest to the sender that the
// digest lacks.
func (p *Protocol) onDigest(l event.IDList) {
	if l.From == p.env.ID {
		return
	}
	nb, ok := p.nbrs[l.From]
	if !ok {
		return // undiscovered sender: its next heartbeat fixes this
	}
	for _, id := range l.IDs {
		nb.known[id] = true
	}
	now := p.env.Sched.Now()
	var batch []*rumor
	for _, ru := range p.sortedValid(now) {
		if !nb.known[ru.ev.ID] && nb.subs.Covers(ru.ev.Topic) {
			batch = append(batch, ru)
		}
	}
	p.send(batch, now, l.From, nb)
}

func (p *Protocol) onEvents(msg event.Events) {
	if msg.From == p.env.ID {
		return
	}
	now := p.env.Sched.Now()
	// Presumed-received: the sender and every addressed receiver hold
	// the carried events — the filter that keeps push/pull finite.
	holders := make([]*neighbor, 0, len(msg.Receivers)+1)
	if nb, ok := p.nbrs[msg.From]; ok {
		holders = append(holders, nb)
	}
	for _, r := range msg.Receivers {
		if nb, ok := p.nbrs[r]; ok {
			holders = append(holders, nb)
		}
	}
	for _, ev := range msg.Events {
		p.stats.EventsReceived++
		for _, nb := range holders {
			nb.known[ev.ID] = true
		}
		if !p.subs.Covers(ev.Topic) {
			p.stats.Parasites++ // outside our interests: drop
			continue
		}
		if _, ok := p.store[ev.ID]; ok {
			p.stats.Duplicates++
			continue
		}
		if ev.Remaining <= 0 {
			p.stats.ExpiredDrops++
			continue
		}
		p.store[ev.ID] = &rumor{
			ev:        ev,
			expiresAt: now + ev.Remaining,
			pushLeft:  p.tun.Rounds,
		}
		p.sorted = nil
		p.deliver(ev)
	}
}

// roundTick is the gossip round: push hot rumors to a random sample of
// interested neighbors, then broadcast the digest that lets any
// neighbor pull what we miss.
func (p *Protocol) roundTick() {
	if p.stopped {
		p.roundTimer = nil
		return
	}
	now := p.env.Sched.Now()
	p.prune(now)
	valid := p.sortedValid(now)
	sample := p.sampleNeighbors()
	for _, id := range sample {
		nb := p.nbrs[id]
		var batch []*rumor
		for _, ru := range valid {
			if ru.pushLeft > 0 && !nb.known[ru.ev.ID] && nb.subs.Covers(ru.ev.Topic) {
				batch = append(batch, ru)
			}
		}
		p.send(batch, now, id, nb)
	}
	if len(sample) > 0 {
		// The budget burns per round with peers in range, pushed or
		// not: a rumor the whole sample already knows is cold.
		for _, ru := range valid {
			if ru.pushLeft > 0 {
				ru.pushLeft--
			}
		}
	}
	if !p.subs.Empty() {
		// The pull request: advertise holdings (even empty — that is
		// precisely "send me everything").
		ids := make([]event.ID, len(valid))
		for i, ru := range valid {
			ids[i] = ru.ev.ID
		}
		p.env.Transport.Broadcast(event.IDList{From: p.env.ID, IDs: ids})
		p.stats.IDListsSent++
	}
	p.roundTimer = p.env.Sched.After(p.tun.Period, p.roundTick)
}

// send transmits batch addressed to peer and records the bookkeeping.
func (p *Protocol) send(batch []*rumor, now time.Duration, peer event.NodeID, nb *neighbor) {
	if len(batch) == 0 {
		return
	}
	events := make([]event.Event, len(batch))
	for i, ru := range batch {
		events[i] = ru.ev.WithRemaining(ru.expiresAt - now)
		nb.known[ru.ev.ID] = true
	}
	p.env.Transport.Broadcast(event.Events{
		From:      p.env.ID,
		Events:    events,
		Receivers: []event.NodeID{peer},
	})
	p.stats.EventMsgsSent++
	p.stats.EventsSent += uint64(len(events))
}

func (p *Protocol) heartbeatTick() {
	if p.stopped {
		p.hbTimer = nil
		return
	}
	p.env.Transport.Broadcast(event.Heartbeat{
		From:          p.env.ID,
		Subscriptions: p.subs.Topics(),
		Speed:         -1, // oblivious: gossip ignores mobility
	})
	p.stats.HeartbeatsSent++
	p.hbTimer = p.env.Sched.After(p.tun.Period, p.heartbeatTick)
}

// sampleNeighbors draws up to Fanout live neighbor ids, uniformly
// without replacement, in a deterministic order given the node RNG.
func (p *Protocol) sampleNeighbors() []event.NodeID {
	ids := make([]event.NodeID, 0, len(p.nbrs))
	for id := range p.nbrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) <= p.tun.Fanout {
		return ids
	}
	picked := make([]event.NodeID, 0, p.tun.Fanout)
	for _, i := range p.env.Rand.Perm(len(ids))[:p.tun.Fanout] {
		picked = append(picked, ids[i])
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return picked
}

// prune drops expired rumors and stale neighbors. Expired rumors are
// retained one neighborTTL past expiry as delivery memory: a peer that
// received the event later holds a slightly later expiry (transit time
// accumulates), so a copy can still arrive with Remaining > 0 shortly
// after our own copy expired — dropping the entry immediately would
// re-deliver it. sortedValid filters them out of digests and pushes.
func (p *Protocol) prune(now time.Duration) {
	for id, ru := range p.store {
		if now >= ru.expiresAt+p.tun.neighborTTL {
			delete(p.store, id)
			p.sorted = nil
		}
	}
	for id, nb := range p.nbrs {
		if now-nb.storedAt > p.tun.neighborTTL {
			delete(p.nbrs, id)
			continue
		}
		// The known filter only ever guards pushes/pulls of events we
		// hold, so entries for ids outside the store are dead weight —
		// dropping them bounds per-neighbor memory by the store size
		// instead of growing with every event id ever overheard.
		for evID := range nb.known {
			if _, held := p.store[evID]; !held {
				delete(nb.known, evID)
			}
		}
	}
}

// sortedValid returns still-valid rumors ordered by event id, reusing
// the cached id-ordered slice (validity is time-dependent, so only the
// filter runs per call; the sort reruns only after store mutations).
func (p *Protocol) sortedValid(now time.Duration) []*rumor {
	if p.sorted == nil {
		p.sorted = make([]*rumor, 0, len(p.store))
		for _, ru := range p.store {
			p.sorted = append(p.sorted, ru)
		}
		sort.Slice(p.sorted, func(i, j int) bool {
			return p.sorted[i].ev.ID.Less(p.sorted[j].ev.ID)
		})
	}
	out := make([]*rumor, 0, len(p.sorted))
	for _, ru := range p.sorted {
		if now < ru.expiresAt {
			out = append(out, ru)
		}
	}
	return out
}

func init() {
	proto.RegisterProtocol(proto.Definition{
		Name:        ProtocolName,
		Description: "push-pull rumor mongering: per-round fanout-bounded pushes plus digest-driven pulls over heartbeat-learned neighborhoods",
		Params:      Tuning{},
		New: func(p proto.Params, env proto.Env) (proto.Disseminator, error) {
			t, ok := p.(Tuning)
			if !ok {
				return nil, fmt.Errorf("gossip: params are %T, want gossip.Tuning", p)
			}
			return New(t, env)
		},
	})
}
