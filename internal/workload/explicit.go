package workload

import (
	"fmt"
	"sort"
)

// ExplicitParams replays a fixed, pre-enumerated op schedule — the
// compatibility bridge for scenarios that enumerate every publication,
// crash and resubscription by hand. netsim converts its
// Publications/Crashes/Resubscriptions lists into exactly this
// generator, so the legacy path and the generated path share one
// scheduling mechanism.
type ExplicitParams struct {
	// Ops is the schedule, sorted by At (stable: same-instant ops keep
	// their slice order).
	Ops []Op
}

// Validate implements Params.
func (p ExplicitParams) Validate() error {
	for i, op := range p.Ops {
		if op.At < 0 {
			return fmt.Errorf("workload: explicit op %d at negative time %v", i, op.At)
		}
		if i > 0 && op.At < p.Ops[i-1].At {
			return fmt.Errorf("workload: explicit ops not sorted (op %d at %v after %v)",
				i, op.At, p.Ops[i-1].At)
		}
		if op.Kind == Publish {
			if op.Validity <= 0 {
				return fmt.Errorf("workload: explicit publish %d without validity", i)
			}
		} else if op.Node < 0 {
			return fmt.Errorf("workload: explicit op %d (%v) with negative node", i, op.Kind)
		}
	}
	return nil
}

// SortOps stable-sorts ops by At in place: same-instant ops keep their
// relative order, which is how callers encode tie-breaking (e.g. netsim
// lists publications before crashes before resubscriptions).
func SortOps(ops []Op) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
}

type explicitGen struct {
	ops []Op
	i   int
}

func (g *explicitGen) Next() (Op, bool) {
	if g.i >= len(g.ops) {
		return Op{}, false
	}
	op := g.ops[g.i]
	g.i++
	return op, true
}

// NewExplicit returns a generator replaying ops (which must already be
// sorted by At; see SortOps). It is the "explicit" registry entry,
// exported directly because netsim builds it on every run.
func NewExplicit(ops []Op) Generator { return &explicitGen{ops: ops} }

// head is one merged stream's buffered next op.
type head struct {
	op  Op
	gen Generator
}

type merged struct{ heads []head }

// Merge interleaves generators into one time-ordered stream. Ties go to
// the earliest-listed generator, so merging is deterministic and the
// explicit schedule (always listed first by netsim) keeps its
// tie-breaking authority over generated traffic.
func Merge(gens ...Generator) Generator {
	m := &merged{}
	for _, g := range gens {
		if g == nil {
			continue
		}
		if op, ok := g.Next(); ok {
			m.heads = append(m.heads, head{op, g})
		}
	}
	return m
}

func (m *merged) Next() (Op, bool) {
	if len(m.heads) == 0 {
		return Op{}, false
	}
	best := 0
	for i := 1; i < len(m.heads); i++ {
		if m.heads[i].op.At < m.heads[best].op.At {
			best = i
		}
	}
	op := m.heads[best].op
	if next, ok := m.heads[best].gen.Next(); ok {
		m.heads[best].op = next
	} else {
		m.heads = append(m.heads[:best], m.heads[best+1:]...)
	}
	return op, true
}

// MixParams composes several registered generators into one stream —
// e.g. diurnal traffic plus node churn plus subscription churn. Parts
// are merged in time order (ties to the earlier part).
type MixParams struct {
	Parts []Spec
}

// Validate implements Params; each part must name a registered
// generator and carry schema-typed params.
func (p MixParams) Validate() error {
	for i, part := range p.Parts {
		if part.IsZero() {
			return fmt.Errorf("workload: mix part %d has no generator name", i)
		}
		if part.Name == "mix" {
			return fmt.Errorf("workload: mix part %d nests mix", i)
		}
		if err := part.Validate(); err != nil {
			return fmt.Errorf("workload: mix part %d: %w", i, err)
		}
	}
	return nil
}

func init() {
	RegisterWorkload(Definition{
		Name:        "explicit",
		Description: "replays a fixed pre-enumerated op schedule (the compatibility path for hand-written scenario lists)",
		Class:       ClassUtil,
		Params:      ExplicitParams{},
		New: func(p Params, _ Env) (Generator, error) {
			return NewExplicit(p.(ExplicitParams).Ops), nil
		},
	})
	RegisterWorkload(Definition{
		Name:        "mix",
		Description: "merges several registered generators into one time-ordered stream (traffic + churn compositions)",
		Class:       ClassUtil,
		Params:      MixParams{},
		New: func(p Params, env Env) (Generator, error) {
			parts := p.(MixParams).Parts
			gens := make([]Generator, 0, len(parts))
			for _, part := range parts {
				g, err := Build(part.Name, part.Params, env)
				if err != nil {
					return nil, err
				}
				gens = append(gens, g)
			}
			return Merge(gens...), nil
		},
	})
}
