package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/topic"
)

// TopicModel selects the topic of each generated publication over the
// scenario's topic tree. The zero value publishes everything on the
// scenario's event topic itself.
type TopicModel struct {
	// Spread > 1 publishes across Spread sibling subtopics under the
	// event topic (".app.news.0" … ".app.news.<Spread-1>"); subscribers
	// of the event topic cover the whole subtree, so deliveries still
	// count. 0 or 1 publishes on the event topic itself.
	Spread int
	// ZipfS > 1 skews topic popularity with a Zipf(s) law (a popular
	// head and a long tail, per the usual pub/sub workload observation);
	// 0 draws topics uniformly. Ignored when Spread <= 1.
	ZipfS float64
}

// Validate reports configuration errors.
func (m TopicModel) Validate() error {
	if m.Spread < 0 {
		return fmt.Errorf("workload: negative topic Spread %d", m.Spread)
	}
	if m.ZipfS != 0 && m.ZipfS <= 1 {
		return fmt.Errorf("workload: ZipfS %v must be 0 (uniform) or > 1", m.ZipfS)
	}
	return nil
}

// topicPicker draws per-publication topics for a TopicModel.
type topicPicker struct {
	topics []topic.Topic // nil: always the zero topic (= event topic)
	zipf   *rand.Zipf
	rng    *rand.Rand
}

// child names the i-th subtopic under base.
func child(base topic.Topic, i int) topic.Topic {
	if base.IsZero() || base.IsRoot() {
		return topic.MustParse(fmt.Sprintf(".%d", i))
	}
	return topic.MustParse(fmt.Sprintf("%s.%d", base, i))
}

func newTopicPicker(m TopicModel, env Env) *topicPicker {
	if m.Spread <= 1 {
		return &topicPicker{}
	}
	ts := make([]topic.Topic, m.Spread)
	for i := range ts {
		ts[i] = child(env.EventTopic, i)
	}
	p := &topicPicker{topics: ts, rng: env.Rand}
	if m.ZipfS > 1 {
		p.zipf = rand.NewZipf(env.Rand, m.ZipfS, 1, uint64(m.Spread-1))
	}
	return p
}

func (p *topicPicker) pick() topic.Topic {
	if p.topics == nil {
		return topic.Topic{}
	}
	if p.zipf != nil {
		return p.topics[p.zipf.Uint64()]
	}
	return p.topics[p.rng.Intn(len(p.topics))]
}

// rateFn is an instantaneous arrival intensity in events/second.
type rateFn func(t time.Duration) float64

// thinning samples a nonhomogeneous Poisson process on [t, end) by
// Lewis-Shedler thinning against the constant envelope max: candidate
// arrivals come from a homogeneous process at rate max and are accepted
// with probability rate(t)/max. Arrival times are strictly
// non-decreasing and the walk keeps O(1) state.
type thinning struct {
	rng  *rand.Rand
	rate rateFn
	max  float64
	t    time.Duration
	end  time.Duration
}

func (th *thinning) next() (time.Duration, bool) {
	if th.max <= 0 {
		return 0, false
	}
	for {
		gap := time.Duration(th.rng.ExpFloat64() / th.max * float64(time.Second))
		th.t += gap
		if th.t >= th.end {
			return 0, false
		}
		if r := th.rate(th.t); r >= th.max || th.rng.Float64()*th.max < r {
			return th.t, true
		}
	}
}

// trafficGen maps an arrival process to Publish ops from a random
// subscriber (-1), with topics drawn from a TopicModel.
type trafficGen struct {
	arrive   func() (time.Duration, bool)
	topics   *topicPicker
	validity time.Duration
}

func (g *trafficGen) Next() (Op, bool) {
	t, ok := g.arrive()
	if !ok {
		return Op{}, false
	}
	return Op{At: t, Kind: Publish, Node: -1, Topic: g.topics.pick(), Validity: g.validity}, true
}

func newThinnedTraffic(env Env, rate rateFn, max float64, topics TopicModel, validity time.Duration) Generator {
	th := &thinning{rng: env.Rand, rate: rate, max: max, t: env.Start(), end: env.End()}
	return &trafficGen{arrive: th.next, topics: newTopicPicker(topics, env), validity: validity}
}

func defDuration(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	return v
}

func defFloat(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// defaultValidity is the generated events' default validity period.
const defaultValidity = 60 * time.Second

// PoissonParams tunes the "poisson" generator: memoryless arrivals at a
// constant mean rate, the classic open-loop traffic model.
type PoissonParams struct {
	// Rate is the mean arrival rate in events/second (default 0.2).
	Rate float64
	// Validity is each event's validity period (default 60 s).
	Validity time.Duration
	// Topics selects topic popularity over the topic tree.
	Topics TopicModel
}

// Validate implements Params.
func (p PoissonParams) Validate() error {
	if p.Rate < 0 {
		return fmt.Errorf("workload: negative poisson Rate %v", p.Rate)
	}
	if p.Validity < 0 {
		return fmt.Errorf("workload: negative Validity %v", p.Validity)
	}
	return p.Topics.Validate()
}

// PeriodicParams tunes the "periodic" generator: fixed-period arrivals
// with per-arrival forward jitter, the sensor-beacon traffic model.
type PeriodicParams struct {
	// Period is the base interval (default 5 s).
	Period time.Duration
	// Jitter is the maximum forward shift added to each arrival,
	// uniform in [0, Jitter]. Zero selects the default (Period/10);
	// negative disables jitter. Jitter must stay <= Period so the
	// stream stays monotone.
	Jitter time.Duration
	// Validity is each event's validity period (default 60 s).
	Validity time.Duration
	// Topics selects topic popularity over the topic tree.
	Topics TopicModel
}

// Validate implements Params.
func (p PeriodicParams) Validate() error {
	if p.Period < 0 {
		return fmt.Errorf("workload: negative periodic Period %v", p.Period)
	}
	period := defDuration(p.Period, 5*time.Second)
	if p.Jitter > period {
		return fmt.Errorf("workload: Jitter %v exceeds Period %v", p.Jitter, period)
	}
	if p.Validity < 0 {
		return fmt.Errorf("workload: negative Validity %v", p.Validity)
	}
	return p.Topics.Validate()
}

// FlashCrowdParams tunes the "flash-crowd" generator: a low background
// rate with one high-rate burst window — the stadium-event traffic
// shape studied by the VANET cooperative-monitoring literature.
type FlashCrowdParams struct {
	// BaseRate is the background rate in events/second (default 0.05).
	BaseRate float64
	// PeakRate is the in-burst rate in events/second (default 2).
	PeakRate float64
	// BurstStart is the burst's offset into the measurement window
	// (default: one third in).
	BurstStart time.Duration
	// BurstLen is the burst duration (default: one sixth of the
	// window).
	BurstLen time.Duration
	// Validity is each event's validity period (default 60 s).
	Validity time.Duration
	// Topics selects topic popularity over the topic tree.
	Topics TopicModel
}

// Validate implements Params.
func (p FlashCrowdParams) Validate() error {
	if p.BaseRate < 0 || p.PeakRate < 0 {
		return fmt.Errorf("workload: negative flash-crowd rate (base %v, peak %v)", p.BaseRate, p.PeakRate)
	}
	if p.BurstStart < 0 || p.BurstLen < 0 {
		return fmt.Errorf("workload: negative burst window (start %v, len %v)", p.BurstStart, p.BurstLen)
	}
	if p.Validity < 0 {
		return fmt.Errorf("workload: negative Validity %v", p.Validity)
	}
	return p.Topics.Validate()
}

// DiurnalParams tunes the "diurnal" generator: a smooth rate ramp
// between a quiet floor and a rush-hour peak, following one cosine
// cycle — the compressed day/night (or commute) traffic shape.
type DiurnalParams struct {
	// MinRate is the quiet-hours rate in events/second (default 0.02).
	MinRate float64
	// MaxRate is the peak rate in events/second (default 0.5).
	MaxRate float64
	// Cycle is the full cycle length (default: the measurement window,
	// i.e. one quiet-rush-quiet arc per run).
	Cycle time.Duration
	// Validity is each event's validity period (default 60 s).
	Validity time.Duration
	// Topics selects topic popularity over the topic tree.
	Topics TopicModel
}

// Validate implements Params.
func (p DiurnalParams) Validate() error {
	if p.MinRate < 0 || p.MaxRate < 0 {
		return fmt.Errorf("workload: negative diurnal rate (min %v, max %v)", p.MinRate, p.MaxRate)
	}
	if defFloat(p.MinRate, 0.02) > defFloat(p.MaxRate, 0.5) {
		return fmt.Errorf("workload: diurnal MinRate %v exceeds MaxRate %v", p.MinRate, p.MaxRate)
	}
	if p.Cycle < 0 {
		return fmt.Errorf("workload: negative Cycle %v", p.Cycle)
	}
	if p.Validity < 0 {
		return fmt.Errorf("workload: negative Validity %v", p.Validity)
	}
	return p.Topics.Validate()
}

// periodicGen is the deterministic-period arrival process with forward
// jitter.
type periodicGen struct {
	rng    *rand.Rand
	base   time.Duration
	period time.Duration
	jitter time.Duration
	end    time.Duration
}

func (g *periodicGen) next() (time.Duration, bool) {
	for g.base < g.end {
		t := g.base
		g.base += g.period
		if g.jitter > 0 {
			t += time.Duration(g.rng.Int63n(int64(g.jitter) + 1))
		}
		if t < g.end {
			return t, true
		}
		// Jitter pushed this arrival past the horizon; the next base
		// may still fit, but drawing continues so the stream stays a
		// pure function of the params.
	}
	return 0, false
}

func init() {
	RegisterWorkload(Definition{
		Name:        "poisson",
		Description: "memoryless arrivals at a constant mean rate (open-loop traffic)",
		Class:       ClassTraffic,
		Params:      PoissonParams{},
		New: func(p Params, env Env) (Generator, error) {
			pp := p.(PoissonParams)
			rate := defFloat(pp.Rate, 0.2)
			return newThinnedTraffic(env,
				func(time.Duration) float64 { return rate }, rate,
				pp.Topics, defDuration(pp.Validity, defaultValidity)), nil
		},
	})
	RegisterWorkload(Definition{
		Name:        "periodic",
		Description: "fixed-period arrivals with forward jitter (sensor-beacon traffic)",
		Class:       ClassTraffic,
		Params:      PeriodicParams{},
		New: func(p Params, env Env) (Generator, error) {
			pp := p.(PeriodicParams)
			period := defDuration(pp.Period, 5*time.Second)
			jitter := pp.Jitter
			if jitter == 0 {
				jitter = period / 10
			}
			if jitter < 0 {
				jitter = 0
			}
			g := &periodicGen{rng: env.Rand, base: env.Start(), period: period, jitter: jitter, end: env.End()}
			return &trafficGen{arrive: g.next, topics: newTopicPicker(pp.Topics, env),
				validity: defDuration(pp.Validity, defaultValidity)}, nil
		},
	})
	RegisterWorkload(Definition{
		Name:        "flash-crowd",
		Description: "low background rate with one high-rate burst window (stadium-event traffic)",
		Class:       ClassTraffic,
		Params:      FlashCrowdParams{},
		New: func(p Params, env Env) (Generator, error) {
			pp := p.(FlashCrowdParams)
			base := defFloat(pp.BaseRate, 0.05)
			peak := defFloat(pp.PeakRate, 2)
			from := env.Start() + defDuration(pp.BurstStart, env.Measure/3)
			until := from + defDuration(pp.BurstLen, env.Measure/6)
			rate := func(t time.Duration) float64 {
				if t >= from && t < until {
					return peak
				}
				return base
			}
			return newThinnedTraffic(env, rate, math.Max(base, peak),
				pp.Topics, defDuration(pp.Validity, defaultValidity)), nil
		},
	})
	RegisterWorkload(Definition{
		Name:        "diurnal",
		Description: "cosine rate ramp between a quiet floor and a rush-hour peak (commute traffic)",
		Class:       ClassTraffic,
		Params:      DiurnalParams{},
		New: func(p Params, env Env) (Generator, error) {
			pp := p.(DiurnalParams)
			minRate := defFloat(pp.MinRate, 0.02)
			maxRate := defFloat(pp.MaxRate, 0.5)
			if minRate > maxRate {
				return nil, fmt.Errorf("workload: diurnal MinRate %v exceeds MaxRate %v", minRate, maxRate)
			}
			cycle := defDuration(pp.Cycle, env.Measure)
			if cycle <= 0 {
				return nil, fmt.Errorf("workload: diurnal cycle %v not positive", cycle)
			}
			start := env.Start()
			rate := func(t time.Duration) float64 {
				phase := 2 * math.Pi * float64(t-start) / float64(cycle)
				return minRate + (maxRate-minRate)*(1-math.Cos(phase))/2
			}
			return newThinnedTraffic(env, rate, maxRate,
				pp.Topics, defDuration(pp.Validity, defaultValidity)), nil
		},
	})
}
