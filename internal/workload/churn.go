package workload

import (
	"fmt"
	"time"
)

// NodeChurnParams tunes the "churn-nodes" generator: waves of
// simultaneous node failures with staggered instants and optional
// recovery, modeling vehicles leaving and re-entering coverage (or
// devices power-cycling) en masse.
type NodeChurnParams struct {
	// Waves is the number of crash waves, evenly spaced over the
	// measurement window (default 2).
	Waves int
	// Fraction of the roster crashed per wave, in [0,1] (default 0.1;
	// at least one node per wave).
	Fraction float64
	// Stagger spreads each wave's crash instants uniformly over
	// [0, Stagger] (default 2 s).
	Stagger time.Duration
	// Downtime is how long a crashed node stays down before recovering
	// with empty state (default 20 s); negative means it never
	// recovers. Recoveries past the run's horizon are dropped — the
	// node stays down.
	Downtime time.Duration
}

// Validate implements Params.
func (p NodeChurnParams) Validate() error {
	if p.Waves < 0 {
		return fmt.Errorf("workload: negative churn Waves %d", p.Waves)
	}
	if p.Fraction < 0 || p.Fraction > 1 {
		return fmt.Errorf("workload: churn Fraction %v out of [0,1]", p.Fraction)
	}
	if p.Stagger < 0 {
		return fmt.Errorf("workload: negative churn Stagger %v", p.Stagger)
	}
	return nil
}

// SubChurnParams tunes the "churn-subs" generator: a Poisson stream of
// subscription flips — a random node drops the event topic, then
// resubscribes after a fixed delay — exercising the paper's "the list
// of subscriptions can change at any point in time".
type SubChurnParams struct {
	// Rate is the mean flip rate across the roster in flips/second
	// (default 0.1).
	Rate float64
	// Resub is the delay before a flipped node resubscribes (default
	// 15 s); negative means it never resubscribes. Resubscriptions past
	// the run's horizon are dropped.
	Resub time.Duration
}

// Validate implements Params.
func (p SubChurnParams) Validate() error {
	if p.Rate < 0 {
		return fmt.Errorf("workload: negative sub-churn Rate %v", p.Rate)
	}
	return nil
}

// nodeChurnGen precomputes its wave schedule at build: churn volume is
// bounded by Waves x Fraction x Nodes (dozens of ops, not the
// million-op traffic regime), so a sorted slice is simpler than lazy
// emission and trivially monotone even when recoveries of one wave
// outlast the next wave's crashes.
func newNodeChurn(p NodeChurnParams, env Env) Generator {
	waves := p.Waves
	if waves == 0 {
		waves = 2
	}
	frac := defFloat(p.Fraction, 0.1)
	stagger := defDuration(p.Stagger, 2*time.Second)
	downtime := p.Downtime
	if downtime == 0 {
		downtime = 20 * time.Second
	}
	if env.Nodes <= 0 {
		return NewExplicit(nil)
	}
	perWave := int(float64(env.Nodes)*frac + 0.5)
	if perWave < 1 && frac > 0 {
		perWave = 1
	}
	if perWave > env.Nodes {
		perWave = env.Nodes
	}
	var ops []Op
	for w := 0; w < waves; w++ {
		waveAt := env.Start() + time.Duration(w+1)*env.Measure/time.Duration(waves+1)
		victims := env.Rand.Perm(env.Nodes)[:perWave]
		for _, node := range victims {
			crashAt := waveAt
			if stagger > 0 {
				crashAt += time.Duration(env.Rand.Int63n(int64(stagger) + 1))
			}
			if crashAt >= env.End() {
				continue
			}
			ops = append(ops, Op{At: crashAt, Kind: Crash, Node: node})
			if downtime >= 0 {
				if recoverAt := crashAt + downtime; recoverAt <= env.End() {
					ops = append(ops, Op{At: recoverAt, Kind: Recover, Node: node})
				}
			}
		}
	}
	SortOps(ops)
	return NewExplicit(ops)
}

// subChurnGen lazily interleaves the Poisson unsubscribe stream with
// the resubscriptions it spawns. Pending resubscriptions form a FIFO
// (fixed Resub delay keeps it time-ordered), so memory stays bounded by
// Rate x Resub, independent of run length.
type subChurnGen struct {
	env       Env
	rate      float64
	resub     time.Duration
	nextUnsub time.Duration
	unsubDone bool
	pending   []Op
}

func (g *subChurnGen) advance() {
	gap := time.Duration(g.env.Rand.ExpFloat64() / g.rate * float64(time.Second))
	g.nextUnsub += gap
	if g.nextUnsub >= g.env.End() {
		g.unsubDone = true
	}
}

func (g *subChurnGen) Next() (Op, bool) {
	for {
		if len(g.pending) > 0 && (g.unsubDone || g.pending[0].At <= g.nextUnsub) {
			op := g.pending[0]
			g.pending = g.pending[1:]
			return op, true
		}
		if g.unsubDone {
			return Op{}, false
		}
		at := g.nextUnsub
		node := g.env.Rand.Intn(g.env.Nodes)
		g.advance()
		if g.resub >= 0 {
			if resubAt := at + g.resub; resubAt <= g.env.End() {
				g.pending = append(g.pending, Op{At: resubAt, Kind: Subscribe, Node: node})
			}
		}
		// The zero topic resolves to the scenario's event topic.
		return Op{At: at, Kind: Unsubscribe, Node: node}, true
	}
}

func init() {
	RegisterWorkload(Definition{
		Name:        "churn-nodes",
		Description: "waves of staggered node crashes with optional recovery (coverage loss, power cycling)",
		Class:       ClassChurn,
		Params:      NodeChurnParams{},
		New: func(p Params, env Env) (Generator, error) {
			return newNodeChurn(p.(NodeChurnParams), env), nil
		},
	})
	RegisterWorkload(Definition{
		Name:        "churn-subs",
		Description: "Poisson subscription flips: drop the event topic, resubscribe after a delay",
		Class:       ClassChurn,
		Params:      SubChurnParams{},
		New: func(p Params, env Env) (Generator, error) {
			pp := p.(SubChurnParams)
			rate := defFloat(pp.Rate, 0.1)
			resub := pp.Resub
			if resub == 0 {
				resub = 15 * time.Second
			}
			if rate <= 0 || env.Nodes <= 0 {
				return NewExplicit(nil), nil
			}
			g := &subChurnGen{env: env, rate: rate, resub: resub, nextUnsub: env.Start()}
			g.advance() // the first flip arrives one exponential gap in
			return g, nil
		},
	})
}
