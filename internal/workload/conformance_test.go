package workload_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/topic"
	"repro/internal/workload"
)

// The conformance suite (modeled on internal/proto's chaos suite) is
// the contract every registered generator must honor with its default
// params, for any seed:
//
//   - determinism: identical (params, Env seed) produce identical op
//     streams;
//   - monotonicity: op times are non-decreasing;
//   - bounds: every op lies within [0, Warmup+Measure], node indices
//     lie in [0, Nodes) (-1 only on Publish), publishes carry a
//     positive validity;
//   - termination: the stream is finite (the runner pulls until
//     exhaustion);
//   - liveness: traffic generators emit at least one publication and
//     churn generators at least one op over a two-minute window.
//
// The suite is table-driven over the registry, so a newly registered
// generator is enrolled automatically.

// confEnv is the suite's reference environment.
func confEnv(seed int64) workload.Env {
	return workload.Env{
		Nodes:      20,
		Rand:       rand.New(rand.NewSource(seed)),
		Warmup:     10 * time.Second,
		Measure:    120 * time.Second,
		EventTopic: topic.MustParse(".app.news"),
	}
}

// drain pulls the full stream, failing the test if it exceeds cap ops
// (a runaway generator must not hang the suite).
func drain(t *testing.T, gen workload.Generator, cap int) []workload.Op {
	t.Helper()
	var ops []workload.Op
	for {
		op, ok := gen.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
		if len(ops) > cap {
			t.Fatalf("generator emitted more than %d ops without terminating", cap)
		}
	}
}

func TestWorkloadConformance(t *testing.T) {
	defs := workload.Workloads()
	if len(defs) < 8 {
		t.Fatalf("only %d generators registered; explicit, mix, the four arrival processes and both churn kinds must be wired in", len(defs))
	}
	for _, def := range defs {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				env := confEnv(seed)
				gen, err := def.New(def.Params, env)
				if err != nil {
					t.Fatalf("factory with default params failed: %v", err)
				}
				ops := drain(t, gen, 1<<21)

				var pubs, churn int
				for i, op := range ops {
					if i > 0 && op.At < ops[i-1].At {
						t.Fatalf("seed %d: op %d at %v after %v (non-monotone)", seed, i, op.At, ops[i-1].At)
					}
					if op.At < 0 || op.At > env.End() {
						t.Fatalf("seed %d: op %d at %v outside [0, %v]", seed, i, op.At, env.End())
					}
					min := 0
					if op.Kind == workload.Publish {
						min = -1
						pubs++
						if op.Validity <= 0 {
							t.Fatalf("seed %d: publish %d without validity", seed, i)
						}
					} else {
						churn++
					}
					if op.Node < min || op.Node >= env.Nodes {
						t.Fatalf("seed %d: op %d (%v) node %d out of [%d, %d)", seed, i, op.Kind, op.Node, min, env.Nodes)
					}
				}
				switch def.Class {
				case workload.ClassTraffic:
					if pubs == 0 {
						t.Fatalf("seed %d: traffic generator emitted no publications", seed)
					}
				case workload.ClassChurn:
					if churn == 0 {
						t.Fatalf("seed %d: churn generator emitted no dynamics", seed)
					}
				}

				// Determinism: an identical build replays the stream.
				gen2, err := def.New(def.Params, confEnv(seed))
				if err != nil {
					t.Fatalf("second factory build failed: %v", err)
				}
				ops2 := drain(t, gen2, 1<<21)
				if len(ops) != len(ops2) {
					t.Fatalf("seed %d: replay emitted %d ops, first run %d", seed, len(ops2), len(ops))
				}
				for i := range ops {
					if ops[i] != ops2[i] {
						t.Fatalf("seed %d: op %d differs across identical builds:\n%+v\n%+v", seed, i, ops[i], ops2[i])
					}
				}
			}
		})
	}
}

// TestWorkloadConformanceTinyRoster re-runs the bounds half on a
// one-node roster: node-picking generators must not index out of
// range, whatever the roster size.
func TestWorkloadConformanceTinyRoster(t *testing.T) {
	for _, def := range workload.Workloads() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			env := confEnv(3)
			env.Nodes = 1
			gen, err := def.New(def.Params, env)
			if err != nil {
				t.Fatalf("factory failed on 1-node roster: %v", err)
			}
			for i, op := range drain(t, gen, 1<<21) {
				min := 0
				if op.Kind == workload.Publish {
					min = -1
				}
				if op.Node < min || op.Node >= 1 {
					t.Fatalf("op %d (%v) node %d out of range on 1-node roster", i, op.Kind, op.Node)
				}
			}
		})
	}
}
