// Package workload is the workload layer: named, parameterized
// generators that lazily synthesize a scenario's dynamics — publication
// traffic, node lifecycle churn and subscription churn — from the run's
// seeded RNG instead of precomputed schedules.
//
// A Generator is a pull-based stream of timestamped Ops, consumed one
// op at a time by the simulation runner (internal/netsim), which arms
// exactly one engine callback ahead. Generation is therefore O(1)
// memory in the number of ops: a million-publication run never holds a
// million-element slice, and a run driven by a generator remains a pure
// function of (Scenario, Seed) because every draw comes from the
// Env.Rand stream the runner derives from the engine seed.
//
// The package mirrors internal/proto: a registry maps names to
// factories plus params schemas (RegisterWorkload / Workloads /
// LookupWorkload), netsim.Scenario selects a generator with a
// Spec{Name, Params} validated at Scenario.Validate time, and every
// registered generator is held to the conformance suite in this package
// (deterministic per seed, monotone in time, in-bounds for the run's
// horizon). See ARCHITECTURE.md "Adding a workload".
package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"repro/internal/registry"
	"repro/internal/topic"
)

// Kind is the type of one generated operation.
type Kind uint8

const (
	// Publish publishes one event.
	Publish Kind = iota
	// Crash fails a node; its state is lost.
	Crash
	// Recover restarts a crashed node with empty tables.
	Recover
	// Subscribe adds a subscription on a live node.
	Subscribe
	// Unsubscribe removes a subscription from a live node.
	Unsubscribe
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Publish:
		return "publish"
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Subscribe:
		return "subscribe"
	case Unsubscribe:
		return "unsubscribe"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one timestamped operation of a workload stream.
type Op struct {
	// At is the absolute instant from simulation start.
	At time.Duration
	// Kind selects the operation.
	Kind Kind
	// Node is the acting node index. On Publish, -1 publishes from a
	// random subscriber of the scenario's event topic (resolved by the
	// runner); every other kind requires an index in [0, Env.Nodes).
	Node int
	// Topic is the publication or (un)subscription topic; the zero
	// topic means the scenario's event topic.
	Topic topic.Topic
	// Validity is the published event's validity period (Publish only).
	Validity time.Duration
}

// Generator produces one workload stream: successive Next calls return
// ops with non-decreasing At until the stream is exhausted. Generators
// are single-use and not safe for concurrent use; the runner pulls one
// op ahead of the simulation clock.
type Generator interface {
	Next() (Op, bool)
}

// Env is the environment the runner supplies to a generator factory.
// Everything a generator touches outside its own params comes through
// here, which is what keeps a generated run a pure function of
// (Scenario, Seed).
type Env struct {
	// Nodes is the scenario roster size; generated node indices must
	// lie in [0, Nodes) (or be -1 on Publish ops).
	Nodes int
	// Rand is the generator's private RNG stream; generators must draw
	// all randomness from it.
	Rand *rand.Rand
	// Warmup and Measure are the scenario's windows. Generated ops must
	// lie within [0, Warmup+Measure]; traffic belongs in the
	// measurement window [Warmup, Warmup+Measure).
	Warmup, Measure time.Duration
	// EventTopic is the scenario's event topic — the topic subscribers
	// follow, and the parent under which TopicModel spreads subtopics.
	EventTopic topic.Topic
}

// Start returns the start of the measurement window.
func (e Env) Start() time.Duration { return e.Warmup }

// End returns the run's horizon: no op may be scheduled later.
func (e Env) End() time.Duration { return e.Warmup + e.Measure }

// Params carries a generator's scenario-level tuning. Each generator
// defines one concrete params type (its registered schema); a nil
// Params selects the generator's defaults. Params values must be plain
// data — copy-safe — because scenarios embedding them are copied freely
// by the experiment harness.
type Params interface {
	// Validate reports configuration errors. The zero value of a params
	// type must validate (it selects the generator's defaults).
	Validate() error
}

// Spec selects and tunes a workload generator by registry name: Name is
// the registered key and Params, when non-nil, must have the
// generator's registered params type (nil selects its defaults). The
// zero Spec selects no generator at all — in netsim that means the
// scenario's explicit Publications/Crashes/Resubscriptions lists alone
// drive the run.
type Spec struct {
	Name   string
	Params Params
}

// IsZero reports whether the spec selects no generator.
func (s Spec) IsZero() bool { return s.Name == "" }

// String implements fmt.Stringer: the registry name, or "explicit" for
// the zero spec (the compatibility path).
func (s Spec) String() string {
	if s.Name == "" {
		return "explicit"
	}
	return s.Name
}

// Validate checks the spec against the registry; the zero spec is
// valid.
func (s Spec) Validate() error {
	if s.IsZero() {
		return nil
	}
	return CheckParams(s.Name, s.Params)
}

// Factory builds one generator from its params and the runner-supplied
// environment. The registry guarantees p has the definition's schema
// type (or is the schema's zero value when the spec carried nil).
type Factory func(p Params, env Env) (Generator, error)

// Class groups generators for the catalogs and the exp "workloads"
// family.
type Class string

const (
	// ClassTraffic generators emit publications.
	ClassTraffic Class = "traffic"
	// ClassChurn generators emit node-lifecycle or subscription
	// dynamics (no publications of their own).
	ClassChurn Class = "churn"
	// ClassUtil generators are composition and compatibility helpers
	// (explicit, mix).
	ClassUtil Class = "util"
)

// Definition is a named, registered workload generator: the registry
// key, a one-line catalog description, a class, the params schema (the
// zero value of the concrete params type) and the factory. It mirrors
// proto.Definition and netsim.ScenarioDef.
type Definition struct {
	// Name is the registry key (e.g. "poisson", "flash-crowd").
	Name string
	// Description is a one-line summary for the catalog listing.
	Description string
	// Class groups the generator: traffic, churn or util.
	Class Class
	// Params is the schema: the zero value of the params type this
	// generator accepts.
	Params Params
	// New builds one generator instance.
	New Factory
}

var workloads = registry.New[Definition]("workload: generator")

// RegisterWorkload adds a definition to the registry. It panics on a
// duplicate name, missing metadata, or an invalid schema (registration
// happens at init time; a broken definition should fail loudly, not at
// first use).
func RegisterWorkload(d Definition) {
	if d.Name == "" || d.Description == "" {
		panic(fmt.Sprintf("workload: generator %q registered without name or description", d.Name))
	}
	if d.New == nil || d.Params == nil {
		panic(fmt.Sprintf("workload: generator %q registered without factory or params schema", d.Name))
	}
	switch d.Class {
	case ClassTraffic, ClassChurn, ClassUtil:
	default:
		panic(fmt.Sprintf("workload: generator %q registered with unknown class %q", d.Name, d.Class))
	}
	if err := d.Params.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generator %q schema zero value invalid: %v", d.Name, err))
	}
	workloads.Register(d.Name, d)
}

// Workloads returns every registered definition, sorted by name.
func Workloads() []Definition { return workloads.All() }

// WorkloadNames returns the sorted registered names.
func WorkloadNames() []string { return workloads.Names() }

// LookupWorkload finds a definition by name.
func LookupWorkload(name string) (Definition, bool) { return workloads.Lookup(name) }

// resolve is the single code path behind CheckParams and Build: it
// looks the name up and type-checks params against the registered
// schema, substituting the schema's zero value (the generator's
// defaults) when params is nil.
func resolve(name string, p Params) (Definition, Params, error) {
	def, ok := LookupWorkload(name)
	if !ok {
		return Definition{}, nil, fmt.Errorf("workload: unknown generator %q (registered: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
	if p == nil {
		return def, def.Params, nil
	}
	if got, want := reflect.TypeOf(p), reflect.TypeOf(def.Params); got != want {
		return Definition{}, nil, fmt.Errorf("workload: generator %q params are %v, want %v", name, got, want)
	}
	return def, p, nil
}

// CheckParams validates a (name, params) spec against the registry:
// the name must be registered, and params — when non-nil — must have
// the registered schema type and validate. This is what
// netsim.Scenario.Validate calls for its WorkloadSpec.
func CheckParams(name string, p Params) error {
	_, resolved, err := resolve(name, p)
	if err != nil {
		return err
	}
	return resolved.Validate()
}

// Build resolves name and constructs one generator: the factory
// receives p, or the schema's zero value when p is nil.
func Build(name string, p Params, env Env) (Generator, error) {
	def, resolved, err := resolve(name, p)
	if err != nil {
		return nil, err
	}
	return def.New(resolved, env)
}
