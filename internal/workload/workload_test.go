package workload_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func op(at time.Duration, kind workload.Kind, node int) workload.Op {
	o := workload.Op{At: at, Kind: kind, Node: node}
	if kind == workload.Publish {
		o.Validity = time.Minute
	}
	return o
}

func TestMergeTimeOrderedStableTies(t *testing.T) {
	a := workload.NewExplicit([]workload.Op{
		op(1*time.Second, workload.Publish, -1),
		op(5*time.Second, workload.Crash, 1),
	})
	b := workload.NewExplicit([]workload.Op{
		op(1*time.Second, workload.Recover, 2),
		op(3*time.Second, workload.Publish, -1),
	})
	got := make([]workload.Op, 0, 4)
	m := workload.Merge(a, b)
	for {
		o, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, o)
	}
	if len(got) != 4 {
		t.Fatalf("merged %d ops, want 4", len(got))
	}
	// The 1 s tie goes to the earlier-listed generator (a's publish).
	if got[0].Kind != workload.Publish || got[1].Kind != workload.Recover {
		t.Fatalf("tie broken against the earlier generator: %+v", got[:2])
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("merge not time-ordered: %v after %v", got[i].At, got[i-1].At)
		}
	}
}

func TestExplicitParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		ops  []workload.Op
		want string // substring of the error; "" = valid
	}{
		{"empty", nil, ""},
		{"sorted", []workload.Op{op(1*time.Second, workload.Publish, -1), op(2*time.Second, workload.Crash, 0)}, ""},
		{"unsorted", []workload.Op{op(2*time.Second, workload.Crash, 0), op(1*time.Second, workload.Publish, -1)}, "not sorted"},
		{"negative time", []workload.Op{op(-time.Second, workload.Crash, 0)}, "negative time"},
		{"publish without validity", []workload.Op{{At: time.Second, Kind: workload.Publish, Node: -1}}, "without validity"},
		{"negative node", []workload.Op{op(time.Second, workload.Crash, -1)}, "negative node"},
	}
	for _, tc := range cases {
		err := workload.ExplicitParams{Ops: tc.ops}.Validate()
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecAndMixValidation(t *testing.T) {
	if err := (workload.Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	if err := (workload.Spec{Name: "no-such"}).Validate(); err == nil || !strings.Contains(err.Error(), "unknown generator") {
		t.Fatalf("unknown name accepted: %v", err)
	}
	// Schema type mismatch is caught at validation, not at build.
	err := workload.CheckParams("poisson", workload.PeriodicParams{})
	if err == nil || !strings.Contains(err.Error(), "params are") {
		t.Fatalf("mismatched params accepted: %v", err)
	}
	err = workload.MixParams{Parts: []workload.Spec{{Name: "mix"}}}.Validate()
	if err == nil || !strings.Contains(err.Error(), "nests mix") {
		t.Fatalf("nested mix accepted: %v", err)
	}
	err = workload.MixParams{Parts: []workload.Spec{{}}}.Validate()
	if err == nil {
		t.Fatal("unnamed mix part accepted")
	}
	ok := workload.MixParams{Parts: []workload.Spec{
		{Name: "poisson", Params: workload.PoissonParams{Rate: 1}},
		{Name: "churn-nodes"},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
}

func TestBadParamsRejected(t *testing.T) {
	bad := []workload.Params{
		workload.PoissonParams{Rate: -1},
		workload.PoissonParams{Topics: workload.TopicModel{ZipfS: 0.5}},
		workload.PoissonParams{Topics: workload.TopicModel{Spread: -1}},
		workload.PeriodicParams{Period: time.Second, Jitter: 2 * time.Second},
		workload.FlashCrowdParams{PeakRate: -1},
		workload.DiurnalParams{MinRate: 5, MaxRate: 1},
		workload.NodeChurnParams{Fraction: 1.5},
		workload.SubChurnParams{Rate: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d (%T %+v) validated", i, p, p)
		}
	}
}

// TestZipfTopicSkew pins the Zipf-vs-uniform popularity contract: with
// ZipfS set, the head topic dominates; with uniform popularity, no
// topic does.
func TestZipfTopicSkew(t *testing.T) {
	count := func(zipfS float64) map[string]int {
		env := workload.Env{
			Nodes:   10,
			Rand:    rand.New(rand.NewSource(5)),
			Measure: 2000 * time.Second,
		}
		gen, err := workload.Build("poisson", workload.PoissonParams{
			Rate:   1,
			Topics: workload.TopicModel{Spread: 8, ZipfS: zipfS},
		}, env)
		if err != nil {
			t.Fatal(err)
		}
		freq := make(map[string]int)
		total := 0
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if op.Topic.IsZero() {
				t.Fatal("spread topic model emitted the zero topic")
			}
			if !strings.HasPrefix(op.Topic.String(), ".") {
				t.Fatalf("malformed topic %v", op.Topic)
			}
			freq[op.Topic.String()]++
			total++
		}
		if total < 500 {
			t.Fatalf("only %d publications generated", total)
		}
		return freq
	}
	zipf := count(2.0)
	if max := maxFreq(zipf); float64(max.n) < 0.4*float64(sum(zipf)) {
		t.Fatalf("Zipf(2) head topic only %d of %d publications", max.n, sum(zipf))
	}
	uniform := count(0)
	if len(uniform) != 8 {
		t.Fatalf("uniform spread used %d of 8 topics", len(uniform))
	}
	if max := maxFreq(uniform); float64(max.n) > 0.3*float64(sum(uniform)) {
		t.Fatalf("uniform head topic %d of %d publications (too skewed)", max.n, sum(uniform))
	}
}

type freq struct {
	topic string
	n     int
}

func maxFreq(m map[string]int) freq {
	var best freq
	for tp, n := range m {
		if n > best.n {
			best = freq{tp, n}
		}
	}
	return best
}

func sum(m map[string]int) int {
	total := 0
	for _, n := range m {
		total += n
	}
	return total
}

// TestGenerationFlatMemory is the O(1)-memory contract: pulling a
// million lazily generated publications must not allocate per op (no
// precomputed op slices anywhere on the path).
func TestGenerationFlatMemory(t *testing.T) {
	const rate, horizon = 1000.0, 1000 * time.Second // ~1e6 arrivals
	env := workload.Env{
		Nodes:   100,
		Rand:    rand.New(rand.NewSource(9)),
		Measure: horizon,
	}
	var total int
	allocs := testing.AllocsPerRun(1, func() {
		gen, err := workload.Build("poisson", workload.PoissonParams{Rate: rate}, env)
		if err != nil {
			t.Fatal(err)
		}
		total = 0
		for {
			_, ok := gen.Next()
			if !ok {
				break
			}
			total++
		}
	})
	if total < 900_000 {
		t.Fatalf("generated only %d publications, want ~1e6", total)
	}
	if allocs > 100 {
		t.Fatalf("generating %d publications allocated %v times; generation must be O(1) memory", total, allocs)
	}
}
