package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistZeroValue(t *testing.T) {
	var h LogHist
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("zero LogHist not neutral: %+v", h)
	}
	h.Add(-1) // ignored
	h.Add(math.NaN())
	if h.N() != 0 {
		t.Fatal("negative/NaN sample was folded")
	}
}

func TestLogHistExactMoments(t *testing.T) {
	var h LogHist
	xs := []float64{0.001, 0.5, 2.5, 0.02, 7}
	sum := 0.0
	for _, x := range xs {
		h.Add(x)
		sum += x
	}
	if h.N() != len(xs) {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Sum()-sum) > 1e-12 || math.Abs(h.Mean()-sum/5) > 1e-12 {
		t.Fatalf("sum/mean = %v/%v, want %v/%v", h.Sum(), h.Mean(), sum, sum/5)
	}
	if h.Min() != 0.001 || h.Max() != 7 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestLogHistQuantileError checks the documented relative error bound
// against the exact sort-based Quantile over a lognormal-ish sample.
func TestLogHistQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var h LogHist
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.2 - 1) // median ~0.37 s
		h.Add(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.06 {
			t.Fatalf("q=%v: est %v vs exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("extreme quantiles should pin to min/max")
	}
}

// TestLogHistMerge checks that merging partial histograms equals
// folding the union, the mergeable-accumulator contract.
func TestLogHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var whole, a, b LogHist
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64())
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	// Buckets, count and extremes merge exactly; sum only up to float
	// addition order.
	if a.buckets != whole.buckets || a.count != whole.count ||
		a.min != whole.min || a.max != whole.max {
		t.Fatal("merged histogram differs from whole-sample histogram")
	}
	if math.Abs(a.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum %v vs whole %v", a.Sum(), whole.Sum())
	}
	var empty LogHist
	empty.Merge(whole)
	if empty != whole {
		t.Fatal("merge into zero value differs")
	}
	before := a
	a.Merge(LogHist{})
	if a != before {
		t.Fatal("merging the zero value changed the histogram")
	}
}

func TestLogHistOutOfRangeClamps(t *testing.T) {
	var h LogHist
	h.Add(1e-9) // below base: bucket 0
	h.Add(1e9)  // above top edge: last bucket
	if h.N() != 2 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Quantile(0.0) != 1e-9 || h.Quantile(1.0) != 1e9 {
		t.Fatalf("clamped extremes lost: %v %v", h.Quantile(0), h.Quantile(1))
	}
}
