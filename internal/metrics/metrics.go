// Package metrics provides the statistics plumbing for the experiment
// harness: streaming mean/deviation accumulators, multi-seed aggregation
// and plain-text table rendering in the shape of the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Agg is a streaming aggregator (Welford's algorithm). The zero value is
// ready to use.
type Agg struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the aggregate.
func (a *Agg) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Agg) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Agg) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Agg) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the unbiased sample standard deviation.
func (a *Agg) Std() float64 { return math.Sqrt(a.Var()) }

// Mean averages a slice; it returns 0 for empty input.
func Mean(xs []float64) float64 {
	var a Agg
	for _, x := range xs {
		a.Add(x)
	}
	return a.Mean()
}

// Std returns the unbiased standard deviation of a slice.
func Std(xs []float64) float64 {
	var a Agg
	for _, x := range xs {
		a.Add(x)
	}
	return a.Std()
}

// Table is a simple aligned text table, used to print the paper's
// figure/table data.
type Table struct {
	Title string
	Cols  []string
	rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Cols))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i.
func (t *Table) Row(i int) []string { return t.rows[i] }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a ratio as a percentage with one decimal, e.g. 0.769 ->
// "76.9%".
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// F1 formats a float with one decimal.
func F1(x float64) string { return fmt.Sprintf("%.1f", x) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// KB formats a byte count as kilobytes with one decimal.
func KB(bytes float64) string { return fmt.Sprintf("%.1fkB", bytes/1000) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
