package metrics

import (
	"encoding/binary"
	"io"
	"math"
)

// logHistBuckets is the fixed bucket count of LogHist. With 8 buckets
// per octave, bucket boundaries grow by 2^(1/8) (~9%), so quantile
// estimates carry at most half that relative error within a bucket.
const logHistBuckets = 176

// logHistBase is the lower edge of bucket 0 in sample units: 0.1 ms
// for latencies in seconds. 176 buckets at 8/octave span 22 octaves,
// 1e-4 .. ~420 s — wider than any scenario's validity window.
const logHistBase = 1e-4

// logHistPerOctave is the bucket resolution.
const logHistPerOctave = 8

// LogHist is a streaming log-bucketed histogram with fixed memory: a
// value-type accumulator of counts in geometrically growing buckets
// plus exact count/sum/min/max. Unlike Quantile (which sorts a
// materialized sample slice) it folds samples in at O(1) space, and two
// histograms merge bucket-wise — the shape netsim's streaming result
// aggregation needs to keep delivery-latency percentiles while result
// memory stays flat in roster size. The zero value is ready to use,
// and values compare/copy as plain structs.
type LogHist struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  [logHistBuckets]uint32
}

// logHistBucket maps a sample to its bucket, clamping below base into
// bucket 0 and above the top edge into the last bucket.
func logHistBucket(v float64) int {
	if v <= logHistBase {
		return 0
	}
	b := int(math.Log2(v/logHistBase) * logHistPerOctave)
	if b < 0 {
		return 0
	}
	if b >= logHistBuckets {
		return logHistBuckets - 1
	}
	return b
}

// Add folds sample v into the histogram. Negative and NaN samples are
// ignored (latencies cannot be negative; a NaN would poison sum).
func (h *LogHist) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[logHistBucket(v)]++
}

// Merge folds other into h bucket-wise.
func (h *LogHist) Merge(other LogHist) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// N returns the number of folded samples.
func (h *LogHist) N() int { return int(h.count) }

// Sum returns the exact sum of folded samples.
func (h *LogHist) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (0 with no samples).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest folded sample (0 with no samples).
func (h *LogHist) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest folded sample (0 with no samples).
func (h *LogHist) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// WriteBinary writes the histogram's exact state to w in a fixed
// little-endian layout (count, sum, min, max, buckets), so result
// fingerprints can cover the streaming latency aggregate bit-for-bit.
func (h *LogHist) WriteBinary(w io.Writer) error {
	for _, v := range []any{h.count, h.sum, h.min, h.max, h.buckets} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the q-th sample and returning the bucket's geometric
// midpoint, clamped to the observed min/max so estimates never leave
// the sample range. Relative error is bounded by the bucket growth
// factor (~±4.5%). It returns 0 with no samples.
func (h *LogHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += uint64(c)
		if seen > rank {
			lo := logHistBase * math.Pow(2, float64(i)/logHistPerOctave)
			hi := lo * math.Pow(2, 1.0/logHistPerOctave)
			if i == 0 {
				lo = 0 // bucket 0 also holds the sub-base samples
			}
			mid := (lo + hi) / 2
			return math.Min(math.Max(mid, h.min), h.max)
		}
	}
	return h.max
}
