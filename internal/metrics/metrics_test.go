package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAggBasics(t *testing.T) {
	var a Agg
	if a.N() != 0 || a.Mean() != 0 || a.Std() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Known dataset: population sd = 2, sample sd = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(a.Std()-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", a.Std(), want)
	}
}

func TestAggSingleSample(t *testing.T) {
	var a Agg
	a.Add(42)
	if a.Mean() != 42 || a.Std() != 0 {
		t.Fatalf("single sample: mean=%v std=%v", a.Mean(), a.Std())
	}
}

func TestMeanStdHelpers(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty slice helpers should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestAggMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		var a Agg
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
			a.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		naiveStd := math.Sqrt(varSum / float64(n-1))
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Std()-naiveStd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "speed", "reliability")
	tb.AddRow("10", "95.0%")
	tb.AddRow("30", "99.9%")
	out := tb.String()
	if !strings.Contains(out, "Fig X") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "10") || !strings.Contains(lines[3], "95.0%") {
		t.Fatalf("row wrong: %q", lines[3])
	}
	if tb.NumRows() != 2 || tb.Row(1)[0] != "30" {
		t.Fatal("accessors wrong")
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if got := len(tb.Row(0)); got != 3 {
		t.Fatalf("row len = %d, want 3", got)
	}
	_ = tb.String() // must not panic
}

func TestFormatters(t *testing.T) {
	if Pct(0.769) != "76.9%" {
		t.Fatalf("Pct = %q", Pct(0.769))
	}
	if F1(3.14159) != "3.1" || F2(3.14159) != "3.14" {
		t.Fatal("float formatters wrong")
	}
	if KB(123456) != "123.5kB" {
		t.Fatalf("KB = %q", KB(123456))
	}
}
