package metrics

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the common "type 7" estimator).
// It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram buckets samples into fixed-width bins for quick textual
// distribution summaries.
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
	n        int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max). Out-of-range samples are tracked separately.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if max <= min {
		max = min + 1
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add folds one sample into the histogram.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N returns the total number of samples including out-of-range ones.
func (h *Histogram) N() int { return h.n }

// OutOfRange returns the counts below Min and at/above Max.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Bucket returns the [lo, hi) bounds of bin i.
func (h *Histogram) Bucket(i int) (lo, hi float64) {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + float64(i)*w, h.Min + float64(i+1)*w
}
