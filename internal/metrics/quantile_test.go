package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.125, 1.5}, // interpolated
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty input should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single sample = %v", got)
	}
	// Out-of-range q clamps.
	if got := Quantile([]float64{1, 2}, -1); got != 1 {
		t.Fatalf("q<0 = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 2); got != 2 {
		t.Fatalf("q>1 = %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < sorted[0]-1e-9 || v > sorted[n-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range = %d,%d, want 1,2", under, over)
	}
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10)
	want := []int{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	lo, hi := h.Bucket(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("Bucket(1) = [%v,%v)", lo, hi)
	}
}

func TestHistogramDegenerateConfig(t *testing.T) {
	h := NewHistogram(5, 5, 0) // max<=min and bins<1 both repaired
	h.Add(5)
	if h.N() != 1 {
		t.Fatal("degenerate histogram unusable")
	}
}
