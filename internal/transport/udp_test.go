package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topic"
)

// collect gathers messages from a transport handler.
type collect struct {
	mu   sync.Mutex
	msgs []event.Message
}

func (c *collect) handle(m event.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newPair(t *testing.T) (*UDP, *UDP, *collect, *collect) {
	t.Helper()
	var ca, cb collect
	a, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: ca.handle})
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: cb.handle})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	return a, b, &ca, &cb
}

func TestUDPBasicExchange(t *testing.T) {
	a, _, _, cb := newPair(t)
	a.Broadcast(event.Heartbeat{
		From:          1,
		Subscriptions: []topic.Topic{topic.MustParse(".t")},
		Speed:         3,
	})
	waitFor(t, func() bool { return cb.count() == 1 }, "heartbeat at b")
	cb.mu.Lock()
	hb, ok := cb.msgs[0].(event.Heartbeat)
	cb.mu.Unlock()
	if !ok || hb.From != 1 || hb.Speed != 3 {
		t.Fatalf("got %+v", cb.msgs[0])
	}
	// Sends are asynchronous: the writer's counter update may trail the
	// receiver's delivery by an instant.
	waitFor(t, func() bool { return a.Stats().DatagramsSent == 1 }, "sender counter")
}

func TestUDPSelfPeerFiltered(t *testing.T) {
	var c collect
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: c.handle})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	u.Start()
	if err := u.AddPeer(u.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	u.Broadcast(event.Heartbeat{From: 1})
	time.Sleep(50 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("node received its own broadcast")
	}
	if s := u.Stats(); s.DatagramsSent != 0 {
		t.Fatal("self peer was not filtered")
	}
}

func TestUDPDuplicatePeerIgnored(t *testing.T) {
	a, b, _, cb := newPair(t)
	// Adding b again must not double deliveries.
	if err := a.AddPeer(b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	a.Broadcast(event.IDList{From: 1})
	waitFor(t, func() bool { return cb.count() >= 1 }, "idlist at b")
	time.Sleep(50 * time.Millisecond)
	if cb.count() != 1 {
		t.Fatalf("b received %d copies, want 1", cb.count())
	}
}

func TestUDPDecodeErrorsCounted(t *testing.T) {
	var errs []error
	var mu sync.Mutex
	var c collect
	u, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Handler: c.handle,
		OnError: func(e error) { mu.Lock(); errs = append(errs, e); mu.Unlock() },
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	u.Start()
	// Throw garbage at the socket.
	peer, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	raw := []byte{0xff, 0x01, 0x02}
	if _, err := peer.conn.WriteTo(raw, u.conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return u.Stats().DecodeErrors == 1 }, "decode error")
	if c.count() != 0 {
		t.Fatal("garbage delivered as message")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 {
		t.Fatalf("OnError called %d times", len(errs))
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	u.Start()
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	u.Broadcast(event.Heartbeat{From: 1}) // must not panic after close
	u.Start()                             // must not leak a goroutine on a closed socket
}

// TestUDPStartCloseRace drives Start, Close, and Broadcast concurrently:
// either the loops never start (Close won) or they start and Close stops
// them — but Close must never return with a loop still coming up, the
// WaitGroup Add/Wait ordering must hold under the race detector, and a
// Broadcast in flight during Close must neither panic nor deadlock the
// writer shutdown.
func TestUDPStartCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}})
		if err != nil {
			t.Skipf("UDP unavailable: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); u.Start() }()
		go func() { defer wg.Done(); u.Close() }()
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				u.Broadcast(event.Heartbeat{From: event.NodeID(j)})
			}
		}()
		wg.Wait()
		if err := u.Close(); err != nil {
			t.Fatal(err)
		}
		u.Broadcast(event.Heartbeat{From: 99}) // post-close enqueue must stay safe
	}
}

func TestUDPCloseWithoutStart(t *testing.T) {
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUDPStartGatesHandler pins the constructor/Start split: no handler
// invocation may happen before Start, so callers can wire state the
// handler reads after NewUDP returns (the data race this split fixes).
func TestUDPStartGatesHandler(t *testing.T) {
	var c collect
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: c.handle})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	sender, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if err := sender.AddPeer(u.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	sender.Broadcast(event.Heartbeat{From: 9})
	time.Sleep(50 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("handler invoked before Start")
	}
	u.Start()
	waitFor(t, func() bool { return c.count() == 1 }, "queued datagram after Start")
}

func TestUDPConfigValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Peers:   []string{"not an address"},
		Handler: func(event.Message) {},
	}); err == nil {
		t.Fatal("bad peer accepted")
	}
	h := func(event.Message) {}
	if _, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: h, SendQueue: -1}); err == nil {
		t.Fatal("negative SendQueue accepted")
	}
	if _, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: h, RecvQueue: -1}); err == nil {
		t.Fatal("negative RecvQueue accepted")
	}
	if _, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: h, FlushInterval: -time.Second}); err == nil {
		t.Fatal("negative FlushInterval accepted")
	}
}

// TestUDPSendRingOverflowDropsOldest pins the backpressure contract of
// the send ring: with the writer parked, queuing past SendQueue evicts
// the OLDEST messages, counts them in Stats.Dropped, and — once the
// writer runs — delivers exactly the surviving newest window.
func TestUDPSendRingOverflowDropsOldest(t *testing.T) {
	const (
		queue = 8
		extra = 3
	)
	var c collect
	recv, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: c.handle})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer recv.Close()
	recv.Start()
	// Writer deliberately not started: enqueue semantics in isolation.
	u, err := newUDP(UDPConfig{
		Listen:    "127.0.0.1:0",
		Peers:     []string{recv.LocalAddr().String()},
		Handler:   func(event.Message) {},
		SendQueue: queue,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < queue+extra; i++ {
		u.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	if got := u.Stats().Dropped; got != extra {
		t.Fatalf("Dropped = %d, want %d", got, extra)
	}
	// Releasing the writer must drain exactly the newest `queue` window:
	// messages extra..queue+extra-1.
	u.startWriter()
	waitFor(t, func() bool { return c.count() == queue }, "surviving window at receiver")
	time.Sleep(50 * time.Millisecond)
	if c.count() != queue {
		t.Fatalf("receiver got %d messages, want %d", c.count(), queue)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[event.NodeID]bool{}
	for _, m := range c.msgs {
		seen[m.(event.IDList).From] = true
	}
	for i := extra; i < queue+extra; i++ {
		if !seen[event.NodeID(i)] {
			t.Fatalf("newest message %d evicted; survivors: %v", i, seen)
		}
	}
}

// TestUDPDispatchOverflow pins the receive-side contract: a handler
// stuck on one message must not stall socket reads — the flood lands in
// the dispatch ring, overflow evicts the oldest queued datagrams with
// Stats.RecvDropped accounting, and releasing the handler delivers the
// surviving newest window.
func TestUDPDispatchOverflow(t *testing.T) {
	const (
		queue = 4
		extra = 3
	)
	release := make(chan struct{})
	var c collect
	first := true
	recv, err := NewUDP(UDPConfig{
		Listen: "127.0.0.1:0",
		Handler: func(m event.Message) {
			if first {
				first = false // dispatcher is single-goroutine: no lock needed
				<-release
			}
			c.handle(m)
		},
		RecvQueue: queue,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer recv.Close()
	recv.Start()
	sender, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Peers:   []string{recv.LocalAddr().String()},
		Handler: func(event.Message) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	// Message 0 occupies the handler...
	sender.Broadcast(event.IDList{From: 0})
	waitFor(t, func() bool { return recv.Stats().DatagramsReceived == 1 }, "handler occupied")
	// ...and the flood overflows the ring by `extra`.
	for i := 1; i <= queue+extra; i++ {
		sender.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	waitFor(t, func() bool { return recv.Stats().RecvDropped == extra }, "dispatch-ring evictions")
	close(release)
	waitFor(t, func() bool { return c.count() == 1+queue }, "survivors after release")
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[event.NodeID]bool{}
	for _, m := range c.msgs {
		seen[m.(event.IDList).From] = true
	}
	if !seen[0] || !seen[event.NodeID(queue+extra)] {
		t.Fatalf("first and newest messages must survive; got %v", seen)
	}
}

// TestUDPBroadcastNotBlockedByUnreadPeer is the head-of-line regression
// test: a peer that never reads its socket must not slow Broadcast or
// starve other peers — the protocol layer only ever pays the enqueue
// cost.
func TestUDPBroadcastNotBlockedByUnreadPeer(t *testing.T) {
	const n = 200
	// A bound-but-never-read socket.
	dead, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer dead.Close()
	var c collect
	live, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: c.handle})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	live.Start()
	sender, err := NewUDP(UDPConfig{
		Listen:    "127.0.0.1:0",
		Peers:     []string{dead.LocalAddr().String(), live.LocalAddr().String()},
		Handler:   func(event.Message) {},
		SendQueue: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		sender.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("%d Broadcasts took %v; protocol layer is being blocked", n, took)
	}
	waitFor(t, func() bool { return c.count() == n }, "live peer deliveries")
	if got := sender.Stats().Dropped; got != 0 {
		t.Fatalf("send ring dropped %d with adequate capacity", got)
	}
}

// TestUDPBatchCoalescing pins the flush-tick behaviour: broadcasts
// issued within one FlushInterval ride the same writer wakeup, so the
// batch counter stays far below the message count while every message
// is still delivered.
func TestUDPBatchCoalescing(t *testing.T) {
	const n = 10
	var c collect
	recv, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: c.handle})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer recv.Close()
	recv.Start()
	sender, err := NewUDP(UDPConfig{
		Listen:        "127.0.0.1:0",
		Peers:         []string{recv.LocalAddr().String()},
		Handler:       func(event.Message) {},
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	for i := 0; i < n; i++ {
		sender.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	waitFor(t, func() bool { return c.count() == n }, "all coalesced messages")
	s := sender.Stats()
	if s.Batches == 0 || s.Batches > n/2 {
		t.Fatalf("Batches = %d for %d messages; flush coalescing is not happening", s.Batches, n)
	}
}

// TestUDPBroadcastZeroAlloc pins the pooled fast path: once every ring
// slot has grown to its working size, Broadcast performs zero heap
// allocations. The writer is parked on a distant flush tick so the
// measurement sees the pure enqueue cost the protocol layer pays.
func TestUDPBroadcastZeroAlloc(t *testing.T) {
	u, err := NewUDP(UDPConfig{
		Listen:        "127.0.0.1:0",
		Handler:       func(event.Message) {},
		SendQueue:     64,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	var msg event.Message = event.Heartbeat{
		From:          3,
		Speed:         1.5,
		Subscriptions: []topic.Topic{topic.MustParse(".zero.alloc")},
	}
	// Warm every slot buffer once around the ring.
	for i := 0; i < 64; i++ {
		u.Broadcast(msg)
	}
	if n := testing.AllocsPerRun(200, func() { u.Broadcast(msg) }); n != 0 {
		t.Fatalf("Broadcast allocated %.1f times/op on the warm path, want 0", n)
	}
}

// wallSched is a real-time core.Scheduler for the end-to-end test.
type wallSched struct{ start time.Time }

func (w wallSched) Now() time.Duration { return time.Since(w.start) }
func (w wallSched) After(d time.Duration, fn func()) core.Timer {
	return wallTimer{time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

// TestUDPEndToEnd runs the full frugal protocol between three processes
// over real UDP sockets: discovery via heartbeats, id exchange, event
// dissemination — the complete paper pipeline on an actual network
// stack.
func TestUDPEndToEnd(t *testing.T) {
	news := topic.MustParse(".net.news")
	sched := wallSched{start: time.Now()}

	type nodeT struct {
		udp   *UDP
		proto *core.Safe
		got   chan event.Event
	}
	nodes := make([]*nodeT, 3)
	for i := range nodes {
		n := &nodeT{got: make(chan event.Event, 8)}
		udp, err := NewUDP(UDPConfig{
			Listen:  "127.0.0.1:0",
			Handler: func(m event.Message) { _ = n.proto.HandleMessage(m) },
		})
		if err != nil {
			t.Skipf("UDP unavailable: %v", err)
		}
		t.Cleanup(func() { udp.Close() })
		n.udp = udp
		proto, err := core.NewSafe(core.Config{
			ID:           event.NodeID(i),
			HBDelay:      100 * time.Millisecond,
			HBUpperBound: 100 * time.Millisecond,
			OnDeliver:    func(ev event.Event) { n.got <- ev },
		}, sched, udp)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proto.Stop)
		n.proto = proto
		// Only now that n.proto is wired may the read loop run.
		udp.Start()
		nodes[i] = n
	}
	// Full mesh.
	for _, a := range nodes {
		for _, b := range nodes {
			if err := a.udp.AddPeer(b.udp.LocalAddr().String()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		if err := n.proto.Subscribe(news); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for discovery.
	waitFor(t, func() bool {
		for _, n := range nodes {
			if len(n.proto.NeighborIDs()) != 2 {
				return false
			}
		}
		return true
	}, "full discovery over UDP")

	id, err := nodes[0].proto.Publish(news, []byte("over real sockets"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		select {
		case ev := <-n.got:
			if ev.ID != id || string(ev.Payload) != "over real sockets" {
				t.Fatalf("node %d got wrong event %+v", i, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("node %d never delivered", i)
		}
	}
}
