//go:build linux && amd64

package transport

// sysSendmmsg is the sendmmsg syscall number (Linux 3.0); the frozen
// stdlib syscall package predates it on amd64, so it is pinned here.
// recvmmsg (2.6.33) made the freeze and comes from syscall.SYS_RECVMMSG.
const sysSendmmsg = 307
