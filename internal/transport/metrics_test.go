package transport

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/event"
	"repro/internal/obs"
)

// TestRegisterMetricsAndDropHook pins the scrape bridge: ring overflow
// shows up both through the drop hook (flight-recorder feed) and as
// repro_transport_send_drops_total in the exposition, and queue depths
// read the live ring occupancy.
func TestRegisterMetricsAndDropHook(t *testing.T) {
	var hooked atomic.Int64
	u, err := newUDP(UDPConfig{
		Listen:    "127.0.0.1:0",
		Handler:   func(event.Message) {},
		SendQueue: 2,
	}, false) // no writer: queued messages stay put
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	u.SetDropHook(func(outbound bool) {
		if !outbound {
			t.Error("send-ring overflow reported as inbound")
		}
		hooked.Add(1)
	})
	reg := obs.NewRegistry()
	u.RegisterMetrics(reg, "node", "7")

	hb := event.Heartbeat{From: 1}
	for i := 0; i < 3; i++ {
		u.Broadcast(hb)
	}
	if got := u.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	if got := hooked.Load(); got != 1 {
		t.Fatalf("drop hook ran %d times, want 1", got)
	}
	if s, r := u.QueueDepths(); s != 2 || r != 0 {
		t.Fatalf("QueueDepths = (%d, %d), want (2, 0)", s, r)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`repro_transport_send_drops_total{node="7"} 1`,
		`repro_transport_send_queue_depth{node="7"} 2`,
		`repro_transport_recv_drops_total{node="7"} 0`,
		`# TYPE repro_transport_handler_seconds summary`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
