//go:build !linux || !(amd64 || arm64)

// Portable stand-ins for the Linux batched-syscall fast path (see
// udp_mmsg_linux.go): sends go one WriteTo per packet, reads one
// datagram per syscall. Semantics and wire bytes are identical — only
// the syscall count differs.

package transport

import "net/netip"

// mmsgWriter is unused off the Linux batched path; the field on UDP
// stays nil.
type mmsgWriter struct{}

// sendBatchOS reports the batched fast path unavailable; sendBatch runs
// the portable per-packet fallback.
func (u *UDP) sendBatchOS(batch [][]byte, peers []*peerAddr) (handled bool, completed int) {
	return false, 0
}

// fillSockaddr is a no-op: raw sockaddrs are only consumed by the
// batched syscall path.
func (u *UDP) fillSockaddr(ap netip.AddrPort, buf *[sockaddrBufSize]byte) uint32 {
	return 0
}

// readBatcher is the single-datagram portable reader.
type readBatcher struct {
	u   *UDP
	buf []byte
	n   int
	src netip.AddrPort
}

func (u *UDP) newReadBatcher() *readBatcher {
	return &readBatcher{u: u, buf: make([]byte, maxDatagram)}
}

func (rb *readBatcher) read() (int, error) {
	n, src, err := rb.u.readOne(rb.buf)
	if err != nil {
		return 0, err
	}
	rb.n, rb.src = n, src
	return 1, nil
}

func (rb *readBatcher) datagram(int) ([]byte, netip.AddrPort) {
	return rb.buf[:rb.n], rb.src
}
