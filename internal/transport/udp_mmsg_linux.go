//go:build linux && (amd64 || arm64)

// Linux batched-syscall fast path: the writer's per-flush batch goes to
// the kernel in sendmmsg calls (one syscall for up to mmsgChunk
// packets) and the read loop drains the socket with recvmmsg. The wire
// bytes are identical to the portable per-datagram path — only the
// syscall count changes (see TestMmsgPortableParity). Raw
// syscall.Syscall6 against stdlib constants keeps the module
// dependency-free; the shape follows the classic x/net
// Sendmmsg/Recvmmsg wrappers. Both directions integrate with the
// runtime poller through syscall.RawConn: MSG_DONTWAIT plus
// return-false-on-EAGAIN parks the goroutine on the poller instead of
// spinning, so Close and deadlines keep working. The first
// capability-type errno (ENOSYS from an old kernel, EPERM from a
// seccomp filter, ...) before any success latches mmsgOK=false and the
// transport falls back to the portable path for good.

package transport

import (
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsgChunk bounds the entries handed to one sendmmsg call; the kernel
// caps vlen at UIO_MAXIOV (1024), and 64 keeps the writer's fixed
// scratch arrays small while still amortizing syscall cost ~64x.
const mmsgChunk = 64

// recvSlots is the recvmmsg batch width: one syscall can drain up to
// this many queued datagrams.
const recvSlots = 16

// mmsghdr mirrors struct mmsghdr. Go's natural field alignment
// reproduces the C layout (msg_len plus trailing padding to the
// pointer-aligned stride), so an array of these is a valid msgvec.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32 // msg_len: bytes sent/received for this entry (kernel-written)
}

// fillSockaddr pre-marshals ap as a raw sockaddr for the batched path,
// returning its length. A v4 destination on an AF_INET6 (dual-stack)
// socket is written in its v4-mapped form, matching what the net
// package does internally for WriteToUDPAddrPort.
func (u *UDP) fillSockaddr(ap netip.AddrPort, buf *[sockaddrBufSize]byte) uint32 {
	a := ap.Addr()
	if !u.sock6 && a.Is4() {
		// sockaddr_in: family, big-endian port, 4-byte addr, zero pad.
		*buf = [sockaddrBufSize]byte{}
		*(*uint16)(unsafe.Pointer(&buf[0])) = syscall.AF_INET
		buf[2] = byte(ap.Port() >> 8)
		buf[3] = byte(ap.Port())
		a4 := a.As4()
		copy(buf[4:8], a4[:])
		return syscall.SizeofSockaddrInet4
	}
	// sockaddr_in6: family, big-endian port, flowinfo, 16-byte addr
	// (v4-mapped when the destination is v4), scope id.
	*buf = [sockaddrBufSize]byte{}
	*(*uint16)(unsafe.Pointer(&buf[0])) = syscall.AF_INET6
	buf[2] = byte(ap.Port() >> 8)
	buf[3] = byte(ap.Port())
	a16 := a.As16()
	copy(buf[8:24], a16[:])
	if z := a.Zone(); z != "" {
		if ifi, err := net.InterfaceByName(z); err == nil {
			*(*uint32)(unsafe.Pointer(&buf[24])) = uint32(ifi.Index)
		}
	}
	return syscall.SizeofSockaddrInet6
}

// sockaddrToAddrPort decodes a kernel-written raw sockaddr (4-in-6
// sources unmapped, like readOne).
func sockaddrToAddrPort(name []byte) netip.AddrPort {
	if len(name) < 8 {
		return netip.AddrPort{}
	}
	port := uint16(name[2])<<8 | uint16(name[3])
	switch *(*uint16)(unsafe.Pointer(&name[0])) {
	case syscall.AF_INET:
		var a4 [4]byte
		copy(a4[:], name[4:8])
		return netip.AddrPortFrom(netip.AddrFrom4(a4), port)
	case syscall.AF_INET6:
		if len(name) < 24 {
			return netip.AddrPort{}
		}
		var a16 [16]byte
		copy(a16[:], name[8:24])
		return netip.AddrPortFrom(netip.AddrFrom16(a16).Unmap(), port)
	}
	return netip.AddrPort{}
}

// isMmsgUnsupported classifies errnos that mean "this syscall will
// never work here" — old kernel (ENOSYS), seccomp policy (EPERM), or a
// stack that rejects the vectored form outright (EOPNOTSUPP/EINVAL).
// Only consulted before the first success; afterwards the same errnos
// are treated as per-destination failures.
func isMmsgUnsupported(errno syscall.Errno) bool {
	switch errno {
	case syscall.ENOSYS, syscall.EPERM, syscall.EOPNOTSUPP, syscall.EINVAL:
		return true
	}
	return false
}

// mmsgWriter is the writer goroutine's sendmmsg scratch state: one
// chunk of mmsghdrs/iovecs plus the owning peer of each entry for
// error attribution. Allocated once, lazily, by the writer — Broadcast
// stays zero-alloc.
type mmsgWriter struct {
	hdrs [mmsgChunk]mmsghdr
	iovs [mmsgChunk]syscall.Iovec
	who  [mmsgChunk]*peerAddr
	// off/k (arguments) and sent/errno (results) cross the poller
	// callback through fields, so fn is built once here instead of a
	// fresh closure per syscall — the flush path allocates nothing.
	off, k, sent int
	errno        syscall.Errno
	fn           func(fd uintptr) bool
}

func newMmsgWriter() *mmsgWriter {
	mw := &mmsgWriter{}
	mw.fn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&mw.hdrs[mw.off])), uintptr(mw.k-mw.off),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the poller until writable
		}
		mw.sent, mw.errno = int(r), e
		return true
	}
	return mw
}

type flushStatus int

const (
	flushOK       flushStatus = iota
	flushClosed               // socket gone mid-chunk (Close)
	flushFellBack             // syscall unsupported; caller re-offers portably
)

// sendBatchOS fans the batch out via sendmmsg. handled=false means the
// fast path is unavailable (non-UDP conn, or latched off) and nothing
// was sent — the caller runs the portable path. Entries are laid out
// msg-major (every peer of message 0, then message 1, ...), so on an
// early close the fully-offered message count is offered/len(peers).
func (u *UDP) sendBatchOS(batch [][]byte, peers []*peerAddr) (handled bool, completed int) {
	if u.raw == nil || !u.mmsgOK.Load() {
		return false, 0
	}
	if u.mw == nil {
		u.mw = newMmsgWriter()
	}
	mw := u.mw
	offered, k := 0, 0
	for _, wire := range batch {
		for _, p := range peers {
			mw.iovs[k] = syscall.Iovec{Base: unsafe.SliceData(wire), Len: uint64(len(wire))}
			mw.hdrs[k].hdr = syscall.Msghdr{
				Name:    &p.raw[0],
				Namelen: p.rawLen,
				Iov:     &mw.iovs[k],
				Iovlen:  1,
			}
			mw.who[k] = p
			k++
			if k == mmsgChunk {
				done, status := u.flushChunk(k)
				offered += done
				k = 0
				switch status {
				case flushFellBack:
					return false, 0
				case flushClosed:
					return true, offered / len(peers)
				}
			}
		}
	}
	if k > 0 {
		done, status := u.flushChunk(k)
		offered += done
		switch status {
		case flushFellBack:
			return false, 0
		case flushClosed:
			return true, offered / len(peers)
		}
	}
	return true, len(batch)
}

// flushChunk hands mw.hdrs[:k] to the kernel, retrying partial sends
// until every entry has been offered. A head-entry error is counted and
// skipped (mirroring the portable path's per-packet error handling); a
// capability errno before any sendmmsg has ever succeeded on this
// socket latches the portable path instead.
func (u *UDP) flushChunk(k int) (offered int, status flushStatus) {
	mw := u.mw
	mw.k, mw.off = k, 0
	for mw.off < k {
		mw.sent, mw.errno = 0, 0
		werr := u.raw.Write(mw.fn)
		if werr != nil {
			// RawConn.Write fails only when the socket is closed.
			return mw.off, flushClosed
		}
		if mw.errno != 0 {
			if mw.errno == syscall.EINTR {
				continue
			}
			if u.mmsgSends.Load() == 0 && isMmsgUnsupported(mw.errno) {
				u.mmsgOK.Store(false)
				return 0, flushFellBack
			}
			// sendmmsg reports an error by failing the FIRST entry;
			// count it, skip it, keep draining the rest.
			u.sendErrs.Add(1)
			u.reportError(fmt.Errorf("transport: sendmmsg to %s: %w", mw.who[mw.off].ua, error(mw.errno)))
			mw.off++
			continue
		}
		if mw.sent <= 0 {
			// Defensive: zero-progress success would loop forever.
			u.sendErrs.Add(1)
			mw.off++
			continue
		}
		u.mmsgSends.Add(1)
		u.sent.Add(uint64(mw.sent))
		mw.off += mw.sent
	}
	return k, flushOK
}

// readBatcher drains the socket with recvmmsg: up to recvSlots queued
// datagrams (with their source addresses) per syscall. When the
// batched path is unavailable it degrades to the portable single-read.
type readBatcher struct {
	u     *UDP
	bufs  [recvSlots][]byte
	names [recvSlots][sockaddrBufSize]byte
	iovs  [recvSlots]syscall.Iovec
	hdrs  [recvSlots]mmsghdr
	lens  [recvSlots]int
	srcs  [recvSlots]netip.AddrPort
	// got/errno carry the syscall result out of the pre-allocated
	// poller callback fn — no closure allocation per read.
	got   int
	errno syscall.Errno
	fn    func(fd uintptr) bool
}

func (u *UDP) newReadBatcher() *readBatcher {
	rb := &readBatcher{u: u}
	for i := range rb.bufs {
		rb.bufs[i] = make([]byte, maxDatagram)
		rb.iovs[i] = syscall.Iovec{Base: &rb.bufs[i][0], Len: maxDatagram}
		rb.hdrs[i].hdr = syscall.Msghdr{
			Name:   &rb.names[i][0],
			Iov:    &rb.iovs[i],
			Iovlen: 1,
		}
	}
	rb.fn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&rb.hdrs[0])), recvSlots,
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the poller until readable
		}
		rb.got, rb.errno = int(r), e
		return true
	}
	return rb
}

// read blocks until at least one datagram arrives, returning how many
// slots were filled.
func (rb *readBatcher) read() (int, error) {
	u := rb.u
	for {
		if u.raw == nil || !u.mmsgOK.Load() {
			n, src, err := u.readOne(rb.bufs[0])
			if err != nil {
				return 0, err
			}
			rb.lens[0], rb.srcs[0] = n, src
			return 1, nil
		}
		for i := range rb.hdrs {
			// Namelen is kernel-written per call; reset it.
			rb.hdrs[i].hdr.Namelen = sockaddrBufSize
		}
		rb.got, rb.errno = 0, 0
		rerr := u.raw.Read(rb.fn)
		if rerr != nil {
			return 0, rerr
		}
		if rb.errno != 0 {
			if rb.errno == syscall.EINTR {
				continue
			}
			if u.mmsgRecvs.Load() == 0 && isMmsgUnsupported(rb.errno) {
				u.mmsgOK.Store(false)
				continue // retry on the portable path
			}
			return 0, rb.errno
		}
		u.mmsgRecvs.Add(1)
		for i := 0; i < rb.got; i++ {
			rb.lens[i] = int(rb.hdrs[i].n)
			rb.srcs[i] = sockaddrToAddrPort(rb.names[i][:rb.hdrs[i].hdr.Namelen])
		}
		return rb.got, nil
	}
}

// datagram returns slot i of the last read. The buffer is valid until
// the next read call; ingest copies it into the dispatch ring.
func (rb *readBatcher) datagram(i int) ([]byte, netip.AddrPort) {
	return rb.bufs[i][:rb.lens[i]], rb.srcs[i]
}
