// Transport observability: the counters UDP already keeps as atomics are
// exposed through the obs registry as scrape-time funcs, so the hot path
// pays nothing it was not already paying. Registration additionally arms
// a handler-latency histogram in the dispatch loop — the one instrument
// that is not free, costing one time.Now pair and a short mutex hold per
// dispatched message, which is why it only runs once RegisterMetrics has
// been called. See ARCHITECTURE.md "Observability contracts".

package transport

import "repro/internal/obs"

// QueueDepths returns the current occupancy of the send and dispatch
// rings. Safe to call from any goroutine; each read holds the ring
// mutex briefly.
func (u *UDP) QueueDepths() (send, recv int) {
	u.send.mu.Lock()
	send = u.send.count
	u.send.mu.Unlock()
	u.recv.mu.Lock()
	recv = u.recv.count
	u.recv.mu.Unlock()
	return send, recv
}

// SetDropHook arranges for fn to run after every ring eviction, with
// outbound reporting which ring overflowed (true: send ring, false:
// dispatch ring). The hook runs on the Broadcast caller or the socket
// read goroutine respectively, so it must be fast and must not call
// back into the transport. One hook at most; pubsub.Node's flight
// recorder is the intended consumer.
func (u *UDP) SetDropHook(fn func(outbound bool)) {
	if fn == nil {
		u.dropHook.Store(nil)
		return
	}
	u.dropHook.Store(&fn)
}

// RegisterMetrics exposes the transport's cumulative counters and live
// queue depths on reg (labels identify the instance, typically
// node="<id>") and arms the per-message handler-latency histogram.
// Scrapes read the same atomics Stats reads; nothing is sampled or
// cached.
func (u *UDP) RegisterMetrics(reg *obs.Registry, labels ...string) {
	reg.CounterFunc("repro_transport_datagrams_sent_total",
		"UDP datagrams written to the peer group", u.sent.Load, labels...)
	reg.CounterFunc("repro_transport_datagrams_received_total",
		"UDP datagrams decoded and dispatched to the handler", u.received.Load, labels...)
	reg.CounterFunc("repro_transport_decode_errors_total",
		"incoming datagrams that failed to unmarshal", u.decodeErrs.Load, labels...)
	reg.CounterFunc("repro_transport_send_errors_total",
		"socket write errors (excluding shutdown)", u.sendErrs.Load, labels...)
	reg.CounterFunc("repro_transport_send_drops_total",
		"outbound messages evicted by send-ring overflow (drop-oldest)", u.dropped.Load, labels...)
	reg.CounterFunc("repro_transport_recv_drops_total",
		"inbound datagrams evicted by dispatch-ring overflow (drop-oldest)", u.recvDropped.Load, labels...)
	reg.CounterFunc("repro_transport_batches_total",
		"writer flush passes; datagrams_sent/batches is the coalescing factor", u.batches.Load, labels...)
	reg.CounterFunc("repro_transport_peers_learned_total",
		"roster joins learned from observed datagram sources (LearnPeers)", u.peersLearned.Load, labels...)
	reg.CounterFunc("repro_transport_peers_evicted_total",
		"roster evictions by the suspicion-window failure detector", u.peersEvicted.Load, labels...)
	reg.CounterFunc("repro_transport_mmsg_sends_total",
		"sendmmsg syscalls on the Linux batched path (0 elsewhere)", u.mmsgSends.Load, labels...)
	reg.CounterFunc("repro_transport_mmsg_recvs_total",
		"recvmmsg syscalls on the Linux batched path (0 elsewhere)", u.mmsgRecvs.Load, labels...)
	reg.GaugeFunc("repro_transport_peers",
		"current broadcast-roster size", func() float64 {
			return float64(u.PeerCount())
		}, labels...)
	reg.GaugeFunc("repro_transport_send_queue_depth",
		"messages currently queued in the send ring", func() float64 {
			s, _ := u.QueueDepths()
			return float64(s)
		}, labels...)
	reg.GaugeFunc("repro_transport_recv_queue_depth",
		"datagrams currently queued in the dispatch ring", func() float64 {
			_, r := u.QueueDepths()
			return float64(r)
		}, labels...)
	u.handlerHist.Store(reg.Histogram("repro_transport_handler_seconds",
		"decode-to-return latency of each dispatched handler call", labels...))
}
