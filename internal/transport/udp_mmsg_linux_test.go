//go:build linux && (amd64 || arm64)

package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"

	"repro/internal/event"
)

// rawSink is a bare UDP socket that records every datagram payload it
// receives, bit-for-bit.
type rawSink struct {
	conn net.PacketConn
	mu   sync.Mutex
	got  []string
}

func newRawSink(t *testing.T) *rawSink {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	s := &rawSink{conn: conn}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, maxDatagram)
		for {
			n, _, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			s.mu.Lock()
			s.got = append(s.got, string(buf[:n]))
			s.mu.Unlock()
		}
	}()
	return s
}

func (s *rawSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

// payloads returns the received datagrams as a sorted multiset.
func (s *rawSink) payloads() []string {
	s.mu.Lock()
	out := append([]string(nil), s.got...)
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// mkBatch builds a batch of distinct variable-size payloads, sized to
// cross the mmsgChunk boundary against two peers.
func mkBatch(n int) [][]byte {
	batch := make([][]byte, n)
	for i := range batch {
		size := 1 + (i*37)%2048
		b := make([]byte, size)
		for j := range b {
			b[j] = byte(i + j)
		}
		b[0] = byte(i) // keep payloads pairwise distinct even at size 1
		batch[i] = b
	}
	return batch
}

// sendVia builds a writer-less transport aimed at the sinks and runs
// one batch through the given send path, returning the sender.
func sendVia(t *testing.T, sinks []*rawSink, batch [][]byte, mmsg bool) *UDP {
	t.Helper()
	peerAddrs := make([]string, len(sinks))
	for i, s := range sinks {
		peerAddrs[i] = s.conn.LocalAddr().String()
	}
	u, err := newUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Peers:   peerAddrs,
		Handler: func(event.Message) {},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	u.mu.RLock()
	peers := u.peers
	u.mu.RUnlock()
	if len(peers) != len(sinks) {
		t.Fatalf("roster has %d peers, want %d", len(peers), len(sinks))
	}
	if mmsg {
		handled, completed := u.sendBatchOS(batch, peers)
		if !handled {
			t.Skip("sendmmsg unavailable in this environment")
		}
		if completed != len(batch) {
			t.Fatalf("sendBatchOS completed %d of %d messages", completed, len(batch))
		}
	} else {
		if completed := u.sendBatchPortable(batch, peers); completed != len(batch) {
			t.Fatalf("sendBatchPortable completed %d of %d messages", completed, len(batch))
		}
	}
	return u
}

// TestMmsgPortableParity pins the bit-parity contract of the Linux
// batched-syscall path: for the same batch and peer group, sendmmsg
// puts exactly the same datagrams on the wire as the portable
// per-packet writer — same payload bytes, same per-peer multiset — it
// only changes the syscall count.
func TestMmsgPortableParity(t *testing.T) {
	const msgs = 40 // x2 peers = 80 entries: crosses the 64-entry chunk
	batch := mkBatch(msgs)

	mmsgSinks := []*rawSink{newRawSink(t), newRawSink(t)}
	mm := sendVia(t, mmsgSinks, batch, true)
	portSinks := []*rawSink{newRawSink(t), newRawSink(t)}
	pp := sendVia(t, portSinks, batch, false)

	for i := range mmsgSinks {
		i := i
		waitFor(t, func() bool { return mmsgSinks[i].count() == msgs }, fmt.Sprintf("mmsg sink %d full", i))
		waitFor(t, func() bool { return portSinks[i].count() == msgs }, fmt.Sprintf("portable sink %d full", i))
	}
	for i := range mmsgSinks {
		got, want := mmsgSinks[i].payloads(), portSinks[i].payloads()
		if len(got) != len(want) {
			t.Fatalf("sink %d: mmsg delivered %d datagrams, portable %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("sink %d datagram %d: mmsg bytes differ from portable (%d vs %d bytes)",
					i, j, len(got[j]), len(want[j]))
			}
		}
	}

	ms, ps := mm.Stats(), pp.Stats()
	if ms.DatagramsSent != uint64(msgs*len(mmsgSinks)) || ms.DatagramsSent != ps.DatagramsSent {
		t.Fatalf("sent counters diverge: mmsg %d, portable %d", ms.DatagramsSent, ps.DatagramsSent)
	}
	// The whole point: 80 packets in a handful of syscalls.
	if ms.MmsgSends == 0 || ms.MmsgSends > 4 {
		t.Fatalf("MmsgSends = %d for %d packets, want 1..4", ms.MmsgSends, msgs*len(mmsgSinks))
	}
	if ps.MmsgSends != 0 {
		t.Fatalf("portable path counted %d mmsg syscalls", ps.MmsgSends)
	}
}

// TestMmsgEndToEndCounters asserts the batched path actually engages on
// a live exchange: the full protocol wire format travels through
// sendmmsg on the sender and recvmmsg on the receiver.
func TestMmsgEndToEndCounters(t *testing.T) {
	a, b, _, cb := newPair(t)
	if !a.mmsgOK.Load() {
		t.Skip("sendmmsg/recvmmsg unavailable in this environment")
	}
	const n = 20
	for i := 0; i < n; i++ {
		a.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	waitFor(t, func() bool { return cb.count() == n }, "all messages at b")
	waitFor(t, func() bool { return a.Stats().MmsgSends > 0 }, "sendmmsg engaged at a")
	waitFor(t, func() bool { return b.Stats().MmsgRecvs > 0 }, "recvmmsg engaged at b")
	sa, sb := a.Stats(), b.Stats()
	if sa.MmsgSends > sa.DatagramsSent {
		t.Fatalf("more sendmmsg calls (%d) than datagrams (%d)", sa.MmsgSends, sa.DatagramsSent)
	}
	if sb.DatagramsReceived != n {
		t.Fatalf("b received %d datagrams, want %d", sb.DatagramsReceived, n)
	}
}

// TestMmsgCapabilityFallback: latching mmsgOK off must route both
// directions through the portable path with identical semantics.
func TestMmsgCapabilityFallback(t *testing.T) {
	a, b, _, cb := newPair(t)
	a.mmsgOK.Store(false)
	b.mmsgOK.Store(false)
	const n = 5
	for i := 0; i < n; i++ {
		a.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	waitFor(t, func() bool { return cb.count() == n }, "messages via portable fallback")
	sa := a.Stats()
	if sa.MmsgSends != 0 {
		t.Fatalf("latched-off transport still made %d sendmmsg calls", sa.MmsgSends)
	}
	if sa.DatagramsSent != n {
		t.Fatalf("portable fallback sent %d datagrams, want %d", sa.DatagramsSent, n)
	}
	// b's read loop may have issued recvmmsg calls before the latch; the
	// delivered message count above is the semantic assertion.
}
