// Package transport provides real-network transports for the protocol.
//
// UDP emulates the one-hop broadcast primitive of a MANET MAC layer with
// UDP datagrams fanned out to a static peer group — the standard way to
// run MANET protocols in LAN testbeds. Combined with core.NewSafe and a
// wall-clock core.Scheduler, the protocol runs unchanged on real
// sockets (see TestUDPEndToEnd and examples/inprocess for the in-memory
// analogue).
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// maxDatagram bounds incoming datagrams; protocol messages are far
// smaller (a full 20-event push is ~9 kB).
const maxDatagram = 64 * 1024

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Listen is the local address to bind, e.g. "127.0.0.1:0".
	Listen string
	// Peers are the initial peer addresses; the local address is
	// filtered out automatically.
	Peers []string
	// Handler receives every decoded incoming message. It is called
	// from the transport's read goroutine, so pass core.Safe's
	// HandleMessage (or synchronize yourself). Required.
	//
	// The handler is never invoked before Start is called: NewUDP only
	// binds the socket, so the caller can finish wiring the state the
	// handler closes over (typically the protocol instance) and then
	// Start the read loop. Datagrams arriving before Start queue in the
	// kernel buffer and are handed to the handler once Start runs.
	Handler func(event.Message)
	// OnError, when non-nil, receives decode and I/O errors. Transient
	// errors never stop the read loop.
	OnError func(error)
}

// Stats are cumulative transport counters, safe to read concurrently.
type Stats struct {
	DatagramsSent     uint64
	DatagramsReceived uint64
	DecodeErrors      uint64
	SendErrors        uint64
}

// UDP is a peer-group broadcast transport. It implements core.Transport.
type UDP struct {
	conn    net.PacketConn
	handler func(event.Message)
	onError func(error)

	mu    sync.RWMutex
	peers []*net.UDPAddr

	sent, received, decodeErrs, sendErrs atomic.Uint64

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewUDP binds the listen address and resolves the peer group. The read
// loop does NOT run yet: call Start once the handler's dependencies are
// wired. Splitting construction from startup is what makes the handler
// contract race-free — with a constructor-started loop, a datagram could
// reach the handler before the caller had assigned the protocol instance
// the handler closes over.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.Handler == nil {
		return nil, errors.New("transport: nil Handler")
	}
	conn, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	u := &UDP{
		conn:    conn,
		handler: cfg.Handler,
		onError: cfg.OnError,
		done:    make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if err := u.AddPeer(p); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return u, nil
}

// Start launches the read loop; incoming datagrams are decoded and
// handed to the configured Handler from here on. It is idempotent,
// safe to race with Close, and must be called before any message can
// be received; broadcasts work without it.
func (u *UDP) Start() {
	u.startOnce.Do(func() {
		// The mutex orders this against Close: after close(done) no
		// loop may start (Close's wg.Wait must not race an Add), and if
		// the loop starts first, Close's conn.Close/done will stop it.
		u.mu.Lock()
		defer u.mu.Unlock()
		select {
		case <-u.done:
			return // already closed: nothing to start
		default:
		}
		u.wg.Add(1)
		go u.readLoop()
	})
}

// LocalAddr returns the bound address (useful with ":0" listens).
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// AddPeer adds a peer address to the broadcast group. The local address
// is ignored, making it safe to pass the same full roster to every node.
func (u *UDP) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: peer %s: %w", addr, err)
	}
	if ua.String() == u.conn.LocalAddr().String() {
		return nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, p := range u.peers {
		if p.String() == ua.String() {
			return nil
		}
	}
	u.peers = append(u.peers, ua)
	return nil
}

// Broadcast implements core.Transport: marshal once, send to every peer.
// Datagram loss is expected and tolerated by the protocol, so send
// errors are counted, reported to OnError, and otherwise ignored.
func (u *UDP) Broadcast(m event.Message) {
	wire := event.Marshal(m)
	u.mu.RLock()
	peers := u.peers
	u.mu.RUnlock()
	for _, p := range peers {
		if _, err := u.conn.WriteTo(wire, p); err != nil {
			u.sendErrs.Add(1)
			u.reportError(fmt.Errorf("transport: send to %s: %w", p, err))
			continue
		}
		u.sent.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (u *UDP) Stats() Stats {
	return Stats{
		DatagramsSent:     u.sent.Load(),
		DatagramsReceived: u.received.Load(),
		DecodeErrors:      u.decodeErrs.Load(),
		SendErrors:        u.sendErrs.Load(),
	}
}

// Close stops the read loop (if started) and releases the socket. It
// is idempotent and safe to race with Start.
func (u *UDP) Close() error {
	var err error
	u.closeOnce.Do(func() {
		u.mu.Lock()
		close(u.done)
		u.mu.Unlock()
		err = u.conn.Close()
		u.wg.Wait()
	})
	return err
}

func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := u.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-u.done:
				return // closed: expected
			default:
			}
			u.reportError(fmt.Errorf("transport: read: %w", err))
			continue
		}
		msg, err := event.Unmarshal(buf[:n])
		if err != nil {
			u.decodeErrs.Add(1)
			u.reportError(fmt.Errorf("transport: decode %d bytes: %w", n, err))
			continue
		}
		u.received.Add(1)
		u.handler(msg)
	}
}

func (u *UDP) reportError(err error) {
	if u.onError != nil {
		u.onError(err)
	}
}
