// Package transport provides real-network transports for the protocol.
//
// UDP emulates the one-hop broadcast primitive of a MANET MAC layer with
// UDP datagrams fanned out to a static peer group — the standard way to
// run MANET protocols in LAN testbeds. Combined with core.NewSafe and a
// wall-clock core.Scheduler, the protocol runs unchanged on real
// sockets (see TestUDPEndToEnd and examples/inprocess for the in-memory
// analogue).
//
// The fast path is asynchronous on both sides (the "real-path
// contracts", see ARCHITECTURE.md): Broadcast marshals into a pooled
// ring slot and returns — a writer goroutine coalesces queued messages
// into per-flush batches and fans each one out to the peer group, so a
// slow peer or a saturated socket can never stall the protocol layer.
// Incoming datagrams are likewise copied into a bounded dispatch ring
// and decoded/handled off the socket goroutine, so a slow handler can
// never stall socket reads. Both rings drop the OLDEST entry on
// overflow (new information beats stale information in a soft-state
// protocol) and count drops in Stats; steady-state Broadcast performs
// zero heap allocations.
package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/obs"
)

// maxDatagram bounds incoming datagrams; protocol messages are far
// smaller (a full 20-event push is ~9 kB).
const maxDatagram = 64 * 1024

// DefaultSendQueue is the send-ring capacity when UDPConfig.SendQueue
// is zero: queued outbound messages beyond it drop the oldest.
const DefaultSendQueue = 512

// DefaultRecvQueue is the dispatch-ring capacity when
// UDPConfig.RecvQueue is zero: queued inbound datagrams beyond it drop
// the oldest.
const DefaultRecvQueue = 512

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Listen is the local address to bind, e.g. "127.0.0.1:0".
	Listen string
	// Peers are the initial peer addresses; the local address is
	// filtered out automatically.
	Peers []string
	// Handler receives every decoded incoming message. It is called
	// from the transport's single dispatch goroutine (serially), so
	// pass core.Safe's HandleMessage (or synchronize yourself).
	// Required.
	//
	// The handler is never invoked before Start is called: NewUDP only
	// binds the socket, so the caller can finish wiring the state the
	// handler closes over (typically the protocol instance) and then
	// Start the read loop. Datagrams arriving before Start queue in the
	// kernel buffer and are handed to the handler once Start runs.
	Handler func(event.Message)
	// OnError, when non-nil, receives decode and I/O errors. Transient
	// errors never stop the read loop.
	OnError func(error)
	// SendQueue bounds the outbound message ring (DefaultSendQueue
	// when 0). When a Broadcast finds the ring full, the OLDEST queued
	// message is dropped and Stats.Dropped incremented; Broadcast never
	// blocks on the network.
	SendQueue int
	// RecvQueue bounds the inbound datagram ring between the socket
	// read loop and the dispatch goroutine (DefaultRecvQueue when 0).
	// Overflow drops the oldest queued datagram and increments
	// Stats.RecvDropped; decode and handler work never stall socket
	// reads.
	RecvQueue int
	// FlushInterval is the batching delay of the writer goroutine: on
	// waking for queued messages it waits this long so nearby
	// broadcasts coalesce into one per-flush batch (one buffer slab,
	// N packets per syscall loop). 0 flushes as soon as the writer
	// wakes — still batching whatever accumulated while the previous
	// batch was on the wire.
	FlushInterval time.Duration
}

// Stats are cumulative transport counters, safe to read concurrently.
type Stats struct {
	DatagramsSent     uint64
	DatagramsReceived uint64
	DecodeErrors      uint64
	SendErrors        uint64
	// Dropped counts outbound messages evicted by send-ring overflow
	// (drop-oldest; the protocol tolerates loss by design).
	Dropped uint64
	// RecvDropped counts inbound datagrams evicted by dispatch-ring
	// overflow before they reached the handler.
	RecvDropped uint64
	// Batches counts writer flush passes; DatagramsSent/Batches is the
	// observed coalescing factor.
	Batches uint64
}

// ring is a bounded FIFO of reusable byte buffers with drop-oldest
// overflow. Slot buffers are pooled: they are swapped, never freed, so
// a warm ring performs zero allocations per push/pop.
type ring struct {
	mu    sync.Mutex
	slots [][]byte
	tail  int // oldest entry
	count int
}

// push returns the slot buffer to marshal into (reset to length 0) and
// whether the oldest entry was evicted to make room. Callers must hold
// mu, fill the returned buffer, and store it back via the returned
// index before unlocking.
func (r *ring) push() (slot *[]byte, dropped bool) {
	if r.count == len(r.slots) {
		// Full: the write lands on the current tail slot, evicting the
		// oldest queued entry.
		i := r.tail
		r.tail = (r.tail + 1) % len(r.slots)
		return &r.slots[i], true
	}
	i := (r.tail + r.count) % len(r.slots)
	r.count++
	return &r.slots[i], false
}

// pop swaps the oldest entry out for spare and returns it; ok is false
// when the ring is empty (spare is then still the caller's). The caller
// reclaims the returned buffer as its next spare once done with it.
// Callers must hold mu.
func (r *ring) pop(spare []byte) (data []byte, ok bool) {
	if r.count == 0 {
		return nil, false
	}
	i := r.tail
	data, r.slots[i] = r.slots[i], spare
	r.tail = (r.tail + 1) % len(r.slots)
	r.count--
	return data, true
}

// peerAddr caches both address forms of one peer: the resolved
// *net.UDPAddr for the generic net.PacketConn path and the value-type
// netip.AddrPort for the allocation-free *net.UDPConn fast path.
type peerAddr struct {
	ua *net.UDPAddr
	ap netip.AddrPort
}

// UDP is a peer-group broadcast transport. It implements core.Transport.
type UDP struct {
	conn    net.PacketConn
	uconn   *net.UDPConn // conn when it is a real UDP socket; enables WriteToUDPAddrPort
	handler func(event.Message)
	onError func(error)
	flush   time.Duration

	mu    sync.RWMutex
	peers []peerAddr

	send         ring
	recv         ring
	sendKick     chan struct{}
	dispatchKick chan struct{}

	sent, received, decodeErrs, sendErrs atomic.Uint64
	dropped, recvDropped, batches        atomic.Uint64

	// handlerHist, when armed by RegisterMetrics, observes the
	// decode-to-return latency of every dispatched handler call.
	handlerHist atomic.Pointer[obs.Hist]
	// dropHook, when armed by SetDropHook, is called after every ring
	// eviction (flight-recorder feed; see pubsub.Node).
	dropHook atomic.Pointer[func(outbound bool)]

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewUDP binds the listen address and resolves the peer group. The read
// loop does NOT run yet: call Start once the handler's dependencies are
// wired. Splitting construction from startup is what makes the handler
// contract race-free — with a constructor-started loop, a datagram could
// reach the handler before the caller had assigned the protocol instance
// the handler closes over. The writer goroutine DOES start here:
// broadcasts work without Start, exactly as before.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	return newUDP(cfg, true)
}

// newUDP is NewUDP with the writer goroutine optional, so ring
// semantics (overflow, drop-oldest, statistics) are testable without
// racing the drain.
func newUDP(cfg UDPConfig, startWriter bool) (*UDP, error) {
	if cfg.Handler == nil {
		return nil, errors.New("transport: nil Handler")
	}
	if cfg.SendQueue < 0 || cfg.RecvQueue < 0 {
		return nil, fmt.Errorf("transport: negative queue bound (send %d, recv %d)", cfg.SendQueue, cfg.RecvQueue)
	}
	if cfg.FlushInterval < 0 {
		return nil, fmt.Errorf("transport: negative FlushInterval %v", cfg.FlushInterval)
	}
	sendQ := cfg.SendQueue
	if sendQ == 0 {
		sendQ = DefaultSendQueue
	}
	recvQ := cfg.RecvQueue
	if recvQ == 0 {
		recvQ = DefaultRecvQueue
	}
	conn, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	uconn, _ := conn.(*net.UDPConn)
	u := &UDP{
		conn:         conn,
		uconn:        uconn,
		handler:      cfg.Handler,
		onError:      cfg.OnError,
		flush:        cfg.FlushInterval,
		send:         ring{slots: make([][]byte, sendQ)},
		recv:         ring{slots: make([][]byte, recvQ)},
		sendKick:     make(chan struct{}, 1),
		dispatchKick: make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if err := u.AddPeer(p); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if startWriter {
		u.startWriter()
	}
	return u, nil
}

// startWriter launches the send-ring drain goroutine. Registered on the
// WaitGroup before launch so Close's wg.Wait always covers it.
func (u *UDP) startWriter() {
	u.wg.Add(1)
	go u.writeLoop()
}

// Start launches the read and dispatch loops; incoming datagrams are
// decoded and handed to the configured Handler from here on. It is
// idempotent, safe to race with Close, and must be called before any
// message can be received; broadcasts work without it.
func (u *UDP) Start() {
	u.startOnce.Do(func() {
		// The mutex orders this against Close: after close(done) no
		// loop may start (Close's wg.Wait must not race an Add), and if
		// the loops start first, Close's conn.Close/done will stop them.
		u.mu.Lock()
		defer u.mu.Unlock()
		select {
		case <-u.done:
			return // already closed: nothing to start
		default:
		}
		u.wg.Add(2)
		go u.readLoop()
		go u.dispatchLoop()
	})
}

// LocalAddr returns the bound address (useful with ":0" listens).
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// AddPeer adds a peer address to the broadcast group. The local address
// is ignored, making it safe to pass the same full roster to every node.
func (u *UDP) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: peer %s: %w", addr, err)
	}
	if ua.String() == u.conn.LocalAddr().String() {
		return nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, p := range u.peers {
		if p.ua.String() == ua.String() {
			return nil
		}
	}
	// Unmap 4-in-6 addresses: ResolveUDPAddr hands back 16-byte IPv4
	// slices, and the mapped ::ffff:a.b.c.d form is rejected by IPv4
	// sockets on the WriteToUDPAddrPort fast path.
	ap := netip.AddrPortFrom(ua.AddrPort().Addr().Unmap(), uint16(ua.Port))
	u.peers = append(u.peers, peerAddr{ua: ua, ap: ap})
	return nil
}

// Broadcast implements core.Transport: marshal into a pooled ring slot
// and return. The writer goroutine fans the message out to every peer
// in its next flush batch; a full ring drops the oldest queued message
// (counted in Stats.Dropped) rather than blocking the protocol layer.
// Steady-state cost is zero heap allocations: the slot buffer is
// reused and AppendMarshal writes in place.
func (u *UDP) Broadcast(m event.Message) {
	u.send.mu.Lock()
	slot, droppedOldest := u.send.push()
	*slot = event.AppendMarshal((*slot)[:0], m)
	u.send.mu.Unlock()
	if droppedOldest {
		u.dropped.Add(1)
		if fn := u.dropHook.Load(); fn != nil {
			(*fn)(true)
		}
	}
	select {
	case u.sendKick <- struct{}{}:
	default: // writer already signaled
	}
}

// writeLoop drains the send ring: wake on a kick, optionally linger
// FlushInterval so nearby broadcasts coalesce, then swap the queued
// slot buffers into a local slab and fan each message out to the peer
// group — the sendmmsg shape, N packets per flush with one WriteTo per
// packet.
func (u *UDP) writeLoop() {
	defer u.wg.Done()
	batch := make([][]byte, len(u.send.slots))
	flushTimer := time.NewTimer(time.Hour)
	if !flushTimer.Stop() {
		<-flushTimer.C
	}
	for {
		select {
		case <-u.done:
			return
		case <-u.sendKick:
		}
		if u.flush > 0 {
			flushTimer.Reset(u.flush)
			select {
			case <-u.done:
				flushTimer.Stop()
				return
			case <-flushTimer.C:
			}
		}
		for {
			select {
			case <-u.done:
				return
			default:
			}
			// Swap filled slots out, spare buffers in: Broadcast keeps
			// marshaling into the ring while this batch is on the wire.
			u.send.mu.Lock()
			n := 0
			for u.send.count > 0 {
				i := u.send.tail
				batch[n], u.send.slots[i] = u.send.slots[i], batch[n]
				u.send.tail = (u.send.tail + 1) % len(u.send.slots)
				u.send.count--
				n++
			}
			u.send.mu.Unlock()
			if n == 0 {
				break
			}
			u.sendBatch(batch[:n])
		}
	}
}

// sendBatch fans one coalesced slab of messages out to the peer group.
func (u *UDP) sendBatch(batch [][]byte) {
	u.mu.RLock()
	peers := u.peers
	u.mu.RUnlock()
	for _, wire := range batch {
		for i := range peers {
			var err error
			if u.uconn != nil {
				_, err = u.uconn.WriteToUDPAddrPort(wire, peers[i].ap)
			} else {
				_, err = u.conn.WriteTo(wire, peers[i].ua)
			}
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return // shutdown mid-batch: Close owns the socket now
				}
				u.sendErrs.Add(1)
				u.reportError(fmt.Errorf("transport: send to %s: %w", peers[i].ua, err))
				continue
			}
			u.sent.Add(1)
		}
	}
	u.batches.Add(1)
}

// Stats returns a snapshot of the counters.
func (u *UDP) Stats() Stats {
	return Stats{
		DatagramsSent:     u.sent.Load(),
		DatagramsReceived: u.received.Load(),
		DecodeErrors:      u.decodeErrs.Load(),
		SendErrors:        u.sendErrs.Load(),
		Dropped:           u.dropped.Load(),
		RecvDropped:       u.recvDropped.Load(),
		Batches:           u.batches.Load(),
	}
}

// Close stops the writer and (if started) the read/dispatch loops, and
// releases the socket. Messages still queued in the send ring are
// dropped — UDP broadcast is best-effort and the protocol tolerates
// loss. It is idempotent and safe to race with Start and with in-flight
// Broadcasts/flushes.
func (u *UDP) Close() error {
	var err error
	u.closeOnce.Do(func() {
		u.mu.Lock()
		close(u.done)
		u.mu.Unlock()
		err = u.conn.Close() // also unblocks a writer stuck in WriteTo
		u.wg.Wait()
	})
	return err
}

// readLoop moves raw datagrams from the socket into the dispatch ring.
// It does no decoding and never calls the handler: its only job is to
// keep the kernel buffer drained so bursts are absorbed by our bounded
// ring (with accounted drops) instead of silent kernel tail drops.
func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := u.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-u.done:
				return // closed: expected
			default:
			}
			u.reportError(fmt.Errorf("transport: read: %w", err))
			continue
		}
		u.recv.mu.Lock()
		slot, droppedOldest := u.recv.push()
		*slot = append((*slot)[:0], buf[:n]...)
		u.recv.mu.Unlock()
		if droppedOldest {
			u.recvDropped.Add(1)
			if fn := u.dropHook.Load(); fn != nil {
				(*fn)(false)
			}
		}
		select {
		case u.dispatchKick <- struct{}{}:
		default:
		}
	}
}

// dispatchLoop decodes queued datagrams and runs the handler, one
// message at a time off the socket goroutine. The pop swaps a spare
// buffer into the ring, so the loop is allocation-free once slot
// buffers are warm; Unmarshal copies what it keeps, so the buffer is
// immediately reusable.
func (u *UDP) dispatchLoop() {
	defer u.wg.Done()
	var spare []byte
	for {
		select {
		case <-u.done:
			return
		case <-u.dispatchKick:
		}
		for {
			u.recv.mu.Lock()
			data, ok := u.recv.pop(spare)
			u.recv.mu.Unlock()
			if !ok {
				break
			}
			msg, err := event.Unmarshal(data)
			spare = data // reclaim the buffer for the next pop
			if err != nil {
				u.decodeErrs.Add(1)
				u.reportError(fmt.Errorf("transport: decode %d bytes: %w", len(data), err))
				continue
			}
			u.received.Add(1)
			if h := u.handlerHist.Load(); h != nil {
				start := time.Now()
				u.handler(msg)
				h.Observe(time.Since(start).Seconds())
			} else {
				u.handler(msg)
			}
			select {
			case <-u.done:
				return
			default:
			}
		}
	}
}

func (u *UDP) reportError(err error) {
	if u.onError != nil {
		u.onError(err)
	}
}
