// Package transport provides real-network transports for the protocol.
//
// UDP emulates the one-hop broadcast primitive of a MANET MAC layer with
// UDP datagrams fanned out to a peer group — the standard way to
// run MANET protocols in LAN testbeds. Combined with core.NewSafe and a
// wall-clock core.Scheduler, the protocol runs unchanged on real
// sockets (see TestUDPEndToEnd and examples/inprocess for the in-memory
// analogue).
//
// The fast path is asynchronous on both sides (the "real-path
// contracts", see ARCHITECTURE.md): Broadcast marshals into a pooled
// ring slot and returns — a writer goroutine coalesces queued messages
// into per-flush batches and fans each one out to the peer group, so a
// slow peer or a saturated socket can never stall the protocol layer.
// Incoming datagrams are likewise copied into a bounded dispatch ring
// and decoded/handled off the socket goroutine, so a slow handler can
// never stall socket reads. Both rings drop the OLDEST entry on
// overflow (new information beats stale information in a soft-state
// protocol) and count drops in Stats; steady-state Broadcast performs
// zero heap allocations. On Linux each flush batch is handed to the
// kernel in one sendmmsg call and the read loop drains the socket with
// recvmmsg (see udp_mmsg_linux.go); the wire bytes are identical to the
// portable per-datagram path.
//
// Membership is dynamic when configured: the initial Peers act as
// seeds, the roster grows from observed datagram sources (LearnPeers),
// and a suspicion window evicts peers whose datagrams — the protocol's
// own heartbeats, in steady state — stop arriving (Suspicion). With the
// zero config the transport behaves exactly like the static full-mesh
// roster of earlier revisions.
package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/event"
	"repro/internal/obs"
)

// maxDatagram bounds incoming datagrams; protocol messages are far
// smaller (a full 20-event push is ~9 kB).
const maxDatagram = 64 * 1024

// DefaultSendQueue is the send-ring capacity when UDPConfig.SendQueue
// is zero: queued outbound messages beyond it drop the oldest.
const DefaultSendQueue = 512

// DefaultRecvQueue is the dispatch-ring capacity when
// UDPConfig.RecvQueue is zero: queued inbound datagrams beyond it drop
// the oldest.
const DefaultRecvQueue = 512

// sockaddrBufSize holds a raw sockaddr_in or sockaddr_in6 for the
// batched-syscall path (28 bytes = sizeof sockaddr_in6).
const sockaddrBufSize = 28

// Read-loop backoff bounds: a persistent socket error (for example a
// forcibly closed descriptor, or an interface torn down under the
// process) must not hot-spin a core and flood OnError. Consecutive
// errors double the pause from readBackoffMin up to readBackoffMax; a
// successful read resets it.
const (
	readBackoffMin = time.Millisecond
	readBackoffMax = 100 * time.Millisecond
)

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Listen is the local address to bind, e.g. "127.0.0.1:0".
	Listen string
	// Peers are the initial peer addresses; entries naming the local
	// socket are filtered out (see AddPeer). With LearnPeers they act
	// as join seeds rather than a full roster.
	Peers []string
	// Handler receives every decoded incoming message. It is called
	// from the transport's single dispatch goroutine (serially), so
	// pass core.Safe's HandleMessage (or synchronize yourself).
	// Required.
	//
	// The handler is never invoked before Start is called: NewUDP only
	// binds the socket, so the caller can finish wiring the state the
	// handler closes over (typically the protocol instance) and then
	// Start the read loop. Datagrams arriving before Start queue in the
	// kernel buffer and are handed to the handler once Start runs.
	Handler func(event.Message)
	// OnError, when non-nil, receives decode and I/O errors. Transient
	// errors never stop the read loop.
	OnError func(error)
	// SendQueue bounds the outbound message ring (DefaultSendQueue
	// when 0). When a Broadcast finds the ring full, the OLDEST queued
	// message is dropped and Stats.Dropped incremented; Broadcast never
	// blocks on the network.
	SendQueue int
	// RecvQueue bounds the inbound datagram ring between the socket
	// read loop and the dispatch goroutine (DefaultRecvQueue when 0).
	// Overflow drops the oldest queued datagram and increments
	// Stats.RecvDropped; decode and handler work never stall socket
	// reads.
	RecvQueue int
	// FlushInterval is the batching delay of the writer goroutine: on
	// waking for queued messages it waits this long so nearby
	// broadcasts coalesce into one per-flush batch (one buffer slab,
	// N packets per syscall loop). 0 flushes as soon as the writer
	// wakes — still batching whatever accumulated while the previous
	// batch was on the wire.
	FlushInterval time.Duration
	// LearnPeers grows the roster dynamically: any datagram arriving
	// from a source address not yet in the peer group joins it (the
	// configured Peers then act as seeds — a new node only needs one
	// reachable seed; everyone it heartbeats learns it from the
	// datagram source, no global roster required). Sources naming the
	// local socket are never learned.
	LearnPeers bool
	// Suspicion, when positive, arms heartbeat-driven failure
	// detection: a peer from which no datagram has arrived within the
	// window is evicted from the roster (counted in
	// Stats.PeersEvicted). The protocol's periodic heartbeats keep
	// live peers refreshed, so the window should cover several
	// heartbeat periods. Combine with LearnPeers so an evicted peer
	// that comes back is re-learned from its next datagram.
	Suspicion time.Duration
	// SuspicionSweep overrides how often the eviction check runs
	// (default Suspicion/4). Only meaningful with Suspicion > 0.
	SuspicionSweep time.Duration
	// OnPeerChange, when non-nil, is called after the roster changes:
	// joined is true for AddPeer and learned sources, false for
	// RemovePeer and suspicion evictions. It runs on transport
	// goroutines (and on the caller of AddPeer/RemovePeer), outside
	// transport locks; it must not block.
	OnPeerChange func(addr string, joined bool)
}

// Stats are cumulative transport counters, safe to read concurrently.
type Stats struct {
	DatagramsSent     uint64
	DatagramsReceived uint64
	DecodeErrors      uint64
	SendErrors        uint64
	// Dropped counts outbound messages evicted by send-ring overflow
	// (drop-oldest; the protocol tolerates loss by design) plus
	// messages still queued — or enqueued — after Close, which no
	// writer will ever drain. Broadcasts are conserved:
	// broadcasts == DatagramsSent/peers + Dropped when no send errors
	// occur.
	Dropped uint64
	// RecvDropped counts inbound datagrams evicted by dispatch-ring
	// overflow before they reached the handler, plus datagrams still
	// queued when Close ran.
	RecvDropped uint64
	// Batches counts writer flush passes; DatagramsSent/Batches is the
	// observed coalescing factor.
	Batches uint64
	// PeersLearned counts roster joins from observed datagram sources
	// (LearnPeers).
	PeersLearned uint64
	// PeersEvicted counts suspicion-window evictions (Suspicion).
	PeersEvicted uint64
	// MmsgSends counts sendmmsg syscalls on the Linux batched fast
	// path (0 elsewhere); DatagramsSent/MmsgSends is the syscall
	// batching factor.
	MmsgSends uint64
	// MmsgRecvs counts recvmmsg syscalls on the Linux batched fast
	// path (0 elsewhere).
	MmsgRecvs uint64
}

// ring is a bounded FIFO of reusable byte buffers with drop-oldest
// overflow. Slot buffers are pooled: they are swapped, never freed, so
// a warm ring performs zero allocations per push/pop.
type ring struct {
	mu    sync.Mutex
	slots [][]byte
	tail  int // oldest entry
	count int
}

// push returns the slot buffer to marshal into (reset to length 0) and
// whether the oldest entry was evicted to make room. Callers must hold
// mu, fill the returned buffer, and store it back via the returned
// index before unlocking.
func (r *ring) push() (slot *[]byte, dropped bool) {
	if r.count == len(r.slots) {
		// Full: the write lands on the current tail slot, evicting the
		// oldest queued entry.
		i := r.tail
		r.tail = (r.tail + 1) % len(r.slots)
		return &r.slots[i], true
	}
	i := (r.tail + r.count) % len(r.slots)
	r.count++
	return &r.slots[i], false
}

// pop swaps the oldest entry out for spare and returns it; ok is false
// when the ring is empty (spare is then still the caller's). The caller
// reclaims the returned buffer as its next spare once done with it.
// Callers must hold mu.
func (r *ring) pop(spare []byte) (data []byte, ok bool) {
	if r.count == 0 {
		return nil, false
	}
	i := r.tail
	data, r.slots[i] = r.slots[i], spare
	r.tail = (r.tail + 1) % len(r.slots)
	r.count--
	return data, true
}

// drain empties the ring and returns how many entries it held. Used by
// Close to account for messages that no loop will ever serve.
func (r *ring) drain() int {
	r.mu.Lock()
	n := r.count
	r.count = 0
	r.tail = 0
	r.mu.Unlock()
	return n
}

// peerAddr caches every address form of one peer: the resolved
// *net.UDPAddr for the generic net.PacketConn path, the value-type
// netip.AddrPort for the allocation-free *net.UDPConn fast path, and a
// pre-marshalled raw sockaddr for the batched-syscall path. lastSeen
// (unix nanos of the most recent datagram from this peer; the add time
// until then) feeds the suspicion-window failure detector.
type peerAddr struct {
	ua       *net.UDPAddr
	ap       netip.AddrPort
	raw      [sockaddrBufSize]byte
	rawLen   uint32
	lastSeen atomic.Int64
	learned  bool
}

// localFilter decides whether a roster address names this node's own
// socket. Matching by rendered-string equality breaks on wildcard
// binds: a node bound to 0.0.0.0:7946 never string-matches its concrete
// roster entry 10.0.0.1:7946 and ends up broadcasting to itself —
// double-counted receives and its own heartbeats fed back. The filter
// therefore matches on (port, local address set): for a wildcard bind
// the set is every local interface address, for a concrete bind it is
// that address alone; an unspecified peer address with the local port
// always matches.
type localFilter struct {
	port  uint16
	bound netip.Addr          // the bound address (may be unspecified)
	ips   map[netip.Addr]bool // local interface addresses (wildcard binds)
}

func newLocalFilter(conn net.PacketConn) localFilter {
	f := localFilter{ips: map[netip.Addr]bool{}}
	if ua, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		ap := ua.AddrPort()
		f.port = ap.Port()
		f.bound = ap.Addr().Unmap()
	}
	if f.bound.IsUnspecified() {
		// Wildcard bind: the socket answers on every local interface
		// address, so all of them are "self". If the interface walk
		// fails we still have the unspecified match below; peers on
		// other hosts are unaffected either way.
		if addrs, err := net.InterfaceAddrs(); err == nil {
			for _, a := range addrs {
				if ipn, ok := a.(*net.IPNet); ok {
					if ip, ok := netip.AddrFromSlice(ipn.IP); ok {
						f.ips[ip.Unmap()] = true
					}
				}
			}
		}
	}
	return f
}

// matches reports whether ap names the local socket.
func (f localFilter) matches(ap netip.AddrPort) bool {
	if ap.Port() != f.port {
		return false
	}
	a := ap.Addr().Unmap()
	if a.IsUnspecified() {
		return true
	}
	if f.bound.IsUnspecified() {
		return f.ips[a]
	}
	return a == f.bound
}

// UDP is a peer-group broadcast transport. It implements core.Transport.
type UDP struct {
	conn    net.PacketConn
	uconn   *net.UDPConn // conn when it is a real UDP socket; enables WriteToUDPAddrPort
	raw     syscall.RawConn
	handler func(event.Message)
	onError func(error)
	flush   time.Duration

	mu      sync.RWMutex
	peers   []*peerAddr
	peerIdx map[netip.AddrPort]*peerAddr

	filter       localFilter
	sock6        bool // bound socket is AF_INET6 (batched path maps v4 peers)
	learn        bool
	suspicion    time.Duration
	sweepEvery   time.Duration
	trackSrc     bool // learn || suspicion > 0: observe datagram sources
	onPeerChange func(addr string, joined bool)
	// now is the failure detector's clock; tests override it before
	// starting any loop to drive the suspicion window deterministically.
	now func() time.Time

	send         ring
	recv         ring
	sendKick     chan struct{}
	dispatchKick chan struct{}

	sent, received, decodeErrs, sendErrs atomic.Uint64
	dropped, recvDropped, batches        atomic.Uint64
	peersLearned, peersEvicted           atomic.Uint64
	mmsgSends, mmsgRecvs                 atomic.Uint64
	// mmsgOK gates the Linux batched-syscall path; it latches false
	// the first time the kernel (or a seccomp filter) rejects the
	// syscall, permanently falling back to the portable path.
	mmsgOK atomic.Bool

	// mw is the writer goroutine's lazily-built sendmmsg state; only
	// writeLoop touches it.
	mw *mmsgWriter

	// handlerHist, when armed by RegisterMetrics, observes the
	// decode-to-return latency of every dispatched handler call.
	handlerHist atomic.Pointer[obs.Hist]
	// dropHook, when armed by SetDropHook, is called after every ring
	// eviction (flight-recorder feed; see pubsub.Node).
	dropHook atomic.Pointer[func(outbound bool)]

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewUDP binds the listen address and resolves the peer group. The read
// loop does NOT run yet: call Start once the handler's dependencies are
// wired. Splitting construction from startup is what makes the handler
// contract race-free — with a constructor-started loop, a datagram could
// reach the handler before the caller had assigned the protocol instance
// the handler closes over. The writer goroutine DOES start here:
// broadcasts work without Start, exactly as before.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	return newUDP(cfg, true)
}

// newUDP is NewUDP with the writer (and suspicion sweeper) goroutines
// optional, so ring semantics and failure-detector timing are testable
// without racing the drains.
func newUDP(cfg UDPConfig, startWriter bool) (*UDP, error) {
	if cfg.Handler == nil {
		return nil, errors.New("transport: nil Handler")
	}
	if cfg.SendQueue < 0 || cfg.RecvQueue < 0 {
		return nil, fmt.Errorf("transport: negative queue bound (send %d, recv %d)", cfg.SendQueue, cfg.RecvQueue)
	}
	if cfg.FlushInterval < 0 {
		return nil, fmt.Errorf("transport: negative FlushInterval %v", cfg.FlushInterval)
	}
	if cfg.Suspicion < 0 || cfg.SuspicionSweep < 0 {
		return nil, fmt.Errorf("transport: negative suspicion window (%v) or sweep (%v)", cfg.Suspicion, cfg.SuspicionSweep)
	}
	sendQ := cfg.SendQueue
	if sendQ == 0 {
		sendQ = DefaultSendQueue
	}
	recvQ := cfg.RecvQueue
	if recvQ == 0 {
		recvQ = DefaultRecvQueue
	}
	conn, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	uconn, _ := conn.(*net.UDPConn)
	u := &UDP{
		conn:         conn,
		uconn:        uconn,
		handler:      cfg.Handler,
		onError:      cfg.OnError,
		flush:        cfg.FlushInterval,
		peerIdx:      map[netip.AddrPort]*peerAddr{},
		filter:       newLocalFilter(conn),
		learn:        cfg.LearnPeers,
		suspicion:    cfg.Suspicion,
		onPeerChange: cfg.OnPeerChange,
		now:          time.Now,
		send:         ring{slots: make([][]byte, sendQ)},
		recv:         ring{slots: make([][]byte, recvQ)},
		sendKick:     make(chan struct{}, 1),
		dispatchKick: make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	u.trackSrc = u.learn || u.suspicion > 0
	if ua, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		u.sock6 = ua.AddrPort().Addr().Is6()
	}
	u.sweepEvery = cfg.SuspicionSweep
	if u.sweepEvery == 0 && u.suspicion > 0 {
		u.sweepEvery = u.suspicion / 4
		if u.sweepEvery < 10*time.Millisecond {
			u.sweepEvery = 10 * time.Millisecond
		}
	}
	if uconn != nil {
		if rc, err := uconn.SyscallConn(); err == nil {
			u.raw = rc
		}
	}
	u.mmsgOK.Store(u.raw != nil)
	for _, p := range cfg.Peers {
		if err := u.AddPeer(p); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if startWriter {
		u.startWriter()
	}
	return u, nil
}

// startWriter launches the send-ring drain goroutine (and, with a
// suspicion window configured, the eviction sweeper). Registered on the
// WaitGroup before launch so Close's wg.Wait always covers them.
func (u *UDP) startWriter() {
	u.wg.Add(1)
	go u.writeLoop()
	if u.suspicion > 0 {
		u.wg.Add(1)
		go u.sweepLoop()
	}
}

// Start launches the read and dispatch loops; incoming datagrams are
// decoded and handed to the configured Handler from here on. It is
// idempotent, safe to race with Close, and must be called before any
// message can be received; broadcasts work without it.
func (u *UDP) Start() {
	u.startOnce.Do(func() {
		// The mutex orders this against Close: after close(done) no
		// loop may start (Close's wg.Wait must not race an Add), and if
		// the loops start first, Close's conn.Close/done will stop them.
		u.mu.Lock()
		defer u.mu.Unlock()
		select {
		case <-u.done:
			return // already closed: nothing to start
		default:
		}
		u.wg.Add(2)
		go u.readLoop()
		go u.dispatchLoop()
	})
}

// LocalAddr returns the bound address (useful with ":0" listens).
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// AddPeer adds a peer address to the broadcast group. Addresses naming
// the local socket — by the bound address, by any local interface
// address under a wildcard bind, or by an unspecified address with the
// local port — are ignored, making it safe to pass the same full roster
// to every node regardless of how each one was bound.
func (u *UDP) AddPeer(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: peer %s: %w", addr, err)
	}
	// Unmap 4-in-6 addresses: ResolveUDPAddr hands back 16-byte IPv4
	// slices, and the mapped ::ffff:a.b.c.d form is rejected by IPv4
	// sockets on the WriteToUDPAddrPort fast path.
	ap := netip.AddrPortFrom(ua.AddrPort().Addr().Unmap(), uint16(ua.Port))
	if u.filter.matches(ap) {
		return nil
	}
	if added := u.addPeer(ap, ua, false); added && u.onPeerChange != nil {
		u.onPeerChange(ap.String(), true)
	}
	return nil
}

// addPeer inserts ap unless already present; learned marks roster
// growth from an observed datagram source.
func (u *UDP) addPeer(ap netip.AddrPort, ua *net.UDPAddr, learned bool) bool {
	if ua == nil {
		ua = net.UDPAddrFromAddrPort(ap)
	}
	p := &peerAddr{ua: ua, ap: ap, learned: learned}
	p.rawLen = u.fillSockaddr(ap, &p.raw)
	p.lastSeen.Store(u.now().UnixNano())
	u.mu.Lock()
	if _, dup := u.peerIdx[ap]; dup {
		u.mu.Unlock()
		return false
	}
	u.peerIdx[ap] = p
	u.peers = append(u.peers, p)
	u.mu.Unlock()
	if learned {
		u.peersLearned.Add(1)
	}
	return true
}

// RemovePeer drops a peer address from the broadcast group, reporting
// whether it was present. In-flight batches may still reach the peer;
// no datagram is sent to it afterwards.
func (u *UDP) RemovePeer(addr string) bool {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return false
	}
	ap := netip.AddrPortFrom(ua.AddrPort().Addr().Unmap(), uint16(ua.Port))
	u.mu.Lock()
	p := u.peerIdx[ap]
	if p != nil {
		delete(u.peerIdx, ap)
		u.removeFromRoster(p)
	}
	u.mu.Unlock()
	if p != nil && u.onPeerChange != nil {
		u.onPeerChange(ap.String(), false)
	}
	return p != nil
}

// removeFromRoster rebuilds the peer slice without p. Callers hold
// u.mu. A fresh slice is allocated on purpose: sendBatch snapshots the
// slice header under RLock and then fans out unlocked, so the old
// backing array must stay intact.
func (u *UDP) removeFromRoster(p *peerAddr) {
	next := make([]*peerAddr, 0, len(u.peers)-1)
	for _, q := range u.peers {
		if q != p {
			next = append(next, q)
		}
	}
	u.peers = next
}

// Peers returns the current roster, sorted. Useful for inspecting
// dynamic membership; the snapshot is immediately stale under churn.
func (u *UDP) Peers() []string {
	u.mu.RLock()
	out := make([]string, len(u.peers))
	for i, p := range u.peers {
		out[i] = p.ap.String()
	}
	u.mu.RUnlock()
	sort.Strings(out)
	return out
}

// PeerCount returns the current roster size.
func (u *UDP) PeerCount() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.peers)
}

// observeSource feeds the membership layer one datagram source: refresh
// the sender's suspicion clock, or — with LearnPeers — join it to the
// roster. Called from the socket read goroutine for every datagram when
// tracking is on.
func (u *UDP) observeSource(src netip.AddrPort) {
	if !src.IsValid() {
		return
	}
	u.mu.RLock()
	p := u.peerIdx[src]
	u.mu.RUnlock()
	if p != nil {
		if u.suspicion > 0 {
			p.lastSeen.Store(u.now().UnixNano())
		}
		return
	}
	if !u.learn || u.filter.matches(src) {
		return
	}
	if added := u.addPeer(src, nil, true); added && u.onPeerChange != nil {
		u.onPeerChange(src.String(), true)
	}
}

// sweepSilent evicts every peer whose last datagram is older than the
// suspicion window at the given instant, returning how many were
// evicted. The sweeper goroutine calls it on a ticker; tests call it
// directly with a fake clock.
func (u *UDP) sweepSilent(now time.Time) int {
	cut := now.Add(-u.suspicion).UnixNano()
	var evicted []*peerAddr
	u.mu.Lock()
	for _, p := range u.peers {
		if p.lastSeen.Load() < cut {
			evicted = append(evicted, p)
		}
	}
	for _, p := range evicted {
		delete(u.peerIdx, p.ap)
		u.removeFromRoster(p)
	}
	u.mu.Unlock()
	for _, p := range evicted {
		u.peersEvicted.Add(1)
		if u.onPeerChange != nil {
			u.onPeerChange(p.ap.String(), false)
		}
	}
	return len(evicted)
}

// sweepLoop runs the suspicion-window failure detector.
func (u *UDP) sweepLoop() {
	defer u.wg.Done()
	t := time.NewTicker(u.sweepEvery)
	defer t.Stop()
	for {
		select {
		case <-u.done:
			return
		case <-t.C:
			u.sweepSilent(u.now())
		}
	}
}

// Broadcast implements core.Transport: marshal into a pooled ring slot
// and return. The writer goroutine fans the message out to every peer
// in its next flush batch; a full ring drops the oldest queued message
// (counted in Stats.Dropped) rather than blocking the protocol layer.
// After Close the message is counted as dropped immediately — nothing
// will ever drain the ring. Steady-state cost is zero heap allocations:
// the slot buffer is reused and AppendMarshal writes in place.
func (u *UDP) Broadcast(m event.Message) {
	u.send.mu.Lock()
	// The done check shares the ring mutex with Close's final drain, so
	// every broadcast is accounted exactly once: enqueued before the
	// drain (the drain counts it) or refused after (counted here).
	select {
	case <-u.done:
		u.send.mu.Unlock()
		u.dropped.Add(1)
		if fn := u.dropHook.Load(); fn != nil {
			(*fn)(true)
		}
		return
	default:
	}
	slot, droppedOldest := u.send.push()
	*slot = event.AppendMarshal((*slot)[:0], m)
	u.send.mu.Unlock()
	if droppedOldest {
		u.dropped.Add(1)
		if fn := u.dropHook.Load(); fn != nil {
			(*fn)(true)
		}
	}
	select {
	case u.sendKick <- struct{}{}:
	default: // writer already signaled
	}
}

// writeLoop drains the send ring: wake on a kick, optionally linger
// FlushInterval so nearby broadcasts coalesce, then swap the queued
// slot buffers into a local slab and fan each message out to the peer
// group — one sendmmsg per batch on Linux, one WriteTo per packet
// elsewhere. Messages swapped out but never handed to the socket on a
// shutdown mid-batch are counted as dropped, keeping the broadcast
// conservation law exact.
func (u *UDP) writeLoop() {
	defer u.wg.Done()
	batch := make([][]byte, len(u.send.slots))
	flushTimer := time.NewTimer(time.Hour)
	if !flushTimer.Stop() {
		<-flushTimer.C
	}
	for {
		select {
		case <-u.done:
			return
		case <-u.sendKick:
		}
		if u.flush > 0 {
			flushTimer.Reset(u.flush)
			select {
			case <-u.done:
				flushTimer.Stop()
				return
			case <-flushTimer.C:
			}
		}
		for {
			select {
			case <-u.done:
				return
			default:
			}
			// Swap filled slots out, spare buffers in: Broadcast keeps
			// marshaling into the ring while this batch is on the wire.
			u.send.mu.Lock()
			n := 0
			for u.send.count > 0 {
				i := u.send.tail
				batch[n], u.send.slots[i] = u.send.slots[i], batch[n]
				u.send.tail = (u.send.tail + 1) % len(u.send.slots)
				u.send.count--
				n++
			}
			u.send.mu.Unlock()
			if n == 0 {
				break
			}
			if completed := u.sendBatch(batch[:n]); completed < n {
				// Shutdown mid-batch: the remaining messages were
				// swapped out of the ring but never offered to the
				// socket — account them like ring drops.
				u.dropped.Add(uint64(n - completed))
				return
			}
		}
	}
}

// sendBatch fans one coalesced slab of messages out to the peer group
// and returns how many messages were fully offered to the socket (all
// of them except on a shutdown mid-batch).
func (u *UDP) sendBatch(batch [][]byte) int {
	u.mu.RLock()
	peers := u.peers
	u.mu.RUnlock()
	if len(peers) == 0 {
		u.batches.Add(1)
		return len(batch)
	}
	handled, completed := u.sendBatchOS(batch, peers)
	if !handled {
		completed = u.sendBatchPortable(batch, peers)
	}
	if completed == len(batch) {
		u.batches.Add(1)
	}
	return completed
}

// sendBatchPortable is the per-packet fallback: one WriteTo per
// (message, peer) pair. Returns the number of fully-offered messages.
func (u *UDP) sendBatchPortable(batch [][]byte, peers []*peerAddr) int {
	for mi, wire := range batch {
		for i := range peers {
			var err error
			if u.uconn != nil {
				_, err = u.uconn.WriteToUDPAddrPort(wire, peers[i].ap)
			} else {
				_, err = u.conn.WriteTo(wire, peers[i].ua)
			}
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return mi // shutdown mid-batch: Close owns the socket now
				}
				u.sendErrs.Add(1)
				u.reportError(fmt.Errorf("transport: send to %s: %w", peers[i].ua, err))
				continue
			}
			u.sent.Add(1)
		}
	}
	return len(batch)
}

// Stats returns a snapshot of the counters.
func (u *UDP) Stats() Stats {
	return Stats{
		DatagramsSent:     u.sent.Load(),
		DatagramsReceived: u.received.Load(),
		DecodeErrors:      u.decodeErrs.Load(),
		SendErrors:        u.sendErrs.Load(),
		Dropped:           u.dropped.Load(),
		RecvDropped:       u.recvDropped.Load(),
		Batches:           u.batches.Load(),
		PeersLearned:      u.peersLearned.Load(),
		PeersEvicted:      u.peersEvicted.Load(),
		MmsgSends:         u.mmsgSends.Load(),
		MmsgRecvs:         u.mmsgRecvs.Load(),
	}
}

// Close stops the writer and (if started) the read/dispatch/sweep
// loops, and releases the socket. Messages still queued in either ring
// are accounted — send-ring leftovers into Stats.Dropped, dispatch-ring
// leftovers into Stats.RecvDropped — so the drop counters tell the
// whole truth at shutdown. It is idempotent and safe to race with Start
// and with in-flight Broadcasts/flushes.
func (u *UDP) Close() error {
	var err error
	u.closeOnce.Do(func() {
		u.mu.Lock()
		close(u.done)
		u.mu.Unlock()
		err = u.conn.Close() // also unblocks a writer stuck in WriteTo
		u.wg.Wait()
		// All loops have exited; whatever the rings still hold will
		// never be served. The ring mutexes order these drains against
		// concurrent Broadcasts (see Broadcast's done check).
		if n := u.send.drain(); n > 0 {
			u.dropped.Add(uint64(n))
			u.fireDropHook(true, n)
		}
		if n := u.recv.drain(); n > 0 {
			u.recvDropped.Add(uint64(n))
			u.fireDropHook(false, n)
		}
	})
	return err
}

func (u *UDP) fireDropHook(outbound bool, n int) {
	fn := u.dropHook.Load()
	if fn == nil {
		return
	}
	for i := 0; i < n; i++ {
		(*fn)(outbound)
	}
}

// readLoop moves raw datagrams from the socket into the dispatch ring.
// It does no decoding and never calls the handler: its only job is to
// keep the kernel buffer drained so bursts are absorbed by our bounded
// ring (with accounted drops) instead of silent kernel tail drops. On
// Linux it drains up to a whole recvmmsg batch per syscall. Persistent
// errors back off exponentially (capped) instead of hot-spinning.
func (u *UDP) readLoop() {
	defer u.wg.Done()
	rb := u.newReadBatcher()
	var backoff time.Duration
	for {
		n, err := rb.read()
		if err != nil {
			select {
			case <-u.done:
				return // closed: expected
			default:
			}
			u.reportError(fmt.Errorf("transport: read: %w", err))
			if backoff == 0 {
				backoff = readBackoffMin
			} else if backoff < readBackoffMax {
				backoff *= 2
				if backoff > readBackoffMax {
					backoff = readBackoffMax
				}
			}
			select {
			case <-u.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		for i := 0; i < n; i++ {
			u.ingest(rb.datagram(i))
		}
	}
}

// ingest accounts one received datagram: membership tracking, then the
// bounded dispatch ring.
func (u *UDP) ingest(data []byte, src netip.AddrPort) {
	if u.trackSrc {
		u.observeSource(src)
	}
	u.recv.mu.Lock()
	slot, droppedOldest := u.recv.push()
	*slot = append((*slot)[:0], data...)
	u.recv.mu.Unlock()
	if droppedOldest {
		u.recvDropped.Add(1)
		if fn := u.dropHook.Load(); fn != nil {
			(*fn)(false)
		}
	}
	select {
	case u.dispatchKick <- struct{}{}:
	default:
	}
}

// readOne is the portable single-datagram read, also the fallback when
// the batched syscall path is unavailable.
func (u *UDP) readOne(buf []byte) (int, netip.AddrPort, error) {
	if u.uconn != nil {
		n, ap, err := u.uconn.ReadFromUDPAddrPort(buf)
		return n, netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), err
	}
	n, a, err := u.conn.ReadFrom(buf)
	var ap netip.AddrPort
	if ua, ok := a.(*net.UDPAddr); ok {
		p := ua.AddrPort()
		ap = netip.AddrPortFrom(p.Addr().Unmap(), p.Port())
	}
	return n, ap, err
}

// dispatchLoop decodes queued datagrams and runs the handler, one
// message at a time off the socket goroutine. The pop swaps a spare
// buffer into the ring, so the loop is allocation-free once slot
// buffers are warm; Unmarshal copies what it keeps, so the buffer is
// immediately reusable.
func (u *UDP) dispatchLoop() {
	defer u.wg.Done()
	var spare []byte
	for {
		select {
		case <-u.done:
			return
		case <-u.dispatchKick:
		}
		for {
			u.recv.mu.Lock()
			data, ok := u.recv.pop(spare)
			u.recv.mu.Unlock()
			if !ok {
				break
			}
			msg, err := event.Unmarshal(data)
			spare = data // reclaim the buffer for the next pop
			if err != nil {
				u.decodeErrs.Add(1)
				u.reportError(fmt.Errorf("transport: decode %d bytes: %w", len(data), err))
				continue
			}
			u.received.Add(1)
			if h := u.handlerHist.Load(); h != nil {
				start := time.Now()
				u.handler(msg)
				h.Observe(time.Since(start).Seconds())
			} else {
				u.handler(msg)
			}
			select {
			case <-u.done:
				return
			default:
			}
		}
	}
}

func (u *UDP) reportError(err error) {
	if u.onError != nil {
		u.onError(err)
	}
}
