package transport

import (
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

// TestUDPWildcardBindSelfFiltered is the regression test for the
// wildcard self-echo bug: a node bound to 0.0.0.0 never string-matches
// its concrete roster entry, so the old AddPeer filter let it broadcast
// to itself. The filter must match any local interface address carrying
// the bound port.
func TestUDPWildcardBindSelfFiltered(t *testing.T) {
	var c collect
	u, err := NewUDP(UDPConfig{Listen: "0.0.0.0:0", Handler: c.handle})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	u.Start()
	port := u.LocalAddr().(*net.UDPAddr).Port
	self := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(port)).String()
	// The deployment roster names the node by a concrete address, not
	// by its wildcard bind string.
	if err := u.AddPeer(self); err != nil {
		t.Fatal(err)
	}
	if n := u.PeerCount(); n != 0 {
		t.Fatalf("concrete self address joined the roster of a wildcard bind (peers: %v)", u.Peers())
	}
	u.Broadcast(event.Heartbeat{From: 1})
	time.Sleep(50 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("wildcard-bound node received its own broadcast")
	}
	if s := u.Stats(); s.DatagramsSent != 0 {
		t.Fatalf("self peer not filtered: %d datagrams sent", s.DatagramsSent)
	}
	// The same address with a DIFFERENT port is a real peer.
	other := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(port)+1).String()
	if err := u.AddPeer(other); err != nil {
		t.Fatal(err)
	}
	if n := u.PeerCount(); n != 1 {
		t.Fatalf("distinct-port loopback peer filtered as self (peers: %v)", u.Peers())
	}
}

// TestUDPShutdownDropConservation pins the shutdown accounting law on
// the send side: every broadcast is either sent to each peer or counted
// in Stats.Dropped — including messages still queued at Close and
// messages broadcast after Close.
func TestUDPShutdownDropConservation(t *testing.T) {
	const queue = 4
	// Writer deliberately not started: everything queues.
	u, err := newUDP(UDPConfig{
		Listen:    "127.0.0.1:0",
		Handler:   func(event.Message) {},
		SendQueue: queue,
	}, false)
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	const total = queue + 3
	for i := 0; i < total; i++ {
		u.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	if got := u.Stats().Dropped; got != total-queue {
		t.Fatalf("pre-close Dropped = %d, want %d (ring overflow)", got, total-queue)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	// The queue entries nothing ever drained are now accounted too.
	if got := u.Stats().Dropped; got != total {
		t.Fatalf("post-close Dropped = %d, want %d (queued entries discarded silently)", got, total)
	}
	// Broadcast after Close lands in a ring no writer will ever serve:
	// it must be counted immediately, not queued into a lie.
	u.Broadcast(event.IDList{From: 99})
	if got := u.Stats().Dropped; got != total+1 {
		t.Fatalf("post-close broadcast Dropped = %d, want %d", got, total+1)
	}
	if s := u.Stats(); s.DatagramsSent != 0 {
		t.Fatalf("writer-less transport sent %d datagrams", s.DatagramsSent)
	}
}

// TestUDPLiveCloseConservation races a live writer against Close and
// asserts the conservation law broadcasts == DatagramsSent/peers +
// Dropped regardless of where the shutdown lands (mid-batch messages
// swapped out of the ring but never offered to the socket must be
// counted as dropped, not lost).
func TestUDPLiveCloseConservation(t *testing.T) {
	for round := 0; round < 20; round++ {
		recv, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}})
		if err != nil {
			t.Skipf("UDP unavailable: %v", err)
		}
		recv.Start()
		u, err := NewUDP(UDPConfig{
			Listen:  "127.0.0.1:0",
			Peers:   []string{recv.LocalAddr().String()},
			Handler: func(event.Message) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		const total = 64
		for i := 0; i < total; i++ {
			u.Broadcast(event.IDList{From: event.NodeID(i)})
		}
		u.Close()
		s := u.Stats()
		if s.SendErrors != 0 {
			t.Fatalf("round %d: unexpected send errors: %+v", round, s)
		}
		if s.DatagramsSent+s.Dropped != total {
			t.Fatalf("round %d: conservation broken: sent %d + dropped %d != %d broadcasts",
				round, s.DatagramsSent, s.Dropped, total)
		}
		recv.Close()
	}
}

// TestUDPRecvCloseConservation pins the receive-side law: every
// datagram accepted from the socket is either dispatched to the handler
// (DatagramsReceived) or counted in RecvDropped — including datagrams
// still queued in the dispatch ring when Close runs.
func TestUDPRecvCloseConservation(t *testing.T) {
	const (
		queue = 4
		total = 10
	)
	release := make(chan struct{})
	var c collect
	first := true
	recv, err := NewUDP(UDPConfig{
		Listen: "127.0.0.1:0",
		Handler: func(m event.Message) {
			if first {
				first = false // dispatcher is single-goroutine
				<-release
			}
			c.handle(m)
		},
		RecvQueue: queue,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	recv.Start()
	sender, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Peers:   []string{recv.LocalAddr().String()},
		Handler: func(event.Message) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	for i := 0; i < total; i++ {
		sender.Broadcast(event.IDList{From: event.NodeID(i)})
	}
	// Wait until all datagrams are accounted somewhere on the receive
	// side: delivered (the one stuck in the handler counts — received
	// increments before dispatch), queued, or evicted by ring overflow.
	waitFor(t, func() bool {
		_, depth := recv.QueueDepths()
		s := recv.Stats()
		return s.DatagramsReceived+s.RecvDropped+uint64(depth) == total
	}, "all datagrams accounted on receiver")
	done := make(chan error, 1)
	go func() { done <- recv.Close() }()
	close(release) // un-stick the handler so dispatch can wind down
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := recv.Stats()
	if s.DatagramsReceived+s.RecvDropped != total {
		t.Fatalf("conservation broken: received %d + recv-dropped %d != %d sent (queued entries discarded silently?)",
			s.DatagramsReceived, s.RecvDropped, total)
	}
	if s.RecvDropped == 0 {
		t.Fatalf("test not exercising the drop path: %+v", s)
	}
}

// TestUDPReadLoopBackoff pins the hot-spin fix: a persistent
// non-ErrClosed read error must back off (capped) instead of spinning a
// core and flooding OnError. Killing the descriptor out from under the
// transport (without Close, so done stays open) makes every read fail
// forever.
func TestUDPReadLoopBackoff(t *testing.T) {
	var mu sync.Mutex
	var errCount int
	u, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Handler: func(event.Message) {},
		OnError: func(error) { mu.Lock(); errCount++; mu.Unlock() },
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	u.Start()
	u.conn.Close() // not u.Close(): the read loop sees a "transient" error forever
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	n := errCount
	mu.Unlock()
	if n == 0 {
		t.Fatal("read error never reported")
	}
	// Doubling from 1ms capped at 100ms yields ~10 errors in 300ms; a
	// hot spin yields tens of thousands. Generous bound for slow CI.
	if n > 60 {
		t.Fatalf("read loop reported %d errors in 300ms: backoff not engaging", n)
	}
	u.Close()
}

// --- membership conformance suite ---

// TestUDPLearnPeers: a seed-based join. B knows A (seed); A starts with
// an empty roster and LearnPeers. B's first datagram teaches A about B,
// after which A's broadcasts reach B — the join propagated from one
// observed datagram source, no global roster.
func TestUDPLearnPeers(t *testing.T) {
	var ca, cb collect
	a, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: ca.handle, LearnPeers: true})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer a.Close()
	a.Start()
	b, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Peers:   []string{a.LocalAddr().String()},
		Handler: cb.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	if n := a.PeerCount(); n != 0 {
		t.Fatalf("a starts with %d peers, want 0", n)
	}
	b.Broadcast(event.Heartbeat{From: 2})
	waitFor(t, func() bool { return a.PeerCount() == 1 }, "a learns b from the datagram source")
	if s := a.Stats(); s.PeersLearned != 1 {
		t.Fatalf("PeersLearned = %d, want 1", s.PeersLearned)
	}
	if got, want := a.Peers()[0], b.LocalAddr().(*net.UDPAddr).AddrPort().String(); got != want {
		t.Fatalf("a learned %q, want %q", got, want)
	}
	a.Broadcast(event.Heartbeat{From: 1})
	waitFor(t, func() bool { return cb.count() == 1 }, "a's broadcast reaches the learned peer")
	// Repeat datagrams must not duplicate the roster entry.
	b.Broadcast(event.Heartbeat{From: 2})
	waitFor(t, func() bool { return ca.count() == 2 }, "second heartbeat at a")
	if n := a.PeerCount(); n != 1 {
		t.Fatalf("duplicate source grew the roster to %d", n)
	}
}

// TestUDPRemovePeer: an explicit leave. After RemovePeer the node sends
// nothing to the departed peer (observable deterministically through
// the sent counter against an empty roster).
func TestUDPRemovePeer(t *testing.T) {
	a, b, _, cb := newPair(t)
	addr := b.LocalAddr().String()
	a.Broadcast(event.IDList{From: 1})
	waitFor(t, func() bool { return cb.count() == 1 }, "pre-removal delivery")
	if !a.RemovePeer(addr) {
		t.Fatal("RemovePeer reported the peer absent")
	}
	if a.RemovePeer(addr) {
		t.Fatal("second RemovePeer reported the peer still present")
	}
	if n := a.PeerCount(); n != 0 {
		t.Fatalf("roster has %d peers after removal: %v", n, a.Peers())
	}
	sent := a.Stats().DatagramsSent
	a.Broadcast(event.IDList{From: 1})
	waitFor(t, func() bool { return a.Stats().Batches >= 2 }, "post-removal flush")
	if got := a.Stats().DatagramsSent; got != sent {
		t.Fatalf("broadcast after removal still sent datagrams (%d -> %d)", sent, got)
	}
}

// TestUDPSuspicionDeterministic drives the failure detector on a fake
// clock: no goroutines, no sleeps — eviction timing is exact. A peer is
// kept alive precisely as long as datagrams keep arriving inside the
// suspicion window and evicted on the first sweep past it; a rejoin via
// LearnPeers works after eviction.
func TestUDPSuspicionDeterministic(t *testing.T) {
	var changes []string
	var mu sync.Mutex
	u, err := newUDP(UDPConfig{
		Listen:     "127.0.0.1:0",
		Handler:    func(event.Message) {},
		LearnPeers: true,
		Suspicion:  time.Second,
		OnPeerChange: func(addr string, joined bool) {
			mu.Lock()
			if joined {
				changes = append(changes, "+"+addr)
			} else {
				changes = append(changes, "-"+addr)
			}
			mu.Unlock()
		},
	}, false) // no background loops: the test owns the clock and the sweeps
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	t0 := time.Unix(1000, 0)
	now := t0
	u.now = func() time.Time { return now }
	peer := netip.MustParseAddrPort("127.0.0.9:4242")
	if err := u.AddPeer(peer.String()); err != nil {
		t.Fatal(err)
	}
	// Inside the window: nothing to evict.
	now = t0.Add(900 * time.Millisecond)
	if n := u.sweepSilent(now); n != 0 {
		t.Fatalf("evicted %d peers inside the suspicion window", n)
	}
	// A datagram from the peer refreshes its clock...
	now = t0.Add(950 * time.Millisecond)
	u.observeSource(peer)
	// ...so a sweep past the ORIGINAL deadline keeps it.
	now = t0.Add(1800 * time.Millisecond)
	if n := u.sweepSilent(now); n != 0 {
		t.Fatalf("refreshed peer evicted (%d)", n)
	}
	// Silence past the refreshed deadline evicts it.
	now = t0.Add(2 * time.Second)
	if n := u.sweepSilent(now); n != 1 {
		t.Fatalf("sweep at +2s evicted %d peers, want 1", n)
	}
	if n := u.PeerCount(); n != 0 {
		t.Fatalf("roster still has %d peers after eviction", n)
	}
	if s := u.Stats(); s.PeersEvicted != 1 {
		t.Fatalf("PeersEvicted = %d, want 1", s.PeersEvicted)
	}
	// Rejoin: the next datagram from the evicted peer re-learns it.
	u.observeSource(peer)
	if n := u.PeerCount(); n != 1 {
		t.Fatalf("evicted peer did not rejoin on its next datagram (%d peers)", n)
	}
	if s := u.Stats(); s.PeersLearned != 1 {
		t.Fatalf("PeersLearned = %d, want 1 (the rejoin)", s.PeersLearned)
	}
	mu.Lock()
	got := strings.Join(changes, " ")
	mu.Unlock()
	want := "+127.0.0.9:4242 -127.0.0.9:4242 +127.0.0.9:4242"
	if got != want {
		t.Fatalf("OnPeerChange sequence = %q, want %q", got, want)
	}
}

// TestUDPEvictionEndToEnd runs the live failure detector on real
// sockets: a learned peer that goes silent is evicted by the sweeper
// goroutine and stops receiving, then rejoins by sending again.
func TestUDPEvictionEndToEnd(t *testing.T) {
	a, err := NewUDP(UDPConfig{
		Listen:         "127.0.0.1:0",
		Handler:        func(event.Message) {},
		LearnPeers:     true,
		Suspicion:      150 * time.Millisecond,
		SuspicionSweep: 20 * time.Millisecond,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer a.Close()
	a.Start()
	var cb collect
	b, err := NewUDP(UDPConfig{
		Listen:  "127.0.0.1:0",
		Peers:   []string{a.LocalAddr().String()},
		Handler: cb.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	b.Broadcast(event.Heartbeat{From: 2})
	waitFor(t, func() bool { return a.PeerCount() == 1 }, "a learns b")
	// b goes silent; the suspicion window runs out.
	waitFor(t, func() bool { return a.PeerCount() == 0 }, "silent peer evicted")
	if s := a.Stats(); s.PeersEvicted != 1 {
		t.Fatalf("PeersEvicted = %d, want 1", s.PeersEvicted)
	}
	sent := a.Stats().DatagramsSent
	a.Broadcast(event.Heartbeat{From: 1})
	time.Sleep(50 * time.Millisecond)
	if got := a.Stats().DatagramsSent; got != sent {
		t.Fatalf("evicted peer still receives datagrams (%d -> %d)", sent, got)
	}
	// Rejoin: one datagram re-learns the peer and delivery resumes.
	b.Broadcast(event.Heartbeat{From: 2})
	waitFor(t, func() bool { return a.PeerCount() == 1 }, "b rejoins")
	if s := a.Stats(); s.PeersLearned != 2 {
		t.Fatalf("PeersLearned = %d, want 2", s.PeersLearned)
	}
	a.Broadcast(event.Heartbeat{From: 1})
	waitFor(t, func() bool { return cb.count() >= 1 }, "delivery resumes after rejoin")
}

// TestUDPLearnNeverSelf: with LearnPeers a node must not learn its own
// address from a datagram source (possible with crafted or reflected
// traffic).
func TestUDPLearnNeverSelf(t *testing.T) {
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Handler: func(event.Message) {}, LearnPeers: true})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	self := u.LocalAddr().(*net.UDPAddr).AddrPort()
	u.observeSource(netip.AddrPortFrom(self.Addr().Unmap(), self.Port()))
	if n := u.PeerCount(); n != 0 {
		t.Fatalf("node learned itself as a peer: %v", u.Peers())
	}
}
