//go:build linux && arm64

package transport

// sysSendmmsg is the sendmmsg syscall number on arm64 (matches
// syscall.SYS_SENDMMSG there; pinned locally so udp_mmsg_linux.go reads
// one name on every supported arch).
const sysSendmmsg = 269
