package topic_test

import (
	"fmt"

	"repro/internal/topic"
)

// ExampleTopic_Contains shows the subtree semantics of subscriptions: a
// topic covers itself and everything below it.
func ExampleTopic_Contains() {
	conferences := topic.MustParse(".grenoble.conferences")
	middleware := topic.MustParse(".grenoble.conferences.middleware")

	fmt.Println(conferences.Contains(middleware))
	fmt.Println(middleware.Contains(conferences))
	// Output:
	// true
	// false
}

// ExampleSet_Covers shows how a subscription set decides interest in a
// published event.
func ExampleSet_Covers() {
	subs := topic.NewSet(topic.MustParse(".city.parking"))

	fmt.Println(subs.Covers(topic.MustParse(".city.parking.lotA")))
	fmt.Println(subs.Covers(topic.MustParse(".city.traffic")))
	// Output:
	// true
	// false
}

// ExampleSet_Minimal shows subscription-list minimization: subtopics
// subsumed by an ancestor carry no extra information on the wire.
func ExampleSet_Minimal() {
	subs := topic.NewSet(
		topic.MustParse(".a"),
		topic.MustParse(".a.b"),
		topic.MustParse(".c"),
	)
	for _, t := range subs.Minimal() {
		fmt.Println(t)
	}
	// Output:
	// .a
	// .c
}
