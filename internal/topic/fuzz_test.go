package topic

import (
	"strings"
	"testing"
)

// FuzzParse pins the parser's invariants on arbitrary input: accepted
// topics must have a canonical form that re-parses to the same value,
// structural accessors must agree with each other, and the parent
// chain must walk to the root in Depth steps — while rejected input
// must fail with an error, never a panic.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		".", "a", ".a", "a.b", ".a.b.c", ".grenoble.conferences.middleware",
		"", "..", "a..b", ".a.", " ", "a b", "a\t.b", "a\n", ".app.news",
		strings.Repeat(".x", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tp, err := Parse(s)
		if err != nil {
			return // rejected: only the absence of a panic matters
		}
		if tp.IsZero() {
			t.Fatalf("Parse(%q) returned the zero topic without error", s)
		}
		canon := tp.String()
		rt, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if rt != tp {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", s, canon, rt.String())
		}
		segs := tp.Segments()
		if len(segs) != tp.Depth() {
			t.Fatalf("%q: %d segments but depth %d", canon, len(segs), tp.Depth())
		}
		if tp.IsRoot() != (tp.Depth() == 0) {
			t.Fatalf("%q: IsRoot and Depth disagree", canon)
		}
		// Rebuilding from the root via Child must reproduce the topic.
		rebuilt := Root()
		for _, seg := range segs {
			var cerr error
			rebuilt, cerr = rebuilt.Child(seg)
			if cerr != nil {
				t.Fatalf("%q: segment %q rejected by Child: %v", canon, seg, cerr)
			}
		}
		if rebuilt != tp {
			t.Fatalf("%q: Child-rebuild produced %q", canon, rebuilt.String())
		}
		// The parent chain must reach the root in exactly Depth steps,
		// and every ancestor must cover the topic.
		cur, steps := tp, 0
		for {
			parent, ok := cur.Parent()
			if !ok {
				break
			}
			steps++
			if steps > tp.Depth() {
				t.Fatalf("%q: parent chain longer than depth %d", canon, tp.Depth())
			}
			if !parent.Contains(tp) {
				t.Fatalf("ancestor %q does not contain %q", parent.String(), canon)
			}
			cur = parent
		}
		if !cur.IsRoot() {
			t.Fatalf("%q: parent chain ended at %q, not the root", canon, cur.String())
		}
		if steps != tp.Depth() {
			t.Fatalf("%q: parent chain length %d != depth %d", canon, steps, tp.Depth())
		}
	})
}
