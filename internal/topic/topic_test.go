package topic

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr error
	}{
		{".", ".", nil},
		{"a", ".a", nil},
		{".a", ".a", nil},
		{"a.b.c", ".a.b.c", nil},
		{".grenoble.conferences.middleware", ".grenoble.conferences.middleware", nil},
		{"", "", ErrEmpty},
		{"a..b", "", ErrBadSegment},
		{"a.b.", "", ErrBadSegment},
		{"..", "", ErrBadSegment},
		{"a b", "", ErrBadSegment},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("Parse(%q) err = %v, want %v", tt.in, err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q) unexpected err: %v", tt.in, err)
			}
			if got.String() != tt.want {
				t.Fatalf("Parse(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("a..b")
}

func TestContains(t *testing.T) {
	tests := []struct {
		anc, desc string
		want      bool
	}{
		{".", ".a.b", true},
		{".", ".", true},
		{".a", ".a", true},
		{".a", ".a.b", true},
		{".a", ".a.b.c", true},
		{".a.b", ".a", false},
		{".a", ".ab", false}, // prefix but not a segment boundary
		{".a.b", ".a.c", false},
		{".T0", ".T0.T1.T2", true},
	}
	for _, tt := range tests {
		anc, desc := MustParse(tt.anc), MustParse(tt.desc)
		if got := anc.Contains(desc); got != tt.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", anc, desc, got, tt.want)
		}
	}
}

func TestZeroTopic(t *testing.T) {
	var z Topic
	if !z.IsZero() {
		t.Fatal("zero value should be IsZero")
	}
	if z.Contains(Root()) || Root().Contains(z) {
		t.Fatal("zero topic should not participate in Contains")
	}
	if z.String() != "<invalid>" {
		t.Fatalf("String = %q", z.String())
	}
	if _, ok := z.Parent(); ok {
		t.Fatal("zero topic has no parent")
	}
}

func TestParentChain(t *testing.T) {
	tp := MustParse(".a.b.c")
	var chain []string
	for {
		chain = append(chain, tp.String())
		p, ok := tp.Parent()
		if !ok {
			break
		}
		tp = p
	}
	want := []string{".a.b.c", ".a.b", ".a", "."}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %q, want %q", i, chain[i], want[i])
		}
	}
}

func TestChild(t *testing.T) {
	c, err := Root().Child("a")
	if err != nil || c.String() != ".a" {
		t.Fatalf("root child = %v, %v", c, err)
	}
	c2, err := c.Child("b")
	if err != nil || c2.String() != ".a.b" {
		t.Fatalf("child = %v, %v", c2, err)
	}
	if _, err := c.Child("x.y"); err == nil {
		t.Fatal("Child with dot should fail")
	}
	if _, err := c.Child(""); err == nil {
		t.Fatal("Child with empty segment should fail")
	}
}

func TestDepthSegments(t *testing.T) {
	if Root().Depth() != 0 {
		t.Fatal("root depth should be 0")
	}
	tp := MustParse(".x.y.z")
	if tp.Depth() != 3 {
		t.Fatalf("depth = %d", tp.Depth())
	}
	segs := tp.Segments()
	if len(segs) != 3 || segs[0] != "x" || segs[2] != "z" {
		t.Fatalf("segments = %v", segs)
	}
}

func TestRelated(t *testing.T) {
	a, ab, c := MustParse(".a"), MustParse(".a.b"), MustParse(".c")
	if !a.Related(ab) || !ab.Related(a) {
		t.Fatal("ancestor/descendant should be related both ways")
	}
	if a.Related(c) {
		t.Fatal("siblings are not related")
	}
}

// randomTopic builds a topic of depth 1..4 from a tiny alphabet so that
// ancestor relationships are common.
func randomTopic(r *rand.Rand) Topic {
	depth := 1 + r.Intn(4)
	tp := Root()
	for i := 0; i < depth; i++ {
		seg := string(rune('a' + r.Intn(3)))
		tp, _ = tp.Child(seg)
	}
	return tp
}

// Property: Contains is reflexive and transitive; Related is symmetric.
func TestContainsProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b, c := randomTopic(r), randomTopic(r), randomTopic(r)
		if !a.Contains(a) {
			return false
		}
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		return a.Related(b) == b.Related(a)
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatal("Contains/Related property violated")
		}
	}
}

// Property: parse/format round-trips.
func TestParseRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		r := rand.New(rand.NewSource(int64(n)))
		tp := randomTopic(r)
		back, err := Parse(tp.String())
		return err == nil && back == tp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsIsSegmentAware(t *testing.T) {
	// Regression: ".conf" must not contain ".conference".
	a, b := MustParse(".conf"), MustParse(".conference")
	if a.Contains(b) || b.Contains(a) {
		t.Fatal("prefix without segment boundary must not match")
	}
	if !strings.HasPrefix(b.String(), a.String()) {
		t.Fatal("test precondition: string prefix must hold")
	}
}
