package topic

import (
	"sort"
	"testing"
)

func TestTreeAddAt(t *testing.T) {
	var tr Tree[int]
	a, ab := MustParse(".a"), MustParse(".a.b")
	tr.Add(a, 1)
	tr.Add(ab, 2)
	tr.Add(ab, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.At(a); len(got) != 1 || got[0] != 1 {
		t.Fatalf("At(.a) = %v", got)
	}
	if got := tr.At(ab); len(got) != 2 {
		t.Fatalf("At(.a.b) = %v", got)
	}
	if got := tr.At(MustParse(".zz")); got != nil {
		t.Fatalf("At missing = %v", got)
	}
}

func TestTreeWalkSubtree(t *testing.T) {
	var tr Tree[int]
	tr.Add(MustParse(".a"), 1)
	tr.Add(MustParse(".a.b"), 2)
	tr.Add(MustParse(".a.b.c"), 3)
	tr.Add(MustParse(".x"), 4)

	collect := func(at Topic) []int {
		var out []int
		tr.WalkSubtree(at, func(_ Topic, v int) bool {
			out = append(out, v)
			return true
		})
		sort.Ints(out)
		return out
	}

	if got := collect(MustParse(".a")); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("subtree .a = %v", got)
	}
	if got := collect(Root()); len(got) != 4 {
		t.Fatalf("subtree root = %v", got)
	}
	if got := collect(MustParse(".x")); len(got) != 1 || got[0] != 4 {
		t.Fatalf("subtree .x = %v", got)
	}
	if got := collect(MustParse(".none")); len(got) != 0 {
		t.Fatalf("subtree .none = %v", got)
	}
}

func TestTreeWalkEarlyStop(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 10; i++ {
		tr.Add(MustParse(".a"), i)
	}
	seen := 0
	tr.WalkSubtree(Root(), func(_ Topic, _ int) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("seen = %d, want 3 (early stop)", seen)
	}
}

func TestTreeWalkReportsTopics(t *testing.T) {
	var tr Tree[string]
	tr.Add(MustParse(".a.b"), "v")
	tr.WalkSubtree(MustParse(".a"), func(at Topic, v string) bool {
		if at.String() != ".a.b" {
			t.Errorf("walk topic = %v, want .a.b", at)
		}
		return true
	})
}

func TestTreeRemoveFunc(t *testing.T) {
	var tr Tree[int]
	ab := MustParse(".a.b")
	for i := 0; i < 5; i++ {
		tr.Add(ab, i)
	}
	n := tr.RemoveFunc(ab, func(v int) bool { return v%2 == 0 })
	if n != 3 {
		t.Fatalf("removed = %d, want 3", n)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	left := tr.At(ab)
	if len(left) != 2 || left[0] != 1 || left[1] != 3 {
		t.Fatalf("left = %v", left)
	}
	if n := tr.RemoveFunc(MustParse(".missing"), func(int) bool { return true }); n != 0 {
		t.Fatalf("RemoveFunc on missing topic = %d", n)
	}
}
