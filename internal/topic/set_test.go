package topic

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	var s Set // zero value usable
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero set should be empty")
	}
	a := MustParse(".a")
	if !s.Add(a) {
		t.Fatal("first Add should report change")
	}
	if s.Add(a) {
		t.Fatal("second Add should report no change")
	}
	if !s.Has(a) || s.Len() != 1 {
		t.Fatal("membership after Add")
	}
	if !s.Remove(a) || s.Remove(a) {
		t.Fatal("Remove semantics")
	}
	if !s.Empty() {
		t.Fatal("set should be empty after Remove")
	}
}

func TestSetAddZeroTopic(t *testing.T) {
	var s Set
	if s.Add(Topic{}) {
		t.Fatal("adding zero topic should be a no-op")
	}
	if !s.Empty() {
		t.Fatal("set should remain empty")
	}
}

func TestSetCovers(t *testing.T) {
	s := NewSet(MustParse(".t0.t1"))
	tests := []struct {
		tp   string
		want bool
	}{
		{".t0.t1", true},
		{".t0.t1.t2", true}, // subtopic events are covered
		{".t0", false},      // ancestor events are not
		{".t9", false},
	}
	for _, tt := range tests {
		if got := s.Covers(MustParse(tt.tp)); got != tt.want {
			t.Errorf("Covers(%s) = %v, want %v", tt.tp, got, tt.want)
		}
	}
}

func TestSetOverlaps(t *testing.T) {
	t0 := NewSet(MustParse(".t0"))
	t1 := NewSet(MustParse(".t0.t1"))
	t2 := NewSet(MustParse(".t0.t1.t2"))
	other := NewSet(MustParse(".x"))
	empty := NewSet()

	if !t0.Overlaps(t2) || !t2.Overlaps(t0) {
		t.Fatal("ancestor/descendant sets must overlap (paper Fig 1)")
	}
	if !t1.Overlaps(t2) {
		t.Fatal("t1/t2 must overlap")
	}
	if t1.Overlaps(other) {
		t.Fatal("unrelated sets must not overlap")
	}
	if empty.Overlaps(t0) || t0.Overlaps(empty) {
		t.Fatal("empty set overlaps nothing")
	}
	if t0.Overlaps(nil) {
		t.Fatal("nil set overlaps nothing")
	}
}

func TestSetTopicsSorted(t *testing.T) {
	s := NewSet(MustParse(".c"), MustParse(".a"), MustParse(".b"))
	ts := s.Topics()
	if len(ts) != 3 || ts[0].String() != ".a" || ts[2].String() != ".c" {
		t.Fatalf("Topics = %v", ts)
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet(MustParse(".a"))
	c := s.Clone()
	c.Add(MustParse(".b"))
	if s.Has(MustParse(".b")) {
		t.Fatal("Clone must be independent")
	}
	if !s.Equal(NewSet(MustParse(".a"))) {
		t.Fatal("Equal on same content")
	}
	if s.Equal(c) {
		t.Fatal("Equal on different content")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(MustParse(".b"), MustParse(".a"))
	if got := s.String(); got != "{.a,.b}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Overlaps is symmetric, and Covers(t) implies Overlaps with any
// set containing t.
func TestOverlapsSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		a, b := NewSet(), NewSet()
		for j := 0; j < 1+r.Intn(3); j++ {
			a.Add(randomTopic(r))
			b.Add(randomTopic(r))
		}
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("Overlaps not symmetric: %v vs %v", a, b)
		}
		tp := randomTopic(r)
		if a.Covers(tp) && !a.Overlaps(NewSet(tp)) {
			t.Fatalf("Covers without Overlaps: %v, %v", a, tp)
		}
	}
}

func TestMinimal(t *testing.T) {
	tests := []struct {
		name string
		in   []string
		want []string
	}{
		{"empty", nil, nil},
		{"disjoint", []string{".a", ".b"}, []string{".a", ".b"}},
		{"child subsumed", []string{".a", ".a.b"}, []string{".a"}},
		{"deep chain", []string{".a", ".a.b", ".a.b.c"}, []string{".a"}},
		{"root wins", []string{".", ".x", ".y.z"}, []string{"."}},
		{"mixed", []string{".a.b", ".a.b.c", ".d"}, []string{".a.b", ".d"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSet()
			for _, n := range tt.in {
				s.Add(MustParse(n))
			}
			got := s.Minimal()
			if len(got) != len(tt.want) {
				t.Fatalf("Minimal = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i].String() != tt.want[i] {
					t.Fatalf("Minimal = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// Property: the minimal set covers exactly the same topics as the full
// set.
func TestMinimalCoverageEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		s := NewSet()
		for j := 0; j < 1+r.Intn(5); j++ {
			s.Add(randomTopic(r))
		}
		min := NewSet(s.Minimal()...)
		for j := 0; j < 20; j++ {
			probe := randomTopic(r)
			if s.Covers(probe) != min.Covers(probe) {
				t.Fatalf("coverage differs for %v: full %v minimal %v",
					probe, s, min)
			}
		}
		if min.Len() > s.Len() {
			t.Fatal("minimal set larger than original")
		}
	}
}
