package topic

// Tree is a hierarchical map from topics to values, mirroring the topic
// tree. It supports efficient subtree walks, which the event table uses to
// answer "all events under any of these subscriptions" queries the way the
// paper's Figure 3 organizes stored events.
//
// The zero value is an empty tree ready to use.
type Tree[V any] struct {
	root *treeNode[V]
	size int
}

type treeNode[V any] struct {
	children map[string]*treeNode[V]
	values   []V
}

func (n *treeNode[V]) child(seg string, create bool) *treeNode[V] {
	if c, ok := n.children[seg]; ok {
		return c
	}
	if !create {
		return nil
	}
	if n.children == nil {
		n.children = make(map[string]*treeNode[V])
	}
	c := &treeNode[V]{}
	n.children[seg] = c
	return c
}

func (tr *Tree[V]) node(t Topic, create bool) *treeNode[V] {
	if tr.root == nil {
		if !create {
			return nil
		}
		tr.root = &treeNode[V]{}
	}
	n := tr.root
	for _, seg := range t.Segments() {
		if n = n.child(seg, create); n == nil {
			return nil
		}
	}
	return n
}

// Add appends v to the values stored at topic t.
func (tr *Tree[V]) Add(t Topic, v V) {
	if t.IsZero() {
		return
	}
	n := tr.node(t, true)
	n.values = append(n.values, v)
	tr.size++
}

// At returns the values stored exactly at t (not its subtree).
func (tr *Tree[V]) At(t Topic) []V {
	n := tr.node(t, false)
	if n == nil {
		return nil
	}
	return n.values
}

// Len returns the total number of stored values.
func (tr *Tree[V]) Len() int { return tr.size }

// WalkSubtree calls fn for every value stored at t or below it, passing
// the value's topic. Iteration stops early when fn returns false.
func (tr *Tree[V]) WalkSubtree(t Topic, fn func(Topic, V) bool) {
	n := tr.node(t, false)
	if n == nil {
		return
	}
	walk(n, t, fn)
}

func walk[V any](n *treeNode[V], at Topic, fn func(Topic, V) bool) bool {
	for _, v := range n.values {
		if !fn(at, v) {
			return false
		}
	}
	for seg, c := range n.children {
		ct, err := at.Child(seg)
		if err != nil {
			continue
		}
		if !walk(c, ct, fn) {
			return false
		}
	}
	return true
}

// RemoveFunc deletes all values at topic t for which match returns true
// and reports how many were removed. Empty branches are pruned lazily (the
// node remains but holds no values; memory is negligible at our scales).
func (tr *Tree[V]) RemoveFunc(t Topic, match func(V) bool) int {
	n := tr.node(t, false)
	if n == nil {
		return 0
	}
	kept := n.values[:0]
	removed := 0
	for _, v := range n.values {
		if match(v) {
			removed++
		} else {
			kept = append(kept, v)
		}
	}
	var zero V
	for i := len(kept); i < len(n.values); i++ {
		n.values[i] = zero
	}
	n.values = kept
	tr.size -= removed
	return removed
}
