package topic

import "sort"

// Set is a mutable collection of subscriptions. The zero value is an empty
// set ready to use. Set is not safe for concurrent use.
//
// Members live in a slice kept sorted by canonical name: subscription
// sets are tiny (a handful of topics) but Covers/Overlaps run on every
// received heartbeat and event of every node, where a map's
// per-iteration setup cost dominated the city-sweep profile. A sorted
// slice scans with zero overhead and gives Topics/String their
// canonical order for free.
type Set struct {
	ts []Topic // sorted by Compare
}

// NewSet returns a set holding the given topics.
func NewSet(ts ...Topic) *Set {
	s := &Set{}
	for _, t := range ts {
		s.Add(t)
	}
	return s
}

// search returns t's position (or insertion point) and whether it is
// present.
func (s *Set) search(t Topic) (int, bool) {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i].Compare(t) >= 0 })
	return i, i < len(s.ts) && s.ts[i] == t
}

// Add inserts t and reports whether the set changed. Adding the zero topic
// is a no-op.
func (s *Set) Add(t Topic) bool {
	if t.IsZero() {
		return false
	}
	i, ok := s.search(t)
	if ok {
		return false
	}
	s.ts = append(s.ts, Topic{})
	copy(s.ts[i+1:], s.ts[i:])
	s.ts[i] = t
	return true
}

// Remove deletes t and reports whether it was present.
func (s *Set) Remove(t Topic) bool {
	i, ok := s.search(t)
	if !ok {
		return false
	}
	s.ts = append(s.ts[:i], s.ts[i+1:]...)
	return true
}

// Len returns the number of subscriptions.
func (s *Set) Len() int { return len(s.ts) }

// Empty reports whether the set has no subscriptions.
func (s *Set) Empty() bool { return len(s.ts) == 0 }

// Has reports whether t is an exact member (no subtree semantics).
func (s *Set) Has(t Topic) bool {
	_, ok := s.search(t)
	return ok
}

// Covers reports whether some subscription in the set is an
// ancestor-or-equal of t: an event published on t is of interest to this
// subscriber.
func (s *Set) Covers(t Topic) bool {
	for _, sub := range s.ts {
		if sub.Contains(t) {
			return true
		}
	}
	return false
}

// Overlaps reports whether any pair of subscriptions across the two sets
// is related (one covers the other). This is the paper's neighbor-matching
// rule: two processes are mutually interesting when their subscription
// sets overlap.
func (s *Set) Overlaps(o *Set) bool {
	if s == nil || o == nil {
		return false
	}
	// Iterate over the smaller set for the outer loop.
	a, b := s, o
	if b.Len() < a.Len() {
		a, b = b, a
	}
	for _, ta := range a.ts {
		for _, tb := range b.ts {
			if ta.Related(tb) {
				return true
			}
		}
	}
	return false
}

// Topics returns the members sorted by canonical name.
func (s *Set) Topics() []Topic {
	return append([]Topic(nil), s.ts...)
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{ts: append([]Topic(nil), s.ts...)}
}

// Minimal returns the smallest subscription list with the same coverage:
// topics subsumed by an ancestor in the set are dropped. Subscribing to
// ".a" and ".a.b" covers exactly what ".a" alone covers, so heartbeats
// only need to announce the minimal set — an optimization the
// topic-hierarchy semantics make free.
func (s *Set) Minimal() []Topic {
	ts := s.Topics()
	out := ts[:0:0]
	for _, t := range ts {
		subsumed := false
		for _, anc := range ts {
			if anc != t && anc.Contains(t) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, t)
		}
	}
	return out
}

// Equal reports whether the two sets hold exactly the same topics.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, t := range s.ts {
		if o.ts[i] != t {
			return false
		}
	}
	return true
}

// String formats the set as a sorted, comma-separated list.
func (s *Set) String() string {
	ts := s.Topics()
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ","
		}
		out += t.String()
	}
	return "{" + out + "}"
}
