// Package topic implements the dot-separated topic hierarchy of the
// paper's topic-based publish/subscribe model.
//
// Topics form a tree rooted at "." (the root topic). A subscription to a
// topic implicitly covers the whole subtree below it: a subscriber of
// ".grenoble.conferences" receives events published on
// ".grenoble.conferences.middleware".
package topic

import (
	"errors"
	"fmt"
	"strings"
)

// Topic is an immutable, canonical topic name such as ".a.b.c". The root
// topic is ".". The zero value is invalid; obtain topics via Parse,
// MustParse or Root.
type Topic struct {
	s string
}

// Root returns the root topic ".", the ancestor of every topic.
func Root() Topic { return Topic{s: "."} }

var (
	// ErrEmpty is returned when parsing an empty topic string.
	ErrEmpty = errors.New("topic: empty name")
	// ErrBadSegment is returned when a topic contains an empty or
	// malformed segment.
	ErrBadSegment = errors.New("topic: bad segment")
)

// Parse converts s into a canonical Topic. Both "a.b" and ".a.b" are
// accepted and normalize to ".a.b"; "." denotes the root. Empty segments
// ("a..b", trailing dots) and whitespace are rejected.
func Parse(s string) (Topic, error) {
	if s == "" {
		return Topic{}, ErrEmpty
	}
	if s == "." {
		return Root(), nil
	}
	s = strings.TrimPrefix(s, ".")
	segs := strings.Split(s, ".")
	for _, seg := range segs {
		if seg == "" {
			return Topic{}, fmt.Errorf("%w: empty segment in %q", ErrBadSegment, s)
		}
		if strings.ContainsAny(seg, " \t\n") {
			return Topic{}, fmt.Errorf("%w: whitespace in %q", ErrBadSegment, seg)
		}
	}
	return Topic{s: "." + s}, nil
}

// MustParse is Parse that panics on error; intended for constants and
// tests.
func MustParse(s string) Topic {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// IsZero reports whether t is the invalid zero value.
func (t Topic) IsZero() bool { return t.s == "" }

// IsRoot reports whether t is the root topic.
func (t Topic) IsRoot() bool { return t.s == "." }

// String returns the canonical form, e.g. ".a.b". The zero value formats
// as "<invalid>".
func (t Topic) String() string {
	if t.IsZero() {
		return "<invalid>"
	}
	return t.s
}

// Segments returns the path segments from the root, excluding the root
// itself. The root topic has no segments.
func (t Topic) Segments() []string {
	if t.IsZero() || t.IsRoot() {
		return nil
	}
	return strings.Split(t.s[1:], ".")
}

// Depth returns the number of segments below the root.
func (t Topic) Depth() int { return len(t.Segments()) }

// Parent returns the immediate super-topic and true, or the zero Topic and
// false when t is the root or invalid.
func (t Topic) Parent() (Topic, bool) {
	if t.IsZero() || t.IsRoot() {
		return Topic{}, false
	}
	i := strings.LastIndexByte(t.s, '.')
	if i == 0 {
		return Root(), true
	}
	return Topic{s: t.s[:i]}, true
}

// Child returns the sub-topic of t named seg.
func (t Topic) Child(seg string) (Topic, error) {
	if t.IsZero() {
		return Topic{}, ErrEmpty
	}
	if seg == "" || strings.ContainsAny(seg, ". \t\n") {
		return Topic{}, fmt.Errorf("%w: %q", ErrBadSegment, seg)
	}
	if t.IsRoot() {
		return Topic{s: "." + seg}, nil
	}
	return Topic{s: t.s + "." + seg}, nil
}

// Contains reports whether u lies in the subtree rooted at t; that is,
// whether a subscription to t covers events published on u. A topic
// contains itself. The zero value contains nothing and is contained by
// nothing.
func (t Topic) Contains(u Topic) bool {
	if t.IsZero() || u.IsZero() {
		return false
	}
	if t.IsRoot() {
		return true
	}
	if t.s == u.s {
		return true
	}
	return strings.HasPrefix(u.s, t.s) && len(u.s) > len(t.s) && u.s[len(t.s)] == '.'
}

// Related reports whether one of the topics is an ancestor-or-equal of the
// other. Two subscriptions "match" in the sense of the paper when they are
// related: events of interest can flow between their subscribers.
func (t Topic) Related(u Topic) bool {
	return t.Contains(u) || u.Contains(t)
}

// Compare orders topics lexicographically by canonical name; it returns
// -1, 0 or +1.
func (t Topic) Compare(u Topic) int {
	return strings.Compare(t.s, u.s)
}
