package radio

import (
	"errors"
	"math"
	"testing"
)

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		dbm float64
		mw  float64
	}{
		{0, 1},
		{10, 10},
		{15, 31.622776601683793},
		{-30, 0.001},
	}
	for _, tt := range tests {
		if got := DBmToMilliwatt(tt.dbm); math.Abs(got-tt.mw) > 1e-9 {
			t.Errorf("DBmToMilliwatt(%v) = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := MilliwattToDBm(tt.mw); math.Abs(got-tt.dbm) > 1e-9 {
			t.Errorf("MilliwattToDBm(%v) = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
}

func TestFreeSpaceKnownValue(t *testing.T) {
	// At 2.4 GHz and 100 m, FSPL is ~80.1 dB (textbook value).
	got := FreeSpacePathLossDB(100, 2.4e9)
	if math.Abs(got-80.05) > 0.1 {
		t.Fatalf("FSPL(100m, 2.4GHz) = %v, want ~80.05", got)
	}
}

func TestTwoRaySlope(t *testing.T) {
	// Two-ray loss grows by 40 dB per decade of distance.
	l1 := TwoRayPathLossDB(100, 1.5, 1.5)
	l2 := TwoRayPathLossDB(1000, 1.5, 1.5)
	if math.Abs((l2-l1)-40) > 1e-9 {
		t.Fatalf("two-ray slope = %v dB/decade, want 40", l2-l1)
	}
}

func TestCrossoverDistance(t *testing.T) {
	p := Default80211b()
	d := CrossoverDistance(1.5, 1.5, p.Wavelength())
	// 4*pi*2.25/0.125 ~ 226 m for 2.4 GHz, 1.5 m antennas.
	if d < 200 || d > 250 {
		t.Fatalf("crossover = %v, want ~226 m", d)
	}
}

func TestReceivedPowerMonotone(t *testing.T) {
	p := Default80211b()
	prev := math.Inf(1)
	for d := 1.0; d < 5000; d *= 1.3 {
		got := p.ReceivedPowerDBm(d)
		if got > prev {
			t.Fatalf("received power increased with distance at %vm", d)
		}
		prev = got
	}
}

func TestReceivedPowerContinuousAtCrossover(t *testing.T) {
	p := Default80211b()
	cross := CrossoverDistance(p.AntennaHeightM, p.AntennaHeightM, p.Wavelength())
	below := p.ReceivedPowerDBm(cross * 0.999)
	above := p.ReceivedPowerDBm(cross * 1.001)
	// The hybrid model is continuous at the crossover by construction.
	if math.Abs(below-above) > 0.5 {
		t.Fatalf("discontinuity at crossover: %v vs %v", below, above)
	}
}

func TestRangeForSensitivities(t *testing.T) {
	// The solver must invert ReceivedPowerDBm: at the returned range the
	// predicted power equals the sensitivity.
	p := Default80211b()
	for _, sens := range []float64{-93, -89, -87, -83, -65} {
		r, err := p.RangeFor(sens)
		if err != nil {
			t.Fatalf("RangeFor(%v): %v", sens, err)
		}
		if got := p.ReceivedPowerDBm(r); math.Abs(got-sens) > 0.01 {
			t.Fatalf("power at range %vm = %v, want %v", r, got, sens)
		}
	}
}

func TestRangeOrdering(t *testing.T) {
	// Lower (more negative) sensitivity must give larger range, mirroring
	// the paper's per-rate ordering 442 > 339 > 321 > 273 m.
	p := Default80211b()
	r93, _ := p.RangeFor(-93)
	r89, _ := p.RangeFor(-89)
	r83, _ := p.RangeFor(-83)
	r65, _ := p.RangeFor(-65)
	if !(r93 > r89 && r89 > r83 && r83 > r65) {
		t.Fatalf("range ordering violated: %v %v %v %v", r93, r89, r83, r65)
	}
	// Same order of magnitude as the paper's published radii.
	if r93 < 200 || r93 > 2000 {
		t.Fatalf("range at -93 dBm = %vm, implausible", r93)
	}
	if r65 < 10 || r65 > 200 {
		t.Fatalf("range at -65 dBm = %vm, implausible", r65)
	}
}

func TestRangeForUnreachable(t *testing.T) {
	p := Default80211b()
	if _, err := p.RangeFor(1000); !errors.Is(err, ErrNoRange) {
		t.Fatal("expected ErrNoRange for absurd sensitivity")
	}
}

func TestPaperRangeConstants(t *testing.T) {
	if !(PaperRange1Mbps > PaperRange2Mbps &&
		PaperRange2Mbps > PaperRange6Mbps &&
		PaperRange6Mbps > PaperRange11Mbps &&
		PaperRange11Mbps > PaperRangeCity) {
		t.Fatal("paper range constants out of order")
	}
}

func TestReceivedPowerZeroDistance(t *testing.T) {
	p := Default80211b()
	got := p.ReceivedPowerDBm(0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatal("zero distance must not produce Inf/NaN")
	}
}
