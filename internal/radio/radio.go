// Package radio models wireless signal propagation for the simulated
// 802.11b PHY: free-space and two-ray ground-reflection path loss, dBm/mW
// conversions, and a solver that turns a receiver sensitivity into a
// deterministic reception radius.
//
// The paper's evaluation configures QualNet with 15 dBm transmission
// power, per-rate sensitivities of -93/-89/-87/-83 dBm (1/2/6/11 Mbps), a
// 2.4 GHz channel and a two-ray path-loss model, and reports the
// resulting radio ranges directly: 442, 339, 321 and 273 m (and 44 m for
// the city-section runs with -65 dBm sensitivity). The protocol only
// observes the resulting reception radius, so the simulator consumes a
// Range value; this package both reproduces the published radii
// (PaperRange*) and derives radii from first principles (RangeFor) for
// custom configurations.
package radio

import (
	"errors"
	"math"
)

// SpeedOfLight is in meters per second.
const SpeedOfLight = 2.99792458e8

// Published radio ranges from the paper (Section 5.1, footnotes 11-12),
// in meters, per 802.11b rate.
const (
	PaperRange1Mbps  = 442.0
	PaperRange2Mbps  = 339.0
	PaperRange6Mbps  = 321.0
	PaperRange11Mbps = 273.0
	PaperRangeCity   = 44.0
)

// Params describes a radio configuration.
type Params struct {
	// TxPowerDBm is the transmission power in dBm (paper: 15).
	TxPowerDBm float64
	// TxGainDBi and RxGainDBi are antenna gains in dBi.
	TxGainDBi, RxGainDBi float64
	// AntennaEfficiency in (0,1]; the paper uses 0.8 omni antennas.
	AntennaEfficiency float64
	// FrequencyHz is the carrier frequency (paper: 2.4 GHz).
	FrequencyHz float64
	// AntennaHeightM is the common antenna height above ground used by
	// the two-ray model.
	AntennaHeightM float64
	// SystemLossDB lumps miscellaneous losses (>= 0).
	SystemLossDB float64
}

// Default80211b returns the paper's QualNet radio configuration.
func Default80211b() Params {
	return Params{
		TxPowerDBm:        15,
		AntennaEfficiency: 0.8,
		FrequencyHz:       2.4e9,
		AntennaHeightM:    1.5,
	}
}

// Wavelength returns the carrier wavelength in meters.
func (p Params) Wavelength() float64 { return SpeedOfLight / p.FrequencyHz }

// DBmToMilliwatt converts a power level from dBm to milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts a power level from milliwatts to dBm.
func MilliwattToDBm(mw float64) float64 { return 10 * math.Log10(mw) }

// FreeSpacePathLossDB returns the Friis free-space path loss in dB at
// distance d meters for frequency f Hz. d must be positive.
func FreeSpacePathLossDB(d, f float64) float64 {
	return 20 * math.Log10(4*math.Pi*d*f/SpeedOfLight)
}

// TwoRayPathLossDB returns the two-ray ground-reflection path loss in dB
// at distance d meters with transmitter/receiver antenna heights ht, hr
// meters. Valid beyond the crossover distance.
func TwoRayPathLossDB(d, ht, hr float64) float64 {
	return 40*math.Log10(d) - 20*math.Log10(ht*hr)
}

// CrossoverDistance returns the distance at which the two-ray model takes
// over from free space: (4*pi*ht*hr)/lambda.
func CrossoverDistance(ht, hr, lambda float64) float64 {
	return 4 * math.Pi * ht * hr / lambda
}

// ReceivedPowerDBm returns the predicted received power at distance d
// meters, using free space below the crossover distance and the two-ray
// model beyond it (the standard ns-2/QualNet hybrid).
func (p Params) ReceivedPowerDBm(d float64) float64 {
	if d <= 0 {
		d = 1e-3
	}
	gains := p.TxGainDBi + p.RxGainDBi + 2*efficiencyDB(p.AntennaEfficiency) - p.SystemLossDB
	cross := CrossoverDistance(p.AntennaHeightM, p.AntennaHeightM, p.Wavelength())
	var loss float64
	if d <= cross {
		loss = FreeSpacePathLossDB(d, p.FrequencyHz)
	} else {
		loss = TwoRayPathLossDB(d, p.AntennaHeightM, p.AntennaHeightM)
	}
	return p.TxPowerDBm + gains - loss
}

func efficiencyDB(eff float64) float64 {
	if eff <= 0 || eff > 1 {
		return 0
	}
	return 10 * math.Log10(eff)
}

// ErrNoRange is returned when the sensitivity is not reachable at any
// distance (e.g. sensitivity above transmit power at 1 mm).
var ErrNoRange = errors.New("radio: sensitivity unreachable")

// RangeFor returns the maximum distance in meters at which the received
// power still meets sensitivityDBm, by bisection over the monotone
// received-power curve.
func (p Params) RangeFor(sensitivityDBm float64) (float64, error) {
	lo, hi := 1e-3, 100_000.0
	if p.ReceivedPowerDBm(lo) < sensitivityDBm {
		return 0, ErrNoRange
	}
	if p.ReceivedPowerDBm(hi) >= sensitivityDBm {
		return hi, nil
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.ReceivedPowerDBm(mid) >= sensitivityDBm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
