package radio

import (
	"math"
	"testing"
)

func defaultShadowing(sigma float64) Shadowing {
	return Shadowing{
		Params:         Default80211b(),
		SensitivityDBm: -89,
		SigmaDB:        sigma,
		LimitDBm:       -111,
	}
}

func TestShadowingDegeneratesToDisc(t *testing.T) {
	s := defaultShadowing(0)
	r, err := s.Params.RangeFor(s.SensitivityDBm)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReceiveProb(r * 0.9); got != 1 {
		t.Fatalf("inside disc prob = %v, want 1", got)
	}
	if got := s.ReceiveProb(r * 1.1); got != 0 {
		t.Fatalf("outside disc prob = %v, want 0", got)
	}
}

func TestShadowingHalfAtNominalRange(t *testing.T) {
	// At the distance where mean received power equals the sensitivity,
	// reception probability is exactly 1/2 for any sigma.
	s := defaultShadowing(6)
	r, err := s.Params.RangeFor(s.SensitivityDBm)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReceiveProb(r); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("prob at nominal range = %v, want ~0.5", got)
	}
}

func TestShadowingMonotone(t *testing.T) {
	s := defaultShadowing(6)
	prev := 1.1
	for d := 10.0; d < 5000; d *= 1.4 {
		p := s.ReceiveProb(d)
		if p > prev+1e-12 {
			t.Fatalf("probability increased with distance at %vm", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
		prev = p
	}
}

func TestShadowingSigmaWidensTail(t *testing.T) {
	// More shadowing means more reception probability far beyond the
	// nominal range.
	narrow, wide := defaultShadowing(2), defaultShadowing(8)
	r, _ := narrow.Params.RangeFor(narrow.SensitivityDBm)
	d := r * 1.3
	if wide.ReceiveProb(d) <= narrow.ReceiveProb(d) {
		t.Fatalf("sigma=8 tail (%v) should exceed sigma=2 tail (%v) at %vm",
			wide.ReceiveProb(d), narrow.ReceiveProb(d), d)
	}
}

func TestShadowingLimitFloor(t *testing.T) {
	s := defaultShadowing(8)
	// Find a distance where mean power is below the -111 dBm limit: the
	// probability must be exactly 0 no matter the sigma.
	d := 50000.0
	if s.Params.ReceivedPowerDBm(d) >= s.LimitDBm {
		t.Skip("test distance not beyond the limit")
	}
	if got := s.ReceiveProb(d); got != 0 {
		t.Fatalf("beyond the propagation limit prob = %v, want 0", got)
	}
}

func TestShadowingMaxRange(t *testing.T) {
	s := defaultShadowing(6)
	r := s.MaxRange(1e-3)
	if r <= 0 {
		t.Fatal("MaxRange returned nothing")
	}
	if p := s.ReceiveProb(r * 1.05); p >= 1e-3 {
		t.Fatalf("prob just beyond MaxRange = %v, want < 1e-3", p)
	}
	if p := s.ReceiveProb(r * 0.8); p < 1e-3 {
		t.Fatalf("prob well inside MaxRange = %v, want >= 1e-3", p)
	}
	nominal, _ := s.Params.RangeFor(s.SensitivityDBm)
	if r <= nominal {
		t.Fatalf("pruning radius %v should exceed nominal range %v", r, nominal)
	}
}
