package radio

import "math"

// The paper's QualNet setup uses a *statistical* propagation model (with
// a -111 dBm limit) on top of the two-ray path loss: reception near the
// nominal range boundary is probabilistic, not a hard disc. Shadowing
// reproduces that with the standard log-normal shadowing model: received
// power at distance d is ReceivedPowerDBm(d) plus a zero-mean Gaussian
// with deviation SigmaDB.

// Shadowing is a log-normal shadowing reception model.
type Shadowing struct {
	// Params is the deterministic propagation model.
	Params Params
	// SensitivityDBm is the receiver sensitivity threshold.
	SensitivityDBm float64
	// SigmaDB is the shadowing deviation (typical outdoor: 4-8 dB).
	// Zero degenerates to the deterministic disc.
	SigmaDB float64
	// LimitDBm discards signals below this floor regardless of the
	// shadowing draw (QualNet's propagation limit, -111 dBm in the
	// paper). Zero disables the floor.
	LimitDBm float64
}

// ReceiveProb returns the probability that a frame transmitted from
// distance d meters is received: P[Pr(d) + N(0, sigma) >= sensitivity].
func (s Shadowing) ReceiveProb(d float64) float64 {
	pr := s.Params.ReceivedPowerDBm(d)
	if s.LimitDBm != 0 && pr < s.LimitDBm {
		return 0
	}
	if s.SigmaDB <= 0 {
		if pr >= s.SensitivityDBm {
			return 1
		}
		return 0
	}
	// P[X >= sens-pr] for X ~ N(0, sigma) = Q((sens-pr)/sigma).
	z := (s.SensitivityDBm - pr) / s.SigmaDB
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// MaxRange returns the distance beyond which reception probability drops
// below eps — a pruning radius for simulators so they can skip hopeless
// receivers.
func (s Shadowing) MaxRange(eps float64) float64 {
	if eps <= 0 {
		eps = 1e-4
	}
	lo, hi := 1e-3, 100_000.0
	if s.ReceiveProb(hi) >= eps {
		return hi
	}
	if s.ReceiveProb(lo) < eps {
		return 0
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if s.ReceiveProb(mid) >= eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
