package event

import (
	"fmt"

	"repro/internal/topic"
)

// Kind discriminates the three wire messages of the protocol.
type Kind uint8

const (
	// KindHeartbeat is the periodic neighborhood-detection beacon.
	KindHeartbeat Kind = iota + 1
	// KindIDList carries the identifiers of events a node holds.
	KindIDList
	// KindEvents carries full events plus the presumed receiver list.
	KindEvents
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHeartbeat:
		return "heartbeat"
	case KindIDList:
		return "idlist"
	case KindEvents:
		return "events"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one of Heartbeat, IDList or Events.
type Message interface {
	// Kind identifies the concrete message type.
	Kind() Kind
	// Sender is the node that broadcast the message.
	Sender() NodeID
	// WireSize returns the accounted size in bytes under the given
	// size model (used to reproduce the paper's bandwidth figures).
	WireSize(m SizeModel) int
}

// Heartbeat is the phase-1 beacon: identity, subscriptions, and optional
// current speed (Speed < 0 means unknown; the paper treats speed as an
// optimization-only hint).
type Heartbeat struct {
	From          NodeID
	Subscriptions []topic.Topic
	Speed         float64 // m/s; negative when unavailable
}

// Kind implements Message.
func (h Heartbeat) Kind() Kind { return KindHeartbeat }

// Sender implements Message.
func (h Heartbeat) Sender() NodeID { return h.From }

// WireSize implements Message.
func (h Heartbeat) WireSize(m SizeModel) int { return m.Heartbeat }

// IDList announces the still-valid events its sender holds (restricted to
// topics of interest to the neighbor that triggered the exchange).
type IDList struct {
	From NodeID
	IDs  []ID
}

// Kind implements Message.
func (l IDList) Kind() Kind { return KindIDList }

// Sender implements Message.
func (l IDList) Sender() NodeID { return l.From }

// WireSize implements Message.
func (l IDList) WireSize(m SizeModel) int {
	return m.Header + len(l.IDs)*m.EventID
}

// Events pushes full events together with the identifiers of the
// neighbors the sender believes need them. Overhearers use Receivers to
// update their own neighborhood tables (paper Section 4.3).
type Events struct {
	From      NodeID
	Events    []Event
	Receivers []NodeID
}

// Kind implements Message.
func (e Events) Kind() Kind { return KindEvents }

// Sender implements Message.
func (e Events) Sender() NodeID { return e.From }

// WireSize implements Message.
func (e Events) WireSize(m SizeModel) int {
	return m.Header + len(e.Events)*m.Event + len(e.Receivers)*m.NodeID
}

// SizeModel fixes the accounted byte cost of protocol elements. The
// defaults reproduce the paper's evaluation settings: 50-byte heartbeats,
// 128-bit (16-byte) event identifiers and 400-byte events.
type SizeModel struct {
	Heartbeat int // whole heartbeat message
	EventID   int // one event identifier
	Event     int // one full event
	NodeID    int // one node identifier in a receiver list
	Header    int // fixed per-message framing
}

// DefaultSizeModel returns the paper's evaluation sizes.
func DefaultSizeModel() SizeModel {
	return SizeModel{
		Heartbeat: 50,
		EventID:   16,
		Event:     400,
		NodeID:    4,
		Header:    8,
	}
}
