package event

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the checked-in fuzz seeds")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzMessageRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range fuzzSeedMessages() {
		write(fmt.Sprintf("seed-%02d", i), Marshal(m))
	}
	wire := Marshal(fuzzSeedMessages()[5])
	write("seed-truncated", wire[:len(wire)/2])
	write("seed-badkind", []byte{0xFF, 1, 2, 3})
	edir := filepath.Join("testdata", "fuzz", "FuzzEventRoundTrip")
	if err := os.MkdirAll(edir, 0o755); err != nil {
		t.Fatal(err)
	}
	eseed := "go test fuzz v1\nuint64(18446744073709551615)\nuint64(1)\nstring(\".app.news\")\nuint32(4294967295)\nint64(9223372036854775807)\nint64(-1)\n[]byte(\"pp\")\n"
	if err := os.WriteFile(filepath.Join(edir, "seed-00"), []byte(eseed), 0o644); err != nil {
		t.Fatal(err)
	}
	pdir := filepath.Join("testdata", "fuzz", "FuzzAppendMarshalParity")
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		t.Fatal(err)
	}
	writePair := func(name string, data, prefix []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n[]byte(" + strconv.Quote(string(prefix)) + ")\n"
		if err := os.WriteFile(filepath.Join(pdir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range fuzzSeedMessages() {
		writePair(fmt.Sprintf("seed-%02d", i), Marshal(m), []byte{byte(i)})
	}
	writePair("seed-prefixed", Marshal(fuzzSeedMessages()[5]), []byte("ring slot residue"))
}
