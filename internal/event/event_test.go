package event

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/topic"
)

func TestNewIDUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := NewID(rng)
		if id.IsZero() {
			t.Fatal("random ID should not be zero")
		}
		if seen[id] {
			t.Fatalf("duplicate ID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestIDString(t *testing.T) {
	id := ID{Hi: 0xdead, Lo: 0xbeef}
	if got := id.String(); got != "000000000000dead000000000000beef" {
		t.Fatalf("String = %q", got)
	}
	if len(id.String()) != 32 {
		t.Fatal("ID string should be 32 hex digits")
	}
}

func TestEventExpired(t *testing.T) {
	e := Event{Remaining: 10 * time.Second}
	if e.Expired(5 * time.Second) {
		t.Fatal("should not be expired at 5s of 10s")
	}
	if !e.Expired(10 * time.Second) {
		t.Fatal("should be expired exactly at remaining")
	}
	if !e.Expired(time.Minute) {
		t.Fatal("should be expired past remaining")
	}
}

func TestWithRemaining(t *testing.T) {
	e := Event{Validity: time.Minute, Remaining: time.Minute}
	e2 := e.WithRemaining(10 * time.Second)
	if e2.Remaining != 10*time.Second || e.Remaining != time.Minute {
		t.Fatal("WithRemaining must copy")
	}
	if e.WithRemaining(-time.Second).Remaining != 0 {
		t.Fatal("negative remaining clamps to zero")
	}
	if e2.Validity != time.Minute {
		t.Fatal("Validity must be preserved")
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindHeartbeat, "heartbeat"},
		{KindIDList, "idlist"},
		{KindEvents, "events"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestWireSizes(t *testing.T) {
	m := DefaultSizeModel()
	hb := Heartbeat{From: 1, Subscriptions: []topic.Topic{topic.MustParse(".a")}}
	if got := hb.WireSize(m); got != 50 {
		t.Errorf("heartbeat size = %d, want 50 (paper)", got)
	}
	l := IDList{From: 1, IDs: []ID{{1, 2}, {3, 4}}}
	if got := l.WireSize(m); got != 8+2*16 {
		t.Errorf("idlist size = %d, want %d", got, 8+2*16)
	}
	ev := Events{From: 1, Events: []Event{{}, {}, {}}, Receivers: []NodeID{7, 9}}
	if got := ev.WireSize(m); got != 8+3*400+2*4 {
		t.Errorf("events size = %d, want %d", got, 8+3*400+2*4)
	}
}

func TestMessageInterfaces(t *testing.T) {
	var msgs = []Message{
		Heartbeat{From: 3},
		IDList{From: 4},
		Events{From: 5},
	}
	wantKinds := []Kind{KindHeartbeat, KindIDList, KindEvents}
	wantFrom := []NodeID{3, 4, 5}
	for i, m := range msgs {
		if m.Kind() != wantKinds[i] {
			t.Errorf("msg %d kind = %v", i, m.Kind())
		}
		if m.Sender() != wantFrom[i] {
			t.Errorf("msg %d sender = %v", i, m.Sender())
		}
	}
}
