package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/topic"
)

// The binary wire format is a compact, versionless encoding intended for
// real transports (see examples/inprocess). Bandwidth *accounting* in the
// experiments uses SizeModel instead, so that the figures match the
// paper's fixed message sizes rather than our encoding overhead.

// ErrTruncated is returned when a buffer ends before a complete message.
var ErrTruncated = errors.New("event: truncated message")

// ErrUnknownKind is returned for an unrecognized message discriminator.
var ErrUnknownKind = errors.New("event: unknown message kind")

// Marshal encodes m into a fresh buffer.
func Marshal(m Message) []byte { return AppendMarshal(nil, m) }

// AppendMarshal encodes m appended to dst and returns the extended
// buffer, exactly as append(dst, Marshal(m)...) would — byte for byte
// (pinned by FuzzAppendMarshalParity) — but without the intermediate
// allocation. It is the real-transport fast path: callers that reuse
// dst across messages (transport.UDP's send ring) marshal with zero
// steady-state allocations once the buffer has grown to its working
// size.
func AppendMarshal(dst []byte, m Message) []byte {
	b := dst
	switch v := m.(type) {
	case Heartbeat:
		b = append(b, byte(KindHeartbeat))
		b = binary.BigEndian.AppendUint32(b, uint32(v.From))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.Speed))
		b = binary.AppendUvarint(b, uint64(len(v.Subscriptions)))
		for _, t := range v.Subscriptions {
			b = appendString(b, t.String())
		}
	case IDList:
		b = append(b, byte(KindIDList))
		b = binary.BigEndian.AppendUint32(b, uint32(v.From))
		b = binary.AppendUvarint(b, uint64(len(v.IDs)))
		for _, id := range v.IDs {
			b = binary.BigEndian.AppendUint64(b, id.Hi)
			b = binary.BigEndian.AppendUint64(b, id.Lo)
		}
	case Events:
		b = append(b, byte(KindEvents))
		b = binary.BigEndian.AppendUint32(b, uint32(v.From))
		b = binary.AppendUvarint(b, uint64(len(v.Receivers)))
		for _, r := range v.Receivers {
			b = binary.BigEndian.AppendUint32(b, uint32(r))
		}
		b = binary.AppendUvarint(b, uint64(len(v.Events)))
		for _, ev := range v.Events {
			b = AppendEvent(b, ev)
		}
	default:
		panic(fmt.Sprintf("event: cannot marshal %T", m))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendEvent encodes one event in the Events-message element layout,
// appended to b. It is the append-style building block under
// AppendMarshal, exported for callers that frame events themselves.
func AppendEvent(b []byte, ev Event) []byte {
	b = binary.BigEndian.AppendUint64(b, ev.ID.Hi)
	b = binary.BigEndian.AppendUint64(b, ev.ID.Lo)
	b = appendString(b, ev.Topic.String())
	b = binary.BigEndian.AppendUint32(b, uint32(ev.Publisher))
	b = binary.BigEndian.AppendUint64(b, uint64(ev.Validity))
	b = binary.BigEndian.AppendUint64(b, uint64(ev.Remaining))
	b = binary.AppendUvarint(b, uint64(len(ev.Payload)))
	return append(b, ev.Payload...)
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	d := decoder{b: b}
	kind := Kind(d.u8())
	switch kind {
	case KindHeartbeat:
		h := Heartbeat{From: NodeID(d.u32()), Speed: math.Float64frombits(d.u64())}
		n := d.uvarint()
		for i := uint64(0); i < n && d.err == nil; i++ {
			t, err := topic.Parse(d.str())
			if err != nil {
				return nil, fmt.Errorf("event: heartbeat topic: %w", err)
			}
			h.Subscriptions = append(h.Subscriptions, t)
		}
		return h, d.err
	case KindIDList:
		l := IDList{From: NodeID(d.u32())}
		n := d.uvarint()
		for i := uint64(0); i < n && d.err == nil; i++ {
			l.IDs = append(l.IDs, ID{Hi: d.u64(), Lo: d.u64()})
		}
		return l, d.err
	case KindEvents:
		e := Events{From: NodeID(d.u32())}
		nr := d.uvarint()
		for i := uint64(0); i < nr && d.err == nil; i++ {
			e.Receivers = append(e.Receivers, NodeID(d.u32()))
		}
		ne := d.uvarint()
		for i := uint64(0); i < ne && d.err == nil; i++ {
			ev, err := d.event()
			if err != nil {
				return nil, err
			}
			e.Events = append(e.Events, ev)
		}
		return e, d.err
	default:
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) event() (Event, error) {
	ev := Event{ID: ID{Hi: d.u64(), Lo: d.u64()}}
	ts := d.str()
	if d.err != nil {
		return Event{}, d.err
	}
	t, err := topic.Parse(ts)
	if err != nil {
		return Event{}, fmt.Errorf("event: event topic: %w", err)
	}
	ev.Topic = t
	ev.Publisher = NodeID(d.u32())
	ev.Validity = time.Duration(d.u64())
	ev.Remaining = time.Duration(d.u64())
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return Event{}, d.err
	}
	if n > 0 {
		ev.Payload = append([]byte(nil), d.b[:n]...)
		d.b = d.b[n:]
	}
	return ev, d.err
}
