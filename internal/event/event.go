// Package event defines the protocol-level data types of the system:
// node identifiers, 128-bit event identifiers, events with validity
// periods, the three wire messages (heartbeat, event-id list, event push),
// a configurable size model for bandwidth accounting, and a compact binary
// encoding usable on a real transport.
package event

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/topic"
)

// NodeID uniquely identifies a process (the paper's p_i).
type NodeID uint32

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("p%d", id) }

// ID is a 128-bit globally unique event identifier (the paper sets the
// identifier size to 128 bits in the evaluation).
type ID struct {
	Hi, Lo uint64
}

// NewID draws a random identifier from rng.
func NewID(rng *rand.Rand) ID {
	return ID{Hi: rng.Uint64(), Lo: rng.Uint64()}
}

// IsZero reports whether the identifier is the (reserved) zero value.
func (id ID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// Less orders ids lexicographically by (Hi, Lo) — the stable ordering
// every protocol uses for deterministic iteration over stored events.
func (id ID) Less(o ID) bool {
	if id.Hi != o.Hi {
		return id.Hi < o.Hi
	}
	return id.Lo < o.Lo
}

// String renders the identifier as 32 hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// Event is a published unit of information (the paper's e_j^{T_k}).
type Event struct {
	// ID uniquely identifies the event system-wide.
	ID ID
	// Topic is the topic the event was published on.
	Topic topic.Topic
	// Publisher is the node that originally published the event.
	Publisher NodeID
	// Payload is the opaque application data.
	Payload []byte
	// Validity is the total validity period val(e) assigned at
	// publication, after which the event is of no use.
	Validity time.Duration
	// Remaining is the validity left at the moment the event was last
	// put on the wire. Receivers compute their local expiry from it, so
	// no clock synchronization is required between nodes.
	Remaining time.Duration
}

// Expired reports whether the event no longer carries useful information,
// given the time elapsed since it was received.
func (e Event) Expired(sinceReceipt time.Duration) bool {
	return sinceReceipt >= e.Remaining
}

// WithRemaining returns a copy of e carrying the given remaining validity.
func (e Event) WithRemaining(r time.Duration) Event {
	if r < 0 {
		r = 0
	}
	e.Remaining = r
	return e
}
