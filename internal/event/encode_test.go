package event

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topic"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Kind(), err)
	}
	return got
}

func TestHeartbeatRoundTrip(t *testing.T) {
	h := Heartbeat{
		From:          42,
		Subscriptions: []topic.Topic{topic.MustParse(".a.b"), topic.MustParse(".c")},
		Speed:         12.5,
	}
	got := roundTrip(t, h)
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("got %+v, want %+v", got, h)
	}
}

func TestHeartbeatUnknownSpeed(t *testing.T) {
	h := Heartbeat{From: 1, Speed: -1}
	got := roundTrip(t, h).(Heartbeat)
	if got.Speed != -1 {
		t.Fatalf("speed = %v", got.Speed)
	}
	if got.Subscriptions != nil {
		t.Fatalf("subscriptions = %v, want nil", got.Subscriptions)
	}
}

func TestIDListRoundTrip(t *testing.T) {
	l := IDList{From: 7, IDs: []ID{{1, 2}, {0xffffffffffffffff, 0}}}
	got := roundTrip(t, l)
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("got %+v, want %+v", got, l)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	e := Events{
		From:      9,
		Receivers: []NodeID{1, 2, 3},
		Events: []Event{
			{
				ID:        ID{5, 6},
				Topic:     topic.MustParse(".t0.t1"),
				Publisher: 9,
				Payload:   []byte("parking spot 14 is free"),
				Validity:  3 * time.Minute,
				Remaining: 90 * time.Second,
			},
			{
				ID:       ID{7, 8},
				Topic:    topic.Root(),
				Validity: time.Second,
			},
		},
	}
	got := roundTrip(t, e)
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("got %+v, want %+v", got, e)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"unknown kind", []byte{0xee}, ErrUnknownKind},
		{"truncated heartbeat", []byte{byte(KindHeartbeat), 0, 0}, ErrTruncated},
		{"truncated idlist", Marshal(IDList{From: 1, IDs: []ID{{1, 2}}})[:10], ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(tt.b)
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUnmarshalEveryTruncation(t *testing.T) {
	// Any strict prefix of a valid encoding must fail cleanly, never
	// panic or succeed.
	full := Marshal(Events{
		From:      3,
		Receivers: []NodeID{8},
		Events: []Event{{
			ID:       ID{1, 2},
			Topic:    topic.MustParse(".x.y"),
			Payload:  []byte{1, 2, 3},
			Validity: time.Minute,
		}},
	})
	for n := 0; n < len(full); n++ {
		if _, err := Unmarshal(full[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(full))
		}
	}
}

func TestMarshalUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	type fake struct{ Heartbeat }
	Marshal(fake{}) // not one of the three concrete types
}

// TestAppendMarshalParity pins the pooled encoder against the legacy
// one: for every seed message, AppendMarshal(dst, m) must extend dst by
// exactly Marshal(m), preserve dst's existing bytes, and reuse dst's
// capacity when it suffices.
func TestAppendMarshalParity(t *testing.T) {
	for i, m := range fuzzSeedMessages() {
		legacy := Marshal(m)
		// Fresh buffer.
		if got := AppendMarshal(nil, m); !reflect.DeepEqual(got, legacy) {
			t.Fatalf("seed %d: AppendMarshal(nil) = %x, want %x", i, got, legacy)
		}
		// Non-empty prefix survives and the suffix matches.
		prefix := []byte{0xDE, 0xAD, byte(i)}
		got := AppendMarshal(append([]byte(nil), prefix...), m)
		if !reflect.DeepEqual(got[:len(prefix)], prefix) {
			t.Fatalf("seed %d: prefix clobbered: %x", i, got[:len(prefix)])
		}
		if !reflect.DeepEqual(got[len(prefix):], legacy) {
			t.Fatalf("seed %d: suffix = %x, want %x", i, got[len(prefix):], legacy)
		}
		// A warm buffer with enough capacity is reused, not reallocated.
		warm := make([]byte, 0, 2*len(legacy)+16)
		out := AppendMarshal(warm, m)
		if &out[0] != &warm[:1][0] {
			t.Fatalf("seed %d: AppendMarshal reallocated despite sufficient capacity", i)
		}
	}
}

// TestAppendMarshalZeroAlloc pins the pooled-codec contract directly:
// marshaling into a buffer that has reached its working size performs
// zero allocations.
func TestAppendMarshalZeroAlloc(t *testing.T) {
	msgs := fuzzSeedMessages()
	buf := make([]byte, 0, 16*1024)
	if n := testing.AllocsPerRun(100, func() {
		for _, m := range msgs {
			buf = AppendMarshal(buf[:0], m)
		}
	}); n != 0 {
		t.Fatalf("AppendMarshal into a warm buffer allocated %.1f times/op, want 0", n)
	}
}

// TestAppendEventParity pins the exported event-element encoder against
// the slice the full Events encoding embeds.
func TestAppendEventParity(t *testing.T) {
	ev := Event{
		ID:        ID{3, 4},
		Topic:     topic.MustParse(".p.q"),
		Publisher: 7,
		Payload:   []byte("x"),
		Validity:  time.Minute,
		Remaining: time.Second,
	}
	whole := Marshal(Events{From: 7, Events: []Event{ev}})
	elem := AppendEvent(nil, ev)
	// The element is the tail of the single-event message encoding.
	if tail := whole[len(whole)-len(elem):]; !reflect.DeepEqual(tail, elem) {
		t.Fatalf("AppendEvent = %x, want message tail %x", elem, tail)
	}
}

// Property: random messages round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	topics := []topic.Topic{
		topic.MustParse(".a"), topic.MustParse(".a.b"),
		topic.MustParse(".c.d.e"), topic.Root(),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m Message
		switch r.Intn(3) {
		case 0:
			h := Heartbeat{From: NodeID(r.Uint32()), Speed: float64(r.Intn(50))}
			for i := 0; i < r.Intn(4); i++ {
				h.Subscriptions = append(h.Subscriptions, topics[r.Intn(len(topics))])
			}
			m = h
		case 1:
			l := IDList{From: NodeID(r.Uint32())}
			for i := 0; i < r.Intn(10); i++ {
				l.IDs = append(l.IDs, NewID(r))
			}
			m = l
		default:
			e := Events{From: NodeID(r.Uint32())}
			for i := 0; i < r.Intn(4); i++ {
				e.Receivers = append(e.Receivers, NodeID(r.Uint32()))
			}
			for i := 0; i < r.Intn(3); i++ {
				p := make([]byte, r.Intn(64))
				r.Read(p)
				var pl []byte
				if len(p) > 0 {
					pl = p
				}
				e.Events = append(e.Events, Event{
					ID:        NewID(r),
					Topic:     topics[r.Intn(len(topics))],
					Publisher: NodeID(r.Uint32()),
					Payload:   pl,
					Validity:  time.Duration(r.Int63n(int64(time.Hour))),
					Remaining: time.Duration(r.Int63n(int64(time.Hour))),
				})
			}
			m = e
		}
		got, err := Unmarshal(Marshal(m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics and never silently succeeds on random
// garbage that does not start with a valid kind byte.
func TestUnmarshalRandomBytesRobust(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		msg, err := Unmarshal(b) // must not panic
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
	}
}

// Property: flipping any single byte of a valid encoding either fails or
// decodes to a well-formed message — never panics.
func TestUnmarshalBitFlipRobust(t *testing.T) {
	base := Marshal(Events{
		From:      3,
		Receivers: []NodeID{8, 9},
		Events: []Event{{
			ID:       ID{1, 2},
			Topic:    topic.MustParse(".x.y"),
			Payload:  []byte{1, 2, 3, 4},
			Validity: time.Minute,
		}},
	})
	for i := range base {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), base...)
			mut[i] ^= flip
			_, _ = Unmarshal(mut) // must not panic
		}
	}
}
