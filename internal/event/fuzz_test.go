package event

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/topic"
)

// fuzzSeedMessages returns one well-formed message per wire kind plus
// edge shapes (empty lists, zero ids, payloadless and payload-heavy
// events); their encodings seed the fuzz corpus alongside the raw
// seeds checked in under testdata/fuzz.
func fuzzSeedMessages() []Message {
	rng := rand.New(rand.NewSource(42))
	return []Message{
		Heartbeat{From: 0},
		Heartbeat{From: 7, Speed: 13.25, Subscriptions: []topic.Topic{
			topic.MustParse(".a"),
			topic.MustParse(".grenoble.conferences.middleware"),
		}},
		IDList{From: 1},
		IDList{From: 3, IDs: []ID{{Hi: 1, Lo: 2}, {}, NewID(rng)}},
		Events{From: 2},
		Events{
			From:      9,
			Receivers: []NodeID{1, 2, 5},
			Events: []Event{{
				ID:        NewID(rng),
				Topic:     topic.MustParse(".app.news.sport"),
				Publisher: 9,
				Payload:   bytes.Repeat([]byte{0xAB}, 400),
				Validity:  time.Minute,
				Remaining: 30 * time.Second,
			}, {
				ID:    NewID(rng),
				Topic: topic.Root(),
			}},
		},
	}
}

// FuzzMessageRoundTrip pins the wire format against the decoder: any
// input that Unmarshal accepts must survive a Marshal/Unmarshal round
// trip unchanged, and re-encoding must be a fixed point — while
// arbitrary junk must fail cleanly (error, never a panic or a hang).
func FuzzMessageRoundTrip(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		f.Add(Marshal(m))
	}
	// Truncations and corruptions of a valid encoding probe the error
	// paths the happy-path tests never reach.
	wire := Marshal(fuzzSeedMessages()[5])
	for cut := 0; cut < len(wire); cut += 7 {
		f.Add(wire[:cut])
	}
	f.Add([]byte{0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input: only the absence of a panic matters
		}
		enc := Marshal(m)
		m2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-decode of freshly encoded %T failed: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed the message:\n before %#v\n after  %#v", m, m2)
		}
		if enc2 := Marshal(m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n first  %x\n second %x", enc, enc2)
		}
	})
}

// FuzzAppendMarshalParity differential-tests the pooled append-style
// encoder against the legacy allocating one: for any decodable input,
// AppendMarshal must produce wire bytes identical to Marshal — from a
// nil buffer, appended after an arbitrary prefix, and into a reused
// buffer — so the transport's pooled fast path can never diverge from
// the canonical encoding.
func FuzzAppendMarshalParity(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		f.Add(Marshal(m), []byte(nil))
	}
	f.Add(Marshal(fuzzSeedMessages()[1]), []byte{0x00})
	f.Add(Marshal(fuzzSeedMessages()[5]), bytes.Repeat([]byte{0x5A}, 64))
	f.Fuzz(func(t *testing.T, data, prefix []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // not a message: nothing to encode
		}
		legacy := Marshal(m)
		if got := AppendMarshal(nil, m); !bytes.Equal(got, legacy) {
			t.Fatalf("AppendMarshal(nil) diverged:\n pooled %x\n legacy %x", got, legacy)
		}
		got := AppendMarshal(append([]byte(nil), prefix...), m)
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("AppendMarshal clobbered its prefix: %x", got[:len(prefix)])
		}
		if !bytes.Equal(got[len(prefix):], legacy) {
			t.Fatalf("AppendMarshal after prefix diverged:\n pooled %x\n legacy %x", got[len(prefix):], legacy)
		}
		// Reuse: a second marshal into the same truncated buffer must be
		// byte-identical too (the send ring's steady state).
		if again := AppendMarshal(got[:0], m); !bytes.Equal(again, legacy) {
			t.Fatalf("AppendMarshal into a reused buffer diverged:\n pooled %x\n legacy %x", again, legacy)
		}
	})
}

// FuzzEventRoundTrip drives the nested event codec directly with
// arbitrary field values, including hostile payload sizes.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), ".a.b", uint32(3), int64(time.Minute), int64(time.Second), []byte("payload"))
	f.Add(uint64(0), uint64(0), ".", uint32(0), int64(0), int64(0), []byte{})
	f.Fuzz(func(t *testing.T, hi, lo uint64, tp string, pub uint32, validity, remaining int64, payload []byte) {
		parsed, err := topic.Parse(tp)
		if err != nil {
			return
		}
		in := Events{From: NodeID(pub), Events: []Event{{
			ID:        ID{Hi: hi, Lo: lo},
			Topic:     parsed,
			Publisher: NodeID(pub),
			Validity:  time.Duration(validity),
			Remaining: time.Duration(remaining),
			Payload:   payload,
		}}}
		if len(payload) == 0 {
			in.Events[0].Payload = nil // decoder normalizes empty to nil
		}
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("decode of valid event failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("event round trip changed:\n before %#v\n after  %#v", in, out)
		}
	})
}
