// Package trace records message-level timelines of simulation runs:
// every broadcast, reception and application delivery, with bounded
// memory. Timelines feed the cmd/frugalsim -trace flag and debugging
// sessions; they are not part of the measured experiment path.
package trace

import (
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/sim"
)

// Op is the traced operation.
type Op uint8

const (
	// OpSend is a MAC broadcast leaving a node.
	OpSend Op = iota + 1
	// OpReceive is a frame arriving at a node.
	OpReceive
	// OpDeliver is an application delivery.
	OpDeliver
	// OpPublish is a local publication.
	OpPublish
	// OpDrop is a message lost to a bounded queue on the real path
	// (transport send/recv ring overflow); unused by the simulator.
	OpDrop
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpReceive:
		return "recv"
	case OpDeliver:
		return "deliver"
	case OpPublish:
		return "publish"
	case OpDrop:
		return "drop"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one timeline entry.
type Record struct {
	At   sim.Time
	Node event.NodeID
	Op   Op
	// Msg is the message kind for send/receive records.
	Msg event.Kind
	// Event identifies the event for deliver/publish records.
	Event event.ID
	// Bytes is the accounted size for send records.
	Bytes int
}

// Trace is a bounded in-memory timeline. When the capacity is exceeded,
// the oldest records are dropped (and counted). The zero value is
// unbounded; use New for a ring. Trace is not safe for concurrent use —
// the simulator is single-threaded.
type Trace struct {
	cap     int
	records []Record
	dropped uint64
}

// New returns a trace keeping at most capacity records (0 = unbounded).
func New(capacity int) *Trace {
	return &Trace{cap: capacity}
}

// Add appends a record, evicting the oldest beyond capacity.
func (t *Trace) Add(r Record) {
	if t.cap > 0 && len(t.records) >= t.cap {
		n := copy(t.records, t.records[1:])
		t.records = t.records[:n]
		t.dropped++
	}
	t.records = append(t.records, r)
}

// Len returns the number of retained records.
func (t *Trace) Len() int { return len(t.records) }

// Dropped returns how many records were evicted by the ring.
func (t *Trace) Dropped() uint64 { return t.dropped }

// Records returns the retained records in chronological order. The
// returned slice is owned by the trace; copy before mutating.
func (t *Trace) Records() []Record { return t.records }

// Filter returns the records matching keep.
func (t *Trace) Filter(keep func(Record) bool) []Record {
	var out []Record
	for _, r := range t.records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// ByNode returns the records of one node.
func (t *Trace) ByNode(id event.NodeID) []Record {
	return t.Filter(func(r Record) bool { return r.Node == id })
}

// writeRecord renders one timeline entry (shared by Trace and Ring).
func writeRecord(w io.Writer, r Record) error {
	var err error
	switch r.Op {
	case OpSend:
		_, err = fmt.Fprintf(w, "%9s  %-4v %-7s %-9s %dB\n",
			r.At, r.Node, r.Op, r.Msg, r.Bytes)
	case OpReceive, OpDrop:
		_, err = fmt.Fprintf(w, "%9s  %-4v %-7s %-9s\n",
			r.At, r.Node, r.Op, r.Msg)
	default:
		_, err = fmt.Fprintf(w, "%9s  %-4v %-7s event %s\n",
			r.At, r.Node, r.Op, shortID(r.Event))
	}
	return err
}

// WriteText renders the timeline, one record per line.
func (t *Trace) WriteText(w io.Writer) error {
	for _, r := range t.records {
		if err := writeRecord(w, r); err != nil {
			return err
		}
	}
	if t.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d older records dropped)\n", t.dropped); err != nil {
			return err
		}
	}
	return nil
}

func shortID(id event.ID) string {
	s := id.String()
	return s[:8]
}
