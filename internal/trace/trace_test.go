package trace

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/sim"
)

func rec(at float64, node event.NodeID, op Op) Record {
	return Record{At: sim.Seconds(at), Node: node, Op: op, Msg: event.KindHeartbeat}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpSend, "send"},
		{OpReceive, "recv"},
		{OpDeliver, "deliver"},
		{OpPublish, "publish"},
		{Op(42), "op(42)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d) = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestUnboundedTrace(t *testing.T) {
	var tr Trace // zero value: unbounded
	for i := 0; i < 100; i++ {
		tr.Add(rec(float64(i), 1, OpSend))
	}
	if tr.Len() != 100 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Add(rec(float64(i), event.NodeID(i), OpSend))
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	rs := tr.Records()
	if rs[0].Node != 2 || rs[2].Node != 4 {
		t.Fatalf("wrong survivors: %v..%v", rs[0].Node, rs[2].Node)
	}
}

func TestFilterAndByNode(t *testing.T) {
	var tr Trace
	tr.Add(rec(1, 1, OpSend))
	tr.Add(rec(2, 2, OpReceive))
	tr.Add(rec(3, 1, OpDeliver))
	if got := tr.ByNode(1); len(got) != 2 {
		t.Fatalf("ByNode(1) = %d records", len(got))
	}
	sends := tr.Filter(func(r Record) bool { return r.Op == OpSend })
	if len(sends) != 1 || sends[0].Node != 1 {
		t.Fatalf("Filter sends = %v", sends)
	}
}

func TestWriteText(t *testing.T) {
	tr := New(2)
	tr.Add(Record{At: sim.Seconds(1.5), Node: 3, Op: OpSend, Msg: event.KindIDList, Bytes: 24})
	tr.Add(Record{At: sim.Seconds(2), Node: 4, Op: OpDeliver, Event: event.ID{Hi: 0xabcd}})
	tr.Add(Record{At: sim.Seconds(3), Node: 4, Op: OpReceive, Msg: event.KindEvents})
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "deliver") || !strings.Contains(out, "recv") {
		t.Fatalf("missing ops:\n%s", out)
	}
	if !strings.Contains(out, "older records dropped") {
		t.Fatalf("missing drop note:\n%s", out)
	}
	if strings.Contains(out, "send") {
		t.Fatal("evicted record still rendered")
	}
}
