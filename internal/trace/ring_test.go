package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/sim"
)

// TestRingWrap pins eviction order: a full ring keeps the newest
// capacity records, oldest first.
func TestRingWrap(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Record{At: sim.Time(i), Node: event.NodeID(i), Op: OpPublish})
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	for i, want := range []sim.Time{2, 3, 4} {
		if recs[i].At != want {
			t.Fatalf("recs[%d].At = %v, want %v", i, recs[i].At, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

// TestRingWriteText pins the dump format, including the drop marker and
// the OpDrop rendering.
func TestRingWriteText(t *testing.T) {
	r := NewRing(2)
	r.Add(Record{Op: OpPublish})
	r.Add(Record{Op: OpDeliver})
	r.Add(Record{Op: OpDrop, Msg: event.KindEvents})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"(1 older records dropped)", "deliver", "drop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump lacks %q:\n%s", want, out)
		}
	}
}

// TestRingConcurrent exercises Add/Records under the race detector.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Record{Op: OpReceive})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Records()
		}
	}()
	wg.Wait()
	if r.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", r.Total())
	}
	if got := len(r.Records()); got != 64 {
		t.Fatalf("retained %d, want 64", got)
	}
}
