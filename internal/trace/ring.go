package trace

import (
	"fmt"
	"io"
	"sync"
)

// Ring is the flight recorder's buffer: a goroutine-safe, fixed-capacity
// ring of the most recent Records. The simulator uses Trace (single
// threaded, optionally unbounded); the real path — where publishes,
// transport loops and timer callbacks race — uses Ring. Add is a short
// mutex hold and one slot store, cheap enough for per-message lifecycle
// events (see pubsub.Node.StartFlightRecorder).
type Ring struct {
	mu    sync.Mutex
	buf   []Record
	next  int    // slot the next record lands in
	total uint64 // records ever added
}

// NewRing returns a ring retaining the last capacity records.
// It panics on a non-positive capacity.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: NewRing capacity %d", capacity))
	}
	return &Ring{buf: make([]Record, 0, capacity)}
}

// Add records one entry, overwriting the oldest beyond capacity.
func (r *Ring) Add(rec Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many records were ever added.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Records returns a copy of the retained records, oldest first.
func (r *Ring) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// WriteText renders the retained records, oldest first, in the same
// format as Trace.WriteText, prefixed by a dropped-records note when
// the ring has wrapped.
func (r *Ring) WriteText(w io.Writer) error {
	recs := r.Records()
	total := r.Total()
	if evicted := total - uint64(len(recs)); evicted > 0 {
		if _, err := fmt.Fprintf(w, "(%d older records dropped)\n", evicted); err != nil {
			return err
		}
	}
	for _, rec := range recs {
		if err := writeRecord(w, rec); err != nil {
			return err
		}
	}
	return nil
}
