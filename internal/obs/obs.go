// Package obs is the zero-dependency observability layer shared by the
// simulator and the real path: a metrics registry of atomic counters,
// gauges and metrics.LogHist-backed histograms with label support, two
// encoders (Prometheus text exposition and a JSON snapshot), and an
// opt-in HTTP listener (Serve) mounting /metrics, /healthz and
// net/http/pprof.
//
// Design constraints, in order:
//
//   - Hot-path cost: Counter.Inc/Add and Gauge.Set are single atomic
//     operations with no allocation (pinned by BenchmarkObsRegistry).
//     All map and label work happens once, at registration time.
//   - Read-only scrapes: encoders and Snapshot only observe; nothing in
//     this package may feed back into protocol or simulation state.
//     The simulator in particular never reads the registry — its
//     deterministic time-series live in netsim.Result.Series, computed
//     from run-owned counters (ARCHITECTURE.md "Observability
//     contracts").
//   - No dependencies: the module is self-contained, so the exposition
//     formats are hand-rolled (Prometheus text format 0.0.4; histograms
//     encode as summaries — p50/p90/p99 quantiles plus _sum/_count —
//     because LogHist's 176 log buckets would bloat exposition).
//
// Naming convention: metric names are snake_case with a "repro_" prefix
// and a subsystem segment (repro_transport_*, repro_pubsub_*,
// repro_loadgen_*); cumulative counters end in _total, histograms name
// their unit (..._seconds). Labels identify the emitting instance
// (typically node="<id>").
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing cumulative metric. The zero
// value is ready to use; registry-created counters are shared by
// (name, labels) identity.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be non-negative to keep the counter monotone).
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer-valued metric.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a streaming histogram over a metrics.LogHist, safe for
// concurrent observation. Observe costs one short mutex hold; use it
// for events worth a histogram (handler latencies), not per-byte work.
type Hist struct {
	mu sync.Mutex
	h  metrics.LogHist
}

// Observe records one sample (histogram-unit value, e.g. seconds).
func (h *Hist) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (h *Hist) Snapshot() metrics.LogHist {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// kind discriminates the series variants.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHist
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHist:
		return "summary"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels []string // flat k1, v1, k2, v2, ... as registered
	kind   kind
	c      *Counter
	g      *Gauge
	cf     func() uint64
	gf     func() float64
	h      *Hist
}

// labelString renders {k="v",...} or "" for the unlabeled series.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a set of named instruments. Registration is idempotent:
// asking for the same (name, labels) returns the same instrument, and
// asking with a conflicting kind panics — both are programming errors
// caught at wiring time, not scrape time. A Registry is safe for
// concurrent registration and scraping; the zero value is not usable,
// call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	elems []*series
	index map[string]*series
	help  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		index: make(map[string]*series),
		help:  make(map[string]string),
	}
}

// validName enforces the Prometheus metric/label name grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*; labels additionally may not contain ':').
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && !label:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// register resolves or creates the (name, labels) series.
func (r *Registry) register(name, help string, k kind, labels []string) *series {
	if !validName(name, false) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %q", name, labels))
	}
	for i := 0; i+1 < len(labels); i += 2 {
		if !validName(labels[i], true) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, labels[i]))
		}
	}
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.index[key]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v (was %v)", key, k, s.kind))
		}
		return s
	}
	s := &series{name: name, labels: append([]string(nil), labels...), kind: k}
	r.index[key] = s
	r.elems = append(r.elems, s)
	if help != "" {
		r.help[name] = help
	}
	return s
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Labels are flat key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that already keep atomic counters
// (e.g. transport.UDP). fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	s := r.register(name, help, kindCounterFunc, labels)
	s.cf = fn
}

// GaugeFunc registers a gauge read from fn at scrape time (queue
// depths, table sizes). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, kindGaugeFunc, labels)
	s.gf = fn
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name, help string, labels ...string) *Hist {
	s := r.register(name, help, kindHist, labels)
	if s.h == nil {
		s.h = &Hist{}
	}
	return s.h
}

// Sample is one series' state in a Snapshot.
type Sample struct {
	// Name and Labels identify the series (Labels is flat k/v pairs).
	Name   string
	Labels []string
	// Kind is the exposition type: "counter", "gauge" or "summary".
	Kind string
	// Value holds the counter/gauge reading; unset for histograms.
	Value float64
	// Hist is a copy of the histogram for summary series.
	Hist *metrics.LogHist
}

// snapshotLocked captures the registered series in a stable order:
// sorted by name, then registration order within a name.
func (r *Registry) snapshot() []Sample {
	r.mu.Lock()
	elems := make([]*series, len(r.elems))
	copy(elems, r.elems)
	r.mu.Unlock()
	sort.SliceStable(elems, func(i, j int) bool { return elems[i].name < elems[j].name })

	out := make([]Sample, 0, len(elems))
	for _, s := range elems {
		smp := Sample{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case kindCounter:
			smp.Value = float64(s.c.Value())
		case kindGauge:
			smp.Value = float64(s.g.Value())
		case kindCounterFunc:
			smp.Value = float64(s.cf())
		case kindGaugeFunc:
			smp.Value = s.gf()
		case kindHist:
			h := s.h.Snapshot()
			smp.Hist = &h
		}
		out = append(out, smp)
	}
	return out
}

// Snapshot returns every registered series with its current reading, in
// a stable order (sorted by name, then registration order).
func (r *Registry) Snapshot() []Sample { return r.snapshot() }

// fmtFloat renders a float in the Prometheus exposition style.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus encodes the registry in the Prometheus text
// exposition format (version 0.0.4). Series sharing a name are grouped
// under one # HELP/# TYPE header; histograms render as summaries with
// p50/p90/p99 quantile labels plus <name>_sum and <name>_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	prev := ""
	for _, s := range samples {
		if s.Name != prev {
			if h := help[s.Name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			prev = s.Name
		}
		if s.Hist == nil {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				s.Name, labelString(s.Labels), fmtFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			lbl := append(append([]string(nil), s.Labels...), "quantile", fmt.Sprintf("%g", q))
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				s.Name, labelString(lbl), fmtFloat(s.Hist.Quantile(q))); err != nil {
				return err
			}
		}
		ls := labelString(s.Labels)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			s.Name, ls, fmtFloat(s.Hist.Sum()), s.Name, ls, s.Hist.N()); err != nil {
			return err
		}
	}
	return nil
}

// jsonSeries is the JSON snapshot schema of one series.
type jsonSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  *float64          `json:"value,omitempty"`
	Count  *int              `json:"count,omitempty"`
	Sum    *float64          `json:"sum,omitempty"`
	Min    *float64          `json:"min,omitempty"`
	Max    *float64          `json:"max,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P90    *float64          `json:"p90,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
}

// WriteJSON encodes the registry snapshot as one JSON document:
// {"series": [...]} with scalar series carrying "value" and summary
// series carrying count/sum/min/max/p50/p90/p99.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.snapshot()
	out := struct {
		Series []jsonSeries `json:"series"`
	}{Series: make([]jsonSeries, 0, len(samples))}
	f := func(v float64) *float64 { return &v }
	for _, s := range samples {
		js := jsonSeries{Name: s.Name, Kind: s.Kind}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels)/2)
			for i := 0; i+1 < len(s.Labels); i += 2 {
				js.Labels[s.Labels[i]] = s.Labels[i+1]
			}
		}
		if s.Hist == nil {
			js.Value = f(s.Value)
		} else {
			n := s.Hist.N()
			js.Count = &n
			js.Sum = f(s.Hist.Sum())
			if n > 0 {
				js.Min, js.Max = f(s.Hist.Min()), f(s.Hist.Max())
				js.P50 = f(s.Hist.Quantile(0.5))
				js.P90 = f(s.Hist.Quantile(0.9))
				js.P99 = f(s.Hist.Quantile(0.99))
			}
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
