package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns an http.ServeMux exposing the registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of the same series
//	/healthz       "ok" (liveness)
//	/debug/pprof/  the standard runtime profiles
//
// Callers may mount additional handlers (e.g. a flight-recorder dump)
// on the returned mux before passing it to Serve.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// net/http/pprof's handlers, mounted explicitly so we never depend
	// on http.DefaultServeMux (which other code could pollute).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free one) and serves
// handler — typically NewMux(reg) — on a background goroutine. It
// returns once the listener is bound, so Addr is immediately valid.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolved port included).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
