package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryIdempotent pins the sharing contract: the same
// (name, labels) returns the same instrument; different labels split.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("repro_test_total", "help", "node", "1")
	b := r.Counter("repro_test_total", "", "node", "1")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("repro_test_total", "", "node", "2")
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("independent counter = %d, want 0", got)
	}
}

// TestKindConflictPanics pins re-registration under another kind as a
// wiring-time programming error.
func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("repro_conflict", "")
}

// TestInvalidNamePanics pins the Prometheus name grammar.
func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "9starts_with_digit", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

// TestPrometheusExposition pins the text format: one HELP/TYPE header
// per name, labeled series beneath it, summaries with quantiles.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 2; i++ {
		c := r.Counter("repro_sent_total", "datagrams sent", "node", fmt.Sprint(i))
		c.Add(uint64(10 * (i + 1)))
	}
	r.Gauge("repro_depth", "queue depth").Set(7)
	h := r.Histogram("repro_lat_seconds", "handler latency")
	for i := 0; i < 100; i++ {
		h.Observe(0.001 * float64(i+1))
	}
	r.GaugeFunc("repro_fn", "", func() float64 { return 2.5 })
	r.CounterFunc("repro_cfn_total", "", func() uint64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP repro_sent_total datagrams sent",
		"# TYPE repro_sent_total counter",
		`repro_sent_total{node="0"} 10`,
		`repro_sent_total{node="1"} 20`,
		"# TYPE repro_depth gauge",
		"repro_depth 7",
		"# TYPE repro_lat_seconds summary",
		`repro_lat_seconds{quantile="0.5"}`,
		`repro_lat_seconds{quantile="0.99"}`,
		"repro_lat_seconds_sum",
		"repro_lat_seconds_count 100",
		"repro_fn 2.5",
		"repro_cfn_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE header for the grouped counter family.
	if n := strings.Count(out, "# TYPE repro_sent_total"); n != 1 {
		t.Errorf("repro_sent_total TYPE header appears %d times, want 1", n)
	}
}

// TestJSONSnapshot pins the JSON encoder's schema.
func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_a_total", "", "node", "3").Add(5)
	h := r.Histogram("repro_b_seconds", "")
	h.Observe(1.0)
	h.Observe(3.0)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Kind   string            `json:"kind"`
			Value  *float64          `json:"value"`
			Count  *int              `json:"count"`
			Sum    *float64          `json:"sum"`
			P50    *float64          `json:"p50"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(doc.Series))
	}
	a, hh := doc.Series[0], doc.Series[1]
	if a.Name != "repro_a_total" || a.Value == nil || *a.Value != 5 || a.Labels["node"] != "3" {
		t.Errorf("counter series wrong: %+v", a)
	}
	if hh.Name != "repro_b_seconds" || hh.Count == nil || *hh.Count != 2 || *hh.Sum != 4 {
		t.Errorf("summary series wrong: %+v", hh)
	}
}

// TestConcurrentUse exercises registration and scraping under the race
// detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("repro_conc_total", "", "g", fmt.Sprint(g%2))
			h := r.Histogram("repro_conc_seconds", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.WriteJSON(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	var total uint64
	for _, s := range r.Snapshot() {
		if s.Name == "repro_conc_total" {
			total += uint64(s.Value)
		}
	}
	if total != 4000 {
		t.Fatalf("counter total = %d, want 4000", total)
	}
}

// TestSnapshotStableOrder pins the sorted-by-name snapshot order the
// encoders rely on for grouping.
func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge("repro_z", "")
	r.Counter("repro_a_total", "", "node", "1")
	r.Counter("repro_a_total", "", "node", "0")
	names := []string{}
	for _, s := range r.Snapshot() {
		names = append(names, s.Name+labelString(s.Labels))
	}
	want := []string{`repro_a_total{node="1"}`, `repro_a_total{node="0"}`, "repro_z"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
}
