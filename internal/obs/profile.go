package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and/or arranges a heap
// profile at memPath (either may be empty), returning a stop function
// that must run once at the end of the measured work — it stops the CPU
// profile and writes the heap profile after a GC. The CLIs'
// -cpuprofile/-memprofile flags are thin wrappers over this.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: -cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
