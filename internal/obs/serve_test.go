package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints boots a real listener and pins every mounted
// endpoint: exposition, JSON snapshot, liveness and pprof.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_serve_total", "served").Add(9)
	srv, err := Serve("127.0.0.1:0", NewMux(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "repro_serve_total 9") ||
		!strings.Contains(body, "# TYPE repro_serve_total counter") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics.json"); code != 200 ||
		!strings.Contains(body, `"repro_serve_total"`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}
