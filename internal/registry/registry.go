// Package registry is the shared name→definition plumbing behind the
// repo's three registries: protocols (internal/proto), scenarios
// (internal/netsim) and workload generators (internal/workload). Each
// of those packages keeps its own public API — typed Register/Lookup
// functions with domain-specific validation — and delegates the storage,
// duplicate detection and sorted enumeration to a Store.
//
// Registration happens at init time, so misuse (empty or duplicate
// names) panics loudly instead of surfacing at first use.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Store holds named definitions of one kind. The zero value is not
// usable; construct with New.
type Store[D any] struct {
	// what prefixes panic messages, e.g. "proto: protocol".
	what string

	mu   sync.RWMutex
	defs map[string]D
}

// New returns an empty store. what names the definition kind in panic
// messages (e.g. "netsim: scenario").
func New[D any](what string) *Store[D] {
	return &Store[D]{what: what, defs: make(map[string]D)}
}

// Register adds def under name. It panics on an empty or duplicate
// name; domain-specific validation belongs in the caller, before
// Register.
func (s *Store[D]) Register(name string, def D) {
	if name == "" {
		panic(fmt.Sprintf("%s registered without a name", s.what))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.defs[name]; dup {
		panic(fmt.Sprintf("%s %q registered twice", s.what, name))
	}
	s.defs[name] = def
}

// Lookup finds a definition by name.
func (s *Store[D]) Lookup(name string) (D, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.defs[name]
	return d, ok
}

// Names returns the sorted registered names.
func (s *Store[D]) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.defs))
	for name := range s.defs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered definition, sorted by name.
func (s *Store[D]) All() []D {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.defs))
	for name := range s.defs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]D, len(names))
	for i, name := range names {
		out[i] = s.defs[name]
	}
	return out
}
