package registry

import (
	"sort"
	"strings"
	"testing"
)

type def struct{ name, desc string }

func TestStoreRoundTrip(t *testing.T) {
	s := New[def]("test: thing")
	s.Register("b", def{"b", "second"})
	s.Register("a", def{"a", "first"})
	s.Register("c", def{"c", "third"})

	if d, ok := s.Lookup("a"); !ok || d.desc != "first" {
		t.Fatalf("Lookup(a) = %+v, %v", d, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
	names := s.Names()
	if !sort.StringsAreSorted(names) || len(names) != 3 {
		t.Fatalf("Names() = %v", names)
	}
	all := s.All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d defs", len(all))
	}
	for i, d := range all {
		if d.name != names[i] {
			t.Fatalf("All()[%d] = %q, want %q (name order)", i, d.name, names[i])
		}
	}
}

func TestStorePanics(t *testing.T) {
	mustPanic := func(label, wantSubstr string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", label)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSubstr) {
				t.Fatalf("%s: panic %v does not mention %q", label, r, wantSubstr)
			}
		}()
		fn()
	}
	s := New[def]("test: thing")
	s.Register("x", def{})
	mustPanic("duplicate", `test: thing "x" registered twice`, func() { s.Register("x", def{}) })
	mustPanic("empty name", "test: thing registered without a name", func() { s.Register("", def{}) })
}
