package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, 0), Pt(1, 0), 2},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almost(got, tt.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); !almost(got, tt.want*tt.want) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(100, 50)
	if r.Width() != 100 || r.Height() != 50 || r.Area() != 5000 {
		t.Fatalf("dims wrong: %v", r)
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(100, 50)) || !r.Contains(Pt(50, 25)) {
		t.Fatal("Contains should include borders and interior")
	}
	if r.Contains(Pt(-1, 0)) || r.Contains(Pt(0, 51)) {
		t.Fatal("Contains should exclude outside points")
	}
	if got := r.Center(); got != Pt(50, 25) {
		t.Fatalf("Center = %v", got)
	}
}

func TestClamp(t *testing.T) {
	r := NewRect(10, 10)
	tests := []struct{ in, want Point }{
		{Pt(-5, 5), Pt(0, 5)},
		{Pt(15, 15), Pt(10, 10)},
		{Pt(5, 5), Pt(5, 5)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistMetricProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain to a sane range to avoid overflow-induced noise.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		if !almost(a.Dist(b), b.Dist(a)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp always lands inside the rectangle and is idempotent.
func TestClampProperty(t *testing.T) {
	r := NewRect(1000, 900)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := r.Clamp(Pt(x, y))
		return r.Contains(p) && r.Clamp(p) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
