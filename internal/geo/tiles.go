package geo

import "math"

// Tiling partitions a bounding rectangle into K contiguous rectangular
// tiles for the tile-parallel simulation runner (internal/netsim). It
// follows the cellCore addressing discipline: tile lookup is two
// multiplies and two clamps on a row-major col x row decomposition, and
// positions outside the bounds land in the border tiles, so arbitrary
// out-of-bounds traffic degrades gracefully instead of faulting.
//
// Unlike cellCore — whose cell size is fixed by radio range — a Tiling
// is sized by a target tile *count*: K is split into the cols x rows
// factorization whose tiles are closest to square for the given bounds,
// so a 7-tile request on a wide city yields 7x1 vertical stripes and a
// square city splits 4 into 2x2. Every position maps to exactly one
// tile at any K, including K=1 (the whole bounds).
//
// The origin of the tile lattice can be shifted (Shift): boundaries
// move by the shift modulo the tile pitch while the clamped border
// tiles absorb the slack. A shifted tiling is a different partition of
// the same plane — the metamorphic lever tileparity_test.go uses to
// assert results are invariant under re-partitioning.
type Tiling struct {
	bounds       Rect
	cols, rows   int
	tileW, tileH float64 // tile pitch, meters (0 if a single col/row)
	offX, offY   float64 // lattice origin offset from bounds.Min
}

// NewTiling partitions bounds into k tiles, shifting the tile lattice
// origin by shift (wrapped into one tile pitch). k < 1 is treated as 1.
func NewTiling(bounds Rect, k int, shift Point) Tiling {
	if k < 1 {
		k = 1
	}
	w, h := bounds.Width(), bounds.Height()
	// Pick the divisor pair cols*rows == k with the most square tiles.
	cols, rows := k, 1
	best := math.Inf(1)
	for d := 1; d <= k; d++ {
		if k%d != 0 {
			continue
		}
		c, r := d, k/d
		tw, th := w/float64(c), h/float64(r)
		if tw <= 0 || th <= 0 {
			// Degenerate extent: only stripes along the live axis (or a
			// single tile) avoid zero-width tiles.
			if (tw <= 0 && c > 1) || (th <= 0 && r > 1) {
				continue
			}
			tw, th = math.Max(tw, 1), math.Max(th, 1)
		}
		if score := math.Max(tw/th, th/tw); score < best {
			best, cols, rows = score, c, r
		}
	}
	if math.IsInf(best, 1) { // both extents degenerate
		cols, rows = 1, 1
	}
	t := Tiling{bounds: bounds, cols: cols, rows: rows}
	if cols > 1 {
		t.tileW = w / float64(cols)
		t.offX = math.Mod(shift.X, t.tileW)
		if t.offX < 0 {
			t.offX += t.tileW
		}
	}
	if rows > 1 {
		t.tileH = h / float64(rows)
		t.offY = math.Mod(shift.Y, t.tileH)
		if t.offY < 0 {
			t.offY += t.tileH
		}
	}
	return t
}

// K returns the tile count.
func (t Tiling) K() int { return t.cols * t.rows }

// Dims returns the cols x rows decomposition.
func (t Tiling) Dims() (cols, rows int) { return t.cols, t.rows }

// Bounds returns the tiled rectangle.
func (t Tiling) Bounds() Rect { return t.bounds }

// col returns the clamped tile column of x.
func (t Tiling) col(x float64) int {
	if t.cols == 1 {
		return 0
	}
	c := int(math.Floor((x - t.bounds.Min.X - t.offX) / t.tileW))
	if c < 0 {
		return 0
	}
	if c >= t.cols {
		return t.cols - 1
	}
	return c
}

// row returns the clamped tile row of y.
func (t Tiling) row(y float64) int {
	if t.rows == 1 {
		return 0
	}
	r := int(math.Floor((y - t.bounds.Min.Y - t.offY) / t.tileH))
	if r < 0 {
		return 0
	}
	if r >= t.rows {
		return t.rows - 1
	}
	return r
}

// TileOf returns the tile index of p, row-major.
func (t Tiling) TileOf(p Point) int {
	return t.row(p.Y)*t.cols + t.col(p.X)
}

// TileRect returns tile i's rectangle. Border tiles extend to the
// bounds edge, absorbing the lattice shift, so the K rectangles
// partition the bounds exactly.
func (t Tiling) TileRect(i int) Rect {
	c, r := i%t.cols, i/t.cols
	rect := t.bounds
	if t.cols > 1 {
		if c > 0 {
			rect.Min.X = t.bounds.Min.X + t.offX + float64(c)*t.tileW
		}
		if c < t.cols-1 {
			rect.Max.X = t.bounds.Min.X + t.offX + float64(c+1)*t.tileW
		}
		if rect.Min.X > rect.Max.X {
			rect.Min.X = rect.Max.X
		}
	}
	if t.rows > 1 {
		if r > 0 {
			rect.Min.Y = t.bounds.Min.Y + t.offY + float64(r)*t.tileH
		}
		if r < t.rows-1 {
			rect.Max.Y = t.bounds.Min.Y + t.offY + float64(r+1)*t.tileH
		}
		if rect.Min.Y > rect.Max.Y {
			rect.Min.Y = rect.Max.Y
		}
	}
	return rect
}

// Halo returns tile i's rectangle inflated by pad on every side — the
// region a neighbor-tile transmission must reach into to concern this
// tile. The runner derives pad from radio range plus the mobility
// speed bound times the synchronization window, mirroring the MAC
// grid's staleness margin.
func (t Tiling) Halo(i int, pad float64) Rect {
	r := t.TileRect(i)
	r.Min.X -= pad
	r.Min.Y -= pad
	r.Max.X += pad
	r.Max.Y += pad
	return r
}

// AppendDiscTiles appends the indexes of every tile whose rectangle
// intersects the axis-aligned bounding square of the disc (p, radius)
// to buf and returns it — the cross-tile test for one transmission.
// Result length 1 means the disc stays inside one tile.
func (t Tiling) AppendDiscTiles(p Point, radius float64, buf []int32) []int32 {
	lox, hix := t.col(p.X-radius), t.col(p.X+radius)
	loy, hiy := t.row(p.Y-radius), t.row(p.Y+radius)
	for r := loy; r <= hiy; r++ {
		for c := lox; c <= hix; c++ {
			buf = append(buf, int32(r*t.cols+c))
		}
	}
	return buf
}
