package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid[int](10, NewRect(200, 200))
	if g.Len() != 0 {
		t.Fatal("new grid not empty")
	}
	g.Put(1, Pt(5, 5))
	g.Put(2, Pt(25, 5))
	g.Put(1, Pt(6, 5)) // same cell move
	if g.Len() != 2 {
		t.Fatalf("len = %d, want 2", g.Len())
	}
	if p, ok := g.Pos(1); !ok || p != Pt(6, 5) {
		t.Fatalf("Pos(1) = %v %v", p, ok)
	}
	g.Put(1, Pt(95, 95)) // cross-cell move
	var got []int
	g.VisitDisc(Pt(90, 90), 20, func(v int, _ Point) { got = append(got, v) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("visit after move = %v", got)
	}
	g.Remove(1)
	g.Remove(1) // absent: no-op
	if g.Len() != 1 {
		t.Fatalf("len after remove = %d", g.Len())
	}
	g.Clear()
	if g.Len() != 0 {
		t.Fatal("clear left entries")
	}
}

func TestGridNegativeCoordsAndRadius(t *testing.T) {
	g := NewGrid[int](7, Rect{Min: Pt(-28, -28), Max: Pt(28, 28)})
	g.Put(1, Pt(-3, -3))
	g.Put(2, Pt(-20, 4))
	var got []int
	g.VisitDisc(Pt(0, 0), 5, func(v int, _ Point) { got = append(got, v) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("visit = %v, want [1]", got)
	}
	got = nil
	g.VisitDisc(Pt(0, 0), -1, func(v int, _ Point) { got = append(got, v) })
	if got != nil {
		t.Fatal("negative radius visited values")
	}
}

// TestGridVisitSuperset checks the load-bearing invariant against a
// brute-force scan: every value within r of the query point is visited,
// under random insert/move/remove churn.
func TestGridVisitSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGrid[int](50, Rect{Min: Pt(-200, -200), Max: Pt(800, 800)})
	pos := make(map[int]Point)
	randPt := func() Point { return Pt(rng.Float64()*1000-200, rng.Float64()*1000-200) }
	for i := 0; i < 2000; i++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(pos) == 0: // insert or move
			id := rng.Intn(300)
			p := randPt()
			g.Put(id, p)
			pos[id] = p
		case op < 8: // remove
			for id := range pos {
				g.Remove(id)
				delete(pos, id)
				break
			}
		default: // query
			q, r := randPt(), rng.Float64()*300
			visited := map[int]bool{}
			g.VisitDisc(q, r, func(v int, rec Point) {
				if pos[v] != rec {
					t.Fatalf("recorded pos of %d = %v, want %v", v, rec, pos[v])
				}
				visited[v] = true
			})
			for id, p := range pos {
				if p.Dist(q) <= r && !visited[id] {
					t.Fatalf("value %d at %v (dist %.1f) missed by VisitDisc(%v, %.1f)",
						id, p, p.Dist(q), q, r)
				}
			}
		}
	}
	if g.Len() != len(pos) {
		t.Fatalf("grid len %d != reference len %d", g.Len(), len(pos))
	}
}

// TestGridVisitDeterministic pins the documented iteration order:
// identical build sequences visit in identical order.
func TestGridVisitDeterministic(t *testing.T) {
	build := func() []int {
		g := NewGrid[int](30, NewRect(500, 500))
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 200; i++ {
			g.Put(i, Pt(rng.Float64()*500, rng.Float64()*500))
		}
		for i := 0; i < 50; i++ {
			g.Remove(rng.Intn(200))
		}
		var order []int
		g.VisitDisc(Pt(250, 250), 200, func(v int, _ Point) { order = append(order, v) })
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("visit lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if sort.IntsAreSorted(a) && len(a) > 10 {
		// Not a correctness requirement, just a sanity check that the
		// order really is bucket order, not id order (which would hint
		// the test is vacuous).
		t.Log("note: bucket order happened to be sorted")
	}
}

// TestGridClampedOutOfBounds checks the dense grid's clamping contract:
// positions far outside the constructor bounds land in border cells and
// the superset invariant still holds for queries anywhere in the plane.
func TestGridClampedOutOfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := NewGrid[int](25, NewRect(100, 100)) // deliberately tight bounds
	pos := make(map[int]Point)
	randPt := func() Point { return Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000) }
	for i := 0; i < 400; i++ {
		p := randPt()
		g.Put(i, p)
		pos[i] = p
	}
	for q := 0; q < 100; q++ {
		qp, r := randPt(), rng.Float64()*400
		visited := map[int]bool{}
		g.VisitDisc(qp, r, func(v int, rec Point) {
			if pos[v] != rec {
				t.Fatalf("recorded pos of %d = %v, want %v", v, rec, pos[v])
			}
			visited[v] = true
		})
		for id, p := range pos {
			if p.Dist(qp) <= r && !visited[id] {
				t.Fatalf("value %d at %v (dist %.1f) missed by clamped VisitDisc(%v, %.1f)",
					id, p, p.Dist(qp), qp, r)
			}
		}
	}
}

// TestIndexGridSupersetAndDeterminism mirrors the Grid superset check
// for the int-keyed dense grid, including out-of-bounds clamping, and
// pins that identical Relocate histories give identical bucket order.
func TestIndexGridSupersetAndDeterminism(t *testing.T) {
	const n = 200
	build := func() ([]Point, *IndexGrid) {
		rng := rand.New(rand.NewSource(31))
		g := NewIndexGrid(40, NewRect(600, 600), n)
		pos := make([]Point, n)
		for i := range pos {
			pos[i] = Pt(rng.Float64()*900-150, rng.Float64()*900-150)
			g.Relocate(int32(i), pos[i])
		}
		for i := 0; i < 500; i++ { // churn: moves, some crossing cells
			k := rng.Intn(n)
			pos[k] = Pt(rng.Float64()*900-150, rng.Float64()*900-150)
			g.Relocate(int32(k), pos[k])
		}
		return pos, g
	}
	pos, g := build()
	if g.Len() != n {
		t.Fatalf("Len = %d, want %d", g.Len(), n)
	}
	if g.Keys() != n {
		t.Fatalf("Keys = %d, want %d", g.Keys(), n)
	}
	rng := rand.New(rand.NewSource(37))
	var buf []int32
	for q := 0; q < 200; q++ {
		qp := Pt(rng.Float64()*900-150, rng.Float64()*900-150)
		r := rng.Float64() * 250
		buf = g.AppendDisc(qp, r, buf[:0])
		got := map[int32]bool{}
		for _, k := range buf {
			got[k] = true
		}
		for k, p := range pos {
			if p.Dist(qp) <= r && !got[int32(k)] {
				t.Fatalf("key %d at %v (dist %.1f) missed by AppendDisc(%v, %.1f)",
					k, p, p.Dist(qp), qp, r)
			}
		}
	}
	_, g2 := build()
	a := g.AppendDisc(Pt(300, 300), 280, nil)
	b := g2.AppendDisc(Pt(300, 300), 280, nil)
	if len(a) != len(b) {
		t.Fatalf("bucket-order lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
