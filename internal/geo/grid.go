package geo

import "math"

// Cell identifies one bucket of a Grid: the square
// [X*size, (X+1)*size) x [Y*size, (Y+1)*size).
type Cell struct {
	X, Y int
}

type gridEntry struct {
	cell Cell
	pos  Point
}

// Grid is a uniform spatial hash: values of type T filed under the cell
// containing their recorded position. It answers "which values were
// recorded near p?" in time proportional to the number of nearby values
// instead of the total population, which is what lets the MAC medium
// scale past a few hundred nodes.
//
// The grid stores *recorded* positions: callers that index moving
// objects must either re-record them as they move or pad query radii by
// the maximum drift since recording (see mac.Config.MaxSpeed).
//
// Iteration order of VisitDisc is deterministic — cells in row-major
// order, values within a cell in insertion order — so simulations built
// on it stay reproducible. The zero Grid is not usable; call NewGrid.
type Grid[T comparable] struct {
	size    float64 // cell edge length, meters
	inv     float64 // 1/size
	buckets map[Cell][]T
	entries map[T]gridEntry
}

// NewGrid returns an empty grid with the given cell edge length. The
// best cell size is close to the dominant query radius: much smaller
// wastes time on bucket overhead, much larger degenerates toward a full
// scan. It panics on a non-positive size.
func NewGrid[T comparable](cellSize float64) *Grid[T] {
	if cellSize <= 0 {
		panic("geo: non-positive grid cell size")
	}
	return &Grid[T]{
		size:    cellSize,
		inv:     1 / cellSize,
		buckets: make(map[Cell][]T),
		entries: make(map[T]gridEntry),
	}
}

// CellSize returns the cell edge length.
func (g *Grid[T]) CellSize() float64 { return g.size }

// CellOf returns the cell containing p.
func (g *Grid[T]) CellOf(p Point) Cell {
	return Cell{
		X: int(math.Floor(p.X * g.inv)),
		Y: int(math.Floor(p.Y * g.inv)),
	}
}

// Put records v at position p, moving it between buckets if it was
// already present elsewhere.
func (g *Grid[T]) Put(v T, p Point) {
	c := g.CellOf(p)
	if e, ok := g.entries[v]; ok {
		if e.cell == c {
			g.entries[v] = gridEntry{cell: c, pos: p}
			return
		}
		g.drop(v, e.cell)
	}
	g.buckets[c] = append(g.buckets[c], v)
	g.entries[v] = gridEntry{cell: c, pos: p}
}

// Remove deletes v from the grid; removing an absent value is a no-op.
func (g *Grid[T]) Remove(v T) {
	e, ok := g.entries[v]
	if !ok {
		return
	}
	g.drop(v, e.cell)
	delete(g.entries, v)
}

// drop removes v from bucket c, preserving the order of the remaining
// values (so VisitDisc stays deterministic under churn). An emptied
// bucket keeps its map entry and capacity: the MAC transmission index
// constantly cycles values through the same cells, and re-allocating
// the bucket on every revisit was its last per-frame allocation.
func (g *Grid[T]) drop(v T, c Cell) {
	b := g.buckets[c]
	for i, x := range b {
		if x == v {
			copy(b[i:], b[i+1:])
			var zero T
			b[len(b)-1] = zero
			b = b[:len(b)-1]
			break
		}
	}
	g.buckets[c] = b
}

// Pos returns the recorded position of v.
func (g *Grid[T]) Pos(v T) (Point, bool) {
	e, ok := g.entries[v]
	return e.pos, ok
}

// Len returns the number of recorded values.
func (g *Grid[T]) Len() int { return len(g.entries) }

// Clear empties the grid, keeping its maps allocated.
func (g *Grid[T]) Clear() {
	clear(g.buckets)
	clear(g.entries)
}

// AppendDisc appends to buf every value whose recorded position lies
// in a cell intersecting the axis-aligned bounding square of the disc
// (p, r) and returns the extended buffer. Like VisitDisc it is a
// superset of the disc and callers must re-check exact distances, but
// it takes no callback: a query with a reused buffer allocates
// nothing, which is what the MAC hot path needs. A negative radius
// appends nothing.
func (g *Grid[T]) AppendDisc(p Point, r float64, buf []T) []T {
	if r < 0 {
		return buf
	}
	lo := g.CellOf(Point{X: p.X - r, Y: p.Y - r})
	hi := g.CellOf(Point{X: p.X + r, Y: p.Y + r})
	for cy := lo.Y; cy <= hi.Y; cy++ {
		for cx := lo.X; cx <= hi.X; cx++ {
			buf = append(buf, g.buckets[Cell{X: cx, Y: cy}]...)
		}
	}
	return buf
}

// VisitDisc calls fn for every value whose recorded position lies in a
// cell intersecting the axis-aligned bounding square of the disc
// (p, r). The visit is a superset of the disc: fn may see values up to
// r + size*sqrt(2) away, and callers must re-check exact distances.
// A negative radius visits nothing.
func (g *Grid[T]) VisitDisc(p Point, r float64, fn func(v T, recorded Point)) {
	if r < 0 {
		return
	}
	lo := g.CellOf(Point{X: p.X - r, Y: p.Y - r})
	hi := g.CellOf(Point{X: p.X + r, Y: p.Y + r})
	for cy := lo.Y; cy <= hi.Y; cy++ {
		for cx := lo.X; cx <= hi.X; cx++ {
			for _, v := range g.buckets[Cell{X: cx, Y: cy}] {
				fn(v, g.entries[v].pos)
			}
		}
	}
}
