package geo

type gridEntry struct {
	idx int // dense cell index in buckets
	pos Point
}

// Grid is a uniform spatial index: values of type T filed under the
// cell containing their recorded position, cells stored as a dense
// row-major slab over a bounding rectangle (see cellCore). It answers
// "which values were recorded near p?" in time proportional to the
// number of nearby values instead of the total population, with zero
// hash lookups on the query path, which is what lets the MAC medium
// scale past a few hundred nodes.
//
// The grid stores *recorded* positions: callers that index moving
// objects must either re-record them as they move or pad query radii by
// the maximum drift since recording (see mac.Config.MaxSpeed).
// Positions outside the constructor bounds are clamped into border
// cells — still correct, just slower if pervasive.
//
// Iteration order of VisitDisc is deterministic — cells in row-major
// order, values within a cell in insertion order — so simulations built
// on it stay reproducible. The zero Grid is not usable; call NewGrid.
type Grid[T comparable] struct {
	cellCore
	buckets [][]T // dense row-major cell slab
	entries map[T]gridEntry
}

// NewGrid returns an empty grid over the given bounds with the given
// cell edge length. The best cell size is close to the dominant query
// radius: much smaller wastes time on bucket overhead, much larger
// degenerates toward a full scan (the size is coarsened automatically
// if bounds/cellSize would exceed the dense-slab cap, see
// maxDenseCells). It panics on a non-positive size or inverted bounds.
func NewGrid[T comparable](cellSize float64, bounds Rect) *Grid[T] {
	core := newCellCore(cellSize, bounds)
	return &Grid[T]{
		cellCore: core,
		buckets:  make([][]T, core.numCells()),
		entries:  make(map[T]gridEntry),
	}
}

// Put records v at position p, moving it between buckets if it was
// already present elsewhere.
func (g *Grid[T]) Put(v T, p Point) {
	idx := g.cellIndex(p)
	if e, ok := g.entries[v]; ok {
		if e.idx == idx {
			g.entries[v] = gridEntry{idx: idx, pos: p}
			return
		}
		g.drop(v, e.idx)
	}
	g.buckets[idx] = append(g.buckets[idx], v)
	g.entries[v] = gridEntry{idx: idx, pos: p}
}

// Remove deletes v from the grid; removing an absent value is a no-op.
func (g *Grid[T]) Remove(v T) {
	e, ok := g.entries[v]
	if !ok {
		return
	}
	g.drop(v, e.idx)
	delete(g.entries, v)
}

// drop removes v from bucket idx, preserving the order of the remaining
// values (so VisitDisc stays deterministic under churn). An emptied
// bucket keeps its capacity: the MAC transmission index constantly
// cycles values through the same cells, and re-allocating the bucket on
// every revisit was its last per-frame allocation.
func (g *Grid[T]) drop(v T, idx int) {
	b := g.buckets[idx]
	for i, x := range b {
		if x == v {
			copy(b[i:], b[i+1:])
			var zero T
			b[len(b)-1] = zero
			b = b[:len(b)-1]
			break
		}
	}
	g.buckets[idx] = b
}

// Pos returns the recorded position of v.
func (g *Grid[T]) Pos(v T) (Point, bool) {
	e, ok := g.entries[v]
	return e.pos, ok
}

// Len returns the number of recorded values.
func (g *Grid[T]) Len() int { return len(g.entries) }

// Clear empties the grid, keeping the bucket slab and its per-cell
// capacities allocated.
func (g *Grid[T]) Clear() {
	for i := range g.buckets {
		clear(g.buckets[i])
		g.buckets[i] = g.buckets[i][:0]
	}
	clear(g.entries)
}

// AppendDisc appends to buf every value whose recorded position lies
// in a cell intersecting the axis-aligned bounding square of the disc
// (p, r) and returns the extended buffer. Like VisitDisc it is a
// superset of the disc and callers must re-check exact distances, but
// it takes no callback: a query with a reused buffer allocates
// nothing, which is what the MAC hot path needs. A negative radius
// appends nothing.
func (g *Grid[T]) AppendDisc(p Point, r float64, buf []T) []T {
	if r < 0 {
		return buf
	}
	lox, loy, hix, hiy := g.discRange(p, r)
	for cy := loy; cy <= hiy; cy++ {
		base := cy * g.cols
		for _, b := range g.buckets[base+lox : base+hix+1] {
			buf = append(buf, b...)
		}
	}
	return buf
}

// VisitDisc calls fn for every value whose recorded position lies in a
// cell intersecting the axis-aligned bounding square of the disc
// (p, r). The visit is a superset of the disc: fn may see values up to
// r + size*sqrt(2) away (more for clamped out-of-bounds positions),
// and callers must re-check exact distances. A negative radius visits
// nothing.
func (g *Grid[T]) VisitDisc(p Point, r float64, fn func(v T, recorded Point)) {
	if r < 0 {
		return
	}
	lox, loy, hix, hiy := g.discRange(p, r)
	for cy := loy; cy <= hiy; cy++ {
		base := cy * g.cols
		for _, b := range g.buckets[base+lox : base+hix+1] {
			for _, v := range b {
				fn(v, g.entries[v].pos)
			}
		}
	}
}
