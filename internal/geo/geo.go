// Package geo provides the small amount of 2-D geometry the simulator
// needs: points, distances, rectangles and linear interpolation. Units are
// meters throughout.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance; cheaper for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp linearly interpolates from p to q; f=0 yields p, f=1 yields q.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, Min inclusive, Max inclusive.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning (0,0)-(w,h).
func NewRect(w, h float64) Rect { return Rect{Max: Point{w, h}} }

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies within r (borders included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}
