package geo

import (
	"math/rand"
	"testing"
)

// TestTilingPartition checks that every point maps to exactly the tile
// whose rectangle contains it, for assorted K and shifted lattices.
func TestTilingPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := Rect{Min: Pt(-50, 10), Max: Pt(950, 710)}
	for _, k := range []int{1, 2, 3, 4, 6, 7, 8, 12} {
		for _, shift := range []Point{{}, {X: 137, Y: -91}, {X: -0.5, Y: 10000}} {
			tl := NewTiling(bounds, k, shift)
			if tl.K() != k {
				t.Fatalf("k=%d shift=%v: K()=%d", k, shift, tl.K())
			}
			cols, rows := tl.Dims()
			if cols*rows != k {
				t.Fatalf("k=%d: dims %dx%d", k, cols, rows)
			}
			for i := 0; i < 2000; i++ {
				p := Pt(bounds.Min.X+rng.Float64()*bounds.Width(),
					bounds.Min.Y+rng.Float64()*bounds.Height())
				ti := tl.TileOf(p)
				if ti < 0 || ti >= k {
					t.Fatalf("k=%d shift=%v: TileOf(%v)=%d out of range", k, shift, p, ti)
				}
				if r := tl.TileRect(ti); !r.Contains(p) {
					t.Fatalf("k=%d shift=%v: %v assigned to tile %d rect %+v", k, shift, p, ti, r)
				}
			}
		}
	}
}

// TestTilingRectsPartitionBounds checks the K rectangles tile the
// bounds exactly: areas sum to the whole and edges chain without gaps.
func TestTilingRectsPartitionBounds(t *testing.T) {
	bounds := Rect{Min: Pt(0, 0), Max: Pt(1200, 800)}
	for _, k := range []int{1, 2, 4, 7, 9} {
		tl := NewTiling(bounds, k, Pt(41, 77))
		var area float64
		for i := 0; i < k; i++ {
			area += tl.TileRect(i).Area()
		}
		if diff := area - bounds.Area(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("k=%d: tile areas sum to %v, bounds %v", k, area, bounds.Area())
		}
	}
}

// TestTilingOutOfBoundsClamps checks border tiles absorb positions
// outside the bounds, mirroring cellCore's clamping contract.
func TestTilingOutOfBoundsClamps(t *testing.T) {
	tl := NewTiling(NewRect(1000, 1000), 4, Point{})
	for _, p := range []Point{Pt(-1e6, -1e6), Pt(1e6, 1e6), Pt(500, -3), Pt(2000, 500)} {
		ti := tl.TileOf(p)
		if ti < 0 || ti >= 4 {
			t.Fatalf("TileOf(%v)=%d out of range", p, ti)
		}
		if want := tl.TileOf(tl.Bounds().Clamp(p)); ti != want {
			t.Fatalf("TileOf(%v)=%d, clamped maps to %d", p, ti, want)
		}
	}
}

// TestTilingAspect checks the factorization prefers square-ish tiles:
// a square area splits 4 into 2x2, and a wide strip splits into
// vertical stripes.
func TestTilingAspect(t *testing.T) {
	if c, r := NewTiling(NewRect(1000, 1000), 4, Point{}).Dims(); c != 2 || r != 2 {
		t.Fatalf("square k=4: got %dx%d, want 2x2", c, r)
	}
	if c, r := NewTiling(NewRect(10000, 100), 4, Point{}).Dims(); c != 4 || r != 1 {
		t.Fatalf("wide k=4: got %dx%d, want 4x1", c, r)
	}
	if c, r := NewTiling(NewRect(100, 10000), 7, Point{}).Dims(); c != 1 || r != 7 {
		t.Fatalf("tall k=7: got %dx%d, want 1x7", c, r)
	}
	// Degenerate extents must not produce zero-width tiles.
	if k := NewTiling(Rect{}, 4, Point{}).K(); k < 1 {
		t.Fatalf("degenerate bounds: K=%d", k)
	}
}

// TestTilingDiscTiles checks the disc-overlap query: a disc inside a
// tile's interior reports one tile, a disc straddling a boundary
// reports both, and every reported index is in range.
func TestTilingDiscTiles(t *testing.T) {
	tl := NewTiling(NewRect(1000, 1000), 4, Point{}) // 2x2, pitch 500
	one := tl.AppendDiscTiles(Pt(250, 250), 100, nil)
	if len(one) != 1 || one[0] != int32(tl.TileOf(Pt(250, 250))) {
		t.Fatalf("interior disc: %v", one)
	}
	two := tl.AppendDiscTiles(Pt(450, 250), 100, nil)
	if len(two) != 2 {
		t.Fatalf("boundary disc: %v", two)
	}
	all := tl.AppendDiscTiles(Pt(500, 500), 600, nil)
	if len(all) != 4 {
		t.Fatalf("covering disc: %v", all)
	}
	halo := tl.Halo(0, 50)
	if r0 := tl.TileRect(0); halo.Width() != r0.Width()+100 || halo.Height() != r0.Height()+100 {
		t.Fatalf("halo not inflated: %+v vs %+v", halo, r0)
	}
}
