package geo

// cellCore is the dense cell-addressing core shared by Grid and
// IndexGrid: a uniform partition of a bounding rectangle into
// cols x rows square cells, addressed as one flat row-major slab.
// Replacing the old map[Cell] spatial hash, it resolves a position to
// a bucket with two multiplies and two clamps — no hashing — which is
// what takes the per-frame receiver lookup of the MAC medium off the
// map hot path at city scale.
//
// Positions outside the bounds are clamped into the border cells.
// Clamping is monotone in each coordinate, so the load-bearing
// superset invariant survives arbitrary out-of-bounds traffic: a disc
// query's clamped cell range still covers the clamped cell of every
// in-disc position, queries just degrade toward scanning the border
// cells when the declared bounds are badly wrong. Callers therefore
// size bounds from scenario geometry (mobility area or street-graph
// bounding box) without needing them to be exact.
type cellCore struct {
	size   float64 // cell edge length, meters
	inv    float64 // 1/size
	origin Point   // bounds.Min
	cols   int
	rows   int
}

// maxDenseCells caps the dense slab at 2^20 buckets (~8 MB of empty
// slice headers for Grid). newCellCore doubles the cell size until the
// bounds fit — the dense-grid sizing rule: cells = (floor(w/size)+1) x
// (floor(h/size)+1), coarsened by powers of two under the cap. With
// radio-range-sized cells even a metro-100k city (~25 x 19 km at 440
// vehicles/km^2) needs only ~5e4 buckets, so coarsening triggers only
// on degenerate bounds/cell-size ratios.
const maxDenseCells = 1 << 20

func newCellCore(cellSize float64, bounds Rect) cellCore {
	if cellSize <= 0 {
		panic("geo: non-positive grid cell size")
	}
	if bounds.Width() < 0 || bounds.Height() < 0 {
		panic("geo: inverted grid bounds")
	}
	cols := int(bounds.Width()/cellSize) + 1
	rows := int(bounds.Height()/cellSize) + 1
	for cols*rows > maxDenseCells {
		cellSize *= 2
		cols = int(bounds.Width()/cellSize) + 1
		rows = int(bounds.Height()/cellSize) + 1
	}
	return cellCore{
		size:   cellSize,
		inv:    1 / cellSize,
		origin: bounds.Min,
		cols:   cols,
		rows:   rows,
	}
}

// numCells returns the dense slab length.
func (c *cellCore) numCells() int { return c.cols * c.rows }

// CellSize returns the (possibly coarsened) cell edge length.
func (c *cellCore) CellSize() float64 { return c.size }

// col returns the clamped cell column of x. int() truncates toward
// zero, but every x left of the origin lands in column 0 via the clamp
// anyway, so trunc-vs-floor never differs on a kept index.
func (c *cellCore) col(x float64) int {
	cx := int((x - c.origin.X) * c.inv)
	if cx < 0 {
		return 0
	}
	if cx >= c.cols {
		return c.cols - 1
	}
	return cx
}

// row returns the clamped cell row of y.
func (c *cellCore) row(y float64) int {
	cy := int((y - c.origin.Y) * c.inv)
	if cy < 0 {
		return 0
	}
	if cy >= c.rows {
		return c.rows - 1
	}
	return cy
}

// cellIndex returns the dense bucket index of the cell containing p
// (clamped into the bounds).
func (c *cellCore) cellIndex(p Point) int {
	return c.row(p.Y)*c.cols + c.col(p.X)
}

// discRange returns the clamped inclusive cell-range covering the
// axis-aligned bounding square of the disc (p, r).
func (c *cellCore) discRange(p Point, r float64) (lox, loy, hix, hiy int) {
	return c.col(p.X - r), c.row(p.Y - r), c.col(p.X + r), c.row(p.Y + r)
}
