package geo

// IndexGrid is a uniform spatial index specialized for a dense integer
// key space [0, n) — the MAC medium's node roster. Compared to the
// generic Grid it stores per-key state in a flat slice instead of a
// map, and Relocate re-buckets a key only when its position crossed a
// cell boundary, so the periodic index refresh of N moving nodes costs
// N cell computations but only touches buckets for the nodes that
// actually moved cells — the "incremental re-bucketing" half of the
// medium's allocation-flat contract. Cells live in the same dense
// row-major slab as Grid (see cellCore): the receiver-candidate query
// of the MAC hot path does zero hash lookups.
//
// Only the containing cell of each key is recorded, not the exact
// position: the medium's queries are conservative supersets re-checked
// against exact positions anyway (see Grid), so storing the position
// would buy nothing and cost a write per refresh per node. Positions
// outside the constructor bounds are clamped into border cells.
//
// Iteration order of AppendDisc is deterministic — cells in row-major
// order, keys within a cell in bucket order; callers that need a
// canonical order (the medium sorts by attach rank) must sort, since
// bucket order depends on movement history.
type IndexGrid struct {
	cellCore
	buckets [][]int32 // dense row-major cell slab
	cells   []int32   // key -> containing cell index, -1 = absent
}

// NewIndexGrid returns an empty grid over the given bounds with the
// given cell edge length, for keys [0, n). It panics on a non-positive
// size or inverted bounds.
func NewIndexGrid(cellSize float64, bounds Rect, n int) *IndexGrid {
	core := newCellCore(cellSize, bounds)
	g := &IndexGrid{
		cellCore: core,
		buckets:  make([][]int32, core.numCells()),
		cells:    make([]int32, n),
	}
	for i := range g.cells {
		g.cells[i] = -1
	}
	return g
}

// Relocate records key k at position p, moving it between buckets only
// if its containing cell changed. Keys outside [0, n) panic.
func (g *IndexGrid) Relocate(k int32, p Point) {
	idx := int32(g.cellIndex(p))
	old := g.cells[k]
	if old >= 0 {
		if old == idx {
			return
		}
		g.drop(k, old)
	}
	g.buckets[idx] = append(g.buckets[idx], k)
	g.cells[k] = idx
}

// drop removes k from bucket idx, preserving the order of the remaining
// keys (so AppendDisc stays deterministic under churn). Like Grid.drop,
// an emptied bucket keeps its capacity: nodes cycle through the same
// cells as they move, and re-allocating the bucket on every revisit
// would put an allocation back on the refresh path.
func (g *IndexGrid) drop(k int32, idx int32) {
	b := g.buckets[idx]
	for i, x := range b {
		if x == k {
			copy(b[i:], b[i+1:])
			b = b[:len(b)-1]
			break
		}
	}
	g.buckets[idx] = b
}

// Keys returns the size n of the key space the grid was created for.
func (g *IndexGrid) Keys() int { return len(g.cells) }

// Len returns the number of keys recorded so far.
func (g *IndexGrid) Len() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b)
	}
	return n
}

// AppendDisc appends to buf every key whose containing cell intersects
// the axis-aligned bounding square of the disc (p, r) and returns the
// extended buffer. Like Grid.VisitDisc it is a superset of the disc —
// callers must re-check exact distances — but takes no callback, so a
// query with a reused buffer allocates nothing. A negative radius
// appends nothing.
func (g *IndexGrid) AppendDisc(p Point, r float64, buf []int32) []int32 {
	if r < 0 {
		return buf
	}
	lox, loy, hix, hiy := g.discRange(p, r)
	for cy := loy; cy <= hiy; cy++ {
		base := cy * g.cols
		for _, b := range g.buckets[base+lox : base+hix+1] {
			buf = append(buf, b...)
		}
	}
	return buf
}
