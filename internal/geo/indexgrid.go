package geo

import "math"

// IndexGrid is a uniform spatial hash specialized for a dense integer
// key space [0, n) — the MAC medium's node roster. Compared to the
// generic Grid it stores per-key state in a flat slice instead of a
// map, and Relocate re-buckets a key only when its position crossed a
// cell boundary, so the periodic index refresh of N moving nodes costs
// N cell computations but only touches buckets for the nodes that
// actually moved cells — the "incremental re-bucketing" half of the
// medium's allocation-flat contract.
//
// Only the containing cell of each key is recorded, not the exact
// position: the medium's queries are conservative supersets re-checked
// against exact positions anyway (see Grid), so storing the position
// would buy nothing and cost a write per refresh per node.
//
// Iteration order of AppendDisc is deterministic — cells in row-major
// order, keys within a cell in bucket order; callers that need a
// canonical order (the medium sorts by attach rank) must sort, since
// bucket order depends on movement history.
type IndexGrid struct {
	size    float64 // cell edge length, meters
	inv     float64 // 1/size
	buckets map[Cell][]int32
	cells   []indexCell // key -> containing cell
}

type indexCell struct {
	cell Cell
	in   bool
}

// NewIndexGrid returns an empty grid with the given cell edge length
// over keys [0, n). It panics on a non-positive size.
func NewIndexGrid(cellSize float64, n int) *IndexGrid {
	if cellSize <= 0 {
		panic("geo: non-positive grid cell size")
	}
	return &IndexGrid{
		size:    cellSize,
		inv:     1 / cellSize,
		buckets: make(map[Cell][]int32),
		cells:   make([]indexCell, n),
	}
}

// CellOf returns the cell containing p.
func (g *IndexGrid) CellOf(p Point) Cell {
	return Cell{
		X: int(math.Floor(p.X * g.inv)),
		Y: int(math.Floor(p.Y * g.inv)),
	}
}

// Relocate records key k at position p, moving it between buckets only
// if its containing cell changed. Keys outside [0, n) panic.
func (g *IndexGrid) Relocate(k int32, p Point) {
	c := g.CellOf(p)
	e := &g.cells[k]
	if e.in {
		if e.cell == c {
			return
		}
		g.drop(k, e.cell)
	}
	g.buckets[c] = append(g.buckets[c], k)
	e.cell = c
	e.in = true
}

// drop removes k from bucket c, preserving the order of the remaining
// keys (so AppendDisc stays deterministic under churn). Like Grid.drop,
// an emptied bucket keeps its map entry and capacity: nodes cycle
// through the same cells as they move, and re-allocating the bucket on
// every revisit would put an allocation back on the refresh path.
func (g *IndexGrid) drop(k int32, c Cell) {
	b := g.buckets[c]
	for i, x := range b {
		if x == k {
			copy(b[i:], b[i+1:])
			b = b[:len(b)-1]
			break
		}
	}
	g.buckets[c] = b
}

// Keys returns the size n of the key space the grid was created for.
func (g *IndexGrid) Keys() int { return len(g.cells) }

// Len returns the number of keys recorded so far.
func (g *IndexGrid) Len() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b)
	}
	return n
}

// AppendDisc appends to buf every key whose containing cell intersects
// the axis-aligned bounding square of the disc (p, r) and returns the
// extended buffer. Like Grid.VisitDisc it is a superset of the disc —
// callers must re-check exact distances — but takes no callback, so a
// query with a reused buffer allocates nothing. A negative radius
// appends nothing.
func (g *IndexGrid) AppendDisc(p Point, r float64, buf []int32) []int32 {
	if r < 0 {
		return buf
	}
	lo := g.CellOf(Point{X: p.X - r, Y: p.Y - r})
	hi := g.CellOf(Point{X: p.X + r, Y: p.Y + r})
	for cy := lo.Y; cy <= hi.Y; cy++ {
		for cx := lo.X; cx <= hi.X; cx++ {
			buf = append(buf, g.buckets[Cell{X: cx, Y: cy}]...)
		}
	}
	return buf
}
